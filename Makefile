GO ?= go

.PHONY: all build test check fmt vet race bench bench-smoke results

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: vet, formatting, and race-enabled tests (the
# parallel experiment runner and the HA replication machinery must be
# race-clean).
check: vet fmt race

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The routeserver, HA, pgstate, and plan packages run twice under the
# detector: routeserver's parallel miss path overlaps slow searches with
# scoped and full mutations (the reader/writer strategy lock is exactly the
# kind of claim the detector can refute); HA exercises real sockets,
# elections, and concurrent sync streams; pgstate's shard stress drives one
# table from many goroutines; plan snapshots a server that concurrent
# queries are hammering. All see different interleavings run to run.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 -run 'TestMiss|TestParallel|TestQueryLogConcurrent|TestServerConcurrent|TestScopedChurn' ./internal/routeserver/
	$(GO) test -race -count=2 ./internal/routeserver/ha/
	$(GO) test -race -count=2 -run 'TestConcurrent' ./internal/pgstate/
	$(GO) test -race -count=2 ./internal/routeserver/plan/

bench:
	$(GO) test -bench=. -benchmem

# bench-smoke runs every benchmark exactly once — CI uses it to catch
# benchmarks that no longer compile or that crash, without paying for
# real measurement. BenchmarkE20RouteServer, BenchmarkE22ScopedInvalidation,
# BenchmarkDaemonChurn, BenchmarkHAFailover, BenchmarkPGStateMillion,
# BenchmarkPlan, and BenchmarkParallelSynth also emit BENCH_*.json reports
# (untracked) as a machine-readable side effect; BENCH_parallelsynth.json
# records miss QPS at GOMAXPROCS 1/2/4 against a calibrated slow strategy.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Regenerate the committed golden output for the default seed.
results:
	$(GO) run ./cmd/experiments -seed 42 > results_seed42.txt
