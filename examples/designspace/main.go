// Designspace: walk the paper's Table 1 on the Figure 1 internet with a
// source-restricted policy set, printing for every design point whether
// routing stays legal, loops, violates policy, or hides legal routes — the
// qualitative comparison of §5 made concrete.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/egp"
	"repro/internal/protocols/filters"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	topo := topology.Figure1()
	g := topo.Graph
	db := policy.Generate(g, policy.GenConfig{
		Seed:                  3,
		SourceRestrictionProb: 0.7,
		SourceFraction:        0.5,
	})
	oracle := core.Oracle{G: g, DB: db}
	reqs := core.AllPairsRequests(g, true, 0, 0)

	table := metrics.NewTable("Design space on Figure 1 (source-restricted policies)",
		"protocol", "algorithm", "decision", "policy-in", "availability", "illegal", "blackholes", "msgs", "bytes")

	add := func(sys core.System, algo, decision, policyIn string) {
		m := core.RunScenario(sys, oracle, reqs, 600*sim.Second)
		table.AddRow(m.Protocol, algo, decision, policyIn,
			m.Availability(), m.DeliveredIllegal, m.Blackholed, m.Messages, m.Bytes)
	}
	add(plaindv.New(g, plaindv.Config{SplitHorizon: true}), "DV", "hop-by-hop", "none")
	add(egp.New(g, egp.Config{}), "DV", "hop-by-hop", "none")
	add(filters.New(g, db, filters.Config{}), "—", "source", "filters")
	add(ecma.New(g, db, ecma.Config{}), "DV", "hop-by-hop", "topology")
	add(idrp.New(g, db, idrp.Config{}), "DV", "hop-by-hop", "terms")
	add(idrp.New(g, db, idrp.Config{MultiRoute: 4}), "DV", "hop-by-hop", "terms")
	add(lshh.New(g, db, lshh.Config{}), "LS", "hop-by-hop", "terms")
	add(orwg.New(g, db, orwg.Config{}), "LS", "source", "terms")

	table.AddNote("the paper's conclusion (§6): LS + source routing + policy terms best serves inter-AD policy routing")
	if err := table.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
