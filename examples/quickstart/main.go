// Quickstart: build the paper's Figure 1 internet, give every transit AD an
// open policy, run the ORWG architecture (link state + source routing +
// policy terms — the paper's recommended design), and trace a policy route
// from one campus to another.
package main

import (
	"fmt"
	"log"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/protocols/orwg"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	// 1. The internet: Figure 1 — two backbones, three regionals, five
	// campuses, with lateral and bypass links.
	topo := topology.Figure1()
	g := topo.Graph
	fmt.Printf("topology: %d ADs, %d links\n", g.NumADs(), g.NumLinks())

	// 2. Policies: every transit AD advertises one open policy term
	// ("least restrictive policies possible", §2.3).
	db := policy.OpenDB(g)

	// 3. Deploy ORWG and flood LSAs to convergence.
	system := orwg.New(g, db, orwg.Config{Seed: 1})
	conv, ok := system.Converge(60 * sim.Second)
	if !ok {
		log.Fatal("flooding did not converge")
	}
	fmt.Printf("converged at %v after %d messages\n", conv, system.Network().Stats.MessagesSent)

	// 4. Pick two campuses on different backbones and set up a policy
	// route between them.
	var src, dst ad.ID
	for _, info := range g.ADs() {
		if info.Name == "campus-1" {
			src = info.ID
		}
		if info.Name == "campus-4" {
			dst = info.ID
		}
	}
	req := policy.Request{Src: src, Dst: dst}
	res := system.Establish(req)
	if !res.OK {
		log.Fatalf("setup failed: code %d at %v", res.FailCode, res.FailedAt)
	}
	fmt.Printf("policy route: %v (setup RTT %v, %d messages)\n", res.Path, res.RTT, res.Messages)

	// 5. Send data over the established handle: per-packet headers carry
	// just the 8-byte handle, not the full source route.
	delivered, header := system.SendData(src, res.Handle, 256)
	fmt.Printf("data delivered: %v (routing header %d bytes)\n", delivered, header)

	// 6. Sanity-check against the global oracle.
	oracle := core.Oracle{G: g, DB: db}
	fmt.Printf("path legal under global policy: %v\n", oracle.Legal(res.Path, req))
}
