// Convergence: reproduce the dynamics story of §4.3/§5.1.1 on a small
// internet. A link failure severs a stub; the example prints, for each
// architecture, the messages and simulated time needed to reconverge —
// showing plain DV's count-to-infinity, the ECMA partial ordering's
// suppression of it, and link-state flooding's fast reconvergence.
package main

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	build := func() (*ad.Graph, *policy.DB, ad.Link) {
		topo := topology.Generate(topology.Config{
			Seed: 7, Backbones: 2, RegionalsPerBackbone: 2,
			CampusesPerParent: 2, LateralProb: 0.3,
		})
		g := topo.Graph
		var victim ad.Link
		for _, info := range g.ADs() {
			if info.Class == ad.Stub && g.Degree(info.ID) == 1 {
				victim = g.IncidentLinks(info.ID)[0]
				break
			}
		}
		return g, policy.OpenDB(g), victim
	}

	type mk struct {
		name  string
		build func(g *ad.Graph, db *policy.DB) core.System
	}
	makers := []mk{
		{"plain-dv (split horizon)", func(g *ad.Graph, db *policy.DB) core.System {
			return plaindv.New(g, plaindv.Config{SplitHorizon: true})
		}},
		{"plain-dv (no split horizon)", func(g *ad.Graph, db *policy.DB) core.System {
			return plaindv.New(g, plaindv.Config{SplitHorizon: false})
		}},
		{"ecma (partial ordering)", func(g *ad.Graph, db *policy.DB) core.System {
			return ecma.New(g, db, ecma.Config{})
		}},
		{"ecma (ordering disabled)", func(g *ad.Graph, db *policy.DB) core.System {
			return ecma.New(g, db, ecma.Config{DisableOrdering: true})
		}},
		{"ls-hop-by-hop", func(g *ad.Graph, db *policy.DB) core.System {
			return lshh.New(g, db, lshh.Config{})
		}},
		{"orwg", func(g *ad.Graph, db *policy.DB) core.System {
			return orwg.New(g, db, orwg.Config{})
		}},
	}

	fmt.Printf("%-28s %10s %14s %12s %16s\n", "protocol", "init-msgs", "init-time", "fail-msgs", "reconverge-time")
	for _, m := range makers {
		g, db, victim := build()
		sys := m.build(g, db)
		conv0, _ := sys.Converge(600 * sim.Second)
		msgs0 := sys.Network().Stats.MessagesSent

		tFail := sys.Network().Now()
		if f, ok := sys.(interface{ FailLink(a, b ad.ID) error }); ok {
			_ = f.FailLink(victim.A, victim.B)
		}
		conv1, _ := sys.Converge(6000 * sim.Second)
		msgs1 := sys.Network().Stats.MessagesSent
		recon := sim.Time(0)
		if conv1 > tFail {
			recon = conv1 - tFail
		}
		fmt.Printf("%-28s %10d %14v %12d %16v\n", m.name, msgs0, conv0, msgs1-msgs0, recon)
	}
}
