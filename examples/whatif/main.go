// Whatif: the network-management workflow of the paper's §6 — "it will be
// imperative for these administrators to have available network management
// tools to assist them in predicting the impact of their policies."
//
// A regional AD considers restricting its transit service to its own
// customers. The example first *predicts* the impact with the policy tool
// (connectivity, transit load, synthesis cost), then *applies* the change
// to a live ORWG deployment and verifies the prediction: exactly the
// predicted pairs lose service or reroute.
package main

import (
	"fmt"
	"os"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/policytool"
	"repro/internal/protocols/orwg"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	topo := topology.Figure1()
	g := topo.Graph
	db := policy.OpenDB(g)

	// The AD under study: regional-2 (it has the lateral link, so it
	// carries through-traffic between the backbones).
	var target ad.ID
	var customers []ad.ID
	for _, info := range g.ADs() {
		if info.Name == "regional-2" {
			target = info.ID
		}
	}
	for child, parent := range topo.Parent {
		if parent == target {
			customers = append(customers, child)
		}
	}

	// Proposed policy: carry only traffic sourced by directly-attached
	// customers (and the AD's own reverse traffic).
	proposed := policy.OpenTerm(target, 0)
	proposed.Sources = policy.SetOf(customers...)

	reqs := core.AllPairsRequests(g, true, 0, 0)

	// 1. Predict.
	fmt.Println("--- prediction (policytool) ---")
	im := policytool.Assess(g, db, target, []policy.Term{proposed}, reqs)
	if err := im.Report(os.Stdout); err != nil {
		panic(err)
	}

	// 2. Apply to a live deployment and verify.
	fmt.Println("\n--- live verification (orwg) ---")
	sys := orwg.New(g, db, orwg.Config{Seed: 1})
	if _, ok := sys.Converge(60 * sim.Second); !ok {
		panic("did not converge")
	}
	if err := sys.UpdatePolicy(target, []policy.Term{proposed}); err != nil {
		panic(err)
	}
	oracle := core.Oracle{G: g, DB: sys.PolicyDB()}
	lost, rerouted, unchanged := 0, 0, 0
	predictedLost := map[string]bool{}
	for _, c := range im.Lost {
		predictedLost[c.Req.String()] = true
	}
	for _, req := range reqs {
		out := sys.Route(req)
		switch {
		case !out.Delivered:
			lost++
			if !predictedLost[req.String()] && oracle.HasRoute(req) {
				fmt.Printf("UNPREDICTED loss: %v\n", req)
			}
		case out.Path.Contains(target):
			unchanged++
		default:
			rerouted++
		}
	}
	fmt.Printf("after the change: %d pairs lost, %d avoid %v, %d still cross it\n",
		lost, rerouted, target, unchanged)
	fmt.Printf("prediction said:  %d lost, %d rerouted — prediction %s\n",
		len(im.Lost), len(im.Rerouted),
		map[bool]string{true: "CONFIRMED", false: "differs"}[lost == len(im.Lost)])
}
