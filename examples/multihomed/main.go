// Multihomed: the paper's motivating policy scenario (§2.1). A multi-homed
// stub AD has two providers but must never carry transit traffic, and one
// regional restricts which sources may use it. The example shows how each
// architecture behaves: plain DV cuts through the stub (policy violation),
// ECMA cannot express the source restriction (violation), IDRP hides the
// legal detour (blackhole), and ORWG delivers legally.
package main

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
	"repro/internal/sim"
)

func main() {
	// Topology:
	//
	//	 s1 --- r1 ---- d
	//	  \    /  \    /
	//	   \  /    \  /
	//	    mh ---- r2
	//
	// mh is a multi-homed stub (providers r1, r2) that refuses transit.
	// r1 is cheap but only carries traffic from d; r2 is open but dear.
	g := ad.NewGraph()
	s1 := g.AddAD("s1", ad.Stub, ad.Campus)
	mh := g.AddAD("mh", ad.MultihomedStub, ad.Campus)
	r1 := g.AddAD("r1", ad.Transit, ad.Regional)
	r2 := g.AddAD("r2", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: s1, B: r1, Cost: 1}, {A: s1, B: mh, Cost: 1},
		{A: mh, B: r1, Cost: 1}, {A: mh, B: r2, Cost: 1},
		{A: r1, B: d, Cost: 1}, {A: r2, B: d, Cost: 4},
		{A: r1, B: r2, Cost: 1, Class: ad.Lateral},
		{A: s1, B: r2, Cost: 4, Class: ad.Lateral},
	} {
		if err := g.AddLink(l); err != nil {
			panic(err)
		}
	}
	db := policy.NewDB()
	restricted := policy.OpenTerm(r1, 0)
	restricted.Sources = policy.SetOf(d) // r1 carries only d's traffic
	restricted.Cost = 1
	db.Add(restricted)
	open := policy.OpenTerm(r2, 0)
	open.Cost = 4
	db.Add(open)
	// mh advertises no terms at all: multi-homed, but never transit.

	oracle := core.Oracle{G: g, DB: db}
	req := policy.Request{Src: s1, Dst: d}
	fmt.Printf("request: %v\n", req)
	fmt.Printf("a legal route exists: %v — not via mh (refuses transit), not via r1 (carries only d's traffic): only s1->r2->d is legal\n\n",
		oracle.HasRoute(req))

	systems := []core.System{
		plaindv.New(g, plaindv.Config{SplitHorizon: true}),
		ecma.New(g, db, ecma.Config{}),
		idrp.New(g, db, idrp.Config{}),
		orwg.New(g, db, orwg.Config{}),
	}
	for _, sys := range systems {
		sys.Converge(60 * sim.Second)
		out := sys.Route(req)
		verdict := "BLACKHOLE (legal route hidden)"
		switch {
		case out.Delivered && oracle.Legal(out.Path, req):
			verdict = "delivered legally"
		case out.Delivered:
			verdict = "POLICY VIOLATION"
		case out.Looped:
			verdict = "LOOP"
		}
		fmt.Printf("%-14s path=%-28v %s\n", sys.Name(), out.Path, verdict)
	}
}
