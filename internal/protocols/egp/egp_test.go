package egp

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
)

var _ core.System = (*System)(nil)

func seconds(s int) sim.Time { return sim.Time(s) * sim.Second }

// tree builds a star-of-lines tree: root with three chains of length 2.
func tree(t *testing.T) (*ad.Graph, ad.ID, []ad.ID) {
	t.Helper()
	g := ad.NewGraph()
	root := g.AddAD("root", ad.Transit, ad.Backbone)
	var leaves []ad.ID
	for i := 0; i < 3; i++ {
		mid := g.AddAD("mid", ad.Transit, ad.Regional)
		leaf := g.AddAD("leaf", ad.Stub, ad.Campus)
		if err := g.AddLink(ad.Link{A: root, B: mid}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddLink(ad.Link{A: mid, B: leaf}); err != nil {
			t.Fatal(err)
		}
		leaves = append(leaves, leaf)
	}
	return g, root, leaves
}

// ring builds a 4-cycle with a stub hanging off one node.
func ring(t *testing.T) (*ad.Graph, []ad.ID, ad.ID) {
	t.Helper()
	g := ad.NewGraph()
	var ids []ad.ID
	for i := 0; i < 4; i++ {
		ids = append(ids, g.AddAD("r", ad.Transit, ad.Regional))
	}
	for i := 0; i < 4; i++ {
		if err := g.AddLink(ad.Link{A: ids[i], B: ids[(i+1)%4]}); err != nil {
			t.Fatal(err)
		}
	}
	stub := g.AddAD("stub", ad.Stub, ad.Campus)
	if err := g.AddLink(ad.Link{A: ids[0], B: stub}); err != nil {
		t.Fatal(err)
	}
	return g, ids, stub
}

func TestCorrectOnTree(t *testing.T) {
	g, _, _ := tree(t)
	s := New(g, Config{})
	if _, ok := s.Converge(seconds(120)); !ok {
		t.Fatal("did not converge")
	}
	for _, src := range g.IDs() {
		for _, dst := range g.IDs() {
			if src == dst {
				continue
			}
			out := s.Route(policy.Request{Src: src, Dst: dst})
			if !out.Delivered || out.Looped {
				t.Errorf("%v->%v: %+v", src, dst, out)
			}
		}
	}
	if s.StateEntries() == 0 || s.Computations() == 0 {
		t.Error("counters zero")
	}
}

func TestInitialConvergenceOnRing(t *testing.T) {
	// BFS propagation is loop-free even on cycles at start-up.
	g, _, _ := ring(t)
	s := New(g, Config{})
	s.Converge(seconds(120))
	for _, src := range g.IDs() {
		for _, dst := range g.IDs() {
			if src == dst {
				continue
			}
			out := s.Route(policy.Request{Src: src, Dst: dst})
			if out.Looped {
				t.Errorf("%v->%v looped at startup", src, dst)
			}
		}
	}
}

func TestLoopAfterFailureOnCycle(t *testing.T) {
	// After failing the stub's neighbor's preferred path, fallback to a
	// stale advertiser creates a persistent forwarding loop somewhere on
	// the ring — the EGP topology-restriction failure (paper §3).
	g, ids, stub := ring(t)
	s := New(g, Config{})
	s.Converge(seconds(120))
	// Fail the link that carries most of the ring's traffic to the stub.
	if err := s.FailLink(ids[0], stub); err != nil {
		t.Fatal(err)
	}
	s.Converge(seconds(600))
	// The stub is now unreachable; correct behaviour would be blackhole,
	// EGP instead loops for at least one source.
	loops := 0
	for _, src := range ids {
		out := s.Route(policy.Request{Src: src, Dst: stub})
		if out.Delivered {
			t.Errorf("%v->stub delivered across a cut link: %v", src, out.Path)
		}
		if out.Looped {
			loops++
		}
	}
	if loops == 0 {
		t.Error("no forwarding loops after failure on cyclic topology — baseline failure mode not reproduced")
	}
}

func TestTreeFailureNeverDeliversAcrossCut(t *testing.T) {
	// After a failure EGP has no sound withdrawal mechanism: traffic to
	// the cut-off leaf must not be (mis)delivered. The protocol may loop
	// between stale advertisers — EGP's documented weakness, and why the
	// paper notes deployments relied on static, restricted topologies
	// that were "not feasible to monitor ... adequately" (§3).
	g, root, leaves := tree(t)
	s := New(g, Config{})
	s.Converge(seconds(120))
	mid := s.Route(policy.Request{Src: root, Dst: leaves[0]}).Path[1]
	if err := s.FailLink(mid, leaves[0]); err != nil {
		t.Fatal(err)
	}
	s.Converge(seconds(600))
	out := s.Route(policy.Request{Src: root, Dst: leaves[0]})
	if out.Delivered {
		t.Errorf("delivered across cut link: %+v", out)
	}
	// Unaffected destinations keep working.
	out = s.Route(policy.Request{Src: leaves[1], Dst: leaves[2]})
	if !out.Delivered || out.Looped {
		t.Errorf("unaffected pair broken: %+v", out)
	}
}

func TestAccessorsAndLinkUp(t *testing.T) {
	g, root, leaves := tree(t)
	s := New(g, Config{})
	if s.Name() != "egp" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Network() == nil {
		t.Fatal("Network nil")
	}
	s.Converge(seconds(120))
	// Restore after failure exercises LinkUp's re-advertisement.
	mid := s.Route(policy.Request{Src: root, Dst: leaves[0]}).Path[1]
	s.FailLink(mid, leaves[0])
	s.Converge(seconds(600))
	if err := s.Network().RestoreLink(mid, leaves[0]); err != nil {
		t.Fatal(err)
	}
	s.Converge(seconds(1200))
	// EGP's reachability is sticky: the mid node stays wedged on its
	// stale fallback even after the link returns (historically, EGP
	// deployments needed manual intervention). The leaf, however, lost
	// all its routes at failure and relearns them from mid's LinkUp
	// re-advertisement.
	out := s.Route(policy.Request{Src: leaves[0], Dst: root})
	if !out.Delivered {
		t.Errorf("leaf->root after recovery: %+v", out)
	}
}
