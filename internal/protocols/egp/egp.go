// Package egp implements a baseline modelled on the Exterior Gateway
// Protocol (RFC 827/904) as characterized in Breslau & Estrin (SIGCOMM
// 1990) §3: a reachability protocol that exchanges which destinations are
// reachable but performs no loop-robust route computation, and therefore
// requires the inter-AD graph to be cycle-free ("there can be no cycles in
// the EGP graph").
//
// Reachability propagates breadth-first (first advertiser wins), which is
// loop-free on any topology at start-up. The failure mode appears on
// topologies with cycles after a link failure: a gateway falls back to any
// neighbor that ever advertised the destination, including one whose
// reachability was derived from the gateway itself, creating a persistent
// forwarding loop that the protocol has no mechanism to detect (experiment
// E6).
package egp

import (
	"sort"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config parameterizes the baseline.
type Config struct {
	// Seed fixes the network RNG.
	Seed int64
	// NoFallback disables the stale-advertiser fallback after a link
	// failure, modelling EGP's actual deployment style: statically
	// configured reachability that blackholes rather than adapts. With
	// fallback enabled (the default), the protocol adapts but can form
	// persistent loops — the dilemma behind the paper's "severe topology
	// restriction" (§3).
	NoFallback bool
}

// System is an EGP deployment.
type System struct {
	cfg   Config
	nw    *sim.Network
	nodes map[ad.ID]*node

	computations int
	started      bool
}

// New builds the system over g. Policy is not representable in EGP beyond
// reachability hiding, which the baseline does not model.
func New(g *ad.Graph, cfg Config) *System {
	s := &System{
		cfg:   cfg,
		nw:    sim.NewNetwork(g, cfg.Seed),
		nodes: make(map[ad.ID]*node),
	}
	for _, id := range g.IDs() {
		n := &node{
			id:          id,
			sys:         s,
			nextHop:     make(map[ad.ID]ad.ID),
			metric:      make(map[ad.ID]uint32),
			advertisers: make(map[ad.ID]map[ad.ID]uint32),
		}
		s.nodes[id] = n
		s.nw.AddNode(n)
	}
	return s
}

// Name implements core.System.
func (s *System) Name() string { return "egp" }

// Network implements core.System.
func (s *System) Network() *sim.Network { return s.nw }

// Converge implements core.System.
func (s *System) Converge(limit sim.Time) (sim.Time, bool) {
	if !s.started {
		s.started = true
		s.nw.Start()
	}
	return s.nw.RunToQuiescence(limit)
}

// Route implements core.System.
func (s *System) Route(req policy.Request) core.Outcome {
	cur := req.Src
	path := ad.Path{cur}
	seen := map[ad.ID]bool{}
	for cur != req.Dst {
		if seen[cur] {
			return core.Outcome{Path: path, Looped: true}
		}
		seen[cur] = true
		n, ok := s.nodes[cur]
		if !ok {
			return core.Outcome{Path: path}
		}
		nh, ok := n.nextHop[req.Dst]
		if !ok || nh == ad.Invalid {
			return core.Outcome{Path: path}
		}
		cur = nh
		path = append(path, cur)
	}
	return core.Outcome{Path: path, Delivered: true}
}

// StateEntries implements core.System.
func (s *System) StateEntries() int {
	total := 0
	for _, n := range s.nodes {
		total += len(n.nextHop)
	}
	return total
}

// Computations implements core.System.
func (s *System) Computations() int { return s.computations }

// FailLink injects a link failure.
func (s *System) FailLink(a, b ad.ID) error { return s.nw.FailLink(a, b) }

// node is one AD's EGP gateway.
type node struct {
	id  ad.ID
	sys *System

	nextHop map[ad.ID]ad.ID
	metric  map[ad.ID]uint32
	// advertisers records every neighbor that ever claimed reachability
	// of a destination and the metric it quoted — the stale knowledge
	// that creates loops after failures on cyclic topologies.
	advertisers map[ad.ID]map[ad.ID]uint32
}

func (n *node) ID() ad.ID { return n.id }

func (n *node) Start(nw *sim.Network) {
	n.nextHop[n.id] = n.id
	n.metric[n.id] = 0
	n.advertise(nw, []wire.EGPRoute{{Dest: n.id, Metric: 0}}, ad.Invalid)
}

// advertise sends reachability for the given routes to all up neighbors
// except skip.
func (n *node) advertise(nw *sim.Network, routes []wire.EGPRoute, skip ad.ID) {
	if len(routes) == 0 {
		return
	}
	msg := wire.Marshal(&wire.EGPUpdate{Routes: routes})
	for _, nb := range nw.UpNeighbors(n.id) {
		if nb == skip {
			continue
		}
		nw.Send("egp", n.id, nb, msg)
	}
}

func (n *node) Receive(nw *sim.Network, from ad.ID, payload []byte) {
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		return
	}
	upd, ok := msg.(*wire.EGPUpdate)
	if !ok {
		return
	}
	n.sys.computations++
	var fresh []wire.EGPRoute
	for _, rt := range upd.Routes {
		if rt.Dest == n.id {
			continue
		}
		if n.advertisers[rt.Dest] == nil {
			n.advertisers[rt.Dest] = make(map[ad.ID]uint32)
		}
		n.advertisers[rt.Dest][from] = rt.Metric + 1
		// First advertiser wins: no metric-based replacement. This is
		// the protocol's simplicity and its trap.
		if _, have := n.nextHop[rt.Dest]; !have {
			n.nextHop[rt.Dest] = from
			n.metric[rt.Dest] = rt.Metric + 1
			fresh = append(fresh, wire.EGPRoute{Dest: rt.Dest, Metric: rt.Metric + 1})
		}
	}
	// EGP neighbor-reachability messages list everything reachable to
	// every peer — there is no split horizon. Advertising back to the
	// peer a route was learned from is what seeds the stale-advertiser
	// loops on cyclic topologies.
	n.advertise(nw, fresh, ad.Invalid)
}

func (n *node) LinkDown(nw *sim.Network, nb ad.ID) {
	// Fall back to any other known advertiser — possibly one whose
	// reachability came through us. No verification, no withdrawal.
	var dests []ad.ID
	for dest, nh := range n.nextHop {
		if nh == nb {
			dests = append(dests, dest)
		}
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	for _, dest := range dests {
		delete(n.nextHop, dest)
		delete(n.metric, dest)
		if n.sys.cfg.NoFallback {
			continue // static deployment: blackhole, never adapt
		}
		alts := n.advertisers[dest]
		var pick ad.ID
		var pickMetric uint32
		for _, cand := range nw.UpNeighbors(n.id) {
			if m, ok := alts[cand]; ok {
				if pick == ad.Invalid || cand < pick {
					pick = cand
					pickMetric = m
				}
			}
		}
		if pick != ad.Invalid {
			n.nextHop[dest] = pick
			n.metric[dest] = pickMetric
		}
	}
}

func (n *node) LinkUp(nw *sim.Network, nb ad.ID) {
	// Re-advertise everything we can reach to the recovered neighbor.
	var routes []wire.EGPRoute
	var dests []ad.ID
	for dest := range n.nextHop {
		dests = append(dests, dest)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	for _, dest := range dests {
		routes = append(routes, wire.EGPRoute{Dest: dest, Metric: n.metric[dest]})
	}
	if len(routes) > 0 {
		nw.Send("egp", n.id, nb, wire.Marshal(&wire.EGPUpdate{Routes: routes}))
	}
}
