package plaindv

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/dvcore"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

var _ core.System = (*System)(nil)

func lineGraph(t *testing.T, n int) (*ad.Graph, []ad.ID) {
	t.Helper()
	g := ad.NewGraph()
	ids := make([]ad.ID, n)
	for i := range ids {
		ids[i] = g.AddAD("n", ad.Transit, ad.Regional)
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddLink(ad.Link{A: ids[i], B: ids[i+1], Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return g, ids
}

func TestConvergesOnLine(t *testing.T) {
	g, ids := lineGraph(t, 5)
	s := New(g, Config{SplitHorizon: true})
	if _, ok := s.Converge(time(60)); !ok {
		t.Fatal("did not converge")
	}
	// Every node must know every destination with the right metric.
	for i, id := range ids {
		tbl := s.Table(id)
		for j, dst := range ids {
			e, ok := tbl.Get(dvcore.Key{Dest: dst})
			if !ok {
				t.Fatalf("%v missing route to %v", id, dst)
			}
			want := uint32(abs(i - j))
			if e.Metric != want {
				t.Errorf("%v->%v metric = %d, want %d", id, dst, e.Metric, want)
			}
		}
	}
}

func time(sec int) sim.Time { return sim.Time(sec) * sim.Second }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestRouteDelivery(t *testing.T) {
	g, ids := lineGraph(t, 4)
	s := New(g, Config{SplitHorizon: true})
	s.Converge(time(60))
	out := s.Route(policy.Request{Src: ids[0], Dst: ids[3]})
	if !out.Delivered || out.Looped {
		t.Fatalf("outcome = %+v", out)
	}
	if !out.Path.Equal(ad.Path{ids[0], ids[1], ids[2], ids[3]}) {
		t.Errorf("path = %v", out.Path)
	}
}

func TestShortestPathOnFigure1(t *testing.T) {
	topo := topology.Figure1()
	s := New(topo.Graph, Config{SplitHorizon: true})
	if _, ok := s.Converge(time(120)); !ok {
		t.Fatal("did not converge")
	}
	ids := topo.Graph.IDs()
	for _, src := range ids {
		for _, dst := range ids {
			if src == dst {
				continue
			}
			out := s.Route(policy.Request{Src: src, Dst: dst})
			if !out.Delivered {
				t.Errorf("%v->%v not delivered", src, dst)
			}
		}
	}
}

func TestLinkFailureReconvergence(t *testing.T) {
	topo := topology.Figure1()
	s := New(topo.Graph, Config{SplitHorizon: true})
	s.Converge(time(120))
	// Fail a redundant link: the lateral regional link (Figure 1 has
	// alternatives through the backbones).
	var lat ad.Link
	for _, l := range topo.Graph.Links() {
		if l.Class == ad.Lateral {
			lat = l
			break
		}
	}
	if err := s.FailLink(lat.A, lat.B); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Converge(time(600)); !ok {
		t.Fatal("did not reconverge after failure")
	}
	out := s.Route(policy.Request{Src: lat.A, Dst: lat.B})
	if !out.Delivered {
		t.Errorf("no route around failed link: %+v", out)
	}
	if out.Path.Hops() < 2 {
		t.Errorf("path %v still uses failed link", out.Path)
	}
}

func TestCountToInfinityWithoutSplitHorizon(t *testing.T) {
	// Two-node comparison: a partitioned line without split horizon
	// generates far more messages than with it (count to infinity).
	run := func(split bool) uint64 {
		g, ids := lineGraph(t, 3)
		s := New(g, Config{SplitHorizon: split, Infinity: 16})
		s.Converge(time(120))
		before := s.Network().Stats.MessagesSent
		// Cut the only link to ids[2]: destination unreachable.
		if err := s.FailLink(ids[1], ids[2]); err != nil {
			t.Fatal(err)
		}
		s.Converge(time(600))
		return s.Network().Stats.MessagesSent - before
	}
	with := run(true)
	without := run(false)
	if without <= with {
		t.Errorf("count-to-infinity not observed: with split=%d, without=%d", with, without)
	}
}

func TestUnreachableAfterPartition(t *testing.T) {
	g, ids := lineGraph(t, 3)
	s := New(g, Config{SplitHorizon: true})
	s.Converge(time(60))
	s.FailLink(ids[1], ids[2])
	s.Converge(time(600))
	out := s.Route(policy.Request{Src: ids[0], Dst: ids[2]})
	if out.Delivered {
		t.Errorf("delivered across partition: %+v", out)
	}
}

func TestLinkRecovery(t *testing.T) {
	g, ids := lineGraph(t, 3)
	s := New(g, Config{SplitHorizon: true})
	s.Converge(time(60))
	s.FailLink(ids[1], ids[2])
	s.Converge(time(600))
	if err := s.Network().RestoreLink(ids[1], ids[2]); err != nil {
		t.Fatal(err)
	}
	s.Converge(time(1200))
	out := s.Route(policy.Request{Src: ids[0], Dst: ids[2]})
	if !out.Delivered {
		t.Errorf("no route after recovery: %+v", out)
	}
}

func TestStateAndComputations(t *testing.T) {
	g, _ := lineGraph(t, 4)
	s := New(g, Config{SplitHorizon: true})
	s.Converge(time(60))
	// 4 nodes x 4 destinations.
	if got := s.StateEntries(); got != 16 {
		t.Errorf("StateEntries = %d, want 16", got)
	}
	if s.Computations() == 0 {
		t.Error("Computations = 0")
	}
	if s.Table(99) != nil {
		t.Error("Table(99) != nil")
	}
}

func TestIgnoresPolicy(t *testing.T) {
	// Plain DV routes through ADs that advertise no transit terms —
	// the paper's core criticism of policy-blind protocols (§3).
	g := ad.NewGraph()
	s1 := g.AddAD("s1", ad.Stub, ad.Campus)
	mh := g.AddAD("mh", ad.MultihomedStub, ad.Campus) // refuses transit
	s2 := g.AddAD("s2", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: s1, B: mh}, {A: mh, B: s2}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	sys := New(g, Config{SplitHorizon: true})
	sys.Converge(time(60))
	out := sys.Route(policy.Request{Src: s1, Dst: s2})
	if !out.Delivered {
		t.Fatal("not delivered")
	}
	oracle := core.Oracle{G: g, DB: policy.OpenDB(g)}
	if oracle.Legal(out.Path, policy.Request{Src: s1, Dst: s2}) {
		t.Error("path through transit-refusing stub reported legal — oracle broken")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, sim.Time) {
		topo := topology.Figure1()
		s := New(topo.Graph, Config{SplitHorizon: true, Seed: 7})
		conv, _ := s.Converge(time(120))
		return s.Network().Stats.MessagesSent, conv
	}
	m1, c1 := run()
	m2, c2 := run()
	if m1 != m2 || c1 != c2 {
		t.Errorf("nondeterministic: (%d,%v) vs (%d,%v)", m1, c1, m2, c2)
	}
}
