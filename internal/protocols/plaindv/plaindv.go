// Package plaindv implements a traditional Bellman-Ford distance-vector
// routing protocol (RIP-like) with no policy support. It is the convergence
// baseline of experiment E2: with split horizon disabled it exhibits the
// count-to-infinity behaviour the paper attributes to "other DV algorithms"
// (§5.1.1), and it freely violates transit policy because it cannot see it
// (§3).
package plaindv

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/dvcore"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config parameterizes the protocol.
type Config struct {
	// Infinity is the unreachable metric (classic RIP uses 16).
	Infinity uint32
	// SplitHorizon suppresses advertising a route back to the neighbor
	// it was learned from.
	SplitHorizon bool
	// Seed fixes the network RNG.
	Seed int64
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.Infinity == 0 {
		c.Infinity = 16
	}
	return c
}

// flushDelay batches triggered updates dirtied within a small window.
const flushDelay = sim.Millisecond

// node is one AD's distance-vector process.
type node struct {
	id           ad.ID
	sys          *System
	table        *dvcore.Table
	flushPending bool
}

// System is a plain-DV deployment over a topology.
type System struct {
	cfg   Config
	nw    *sim.Network
	nodes map[ad.ID]*node
	// computations counts table update rounds (one per processed
	// message), the DV analogue of a route computation.
	computations int
	started      bool
}

// New builds the system over g. The policy database is deliberately ignored:
// plain DV has no way to express it.
func New(g *ad.Graph, cfg Config) *System {
	cfg = cfg.Normalize()
	s := &System{
		cfg:   cfg,
		nw:    sim.NewNetwork(g, cfg.Seed),
		nodes: make(map[ad.ID]*node),
	}
	for _, id := range g.IDs() {
		n := &node{id: id, sys: s, table: dvcore.NewTable()}
		s.nodes[id] = n
		s.nw.AddNode(n)
	}
	return s
}

// Name implements core.System.
func (s *System) Name() string { return "plain-dv" }

// Network implements core.System.
func (s *System) Network() *sim.Network { return s.nw }

// Converge implements core.System.
func (s *System) Converge(limit sim.Time) (sim.Time, bool) {
	if !s.started {
		s.started = true
		s.nw.Start()
	}
	return s.nw.RunToQuiescence(limit)
}

// Route implements core.System: hop-by-hop forwarding over the FIBs.
func (s *System) Route(req policy.Request) core.Outcome {
	k := dvcore.Key{Dest: req.Dst, QOS: 0}
	path, delivered, looped := dvcore.FollowNextHops(req.Src, k, func(id ad.ID) *dvcore.Table {
		if n, ok := s.nodes[id]; ok {
			return n.table
		}
		return nil
	})
	return core.Outcome{Path: path, Delivered: delivered, Looped: looped}
}

// StateEntries implements core.System.
func (s *System) StateEntries() int {
	total := 0
	for _, n := range s.nodes {
		total += n.table.Len()
	}
	return total
}

// Computations implements core.System.
func (s *System) Computations() int { return s.computations }

// Table exposes an AD's routing table for tests.
func (s *System) Table(id ad.ID) *dvcore.Table {
	if n, ok := s.nodes[id]; ok {
		return n.table
	}
	return nil
}

// FailLink injects a link failure.
func (s *System) FailLink(a, b ad.ID) error { return s.nw.FailLink(a, b) }

// node implementation.

func (n *node) ID() ad.ID { return n.id }

func (n *node) Start(nw *sim.Network) {
	n.table.Set(dvcore.Entry{Key: dvcore.Key{Dest: n.id}, Metric: 0, NextHop: n.id})
	n.scheduleFlush(nw)
}

func (n *node) scheduleFlush(nw *sim.Network) {
	if n.flushPending {
		return
	}
	n.flushPending = true
	nw.After(flushDelay, func() {
		n.flushPending = false
		n.flush(nw)
	})
}

// flush sends the dirtied routes to every up neighbor, applying split
// horizon per neighbor if configured.
func (n *node) flush(nw *sim.Network) {
	dirty := n.table.TakeDirty()
	if len(dirty) == 0 {
		return
	}
	for _, nb := range nw.UpNeighbors(n.id) {
		var upd wire.DVUpdate
		for _, k := range dirty {
			e, ok := n.table.Get(k)
			if !ok {
				upd.Routes = append(upd.Routes, wire.DVRoute{Dest: k.Dest, Metric: n.sys.cfg.Infinity})
				continue
			}
			if n.sys.cfg.SplitHorizon && e.NextHop == nb {
				continue
			}
			upd.Routes = append(upd.Routes, wire.DVRoute{Dest: k.Dest, Metric: e.Metric})
		}
		if len(upd.Routes) > 0 {
			nw.Send("dv", n.id, nb, wire.Marshal(&upd))
		}
	}
}

func (n *node) Receive(nw *sim.Network, from ad.ID, payload []byte) {
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		return
	}
	upd, ok := msg.(*wire.DVUpdate)
	if !ok {
		return
	}
	if len(upd.Routes) == 0 {
		// RIP-style full-table request (sent after a topology change):
		// respond with the complete table, split-horizon filtered.
		n.respondFullTable(nw, from)
		return
	}
	n.sys.computations++
	link, ok := nw.Graph.LinkBetween(n.id, from)
	if !ok {
		return
	}
	inf := n.sys.cfg.Infinity
	changed := false
	for _, rt := range upd.Routes {
		if rt.Dest == n.id {
			continue
		}
		metric := rt.Metric + link.Cost
		if metric > inf {
			metric = inf
		}
		k := dvcore.Key{Dest: rt.Dest}
		cur, have := n.table.Get(k)
		switch {
		case have && cur.NextHop == from:
			// Updates from the current next hop are authoritative,
			// better or worse.
			e := dvcore.Entry{Key: k, Metric: metric, NextHop: from}
			if metric >= inf {
				e.NextHop = ad.Invalid
			}
			if n.table.Set(e) {
				changed = true
			}
		case !have || metric < cur.Metric:
			if metric >= inf {
				continue // don't learn fresh unreachables
			}
			if n.table.Set(dvcore.Entry{Key: k, Metric: metric, NextHop: from}) {
				changed = true
			}
		}
	}
	if changed {
		n.scheduleFlush(nw)
	}
}

// respondFullTable answers a table request from nb with every route,
// applying split horizon if configured.
func (n *node) respondFullTable(nw *sim.Network, nb ad.ID) {
	var upd wire.DVUpdate
	for _, e := range n.table.Entries() {
		if n.sys.cfg.SplitHorizon && e.NextHop == nb {
			continue
		}
		upd.Routes = append(upd.Routes, wire.DVRoute{Dest: e.Key.Dest, Metric: e.Metric})
	}
	if len(upd.Routes) > 0 {
		nw.Send("dv", n.id, nb, wire.Marshal(&upd))
	}
}

func (n *node) LinkDown(nw *sim.Network, nb ad.ID) {
	inf := n.sys.cfg.Infinity
	changed := false
	for _, k := range n.table.ViaNeighbor(nb) {
		e, _ := n.table.Get(k)
		e.Metric = inf
		e.NextHop = ad.Invalid
		if n.table.Set(e) {
			changed = true
		}
	}
	if changed {
		n.scheduleFlush(nw)
		// Solicit alternatives from the remaining neighbors (RIP
		// request). Without split horizon a neighbor may answer with
		// the stale route it learned from us, starting the classic
		// count-to-infinity bounce.
		for _, other := range nw.UpNeighbors(n.id) {
			nw.Send("dv", n.id, other, wire.Marshal(&wire.DVUpdate{}))
		}
	}
}

func (n *node) LinkUp(nw *sim.Network, nb ad.ID) {
	// Re-advertise the full table to the recovered neighbor by marking
	// everything dirty.
	for _, e := range n.table.Entries() {
		n.table.Delete(e.Key)
		n.table.Set(e)
	}
	n.scheduleFlush(nw)
}
