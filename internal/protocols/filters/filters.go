// Package filters implements the pre-policy-routing baseline of Breslau &
// Estrin (SIGCOMM 1990) §3: network access control by per-gateway packet
// filters, with no advertisement of filtering policies. Sources know the
// topology (but not the policies) and discover usable routes the only way
// available to them — by sending packets and waiting for a higher-level
// timeout when a silent filter drops them.
//
// The paper's argument is that this is not sufficient: "transit networks
// must advertise their filtering policies in order to prevent routing loops
// and dropped packets. It is not sufficient to discover a policy by having
// packets dropped until a higher level timeout occurs." Experiment E11
// quantifies the cost: packets lost and discovery latency versus ORWG's
// setup-validated routes.
package filters

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/wire"
)

// ackBit marks a probe acknowledgement travelling back to the source. Acks
// model transport-level acknowledgements and are not themselves filtered.
const ackBit = uint64(1) << 63

// Config parameterizes the baseline.
type Config struct {
	// Seed fixes the network RNG.
	Seed int64
	// MaxCandidates bounds how many distinct source routes a source
	// tries before giving up.
	MaxCandidates int
	// Timeout is the higher-level timeout after which the source deems
	// an attempt dropped.
	Timeout sim.Time
	// Payload is the probe payload size in bytes.
	Payload int
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.MaxCandidates < 1 {
		c.MaxCandidates = 4
	}
	if c.Timeout == 0 {
		c.Timeout = 500 * sim.Millisecond
	}
	if c.Payload == 0 {
		c.Payload = 64
	}
	return c
}

// Discovery reports one source's attempt to find a working route.
type Discovery struct {
	Delivered bool
	Path      ad.Path
	// Attempts is the number of candidate routes tried.
	Attempts int
	// DroppedPackets counts probes silently dropped by filters.
	DroppedPackets int
	// Latency is the time from first probe to acknowledged delivery
	// (including timeout waits), or the total time wasted on failure.
	Latency sim.Time
}

// System is a filter-baseline deployment.
type System struct {
	cfg    Config
	nw     *sim.Network
	db     *policy.DB
	openDB *policy.DB
	nodes  map[ad.ID]*node

	// Dropped counts filter drops across the run.
	Dropped int

	probeSeq uint64
	acked    map[uint64]bool
	started  bool
}

// New builds the baseline over g. db is each gateway's private filter
// policy; sources never see it.
func New(g *ad.Graph, db *policy.DB, cfg Config) *System {
	cfg = cfg.Normalize()
	s := &System{
		cfg:    cfg,
		nw:     sim.NewNetwork(g, cfg.Seed),
		db:     db,
		openDB: policy.OpenDB(g),
		nodes:  make(map[ad.ID]*node),
		acked:  make(map[uint64]bool),
	}
	for _, id := range g.IDs() {
		n := &node{id: id, sys: s}
		s.nodes[id] = n
		s.nw.AddNode(n)
	}
	return s
}

// Name implements core.System.
func (s *System) Name() string { return "filters" }

// Network implements core.System.
func (s *System) Network() *sim.Network { return s.nw }

// Converge implements core.System: there is no routing protocol, so the
// system is trivially converged.
func (s *System) Converge(limit sim.Time) (sim.Time, bool) {
	s.started = true
	return 0, true
}

// Discover runs the source's trial-and-error process for req.
func (s *System) Discover(req policy.Request) Discovery {
	var d Discovery
	if req.Src == req.Dst {
		d.Delivered = true
		d.Path = ad.Path{req.Src}
		return d
	}
	// Sources know the topology but not the policies: candidates are the
	// k shortest paths under an all-open assumption.
	candidates := synthesis.KShortest(s.nw.Graph, s.openDB, req, s.cfg.MaxCandidates, 0)
	start := s.nw.Now()
	for _, cand := range candidates {
		d.Attempts++
		s.probeSeq++
		id := s.probeSeq
		droppedBefore := s.Dropped
		pkt := &wire.Data{
			Handle:  id,
			Mode:    wire.ModeSourceRoute,
			Req:     req,
			Route:   cand,
			Payload: make([]byte, s.cfg.Payload),
		}
		sent := s.nw.Now()
		s.nw.Send("probe", req.Src, cand[1], wire.Marshal(pkt))
		s.nw.Engine.Run()
		if s.acked[id] {
			d.Delivered = true
			d.Path = cand
			d.Latency = s.nw.Now() - start
			return d
		}
		d.DroppedPackets += s.Dropped - droppedBefore
		// The source learns of the failure only via timeout.
		wait := sent + s.cfg.Timeout
		if wait > s.nw.Now() {
			s.nw.Engine.At(wait, func() {})
			s.nw.Engine.Run()
		}
	}
	d.Latency = s.nw.Now() - start
	return d
}

// Route implements core.System.
func (s *System) Route(req policy.Request) core.Outcome {
	d := s.Discover(req)
	return core.Outcome{Path: d.Path, Delivered: d.Delivered}
}

// StateEntries implements core.System: filters keep no routing state.
func (s *System) StateEntries() int { return 0 }

// Computations implements core.System: the source-side candidate
// enumeration is the only computation, charged per Discover call.
func (s *System) Computations() int { return int(s.probeSeq) }

// node is one AD's filtering gateway.
type node struct {
	id  ad.ID
	sys *System
}

func (n *node) ID() ad.ID                          { return n.id }
func (n *node) Start(nw *sim.Network)              {}
func (n *node) LinkDown(nw *sim.Network, nb ad.ID) {}
func (n *node) LinkUp(nw *sim.Network, nb ad.ID)   {}

func (n *node) Receive(nw *sim.Network, from ad.ID, payload []byte) {
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		return
	}
	pkt, ok := msg.(*wire.Data)
	if !ok || pkt.Mode != wire.ModeSourceRoute {
		return
	}
	if pkt.Handle&ackBit != 0 {
		n.forwardAck(nw, pkt)
		return
	}
	idx := int(pkt.HopIndex) + 1
	if idx >= len(pkt.Route) || pkt.Route[idx] != n.id {
		return // misrouted
	}
	if idx == len(pkt.Route)-1 {
		// Destination: acknowledge along the reverse route.
		ack := &wire.Data{
			Handle:   pkt.Handle | ackBit,
			Mode:     wire.ModeSourceRoute,
			HopIndex: 0,
			Req:      pkt.Req,
			Route:    pkt.Route.Reverse(),
		}
		if len(ack.Route) >= 2 {
			nw.Send("ack", n.id, ack.Route[1], wire.Marshal(ack))
		}
		return
	}
	// Transit gateway: silent filter. The packet is dropped unless some
	// local term permits the traversal; no notification is sent.
	prev := pkt.Route[idx-1]
	next := pkt.Route[idx+1]
	if _, ok := n.sys.db.PermitsTransit(n.id, pkt.Req, prev, next); !ok {
		n.sys.Dropped++
		return
	}
	pkt.HopIndex++
	nw.Send("probe", n.id, next, wire.Marshal(pkt))
}

// forwardAck relays an acknowledgement (unfiltered) toward the original
// source; at the end it resolves the pending probe.
func (n *node) forwardAck(nw *sim.Network, pkt *wire.Data) {
	idx := int(pkt.HopIndex) + 1
	if idx >= len(pkt.Route) || pkt.Route[idx] != n.id {
		return
	}
	if idx == len(pkt.Route)-1 {
		n.sys.acked[pkt.Handle&^ackBit] = true
		return
	}
	pkt.HopIndex++
	nw.Send("ack", n.id, pkt.Route[idx+1], wire.Marshal(pkt))
}
