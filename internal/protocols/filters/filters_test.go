package filters

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

var _ core.System = (*System)(nil)

// twoPathNet: src can reach d via t1 (short) or t2 (long). t1 filters src.
func twoPathNet(t *testing.T) (*ad.Graph, *policy.DB, ad.ID, ad.ID, ad.ID, ad.ID) {
	t.Helper()
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: t1, Cost: 1}, {A: t1, B: d, Cost: 1},
		{A: src, B: t2, Cost: 3}, {A: t2, B: d, Cost: 3},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	term1 := policy.OpenTerm(t1, 0)
	term1.Sources = policy.SetOf(d) // src is filtered at t1
	db.Add(term1)
	db.Add(policy.OpenTerm(t2, 0))
	return g, db, src, t1, t2, d
}

func TestDiscoveryFindsSecondPath(t *testing.T) {
	g, db, src, t1, t2, d := twoPathNet(t)
	s := New(g, db, Config{Timeout: 100 * sim.Millisecond})
	s.Converge(0)
	disc := s.Discover(policy.Request{Src: src, Dst: d})
	if !disc.Delivered {
		t.Fatalf("discovery failed: %+v", disc)
	}
	if !disc.Path.Contains(t2) || disc.Path.Contains(t1) {
		t.Errorf("path = %v, want via t2", disc.Path)
	}
	if disc.Attempts < 2 {
		t.Errorf("attempts = %d, want >= 2 (first candidate filtered)", disc.Attempts)
	}
	if disc.DroppedPackets == 0 {
		t.Error("no dropped packets recorded")
	}
	// Latency includes at least one full timeout.
	if disc.Latency < 100*sim.Millisecond {
		t.Errorf("latency = %v, want >= timeout", disc.Latency)
	}
}

func TestFirstPathWorksNoTimeout(t *testing.T) {
	g, _, src, _, _, d := twoPathNet(t)
	open := policy.OpenDB(g)
	s := New(g, open, Config{Timeout: 100 * sim.Millisecond})
	disc := s.Discover(policy.Request{Src: src, Dst: d})
	if !disc.Delivered || disc.Attempts != 1 || disc.DroppedPackets != 0 {
		t.Errorf("open-policy discovery: %+v", disc)
	}
	if disc.Latency >= 100*sim.Millisecond {
		t.Errorf("latency %v includes a timeout on a working path", disc.Latency)
	}
}

func TestAllCandidatesFiltered(t *testing.T) {
	g, _, src, t1, t2, d := twoPathNet(t)
	db := policy.NewDB()
	blocked1 := policy.OpenTerm(t1, 0)
	blocked1.Sources = policy.SetOf(d)
	db.Add(blocked1)
	blocked2 := policy.OpenTerm(t2, 0)
	blocked2.Sources = policy.SetOf(d)
	db.Add(blocked2)
	s := New(g, db, Config{Timeout: 50 * sim.Millisecond, MaxCandidates: 4})
	disc := s.Discover(policy.Request{Src: src, Dst: d})
	if disc.Delivered {
		t.Errorf("delivered despite all paths filtered: %+v", disc)
	}
	if disc.DroppedPackets == 0 {
		t.Error("no drops recorded")
	}
	// Wasted time: one timeout per attempt.
	if disc.Latency < sim.Time(disc.Attempts)*50*sim.Millisecond {
		t.Errorf("latency %v < attempts x timeout", disc.Latency)
	}
}

func TestRouteInterface(t *testing.T) {
	g, db, src, _, _, d := twoPathNet(t)
	s := New(g, db, Config{Timeout: 50 * sim.Millisecond})
	out := s.Route(policy.Request{Src: src, Dst: d})
	if !out.Delivered {
		t.Errorf("Route: %+v", out)
	}
	self := s.Route(policy.Request{Src: src, Dst: src})
	if !self.Delivered || len(self.Path) != 1 {
		t.Errorf("self route: %+v", self)
	}
	if s.StateEntries() != 0 {
		t.Error("filters should keep no routing state")
	}
	if s.Computations() == 0 {
		t.Error("no probes counted")
	}
}

func TestComparedWithORWGOnFigure1(t *testing.T) {
	// The filter baseline wastes packets and time that policy routing
	// does not: on a restricted Figure-1 policy set, discovery drops
	// packets while ORWG-style validation would not send any.
	topo := topology.Figure1()
	db := policy.Generate(topo.Graph, policy.GenConfig{Seed: 17, SourceRestrictionProb: 0.7, SourceFraction: 0.4})
	s := New(topo.Graph, db, Config{Timeout: 50 * sim.Millisecond, MaxCandidates: 5})
	reqs := core.AllPairsRequests(topo.Graph, true, 0, 0)
	totalDrops := 0
	for _, req := range reqs {
		d := s.Discover(req)
		totalDrops += d.DroppedPackets
	}
	if totalDrops == 0 {
		t.Error("restricted policies caused no drops — baseline inert")
	}
}
