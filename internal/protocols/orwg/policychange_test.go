package orwg

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
)

// policyChangeNet: src can reach d via t1 (cheap) or t2 (expensive).
func policyChangeNet(t *testing.T) (*ad.Graph, ad.ID, ad.ID, ad.ID, ad.ID) {
	t.Helper()
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: t1, Cost: 1}, {A: t1, B: d, Cost: 1},
		{A: src, B: t2, Cost: 5}, {A: t2, B: d, Cost: 5},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return g, src, t1, t2, d
}

func TestPolicyChangeTearsDownStaleRoutes(t *testing.T) {
	g, src, t1, t2, d := policyChangeNet(t)
	db := policy.NewDB()
	db.Add(policy.OpenTerm(t1, 0))
	db.Add(policy.OpenTerm(t2, 0))
	s := converged(t, g, db, Config{})

	req := policy.Request{Src: src, Dst: d}
	res := s.Establish(req)
	if !res.OK || !res.Path.Contains(t1) {
		t.Fatalf("initial establish: %+v (want via cheap t1)", res)
	}
	if delivered, _ := s.SendData(src, res.Handle, 8); !delivered {
		t.Fatal("initial data failed")
	}

	// t1 tightens its policy: it now carries only d's traffic. The PG
	// must tear the stale route down (NAK to the source).
	restricted := policy.OpenTerm(t1, 0)
	restricted.Sources = policy.SetOf(d)
	if err := s.UpdatePolicy(t1, []policy.Term{restricted}); err != nil {
		t.Fatal(err)
	}

	// The old handle is dead: the source dropped its established entry.
	if delivered, _ := s.SendData(src, res.Handle, 8); delivered {
		t.Error("data delivered over a route the new policy forbids")
	}

	// A fresh synthesis finds the legal alternative via t2.
	res2 := s.Establish(req)
	if !res2.OK {
		t.Fatalf("re-establish failed: %+v", res2)
	}
	if !res2.Path.Contains(t2) || res2.Path.Contains(t1) {
		t.Errorf("new route = %v, want via t2 only", res2.Path)
	}
	oracle := core.Oracle{G: g, DB: s.PolicyDB()}
	if !oracle.Legal(res2.Path, req) {
		t.Errorf("new route illegal: %v", res2.Path)
	}
	if delivered, _ := s.SendData(src, res2.Handle, 8); !delivered {
		t.Error("data over the new route failed")
	}
}

func TestPolicyChangeRelaxationOpensRoutes(t *testing.T) {
	g, src, t1, t2, d := policyChangeNet(t)
	// Start with t1 closed to src; only the expensive t2 works.
	db := policy.NewDB()
	closed := policy.OpenTerm(t1, 0)
	closed.Sources = policy.SetOf(d)
	db.Add(closed)
	db.Add(policy.OpenTerm(t2, 0))
	s := converged(t, g, db, Config{})

	req := policy.Request{Src: src, Dst: d}
	res := s.Establish(req)
	if !res.OK || !res.Path.Contains(t2) {
		t.Fatalf("initial: %+v (want via t2)", res)
	}

	// t1 relaxes to an open policy; new synthesis should prefer it.
	if err := s.UpdatePolicy(t1, []policy.Term{policy.OpenTerm(t1, 0)}); err != nil {
		t.Fatal(err)
	}
	res2 := s.Establish(req)
	if !res2.OK || !res2.Path.Contains(t1) {
		t.Errorf("after relaxation: %+v (want cheap route via t1)", res2)
	}
	// The pre-existing route via t2 keeps working (still legal).
	if delivered, _ := s.SendData(src, res.Handle, 8); !delivered {
		t.Error("still-legal old route was torn down")
	}
}

func TestPolicyChangeOnlyAffectsMatchingFlows(t *testing.T) {
	// Two sources through one transit; the policy change cuts only one.
	g := ad.NewGraph()
	s1 := g.AddAD("s1", ad.Stub, ad.Campus)
	s2 := g.AddAD("s2", ad.Stub, ad.Campus)
	tr := g.AddAD("tr", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: s1, B: tr}, {A: s2, B: tr}, {A: tr, B: d}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	db.Add(policy.OpenTerm(tr, 0))
	s := converged(t, g, db, Config{})

	r1 := s.Establish(policy.Request{Src: s1, Dst: d})
	r2 := s.Establish(policy.Request{Src: s2, Dst: d})
	if !r1.OK || !r2.OK {
		t.Fatalf("establish: %+v %+v", r1, r2)
	}

	// tr now excludes s1 only.
	term := policy.OpenTerm(tr, 0)
	term.Sources = policy.SetOf(s2, d)
	if err := s.UpdatePolicy(tr, []policy.Term{term}); err != nil {
		t.Fatal(err)
	}

	if delivered, _ := s.SendData(s1, r1.Handle, 8); delivered {
		t.Error("excluded source still delivered")
	}
	if delivered, _ := s.SendData(s2, r2.Handle, 8); !delivered {
		t.Error("unaffected source torn down")
	}
}

func TestUpdatePolicyUnknownAD(t *testing.T) {
	g, _, _, _, _ := policyChangeNet(t)
	s := converged(t, g, policy.OpenDB(g), Config{})
	if err := s.UpdatePolicy(999, nil); err == nil {
		t.Error("UpdatePolicy(999) did not error")
	}
}
