// Package orwg implements the Open Routing Working Group / Clark
// architecture recommended by Breslau & Estrin (SIGCOMM 1990) §5.4: link
// state flooding of topology and policy terms, source-computed policy
// routes, and a setup/handle forwarding plane.
//
// Each AD floods an LSA carrying its adjacencies and policy terms. A Route
// Server at the source synthesizes a policy route (via a configurable
// precomputation/on-demand strategy, §5.4.1) and emits a Setup packet
// carrying the full AD route and, per transit AD, the policy term the
// source claims authorizes the traversal. Policy Gateways validate the
// claim against their own local policy — not the flooded copy — cache the
// handle, and forward. Subsequent data packets carry only the handle;
// the header-length saving is measured by experiment E5.
package orwg

import (
	"fmt"
	"sort"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/wire"
)

// StrategyKind selects the route server's synthesis strategy.
type StrategyKind string

// Available strategies (experiment E7).
const (
	OnDemand    StrategyKind = "on-demand"
	Precomputed StrategyKind = "precomputed"
	Hybrid      StrategyKind = "hybrid"
)

// Config parameterizes the system.
type Config struct {
	// Seed fixes the network RNG.
	Seed int64
	// Strategy is the route-server synthesis strategy.
	Strategy StrategyKind
	// HotRequests seeds the precomputed/hybrid strategies.
	HotRequests []policy.Request
	// CacheCapacity bounds each policy gateway's handle cache (0 =
	// unlimited). Exceeding it evicts the least recently used handle —
	// the PG state-management issue of §6.
	CacheCapacity int
	// DataPayload is the payload size for Route's verification packet.
	DataPayload int
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.Strategy == "" {
		c.Strategy = OnDemand
	}
	if c.DataPayload == 0 {
		c.DataPayload = 64
	}
	return c
}

// SetupResult reports one route establishment.
type SetupResult struct {
	Handle   uint64
	Path     ad.Path
	OK       bool
	FailCode uint8
	FailedAt ad.ID
	// RTT is the simulated time from setup emission to the reply.
	RTT sim.Time
	// Messages is the number of protocol messages the setup consumed.
	Messages uint64
	// SynthesisExpansions is the route-server search work.
	SynthesisExpansions int
}

// CacheStats aggregates policy-gateway handle-cache behaviour.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// System is an ORWG deployment.
type System struct {
	cfg   Config
	nw    *sim.Network
	db    *policy.DB
	nodes map[ad.ID]*node

	started bool
}

// New builds the system over g with policy db.
func New(g *ad.Graph, db *policy.DB, cfg Config) *System {
	cfg = cfg.Normalize()
	s := &System{
		cfg:   cfg,
		nw:    sim.NewNetwork(g, cfg.Seed),
		db:    db,
		nodes: make(map[ad.ID]*node),
	}
	for _, id := range g.IDs() {
		n := &node{
			id:          id,
			sys:         s,
			flooder:     flood.NewFlooder(id, "lsa"),
			cache:       make(map[uint64]*cacheEntry),
			established: make(map[uint64]ad.Path),
			delivered:   make(map[uint64]int),
		}
		n.flooder.OnChange = n.onLSDBChange
		s.nodes[id] = n
		s.nw.AddNode(n)
	}
	return s
}

// Name implements core.System.
func (s *System) Name() string { return "orwg" }

// Network implements core.System.
func (s *System) Network() *sim.Network { return s.nw }

// Converge implements core.System: floods all LSAs to quiescence.
func (s *System) Converge(limit sim.Time) (sim.Time, bool) {
	if !s.started {
		s.started = true
		s.nw.Start()
	}
	return s.nw.RunToQuiescence(limit)
}

// Establish synthesizes and sets up a policy route for req, running the
// simulation through the full setup exchange.
func (s *System) Establish(req policy.Request) SetupResult {
	src, ok := s.nodes[req.Src]
	if !ok {
		return SetupResult{}
	}
	msgs0 := s.nw.Stats.MessagesSent
	path, keys, expansions, found := src.synthesize(req)
	res := SetupResult{SynthesisExpansions: expansions}
	if !found {
		return res
	}
	res.Path = path
	if len(path) == 1 {
		// Traffic to self needs no setup.
		res.OK = true
		return res
	}
	handle := src.newHandle()
	res.Handle = handle
	t0 := s.nw.Now()
	src.startSetup(s.nw, handle, req, path, keys)
	s.nw.Engine.Run()
	res.Messages = s.nw.Stats.MessagesSent - msgs0
	res.RTT = s.nw.Now() - t0
	if est, ok := src.established[handle]; ok {
		res.OK = true
		res.Path = est
	} else {
		res.FailCode = src.lastFailCode
		res.FailedAt = src.lastFailedAt
	}
	return res
}

// SendData sends one data packet down an established handle and runs the
// simulation until it is delivered or dropped. It returns whether the
// destination received it and the packet's routing-header length.
func (s *System) SendData(srcID ad.ID, handle uint64, payload int) (delivered bool, headerBytes int) {
	src, ok := s.nodes[srcID]
	if !ok {
		return false, 0
	}
	path, ok := src.established[handle]
	if !ok || len(path) < 2 {
		return false, 0
	}
	pkt := &wire.Data{
		Handle:  handle,
		Mode:    wire.ModeHandle,
		Payload: make([]byte, payload),
	}
	headerBytes = pkt.HeaderLen()
	dest := s.nodes[path.Dest()]
	before := dest.delivered[handle]
	s.nw.Send("data", srcID, path[1], wire.Marshal(pkt))
	s.nw.Engine.Run()
	return dest.delivered[handle] > before, headerBytes
}

// Teardown releases an established route.
func (s *System) Teardown(srcID ad.ID, handle uint64) {
	src, ok := s.nodes[srcID]
	if !ok {
		return
	}
	path, ok := src.established[handle]
	if !ok {
		return
	}
	delete(src.established, handle)
	delete(src.cache, handle)
	if len(path) >= 2 {
		s.nw.Send("teardown", srcID, path[1], wire.Marshal(&wire.Teardown{Handle: handle}))
		s.nw.Engine.Run()
	}
}

// Route implements core.System: establish a policy route, then verify it by
// forwarding an actual data packet over the handle plane.
func (s *System) Route(req policy.Request) core.Outcome {
	res := s.Establish(req)
	if !res.OK {
		return core.Outcome{Path: res.Path, SetupMessages: int(res.Messages)}
	}
	if len(res.Path) == 1 {
		return core.Outcome{Path: res.Path, Delivered: true}
	}
	delivered, _ := s.SendData(req.Src, res.Handle, s.cfg.DataPayload)
	return core.Outcome{
		Path:          res.Path,
		Delivered:     delivered,
		SetupMessages: int(res.Messages),
	}
}

// StateEntries implements core.System: LSDB entries plus cached handles —
// the policy-gateway state of §6.
func (s *System) StateEntries() int {
	total := 0
	for _, n := range s.nodes {
		total += n.flooder.DB.Len()
		total += len(n.cache)
	}
	return total
}

// Computations implements core.System: total route-server search
// expansions.
func (s *System) Computations() int {
	total := 0
	for _, n := range s.nodes {
		if n.strategy != nil {
			st := n.strategy.Stats()
			total += st.PrecomputeExpansions + st.OnDemandExpansions
		}
	}
	return total
}

// CacheStats aggregates every PG's handle-cache counters.
func (s *System) CacheStats() CacheStats {
	var cs CacheStats
	for _, n := range s.nodes {
		cs.Hits += n.cacheHits
		cs.Misses += n.cacheMisses
		cs.Evictions += n.cacheEvictions
		cs.Entries += len(n.cache)
	}
	return cs
}

// LSDBBytes returns the marshalled size of one AD's LSDB (they converge to
// the same contents), the policy-distribution memory metric of E8.
func (s *System) LSDBBytes() int {
	for _, n := range s.nodes {
		return n.flooder.DB.WireBytes()
	}
	return 0
}

// FailLink injects a link failure.
func (s *System) FailLink(a, b ad.ID) error { return s.nw.FailLink(a, b) }

// UpdatePolicy replaces an AD's policy terms at runtime: the AD re-floods
// its LSA with the new terms, and its policy gateway re-validates every
// cached policy route, tearing down routes the new policy no longer permits
// (a SetupReply NAK propagates back so the source drops the route and can
// re-synthesize). This exercises §5.4.1's operating assumption — "policy
// and topology change much more slowly than the time required for route
// setup" — when policy does change.
func (s *System) UpdatePolicy(id ad.ID, terms []policy.Term) error {
	n, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("orwg: unknown AD %v", id)
	}
	// Install the new terms in the ground-truth database by replacing
	// the AD's term set.
	s.db = s.db.WithTerms(id, terms)
	// Re-flood and re-validate.
	n.flooder.Originate(s.nw, s.db.Terms(id))
	n.revalidateCache(s.nw)
	s.nw.Engine.Run()
	return nil
}

// PolicyDB exposes the current ground-truth policy database.
func (s *System) PolicyDB() *policy.DB { return s.db }

// cacheEntry is one PG's cached policy-route state for a handle.
type cacheEntry struct {
	route    ad.Path
	idx      int // this AD's position on the route
	req      policy.Request
	lastUsed sim.Time
	seq      uint64 // LRU tiebreak
}

// node is one AD's ORWG process: flooder, route server, and policy gateway.
type node struct {
	id      ad.ID
	sys     *System
	flooder *flood.Flooder

	// Route server state.
	view      *ad.Graph
	viewDB    *policy.DB
	viewDirty bool
	strategy  synthesis.Strategy

	// Policy gateway state.
	cache          map[uint64]*cacheEntry
	cacheSeq       uint64
	cacheHits      uint64
	cacheMisses    uint64
	cacheEvictions uint64

	// Source state.
	handleSeq    uint32
	established  map[uint64]ad.Path
	lastFailCode uint8
	lastFailedAt ad.ID

	// Destination state: packets delivered per handle.
	delivered map[uint64]int
}

func (n *node) ID() ad.ID { return n.id }

func (n *node) Start(nw *sim.Network) {
	n.flooder.Originate(nw, n.sys.db.Terms(n.id))
}

func (n *node) onLSDBChange(nw *sim.Network) {
	n.viewDirty = true
}

func (n *node) refreshView() {
	if n.view != nil && !n.viewDirty {
		return
	}
	n.view = n.flooder.DB.Graph()
	n.viewDB = n.flooder.DB.PolicyDB()
	n.viewDB.SetCriteria(n.id, n.sys.db.CriteriaFor(n.id))
	n.viewDirty = false
	if n.strategy != nil {
		n.strategy = n.buildStrategy()
	}
}

func (n *node) buildStrategy() synthesis.Strategy {
	switch n.sys.cfg.Strategy {
	case Precomputed:
		return synthesis.NewPrecomputed(n.view, n.viewDB, n.hotRequests())
	case Hybrid:
		return synthesis.NewHybrid(n.view, n.viewDB, n.hotRequests())
	default:
		return synthesis.NewOnDemand(n.view, n.viewDB)
	}
}

// hotRequests filters the configured hot set to requests sourced here.
func (n *node) hotRequests() []policy.Request {
	var out []policy.Request
	for _, r := range n.sys.cfg.HotRequests {
		if r.Src == n.id {
			out = append(out, r)
		}
	}
	return out
}

// synthesize runs the route server: compute a policy route and the claimed
// term key for each transit AD.
func (n *node) synthesize(req policy.Request) (ad.Path, []policy.Key, int, bool) {
	n.refreshView()
	if n.strategy == nil {
		n.strategy = n.buildStrategy()
	}
	st0 := n.strategy.Stats()
	path, ok := n.strategy.Route(req)
	st1 := n.strategy.Stats()
	expansions := (st1.PrecomputeExpansions + st1.OnDemandExpansions) -
		(st0.PrecomputeExpansions + st0.OnDemandExpansions)
	if !ok {
		return nil, nil, expansions, false
	}
	var keys []policy.Key
	for i := 1; i < len(path)-1; i++ {
		t, ok := n.viewDB.PermitsTransit(path[i], req, path[i-1], path[i+1])
		if !ok {
			// The strategy returned a path the view cannot justify;
			// treat as synthesis failure.
			return nil, nil, expansions, false
		}
		keys = append(keys, t.Key())
	}
	return path, keys, expansions, true
}

func (n *node) newHandle() uint64 {
	n.handleSeq++
	return uint64(n.id)<<32 | uint64(n.handleSeq)
}

// startSetup caches the source's own entry and emits the setup packet.
func (n *node) startSetup(nw *sim.Network, handle uint64, req policy.Request, route ad.Path, keys []policy.Key) {
	n.cacheInsert(nw, handle, route, 0, req)
	msg := &wire.Setup{Handle: handle, Req: req, Route: route, TermKeys: keys}
	nw.Send("setup", n.id, route[1], wire.Marshal(msg))
}

// cacheInsert adds a handle entry, evicting the LRU entry beyond capacity.
func (n *node) cacheInsert(nw *sim.Network, handle uint64, route ad.Path, idx int, req policy.Request) {
	cap := n.sys.cfg.CacheCapacity
	if cap > 0 && len(n.cache) >= cap {
		if _, exists := n.cache[handle]; !exists {
			var lruKey uint64
			var lru *cacheEntry
			for h, e := range n.cache {
				if lru == nil || e.lastUsed < lru.lastUsed ||
					(e.lastUsed == lru.lastUsed && e.seq < lru.seq) {
					lru = e
					lruKey = h
				}
			}
			delete(n.cache, lruKey)
			n.cacheEvictions++
		}
	}
	n.cacheSeq++
	n.cache[handle] = &cacheEntry{route: route, idx: idx, req: req, lastUsed: nw.Now(), seq: n.cacheSeq}
}

func (n *node) Receive(nw *sim.Network, from ad.ID, payload []byte) {
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *wire.LSA:
		n.flooder.HandleLSA(nw, from, m)
	case *wire.Setup:
		n.handleSetup(nw, from, m)
	case *wire.SetupReply:
		n.handleSetupReply(nw, from, m)
	case *wire.Data:
		n.handleData(nw, from, m)
	case *wire.Teardown:
		n.handleTeardown(nw, from, m)
	}
}

// indexOn returns this AD's position on route, or -1.
func (n *node) indexOn(route ad.Path) int {
	for i, id := range route {
		if id == n.id {
			return i
		}
	}
	return -1
}

// handleSetup validates a route setup at a policy gateway (paper §5.4.1):
// the claimed policy term must exist locally and permit the traversal.
func (n *node) handleSetup(nw *sim.Network, from ad.ID, m *wire.Setup) {
	idx := n.indexOn(m.Route)
	reject := func(code uint8) {
		nw.Send("setup-reply", n.id, from, wire.Marshal(&wire.SetupReply{
			Handle: m.Handle, Code: code, FailedAt: n.id,
		}))
	}
	if idx <= 0 || !m.Route.LoopFree() || m.Route.Dest() != m.Req.Dst || m.Route.Source() != m.Req.Src {
		reject(wire.SetupBadRoute)
		return
	}
	if m.Route[idx-1] != from {
		reject(wire.SetupBadRoute)
		return
	}
	if idx == len(m.Route)-1 {
		// Destination PG: accept, cache for the data plane, reply OK.
		n.cacheInsert(nw, m.Handle, m.Route, idx, m.Req)
		nw.Send("setup-reply", n.id, from, wire.Marshal(&wire.SetupReply{
			Handle: m.Handle, Code: wire.SetupOK,
		}))
		return
	}
	// Transit PG: validate the claimed term against LOCAL policy.
	var claimed *policy.Term
	for _, k := range m.TermKeys {
		if k.Advertiser != n.id {
			continue
		}
		for _, t := range n.sys.db.Terms(n.id) {
			if t.Serial == k.Serial {
				tt := t
				claimed = &tt
				break
			}
		}
		break
	}
	next := m.Route[idx+1]
	if claimed == nil || !claimed.Permits(m.Req, m.Route[idx-1], next) {
		reject(wire.SetupNoPolicy)
		return
	}
	if !nw.LinkIsUp(n.id, next) {
		reject(wire.SetupNoLink)
		return
	}
	n.cacheInsert(nw, m.Handle, m.Route, idx, m.Req)
	nw.Send("setup", n.id, next, wire.Marshal(m))
}

// handleSetupReply propagates a reply backward along the cached route,
// dropping the cached state on failure.
func (n *node) handleSetupReply(nw *sim.Network, from ad.ID, m *wire.SetupReply) {
	e, ok := n.cache[m.Handle]
	if !ok {
		return
	}
	if !m.OK() {
		delete(n.cache, m.Handle)
	}
	if e.idx == 0 {
		// Source: resolve the pending setup.
		if m.OK() {
			n.established[m.Handle] = e.route
		} else {
			n.lastFailCode = m.Code
			n.lastFailedAt = m.FailedAt
			delete(n.cache, m.Handle)
		}
		return
	}
	nw.Send("setup-reply", n.id, e.route[e.idx-1], wire.Marshal(m))
}

// handleData forwards a handle-mode data packet along the cached route with
// per-packet validation (is it arriving from the cached previous AD?).
func (n *node) handleData(nw *sim.Network, from ad.ID, m *wire.Data) {
	if m.Mode != wire.ModeHandle {
		return // source-route data packets are the filter baseline's plane
	}
	e, ok := n.cache[m.Handle]
	if !ok {
		n.cacheMisses++
		return // dropped: state evicted or never established
	}
	if e.idx > 0 && e.route[e.idx-1] != from {
		return // per-packet validation failure (§5.4.1)
	}
	n.cacheHits++
	n.cacheSeq++
	e.lastUsed = nw.Now()
	e.seq = n.cacheSeq
	if e.idx == len(e.route)-1 {
		n.delivered[m.Handle]++
		return
	}
	nw.Send("data", n.id, e.route[e.idx+1], wire.Marshal(m))
}

// handleTeardown releases cached state along the route.
func (n *node) handleTeardown(nw *sim.Network, from ad.ID, m *wire.Teardown) {
	e, ok := n.cache[m.Handle]
	if !ok {
		return
	}
	delete(n.cache, m.Handle)
	if e.idx < len(e.route)-1 {
		nw.Send("teardown", n.id, e.route[e.idx+1], wire.Marshal(m))
	}
}

// revalidateCache re-checks every cached policy route against this AD's
// current local policy, tearing down routes that are no longer permitted.
// Handles are processed in sorted order for determinism.
func (n *node) revalidateCache(nw *sim.Network) {
	handles := make([]uint64, 0, len(n.cache))
	for h := range n.cache {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	for _, h := range handles {
		e := n.cache[h]
		if e.idx == 0 || e.idx == len(e.route)-1 {
			continue // sources and destinations hold no transit obligation
		}
		prev, next := e.route[e.idx-1], e.route[e.idx+1]
		permitted := false
		for _, t := range n.sys.db.Terms(n.id) {
			if t.Permits(e.req, prev, next) {
				permitted = true
				break
			}
		}
		if permitted {
			continue
		}
		delete(n.cache, h)
		nw.Send("setup-reply", n.id, prev, wire.Marshal(&wire.SetupReply{
			Handle: h, Code: wire.SetupNoPolicy, FailedAt: n.id,
		}))
	}
}

func (n *node) LinkDown(nw *sim.Network, nb ad.ID) {
	n.flooder.Originate(nw, n.sys.db.Terms(n.id))
	// Established routes using the failed adjacency die at the source.
	for h, p := range n.established {
		for i := 1; i < len(p); i++ {
			if (p[i-1] == n.id && p[i] == nb) || (p[i-1] == nb && p[i] == n.id) {
				delete(n.established, h)
				break
			}
		}
	}
}

func (n *node) LinkUp(nw *sim.Network, nb ad.ID) {
	n.flooder.Originate(nw, n.sys.db.Terms(n.id))
}

// String aids debugging.
func (n *node) String() string { return fmt.Sprintf("orwg-node(%v)", n.id) }
