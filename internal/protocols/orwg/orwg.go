// Package orwg implements the Open Routing Working Group / Clark
// architecture recommended by Breslau & Estrin (SIGCOMM 1990) §5.4: link
// state flooding of topology and policy terms, source-computed policy
// routes, and a setup/handle forwarding plane.
//
// Each AD floods an LSA carrying its adjacencies and policy terms. A Route
// Server at the source synthesizes a policy route (via a configurable
// precomputation/on-demand strategy, §5.4.1) and emits a Setup packet
// carrying the full AD route and, per transit AD, the policy term the
// source claims authorizes the traversal. Policy Gateways validate the
// claim against their own local policy — not the flooded copy — cache the
// handle, and forward. Subsequent data packets carry only the handle;
// the header-length saving is measured by experiment E5.
//
// Per-PG handle state is managed by internal/pgstate under a configurable
// lifecycle discipline (§6): hard state released only by teardown, soft
// state kept alive by source-driven Refresh messages, or a capped LRU
// table. Each simulated PG runs its table with a single shard (nodes are
// single-threaded; Config.Normalize pins State.Shards to 1 unless
// overridden) while still getting the timer-wheel expiry, so ExpireDue
// sweeps cost due-handles work, not table-size work. A PG that no longer holds state for an arriving data or refresh
// packet NAKs with SetupNoState; the NAK walks back to the source, which
// queues the flow for re-establishment (RepairAll). Link failures trigger
// the same repair path eagerly: the failed link's endpoints flush crossing
// entries, NAK upstream, and tear down downstream.
package orwg

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/metrics"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/wire"
)

// StrategyKind selects the route server's synthesis strategy.
type StrategyKind string

// Available strategies (experiment E7).
const (
	OnDemand    StrategyKind = "on-demand"
	Precomputed StrategyKind = "precomputed"
	Hybrid      StrategyKind = "hybrid"
)

// Config parameterizes the system.
type Config struct {
	// Seed fixes the network RNG.
	Seed int64
	// Strategy is the route-server synthesis strategy.
	Strategy StrategyKind
	// HotRequests seeds the precomputed/hybrid strategies.
	HotRequests []policy.Request
	// CacheCapacity is the legacy capped-cache knob: a positive value is
	// shorthand for State{Kind: Capped, Capacity: CacheCapacity}. Ignored
	// when State.Kind is set explicitly.
	CacheCapacity int
	// State selects each policy gateway's handle lifecycle discipline —
	// the PG state-management issue of §6. The zero value is hard state.
	State pgstate.Config
	// DataPayload is the payload size for Route's verification packet.
	DataPayload int
}

// Normalize fills defaults. It panics on an invalid State config: that is
// a programming error, not a runtime condition.
func (c Config) Normalize() Config {
	if c.Strategy == "" {
		c.Strategy = OnDemand
	}
	if c.DataPayload == 0 {
		c.DataPayload = 64
	}
	if c.State.Kind == "" && c.CacheCapacity > 0 {
		c.State = pgstate.Config{Kind: pgstate.Capped, Capacity: c.CacheCapacity}
	}
	if c.State.Shards == 0 {
		// Simulator nodes are single-threaded and number in the hundreds:
		// one shard per PG table unless the caller asks for more (the
		// sharded serving-layer default would multiply per-node footprint
		// for concurrency no simulated PG needs).
		c.State.Shards = 1
	}
	st, err := c.State.Normalize()
	if err != nil {
		panic(fmt.Sprintf("orwg: %v", err))
	}
	c.State = st
	return c
}

// SetupResult reports one route establishment.
type SetupResult struct {
	Handle   uint64
	Path     ad.Path
	OK       bool
	FailCode uint8
	FailedAt ad.ID
	// RTT is the simulated time from setup emission to the reply.
	RTT sim.Time
	// Messages is the number of protocol messages the setup consumed.
	Messages uint64
	// SynthesisExpansions is the route-server search work.
	SynthesisExpansions int
}

// CacheStats aggregates policy-gateway handle-cache behaviour.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// RepairSummary reports one RepairAll pass.
type RepairSummary struct {
	// Attempted counts flows pulled off repair queues.
	Attempted int
	// Repaired counts flows successfully re-established (possibly over a
	// different route, always under a fresh handle).
	Repaired int
}

// System is an ORWG deployment.
type System struct {
	cfg   Config
	nw    *sim.Network
	db    *policy.DB
	nodes map[ad.ID]*node

	// resetup records the setup RTT of each successful failure repair.
	resetup metrics.Histogram

	started bool
}

// New builds the system over g with policy db.
func New(g *ad.Graph, db *policy.DB, cfg Config) *System {
	cfg = cfg.Normalize()
	s := &System{
		cfg:   cfg,
		nw:    sim.NewNetwork(g, cfg.Seed),
		db:    db,
		nodes: make(map[ad.ID]*node),
	}
	for _, id := range g.IDs() {
		n := &node{
			id:          id,
			sys:         s,
			flooder:     flood.NewFlooder(id, "lsa"),
			table:       pgstate.NewTable(cfg.State),
			established: make(map[uint64]ad.Path),
			flows:       make(map[uint64]policy.Request),
			repair:      make(map[uint64]policy.Request),
			delivered:   make(map[uint64]int),
		}
		n.flooder.OnChange = n.onLSDBChange
		s.nodes[id] = n
		s.nw.AddNode(n)
	}
	return s
}

// Name implements core.System.
func (s *System) Name() string { return "orwg" }

// Network implements core.System.
func (s *System) Network() *sim.Network { return s.nw }

// Converge implements core.System: floods all LSAs to quiescence.
func (s *System) Converge(limit sim.Time) (sim.Time, bool) {
	if !s.started {
		s.started = true
		s.nw.Start()
	}
	return s.nw.RunToQuiescence(limit)
}

// sortedIDs returns the ADs in ascending order, the deterministic sweep
// order for every whole-system operation.
func (s *System) sortedIDs() []ad.ID {
	ids := make([]ad.ID, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ttlMillis is the lifetime sources request in Setup and Refresh packets:
// the configured TTL under soft state, 0 (PG default) otherwise.
func (s *System) ttlMillis() uint32 {
	if s.cfg.State.Kind == pgstate.Soft {
		return uint32(s.cfg.State.TTL / sim.Millisecond)
	}
	return 0
}

// Establish synthesizes and sets up a policy route for req, running the
// simulation through the full setup exchange.
func (s *System) Establish(req policy.Request) SetupResult {
	src, ok := s.nodes[req.Src]
	if !ok {
		return SetupResult{}
	}
	msgs0 := s.nw.Stats.MessagesSent
	path, keys, expansions, found := src.synthesize(req)
	res := SetupResult{SynthesisExpansions: expansions}
	if !found {
		return res
	}
	res.Path = path
	if len(path) == 1 {
		// Traffic to self needs no setup.
		res.OK = true
		return res
	}
	handle := src.newHandle()
	res.Handle = handle
	t0 := s.nw.Now()
	src.startSetup(s.nw, handle, req, path, keys)
	s.nw.Engine.Run()
	res.Messages = s.nw.Stats.MessagesSent - msgs0
	res.RTT = s.nw.Now() - t0
	if est, ok := src.established[handle]; ok {
		res.OK = true
		res.Path = est
	} else {
		res.FailCode = src.lastFailCode
		res.FailedAt = src.lastFailedAt
	}
	return res
}

// SendData sends one data packet down an established handle and runs the
// simulation until it is delivered or dropped. It returns whether the
// destination received it and the packet's routing-header length.
func (s *System) SendData(srcID ad.ID, handle uint64, payload int) (delivered bool, headerBytes int) {
	src, ok := s.nodes[srcID]
	if !ok {
		return false, 0
	}
	path, ok := src.established[handle]
	if !ok || len(path) < 2 {
		return false, 0
	}
	pkt := &wire.Data{
		Handle:  handle,
		Mode:    wire.ModeHandle,
		Payload: make([]byte, payload),
	}
	headerBytes = pkt.HeaderLen()
	dest := s.nodes[path.Dest()]
	before := dest.delivered[handle]
	s.nw.Send("data", srcID, path[1], wire.Marshal(pkt))
	s.nw.Engine.Run()
	return dest.delivered[handle] > before, headerBytes
}

// Teardown releases an established route.
func (s *System) Teardown(srcID ad.ID, handle uint64) {
	src, ok := s.nodes[srcID]
	if !ok {
		return
	}
	path, ok := src.established[handle]
	if !ok {
		return
	}
	delete(src.established, handle)
	delete(src.flows, handle)
	src.table.Remove(handle)
	if len(path) >= 2 {
		s.nw.Send("teardown", srcID, path[1], wire.Marshal(&wire.Teardown{
			Handle: handle, Reason: wire.TeardownExplicit,
		}))
		s.nw.Engine.Run()
	}
}

// Abandon makes the source forget an established flow without tearing it
// down — the crashed-source / silent-departure model of §6. Downstream
// handle state is orphaned: soft state expires it, capped state evicts it,
// hard state leaks it until an explicit teardown that will never come.
func (s *System) Abandon(srcID ad.ID, handle uint64) {
	src, ok := s.nodes[srcID]
	if !ok {
		return
	}
	delete(src.established, handle)
	delete(src.flows, handle)
	src.table.Remove(handle)
}

// Advance moves simulated time forward by d with no protocol activity and
// then sweeps every PG table for expired soft state. Experiments use it to
// model idle periods between traffic waves.
func (s *System) Advance(d sim.Time) {
	s.nw.After(d, func() {})
	s.nw.Engine.Run()
	s.expireAll()
}

// expireAll sweeps each PG's table in AD order. An expired entry at a
// flow's source also kills the flow: the source stopped refreshing, so the
// flow is abandoned, not repaired.
func (s *System) expireAll() {
	now := s.nw.Now()
	for _, id := range s.sortedIDs() {
		n := s.nodes[id]
		for _, h := range n.table.ExpireDue(now) {
			delete(n.established, h)
			delete(n.flows, h)
		}
	}
}

// RefreshEstablished makes every source re-assert its live flows: the
// local table entry is touched and a Refresh packet walks the route
// extending each PG's entry (§6 soft state). A PG that already dropped the
// state NAKs with SetupNoState, which queues the flow for repair. The pump
// is driven explicitly by the caller — the engine runs to quiescence, so a
// self-rescheduling timer would never terminate.
func (s *System) RefreshEstablished() {
	ttl := s.ttlMillis()
	ttlSim := sim.Time(ttl) * sim.Millisecond
	for _, id := range s.sortedIDs() {
		n := s.nodes[id]
		handles := make([]uint64, 0, len(n.established))
		for h := range n.established {
			handles = append(handles, h)
		}
		sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
		for _, h := range handles {
			path := n.established[h]
			if len(path) < 2 {
				continue
			}
			n.table.Refresh(s.nw.Now(), h, ttlSim)
			s.nw.Send("refresh", n.id, path[1], wire.Marshal(&wire.Refresh{
				Handle: h, TTLMillis: ttl,
			}))
		}
	}
	s.nw.Engine.Run()
	s.expireAll()
}

// RepairAll re-establishes every flow queued for repair after a NAK or
// link failure, in AD then handle order. Each successful repair gets a
// fresh handle (and possibly a different route) and its setup RTT is
// recorded in the re-setup latency histogram.
func (s *System) RepairAll() RepairSummary {
	var sum RepairSummary
	for _, id := range s.sortedIDs() {
		n := s.nodes[id]
		if len(n.repair) == 0 {
			continue
		}
		handles := make([]uint64, 0, len(n.repair))
		for h := range n.repair {
			handles = append(handles, h)
		}
		sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
		for _, h := range handles {
			req := n.repair[h]
			delete(n.repair, h)
			sum.Attempted++
			res := s.Establish(req)
			if res.OK {
				sum.Repaired++
				s.resetup.Observe(time.Duration(res.RTT) * time.Microsecond)
			}
		}
	}
	return sum
}

// PendingRepairs counts flows waiting for RepairAll.
func (s *System) PendingRepairs() int {
	total := 0
	for _, n := range s.nodes {
		total += len(n.repair)
	}
	return total
}

// ResetupLatency summarizes the setup RTTs of successful failure repairs.
func (s *System) ResetupLatency() metrics.LatencySummary {
	return s.resetup.Snapshot()
}

// Established counts live flows at every source.
func (s *System) Established() int {
	total := 0
	for _, n := range s.nodes {
		total += len(n.established)
	}
	return total
}

// EstablishedAt lists srcID's live flow handles in ascending order.
func (s *System) EstablishedAt(srcID ad.ID) []uint64 {
	n, ok := s.nodes[srcID]
	if !ok {
		return nil
	}
	handles := make([]uint64, 0, len(n.established))
	for h := range n.established {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	return handles
}

// Route implements core.System: establish a policy route, then verify it by
// forwarding an actual data packet over the handle plane.
func (s *System) Route(req policy.Request) core.Outcome {
	res := s.Establish(req)
	if !res.OK {
		return core.Outcome{Path: res.Path, SetupMessages: int(res.Messages)}
	}
	if len(res.Path) == 1 {
		return core.Outcome{Path: res.Path, Delivered: true}
	}
	delivered, _ := s.SendData(req.Src, res.Handle, s.cfg.DataPayload)
	return core.Outcome{
		Path:          res.Path,
		Delivered:     delivered,
		SetupMessages: int(res.Messages),
	}
}

// StateEntries implements core.System: LSDB entries plus resident handles —
// the policy-gateway state of §6.
func (s *System) StateEntries() int {
	total := 0
	for _, n := range s.nodes {
		total += n.flooder.DB.Len()
		total += n.table.Len()
	}
	return total
}

// Computations implements core.System: total route-server search
// expansions.
func (s *System) Computations() int {
	total := 0
	for _, n := range s.nodes {
		if n.strategy != nil {
			st := n.strategy.Stats()
			total += st.PrecomputeExpansions + st.OnDemandExpansions
		}
	}
	return total
}

// CacheStats aggregates every PG's handle-table counters.
func (s *System) CacheStats() CacheStats {
	var cs CacheStats
	for _, n := range s.nodes {
		st := n.table.Stats()
		cs.Hits += st.Hits
		cs.Misses += st.Misses
		cs.Evictions += st.Evictions
		cs.Entries += n.table.Len()
	}
	return cs
}

// StateMetrics returns the handle-table counters summed over every PG and
// the largest single-PG peak — the per-gateway memory high-water mark that
// distinguishes the §6 disciplines.
func (s *System) StateMetrics() (total pgstate.Stats, maxPeak int) {
	for _, n := range s.nodes {
		st := n.table.Stats()
		total.Add(st)
		if st.Peak > maxPeak {
			maxPeak = st.Peak
		}
	}
	return total, maxPeak
}

// LSDBBytes returns the marshalled size of one AD's LSDB (they converge to
// the same contents), the policy-distribution memory metric of E8.
func (s *System) LSDBBytes() int {
	for _, n := range s.nodes {
		return n.flooder.DB.WireBytes()
	}
	return 0
}

// FailLink injects a link failure and runs the resulting repair traffic
// (upstream NAKs, downstream repair teardowns, LSA re-floods) to
// quiescence.
func (s *System) FailLink(a, b ad.ID) error {
	if err := s.nw.FailLink(a, b); err != nil {
		return err
	}
	s.nw.Engine.Run()
	return nil
}

// UpdatePolicy replaces an AD's policy terms at runtime: the AD re-floods
// its LSA with the new terms, and its policy gateway re-validates every
// cached policy route, tearing down routes the new policy no longer permits
// (a SetupReply NAK propagates back so the source drops the route and can
// re-synthesize). This exercises §5.4.1's operating assumption — "policy
// and topology change much more slowly than the time required for route
// setup" — when policy does change.
func (s *System) UpdatePolicy(id ad.ID, terms []policy.Term) error {
	n, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("orwg: unknown AD %v", id)
	}
	// Install the new terms in the ground-truth database by replacing
	// the AD's term set.
	s.db = s.db.WithTerms(id, terms)
	// Re-flood and re-validate.
	n.flooder.Originate(s.nw, s.db.Terms(id))
	n.revalidateCache(s.nw)
	s.nw.Engine.Run()
	return nil
}

// PolicyDB exposes the current ground-truth policy database.
func (s *System) PolicyDB() *policy.DB { return s.db }

// node is one AD's ORWG process: flooder, route server, and policy gateway.
type node struct {
	id      ad.ID
	sys     *System
	flooder *flood.Flooder

	// Route server state.
	view      *ad.Graph
	viewDB    *policy.DB
	viewDirty bool
	strategy  synthesis.Strategy

	// Policy gateway state: the per-handle table under the configured
	// lifecycle discipline.
	table *pgstate.Table

	// Source state. flows mirrors established with the originating
	// request; it survives table eviction so a NAKed flow can be queued
	// in repair for re-establishment.
	handleSeq    uint32
	established  map[uint64]ad.Path
	flows        map[uint64]policy.Request
	repair       map[uint64]policy.Request
	lastFailCode uint8
	lastFailedAt ad.ID

	// Destination state: packets delivered per handle.
	delivered map[uint64]int
}

func (n *node) ID() ad.ID { return n.id }

func (n *node) Start(nw *sim.Network) {
	n.flooder.Originate(nw, n.sys.db.Terms(n.id))
}

func (n *node) onLSDBChange(nw *sim.Network) {
	n.viewDirty = true
}

func (n *node) refreshView() {
	if n.view != nil && !n.viewDirty {
		return
	}
	n.view = n.flooder.DB.Graph()
	n.viewDB = n.flooder.DB.PolicyDB()
	n.viewDB.SetCriteria(n.id, n.sys.db.CriteriaFor(n.id))
	n.viewDirty = false
	if n.strategy != nil {
		n.strategy = n.buildStrategy()
	}
}

func (n *node) buildStrategy() synthesis.Strategy {
	switch n.sys.cfg.Strategy {
	case Precomputed:
		return synthesis.NewPrecomputed(n.view, n.viewDB, n.hotRequests())
	case Hybrid:
		return synthesis.NewHybrid(n.view, n.viewDB, n.hotRequests())
	default:
		return synthesis.NewOnDemand(n.view, n.viewDB)
	}
}

// hotRequests filters the configured hot set to requests sourced here.
func (n *node) hotRequests() []policy.Request {
	var out []policy.Request
	for _, r := range n.sys.cfg.HotRequests {
		if r.Src == n.id {
			out = append(out, r)
		}
	}
	return out
}

// synthesize runs the route server: compute a policy route and the claimed
// term key for each transit AD.
func (n *node) synthesize(req policy.Request) (ad.Path, []policy.Key, int, bool) {
	n.refreshView()
	if n.strategy == nil {
		n.strategy = n.buildStrategy()
	}
	st0 := n.strategy.Stats()
	path, ok := n.strategy.Route(req)
	st1 := n.strategy.Stats()
	expansions := (st1.PrecomputeExpansions + st1.OnDemandExpansions) -
		(st0.PrecomputeExpansions + st0.OnDemandExpansions)
	if !ok {
		return nil, nil, expansions, false
	}
	var keys []policy.Key
	for i := 1; i < len(path)-1; i++ {
		t, ok := n.viewDB.PermitsTransit(path[i], req, path[i-1], path[i+1])
		if !ok {
			// The strategy returned a path the view cannot justify;
			// treat as synthesis failure.
			return nil, nil, expansions, false
		}
		keys = append(keys, t.Key())
	}
	return path, keys, expansions, true
}

func (n *node) newHandle() uint64 {
	n.handleSeq++
	return uint64(n.id)<<32 | uint64(n.handleSeq)
}

// startSetup installs the source's own entry and emits the setup packet.
func (n *node) startSetup(nw *sim.Network, handle uint64, req policy.Request, route ad.Path, keys []policy.Key) {
	ttl := n.sys.ttlMillis()
	n.install(nw, handle, route, 0, req, ttl)
	msg := &wire.Setup{Handle: handle, Req: req, Route: route, TermKeys: keys, TTLMillis: ttl}
	nw.Send("setup", n.id, route[1], wire.Marshal(msg))
}

// install adds a handle entry under the configured discipline, honouring
// the setup packet's requested TTL.
func (n *node) install(nw *sim.Network, handle uint64, route ad.Path, idx int, req policy.Request, ttlMillis uint32) {
	n.table.Install(nw.Now(), handle, route, idx, req, sim.Time(ttlMillis)*sim.Millisecond)
}

func (n *node) Receive(nw *sim.Network, from ad.ID, payload []byte) {
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *wire.LSA:
		n.flooder.HandleLSA(nw, from, m)
	case *wire.Setup:
		n.handleSetup(nw, from, m)
	case *wire.SetupReply:
		n.handleSetupReply(nw, from, m)
	case *wire.Data:
		n.handleData(nw, from, m)
	case *wire.Teardown:
		n.handleTeardown(nw, from, m)
	case *wire.Refresh:
		n.handleRefresh(nw, from, m)
	}
}

// indexOn returns this AD's position on route, or -1.
func (n *node) indexOn(route ad.Path) int {
	for i, id := range route {
		if id == n.id {
			return i
		}
	}
	return -1
}

// handleSetup validates a route setup at a policy gateway (paper §5.4.1):
// the claimed policy term must exist locally and permit the traversal.
func (n *node) handleSetup(nw *sim.Network, from ad.ID, m *wire.Setup) {
	idx := n.indexOn(m.Route)
	reject := func(code uint8) {
		nw.Send("setup-reply", n.id, from, wire.Marshal(&wire.SetupReply{
			Handle: m.Handle, Code: code, FailedAt: n.id,
		}))
	}
	if idx <= 0 || !m.Route.LoopFree() || m.Route.Dest() != m.Req.Dst || m.Route.Source() != m.Req.Src {
		reject(wire.SetupBadRoute)
		return
	}
	if m.Route[idx-1] != from {
		reject(wire.SetupBadRoute)
		return
	}
	if idx == len(m.Route)-1 {
		// Destination PG: accept, install for the data plane, reply OK.
		n.install(nw, m.Handle, m.Route, idx, m.Req, m.TTLMillis)
		nw.Send("setup-reply", n.id, from, wire.Marshal(&wire.SetupReply{
			Handle: m.Handle, Code: wire.SetupOK,
		}))
		return
	}
	// Transit PG: validate the claimed term against LOCAL policy.
	var claimed *policy.Term
	for _, k := range m.TermKeys {
		if k.Advertiser != n.id {
			continue
		}
		for _, t := range n.sys.db.Terms(n.id) {
			if t.Serial == k.Serial {
				tt := t
				claimed = &tt
				break
			}
		}
		break
	}
	next := m.Route[idx+1]
	if claimed == nil || !claimed.Permits(m.Req, m.Route[idx-1], next) {
		reject(wire.SetupNoPolicy)
		return
	}
	if !nw.LinkIsUp(n.id, next) {
		reject(wire.SetupNoLink)
		return
	}
	n.install(nw, m.Handle, m.Route, idx, m.Req, m.TTLMillis)
	nw.Send("setup", n.id, next, wire.Marshal(m))
}

// failFlow resolves a NAK at the flow's source: the flow dies and is
// queued for re-establishment by RepairAll.
func (n *node) failFlow(h uint64, req policy.Request, code uint8, failedAt ad.ID) {
	n.lastFailCode = code
	n.lastFailedAt = failedAt
	delete(n.established, h)
	delete(n.flows, h)
	n.repair[h] = req
}

// handleSetupReply propagates a reply backward along the installed route,
// dropping the handle state on failure.
func (n *node) handleSetupReply(nw *sim.Network, from ad.ID, m *wire.SetupReply) {
	e, ok := n.table.Peek(nw.Now(), m.Handle)
	if !ok {
		// No PG state left for the handle (evicted or expired). If this
		// node sourced the flow it still resolves the NAK; otherwise the
		// reply dies here and any state further upstream ages out under
		// its own discipline.
		if req, isSource := n.flows[m.Handle]; isSource && !m.OK() {
			n.failFlow(m.Handle, req, m.Code, m.FailedAt)
		}
		return
	}
	if !m.OK() {
		n.table.Remove(m.Handle)
	}
	if e.Idx == 0 {
		// Source: resolve the pending setup or kill the live flow.
		if m.OK() {
			n.established[m.Handle] = e.Route
			n.flows[m.Handle] = e.Req
			return
		}
		n.lastFailCode = m.Code
		n.lastFailedAt = m.FailedAt
		if req, isFlow := n.flows[m.Handle]; isFlow {
			n.failFlow(m.Handle, req, m.Code, m.FailedAt)
		}
		return
	}
	nw.Send("setup-reply", n.id, e.Route[e.Idx-1], wire.Marshal(m))
}

// handleData forwards a handle-mode data packet along the installed route
// with per-packet validation (is it arriving from the cached previous AD?).
// A miss NAKs SetupNoState back toward the source (§6): evicted or expired
// state is re-established on demand rather than silently blackholing.
func (n *node) handleData(nw *sim.Network, from ad.ID, m *wire.Data) {
	if m.Mode != wire.ModeHandle {
		return // source-route data packets are the filter baseline's plane
	}
	e, ok := n.table.Lookup(nw.Now(), m.Handle)
	if !ok {
		nw.Send("setup-reply", n.id, from, wire.Marshal(&wire.SetupReply{
			Handle: m.Handle, Code: wire.SetupNoState, FailedAt: n.id,
		}))
		return
	}
	if e.Idx > 0 && e.Route[e.Idx-1] != from {
		return // per-packet validation failure (§5.4.1)
	}
	if e.Idx == len(e.Route)-1 {
		n.delivered[m.Handle]++
		return
	}
	nw.Send("data", n.id, e.Route[e.Idx+1], wire.Marshal(m))
}

// handleRefresh extends a handle's lifetime (§6 soft state) and forwards
// the keepalive downstream. A PG that no longer holds the state NAKs so
// the source learns the route decayed.
func (n *node) handleRefresh(nw *sim.Network, from ad.ID, m *wire.Refresh) {
	now := nw.Now()
	if !n.table.Refresh(now, m.Handle, sim.Time(m.TTLMillis)*sim.Millisecond) {
		nw.Send("setup-reply", n.id, from, wire.Marshal(&wire.SetupReply{
			Handle: m.Handle, Code: wire.SetupNoState, FailedAt: n.id,
		}))
		return
	}
	e, ok := n.table.Peek(now, m.Handle)
	if !ok {
		return
	}
	if e.Idx > 0 && e.Route[e.Idx-1] != from {
		return
	}
	if e.Idx < len(e.Route)-1 {
		nw.Send("refresh", n.id, e.Route[e.Idx+1], wire.Marshal(m))
	}
}

// handleTeardown releases handle state along the route, for both explicit
// releases and failure-driven repair invalidations.
func (n *node) handleTeardown(nw *sim.Network, from ad.ID, m *wire.Teardown) {
	e, ok := n.table.Peek(nw.Now(), m.Handle)
	if !ok {
		return
	}
	n.table.Remove(m.Handle)
	if e.Idx < len(e.Route)-1 {
		nw.Send("teardown", n.id, e.Route[e.Idx+1], wire.Marshal(m))
	}
}

// revalidateCache re-checks every installed policy route against this AD's
// current local policy, tearing down routes that are no longer permitted.
// Handles are processed in sorted order for determinism.
func (n *node) revalidateCache(nw *sim.Network) {
	for _, h := range n.table.Handles() {
		e, ok := n.table.Peek(nw.Now(), h)
		if !ok {
			continue
		}
		if e.Idx == 0 || e.Idx == len(e.Route)-1 {
			continue // sources and destinations hold no transit obligation
		}
		prev, next := e.Route[e.Idx-1], e.Route[e.Idx+1]
		permitted := false
		for _, t := range n.sys.db.Terms(n.id) {
			if t.Permits(e.Req, prev, next) {
				permitted = true
				break
			}
		}
		if permitted {
			continue
		}
		n.table.Remove(h)
		nw.Send("setup-reply", n.id, prev, wire.Marshal(&wire.SetupReply{
			Handle: h, Code: wire.SetupNoPolicy, FailedAt: n.id,
		}))
	}
}

// LinkDown is the failure-driven repair path (§6): this endpoint flushes
// every handle whose route crossed the dead adjacency. If the failed hop
// was downstream, a SetupNoLink NAK walks back so the source re-establishes
// through its route server; if upstream, a repair teardown clears the
// now-unreachable state downstream.
func (n *node) LinkDown(nw *sim.Network, nb ad.ID) {
	n.flooder.Originate(nw, n.sys.db.Terms(n.id))
	now := nw.Now()
	for _, h := range n.table.Handles() {
		e, ok := n.table.Peek(now, h)
		if !ok {
			continue
		}
		upDead := e.Idx > 0 && e.Route[e.Idx-1] == nb
		downDead := e.Idx < len(e.Route)-1 && e.Route[e.Idx+1] == nb
		if !upDead && !downDead {
			continue
		}
		n.table.Remove(h)
		if downDead {
			if e.Idx == 0 {
				// This PG sourced the flow: fail it locally.
				n.lastFailCode = wire.SetupNoLink
				n.lastFailedAt = n.id
				if req, isFlow := n.flows[h]; isFlow {
					n.failFlow(h, req, wire.SetupNoLink, n.id)
				} else {
					delete(n.established, h)
				}
			} else {
				nw.Send("setup-reply", n.id, e.Route[e.Idx-1], wire.Marshal(&wire.SetupReply{
					Handle: h, Code: wire.SetupNoLink, FailedAt: n.id,
				}))
			}
		}
		if upDead && e.Idx < len(e.Route)-1 {
			nw.Send("teardown", n.id, e.Route[e.Idx+1], wire.Marshal(&wire.Teardown{
				Handle: h, Reason: wire.TeardownRepair,
			}))
		}
	}
}

func (n *node) LinkUp(nw *sim.Network, nb ad.ID) {
	n.flooder.Originate(nw, n.sys.db.Terms(n.id))
}

// String aids debugging.
func (n *node) String() string { return fmt.Sprintf("orwg-node(%v)", n.id) }
