package orwg

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// hubTopology builds nSources stub ADs all routed through one transit hub
// to a single destination — the shape that concentrates PG state pressure.
func hubTopology(t *testing.T, nSources int) (*ad.Graph, []ad.ID, ad.ID) {
	t.Helper()
	g := ad.NewGraph()
	hub := g.AddAD("hub", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	if err := g.AddLink(ad.Link{A: hub, B: d}); err != nil {
		t.Fatal(err)
	}
	var sources []ad.ID
	for i := 0; i < nSources; i++ {
		src := g.AddAD("s", ad.Stub, ad.Campus)
		sources = append(sources, src)
		if err := g.AddLink(ad.Link{A: src, B: hub}); err != nil {
			t.Fatal(err)
		}
	}
	return g, sources, d
}

func TestSoftStateRefreshKeepsFlowAlive(t *testing.T) {
	g, sources, d := hubTopology(t, 1)
	db := policy.OpenDB(g)
	ttl := 2 * sim.Second
	s := converged(t, g, db, Config{State: pgstate.Config{Kind: pgstate.Soft, TTL: ttl}})
	res := s.Establish(policy.Request{Src: sources[0], Dst: d})
	if !res.OK {
		t.Fatal("establish failed")
	}
	// Refreshed every TTL/2, the flow outlives many TTLs.
	for i := 0; i < 6; i++ {
		s.Advance(ttl / 2)
		s.RefreshEstablished()
	}
	if delivered, _ := s.SendData(sources[0], res.Handle, 8); !delivered {
		t.Fatal("refreshed soft flow died")
	}
	if s.Network().Stats.BytesByKind["refresh"] == 0 {
		t.Error("no refresh bytes on the wire")
	}
	st, _ := s.StateMetrics()
	if st.Refreshes == 0 {
		t.Error("no refreshes counted")
	}
	// Once the source stops refreshing, the whole route decays and the
	// source's own expiry kills the flow (abandonment, not repair).
	s.Advance(3 * ttl)
	if s.Established() != 0 {
		t.Error("unrefreshed flow still established")
	}
	if delivered, _ := s.SendData(sources[0], res.Handle, 8); delivered {
		t.Error("data delivered over expired state")
	}
	if s.PendingRepairs() != 0 {
		t.Error("abandoned flow queued for repair")
	}
}

func TestSoftStateExpiresAbandonedOrphans(t *testing.T) {
	g, sources, d := hubTopology(t, 1)
	db := policy.OpenDB(g)
	for _, cfg := range []pgstate.Config{
		{Kind: pgstate.Hard},
		{Kind: pgstate.Soft, TTL: 2 * sim.Second},
	} {
		s := converged(t, g, db, Config{State: cfg})
		res := s.Establish(policy.Request{Src: sources[0], Dst: d})
		if !res.OK {
			t.Fatalf("%s: establish failed", cfg.Kind)
		}
		s.Abandon(sources[0], res.Handle)
		s.Advance(10 * sim.Second)
		st, _ := s.StateMetrics()
		resident := st.Resident
		switch cfg.Kind {
		case pgstate.Hard:
			// Hard state leaks: hub and destination still hold the handle.
			if resident != 2 {
				t.Errorf("hard: resident = %d, want 2 leaked entries", resident)
			}
		case pgstate.Soft:
			if resident != 0 {
				t.Errorf("soft: resident = %d, want 0 after expiry", resident)
			}
			if st.Expirations == 0 {
				t.Error("soft: no expirations counted")
			}
		}
	}
}

func TestCappedNAKOnMissQueuesRepair(t *testing.T) {
	g, sources, d := hubTopology(t, 5)
	db := policy.OpenDB(g)
	s := converged(t, g, db, Config{State: pgstate.Config{Kind: pgstate.Capped, Capacity: 2}})
	var handles []uint64
	for _, src := range sources {
		res := s.Establish(policy.Request{Src: src, Dst: d})
		if !res.OK {
			t.Fatalf("establish from %v failed", src)
		}
		handles = append(handles, res.Handle)
	}
	if _, maxPeak := s.StateMetrics(); maxPeak > 2 {
		t.Errorf("per-PG peak %d exceeds capacity 2", maxPeak)
	}
	// The first flow's hub entry was evicted: its data packet draws a
	// SetupNoState NAK back to the source instead of a silent blackhole.
	if delivered, _ := s.SendData(sources[0], handles[0], 8); delivered {
		t.Fatal("data delivered over evicted state")
	}
	if s.PendingRepairs() != 1 {
		t.Fatalf("pending repairs = %d, want 1", s.PendingRepairs())
	}
	if _, ok := s.nodes[sources[0]].established[handles[0]]; ok {
		t.Error("NAKed flow still established under its old handle")
	}
	sum := s.RepairAll()
	if sum.Attempted != 1 || sum.Repaired != 1 {
		t.Fatalf("repair summary = %+v", sum)
	}
	fresh := s.EstablishedAt(sources[0])
	if len(fresh) != 1 || fresh[0] == handles[0] {
		t.Fatalf("re-setup handles = %v (old %d)", fresh, handles[0])
	}
	if delivered, _ := s.SendData(sources[0], fresh[0], 8); !delivered {
		t.Error("repaired flow does not deliver")
	}
}

func TestLinkFailureInvalidatesAndRepairs(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	s := converged(t, topo.Graph, db, Config{})
	// Find a flow with at least two hops so the failed link is not at the
	// source.
	var req policy.Request
	var res SetupResult
	for _, src := range topo.Graph.IDs() {
		for _, dst := range topo.Graph.IDs() {
			if src == dst {
				continue
			}
			r := policy.Request{Src: src, Dst: dst}
			if rr := s.Establish(r); rr.OK && rr.Path.Hops() >= 3 && req.Src == ad.Invalid {
				req, res = r, rr
			} else if rr.OK {
				s.Teardown(src, rr.Handle)
			}
		}
	}
	if req.Src == ad.Invalid {
		t.Fatal("no multi-hop pair found")
	}
	a, b := res.Path[1], res.Path[2]
	if err := s.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	// The NAK from the break walked back to the source: the flow is dead
	// and queued for repair, and no PG still holds its handle.
	if _, ok := s.nodes[req.Src].established[res.Handle]; ok {
		t.Fatal("flow crossing failed link still established")
	}
	if s.PendingRepairs() != 1 {
		t.Fatalf("pending repairs = %d, want 1", s.PendingRepairs())
	}
	for id, n := range s.nodes {
		if _, ok := n.table.Peek(s.nw.Now(), res.Handle); ok && id != req.Src {
			if i := n.indexOn(res.Path); i > 0 {
				// Hops upstream of the break were cleared by the NAK walk;
				// hops downstream by the repair teardown.
				t.Errorf("AD %v still holds handle state for the dead flow", id)
			}
		}
	}
	if _, ok := s.Converge(seconds(600)); !ok {
		t.Fatal("did not reconverge")
	}
	sum := s.RepairAll()
	if sum.Attempted != 1 {
		t.Fatalf("repair summary = %+v", sum)
	}
	if sum.Repaired == 1 {
		lat := s.ResetupLatency()
		if lat.Count != 1 {
			t.Errorf("resetup latency count = %d, want 1", lat.Count)
		}
		fresh := s.EstablishedAt(req.Src)
		if len(fresh) != 1 {
			t.Fatalf("re-setup handles = %v", fresh)
		}
		path := s.nodes[req.Src].established[fresh[0]]
		for i := 1; i < len(path); i++ {
			if (path[i-1] == a && path[i] == b) || (path[i-1] == b && path[i] == a) {
				t.Errorf("repaired route still crosses failed link: %v", path)
			}
		}
		if delivered, _ := s.SendData(req.Src, fresh[0], 8); !delivered {
			t.Error("repaired flow does not deliver")
		}
	}
}

func TestLegacyCacheCapacityMapsToCapped(t *testing.T) {
	cfg := Config{CacheCapacity: 7}.Normalize()
	if cfg.State.Kind != pgstate.Capped || cfg.State.Capacity != 7 {
		t.Fatalf("legacy capacity mapped to %+v", cfg.State)
	}
	// An explicit State wins over the legacy knob.
	cfg = Config{CacheCapacity: 7, State: pgstate.Config{Kind: pgstate.Soft}}.Normalize()
	if cfg.State.Kind != pgstate.Soft {
		t.Fatalf("explicit state overridden: %+v", cfg.State)
	}
}
