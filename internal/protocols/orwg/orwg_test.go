package orwg

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

var _ core.System = (*System)(nil)

func seconds(s int) sim.Time { return sim.Time(s) * sim.Second }

func converged(t *testing.T, g *ad.Graph, db *policy.DB, cfg Config) *System {
	t.Helper()
	s := New(g, db, cfg)
	if _, ok := s.Converge(seconds(300)); !ok {
		t.Fatal("did not converge")
	}
	return s
}

func TestDeliversAllPairsOpenPolicy(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	s := converged(t, topo.Graph, db, Config{})
	oracle := core.Oracle{G: topo.Graph, DB: db}
	for _, src := range topo.Graph.IDs() {
		for _, dst := range topo.Graph.IDs() {
			if src == dst {
				continue
			}
			req := policy.Request{Src: src, Dst: dst}
			out := s.Route(req)
			if !out.Delivered {
				t.Errorf("%v->%v: %+v", src, dst, out)
				continue
			}
			if !oracle.Legal(out.Path, req) {
				t.Errorf("%v->%v illegal path %v", src, dst, out.Path)
			}
			if out.SetupMessages == 0 {
				t.Errorf("%v->%v no setup messages recorded", src, dst)
			}
		}
	}
}

func TestSetupRejectedByLocalPolicy(t *testing.T) {
	// The source's flooded view is doctored to believe a transit is open
	// while the transit's true policy refuses: the PG must reject at
	// setup (validation against local policy, not flooded state).
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	tr := g.AddAD("tr", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: src, B: tr}, {A: tr, B: d}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	term := policy.OpenTerm(tr, 7)
	term.Sources = policy.SetOf(d) // src is NOT allowed
	db.Add(term)
	s := converged(t, g, db, Config{})
	// Manually inject a setup claiming term 7 for src's traffic.
	srcNode := s.nodes[src]
	handle := srcNode.newHandle()
	req := policy.Request{Src: src, Dst: d}
	route := ad.Path{src, tr, d}
	srcNode.startSetup(s.nw, handle, req, route, []policy.Key{{Advertiser: tr, Serial: 7}})
	s.nw.Engine.Run()
	if _, ok := srcNode.established[handle]; ok {
		t.Fatal("setup established despite local policy refusal")
	}
	if srcNode.lastFailCode != wire.SetupNoPolicy {
		t.Errorf("fail code = %d, want SetupNoPolicy", srcNode.lastFailCode)
	}
	if srcNode.lastFailedAt != tr {
		t.Errorf("failed at %v, want %v", srcNode.lastFailedAt, tr)
	}
}

func TestSourceSpecificPolicyHonored(t *testing.T) {
	// ORWG achieves what ECMA/IDRP-single cannot: full availability under
	// source-specific policy, because the source synthesizes from global
	// knowledge.
	g := ad.NewGraph()
	s1 := g.AddAD("s1", ad.Stub, ad.Campus)
	s2 := g.AddAD("s2", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: s1, B: t1, Cost: 1}, {A: s2, B: t1, Cost: 1},
		{A: s1, B: t2, Cost: 1}, {A: s2, B: t2, Cost: 1},
		{A: t1, B: d, Cost: 1}, {A: t2, B: d, Cost: 1},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	term1 := policy.OpenTerm(t1, 0)
	term1.Sources = policy.SetOf(s1)
	term1.Cost = 1
	db.Add(term1)
	term2 := policy.OpenTerm(t2, 0)
	term2.Cost = 50
	db.Add(term2)

	s := converged(t, g, db, Config{})
	oracle := core.Oracle{G: g, DB: db}
	out1 := s.Route(policy.Request{Src: s1, Dst: d})
	if !out1.Delivered || !out1.Path.Contains(t1) {
		t.Errorf("s1: %+v", out1)
	}
	out2 := s.Route(policy.Request{Src: s2, Dst: d})
	if !out2.Delivered || !out2.Path.Contains(t2) {
		t.Errorf("s2: %+v (want delivery via t2)", out2)
	}
	if out2.Delivered && !oracle.Legal(out2.Path, policy.Request{Src: s2, Dst: d}) {
		t.Errorf("s2 illegal path %v", out2.Path)
	}
}

func TestHandleDataSmallerThanSourceRoute(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	s := converged(t, topo.Graph, db, Config{})
	// Pick a multi-hop pair.
	var req policy.Request
	for _, src := range topo.Graph.IDs() {
		for _, dst := range topo.Graph.IDs() {
			if src == dst {
				continue
			}
			r := policy.Request{Src: src, Dst: dst}
			if res := s.Establish(r); res.OK && res.Path.Hops() >= 3 {
				req = r
			}
		}
	}
	if req.Src == ad.Invalid {
		t.Fatal("no multi-hop pair found")
	}
	res := s.Establish(req)
	if !res.OK {
		t.Fatal("establish failed")
	}
	delivered, handleHeader := s.SendData(req.Src, res.Handle, 64)
	if !delivered {
		t.Fatal("data not delivered")
	}
	fullPkt := &wire.Data{Mode: wire.ModeSourceRoute, Req: req, Route: res.Path, Payload: make([]byte, 64)}
	if handleHeader >= fullPkt.HeaderLen() {
		t.Errorf("handle header %d >= source-route header %d", handleHeader, fullPkt.HeaderLen())
	}
	if res.RTT == 0 {
		t.Error("setup RTT not measured")
	}
}

func TestTeardownReleasesState(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	s := converged(t, topo.Graph, db, Config{})
	ids := topo.Graph.IDs()
	req := policy.Request{Src: ids[5], Dst: ids[9]}
	res := s.Establish(req)
	if !res.OK {
		t.Fatal("establish failed")
	}
	entriesBefore := s.CacheStats().Entries
	s.Teardown(req.Src, res.Handle)
	entriesAfter := s.CacheStats().Entries
	if entriesAfter >= entriesBefore {
		t.Errorf("teardown freed nothing: %d -> %d", entriesBefore, entriesAfter)
	}
	// Data on a torn-down handle is dropped.
	if delivered, _ := s.SendData(req.Src, res.Handle, 16); delivered {
		t.Error("data delivered after teardown")
	}
}

func TestCacheEvictionDropsOldFlows(t *testing.T) {
	// Tiny PG caches: establishing many flows through one transit evicts
	// earlier handles; their data packets are dropped (cache misses).
	g := ad.NewGraph()
	hub := g.AddAD("hub", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	if err := g.AddLink(ad.Link{A: hub, B: d}); err != nil {
		t.Fatal(err)
	}
	var sources []ad.ID
	for i := 0; i < 5; i++ {
		src := g.AddAD("s", ad.Stub, ad.Campus)
		sources = append(sources, src)
		if err := g.AddLink(ad.Link{A: src, B: hub}); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.OpenDB(g)
	s := converged(t, g, db, Config{CacheCapacity: 2})
	var handles []uint64
	var srcs []ad.ID
	for _, src := range sources {
		res := s.Establish(policy.Request{Src: src, Dst: d})
		if !res.OK {
			t.Fatalf("establish from %v failed", src)
		}
		handles = append(handles, res.Handle)
		srcs = append(srcs, src)
	}
	if s.CacheStats().Evictions == 0 {
		t.Fatal("no evictions with capacity 2 and 5 flows")
	}
	// The first flow's state at the hub is gone; data is dropped.
	delivered, _ := s.SendData(srcs[0], handles[0], 8)
	if delivered {
		t.Error("data delivered despite evicted PG state")
	}
	if s.CacheStats().Misses == 0 {
		t.Error("no cache misses recorded")
	}
	// The most recent flow still works.
	delivered, _ = s.SendData(srcs[len(srcs)-1], handles[len(handles)-1], 8)
	if !delivered {
		t.Error("most recent flow broken")
	}
}

func TestReRouteAfterLinkFailure(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	s := converged(t, topo.Graph, db, Config{})
	ids := topo.Graph.IDs()
	req := policy.Request{Src: ids[5], Dst: ids[9]}
	out1 := s.Route(req)
	if !out1.Delivered {
		t.Fatalf("initial: %+v", out1)
	}
	a, b := out1.Path[0], out1.Path[1]
	if err := s.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Converge(seconds(600)); !ok {
		t.Fatal("did not reconverge")
	}
	out2 := s.Route(req)
	if out2.Delivered {
		for i := 1; i < len(out2.Path); i++ {
			if (out2.Path[i-1] == a && out2.Path[i] == b) || (out2.Path[i-1] == b && out2.Path[i] == a) {
				t.Errorf("path still uses failed link: %v", out2.Path)
			}
		}
	}
}

func TestStrategies(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	hot := core.AllPairsRequests(topo.Graph, true, 0, 0)
	for _, kind := range []StrategyKind{OnDemand, Precomputed, Hybrid} {
		s := converged(t, topo.Graph, db, Config{Strategy: kind, HotRequests: hot})
		delivered := 0
		for _, req := range hot {
			if out := s.Route(req); out.Delivered {
				delivered++
			}
		}
		if delivered != len(hot) {
			t.Errorf("%s: delivered %d/%d", kind, delivered, len(hot))
		}
		if s.Computations() == 0 {
			t.Errorf("%s: no synthesis work recorded", kind)
		}
	}
}

func TestBlackholeWhenNoLegalRoute(t *testing.T) {
	// Stub-only topology: no transit terms at all, non-adjacent pair.
	g := ad.NewGraph()
	a := g.AddAD("a", ad.Stub, ad.Campus)
	b := g.AddAD("b", ad.MultihomedStub, ad.Campus)
	c := g.AddAD("c", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: a, B: b}, {A: b, B: c}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB() // b advertises nothing
	s := converged(t, g, db, Config{})
	out := s.Route(policy.Request{Src: a, Dst: c})
	if out.Delivered {
		t.Errorf("delivered through transit-refusing multihomed stub: %v", out.Path)
	}
	// Adjacent traffic still works.
	if out := s.Route(policy.Request{Src: a, Dst: b}); !out.Delivered {
		t.Errorf("adjacent delivery failed: %+v", out)
	}
}

func TestSelfRoute(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	s := converged(t, topo.Graph, db, Config{})
	id := topo.Graph.IDs()[0]
	out := s.Route(policy.Request{Src: id, Dst: id})
	if !out.Delivered || len(out.Path) != 1 {
		t.Errorf("self route: %+v", out)
	}
}

func TestCountersAndAccessors(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	s := converged(t, topo.Graph, db, Config{})
	if s.StateEntries() == 0 {
		t.Error("no state after convergence")
	}
	if s.LSDBBytes() == 0 {
		t.Error("LSDBBytes = 0")
	}
	if res := s.Establish(policy.Request{Src: 999, Dst: 1}); res.OK {
		t.Error("establish from unknown AD succeeded")
	}
	if delivered, _ := s.SendData(999, 1, 1); delivered {
		t.Error("SendData from unknown AD delivered")
	}
	s.Teardown(999, 1) // must not panic
}

func TestHybridStrategyRebuiltAfterTopologyChange(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	hot := core.AllPairsRequests(topo.Graph, true, 0, 0)
	s := converged(t, topo.Graph, db, Config{Strategy: Hybrid, HotRequests: hot})
	ids := topo.Graph.IDs()
	req := policy.Request{Src: ids[5], Dst: ids[9]}
	out1 := s.Route(req)
	if !out1.Delivered {
		t.Fatalf("initial: %+v", out1)
	}
	// Fail a link on the path; the hybrid table must be rebuilt over the
	// new LSDB view rather than serving the stale route.
	a, b := out1.Path[0], out1.Path[1]
	if err := s.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Converge(seconds(600)); !ok {
		t.Fatal("did not reconverge")
	}
	out2 := s.Route(req)
	if out2.Delivered {
		for i := 1; i < len(out2.Path); i++ {
			if (out2.Path[i-1] == a && out2.Path[i] == b) || (out2.Path[i-1] == b && out2.Path[i] == a) {
				t.Errorf("hybrid strategy served a stale route over the failed link: %v", out2.Path)
			}
		}
	}
}

func TestPerPacketValidationRejectsSpoofedOrigin(t *testing.T) {
	// §5.4.1: PGs use the handle "to allow for some per-packet validation
	// (e.g., is it coming from the AD specified in the cached PT setup
	// information)". A data packet carrying a valid handle but arriving
	// from the wrong neighbor must be dropped.
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	evil := g.AddAD("evil", ad.Stub, ad.Campus)
	tr := g.AddAD("tr", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: src, B: tr}, {A: evil, B: tr}, {A: tr, B: d}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.OpenDB(g)
	s := converged(t, g, db, Config{})
	req := policy.Request{Src: src, Dst: d}
	res := s.Establish(req)
	if !res.OK {
		t.Fatal("establish failed")
	}
	// The legitimate source delivers.
	if delivered, _ := s.SendData(src, res.Handle, 8); !delivered {
		t.Fatal("legitimate data failed")
	}
	// A different neighbor replays the handle toward the transit.
	destNode := s.nodes[d]
	before := destNode.delivered[res.Handle]
	spoof := &wire.Data{Handle: res.Handle, Mode: wire.ModeHandle, Payload: make([]byte, 8)}
	s.nw.Send("data", evil, tr, wire.Marshal(spoof))
	s.nw.Engine.Run()
	if destNode.delivered[res.Handle] != before {
		t.Error("spoofed-origin packet was forwarded to the destination")
	}
}
