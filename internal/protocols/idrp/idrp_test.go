package idrp

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

var _ core.System = (*System)(nil)

func seconds(s int) sim.Time { return sim.Time(s) * sim.Second }

func TestConvergesAndDeliversOpenPolicy(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	s := New(topo.Graph, db, Config{})
	if _, ok := s.Converge(seconds(300)); !ok {
		t.Fatal("did not converge")
	}
	oracle := core.Oracle{G: topo.Graph, DB: db}
	for _, src := range topo.Graph.IDs() {
		for _, dst := range topo.Graph.IDs() {
			if src == dst {
				continue
			}
			req := policy.Request{Src: src, Dst: dst}
			out := s.Route(req)
			if !out.Delivered {
				t.Errorf("%v->%v not delivered", src, dst)
				continue
			}
			if out.Looped {
				t.Errorf("%v->%v looped", src, dst)
			}
			if !oracle.Legal(out.Path, req) {
				t.Errorf("%v->%v illegal: %v", src, dst, out.Path)
			}
		}
	}
}

func TestLoopAvoidanceViaPath(t *testing.T) {
	// On a cyclic topology the AD-path check must keep routes loop-free
	// even without any partial ordering.
	topo := topology.Generate(topology.Config{Seed: 9, LateralProb: 0.5, BypassProb: 0.3})
	db := policy.OpenDB(topo.Graph)
	s := New(topo.Graph, db, Config{})
	if _, ok := s.Converge(seconds(600)); !ok {
		t.Fatal("did not converge")
	}
	for _, src := range topo.Graph.IDs() {
		for _, dst := range topo.Graph.IDs() {
			if src == dst {
				continue
			}
			out := s.Route(policy.Request{Src: src, Dst: dst})
			if out.Looped {
				t.Errorf("%v->%v looped: %v", src, dst, out.Path)
			}
		}
	}
}

// sourceRestrictedNet builds the paper's single-route hiding scenario:
//
//	     t1 (sources: s1 only, cheap)
//	   /    \
//	src      d
//	   \    /
//	     t2 (sources: all, expensive)
//
// where src's selected route at intermediate ADs can hide the legal
// alternative for other sources.
func twoTransitNet(t *testing.T) (*ad.Graph, ad.ID, ad.ID, ad.ID, ad.ID, ad.ID) {
	t.Helper()
	g := ad.NewGraph()
	s1 := g.AddAD("s1", ad.Stub, ad.Campus)
	s2 := g.AddAD("s2", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: s1, B: t1, Cost: 1}, {A: s2, B: t1, Cost: 1},
		{A: s1, B: t2, Cost: 1}, {A: s2, B: t2, Cost: 1},
		{A: t1, B: d, Cost: 1}, {A: t2, B: d, Cost: 1},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return g, s1, s2, t1, t2, d
}

func TestSourceSpecificAttributesEnforced(t *testing.T) {
	g, s1, s2, t1, t2, d := twoTransitNet(t)
	db := policy.NewDB()
	term1 := policy.OpenTerm(t1, 0)
	term1.Sources = policy.SetOf(s1) // t1 carries only s1
	term1.Cost = 1
	db.Add(term1)
	term2 := policy.OpenTerm(t2, 0)
	term2.Cost = 5 // open but expensive
	db.Add(term2)

	s := New(g, db, Config{})
	if _, ok := s.Converge(seconds(300)); !ok {
		t.Fatal("did not converge")
	}
	oracle := core.Oracle{G: g, DB: db}
	// s1 can use the cheap t1 route.
	out1 := s.Route(policy.Request{Src: s1, Dst: d})
	if !out1.Delivered || !oracle.Legal(out1.Path, policy.Request{Src: s1, Dst: d}) {
		t.Errorf("s1: %+v", out1)
	}
	if !out1.Path.Contains(t1) {
		t.Errorf("s1 path = %v, want via cheap t1", out1.Path)
	}
	// s2 must not be delivered via t1; the legal route via t2 exists.
	out2 := s.Route(policy.Request{Src: s2, Dst: d})
	if out2.Delivered {
		if out2.Path.Contains(t1) {
			t.Errorf("s2 delivered through forbidden t1: %v", out2.Path)
		}
		if !oracle.Legal(out2.Path, policy.Request{Src: s2, Dst: d}) {
			t.Errorf("s2 delivered illegally: %v", out2.Path)
		}
	}
}

func TestSingleRouteHidesLegalAlternative(t *testing.T) {
	// Make the source-restricted transit the cheap one so every node
	// selects it as best; single-route mode then leaves s2 with no
	// usable route at the source even though t2 is legal for it.
	g, s1, s2, t1, t2, d := twoTransitNet(t)
	db := policy.NewDB()
	term1 := policy.OpenTerm(t1, 0)
	term1.Sources = policy.SetOf(s1)
	term1.Cost = 1
	db.Add(term1)
	term2 := policy.OpenTerm(t2, 0)
	term2.Cost = 50
	db.Add(term2)

	single := New(g, db, Config{})
	single.Converge(seconds(300))
	multi := New(g, db, Config{MultiRoute: 4})
	multi.Converge(seconds(300))

	req := policy.Request{Src: s2, Dst: d}
	outSingle := single.Route(req)
	outMulti := multi.Route(req)
	if !outMulti.Delivered {
		t.Errorf("multi-route variant failed to deliver s2: %+v", outMulti)
	}
	if outSingle.Delivered && outMulti.Delivered {
		t.Log("single-route also delivered (selection coincided); availability equal here")
	}
	// Multi-route must never do worse, and state must be larger.
	if multi.StateEntries() <= single.StateEntries() {
		t.Errorf("multi-route state %d <= single %d", multi.StateEntries(), single.StateEntries())
	}
	_ = t2
}

func TestWithdrawalOnLinkFailure(t *testing.T) {
	g, s1, _, t1, t2, d := twoTransitNet(t)
	db := policy.OpenDB(g)
	s := New(g, db, Config{})
	s.Converge(seconds(300))
	req := policy.Request{Src: s1, Dst: d}
	if out := s.Route(req); !out.Delivered {
		t.Fatal("initial delivery failed")
	}
	// Fail both links of whichever transit s1's path uses; re-converge.
	out := s.Route(req)
	used := t1
	if out.Path.Contains(t2) {
		used = t2
	}
	s.FailLink(s1, used)
	if _, ok := s.Converge(seconds(600)); !ok {
		t.Fatal("did not reconverge")
	}
	out = s.Route(req)
	if !out.Delivered {
		t.Errorf("no alternate after failure: %+v", out)
	}
	if out.Path.Contains(used) && out.Path[1] == used {
		t.Errorf("path still begins with failed link: %v", out.Path)
	}
}

func TestPartitionWithdrawsRoutes(t *testing.T) {
	// Line s - t - d; failing t-d must withdraw d everywhere.
	g := ad.NewGraph()
	src := g.AddAD("s", ad.Stub, ad.Campus)
	tr := g.AddAD("t", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: src, B: tr}, {A: tr, B: d}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.OpenDB(g)
	s := New(g, db, Config{})
	s.Converge(seconds(300))
	if out := s.Route(policy.Request{Src: src, Dst: d}); !out.Delivered {
		t.Fatal("initial delivery failed")
	}
	s.FailLink(tr, d)
	s.Converge(seconds(600))
	if out := s.Route(policy.Request{Src: src, Dst: d}); out.Delivered {
		t.Errorf("delivered across partition: %v", out.Path)
	}
	if paths := s.SelectedRoutes(src, d); len(paths) != 0 {
		t.Errorf("stale selected routes at src: %v", paths)
	}
}

func TestUCIAttributes(t *testing.T) {
	// Transit admits only UCI 0; UCI 1 traffic is dropped.
	g := ad.NewGraph()
	src := g.AddAD("s", ad.Stub, ad.Campus)
	tr := g.AddAD("t", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: src, B: tr}, {A: tr, B: d}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	term := policy.OpenTerm(tr, 0)
	term.UCI = policy.ClassSetOf(0)
	db.Add(term)
	s := New(g, db, Config{})
	s.Converge(seconds(300))
	if out := s.Route(policy.Request{Src: src, Dst: d, UCI: 0}); !out.Delivered {
		t.Error("UCI 0 not delivered")
	}
	if out := s.Route(policy.Request{Src: src, Dst: d, UCI: 1}); out.Delivered {
		t.Errorf("UCI 1 delivered despite exclusion: %v", out.Path)
	}
}

func TestSelectedRoutesAccessor(t *testing.T) {
	g, s1, _, _, _, d := twoTransitNet(t)
	db := policy.OpenDB(g)
	s := New(g, db, Config{})
	s.Converge(seconds(300))
	paths := s.SelectedRoutes(s1, d)
	if len(paths) != 1 {
		t.Fatalf("selected = %v, want 1 route", paths)
	}
	if paths[0].Source() != s1 || paths[0].Dest() != d {
		t.Errorf("selected path endpoints wrong: %v", paths[0])
	}
	if s.SelectedRoutes(99, d) != nil {
		t.Error("SelectedRoutes(99) != nil")
	}
}

func TestNameAndDeterminism(t *testing.T) {
	g, _, _, _, _, _ := twoTransitNet(t)
	db := policy.OpenDB(g)
	if New(g, db, Config{}).Name() != "idrp" {
		t.Error("single-route name wrong")
	}
	if New(g, db, Config{MultiRoute: 2}).Name() != "idrp-multi" {
		t.Error("multi-route name wrong")
	}
	run := func() uint64 {
		topo := topology.Figure1()
		s := New(topo.Graph, policy.OpenDB(topo.Graph), Config{Seed: 5})
		s.Converge(seconds(300))
		return s.Network().Stats.MessagesSent
	}
	if run() != run() {
		t.Error("nondeterministic")
	}
}

func TestDestinationExportFilter(t *testing.T) {
	// A transit whose terms cover only destination d1 must not advertise
	// routes toward d2 (the §5.2 export-policy filter).
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	tr := g.AddAD("tr", ad.Transit, ad.Regional)
	d1 := g.AddAD("d1", ad.Stub, ad.Campus)
	d2 := g.AddAD("d2", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: src, B: tr}, {A: tr, B: d1}, {A: tr, B: d2}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	term := policy.OpenTerm(tr, 0)
	term.Dests = policy.SetOf(d1)
	db.Add(term)
	s := New(g, db, Config{})
	s.Converge(seconds(300))
	if out := s.Route(policy.Request{Src: src, Dst: d1}); !out.Delivered {
		t.Errorf("allowed destination: %+v", out)
	}
	if out := s.Route(policy.Request{Src: src, Dst: d2}); out.Delivered {
		t.Errorf("filtered destination delivered: %v", out.Path)
	}
	// The filtered route never even reaches src's RIB.
	if paths := s.SelectedRoutes(src, d2); len(paths) != 0 {
		t.Errorf("filtered route advertised to src: %v", paths)
	}
}

func TestPrevNextConstraintsInAttributes(t *testing.T) {
	// A transit that only accepts traffic entering from a specific
	// neighbor: IDRP's attribute model folds this into whether the route
	// is advertised at all toward the other neighbor.
	g := ad.NewGraph()
	a := g.AddAD("a", ad.Stub, ad.Campus)
	b := g.AddAD("b", ad.Stub, ad.Campus)
	tr := g.AddAD("tr", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: a, B: tr}, {A: b, B: tr}, {A: tr, B: d}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	term := policy.OpenTerm(tr, 0)
	term.Sources = policy.SetOf(a) // only a's traffic
	db.Add(term)
	s := New(g, db, Config{})
	s.Converge(seconds(300))
	oracle := core.Oracle{G: g, DB: db}
	outA := s.Route(policy.Request{Src: a, Dst: d})
	if !outA.Delivered || !oracle.Legal(outA.Path, policy.Request{Src: a, Dst: d}) {
		t.Errorf("a: %+v", outA)
	}
	if outB := s.Route(policy.Request{Src: b, Dst: d}); outB.Delivered {
		t.Errorf("b delivered despite source exclusion: %v", outB.Path)
	}
}
