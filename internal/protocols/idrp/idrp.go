// Package idrp implements the IDRP / BGP-2 family of inter-domain routing
// protocols as analysed in Breslau & Estrin (SIGCOMM 1990) §5.2: hop-by-hop
// distance-vector routing augmented with full AD-path information (for loop
// avoidance) and explicit policy attributes in routing updates.
//
// Each route advertisement carries the AD path, the set of source ADs
// permitted to use the route (the intersection of every traversed AD's
// source policy), and the admitted user classes. A receiving AD rejects
// routes containing itself, filters by its own import policy, selects the
// best usable route per (destination, QOS), and re-advertises it with its
// own policy attributes folded in.
//
// The paper's criticism is built in and measurable: in single-route mode an
// AD advertises only one route per destination per QOS, so a route legal for
// some source may be hidden by a selected route that excludes that source
// (experiments E1, E12). MultiRoute > 1 enables the multi-route variant the
// paper sketches, trading routing-table state for availability.
package idrp

import (
	"fmt"
	"sort"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config parameterizes the protocol.
type Config struct {
	// Seed fixes the network RNG.
	Seed int64
	// MultiRoute is the maximum number of attribute-distinct routes
	// advertised per (destination, QOS). 1 is classic IDRP/BGP-2.
	MultiRoute int
	// QOSClasses is the number of QOS classes routed.
	QOSClasses int
	// BGPMode drops the source-specific policy attributes from updates,
	// modelling BGP as specified in RFC 1163: "The BGP protocol ... does
	// not allow for the expression of such source specific policies"
	// (paper §5.2.1 footnote). Transit source restrictions then exist
	// only in intent, and the data plane violates them.
	BGPMode bool
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.MultiRoute < 1 {
		c.MultiRoute = 1
	}
	if c.QOSClasses < 1 {
		c.QOSClasses = 1
	}
	if c.QOSClasses > policy.MaxClasses {
		c.QOSClasses = policy.MaxClasses
	}
	return c
}

const flushDelay = sim.Millisecond

// ribKey identifies a routing context.
type ribKey struct {
	dest ad.ID
	qos  policy.QOS
}

// route is one candidate path with its policy attributes, as stored in the
// Adj-RIB-In.
type route struct {
	path    ad.Path // from the advertising neighbor to dest, inclusive
	metric  uint32  // advertised metric (neighbor's cost to dest)
	sources policy.ADSet
	uci     policy.ClassSet
	from    ad.ID
}

// attrSig canonicalizes a route's policy attributes for distinctness checks
// in multi-route mode.
func (r route) attrSig() string {
	return fmt.Sprintf("%s/%08x", r.sources, uint32(r.uci))
}

// System is an IDRP deployment.
type System struct {
	cfg   Config
	nw    *sim.Network
	db    *policy.DB
	nodes map[ad.ID]*node

	computations int
	started      bool
}

// New builds the system over g with policy db.
func New(g *ad.Graph, db *policy.DB, cfg Config) *System {
	cfg = cfg.Normalize()
	s := &System{
		cfg:   cfg,
		nw:    sim.NewNetwork(g, cfg.Seed),
		db:    db,
		nodes: make(map[ad.ID]*node),
	}
	for _, info := range g.ADs() {
		n := &node{
			id:    info.ID,
			info:  info,
			sys:   s,
			cands: make(map[ribKey]map[ad.ID][]route),
			adv:   make(map[ribKey][]route),
		}
		n.deriveTransit()
		s.nodes[info.ID] = n
		s.nw.AddNode(n)
	}
	return s
}

// Name implements core.System.
func (s *System) Name() string {
	if s.cfg.BGPMode {
		return "bgp"
	}
	if s.cfg.MultiRoute > 1 {
		return "idrp-multi"
	}
	return "idrp"
}

// Network implements core.System.
func (s *System) Network() *sim.Network { return s.nw }

// Converge implements core.System.
func (s *System) Converge(limit sim.Time) (sim.Time, bool) {
	if !s.started {
		s.started = true
		s.nw.Start()
	}
	return s.nw.RunToQuiescence(limit)
}

// Route implements core.System: hop-by-hop forwarding where each AD uses
// its selected route whose attributes admit the traffic. The data plane
// enforces policy attributes: traffic whose source a selected route
// excludes is dropped, which is how "no available route when in fact a
// legal route exists" (§5.1) manifests.
func (s *System) Route(req policy.Request) core.Outcome {
	qos := req.QOS
	if int(qos) >= s.cfg.QOSClasses {
		qos = 0
	}
	k := ribKey{dest: req.Dst, qos: qos}
	cur := req.Src
	path := ad.Path{cur}
	seen := map[ad.ID]bool{}
	for cur != req.Dst {
		if seen[cur] {
			return core.Outcome{Path: path, Looped: true}
		}
		seen[cur] = true
		n, ok := s.nodes[cur]
		if !ok {
			return core.Outcome{Path: path}
		}
		next := ad.Invalid
		for _, r := range n.adv[k] {
			if r.sources.Contains(req.Src) && r.uci.Contains(uint8(req.UCI)) {
				next = r.from
				break
			}
		}
		if next == ad.Invalid {
			return core.Outcome{Path: path}
		}
		cur = next
		path = append(path, cur)
	}
	return core.Outcome{Path: path, Delivered: true}
}

// StateEntries implements core.System: total Adj-RIB-In candidate routes
// plus selected routes — the routing-table replication metric of E12.
func (s *System) StateEntries() int {
	total := 0
	for _, n := range s.nodes {
		for _, byNbr := range n.cands {
			for _, rs := range byNbr {
				total += len(rs)
			}
		}
		for _, rs := range n.adv {
			total += len(rs)
		}
	}
	return total
}

// Computations implements core.System.
func (s *System) Computations() int { return s.computations }

// FailLink injects a link failure.
func (s *System) FailLink(a, b ad.ID) error { return s.nw.FailLink(a, b) }

// SelectedRoutes returns the paths AD id has selected for dest at QOS 0
// (tests and reporting).
func (s *System) SelectedRoutes(id, dest ad.ID) []ad.Path {
	n, ok := s.nodes[id]
	if !ok {
		return nil
	}
	var out []ad.Path
	for _, r := range n.adv[ribKey{dest: dest, qos: 0}] {
		full := append(ad.Path{id}, r.path...)
		out = append(out, full)
	}
	return out
}

// node is one AD's IDRP process.
type node struct {
	id   ad.ID
	info ad.Info
	sys  *System

	// cands is the Adj-RIB-In: candidate routes per context per
	// neighbor.
	cands map[ribKey]map[ad.ID][]route
	// adv is the Loc-RIB/Adj-RIB-Out: the routes currently selected and
	// advertised (up to MultiRoute per context).
	adv map[ribKey][]route

	// Transit capabilities derived from local policy terms.
	transitQOS  []bool
	transitCost []uint32
	srcUnion    policy.ADSet
	uciUnion    policy.ClassSet
	destAll     bool
	destSet     map[ad.ID]bool
	hasTerms    bool

	flushPending bool
	dirty        map[ribKey]struct{}
}

func (n *node) deriveTransit() {
	q := n.sys.cfg.QOSClasses
	n.transitQOS = make([]bool, q)
	n.transitCost = make([]uint32, q)
	n.destSet = make(map[ad.ID]bool)
	n.dirty = make(map[ribKey]struct{})
	n.srcUnion = policy.SetOf()
	for _, t := range n.sys.db.Terms(n.id) {
		n.hasTerms = true
		for c := 0; c < q; c++ {
			if !t.QOS.Contains(uint8(c)) {
				continue
			}
			if !n.transitQOS[c] || t.Cost < n.transitCost[c] {
				n.transitQOS[c] = true
				n.transitCost[c] = t.Cost
			}
		}
		n.srcUnion = n.srcUnion.Union(t.Sources)
		n.uciUnion |= t.UCI
		if t.Dests.IsUniversal() {
			n.destAll = true
		} else {
			for _, d := range t.Dests.Members() {
				n.destSet[d] = true
			}
		}
	}
}

func (n *node) ID() ad.ID { return n.id }

func (n *node) Start(nw *sim.Network) {
	// Originate the self route in every QOS class.
	for q := 0; q < n.sys.cfg.QOSClasses; q++ {
		k := ribKey{dest: n.id, qos: policy.QOS(q)}
		n.adv[k] = []route{{
			path:    ad.Path{n.id},
			metric:  0,
			sources: policy.Universal(),
			uci:     policy.AllClasses,
			from:    n.id,
		}}
		n.dirty[k] = struct{}{}
	}
	n.scheduleFlush(nw)
}

func (n *node) scheduleFlush(nw *sim.Network) {
	if n.flushPending {
		return
	}
	n.flushPending = true
	nw.After(flushDelay, func() {
		n.flushPending = false
		keys := n.takeDirty()
		n.flushTo(nw, keys, ad.Invalid)
	})
}

func (n *node) takeDirty() []ribKey {
	keys := make([]ribKey, 0, len(n.dirty))
	for k := range n.dirty {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dest != keys[j].dest {
			return keys[i].dest < keys[j].dest
		}
		return keys[i].qos < keys[j].qos
	})
	n.dirty = make(map[ribKey]struct{})
	return keys
}

// exportRoutes builds the PVRoutes n advertises for context k: the selected
// routes, with n prepended to the path, n's policy attributes intersected
// in, and the transit cost added. Empty result means withdraw.
func (n *node) exportRoutes(k ribKey) []wire.PVRoute {
	rs := n.adv[k]
	isSelf := k.dest == n.id
	var out []wire.PVRoute
	for _, r := range rs {
		pv := wire.PVRoute{
			Dest:   k.dest,
			QOS:    k.qos,
			Path:   append(ad.Path{n.id}, r.path...),
			Metric: r.metric,
		}
		if isSelf {
			pv.AllowedSources = policy.Universal()
			pv.UCI = policy.AllClasses
		} else {
			// Re-advertising makes n a transit for the route: n
			// must have terms, offer the QOS, and carry the dest.
			if !n.hasTerms || !n.transitQOS[int(k.qos)] {
				continue
			}
			if !n.destAll && !n.destSet[k.dest] {
				continue
			}
			if n.sys.cfg.BGPMode {
				// BGP-1/2: no source/UCI policy attributes ride in
				// updates; routes claim universality.
				pv.AllowedSources = policy.Universal()
				pv.UCI = policy.AllClasses
			} else {
				pv.AllowedSources = r.sources.Intersect(n.srcUnion)
				pv.UCI = r.uci & n.uciUnion
				if pv.AllowedSources.Empty() || pv.UCI == 0 {
					continue
				}
			}
			pv.Metric = r.metric + n.transitCost[int(k.qos)]
		}
		out = append(out, pv)
	}
	return out
}

// flushTo advertises the given contexts to every up neighbor (or only to
// `only`). A context with no exportable routes is sent as a withdrawal.
func (n *node) flushTo(nw *sim.Network, keys []ribKey, only ad.ID) {
	if len(keys) == 0 {
		return
	}
	for _, nb := range nw.UpNeighbors(n.id) {
		if only != ad.Invalid && nb != only {
			continue
		}
		var upd wire.PathVector
		for _, k := range keys {
			routes := n.exportRoutes(k)
			// Receiver-side loop rejection also exists; skipping
			// routes through nb here is sender-side cleanliness.
			sentAny := false
			for _, pv := range routes {
				if pv.Path.Contains(nb) {
					continue
				}
				upd.Routes = append(upd.Routes, pv)
				sentAny = true
			}
			if !sentAny {
				upd.Routes = append(upd.Routes, wire.PVRoute{
					Dest: k.dest, QOS: k.qos, Withdrawn: true,
					AllowedSources: policy.SetOf(),
				})
			}
		}
		if len(upd.Routes) > 0 {
			nw.Send("idrp", n.id, nb, wire.Marshal(&upd))
		}
	}
}

func (n *node) Receive(nw *sim.Network, from ad.ID, payload []byte) {
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		return
	}
	upd, ok := msg.(*wire.PathVector)
	if !ok {
		return
	}
	n.sys.computations++
	link, haveLink := nw.Graph.LinkBetween(n.id, from)
	if !haveLink {
		return
	}
	changed := make(map[ribKey]bool)
	replaced := make(map[ribKey]bool)
	for _, pv := range upd.Routes {
		if int(pv.QOS) >= n.sys.cfg.QOSClasses || pv.Dest == n.id {
			continue
		}
		k := ribKey{dest: pv.Dest, qos: pv.QOS}
		if pv.Withdrawn {
			if byNbr := n.cands[k]; byNbr != nil {
				if _, had := byNbr[from]; had {
					delete(byNbr, from)
					changed[k] = true
				}
			}
			continue
		}
		// Loop avoidance: reject routes containing ourselves (§5.2.1).
		if pv.Path.Contains(n.id) {
			continue
		}
		r := route{
			path:    pv.Path,
			metric:  pv.Metric + link.Cost,
			sources: pv.AllowedSources,
			uci:     pv.UCI,
			from:    from,
		}
		if n.cands[k] == nil {
			n.cands[k] = make(map[ad.ID][]route)
		}
		// A neighbor's full offering for one context arrives in one
		// message: the first route replaces the stored slice, later
		// ones (multi-route mode) accumulate.
		if replaced[k] {
			n.cands[k][from] = append(n.cands[k][from], r)
		} else {
			n.cands[k][from] = []route{r}
			replaced[k] = true
		}
		changed[k] = true
	}
	n.reselect(nw, changed)
}

// reselect recomputes the selected route set for each changed context and
// schedules advertisement of the differences.
func (n *node) reselect(nw *sim.Network, changed map[ribKey]bool) {
	any := false
	for k := range changed {
		if k.dest == n.id {
			continue
		}
		sel := n.selectRoutes(k)
		if !routesEqual(sel, n.adv[k]) {
			if len(sel) == 0 {
				delete(n.adv, k)
			} else {
				n.adv[k] = sel
			}
			n.dirty[k] = struct{}{}
			any = true
		}
	}
	if any {
		n.scheduleFlush(nw)
	}
}

// selectRoutes picks up to MultiRoute best candidates for k, requiring
// attribute-distinct routes beyond the first (the paper's condition for
// loop-safe multi-route advertisement: "each route and each packet can be
// identified with a unique set of policy attributes", §5.2).
func (n *node) selectRoutes(k ribKey) []route {
	var all []route
	for _, rs := range n.cands[k] {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].metric != all[j].metric {
			return all[i].metric < all[j].metric
		}
		if all[i].from != all[j].from {
			return all[i].from < all[j].from
		}
		return all[i].path.String() < all[j].path.String()
	})
	var sel []route
	seenSig := map[string]bool{}
	for _, r := range all {
		if len(sel) >= n.sys.cfg.MultiRoute {
			break
		}
		sig := r.attrSig()
		if len(sel) > 0 && seenSig[sig] {
			continue
		}
		seenSig[sig] = true
		sel = append(sel, r)
	}
	return sel
}

func routesEqual(a, b []route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].from != b[i].from || a[i].metric != b[i].metric ||
			!a[i].path.Equal(b[i].path) ||
			a[i].sources.String() != b[i].sources.String() ||
			a[i].uci != b[i].uci {
			return false
		}
	}
	return true
}

func (n *node) LinkDown(nw *sim.Network, nb ad.ID) {
	changed := make(map[ribKey]bool)
	for k, byNbr := range n.cands {
		if _, had := byNbr[nb]; had {
			delete(byNbr, nb)
			changed[k] = true
		}
	}
	n.reselect(nw, changed)
}

func (n *node) LinkUp(nw *sim.Network, nb ad.ID) {
	// Advertise the full Adj-RIB-Out to the recovered neighbor.
	var keys []ribKey
	for k := range n.adv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dest != keys[j].dest {
			return keys[i].dest < keys[j].dest
		}
		return keys[i].qos < keys[j].qos
	})
	n.flushTo(nw, keys, nb)
}
