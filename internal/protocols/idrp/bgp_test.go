package idrp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
)

func TestBGPModeViolatesSourcePolicy(t *testing.T) {
	// The paper's footnote on BGP (RFC 1163): it cannot express source
	// specific policies. In BGP mode the source-restricted cheap transit
	// is used by everyone — including the excluded source.
	g, s1, s2, t1, t2, d := twoTransitNet(t)
	db := policy.NewDB()
	term1 := policy.OpenTerm(t1, 0)
	term1.Sources = policy.SetOf(s1)
	term1.Cost = 1
	db.Add(term1)
	term2 := policy.OpenTerm(t2, 0)
	term2.Cost = 50
	db.Add(term2)

	bgp := New(g, db, Config{BGPMode: true})
	if bgp.Name() != "bgp" {
		t.Fatalf("name = %q", bgp.Name())
	}
	bgp.Converge(seconds(300))
	oracle := core.Oracle{G: g, DB: db}

	// s2's traffic is delivered via the forbidden t1 — a policy
	// violation the IDRP attributes would have prevented.
	out := bgp.Route(policy.Request{Src: s2, Dst: d})
	if !out.Delivered {
		t.Fatalf("bgp did not deliver: %+v", out)
	}
	if !out.Path.Contains(t1) {
		t.Fatalf("bgp path %v does not use the cheap transit", out.Path)
	}
	if oracle.Legal(out.Path, policy.Request{Src: s2, Dst: d}) {
		t.Error("path through source-restricted transit reported legal — oracle broken")
	}

	// IDRP with attributes drops or detours the same traffic instead.
	idrp := New(g, db, Config{})
	idrp.Converge(seconds(300))
	out2 := idrp.Route(policy.Request{Src: s2, Dst: d})
	if out2.Delivered && out2.Path.Contains(t1) {
		t.Error("idrp delivered through the forbidden transit")
	}
}

func TestBGPModeStillLoopFree(t *testing.T) {
	// Path information keeps BGP loop-free even without policy
	// attributes.
	g, s1, s2, _, _, d := twoTransitNet(t)
	db := policy.OpenDB(g)
	bgp := New(g, db, Config{BGPMode: true})
	bgp.Converge(seconds(300))
	for _, req := range []policy.Request{{Src: s1, Dst: d}, {Src: s2, Dst: d}, {Src: d, Dst: s1}} {
		out := bgp.Route(req)
		if out.Looped {
			t.Errorf("%v looped: %v", req, out.Path)
		}
		if !out.Delivered {
			t.Errorf("%v not delivered", req)
		}
	}
}
