package idrp

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
)

// TestQOSRouting: per-QOS contexts route independently — the cheap transit
// offers only class 0, so class-1 traffic must detour.
func TestQOSRouting(t *testing.T) {
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	cheap := g.AddAD("cheap", ad.Transit, ad.Regional)
	dear := g.AddAD("dear", ad.Transit, ad.Regional)
	dst := g.AddAD("dst", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: cheap, Cost: 1}, {A: cheap, B: dst, Cost: 1},
		{A: src, B: dear, Cost: 5}, {A: dear, B: dst, Cost: 5},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	c := policy.OpenTerm(cheap, 0)
	c.QOS = policy.ClassSetOf(0)
	db.Add(c)
	d := policy.OpenTerm(dear, 0)
	d.QOS = policy.ClassSetOf(0, 1)
	db.Add(d)

	s := New(g, db, Config{QOSClasses: 2})
	if _, ok := s.Converge(seconds(300)); !ok {
		t.Fatal("did not converge")
	}
	out0 := s.Route(policy.Request{Src: src, Dst: dst, QOS: 0})
	if !out0.Delivered || !out0.Path.Contains(cheap) {
		t.Errorf("QOS0: %+v, want via cheap", out0)
	}
	out1 := s.Route(policy.Request{Src: src, Dst: dst, QOS: 1})
	if !out1.Delivered || !out1.Path.Contains(dear) {
		t.Errorf("QOS1: %+v, want via dear", out1)
	}
	// QOS index beyond the configured classes falls back to class 0.
	outHigh := s.Route(policy.Request{Src: src, Dst: dst, QOS: 9})
	if !outHigh.Delivered {
		t.Errorf("out-of-range QOS: %+v", outHigh)
	}
	// Per-QOS state replication is visible.
	single := New(g, db, Config{QOSClasses: 1})
	single.Converge(seconds(300))
	if s.StateEntries() <= single.StateEntries() {
		t.Errorf("2-QOS state %d <= 1-QOS state %d", s.StateEntries(), single.StateEntries())
	}
}
