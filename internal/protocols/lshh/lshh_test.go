package lshh

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

var _ core.System = (*System)(nil)

func seconds(s int) sim.Time { return sim.Time(s) * sim.Second }

func TestDeliversAllPairsOpenPolicy(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	s := New(topo.Graph, db, Config{})
	if _, ok := s.Converge(seconds(300)); !ok {
		t.Fatal("did not converge")
	}
	oracle := core.Oracle{G: topo.Graph, DB: db}
	for _, src := range topo.Graph.IDs() {
		for _, dst := range topo.Graph.IDs() {
			if src == dst {
				continue
			}
			req := policy.Request{Src: src, Dst: dst}
			out := s.Route(req)
			if !out.Delivered || out.Looped {
				t.Errorf("%v->%v: %+v", src, dst, out)
				continue
			}
			if !oracle.Legal(out.Path, req) {
				t.Errorf("%v->%v illegal: %v", src, dst, out.Path)
			}
		}
	}
}

func TestRespectsSourceSpecificPolicy(t *testing.T) {
	// With global knowledge, LS hop-by-hop CAN honour source-specific
	// terms — unlike ECMA — because every AD sees every term.
	g := ad.NewGraph()
	s1 := g.AddAD("s1", ad.Stub, ad.Campus)
	s2 := g.AddAD("s2", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: s1, B: t1, Cost: 1}, {A: s2, B: t1, Cost: 1},
		{A: s1, B: t2, Cost: 1}, {A: s2, B: t2, Cost: 1},
		{A: t1, B: d, Cost: 1}, {A: t2, B: d, Cost: 1},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	term1 := policy.OpenTerm(t1, 0)
	term1.Sources = policy.SetOf(s1)
	term1.Cost = 1
	db.Add(term1)
	term2 := policy.OpenTerm(t2, 0)
	term2.Cost = 50
	db.Add(term2)

	s := New(g, db, Config{})
	s.Converge(seconds(300))
	oracle := core.Oracle{G: g, DB: db}
	// s1 gets the cheap route; s2 gets the legal expensive one.
	out1 := s.Route(policy.Request{Src: s1, Dst: d})
	if !out1.Delivered || !out1.Path.Contains(t1) {
		t.Errorf("s1: %+v", out1)
	}
	out2 := s.Route(policy.Request{Src: s2, Dst: d})
	if !out2.Delivered || !out2.Path.Contains(t2) {
		t.Errorf("s2: %+v (want legal route via t2)", out2)
	}
	if !oracle.Legal(out2.Path, policy.Request{Src: s2, Dst: d}) {
		t.Errorf("s2 path illegal: %v", out2.Path)
	}
}

func TestReplicatedComputationPerSource(t *testing.T) {
	// The same destination reached from k different sources through one
	// transit AD forces k separate computations there when policies are
	// source-specific (paper §5.3). Star of sources -> hub -> dest.
	g := ad.NewGraph()
	hub := g.AddAD("hub", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	if err := g.AddLink(ad.Link{A: hub, B: d}); err != nil {
		t.Fatal(err)
	}
	var sources []ad.ID
	for i := 0; i < 6; i++ {
		src := g.AddAD("s", ad.Stub, ad.Campus)
		sources = append(sources, src)
		if err := g.AddLink(ad.Link{A: src, B: hub}); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.OpenDB(g)
	s := New(g, db, Config{})
	s.Converge(seconds(300))
	for _, src := range sources {
		if out := s.Route(policy.Request{Src: src, Dst: d}); !out.Delivered {
			t.Fatalf("%v not delivered", src)
		}
	}
	// The hub computed once per source context.
	if got := s.NodeComputations(hub); got != len(sources) {
		t.Errorf("hub computations = %d, want %d (one per source)", got, len(sources))
	}
	// Repeat requests hit the route cache: no new computations.
	before := s.Computations()
	for _, src := range sources {
		s.Route(policy.Request{Src: src, Dst: d})
	}
	if s.Computations() != before {
		t.Errorf("cache miss on repeated contexts: %d -> %d", before, s.Computations())
	}
}

func TestInconsistentTieBreakCanLoop(t *testing.T) {
	// With divergent objectives some (src,dst) pair on a cyclic topology
	// should loop or at least diverge from the consistent run.
	topo := topology.Generate(topology.Config{Seed: 11, LateralProb: 0.6, BypassProb: 0.3, Backbones: 2, RegionalsPerBackbone: 3, CampusesPerParent: 2})
	// Non-uniform link costs so hop-count and cost objectives disagree.
	db := policy.OpenDB(topo.Graph)
	consistent := New(topo.Graph, db, Config{})
	consistent.Converge(seconds(600))
	inconsistent := New(topo.Graph, db, Config{InconsistentTieBreak: true})
	inconsistent.Converge(seconds(600))

	loopsC, loopsI, divergent := 0, 0, 0
	for _, src := range topo.Graph.IDs() {
		for _, dst := range topo.Graph.IDs() {
			if src == dst {
				continue
			}
			req := policy.Request{Src: src, Dst: dst}
			oc := consistent.Route(req)
			oi := inconsistent.Route(req)
			if oc.Looped {
				loopsC++
			}
			if oi.Looped {
				loopsI++
			}
			if !oc.Path.Equal(oi.Path) {
				divergent++
			}
		}
	}
	if loopsC != 0 {
		t.Errorf("consistent run looped %d times", loopsC)
	}
	if divergent == 0 {
		t.Error("inconsistent objectives produced identical forwarding — ablation inert")
	}
	t.Logf("inconsistent loops: %d, divergent paths: %d", loopsI, divergent)
}

func TestTopologyChangeInvalidatesCaches(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	s := New(topo.Graph, db, Config{})
	s.Converge(seconds(300))
	ids := topo.Graph.IDs()
	req := policy.Request{Src: ids[5], Dst: ids[9]}
	out1 := s.Route(req)
	if !out1.Delivered {
		t.Fatalf("initial: %+v", out1)
	}
	// Fail a link on the path; protocol refloods; new route must avoid it.
	a, b := out1.Path[0], out1.Path[1]
	if err := s.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Converge(seconds(600)); !ok {
		t.Fatal("did not reconverge")
	}
	out2 := s.Route(req)
	if out2.Delivered {
		for i := 1; i < len(out2.Path); i++ {
			if out2.Path[i-1] == a && out2.Path[i] == b || out2.Path[i-1] == b && out2.Path[i] == a {
				t.Errorf("new path still uses failed link: %v", out2.Path)
			}
		}
	}
}

func TestStateAndComputationCounters(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	s := New(topo.Graph, db, Config{})
	s.Converge(seconds(300))
	if s.StateEntries() == 0 {
		t.Error("no LSDB state after convergence")
	}
	if s.Computations() != 0 {
		t.Error("computations before any Route call")
	}
	ids := topo.Graph.IDs()
	s.Route(policy.Request{Src: ids[5], Dst: ids[9]})
	if s.Computations() == 0 || s.Expansions() == 0 {
		t.Error("counters not advancing")
	}
	if s.NodeComputations(99) != 0 {
		t.Error("NodeComputations(99) != 0")
	}
}

func TestSourceCriteriaPrivate(t *testing.T) {
	// The source honors its own avoid-list; remote ADs cannot see it.
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: t1, Cost: 1}, {A: t1, B: d, Cost: 1},
		{A: src, B: t2, Cost: 5}, {A: t2, B: d, Cost: 5},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.OpenDB(g)
	db.SetCriteria(src, policy.Criteria{Avoid: policy.SetOf(t1)})
	s := New(g, db, Config{})
	s.Converge(seconds(300))
	out := s.Route(policy.Request{Src: src, Dst: d})
	if !out.Delivered || out.Path.Contains(t1) {
		t.Errorf("source avoid-list ignored: %+v", out)
	}
}
