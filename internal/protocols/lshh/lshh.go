// Package lshh implements the link-state hop-by-hop architecture of Breslau
// & Estrin (SIGCOMM 1990) §5.3: policy terms are flooded in link-state
// advertisements, giving every AD global knowledge, but the forwarding
// decision remains hop-by-hop — each AD on the path recomputes the
// constrained route from its own position.
//
// The design's costs are instrumented exactly as the paper describes them:
//
//   - Replicated computation: every transit AD repeats (a suffix of) the
//     source's route computation, once per (source, destination, class)
//     context it forwards (experiment E3). The per-node route cache is the
//     "multiple spanning trees" state the paper warns about.
//   - Consistency dependence: all ADs must use the same selection rule. The
//     InconsistentTieBreak ablation gives odd ADs a different (hop-count)
//     objective, demonstrating the forwarding loops the paper predicts when
//     "all ADS in the path" do not "make the same decision as the source".
package lshh

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/wire"
)

// Config parameterizes the protocol.
type Config struct {
	// Seed fixes the network RNG.
	Seed int64
	// InconsistentTieBreak makes odd-ID ADs minimize hop count instead
	// of policy cost — the consistency-violation ablation.
	InconsistentTieBreak bool
}

// System is an LS hop-by-hop deployment.
type System struct {
	cfg   Config
	nw    *sim.Network
	db    *policy.DB // ground-truth policy: each node floods only its own terms
	nodes map[ad.ID]*node

	started bool
}

// New builds the system over g with policy db.
func New(g *ad.Graph, db *policy.DB, cfg Config) *System {
	s := &System{
		cfg:   cfg,
		nw:    sim.NewNetwork(g, cfg.Seed),
		db:    db,
		nodes: make(map[ad.ID]*node),
	}
	for _, id := range g.IDs() {
		n := &node{id: id, sys: s, flooder: flood.NewFlooder(id, "lsa")}
		n.flooder.OnChange = n.onLSDBChange
		s.nodes[id] = n
		s.nw.AddNode(n)
	}
	return s
}

// Name implements core.System.
func (s *System) Name() string { return "ls-hop-by-hop" }

// Network implements core.System.
func (s *System) Network() *sim.Network { return s.nw }

// Converge implements core.System.
func (s *System) Converge(limit sim.Time) (sim.Time, bool) {
	if !s.started {
		s.started = true
		s.nw.Start()
	}
	return s.nw.RunToQuiescence(limit)
}

// Route implements core.System: hop-by-hop forwarding where every AD
// recomputes the constrained route from its own position using its own
// LSDB.
func (s *System) Route(req policy.Request) core.Outcome {
	cur := req.Src
	prev := ad.Invalid
	path := ad.Path{cur}
	seen := map[ad.ID]bool{}
	for cur != req.Dst {
		if seen[cur] {
			return core.Outcome{Path: path, Looped: true}
		}
		seen[cur] = true
		n, ok := s.nodes[cur]
		if !ok {
			return core.Outcome{Path: path}
		}
		next := n.nextHop(req, prev)
		if next == ad.Invalid {
			return core.Outcome{Path: path}
		}
		prev = cur
		cur = next
		path = append(path, cur)
	}
	return core.Outcome{Path: path, Delivered: true}
}

// StateEntries implements core.System: LSDB entries plus cached routes (the
// per-source spanning-tree state).
func (s *System) StateEntries() int {
	total := 0
	for _, n := range s.nodes {
		total += n.flooder.DB.Len()
		total += len(n.routeCache)
	}
	return total
}

// Computations implements core.System: total constrained-Dijkstra runs
// performed by all ADs.
func (s *System) Computations() int {
	total := 0
	for _, n := range s.nodes {
		total += n.computations
	}
	return total
}

// Expansions returns total search-state expansions, the finer-grained work
// measure used by E3.
func (s *System) Expansions() int {
	total := 0
	for _, n := range s.nodes {
		total += n.expansions
	}
	return total
}

// NodeComputations returns the Dijkstra-run count at one AD.
func (s *System) NodeComputations(id ad.ID) int {
	if n, ok := s.nodes[id]; ok {
		return n.computations
	}
	return 0
}

// FailLink injects a link failure.
func (s *System) FailLink(a, b ad.ID) error { return s.nw.FailLink(a, b) }

// cacheKey is a forwarding context: the paper's point is that with source
// specific policies this key space is per-source, not per-destination.
type cacheKey struct {
	src, dst, prev ad.ID
	qos            policy.QOS
	uci            policy.UCI
	hour           uint8
}

// node is one AD's LS hop-by-hop process.
type node struct {
	id      ad.ID
	sys     *System
	flooder *flood.Flooder

	// view is the graph+policy reconstructed from the LSDB, rebuilt
	// lazily after changes.
	view       *ad.Graph
	viewDB     *policy.DB
	unitView   *ad.Graph
	unitViewDB *policy.DB
	viewDirty  bool

	routeCache map[cacheKey]ad.ID // next hop per context

	computations int
	expansions   int
}

func (n *node) ID() ad.ID { return n.id }

func (n *node) Start(nw *sim.Network) {
	n.flooder.Originate(nw, n.sys.db.Terms(n.id))
}

func (n *node) Receive(nw *sim.Network, from ad.ID, payload []byte) {
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		return
	}
	if lsa, ok := msg.(*wire.LSA); ok {
		n.flooder.HandleLSA(nw, from, lsa)
	}
}

func (n *node) LinkDown(nw *sim.Network, nb ad.ID) {
	n.flooder.Originate(nw, n.sys.db.Terms(n.id))
}

func (n *node) LinkUp(nw *sim.Network, nb ad.ID) {
	n.flooder.Originate(nw, n.sys.db.Terms(n.id))
}

func (n *node) onLSDBChange(nw *sim.Network) {
	n.viewDirty = true
	n.routeCache = nil
}

func (n *node) refreshView() {
	if n.view != nil && !n.viewDirty {
		return
	}
	n.view = n.flooder.DB.Graph()
	n.viewDB = n.flooder.DB.PolicyDB()
	// Route selection criteria are private to each source (they are not
	// flooded): only this AD's own criteria are known locally. Transit
	// ADs therefore compute without the source's criteria — precisely the
	// consistency gap §5.3 identifies.
	n.viewDB.SetCriteria(n.id, n.sys.db.CriteriaFor(n.id))
	n.unitView = nil
	n.viewDirty = false
}

// unitCostView clones the view with all link and term costs forced to 1:
// the divergent minimize-hops objective used by the inconsistency ablation.
func (n *node) unitCostView() (*ad.Graph, *policy.DB) {
	if n.unitView != nil {
		return n.unitView, n.unitViewDB
	}
	g := ad.NewGraph()
	for _, info := range n.view.ADs() {
		_ = g.AddADWithID(info.ID, info.Name, info.Class, info.Level)
	}
	for _, l := range n.view.Links() {
		l.Cost = 1
		_ = g.AddLink(l)
	}
	db := policy.NewDB()
	for _, adv := range n.viewDB.Advertisers() {
		for _, term := range n.viewDB.Terms(adv) {
			term.Cost = 1
			db.Add(term)
		}
	}
	for _, src := range n.viewDB.CriteriaADs() {
		db.SetCriteria(src, n.viewDB.CriteriaFor(src))
	}
	n.unitView = g
	n.unitViewDB = db
	return g, db
}

// nextHop computes (or retrieves) this AD's forwarding decision for the
// context. The route computation replicates the source's: same request,
// same global database, evaluated from this AD's position.
func (n *node) nextHop(req policy.Request, prev ad.ID) ad.ID {
	k := cacheKey{src: req.Src, dst: req.Dst, prev: prev, qos: req.QOS, uci: req.UCI, hour: req.Hour}
	if nh, ok := n.routeCache[k]; ok {
		return nh
	}
	n.refreshView()
	view, viewDB := n.view, n.viewDB
	if n.sys.cfg.InconsistentTieBreak && n.id%2 == 1 {
		view, viewDB = n.unitCostView()
	}
	n.computations++
	res := synthesis.FindRouteFrom(view, viewDB, req, n.id, prev)
	n.expansions += res.Expanded
	nh := ad.Invalid
	if res.Found && len(res.Path) >= 2 {
		nh = res.Path[1]
	}
	if n.routeCache == nil {
		n.routeCache = make(map[cacheKey]ad.ID)
	}
	n.routeCache[k] = nh
	return nh
}
