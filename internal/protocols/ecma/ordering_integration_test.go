package ecma

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/ordering"
	"repro/internal/policy"
	"repro/internal/topology"
)

// TestCustomOrderingFromConstraints ties E10's machinery to the protocol:
// a central authority collects the ADs' topological policies as ordering
// constraints, negotiates away conflicts, builds the partial ordering, and
// ECMA runs on it.
func TestCustomOrderingFromConstraints(t *testing.T) {
	topo := topology.Figure1()
	g := topo.Graph
	// Each non-backbone AD expresses "my parent must rank above me",
	// plus one deliberately conflicting pair to force negotiation.
	var cons []ordering.Constraint
	for child, parent := range topo.Parent {
		cons = append(cons, ordering.Constraint{Above: parent, Below: child})
	}
	bb := topo.ByLevel[ad.Backbone]
	cons = append(cons,
		ordering.Constraint{Above: bb[0], Below: bb[1]},
		ordering.Constraint{Above: bb[1], Below: bb[0]}, // conflict
	)
	if ordering.Satisfiable(cons) {
		t.Fatal("conflicting constraints reported satisfiable")
	}
	kept, rounds := ordering.Negotiate(cons)
	if rounds == 0 {
		t.Fatal("negotiation dropped nothing")
	}
	order, ok := ordering.FromConstraints(g.IDs(), kept)
	if !ok {
		t.Fatal("negotiated constraints still unsatisfiable")
	}

	db := policy.OpenDB(g)
	sys := NewWithOrdering(g, db, order, Config{})
	if _, ok := sys.Converge(seconds(300)); !ok {
		t.Fatal("did not converge under negotiated ordering")
	}
	delivered := 0
	for _, src := range g.IDs() {
		for _, dst := range g.IDs() {
			if src == dst {
				continue
			}
			out := sys.Route(policy.Request{Src: src, Dst: dst})
			if out.Looped {
				t.Errorf("%v->%v looped under negotiated ordering", src, dst)
			}
			if out.Delivered {
				delivered++
			}
		}
	}
	// The negotiated ordering must still deliver the vast majority of
	// pairs (the dropped constraint may sacrifice some valley-free
	// routes, which is the negotiation's documented cost).
	n := g.NumADs()
	if delivered < (n*(n-1))*8/10 {
		t.Errorf("delivered only %d/%d pairs under negotiated ordering", delivered, n*(n-1))
	}
}
