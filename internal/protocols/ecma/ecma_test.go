package ecma

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/dvcore"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

var _ core.System = (*System)(nil)

func seconds(s int) sim.Time { return sim.Time(s) * sim.Second }

func figure1System(t *testing.T, cfg Config) (*System, *topology.Topology, *policy.DB) {
	t.Helper()
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	s := New(topo.Graph, db, cfg)
	if _, ok := s.Converge(seconds(300)); !ok {
		t.Fatal("did not converge")
	}
	return s, topo, db
}

func TestConvergesAndDeliversAllPairs(t *testing.T) {
	s, topo, db := figure1System(t, Config{})
	oracle := core.Oracle{G: topo.Graph, DB: db}
	for _, src := range topo.Graph.IDs() {
		for _, dst := range topo.Graph.IDs() {
			if src == dst {
				continue
			}
			req := policy.Request{Src: src, Dst: dst}
			out := s.Route(req)
			if !out.Delivered {
				t.Errorf("%v->%v not delivered", src, dst)
				continue
			}
			if out.Looped {
				t.Errorf("%v->%v looped: %v", src, dst, out.Path)
			}
			if !oracle.Legal(out.Path, req) {
				t.Errorf("%v->%v illegal path under open policy: %v", src, dst, out.Path)
			}
		}
	}
}

func TestStubsDoNotTransit(t *testing.T) {
	// Traffic between two stubs sharing a regional must not route through
	// any other stub (stubs advertise no third-party routes).
	s, topo, _ := figure1System(t, Config{})
	stubs := make(map[ad.ID]bool)
	for _, info := range topo.Graph.ADs() {
		if info.Class == ad.Stub || info.Class == ad.MultihomedStub {
			stubs[info.ID] = true
		}
	}
	for _, src := range topo.Graph.IDs() {
		for _, dst := range topo.Graph.IDs() {
			if src == dst {
				continue
			}
			out := s.Route(policy.Request{Src: src, Dst: dst})
			for i := 1; i < len(out.Path)-1; i++ {
				if stubs[out.Path[i]] {
					t.Errorf("%v->%v transits stub %v: %v", src, dst, out.Path[i], out.Path)
				}
			}
		}
	}
}

func TestUpDownRuleOnPaths(t *testing.T) {
	// Every forwarding path must satisfy the up/down (valley-free) rule.
	s, topo, _ := figure1System(t, Config{})
	for _, src := range topo.Graph.IDs() {
		for _, dst := range topo.Graph.IDs() {
			if src == dst {
				continue
			}
			out := s.Route(policy.Request{Src: src, Dst: dst})
			if out.Delivered && !s.Ordering().UpDownValid(out.Path) {
				t.Errorf("%v->%v path violates up/down rule: %v", src, dst, out.Path)
			}
		}
	}
}

func TestQOSFIBs(t *testing.T) {
	// Transit r2 offers QOS {0,1}; r3 offers only {0}. QOS-1 traffic
	// between stubs under them must avoid r3.
	g := ad.NewGraph()
	s1 := g.AddAD("s1", ad.Stub, ad.Campus)
	r2 := g.AddAD("r2", ad.Transit, ad.Regional)
	r3 := g.AddAD("r3", ad.Transit, ad.Regional)
	s2 := g.AddAD("s2", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: s1, B: r2, Cost: 5}, {A: r2, B: s2, Cost: 5}, // QOS 0+1, costlier
		{A: s1, B: r3, Cost: 1}, {A: r3, B: s2, Cost: 1}, // QOS 0 only, cheap
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	t2 := policy.OpenTerm(r2, 0)
	t2.QOS = policy.ClassSetOf(0, 1)
	db.Add(t2)
	t3 := policy.OpenTerm(r3, 0)
	t3.QOS = policy.ClassSetOf(0)
	db.Add(t3)

	sys := New(g, db, Config{QOSClasses: 2})
	if _, ok := sys.Converge(seconds(300)); !ok {
		t.Fatal("did not converge")
	}
	// QOS 0: cheap path via r3.
	out := sys.Route(policy.Request{Src: s1, Dst: s2, QOS: 0})
	if !out.Delivered || !out.Path.Contains(r3) {
		t.Errorf("QOS0 path = %v, want via r3", out.Path)
	}
	// QOS 1: r3 does not offer it; must go via r2.
	out = sys.Route(policy.Request{Src: s1, Dst: s2, QOS: 1})
	if !out.Delivered || !out.Path.Contains(r2) {
		t.Errorf("QOS1 path = %v, want via r2", out.Path)
	}
	// State: per-QOS FIB replication (4 nodes x 4 dests x 2 QOS) minus
	// entries never learned for unsupported classes.
	if got := sys.StateEntries(); got <= 16 {
		t.Errorf("per-QOS FIBs not replicated: state = %d", got)
	}
}

func TestDestinationExportFilter(t *testing.T) {
	// Transit only carries traffic destined to d1, not d2.
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	tr := g.AddAD("tr", ad.Transit, ad.Regional)
	d1 := g.AddAD("d1", ad.Stub, ad.Campus)
	d2 := g.AddAD("d2", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: src, B: tr}, {A: tr, B: d1}, {A: tr, B: d2}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	term := policy.OpenTerm(tr, 0)
	term.Dests = policy.SetOf(d1)
	db.Add(term)
	sys := New(g, db, Config{})
	sys.Converge(seconds(300))
	if out := sys.Route(policy.Request{Src: src, Dst: d1}); !out.Delivered {
		t.Error("allowed destination not delivered")
	}
	if out := sys.Route(policy.Request{Src: src, Dst: d2}); out.Delivered {
		t.Errorf("filtered destination delivered: %v", out.Path)
	}
}

func TestSourceSpecificPolicyViolated(t *testing.T) {
	// ECMA cannot express source-specific terms: traffic from a
	// forbidden source is still delivered (illegally). This is the
	// limitation the paper's recommended architecture fixes.
	g := ad.NewGraph()
	s1 := g.AddAD("s1", ad.Stub, ad.Campus)
	s2 := g.AddAD("s2", ad.Stub, ad.Campus)
	tr := g.AddAD("tr", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: s1, B: tr}, {A: s2, B: tr}, {A: tr, B: d}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	term := policy.OpenTerm(tr, 0)
	term.Sources = policy.SetOf(s1) // only s1 may transit tr
	db.Add(term)
	sys := New(g, db, Config{})
	sys.Converge(seconds(300))
	oracle := core.Oracle{G: g, DB: db}
	reqOK := policy.Request{Src: s1, Dst: d}
	reqBad := policy.Request{Src: s2, Dst: d}
	outOK := sys.Route(reqOK)
	outBad := sys.Route(reqBad)
	if !outOK.Delivered || !oracle.Legal(outOK.Path, reqOK) {
		t.Errorf("allowed source: %+v", outOK)
	}
	if !outBad.Delivered {
		t.Fatal("ECMA unexpectedly blocked the forbidden source")
	}
	if oracle.Legal(outBad.Path, reqBad) {
		t.Error("forbidden source's path reported legal — oracle broken")
	}
}

func TestReconvergenceAfterFailure(t *testing.T) {
	s, topo, _ := figure1System(t, Config{})
	before := s.Network().Stats.MessagesSent
	// Fail one regional-backbone link with an alternative (regional-2 has
	// the lateral to regional-3).
	var victim ad.Link
	for _, l := range topo.Graph.Links() {
		ia, _ := topo.Graph.AD(l.A)
		ib, _ := topo.Graph.AD(l.B)
		if ia.Level == ad.Backbone && ib.Level == ad.Regional && ib.Name == "regional-2" {
			victim = l
			break
		}
	}
	if victim.A == ad.Invalid && victim.B == ad.Invalid {
		t.Fatal("victim link not found")
	}
	if err := s.FailLink(victim.A, victim.B); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Converge(seconds(600)); !ok {
		t.Fatal("did not reconverge")
	}
	if s.Network().Stats.MessagesSent == before {
		t.Error("no messages after failure")
	}
	// All pairs still deliverable (graph remains connected).
	for _, src := range topo.Graph.IDs() {
		for _, dst := range topo.Graph.IDs() {
			if src == dst {
				continue
			}
			out := s.Route(policy.Request{Src: src, Dst: dst})
			if out.Looped {
				t.Errorf("%v->%v looped after failure", src, dst)
			}
		}
	}
}

func TestOrderingPreventsCountToInfinity(t *testing.T) {
	// Compare reconvergence message counts with and without the up/down
	// rule on a cyclic topology after a partition-causing failure.
	run := func(disable bool) uint64 {
		g := ad.NewGraph()
		bb := g.AddAD("bb", ad.Transit, ad.Backbone)
		r1 := g.AddAD("r1", ad.Transit, ad.Regional)
		r2 := g.AddAD("r2", ad.Transit, ad.Regional)
		leaf := g.AddAD("leaf", ad.Stub, ad.Campus)
		for _, l := range []ad.Link{
			{A: bb, B: r1}, {A: bb, B: r2}, {A: r1, B: r2, Class: ad.Lateral},
			{A: r2, B: leaf},
		} {
			if err := g.AddLink(l); err != nil {
				t.Fatal(err)
			}
		}
		db := policy.OpenDB(g)
		s := New(g, db, Config{DisableOrdering: disable, Infinity: 32})
		s.Converge(seconds(300))
		before := s.Network().Stats.MessagesSent
		s.FailLink(r2, leaf) // leaf unreachable
		s.Converge(seconds(3000))
		return s.Network().Stats.MessagesSent - before
	}
	withRule := run(false)
	withoutRule := run(true)
	if withoutRule <= withRule {
		t.Errorf("ordering shows no benefit: with=%d without=%d", withRule, withoutRule)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		topo := topology.Figure1()
		s := New(topo.Graph, policy.OpenDB(topo.Graph), Config{Seed: 3})
		s.Converge(seconds(300))
		return s.Network().Stats.MessagesSent
	}
	if run() != run() {
		t.Error("nondeterministic message count")
	}
}

func TestTableAccessors(t *testing.T) {
	s, topo, _ := figure1System(t, Config{})
	if s.Table(99) != nil {
		t.Error("Table(99) != nil")
	}
	id := topo.Graph.IDs()[0]
	if s.Table(id) == nil {
		t.Error("Table(valid) == nil")
	}
	if s.StateEntries() == 0 || s.Computations() == 0 {
		t.Error("counters zero after convergence")
	}
	// Self routes exist per QOS class.
	if _, ok := s.Table(id).Get(dvcore.Key{Dest: id, QOS: 0}); !ok {
		t.Error("self route missing")
	}
}

func TestUCINotExpressible(t *testing.T) {
	// "ECMA is not well-suited to express finer grained policies based on
	// such things as User Class Identifier" (§5.1.1): a UCI-restricted
	// transit still carries excluded user classes, because ECMA updates
	// carry no UCI information.
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	tr := g.AddAD("tr", ad.Transit, ad.Regional)
	dst := g.AddAD("dst", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: src, B: tr}, {A: tr, B: dst}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	term := policy.OpenTerm(tr, 0)
	term.UCI = policy.ClassSetOf(0) // user class 1 is forbidden
	db.Add(term)
	sys := New(g, db, Config{})
	sys.Converge(seconds(300))
	oracle := core.Oracle{G: g, DB: db}
	req := policy.Request{Src: src, Dst: dst, UCI: 1}
	out := sys.Route(req)
	if !out.Delivered {
		t.Fatal("ECMA dropped the traffic — it should be unable to enforce UCI at all")
	}
	if oracle.Legal(out.Path, req) {
		t.Error("UCI-forbidden delivery reported legal — oracle broken")
	}
}
