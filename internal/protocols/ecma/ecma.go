// Package ecma implements the NIST/ECMA inter-domain routing proposal as
// described in Breslau & Estrin (SIGCOMM 1990) §5.1.1: hop-by-hop
// distance-vector routing with policy expressed in the topology through a
// global partial ordering of ADs.
//
// Every link is labelled up or down by the partial ordering. Routing
// updates are marked when they traverse a down link; a marked update is
// never sent up again, which prevents loops and count-to-infinity without
// path information. Per-QOS forwarding information bases are maintained: a
// transit AD re-advertises a destination for a QOS class only if one of its
// policy terms offers that class, and destination-specific export filters
// derive from the terms' destination sets.
//
// What the design cannot express — source-specific policy beyond the
// ordering — is exactly what experiments E1/T1 measure: ECMA delivers
// traffic through ADs whose terms exclude the source (counted as illegal
// deliveries) or fails to find legal detours.
package ecma

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/dvcore"
	"repro/internal/ordering"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config parameterizes the protocol.
type Config struct {
	// Seed fixes the network RNG.
	Seed int64
	// QOSClasses is the number of per-QOS FIBs each AD maintains.
	QOSClasses int
	// DisableOrdering turns off the up/down rule (ablation): the
	// protocol degenerates into multi-FIB plain DV and may loop or count
	// to infinity.
	DisableOrdering bool
	// Infinity is the unreachable metric.
	Infinity uint32
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.QOSClasses < 1 {
		c.QOSClasses = 1
	}
	if c.QOSClasses > policy.MaxClasses {
		c.QOSClasses = policy.MaxClasses
	}
	if c.Infinity == 0 {
		c.Infinity = 64
	}
	return c
}

const flushDelay = sim.Millisecond

// System is an ECMA deployment.
type System struct {
	cfg   Config
	nw    *sim.Network
	db    *policy.DB
	order ordering.Ordering
	nodes map[ad.ID]*node

	computations int
	started      bool
}

// New builds the system over g with policy db. The partial ordering is
// derived from the topology hierarchy (the ordering a central authority
// would compute); pass a custom ordering with NewWithOrdering for
// satisfiability experiments.
func New(g *ad.Graph, db *policy.DB, cfg Config) *System {
	return NewWithOrdering(g, db, ordering.FromLevels(g), cfg)
}

// NewWithOrdering builds the system with an explicit partial ordering.
func NewWithOrdering(g *ad.Graph, db *policy.DB, order ordering.Ordering, cfg Config) *System {
	cfg = cfg.Normalize()
	s := &System{
		cfg:   cfg,
		nw:    sim.NewNetwork(g, cfg.Seed),
		db:    db,
		order: order,
		nodes: make(map[ad.ID]*node),
	}
	for _, info := range g.ADs() {
		n := &node{id: info.ID, info: info, sys: s, table: dvcore.NewTable()}
		n.deriveTransit()
		s.nodes[info.ID] = n
		s.nw.AddNode(n)
	}
	return s
}

// Name implements core.System.
func (s *System) Name() string { return "ecma" }

// Network implements core.System.
func (s *System) Network() *sim.Network { return s.nw }

// Converge implements core.System.
func (s *System) Converge(limit sim.Time) (sim.Time, bool) {
	if !s.started {
		s.started = true
		s.nw.Start()
	}
	return s.nw.RunToQuiescence(limit)
}

// Route implements core.System: per-QOS hop-by-hop forwarding.
func (s *System) Route(req policy.Request) core.Outcome {
	qos := req.QOS
	if int(qos) >= s.cfg.QOSClasses {
		qos = 0
	}
	k := dvcore.Key{Dest: req.Dst, QOS: qos}
	path, delivered, looped := dvcore.FollowNextHops(req.Src, k, func(id ad.ID) *dvcore.Table {
		if n, ok := s.nodes[id]; ok {
			return n.table
		}
		return nil
	})
	return core.Outcome{Path: path, Delivered: delivered, Looped: looped}
}

// StateEntries implements core.System.
func (s *System) StateEntries() int {
	total := 0
	for _, n := range s.nodes {
		total += n.table.Len()
	}
	return total
}

// Computations implements core.System.
func (s *System) Computations() int { return s.computations }

// Table exposes an AD's FIB for tests.
func (s *System) Table(id ad.ID) *dvcore.Table {
	if n, ok := s.nodes[id]; ok {
		return n.table
	}
	return nil
}

// FailLink injects a link failure.
func (s *System) FailLink(a, b ad.ID) error { return s.nw.FailLink(a, b) }

// Ordering exposes the partial ordering in use.
func (s *System) Ordering() ordering.Ordering { return s.order }

// node is one AD's ECMA process.
type node struct {
	id   ad.ID
	info ad.Info
	sys  *System

	table *dvcore.Table

	// transitQOS[q] is true when some local term offers QOS q.
	transitQOS []bool
	// transitCost[q] is the cheapest local term cost offering q.
	transitCost []uint32
	// destFilter is nil when all destinations may transit; otherwise the
	// union of the terms' destination sets.
	destAll bool
	destSet map[ad.ID]bool

	flushPending bool
}

// deriveTransit precomputes the node's QOS support, transit costs, and
// destination export filter from its local policy terms.
func (n *node) deriveTransit() {
	q := n.sys.cfg.QOSClasses
	n.transitQOS = make([]bool, q)
	n.transitCost = make([]uint32, q)
	n.destSet = make(map[ad.ID]bool)
	for _, t := range n.sys.db.Terms(n.id) {
		for c := 0; c < q; c++ {
			if !t.QOS.Contains(uint8(c)) {
				continue
			}
			if !n.transitQOS[c] || t.Cost < n.transitCost[c] {
				n.transitQOS[c] = true
				n.transitCost[c] = t.Cost
			}
		}
		if t.Dests.IsUniversal() {
			n.destAll = true
		} else {
			for _, d := range t.Dests.Members() {
				n.destSet[d] = true
			}
		}
	}
}

// mayExportDest reports whether the destination filter allows advertising
// routes to dest (destination-specific policies, paper §5.1).
func (n *node) mayExportDest(dest ad.ID) bool {
	return n.destAll || n.destSet[dest]
}

func (n *node) ID() ad.ID { return n.id }

func (n *node) Start(nw *sim.Network) {
	// Originate the self route in every QOS class: any AD accepts
	// traffic destined to itself regardless of class.
	for q := 0; q < n.sys.cfg.QOSClasses; q++ {
		n.table.Set(dvcore.Entry{
			Key:     dvcore.Key{Dest: n.id, QOS: policy.QOS(q)},
			Metric:  0,
			NextHop: n.id,
		})
	}
	n.scheduleFlush(nw)
}

func (n *node) scheduleFlush(nw *sim.Network) {
	if n.flushPending {
		return
	}
	n.flushPending = true
	nw.After(flushDelay, func() {
		n.flushPending = false
		n.flush(nw, n.table.TakeDirty(), ad.Invalid)
	})
}

// advertisable builds the DVRoute n would send to nb for key k, applying
// the up/down rule, the transit QOS/destination filters, and the transit
// cost. ok=false means the route must not be advertised to nb.
func (n *node) advertisable(k dvcore.Key, nb ad.ID) (wire.DVRoute, bool) {
	e, have := n.table.Get(k)
	if !have || e.Metric >= n.sys.cfg.Infinity {
		// Withdrawals propagate regardless of policy filters so stale
		// routes die.
		return wire.DVRoute{Dest: k.Dest, Metric: n.sys.cfg.Infinity, QOS: k.QOS, Flags: wire.FlagWithdraw}, true
	}
	isSelf := k.Dest == n.id
	if !isSelf {
		// Only transit-capable ADs re-advertise third-party routes:
		// stubs and multihomed stubs have no terms, so they never do
		// (information hiding + no-transit, §5.1).
		if !n.transitQOS[int(k.QOS)] {
			return wire.DVRoute{}, false
		}
		if !n.mayExportDest(k.Dest) {
			return wire.DVRoute{}, false
		}
	}
	flags := e.Flags
	if !n.sys.cfg.DisableOrdering {
		// The up/down rule: an update that has traversed a down link
		// may not travel up again. The receiver records the marking
		// for the hop itself.
		if flags&wire.FlagTraversedDown != 0 && n.sys.order.Direction(n.id, nb) == ordering.Up {
			return wire.DVRoute{}, false
		}
	}
	metric := e.Metric
	if !isSelf {
		metric += n.transitCost[int(k.QOS)]
	}
	return wire.DVRoute{Dest: k.Dest, Metric: metric, QOS: k.QOS, Flags: flags}, true
}

// flush advertises the given keys to every up neighbor (or only `only` when
// set), applying per-neighbor filtering.
func (n *node) flush(nw *sim.Network, keys []dvcore.Key, only ad.ID) {
	if len(keys) == 0 {
		return
	}
	for _, nb := range nw.UpNeighbors(n.id) {
		if only != ad.Invalid && nb != only {
			continue
		}
		var upd wire.DVUpdate
		for _, k := range keys {
			if rt, ok := n.advertisable(k, nb); ok {
				upd.Routes = append(upd.Routes, rt)
			}
		}
		if len(upd.Routes) > 0 {
			nw.Send("ecma", n.id, nb, wire.Marshal(&upd))
		}
	}
}

func (n *node) Receive(nw *sim.Network, from ad.ID, payload []byte) {
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		return
	}
	upd, ok := msg.(*wire.DVUpdate)
	if !ok {
		return
	}
	if len(upd.Routes) == 0 {
		// Full-table solicitation after a topology change.
		var keys []dvcore.Key
		for _, e := range n.table.Entries() {
			keys = append(keys, e.Key)
		}
		n.flush(nw, keys, from)
		return
	}
	n.sys.computations++
	link, ok := nw.Graph.LinkBetween(n.id, from)
	if !ok {
		return
	}
	inf := n.sys.cfg.Infinity
	changed := false
	for _, rt := range upd.Routes {
		if rt.Dest == n.id || int(rt.QOS) >= n.sys.cfg.QOSClasses {
			continue
		}
		flags := rt.Flags &^ wire.FlagWithdraw
		if !n.sys.cfg.DisableOrdering {
			// Record the traversal direction of this hop
			// (from -> me) in the marking.
			if n.sys.order.Direction(from, n.id) == ordering.Down {
				flags |= wire.FlagTraversedDown
			}
		}
		metric := rt.Metric + link.Cost
		if metric > inf || rt.Flags&wire.FlagWithdraw != 0 {
			metric = inf
		}
		k := dvcore.Key{Dest: rt.Dest, QOS: rt.QOS}
		cur, have := n.table.Get(k)
		switch {
		case have && cur.NextHop == from:
			e := dvcore.Entry{Key: k, Metric: metric, NextHop: from, Flags: flags}
			if metric >= inf {
				e.NextHop = ad.Invalid
			}
			if n.table.Set(e) {
				changed = true
			}
		case !have || metric < cur.Metric:
			if metric >= inf {
				continue
			}
			if n.table.Set(dvcore.Entry{Key: k, Metric: metric, NextHop: from, Flags: flags}) {
				changed = true
			}
		}
	}
	if changed {
		n.scheduleFlush(nw)
	}
}

func (n *node) LinkDown(nw *sim.Network, nb ad.ID) {
	inf := n.sys.cfg.Infinity
	changed := false
	for _, k := range n.table.ViaNeighbor(nb) {
		e, _ := n.table.Get(k)
		e.Metric = inf
		e.NextHop = ad.Invalid
		if n.table.Set(e) {
			changed = true
		}
	}
	if changed {
		n.scheduleFlush(nw)
		for _, other := range nw.UpNeighbors(n.id) {
			nw.Send("ecma", n.id, other, wire.Marshal(&wire.DVUpdate{}))
		}
	}
}

func (n *node) LinkUp(nw *sim.Network, nb ad.ID) {
	var keys []dvcore.Key
	for _, e := range n.table.Entries() {
		keys = append(keys, e.Key)
	}
	n.flush(nw, keys, nb)
	// Ask the recovered neighbor for its table too.
	nw.Send("ecma", n.id, nb, wire.Marshal(&wire.DVUpdate{}))
}
