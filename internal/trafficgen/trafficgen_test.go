package trafficgen

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/topology"
)

func testGraph() *topology.Topology {
	return topology.Generate(topology.Config{Seed: 3, LateralProb: 0.2})
}

func TestUniformWorkload(t *testing.T) {
	topo := testGraph()
	reqs := Generate(topo.Graph, Config{Seed: 1, Requests: 500, StubsOnly: true})
	if len(reqs) != 500 {
		t.Fatalf("requests = %d", len(reqs))
	}
	stubs := map[ad.ID]bool{}
	for _, info := range topo.Graph.ADs() {
		if info.Class == ad.Stub || info.Class == ad.MultihomedStub {
			stubs[info.ID] = true
		}
	}
	for _, r := range reqs {
		if r.Src == r.Dst {
			t.Fatal("self request")
		}
		if !stubs[r.Src] || !stubs[r.Dst] {
			t.Fatalf("non-stub endpoint in stubs-only workload: %v", r)
		}
		if r.QOS != 0 || r.UCI != 0 || r.Hour != 12 {
			t.Fatalf("default classes wrong: %v", r)
		}
	}
}

func TestZipfSkewExceedsUniform(t *testing.T) {
	topo := testGraph()
	uniform := Generate(topo.Graph, Config{Seed: 2, Requests: 2000, Model: "uniform"})
	zipf := Generate(topo.Graph, Config{Seed: 2, Requests: 2000, Model: "zipf", ZipfS: 1.5})
	su, sz := Skew(uniform), Skew(zipf)
	if sz <= su {
		t.Errorf("zipf skew %.3f <= uniform skew %.3f", sz, su)
	}
	if sz < 0.5 {
		t.Errorf("zipf (s=1.5) skew %.3f suspiciously low", sz)
	}
}

func TestGravityFavorsHighDegree(t *testing.T) {
	topo := testGraph()
	g := topo.Graph
	reqs := Generate(g, Config{Seed: 3, Requests: 3000, Model: "gravity"})
	counts := map[ad.ID]int{}
	for _, r := range reqs {
		counts[r.Src]++
		counts[r.Dst]++
	}
	// The highest-degree AD must appear more often than the lowest.
	var hi, lo ad.ID
	for _, info := range g.ADs() {
		if hi == ad.Invalid || g.Degree(info.ID) > g.Degree(hi) {
			hi = info.ID
		}
		if lo == ad.Invalid || g.Degree(info.ID) < g.Degree(lo) {
			lo = info.ID
		}
	}
	if counts[hi] <= counts[lo] {
		t.Errorf("gravity: high-degree %v count %d <= low-degree %v count %d",
			hi, counts[hi], lo, counts[lo])
	}
}

func TestClassAndHourSpread(t *testing.T) {
	topo := testGraph()
	reqs := Generate(topo.Graph, Config{
		Seed: 4, Requests: 1000, QOSClasses: 4, UCIClasses: 3, HourSpread: true,
	})
	qosSeen := map[uint8]bool{}
	hourSeen := map[uint8]bool{}
	for _, r := range reqs {
		qosSeen[uint8(r.QOS)] = true
		hourSeen[r.Hour] = true
		if r.QOS > 3 || r.UCI > 2 || r.Hour > 23 {
			t.Fatalf("out-of-range class: %v", r)
		}
	}
	if len(qosSeen) != 4 {
		t.Errorf("QOS classes seen = %d, want 4", len(qosSeen))
	}
	if len(hourSeen) < 20 {
		t.Errorf("hours seen = %d, want near 24", len(hourSeen))
	}
}

func TestDeterminism(t *testing.T) {
	topo := testGraph()
	a := Generate(topo.Graph, Config{Seed: 5, Requests: 200, Model: "zipf"})
	b := Generate(topo.Graph, Config{Seed: 5, Requests: 200, Model: "zipf"})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	g := ad.NewGraph()
	g.AddAD("only", ad.Stub, ad.Campus)
	if reqs := Generate(g, Config{Seed: 1, Requests: 10}); reqs != nil {
		t.Errorf("single-AD graph produced requests: %v", reqs)
	}
	if Skew(nil) != 0 {
		t.Error("Skew(nil) != 0")
	}
}
