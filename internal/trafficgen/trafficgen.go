// Package trafficgen generates traffic request workloads for the
// experiments: uniform all-pairs sweeps, Zipf-skewed hot sets (most
// traffic between few pairs, as inter-AD traffic matrices are), and a
// gravity model in which an AD's traffic share is proportional to its
// degree (a proxy for its size, in the spirit of §2.1's locality argument).
package trafficgen

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/ad"
	"repro/internal/policy"
)

// Config parameterizes a workload. The JSON form is used by scenario files
// (scenario.RequestSpec.Workload).
type Config struct {
	// Seed fixes the generator.
	Seed int64 `json:"seed,omitempty"`
	// Requests is the workload length.
	Requests int `json:"requests,omitempty"`
	// StubsOnly restricts sources and destinations to stub ADs.
	StubsOnly bool `json:"stubs_only,omitempty"`
	// Model selects the pair distribution: "uniform", "zipf", "gravity".
	Model string `json:"model,omitempty"`
	// ZipfS is the Zipf exponent (>1); larger = more skew. Default 1.2.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// QOSClasses / UCIClasses spread requests over service and user
	// classes (uniformly); zero means class 0 only.
	QOSClasses int `json:"qos_classes,omitempty"`
	UCIClasses int `json:"uci_classes,omitempty"`
	// HourSpread draws request hours uniformly from [0,24) instead of
	// fixing noon.
	HourSpread bool `json:"hour_spread,omitempty"`
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.Requests <= 0 {
		c.Requests = 100
	}
	if c.Model == "" {
		c.Model = "uniform"
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	return c
}

// endpoints returns the candidate AD population.
func endpoints(g *ad.Graph, stubsOnly bool) []ad.ID {
	var ids []ad.ID
	for _, info := range g.ADs() {
		if !stubsOnly || info.Class == ad.Stub || info.Class == ad.MultihomedStub {
			ids = append(ids, info.ID)
		}
	}
	return ids
}

// pairs enumerates ordered endpoint pairs.
func pairs(ids []ad.ID) [][2]ad.ID {
	var out [][2]ad.ID
	for _, s := range ids {
		for _, d := range ids {
			if s != d {
				out = append(out, [2]ad.ID{s, d})
			}
		}
	}
	return out
}

// Generate produces a workload over graph g.
func Generate(g *ad.Graph, c Config) []policy.Request {
	c = c.Normalize()
	rng := rand.New(rand.NewSource(c.Seed))
	ids := endpoints(g, c.StubsOnly)
	if len(ids) < 2 {
		return nil
	}
	pp := pairs(ids)

	var pick func() [2]ad.ID
	switch c.Model {
	case "zipf":
		// Shuffle pair ranks, then draw by Zipf rank.
		rng.Shuffle(len(pp), func(i, j int) { pp[i], pp[j] = pp[j], pp[i] })
		z := rand.NewZipf(rng, c.ZipfS, 1, uint64(len(pp)-1))
		pick = func() [2]ad.ID { return pp[z.Uint64()] }
	case "gravity":
		// Weight each AD by its degree; pair weight = w(s)·w(d).
		w := make(map[ad.ID]float64, len(ids))
		total := 0.0
		for _, id := range ids {
			w[id] = float64(g.Degree(id))
			total += w[id]
		}
		cum := make([]float64, len(ids))
		acc := 0.0
		for i, id := range ids {
			acc += w[id] / total
			cum[i] = acc
		}
		draw := func() ad.ID {
			x := rng.Float64()
			i := sort.SearchFloat64s(cum, x)
			if i >= len(ids) {
				i = len(ids) - 1
			}
			return ids[i]
		}
		pick = func() [2]ad.ID {
			for {
				s, d := draw(), draw()
				if s != d {
					return [2]ad.ID{s, d}
				}
			}
		}
	default: // uniform
		pick = func() [2]ad.ID { return pp[rng.Intn(len(pp))] }
	}

	out := make([]policy.Request, 0, c.Requests)
	for i := 0; i < c.Requests; i++ {
		p := pick()
		req := policy.Request{Src: p[0], Dst: p[1], Hour: 12}
		if c.QOSClasses > 1 {
			req.QOS = policy.QOS(rng.Intn(c.QOSClasses))
		}
		if c.UCIClasses > 1 {
			req.UCI = policy.UCI(rng.Intn(c.UCIClasses))
		}
		if c.HourSpread {
			req.Hour = uint8(rng.Intn(24))
		}
		out = append(out, req)
	}
	return out
}

// Skew summarizes a workload's concentration: the fraction of requests
// carried by the busiest decile of pairs (0.1 = perfectly uniform).
func Skew(reqs []policy.Request) float64 {
	if len(reqs) == 0 {
		return 0
	}
	counts := map[[2]ad.ID]int{}
	for _, r := range reqs {
		counts[[2]ad.ID{r.Src, r.Dst}]++
	}
	sorted := make([]int, 0, len(counts))
	for _, c := range counts {
		sorted = append(sorted, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	top := int(math.Ceil(float64(len(sorted)) / 10))
	sum := 0
	for _, c := range sorted[:top] {
		sum += c
	}
	return float64(sum) / float64(len(reqs))
}
