// Package scenario provides a declarative, JSON-driven front end to the
// simulator: a scenario file names a topology (generated, Figure 1, or
// inline), a policy set (open, generated, or explicit terms), a protocol,
// a timeline of events (link failures/restorations, policy changes), and a
// traffic workload. Running a scenario produces a phase-by-phase report.
//
// This is the integration surface for users who want to pose their own
// what-if questions to the reproduction without writing Go.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/egp"
	"repro/internal/protocols/filters"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/topology"
	"repro/internal/trafficgen"
)

// Scenario is the top-level declarative description.
type Scenario struct {
	Name     string       `json:"name"`
	Topology TopologySpec `json:"topology"`
	Policy   PolicySpec   `json:"policy"`
	Protocol ProtocolSpec `json:"protocol"`
	Events   []Event      `json:"events,omitempty"`
	Requests RequestSpec  `json:"requests"`
	// ConvergeLimitMS bounds each convergence phase (default 600 000).
	ConvergeLimitMS int64 `json:"converge_limit_ms,omitempty"`
}

// TopologySpec selects the internet. Exactly one field should be set.
type TopologySpec struct {
	Figure1  bool             `json:"figure1,omitempty"`
	Generate *topology.Config `json:"generate,omitempty"`
}

// PolicySpec selects the policy database.
type PolicySpec struct {
	Open     bool              `json:"open,omitempty"`
	Generate *policy.GenConfig `json:"generate,omitempty"`
	Terms    []TermSpec        `json:"terms,omitempty"`
}

// TermSpec is the JSON form of one policy term. AD sets are either the
// string "*" (universal) or a list of AD IDs.
type TermSpec struct {
	Advertiser uint32    `json:"advertiser"`
	Serial     uint32    `json:"serial,omitempty"`
	Sources    ADSetSpec `json:"sources,omitempty"`
	Dests      ADSetSpec `json:"dests,omitempty"`
	PrevADs    ADSetSpec `json:"prev,omitempty"`
	NextADs    ADSetSpec `json:"next,omitempty"`
	QOS        []uint8   `json:"qos,omitempty"`
	UCI        []uint8   `json:"uci,omitempty"`
	HourStart  *uint8    `json:"hour_start,omitempty"`
	HourEnd    *uint8    `json:"hour_end,omitempty"`
	Cost       uint32    `json:"cost,omitempty"`
}

// ADSetSpec marshals as "*" or a JSON array of IDs. The zero value means
// universal (the common case for open terms).
type ADSetSpec struct {
	universal bool
	ids       []uint32
	set       bool
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *ADSetSpec) UnmarshalJSON(b []byte) error {
	*s = ADSetSpec{set: true}
	var star string
	if err := json.Unmarshal(b, &star); err == nil {
		if star != "*" {
			return fmt.Errorf("scenario: AD set string must be %q, got %q", "*", star)
		}
		s.universal = true
		return nil
	}
	if err := json.Unmarshal(b, &s.ids); err != nil {
		return fmt.Errorf("scenario: AD set must be \"*\" or an ID list: %w", err)
	}
	return nil
}

// MarshalJSON implements json.Marshaler.
func (s ADSetSpec) MarshalJSON() ([]byte, error) {
	if !s.set || s.universal {
		return json.Marshal("*")
	}
	return json.Marshal(s.ids)
}

// toADSet converts to the policy representation (universal when unset).
func (s ADSetSpec) toADSet() policy.ADSet {
	if !s.set || s.universal {
		return policy.Universal()
	}
	ids := make([]ad.ID, len(s.ids))
	for i, v := range s.ids {
		ids[i] = ad.ID(v)
	}
	return policy.SetOf(ids...)
}

// toTerm converts a TermSpec to a policy.Term.
func (ts TermSpec) toTerm() policy.Term {
	t := policy.Term{
		Advertiser: ad.ID(ts.Advertiser),
		Serial:     ts.Serial,
		Sources:    ts.Sources.toADSet(),
		Dests:      ts.Dests.toADSet(),
		PrevADs:    ts.PrevADs.toADSet(),
		NextADs:    ts.NextADs.toADSet(),
		QOS:        policy.AllClasses,
		UCI:        policy.AllClasses,
		Hours:      policy.Always,
		Cost:       ts.Cost,
	}
	if len(ts.QOS) > 0 {
		t.QOS = policy.ClassSetOf(ts.QOS...)
	}
	if len(ts.UCI) > 0 {
		t.UCI = policy.ClassSetOf(ts.UCI...)
	}
	if ts.HourStart != nil && ts.HourEnd != nil {
		t.Hours = policy.HourWindow{Start: *ts.HourStart, End: *ts.HourEnd}
	}
	if t.Cost == 0 {
		t.Cost = 1
	}
	return t
}

// ProtocolSpec names the architecture and its knobs.
type ProtocolSpec struct {
	Name string `json:"name"`
	// Shared knobs; each protocol reads the ones it understands.
	Seed            int64   `json:"seed,omitempty"`
	SplitHorizon    *bool   `json:"split_horizon,omitempty"`
	MultiRoute      int     `json:"multi_route,omitempty"`
	QOSClasses      int     `json:"qos_classes,omitempty"`
	DisableOrdering bool    `json:"disable_ordering,omitempty"`
	CacheCapacity   int     `json:"cache_capacity,omitempty"`
	Strategy        string  `json:"strategy,omitempty"`
	TimeoutMS       int64   `json:"timeout_ms,omitempty"`
	NoFallback      bool    `json:"no_fallback,omitempty"`
	MaxCandidates   int     `json:"max_candidates,omitempty"`
	Restriction     float64 `json:"-"`
}

// Event is one timeline entry, applied after the previous phase converges.
type Event struct {
	// Action is "fail", "restore", "update-policy", "kill-primary", or
	// "plan". kill-primary models a route-server replica failover: in
	// single-server replay it compiles to a full invalidation (the cold
	// cache a restarted server — or an unreplicated standby — starts
	// from); protocol simulations re-evaluate without mutating the
	// network. plan is a what-if proposal: the Steps batch is assessed
	// against a cloned world — nothing in the live scenario mutates — and
	// the Assert bounds are enforced on the predicted report.
	Action string `json:"action"`
	// A and B are the link endpoints for fail/restore.
	A uint32 `json:"a,omitempty"`
	B uint32 `json:"b,omitempty"`
	// AD is the update-policy target (and the advertiser of a "policy"
	// plan step).
	AD uint32 `json:"ad,omitempty"`
	// Terms replace the AD's policy for update-policy.
	Terms []TermSpec `json:"terms,omitempty"`
	// Cost is the open-term cost of a "policy" plan step.
	Cost uint32 `json:"cost,omitempty"`
	// Steps is a "plan" event's proposed batch, in order: nested events
	// restricted to "fail", "restore" (of a link failed earlier in the
	// same batch), and "policy" (AD + Cost, the open-term replacement the
	// plan engine proposes).
	Steps []Event `json:"steps,omitempty"`
	// Assert bounds a "plan" event's predicted report; the scenario fails
	// if a bound is exceeded.
	Assert *PlanAssert `json:"assert,omitempty"`
}

// PlanAssert bounds the predicted report of a "plan" event. Nil fields are
// unchecked.
type PlanAssert struct {
	// MaxLost caps the pairs that lose all routes (routable before the
	// batch, not after).
	MaxLost *int `json:"max_lost,omitempty"`
	// MinGained floors the pairs that gain a route.
	MinGained *int `json:"min_gained,omitempty"`
	// MaxUnroutableAfter caps the workload pairs with no route after the
	// batch, routable before or not.
	MaxUnroutableAfter *int `json:"max_unroutable_after,omitempty"`
}

// RequestSpec selects the traffic workload. Exactly one field should be
// set.
type RequestSpec struct {
	// AllStubPairs evaluates every ordered stub pair.
	AllStubPairs bool `json:"all_stub_pairs,omitempty"`
	// AllPairs evaluates every ordered AD pair.
	AllPairs bool `json:"all_pairs,omitempty"`
	// Explicit lists individual requests.
	Explicit []RequestEntry `json:"explicit,omitempty"`
	// Workload generates a synthetic request stream (uniform / Zipf /
	// gravity) via internal/trafficgen — the route-server serving
	// workloads use this.
	Workload *trafficgen.Config `json:"workload,omitempty"`
}

// RequestEntry is one explicit traffic request.
type RequestEntry struct {
	Src  uint32 `json:"src"`
	Dst  uint32 `json:"dst"`
	QOS  uint8  `json:"qos,omitempty"`
	UCI  uint8  `json:"uci,omitempty"`
	Hour uint8  `json:"hour,omitempty"`
}

// Load parses a scenario from JSON.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &sc, nil
}

// Materialize builds the scenario's graph, policy database, and traffic
// workload without constructing a protocol system. The route-server CLI
// (cmd/routed) serves queries straight off this state, applying the
// scenario's events as churn.
func (sc *Scenario) Materialize() (*ad.Graph, *policy.DB, []policy.Request, error) {
	var g *ad.Graph
	switch {
	case sc.Topology.Figure1:
		g = topology.Figure1().Graph
	case sc.Topology.Generate != nil:
		g = topology.Generate(*sc.Topology.Generate).Graph
	default:
		return nil, nil, nil, fmt.Errorf("scenario: topology must set figure1 or generate")
	}

	var db *policy.DB
	switch {
	case sc.Policy.Open:
		db = policy.OpenDB(g)
	case sc.Policy.Generate != nil:
		db = policy.Generate(g, *sc.Policy.Generate)
	case len(sc.Policy.Terms) > 0:
		db = policy.NewDB()
		for _, ts := range sc.Policy.Terms {
			db.Add(ts.toTerm())
		}
	default:
		return nil, nil, nil, fmt.Errorf("scenario: policy must set open, generate, or terms")
	}

	var reqs []policy.Request
	switch {
	case sc.Requests.AllStubPairs:
		reqs = core.AllPairsRequests(g, true, 0, 0)
	case sc.Requests.AllPairs:
		reqs = core.AllPairsRequests(g, false, 0, 0)
	case len(sc.Requests.Explicit) > 0:
		for _, e := range sc.Requests.Explicit {
			reqs = append(reqs, policy.Request{
				Src: ad.ID(e.Src), Dst: ad.ID(e.Dst),
				QOS: policy.QOS(e.QOS), UCI: policy.UCI(e.UCI), Hour: e.Hour,
			})
		}
	case sc.Requests.Workload != nil:
		reqs = trafficgen.Generate(g, *sc.Requests.Workload)
		if len(reqs) == 0 {
			return nil, nil, nil, fmt.Errorf("scenario: workload generated no requests")
		}
	default:
		return nil, nil, nil, fmt.Errorf("scenario: requests must set all_stub_pairs, all_pairs, explicit, or workload")
	}
	return g, db, reqs, nil
}

// Validate checks that the scenario is well-formed — topology, policy, and
// workload materialize, the protocol is known, and every event action is
// recognized — without running any simulation phases.
func (sc *Scenario) Validate() error {
	_, _, _, _, err := sc.build()
	return err
}

// build materializes the scenario's graph, policy, protocol, and workload.
func (sc *Scenario) build() (*ad.Graph, *policy.DB, core.System, []policy.Request, error) {
	g, db, reqs, err := sc.Materialize()
	if err != nil {
		return nil, nil, nil, nil, err
	}

	p := sc.Protocol
	var sys core.System
	switch p.Name {
	case "plain-dv":
		split := true
		if p.SplitHorizon != nil {
			split = *p.SplitHorizon
		}
		sys = plaindv.New(g, plaindv.Config{SplitHorizon: split, Seed: p.Seed})
	case "egp":
		sys = egp.New(g, egp.Config{Seed: p.Seed, NoFallback: p.NoFallback})
	case "filters":
		sys = filters.New(g, db, filters.Config{
			Seed:          p.Seed,
			Timeout:       sim.Time(p.TimeoutMS) * sim.Millisecond,
			MaxCandidates: p.MaxCandidates,
		})
	case "ecma":
		sys = ecma.New(g, db, ecma.Config{Seed: p.Seed, QOSClasses: p.QOSClasses, DisableOrdering: p.DisableOrdering})
	case "idrp":
		sys = idrp.New(g, db, idrp.Config{Seed: p.Seed, MultiRoute: p.MultiRoute, QOSClasses: p.QOSClasses})
	case "bgp":
		sys = idrp.New(g, db, idrp.Config{Seed: p.Seed, BGPMode: true})
	case "lshh":
		sys = lshh.New(g, db, lshh.Config{Seed: p.Seed})
	case "orwg":
		sys = orwg.New(g, db, orwg.Config{
			Seed:          p.Seed,
			Strategy:      orwg.StrategyKind(p.Strategy),
			CacheCapacity: p.CacheCapacity,
		})
	default:
		return nil, nil, nil, nil, fmt.Errorf("scenario: unknown protocol %q", p.Name)
	}

	if _, err := sc.Mutations(g, db); err != nil {
		return nil, nil, nil, nil, err
	}
	return g, db, sys, reqs, nil
}

// Mutation is one compiled scenario event: Apply performs it against the
// materialized graph and policy database; Change describes the event for
// scoped cache invalidation (routeserver.Server.MutateScoped). Policy
// events compile to AD-level changes — the scenario schema replaces an
// AD's whole term list, so term-level deltas are not known until Apply
// runs.
type Mutation struct {
	Label  string
	Apply  func()
	Change synthesis.Change
}

// Mutations compiles the scenario's events into graph/policy closures, for
// route-serving front ends (cmd/routed) that replay events as churn through
// routeserver.Server.Mutate rather than through a protocol simulation. Link
// metadata is resolved against the pristine graph up front, so a "restore"
// re-adds the exact link an earlier "fail" removed. It also validates the
// event list; Validate relies on this.
func (sc *Scenario) Mutations(g *ad.Graph, db *policy.DB) ([]Mutation, error) {
	out := make([]Mutation, 0, len(sc.Events))
	for i, ev := range sc.Events {
		switch ev.Action {
		case "fail", "restore":
			a, b := ad.ID(ev.A), ad.ID(ev.B)
			link, ok := findLink(g, a, b)
			if !ok {
				return nil, fmt.Errorf("scenario: event %d: no link %v-%v", i+1, a, b)
			}
			if ev.Action == "fail" {
				out = append(out, Mutation{
					Label:  fmt.Sprintf("fail %v-%v", a, b),
					Apply:  func() { g.RemoveLink(a, b) },
					Change: synthesis.LinkDownChange(a, b),
				})
			} else {
				out = append(out, Mutation{
					Label:  fmt.Sprintf("restore %v-%v", a, b),
					Apply:  func() { _ = g.AddLink(link) },
					Change: synthesis.LinkUpChange(a, b),
				})
			}
		case "update-policy":
			id := ad.ID(ev.AD)
			if _, ok := g.AD(id); !ok {
				return nil, fmt.Errorf("scenario: event %d: unknown AD %v", i+1, id)
			}
			terms := make([]policy.Term, len(ev.Terms))
			for j, ts := range ev.Terms {
				terms[j] = ts.toTerm()
			}
			out = append(out, Mutation{
				Label:  fmt.Sprintf("update-policy %v", id),
				Apply:  func() { db.SetTerms(id, terms) },
				Change: synthesis.PolicyChangeAt(id),
			})
		case "kill-primary":
			out = append(out, Mutation{
				Label:  "kill-primary",
				Apply:  func() {},
				Change: synthesis.FullChange(),
			})
		case "plan":
			// A plan predicts, it never mutates: validate the batch and
			// emit no Mutation, so churn replay skips it.
			if err := validatePlanEvent(g, i, ev); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("scenario: event %d: unknown action %q", i+1, ev.Action)
		}
	}
	return out, nil
}

// validatePlanEvent checks a "plan" event's batch and assert bounds
// without touching the graph or policy database.
func validatePlanEvent(g *ad.Graph, i int, ev Event) error {
	if len(ev.Steps) == 0 {
		return fmt.Errorf("scenario: event %d: plan needs at least one step", i+1)
	}
	failed := make(map[[2]ad.ID]bool)
	for j, st := range ev.Steps {
		switch st.Action {
		case "fail":
			a, b := ad.ID(st.A), ad.ID(st.B)
			if _, ok := findLink(g, a, b); !ok {
				return fmt.Errorf("scenario: event %d step %d: no link %v-%v", i+1, j+1, a, b)
			}
			failed[synthesis.CanonicalPair(a, b)] = true
		case "restore":
			a, b := ad.ID(st.A), ad.ID(st.B)
			if !failed[synthesis.CanonicalPair(a, b)] {
				return fmt.Errorf("scenario: event %d step %d: restore %v-%v does not follow a fail of it in this plan", i+1, j+1, a, b)
			}
			delete(failed, synthesis.CanonicalPair(a, b))
		case "policy":
			if _, ok := g.AD(ad.ID(st.AD)); !ok {
				return fmt.Errorf("scenario: event %d step %d: unknown AD %v", i+1, j+1, ad.ID(st.AD))
			}
		default:
			return fmt.Errorf("scenario: event %d step %d: unknown plan step action %q", i+1, j+1, st.Action)
		}
	}
	if as := ev.Assert; as != nil {
		for name, v := range map[string]*int{
			"max_lost": as.MaxLost, "min_gained": as.MinGained,
			"max_unroutable_after": as.MaxUnroutableAfter,
		} {
			if v != nil && *v < 0 {
				return fmt.Errorf("scenario: event %d: plan assert %s must be >= 0, got %d", i+1, name, *v)
			}
		}
	}
	return nil
}

// evaluatePlanEvent assesses a "plan" event's batch against clones of the
// current graph and policy database — the live scenario is untouched —
// and enforces the event's assert bounds on the predicted report.
func evaluatePlanEvent(g *ad.Graph, db *policy.DB, reqs []policy.Request, i int, ev Event) (gained, lost, unroutable int, err error) {
	gAfter, dbAfter := g.Clone(), db.Clone()
	removed := make(map[[2]ad.ID]ad.Link)
	for j, st := range ev.Steps {
		switch st.Action {
		case "fail":
			a, b := ad.ID(st.A), ad.ID(st.B)
			link, ok := gAfter.LinkBetween(a, b)
			if !ok {
				return 0, 0, 0, fmt.Errorf("scenario: event %d step %d: no link %v-%v", i+1, j+1, a, b)
			}
			removed[synthesis.CanonicalPair(a, b)] = link
			gAfter.RemoveLink(a, b)
		case "restore":
			a, b := ad.ID(st.A), ad.ID(st.B)
			link, ok := removed[synthesis.CanonicalPair(a, b)]
			if !ok {
				return 0, 0, 0, fmt.Errorf("scenario: event %d step %d: restore %v-%v does not follow a fail of it in this plan", i+1, j+1, a, b)
			}
			delete(removed, synthesis.CanonicalPair(a, b))
			if err := gAfter.AddLink(link); err != nil {
				return 0, 0, 0, fmt.Errorf("scenario: event %d step %d: %w", i+1, j+1, err)
			}
		case "policy":
			term := policy.OpenTerm(ad.ID(st.AD), 0)
			term.Cost = st.Cost
			dbAfter.SetTerms(ad.ID(st.AD), []policy.Term{term})
		default:
			return 0, 0, 0, fmt.Errorf("scenario: event %d step %d: unknown plan step action %q", i+1, j+1, st.Action)
		}
	}
	for _, req := range reqs {
		before := synthesis.FindRoute(g, db, req)
		after := synthesis.FindRoute(gAfter, dbAfter, req)
		switch {
		case !before.Found && after.Found:
			gained++
		case before.Found && !after.Found:
			lost++
		}
		if !after.Found {
			unroutable++
		}
	}
	if as := ev.Assert; as != nil {
		if as.MaxLost != nil && lost > *as.MaxLost {
			return gained, lost, unroutable, fmt.Errorf("scenario: event %d: plan predicts %d pairs lost, assert max_lost %d", i+1, lost, *as.MaxLost)
		}
		if as.MinGained != nil && gained < *as.MinGained {
			return gained, lost, unroutable, fmt.Errorf("scenario: event %d: plan predicts %d pairs gained, assert min_gained %d", i+1, gained, *as.MinGained)
		}
		if as.MaxUnroutableAfter != nil && unroutable > *as.MaxUnroutableAfter {
			return gained, lost, unroutable, fmt.Errorf("scenario: event %d: plan predicts %d pairs unroutable after, assert max_unroutable_after %d", i+1, unroutable, *as.MaxUnroutableAfter)
		}
	}
	return gained, lost, unroutable, nil
}

// findLink returns the graph's link between a and b, if present.
func findLink(g *ad.Graph, a, b ad.ID) (ad.Link, bool) {
	for _, l := range g.Links() {
		want := ad.Link{A: a, B: b}.Canonical()
		if l.A == want.A && l.B == want.B {
			return l, true
		}
	}
	return ad.Link{}, false
}

// Run executes the scenario and writes a phased report to w.
func (sc *Scenario) Run(w io.Writer) error {
	g, db, sys, reqs, err := sc.build()
	if err != nil {
		return err
	}
	limit := sim.Time(sc.ConvergeLimitMS) * sim.Millisecond
	if limit == 0 {
		limit = 600 * sim.Second
	}
	name := sc.Name
	if name == "" {
		name = "scenario"
	}
	tbl := metrics.NewTable(fmt.Sprintf("%s — %s", name, sys.Name()),
		"phase", "availability", "illegal", "loops", "blackholes", "messages", "bytes", "conv")

	evaluate := func(phase string) {
		m := core.RunScenario(sys, core.Oracle{G: g, DB: currentDB(sys, db)}, reqs, limit)
		tbl.AddRow(phase, m.Availability(), m.DeliveredIllegal, m.Looped, m.Blackholed,
			m.Messages, m.Bytes, m.ConvergenceTime.String())
	}
	evaluate("initial")

	for i, ev := range sc.Events {
		label := fmt.Sprintf("event %d: %s", i+1, ev.Action)
		switch ev.Action {
		case "fail":
			f, ok := sys.(interface{ FailLink(a, b ad.ID) error })
			if !ok {
				return fmt.Errorf("scenario: %s does not support failures", sys.Name())
			}
			if err := f.FailLink(ad.ID(ev.A), ad.ID(ev.B)); err != nil {
				return fmt.Errorf("scenario: event %d: %w", i+1, err)
			}
			label = fmt.Sprintf("event %d: fail %v-%v", i+1, ad.ID(ev.A), ad.ID(ev.B))
		case "restore":
			if err := sys.Network().RestoreLink(ad.ID(ev.A), ad.ID(ev.B)); err != nil {
				return fmt.Errorf("scenario: event %d: %w", i+1, err)
			}
			label = fmt.Sprintf("event %d: restore %v-%v", i+1, ad.ID(ev.A), ad.ID(ev.B))
		case "update-policy":
			ow, ok := sys.(*orwg.System)
			if !ok {
				return fmt.Errorf("scenario: update-policy requires the orwg protocol")
			}
			terms := make([]policy.Term, 0, len(ev.Terms))
			for _, ts := range ev.Terms {
				terms = append(terms, ts.toTerm())
			}
			if err := ow.UpdatePolicy(ad.ID(ev.AD), terms); err != nil {
				return fmt.Errorf("scenario: event %d: %w", i+1, err)
			}
			label = fmt.Sprintf("event %d: update-policy %v (%d terms)", i+1, ad.ID(ev.AD), len(terms))
		case "kill-primary":
			// A route-server replica event: the protocol network itself is
			// untouched, so the phase just re-evaluates.
			label = fmt.Sprintf("event %d: kill-primary", i+1)
		case "plan":
			// A what-if proposal: assessed on clones, asserted, reported as
			// a note — the live world and the phase table see no change.
			gained, lost, unroutable, err := evaluatePlanEvent(g, currentDB(sys, db), reqs, i, ev)
			if err != nil {
				return err
			}
			tbl.AddNote("event %d: plan (%d steps): %d gained, %d lost, %d unroutable after — asserts hold",
				i+1, len(ev.Steps), gained, lost, unroutable)
			continue
		default:
			return fmt.Errorf("scenario: unknown event action %q", ev.Action)
		}
		evaluate(label)
	}
	return tbl.Render(w)
}

// currentDB returns the live policy database for systems that mutate it
// (ORWG after update-policy events); others keep the original.
func currentDB(sys core.System, db *policy.DB) *policy.DB {
	if ow, ok := sys.(*orwg.System); ok {
		return ow.PolicyDB()
	}
	return db
}
