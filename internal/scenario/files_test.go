package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommittedScenarioFiles runs every scenario file shipped in
// scenarios/, catching schema drift between the package and the examples.
func TestCommittedScenarioFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		ran++
		t.Run(e.Name(), func(t *testing.T) {
			f, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			sc, err := Load(f)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if err := sc.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			var out bytes.Buffer
			if err := sc.Run(&out); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !strings.Contains(out.String(), "initial") {
				t.Errorf("no report produced:\n%s", out.String())
			}
		})
	}
	if ran == 0 {
		t.Fatal("no scenario files found")
	}
}
