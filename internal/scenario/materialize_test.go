package scenario

import (
	"strings"
	"testing"
)

func TestMaterializeWorkload(t *testing.T) {
	sc, err := Load(strings.NewReader(`{
		"name": "wl",
		"topology": {"figure1": true},
		"policy": {"open": true},
		"protocol": {"name": "orwg"},
		"requests": {"workload": {"seed": 1, "requests": 37, "model": "zipf", "stubs_only": true}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	g, db, reqs, err := sc.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || db == nil {
		t.Fatal("nil graph or db")
	}
	if len(reqs) != 37 {
		t.Fatalf("len(reqs) = %d, want 37", len(reqs))
	}
	for _, r := range reqs {
		if _, ok := g.AD(r.Src); !ok {
			t.Fatalf("request source %v not in graph", r.Src)
		}
	}
}

func TestValidateRejectsBadScenarios(t *testing.T) {
	cases := map[string]string{
		"unknown protocol": `{
			"topology": {"figure1": true}, "policy": {"open": true},
			"protocol": {"name": "nope"}, "requests": {"all_pairs": true}}`,
		"no requests": `{
			"topology": {"figure1": true}, "policy": {"open": true},
			"protocol": {"name": "orwg"}, "requests": {}}`,
		"bad event action": `{
			"topology": {"figure1": true}, "policy": {"open": true},
			"protocol": {"name": "orwg"},
			"events": [{"action": "explode"}],
			"requests": {"all_pairs": true}}`,
		"fail on missing link": `{
			"topology": {"figure1": true}, "policy": {"open": true},
			"protocol": {"name": "orwg"},
			"events": [{"action": "fail", "a": 1, "b": 9999}],
			"requests": {"all_pairs": true}}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			sc, err := Load(strings.NewReader(body))
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if err := sc.Validate(); err == nil {
				t.Fatal("Validate accepted a malformed scenario")
			}
		})
	}
}
