package scenario

import (
	"bytes"
	"strings"
	"testing"
)

func run(t *testing.T, js string) string {
	t.Helper()
	sc, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var out bytes.Buffer
	if err := sc.Run(&out); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out.String()
}

func TestFigure1OpenORWG(t *testing.T) {
	out := run(t, `{
		"name": "fig1-open",
		"topology": {"figure1": true},
		"policy": {"open": true},
		"protocol": {"name": "orwg"},
		"requests": {"all_stub_pairs": true}
	}`)
	if !strings.Contains(out, "fig1-open — orwg") {
		t.Errorf("title missing:\n%s", out)
	}
	if !strings.Contains(out, "initial") || !strings.Contains(out, "1.000") {
		t.Errorf("initial full availability missing:\n%s", out)
	}
}

func TestGeneratedWithEvents(t *testing.T) {
	out := run(t, `{
		"topology": {"generate": {"Seed": 5, "LateralProb": 0.3}},
		"policy": {"open": true},
		"protocol": {"name": "ecma"},
		"events": [
			{"action": "fail", "a": 3, "b": 1},
			{"action": "restore", "a": 3, "b": 1}
		],
		"requests": {"all_stub_pairs": true}
	}`)
	for _, want := range []string{"initial", "fail AD3-AD1", "restore AD3-AD1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestExplicitTermsAndRequests(t *testing.T) {
	// Figure 1 IDs: 1,2 backbones; 3,4,5 regionals; 6..10 campuses.
	out := run(t, `{
		"topology": {"figure1": true},
		"policy": {"terms": [
			{"advertiser": 1}, {"advertiser": 2},
			{"advertiser": 3, "sources": [6, 7]},
			{"advertiser": 4}, {"advertiser": 5}
		]},
		"protocol": {"name": "orwg"},
		"requests": {"explicit": [
			{"src": 6, "dst": 9},
			{"src": 7, "dst": 10}
		]}
	}`)
	if !strings.Contains(out, "initial") {
		t.Errorf("report missing:\n%s", out)
	}
}

func TestUpdatePolicyEvent(t *testing.T) {
	out := run(t, `{
		"topology": {"figure1": true},
		"policy": {"open": true},
		"protocol": {"name": "orwg"},
		"events": [
			{"action": "update-policy", "ad": 3, "terms": [
				{"advertiser": 3, "sources": [6]}
			]}
		],
		"requests": {"all_stub_pairs": true}
	}`)
	if !strings.Contains(out, "update-policy AD3 (1 terms)") {
		t.Errorf("update-policy phase missing:\n%s", out)
	}
}

func TestUpdatePolicyRequiresORWG(t *testing.T) {
	sc, err := Load(strings.NewReader(`{
		"topology": {"figure1": true},
		"policy": {"open": true},
		"protocol": {"name": "ecma"},
		"events": [{"action": "update-policy", "ad": 3}],
		"requests": {"all_stub_pairs": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := sc.Run(&out); err == nil {
		t.Error("update-policy under ecma did not error")
	}
}

func TestAllProtocolsRunnable(t *testing.T) {
	for _, proto := range []string{"plain-dv", "egp", "filters", "ecma", "idrp", "lshh", "orwg"} {
		out := run(t, `{
			"topology": {"figure1": true},
			"policy": {"open": true},
			"protocol": {"name": "`+proto+`"},
			"requests": {"all_stub_pairs": true}
		}`)
		if !strings.Contains(out, "initial") {
			t.Errorf("%s: no report", proto)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"unknown_field": 1}`,
		`{"topology": {}, "policy": {"open": true}, "protocol": {"name": "orwg"}, "requests": {"all_pairs": true}}`,
		`{"topology": {"figure1": true}, "policy": {}, "protocol": {"name": "orwg"}, "requests": {"all_pairs": true}}`,
		`{"topology": {"figure1": true}, "policy": {"open": true}, "protocol": {"name": "nope"}, "requests": {"all_pairs": true}}`,
		`{"topology": {"figure1": true}, "policy": {"open": true}, "protocol": {"name": "orwg"}, "requests": {}}`,
		`{"topology": {"figure1": true}, "policy": {"terms": [{"advertiser": 1, "sources": "x"}]}, "protocol": {"name": "orwg"}, "requests": {"all_pairs": true}}`,
	}
	for i, js := range cases {
		sc, err := Load(strings.NewReader(js))
		if err != nil {
			continue // parse-time rejection is fine
		}
		var out bytes.Buffer
		if err := sc.Run(&out); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestBadEventAction(t *testing.T) {
	sc, err := Load(strings.NewReader(`{
		"topology": {"figure1": true},
		"policy": {"open": true},
		"protocol": {"name": "orwg"},
		"events": [{"action": "explode"}],
		"requests": {"all_pairs": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := sc.Run(&out); err == nil {
		t.Error("unknown action did not error")
	}
}

func TestPlanEvent(t *testing.T) {
	out := run(t, `{
		"topology": {"figure1": true},
		"policy": {"open": true},
		"protocol": {"name": "orwg"},
		"events": [
			{"action": "plan", "steps": [
				{"action": "fail", "a": 4, "b": 5},
				{"action": "policy", "ad": 1, "cost": 5},
				{"action": "restore", "a": 4, "b": 5}
			], "assert": {"max_lost": 0, "min_gained": 0, "max_unroutable_after": 0}}
		],
		"requests": {"all_stub_pairs": true}
	}`)
	if !strings.Contains(out, "plan (3 steps): 0 gained, 0 lost, 0 unroutable after") {
		t.Errorf("plan note missing:\n%s", out)
	}
	// A plan mutates nothing: exactly one phase row (initial) is rendered.
	if strings.Count(out, "initial") != 1 || strings.Contains(out, "event 1: plan\n") {
		t.Errorf("plan produced a phase row:\n%s", out)
	}
}

func TestPlanEventAssertViolation(t *testing.T) {
	// Stranding campus-1 (its only link is to regional-3) must trip
	// max_lost 0.
	sc, err := Load(strings.NewReader(`{
		"topology": {"figure1": true},
		"policy": {"open": true},
		"protocol": {"name": "orwg"},
		"events": [
			{"action": "plan", "steps": [{"action": "fail", "a": 6, "b": 3}],
			 "assert": {"max_lost": 0}}
		],
		"requests": {"all_stub_pairs": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := sc.Run(&out); err == nil || !strings.Contains(err.Error(), "max_lost") {
		t.Errorf("assert violation: err = %v", err)
	}
}

func TestPlanEventValidation(t *testing.T) {
	cases := []struct {
		event string
		want  string
	}{
		{`{"action": "plan"}`, "at least one step"},
		{`{"action": "plan", "steps": [{"action": "fail", "a": 1, "b": 6}]}`, "no link"},
		{`{"action": "plan", "steps": [{"action": "restore", "a": 1, "b": 2}]}`, "does not follow a fail"},
		{`{"action": "plan", "steps": [{"action": "policy", "ad": 99}]}`, "unknown AD"},
		{`{"action": "plan", "steps": [{"action": "explode"}]}`, "unknown plan step action"},
		{`{"action": "plan", "steps": [{"action": "policy", "ad": 1}], "assert": {"max_lost": -1}}`, "must be >= 0"},
	}
	for _, tc := range cases {
		sc, err := Load(strings.NewReader(`{
			"topology": {"figure1": true},
			"policy": {"open": true},
			"protocol": {"name": "orwg"},
			"events": [` + tc.event + `],
			"requests": {"all_stub_pairs": true}
		}`))
		if err != nil {
			t.Fatalf("%s: Load: %v", tc.event, err)
		}
		if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate err = %v, want %q", tc.event, err, tc.want)
		}
	}
}

func TestADSetSpecRoundTrip(t *testing.T) {
	var s ADSetSpec
	if err := s.UnmarshalJSON([]byte(`"*"`)); err != nil {
		t.Fatal(err)
	}
	if !s.toADSet().IsUniversal() {
		t.Error("star not universal")
	}
	if err := s.UnmarshalJSON([]byte(`[1,2,3]`)); err != nil {
		t.Fatal(err)
	}
	set := s.toADSet()
	if set.IsUniversal() || !set.Contains(2) || set.Contains(4) {
		t.Errorf("list set wrong: %v", set)
	}
	if err := s.UnmarshalJSON([]byte(`"all"`)); err == nil {
		t.Error("bad string accepted")
	}
	b, err := s.MarshalJSON()
	if err != nil || string(b) == "" {
		t.Errorf("marshal: %s %v", b, err)
	}
	// Zero value marshals as "*" and means universal.
	var zero ADSetSpec
	if b, _ := zero.MarshalJSON(); string(b) != `"*"` {
		t.Errorf("zero marshals as %s", b)
	}
	if !zero.toADSet().IsUniversal() {
		t.Error("zero value not universal")
	}
}

func TestTermSpecDefaults(t *testing.T) {
	ts := TermSpec{Advertiser: 5}
	term := ts.toTerm()
	if term.Cost != 1 {
		t.Errorf("default cost = %d", term.Cost)
	}
	if !term.Sources.IsUniversal() || !term.Hours.IsAlways() {
		t.Error("defaults not open")
	}
	start, end := uint8(9), uint8(17)
	ts2 := TermSpec{Advertiser: 5, QOS: []uint8{0, 2}, HourStart: &start, HourEnd: &end, Cost: 7}
	term2 := ts2.toTerm()
	if !term2.QOS.Contains(2) || term2.QOS.Contains(1) {
		t.Error("QOS classes wrong")
	}
	if term2.Hours.Start != 9 || term2.Hours.End != 17 || term2.Cost != 7 {
		t.Errorf("term2 = %+v", term2)
	}
}
