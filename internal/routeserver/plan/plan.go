// Package plan is the what-if engine the paper's §6 calls for ("tools to
// help predict the impact of policies"): it takes a proposed change — or an
// ordered batch, e.g. a staged policy rollout — and computes its blast
// radius on the live serving layer before anything is applied.
//
// A plan is computed in two phases. First, a read-only snapshot under the
// server's strategy lock (Server.CollectAffected): the graph and policy
// database are cloned twice from one consistent cut, the batch is simulated
// on the post-change clones to derive each step's synthesis.Change, and each
// change's cache victims are resolved through the same reverse indexes and
// AffectsPath/AffectsNegative soundness rules scoped eviction applies —
// without deleting anything. Nothing a concurrent query can observe is
// mutated, and the snapshot cost is proportional to the batch's blast
// radius (index fan-out), not to the cache size. Second, outside all server
// locks, a bounded worker pool shadow-re-synthesizes the affected
// population (the recorded workload plus every evicted pair and torn-down
// flow) against the pre- and post-change clones to find which pairs lose
// all routes, folding the per-request classifications through
// policytool.Impact so plan reports and policytool assessments can never
// disagree.
//
// The report carries the epoch the snapshot corresponds to; the
// plan-then-commit workflow in daemon.Backend refuses to commit a plan
// whose epoch the server has moved past (any conflicting mutation — not a
// routine cache fill — bumps it).
package plan

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ad"
	"repro/internal/parallel"
	"repro/internal/policy"
	"repro/internal/policytool"
	"repro/internal/routeserver"
	"repro/internal/synthesis"
)

// StepKind enumerates the proposable control mutations — the same three
// scoped operations daemon.Backend applies (fail, restore, set-policy).
type StepKind uint8

const (
	// StepFail proposes taking the A-B link down.
	StepFail StepKind = iota + 1
	// StepRestore proposes restoring the previously failed A-B link.
	StepRestore
	// StepPolicy proposes replacing A's terms with one open term of the
	// given cost (Backend.SetPolicy's operation).
	StepPolicy
)

// Step is one proposed control mutation in a plan batch.
type Step struct {
	Kind StepKind
	// A, B are the link endpoints (fail/restore); A alone is the
	// advertiser for a policy step.
	A, B ad.ID
	// Cost is the open-term cost for a policy step.
	Cost uint32
}

// Label renders the step the way the routed CLI spells it.
func (st Step) Label() string {
	switch st.Kind {
	case StepFail:
		return fmt.Sprintf("fail %v-%v", st.A, st.B)
	case StepRestore:
		return fmt.Sprintf("restore %v-%v", st.A, st.B)
	case StepPolicy:
		return fmt.Sprintf("policy %v cost %d", st.A, st.Cost)
	default:
		return fmt.Sprintf("step(%d)", st.Kind)
	}
}

// Config bounds a plan computation.
type Config struct {
	// Workers bounds the shadow re-synthesis pool (default GOMAXPROCS).
	Workers int
	// Budget caps the population size the shadow pool re-synthesizes
	// (each member costs two FindRoutes). 0 means the 8192 default; < 0
	// means unbounded. When the affected population exceeds it, the
	// population is truncated deterministically (sorted order) and the
	// report is marked Truncated.
	Budget int
	// Workload is the recorded traffic to assess — typically the server's
	// query-log ring (Server.RecentQueries()) — so "which pairs lose all
	// routes" reflects real traffic, not just cache residency.
	Workload []policy.Request
}

// StepReport is the predicted effect of one step, in batch order. Counts
// are incremental: a cache entry or flow already claimed by an earlier
// step is not counted again, mirroring sequential application.
type StepReport struct {
	Step   Step
	Change synthesis.Change
	// Evicted counts cache entries this step newly evicts; Retained is
	// the current-generation population still cached after it.
	Evicted, Retained int
	// Teardowns counts live data-plane flows this step newly tears down.
	Teardowns int
}

// Bill is the estimated re-synthesis cost of the batch: every evicted
// cache key whose next query must run a synthesis, priced by the live
// synthesis-latency histogram.
type Bill struct {
	// Count is the number of re-syntheses the batch provokes (one per
	// evicted key on its next miss; coalescing dedupes concurrent ones).
	Count int
	// PerSynth and P95 are the mean and 95th-percentile observed
	// synthesis latencies; Projected is Count × PerSynth. All zero when
	// the server has not yet observed a synthesis.
	PerSynth, P95, Projected time.Duration
}

// Report is the predicted blast radius of a plan batch.
type Report struct {
	// Steps holds the per-step predictions in batch order.
	Steps []StepReport
	// EvictedKeys is the sorted union of cache keys the batch evicts;
	// Retained is the current-generation population left cached.
	EvictedKeys []routeserver.Key
	Retained    int
	// Teardowns is the sorted union of live flow handles torn down.
	Teardowns []uint64
	// Population is the sorted, deduplicated set of requests the shadow
	// pool assessed: the recorded workload, every evicted pair, and every
	// torn-down flow's intent. Truncated reports whether the budget cut
	// it short.
	Population []policy.Request
	Truncated  bool
	// Impact classifies the population before vs after the batch through
	// the shared policytool path (gained/lost/rerouted, transit shift).
	Impact policytool.Impact
	// Unroutable lists pairs that lose all routes (routable before, not
	// after) — Impact.Lost's requests. UnroutableAfter lists every
	// assessed pair with no route after, whether or not it had one.
	Unroutable      []policy.Request
	UnroutableAfter []policy.Request
	// Bill is the estimated re-synthesis cost.
	Bill Bill
	// Epoch and Gen identify the server state the plan was computed
	// against; a commit must refuse if the epoch has moved since.
	Epoch, Gen uint64
}

// Compute predicts the blast radius of applying steps, in order, to the
// serving stack: srv's route cache, dp's installed flow state (nil when no
// data plane is attached), and the g/db the strategy synthesizes over.
// removed is the failed-link memory restore steps resolve against
// (Backend's map); Compute never mutates any of them. The caller must hold
// whatever lock serializes control mutations (Backend.Plan holds the
// backend lock), so g, db, and removed are stable for the duration.
func Compute(srv *routeserver.Server, dp *routeserver.DataPlane, g *ad.Graph, db *policy.DB, removed map[[2]ad.ID]ad.Link, steps []Step, cfg Config) (*Report, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("empty plan")
	}

	// Phase 1: consistent snapshot under the strategy lock. prepare clones
	// the pre-change state, simulates the batch on a second clone to derive
	// each step's Change, and CollectAffected resolves the victims.
	var (
		gBefore, gAfter   *ad.Graph
		dbBefore, dbAfter *policy.DB
		changes           []synthesis.Change
	)
	prepare := func() ([]synthesis.Change, error) {
		gBefore, dbBefore = g.Clone(), db.Clone()
		gAfter, dbAfter = g.Clone(), db.Clone()
		rem := make(map[[2]ad.ID]ad.Link, len(removed))
		for k, v := range removed {
			rem[k] = v
		}
		changes = make([]synthesis.Change, len(steps))
		for i, st := range steps {
			switch st.Kind {
			case StepFail:
				link, ok := gAfter.LinkBetween(st.A, st.B)
				if !ok {
					return nil, fmt.Errorf("step %d: no link %v-%v", i+1, st.A, st.B)
				}
				rem[synthesis.CanonicalPair(st.A, st.B)] = link
				gAfter.RemoveLink(st.A, st.B)
				changes[i] = synthesis.LinkDownChange(st.A, st.B)
			case StepRestore:
				key := synthesis.CanonicalPair(st.A, st.B)
				link, ok := rem[key]
				if !ok {
					return nil, fmt.Errorf("step %d: link %v-%v was not failed here", i+1, st.A, st.B)
				}
				delete(rem, key)
				if err := gAfter.AddLink(link); err != nil {
					return nil, fmt.Errorf("step %d: restore %v-%v: %v", i+1, st.A, st.B, err)
				}
				changes[i] = synthesis.LinkUpChange(st.A, st.B)
			case StepPolicy:
				term := policy.OpenTerm(st.A, 0)
				term.Cost = st.Cost
				changes[i] = synthesis.PolicyChangeOf(dbAfter.DiffTerms(st.A, []policy.Term{term}))
				dbAfter.SetTerms(st.A, []policy.Term{term})
			default:
				return nil, fmt.Errorf("step %d: unknown kind %d", i+1, st.Kind)
			}
		}
		return changes, nil
	}
	perChange, live, epoch, gen, err := srv.CollectAffected(prepare)
	if err != nil {
		return nil, err
	}

	rep := &Report{Epoch: epoch, Gen: gen}

	// Per-step incremental evictions over the snapshot. Union semantics
	// mirror sequential application exactly: a victim of step i that an
	// earlier step already evicted is gone by the time step i runs.
	evicted := make(map[routeserver.Key]routeserver.CacheEntry)
	tornDown := make(map[uint64]struct{})
	for i, ents := range perChange {
		sr := StepReport{Step: steps[i], Change: changes[i]}
		for _, ent := range ents {
			if _, dup := evicted[ent.Key]; !dup {
				evicted[ent.Key] = ent
				sr.Evicted++
			}
		}
		sr.Retained = live - len(evicted)
		if steps[i].Kind == StepFail && dp != nil {
			for _, h := range dp.FlowsCrossing(steps[i].A, steps[i].B) {
				if _, dup := tornDown[h]; !dup {
					tornDown[h] = struct{}{}
					sr.Teardowns++
				}
			}
		}
		rep.Steps = append(rep.Steps, sr)
	}
	rep.Retained = live - len(evicted)
	for k := range evicted {
		rep.EvictedKeys = append(rep.EvictedKeys, k)
	}
	sortKeys(rep.EvictedKeys)
	for h := range tornDown {
		rep.Teardowns = append(rep.Teardowns, h)
	}
	sort.Slice(rep.Teardowns, func(i, j int) bool { return rep.Teardowns[i] < rep.Teardowns[j] })

	// Affected population: recorded workload ∪ evicted pairs ∪ torn-down
	// flow intents, deduplicated by serving key and sorted.
	seen := make(map[routeserver.Key]struct{})
	add := func(req policy.Request) {
		k := routeserver.KeyOf(req)
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			rep.Population = append(rep.Population, req)
		}
	}
	for _, req := range cfg.Workload {
		add(req)
	}
	for _, k := range rep.EvictedKeys {
		add(k.Request())
	}
	if dp != nil {
		for _, h := range rep.Teardowns {
			if f, ok := dp.Flow(h); ok {
				add(f.Req)
			}
		}
	}
	sortRequests(rep.Population)
	budget := cfg.Budget
	if budget == 0 {
		budget = 8192
	}
	if budget > 0 && len(rep.Population) > budget {
		rep.Population = rep.Population[:budget]
		rep.Truncated = true
	}

	// Phase 2: shadow re-synthesis against the clones, outside all server
	// locks. FindRoute only reads the graph/policy state, so a shared
	// clone pair is safe for the whole pool; results land by index, so the
	// fold below is deterministic at any parallelism.
	focus := focusAD(steps)
	before := make([]synthesis.Result, len(rep.Population))
	after := make([]synthesis.Result, len(rep.Population))
	tasks := make([]func(), len(rep.Population))
	for i := range rep.Population {
		i := i
		tasks[i] = func() {
			before[i] = synthesis.FindRoute(gBefore, dbBefore, rep.Population[i])
			after[i] = synthesis.FindRoute(gAfter, dbAfter, rep.Population[i])
		}
	}
	parallel.Do(parallel.Normalize(cfg.Workers), tasks)
	rep.Impact = policytool.Impact{
		AD:          focus,
		TermsBefore: len(dbBefore.Terms(focus)),
		TermsAfter:  len(dbAfter.Terms(focus)),
	}
	for i, req := range rep.Population {
		rep.Impact.Add(req, before[i], after[i])
		if !after[i].Found {
			rep.UnroutableAfter = append(rep.UnroutableAfter, req)
		}
	}
	for _, pc := range rep.Impact.Lost {
		rep.Unroutable = append(rep.Unroutable, pc.Req)
	}

	// The re-synthesis bill: one synthesis per evicted key on its next
	// miss, priced from the live histogram.
	lat := srv.Snapshot().SynthLatency
	rep.Bill = Bill{
		Count:     len(rep.EvictedKeys),
		PerSynth:  lat.Mean,
		P95:       lat.P95,
		Projected: time.Duration(len(rep.EvictedKeys)) * lat.Mean,
	}
	return rep, nil
}

// focusAD picks the AD whose transit load the impact summary tracks: the
// first policy step's advertiser, else the first step's A endpoint.
func focusAD(steps []Step) ad.ID {
	for _, st := range steps {
		if st.Kind == StepPolicy {
			return st.A
		}
	}
	return steps[0].A
}

// sortKeys orders cache keys by (Src, Dst, QOS, UCI, Hour).
func sortKeys(keys []routeserver.Key) {
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
}

func keyLess(a, b routeserver.Key) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.QOS != b.QOS {
		return a.QOS < b.QOS
	}
	if a.UCI != b.UCI {
		return a.UCI < b.UCI
	}
	return a.Hour < b.Hour
}

// sortRequests orders requests by their serving key.
func sortRequests(reqs []policy.Request) {
	sort.Slice(reqs, func(i, j int) bool {
		return keyLess(routeserver.KeyOf(reqs[i]), routeserver.KeyOf(reqs[j]))
	})
}
