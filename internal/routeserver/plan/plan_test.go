package plan_test

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ad"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/routeserver"
	"repro/internal/routeserver/daemon"
	"repro/internal/routeserver/plan"
	"repro/internal/sim"
	"repro/internal/synthesis"
)

// world is the diamond the serving-layer tests share — src(1)-t1(2)-dst(4)
// cheap, src(1)-t2(3)-dst(4) expensive — behind a backend, with a query
// log so plans have a recorded workload to replay.
func world(t *testing.T) (*ad.Graph, *policy.DB, *routeserver.Server, *routeserver.DataPlane, *daemon.Backend) {
	t.Helper()
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	dst := g.AddAD("dst", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: t1, Cost: 1}, {A: t1, B: dst, Cost: 1},
		{A: src, B: t2, Cost: 5}, {A: t2, B: dst, Cost: 5},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.OpenDB(g)
	srv := routeserver.New(synthesis.NewOnDemand(g, db), routeserver.Config{QueryLog: 64})
	dp, err := routeserver.NewDataPlane(pgstate.Config{Kind: pgstate.Soft, TTL: 30 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	return g, db, srv, dp, daemon.NewBackend(srv, dp, g, db)
}

// warm fills the cache (and query log) with a fixed request set.
func warm(t *testing.T, srv *routeserver.Server) []policy.Request {
	t.Helper()
	reqs := []policy.Request{
		{Src: 1, Dst: 4}, {Src: 1, Dst: 4, QOS: 1},
		{Src: 2, Dst: 4}, {Src: 1, Dst: 2},
		{Src: 1, Dst: 3}, {Src: 3, Dst: 4},
	}
	for _, req := range reqs {
		if res := srv.Query(req); !res.Found {
			t.Fatalf("warm query %v found no route", req)
		}
	}
	return reqs
}

func keySet(ents []routeserver.CacheEntry) map[routeserver.Key]bool {
	s := make(map[routeserver.Key]bool, len(ents))
	for _, e := range ents {
		s[e.Key] = true
	}
	return s
}

// TestPlanPredictsCommitExactly pins the engine's contract: on a quiesced
// server, the predicted evicted keys, retained count, torn-down flows, and
// unroutable pairs match what committing the plan actually does — set for
// set, not just count for count.
func TestPlanPredictsCommitExactly(t *testing.T) {
	_, _, srv, dp, be := world(t)
	warm(t, srv)
	// Two flows over the cheap transit, one over a path that avoids it.
	h14, _, ok := be.Install(policy.Request{Src: 1, Dst: 4})
	if !ok {
		t.Fatal("install 1-4 failed")
	}
	h24, _, ok := be.Install(policy.Request{Src: 2, Dst: 4})
	if !ok {
		t.Fatal("install 2-4 failed")
	}
	if _, _, ok = be.Install(policy.Request{Src: 1, Dst: 3}); !ok {
		t.Fatal("install 1-3 failed")
	}

	steps := []plan.Step{
		{Kind: plan.StepFail, A: 2, B: 4},
		{Kind: plan.StepPolicy, A: 2, Cost: 50},
	}
	id, rep, err := be.Plan(steps)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != srv.Epoch() || rep.Gen != srv.Generation() {
		t.Fatalf("plan stamped epoch %d gen %d, server at %d/%d",
			rep.Epoch, rep.Gen, srv.Epoch(), srv.Generation())
	}
	if len(rep.EvictedKeys) == 0 {
		t.Fatal("failing the cheap transit predicted no evictions")
	}
	if want := []uint64{h14, h24}; !reflect.DeepEqual(rep.Teardowns, want) {
		t.Fatalf("predicted teardowns %v, want %v", rep.Teardowns, want)
	}

	before := keySet(srv.DumpEntries(nil))
	handlesBefore := dp.Handles()

	res, err := be.Commit(id)
	if err != nil {
		t.Fatal(err)
	}

	// Counts: batch totals and per-step increments.
	if res.Evicted != len(rep.EvictedKeys) {
		t.Errorf("committed evicted %d, predicted %d", res.Evicted, len(rep.EvictedKeys))
	}
	if res.Retained != rep.Retained {
		t.Errorf("committed retained %d, predicted %d", res.Retained, rep.Retained)
	}
	if len(res.Steps) != len(rep.Steps) {
		t.Fatalf("%d commit steps, %d plan steps", len(res.Steps), len(rep.Steps))
	}
	for i := range res.Steps {
		if res.Steps[i].Evicted != rep.Steps[i].Evicted || res.Steps[i].Retained != rep.Steps[i].Retained {
			t.Errorf("step %d: committed evicted/retained %d/%d, predicted %d/%d", i+1,
				res.Steps[i].Evicted, res.Steps[i].Retained,
				rep.Steps[i].Evicted, rep.Steps[i].Retained)
		}
	}

	// Sets: exactly the predicted keys left the cache.
	after := keySet(srv.DumpEntries(nil))
	for _, k := range rep.EvictedKeys {
		if !before[k] {
			t.Errorf("predicted victim %+v was not cached before commit", k)
		}
		if after[k] {
			t.Errorf("predicted victim %+v survived the commit", k)
		}
	}
	if got, want := len(after), len(before)-len(rep.EvictedKeys); got != want {
		t.Errorf("%d entries after commit, want %d (unpredicted eviction)", got, want)
	}

	// Sets: exactly the predicted flows were torn down.
	gone := make([]uint64, 0)
	still := make(map[uint64]bool)
	for _, h := range dp.Handles() {
		still[h] = true
	}
	for _, h := range handlesBefore {
		if !still[h] {
			gone = append(gone, h)
		}
	}
	if !reflect.DeepEqual(gone, rep.Teardowns) {
		t.Errorf("torn down %v, predicted %v", gone, rep.Teardowns)
	}

	// Routability: every assessed pair resolves exactly as predicted.
	unroutable := make(map[routeserver.Key]bool)
	for _, req := range rep.UnroutableAfter {
		unroutable[routeserver.KeyOf(req)] = true
	}
	for _, req := range rep.Population {
		got := be.Query(req).Found
		if want := !unroutable[routeserver.KeyOf(req)]; got != want {
			t.Errorf("post-commit %v: found=%v, predicted %v", req, got, want)
		}
	}
}

// TestPlanSequentialUnionSemantics pins that overlapping steps do not
// double-count: a victim of step 1 is gone by the time step 2 runs, and
// the per-step reports mirror that sequential reality.
func TestPlanSequentialUnionSemantics(t *testing.T) {
	_, _, srv, _, be := world(t)
	warm(t, srv)

	// 1-4 (via 1-2, 2-4) is a victim of both steps; 2-4 only of the first;
	// 1-2 only of the second.
	id, rep, err := be.Plan([]plan.Step{
		{Kind: plan.StepFail, A: 2, B: 4},
		{Kind: plan.StepFail, A: 1, B: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps[0].Evicted <= 0 || rep.Steps[1].Evicted <= 0 {
		t.Fatalf("per-step evictions %d, %d: want both positive",
			rep.Steps[0].Evicted, rep.Steps[1].Evicted)
	}
	if sum := rep.Steps[0].Evicted + rep.Steps[1].Evicted; sum != len(rep.EvictedKeys) {
		t.Fatalf("per-step evictions sum to %d, union has %d keys", sum, len(rep.EvictedKeys))
	}
	res, err := be.Commit(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Steps {
		if res.Steps[i].Evicted != rep.Steps[i].Evicted {
			t.Errorf("step %d: committed %d evictions, predicted %d",
				i+1, res.Steps[i].Evicted, rep.Steps[i].Evicted)
		}
	}
}

// TestPlanReadOnly asserts planning mutates nothing a query, the epoch, or
// the generation can observe — including while concurrent queries are in
// flight (the -race run of this package is the teeth of that claim).
func TestPlanReadOnly(t *testing.T) {
	g, db, srv, dp, _ := world(t)
	warm(t, srv)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				srv.Query(policy.Request{Src: 1, Dst: 4, QOS: policy.QOS(n % 2), UCI: policy.UCI(i % 2)})
			}
		}(i)
	}
	for i := 0; i < 20; i++ {
		if _, err := plan.Compute(srv, dp, g, db, nil, []plan.Step{
			{Kind: plan.StepFail, A: 2, B: 4},
			{Kind: plan.StepPolicy, A: 3, Cost: 7},
		}, plan.Config{Workload: srv.RecentQueries()}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: a plan must leave every observable identical, entry dump
	// included.
	epoch, gen := srv.Epoch(), srv.Generation()
	dump := srv.DumpEntries(nil)
	qlog := srv.RecentQueries()
	if _, err := plan.Compute(srv, dp, g, db, nil, []plan.Step{{Kind: plan.StepFail, A: 2, B: 4}},
		plan.Config{Workload: qlog}); err != nil {
		t.Fatal(err)
	}
	if srv.Epoch() != epoch || srv.Generation() != gen {
		t.Errorf("plan moved epoch/gen: %d/%d -> %d/%d", epoch, gen, srv.Epoch(), srv.Generation())
	}
	if got := srv.DumpEntries(nil); !reflect.DeepEqual(got, dump) {
		t.Errorf("plan changed the cache dump: %d entries -> %d", len(dump), len(got))
	}
	if got := srv.RecentQueries(); !reflect.DeepEqual(got, qlog) {
		t.Error("plan appended to the query log")
	}
}

// TestPlanSerialParallelIdentical pins determinism: the same plan computed
// with one shadow worker and with eight is identical field for field.
func TestPlanSerialParallelIdentical(t *testing.T) {
	g, db, srv, dp, _ := world(t)
	reqs := warm(t, srv)
	steps := []plan.Step{
		{Kind: plan.StepFail, A: 2, B: 4},
		{Kind: plan.StepPolicy, A: 2, Cost: 50},
	}
	serial, err := plan.Compute(srv, dp, g, db, nil, steps, plan.Config{Workers: 1, Workload: reqs})
	if err != nil {
		t.Fatal(err)
	}
	parallelRep, err := plan.Compute(srv, dp, g, db, nil, steps, plan.Config{Workers: 8, Workload: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallelRep) {
		t.Fatalf("serial and parallel reports diverge:\n%+v\nvs\n%+v", serial, parallelRep)
	}
}

// TestPlanStaleness pins the commit guard: any mutation between plan and
// commit — including committing a sibling plan — refuses the commit.
func TestPlanStaleness(t *testing.T) {
	_, _, srv, _, be := world(t)
	warm(t, srv)

	id, _, err := be.Plan([]plan.Step{{Kind: plan.StepFail, A: 2, B: 4}})
	if err != nil {
		t.Fatal(err)
	}
	be.SetPolicy(3, 9) // conflicting mutation moves the epoch
	if _, err := be.Commit(id); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("commit after mutation: err = %v, want staleness refusal", err)
	}
	// A refused plan leaves the store.
	if _, err := be.Commit(id); err == nil || !strings.Contains(err.Error(), "unknown plan") {
		t.Fatalf("re-commit of refused plan: err = %v", err)
	}

	// Two plans at one epoch: committing the first stales the second.
	idA, _, err := be.Plan([]plan.Step{{Kind: plan.StepFail, A: 2, B: 4}})
	if err != nil {
		t.Fatal(err)
	}
	idB, _, err := be.Plan([]plan.Step{{Kind: plan.StepPolicy, A: 2, Cost: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Commit(idA); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Commit(idB); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("sibling commit: err = %v, want staleness refusal", err)
	}

	if _, err := be.Commit(999); err == nil || !strings.Contains(err.Error(), "unknown plan") {
		t.Fatalf("unknown id: err = %v", err)
	}
}

// TestPlanErrors covers the rejected batches: empty, a fail of a link that
// does not exist, a restore of a link never failed, an unknown kind.
func TestPlanErrors(t *testing.T) {
	g, db, srv, dp, _ := world(t)
	cases := []struct {
		steps []plan.Step
		want  string
	}{
		{nil, "empty plan"},
		{[]plan.Step{{Kind: plan.StepFail, A: 9, B: 9}}, "no link"},
		{[]plan.Step{{Kind: plan.StepRestore, A: 2, B: 4}}, "was not failed"},
		{[]plan.Step{{Kind: 99, A: 1}}, "unknown kind"},
	}
	for _, tc := range cases {
		_, err := plan.Compute(srv, dp, g, db, nil, tc.steps, plan.Config{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("steps %+v: err = %v, want %q", tc.steps, err, tc.want)
		}
	}
	// A failed-then-restored link inside one batch is coherent, and the
	// plan leaves the backend's failed-link memory alone.
	rep, err := plan.Compute(srv, dp, g, db, nil, []plan.Step{
		{Kind: plan.StepFail, A: 2, B: 4},
		{Kind: plan.StepRestore, A: 2, B: 4},
	}, plan.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 2 {
		t.Fatalf("%d step reports, want 2", len(rep.Steps))
	}
	if _, ok := g.LinkBetween(2, 4); !ok {
		t.Fatal("planning a fail removed the live link")
	}
}

// TestPlanBudgetTruncation pins the population bound: a budget smaller
// than the affected population truncates deterministically and flags it.
func TestPlanBudgetTruncation(t *testing.T) {
	g, db, srv, dp, _ := world(t)
	reqs := warm(t, srv)
	full, err := plan.Compute(srv, dp, g, db, nil,
		[]plan.Step{{Kind: plan.StepFail, A: 2, B: 4}}, plan.Config{Workload: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated || len(full.Population) < 3 {
		t.Fatalf("full run: truncated=%v population=%d", full.Truncated, len(full.Population))
	}
	cut, err := plan.Compute(srv, dp, g, db, nil,
		[]plan.Step{{Kind: plan.StepFail, A: 2, B: 4}}, plan.Config{Workload: reqs, Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cut.Truncated || len(cut.Population) != 2 {
		t.Fatalf("budget 2: truncated=%v population=%d", cut.Truncated, len(cut.Population))
	}
	if !reflect.DeepEqual(cut.Population, full.Population[:2]) {
		t.Error("truncation is not a prefix of the sorted population")
	}
	unbounded, err := plan.Compute(srv, dp, g, db, nil,
		[]plan.Step{{Kind: plan.StepFail, A: 2, B: 4}}, plan.Config{Workload: reqs, Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.Truncated || len(unbounded.Population) != len(full.Population) {
		t.Fatalf("unbounded run: truncated=%v population=%d, want %d",
			unbounded.Truncated, len(unbounded.Population), len(full.Population))
	}
}

// TestPlanBill pins the re-synthesis bill: one synthesis per evicted key,
// priced from the live latency histogram.
func TestPlanBill(t *testing.T) {
	g, db, srv, dp, _ := world(t)
	warm(t, srv)
	rep, err := plan.Compute(srv, dp, g, db, nil,
		[]plan.Step{{Kind: plan.StepFail, A: 2, B: 4}}, plan.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bill.Count != len(rep.EvictedKeys) {
		t.Errorf("bill count %d, want %d evicted keys", rep.Bill.Count, len(rep.EvictedKeys))
	}
	if rep.Bill.PerSynth <= 0 {
		t.Errorf("mean synthesis latency %v after warm misses", rep.Bill.PerSynth)
	}
	if rep.Bill.Projected != time.Duration(rep.Bill.Count)*rep.Bill.PerSynth {
		t.Errorf("projected %v != count %d × mean %v", rep.Bill.Projected, rep.Bill.Count, rep.Bill.PerSynth)
	}
}

// TestPlanUnroutableDetection pins the headline prediction: pairs that
// lose all routes are detected exactly, and agree with the Impact fold.
func TestPlanUnroutableDetection(t *testing.T) {
	g, db, srv, dp, _ := world(t)
	reqs := warm(t, srv)
	// Failing both of dst's links strands every pair ending at 4.
	rep, err := plan.Compute(srv, dp, g, db, nil, []plan.Step{
		{Kind: plan.StepFail, A: 2, B: 4},
		{Kind: plan.StepFail, A: 3, B: 4},
	}, plan.Config{Workload: reqs})
	if err != nil {
		t.Fatal(err)
	}
	wantLost := 0
	for _, req := range rep.Population {
		if req.Dst == 4 || req.Src == 4 {
			wantLost++
		}
	}
	if len(rep.Unroutable) != wantLost || len(rep.UnroutableAfter) != wantLost {
		t.Fatalf("unroutable %d / after %d, want %d (population %v)",
			len(rep.Unroutable), len(rep.UnroutableAfter), wantLost, rep.Population)
	}
	if len(rep.Impact.Lost) != wantLost {
		t.Errorf("impact lost %d, want %d", len(rep.Impact.Lost), wantLost)
	}
}

// TestStepLabel covers the CLI spellings.
func TestStepLabel(t *testing.T) {
	for _, tc := range []struct {
		st   plan.Step
		want string
	}{
		{plan.Step{Kind: plan.StepFail, A: 2, B: 4}, "fail AD2-AD4"},
		{plan.Step{Kind: plan.StepRestore, A: 2, B: 4}, "restore AD2-AD4"},
		{plan.Step{Kind: plan.StepPolicy, A: 7, Cost: 9}, "policy AD7 cost 9"},
		{plan.Step{Kind: 42}, "step(42)"},
	} {
		if got := tc.st.Label(); got != tc.want {
			t.Errorf("Label() = %q, want %q", got, tc.want)
		}
	}
}
