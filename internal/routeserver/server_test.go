package routeserver

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/synthesis"
	"repro/internal/topology"
	"repro/internal/trafficgen"
)

// testbed builds a moderate internet, a restricted policy regime, and a
// Zipf-skewed workload with class spread.
func testbed(seed int64, requests int) (*ad.Graph, *policy.DB, []policy.Request) {
	topo := topology.Generate(topology.Config{
		Seed: seed, Backbones: 2, RegionalsPerBackbone: 3,
		CampusesPerParent: 3, LateralProb: 0.25, BypassProb: 0.1,
	})
	g := topo.Graph
	db := policy.Generate(g, policy.GenConfig{
		Seed: seed + 1, SourceRestrictionProb: 0.4, SourceFraction: 0.5,
	})
	workload := trafficgen.Generate(g, trafficgen.Config{
		Seed: seed + 2, Requests: requests, StubsOnly: true,
		Model: "zipf", ZipfS: 1.4, QOSClasses: 2, UCIClasses: 2,
	})
	return g, db, workload
}

func uniqueKeys(reqs []policy.Request) int {
	seen := map[Key]bool{}
	for _, r := range reqs {
		seen[KeyOf(r)] = true
	}
	return len(seen)
}

func TestServerServesOracleResults(t *testing.T) {
	g, db, workload := testbed(11, 200)
	srv := New(synthesis.NewOnDemand(g, db), Config{})
	results := ServePhase(srv, workload, 4)
	for i, req := range workload {
		want := synthesis.FindRoute(g, db, req)
		if results[i].Found != want.Found {
			t.Fatalf("req %v: Found = %v, oracle %v", req, results[i].Found, want.Found)
		}
		if want.Found && !results[i].Path.Equal(want.Path) {
			t.Fatalf("req %v: path %v, oracle %v", req, results[i].Path, want.Path)
		}
	}
	snap := srv.Snapshot()
	if snap.Queries != uint64(len(workload)) {
		t.Fatalf("Queries = %d, want %d", snap.Queries, len(workload))
	}
	if snap.Hits+snap.Misses+snap.Coalesced != snap.Queries {
		t.Fatalf("counter accounting broken: %+v", snap)
	}
	if snap.Latency.Count != snap.Queries {
		t.Fatalf("latency observations %d != queries %d", snap.Latency.Count, snap.Queries)
	}
}

// TestCoalescingReducesComputations is the E20 acceptance check for
// single-CPU machines: on a Zipf workload the cached/coalesced server must
// run >= 2x fewer synthesis computations than naive per-request on-demand
// synthesis (which runs one per request), at identical results.
func TestCoalescingReducesComputations(t *testing.T) {
	g, db, workload := testbed(42, 600)
	srv := New(synthesis.NewOnDemand(g, db), Config{})
	results := ServePhase(srv, workload, 8)

	for i, req := range workload {
		want := synthesis.FindRoute(g, db, req)
		if results[i].Found != want.Found ||
			(want.Found && !results[i].Path.Equal(want.Path)) {
			t.Fatalf("req %v: server diverged from oracle", req)
		}
	}

	snap := srv.Snapshot()
	naive := uint64(len(workload)) // on-demand runs one synthesis per request
	if snap.Misses*2 > naive {
		t.Fatalf("synthesis computations %d, naive %d: reduction < 2x (workload skew %.2f)",
			snap.Misses, naive, trafficgen.Skew(workload))
	}
	// With negative caching and no eviction pressure, computations are
	// exactly the unique keys (each computed once, by cache or coalescing).
	if uk := uint64(uniqueKeys(workload)); snap.Misses != uk {
		t.Fatalf("computations = %d, unique keys = %d: some key computed twice", snap.Misses, uk)
	}
}

func TestServerCacheHitPath(t *testing.T) {
	g, db, workload := testbed(7, 50)
	srv := New(synthesis.NewOnDemand(g, db), Config{})
	req := workload[0]
	r1 := srv.Query(req)
	r2 := srv.Query(req)
	if !r1.Path.Equal(r2.Path) || r1.Found != r2.Found {
		t.Fatal("repeated query returned different results")
	}
	snap := srv.Snapshot()
	if snap.Misses != 1 || snap.Hits != 1 {
		t.Fatalf("want 1 miss + 1 hit, got %+v", snap)
	}
	if st := srv.StrategyStats(); st.Misses != 1 {
		t.Fatalf("strategy ran %d computations, want 1", st.Misses)
	}
}

func TestServerNegativeCaching(t *testing.T) {
	g, db, _ := testbed(13, 10)
	// A request from an AD that does not exist can never be routed.
	req := policy.Request{Src: ad.ID(1 << 30), Dst: g.IDs()[0], Hour: 12}
	srv := New(synthesis.NewOnDemand(g, db), Config{})
	for i := 0; i < 5; i++ {
		if res := srv.Query(req); res.Found {
			t.Fatal("unroutable request found a route")
		}
	}
	snap := srv.Snapshot()
	if snap.Misses != 1 {
		t.Fatalf("failure recomputed: %d computations, want 1 (negative caching)", snap.Misses)
	}
	if snap.Failures != 5 {
		t.Fatalf("Failures = %d, want 5", snap.Failures)
	}
}

func TestServerInvalidationReflectsTopologyChange(t *testing.T) {
	// Diamond: 1-2-4 and 1-3-4; fail the in-use branch and re-query.
	g := ad.NewGraph()
	n1 := g.AddAD("s", ad.Stub, ad.Campus)
	n2 := g.AddAD("t1", ad.Transit, ad.Regional)
	n3 := g.AddAD("t2", ad.Transit, ad.Regional)
	n4 := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: n1, B: n2, Cost: 1}, {A: n2, B: n4, Cost: 1},
		{A: n1, B: n3, Cost: 2}, {A: n3, B: n4, Cost: 2},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.OpenDB(g)
	req := policy.Request{Src: n1, Dst: n4, Hour: 12}

	srv := New(synthesis.NewOnDemand(g, db), Config{})
	r1 := srv.Query(req)
	if !r1.Found || !r1.Path.Contains(n2) {
		t.Fatalf("initial route should take the cheap branch via %v: %v", n2, r1.Path)
	}
	srv.Mutate(func() { g.RemoveLink(n2, n4) })
	r2 := srv.Query(req)
	if !r2.Found || !r2.Path.Contains(n3) {
		t.Fatalf("post-failure route should take %v: %v", n3, r2.Path)
	}
	snap := srv.Snapshot()
	if snap.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", snap.Invalidations)
	}
	if srv.Generation() != 1 {
		t.Fatalf("Generation = %d, want 1", srv.Generation())
	}
	if snap.Misses != 2 {
		t.Fatalf("stale entry served or recompute missing: %+v", snap)
	}
}

// TestServerDeterministicAtAnyParallelism is the E20 determinism criterion:
// identical query results regardless of client parallelism.
func TestServerDeterministicAtAnyParallelism(t *testing.T) {
	g, db, workload := testbed(23, 300)
	strategies := map[string]func() synthesis.Strategy{
		"on-demand": func() synthesis.Strategy { return synthesis.NewOnDemand(g, db) },
		"hybrid":    func() synthesis.Strategy { return synthesis.NewHybrid(g, db, workload[:20]) },
		"pruned": func() synthesis.Strategy {
			return synthesis.NewPrunedConfig(g, db, g.IDs(), synthesis.PrunedConfig{
				HopRadius: 2, QOSClasses: 2, UCIClasses: 2,
			})
		},
	}
	for name, mk := range strategies {
		t.Run(name, func(t *testing.T) {
			var ref []Result
			for _, clients := range []int{1, 2, 4, 8} {
				srv := New(mk(), Config{})
				got := ServePhase(srv, workload, clients)
				if ref == nil {
					ref = got
					continue
				}
				for i := range got {
					if got[i].Found != ref[i].Found || !got[i].Path.Equal(ref[i].Path) {
						t.Fatalf("clients=%d: request %d diverged: %v vs %v",
							clients, i, got[i], ref[i])
					}
				}
			}
		})
	}
}

// TestServerConcurrentChurn hammers the server with concurrent clients
// while invalidations and topology mutations land mid-flight. Run under
// -race (make check) this is the serving layer's race-cleanness assertion.
func TestServerConcurrentChurn(t *testing.T) {
	g, db, workload := testbed(31, 400)
	links := g.Links()
	srv := New(synthesis.NewHybrid(g, db, workload[:10]), Config{Capacity: 256})

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := c; i < len(workload); i += 4 {
				srv.Query(workload[i])
			}
		}()
	}
	// Churn goroutine: remove and re-add a lateral link, plus policy adds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		l := links[len(links)-1]
		for i := 0; i < 6; i++ {
			if i%2 == 0 {
				srv.Mutate(func() { g.RemoveLink(l.A, l.B) })
			} else {
				srv.Mutate(func() {
					if err := g.AddLink(l); err != nil {
						panic(err)
					}
				})
			}
		}
	}()
	wg.Wait()

	snap := srv.Snapshot()
	if snap.Queries != uint64(len(workload)) {
		t.Fatalf("Queries = %d, want %d", snap.Queries, len(workload))
	}
	if snap.Hits+snap.Misses+snap.Coalesced != snap.Queries {
		t.Fatalf("counter accounting broken under churn: %+v", snap)
	}
	if snap.Invalidations != 6 {
		t.Fatalf("Invalidations = %d, want 6", snap.Invalidations)
	}
	// Every query must still be answered consistently with *some*
	// generation's topology; spot-check final state answers.
	req := workload[0]
	want := synthesis.FindRoute(g, db, req)
	got := srv.Query(req)
	if got.Found != want.Found {
		t.Fatalf("final-state query inconsistent: %v vs oracle %v", got, want)
	}
}

func TestServerCapacityEviction(t *testing.T) {
	g, db, workload := testbed(17, 300)
	srv := New(synthesis.NewOnDemand(g, db), Config{Shards: 2, Capacity: 8})
	ServePhase(srv, workload, 4)
	snap := srv.Snapshot()
	if snap.Evictions == 0 {
		t.Fatalf("tiny cache reported no evictions: %+v", snap)
	}
	if n := srv.CacheLen(); n > 8 {
		t.Fatalf("cache grew past capacity: %d > 8", n)
	}
}

func TestLoadGenRunWithChurn(t *testing.T) {
	g, db, workload := testbed(5, 500)
	links := g.Links()
	lateral := links[len(links)-1]
	srv := New(synthesis.NewOnDemand(g, db), Config{})
	rep := Run(srv, workload, LoadConfig{
		Clients: 4,
		Events: []Event{
			{After: 0.3, Label: "fail", Apply: func() { g.RemoveLink(lateral.A, lateral.B) }},
			{After: 0.6, Label: "restore", Apply: func() {
				if err := g.AddLink(lateral); err != nil {
					panic(err)
				}
			}},
		},
	})
	if rep.Requests != len(workload) || rep.Served+rep.NoRoute != rep.Requests {
		t.Fatalf("report accounting broken: %+v", rep)
	}
	if rep.Metrics.Invalidations != 2 {
		t.Fatalf("Invalidations = %d, want 2", rep.Metrics.Invalidations)
	}
	if rep.Elapsed <= 0 || rep.QPS <= 0 {
		t.Fatalf("no timing recorded: %+v", rep)
	}
	if rep.Metrics.Latency.P99 < rep.Metrics.Latency.P50 {
		t.Fatalf("latency digest out of order: %+v", rep.Metrics.Latency)
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{Shards: 5}.normalize()
	if c.Shards != 8 {
		t.Fatalf("Shards = %d, want 8 (power of two)", c.Shards)
	}
	if c.Capacity != 1<<16 || c.Workers <= 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	srv := New(synthesis.NewOnDemand(ad.NewGraph(), policy.NewDB()), Config{Capacity: -1})
	if srv.shards[0].lru.Cap() != 0 {
		t.Fatal("negative capacity should mean unbounded shards")
	}
}

func ExampleServer() {
	topo := topology.Figure1()
	g := topo.Graph
	db := policy.OpenDB(g)
	srv := New(synthesis.NewOnDemand(g, db), Config{})
	ids := g.IDs()
	res := srv.Query(policy.Request{Src: ids[len(ids)-1], Dst: ids[0], Hour: 12})
	fmt.Println(res.Found)
	// Output: true
}
