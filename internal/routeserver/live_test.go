package routeserver

import (
	"reflect"
	"testing"

	"repro/internal/policy"
	"repro/internal/synthesis"
)

// checkLive asserts the per-shard live counters — the O(shards) retained
// count MutateScoped and CollectAffected report — agree with an O(cache)
// recount of current-generation entries.
func checkLive(t *testing.T, srv *Server, when string) {
	t.Helper()
	gen := srv.gen.Load()
	var live, want int
	for i := range srv.shards {
		sh := &srv.shards[i]
		sh.mu.Lock()
		live += sh.live
		want += sh.retainedCurrent(gen)
		sh.mu.Unlock()
	}
	if live != want {
		t.Fatalf("%s: live counters say %d current-gen entries, recount says %d", when, live, want)
	}
}

// TestLiveCounterInvariant drives every path that moves the counter —
// fills, overwrites, scoped evictions, full bumps, stale-on-sight lazy
// deletion, capacity eviction — and recounts after each.
func TestLiveCounterInvariant(t *testing.T) {
	g, db, srv, src, t1, _, dst, src2, iso := scopedWorld(t)
	_ = db

	reqs := []policy.Request{
		{Src: src, Dst: dst}, {Src: src, Dst: dst, QOS: 1},
		{Src: src2, Dst: dst}, {Src: src, Dst: t1},
		{Src: src, Dst: iso}, // negative entry
	}
	for _, req := range reqs {
		srv.Query(req)
	}
	checkLive(t, srv, "after fills")

	// Re-query: overwrite-free hits must not drift the counter.
	for _, req := range reqs {
		srv.Query(req)
	}
	checkLive(t, srv, "after hits")

	// Scoped eviction.
	srv.MutateScoped(synthesis.LinkDownChange(t1, dst), func() { g.RemoveLink(t1, dst) })
	checkLive(t, srv, "after scoped link-down")
	srv.Query(policy.Request{Src: src, Dst: dst})
	checkLive(t, srv, "after refill")

	// Full bump zeroes the counters; the stale entries still resident must
	// not be counted.
	srv.Invalidate()
	checkLive(t, srv, "after full bump")

	// Stale-on-sight: looking up a stale key deletes it lazily.
	for _, req := range reqs {
		srv.Query(req)
	}
	checkLive(t, srv, "after stale-on-sight refills")

	// Overwrite of a current-generation entry (same key re-inserted via
	// the coalescing path is the common case; InstallEntry is the direct
	// one).
	ents := srv.DumpEntries(nil)
	for _, e := range ents {
		srv.InstallEntry(e.Key, e.Res, e.Fp)
	}
	checkLive(t, srv, "after overwrites")
}

// TestLiveCounterCapacityEviction pins the OnEvict leg: capacity
// evictions of current-generation entries decrement the counter.
func TestLiveCounterCapacityEviction(t *testing.T) {
	g, db, _, src, _, _, dst, _, _ := scopedWorld(t)
	srv := New(synthesis.NewOnDemand(g, db), Config{Capacity: 2, Shards: 1})
	for h := 0; h < 8; h++ {
		srv.Query(policy.Request{Src: src, Dst: dst, Hour: uint8(h)})
	}
	if n := srv.CacheLen(); n != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", n)
	}
	checkLive(t, srv, "after capacity churn")
}

// TestQueryLogRing pins the recorded-workload ring: capacity bounds it,
// recent() returns oldest-first, and a zero capacity disables recording.
func TestQueryLogRing(t *testing.T) {
	g, db, _, src, t1, t2, dst, _, _ := scopedWorld(t)
	srv := New(synthesis.NewOnDemand(g, db), Config{QueryLog: 4})
	if got := srv.RecentQueries(); got != nil {
		t.Fatalf("empty log returned %v", got)
	}
	seq := []policy.Request{
		{Src: src, Dst: dst}, {Src: src, Dst: t1}, {Src: src, Dst: t2},
		{Src: src, Dst: dst, QOS: 1}, {Src: t1, Dst: dst}, {Src: t2, Dst: dst},
	}
	for _, req := range seq {
		srv.Query(req)
	}
	want := seq[len(seq)-4:]
	if got := srv.RecentQueries(); !reflect.DeepEqual(got, want) {
		t.Fatalf("RecentQueries = %v, want last 4 oldest-first %v", got, want)
	}

	unlogged := New(synthesis.NewOnDemand(g, db), Config{})
	unlogged.Query(policy.Request{Src: src, Dst: dst})
	if got := unlogged.RecentQueries(); got != nil {
		t.Fatalf("disabled log returned %v", got)
	}
}

// TestCollectAffectedMatchesEvictScoped pins that the read-only victim
// resolution CollectAffected does for the plan engine names exactly the
// entries a real MutateScoped of the same change evicts.
func TestCollectAffectedMatchesEvictScoped(t *testing.T) {
	g, db, srv, src, t1, t2, dst, src2, iso := scopedWorld(t)
	_, _ = db, t2
	for _, req := range []policy.Request{
		{Src: src, Dst: dst}, {Src: src2, Dst: dst},
		{Src: src, Dst: t1}, {Src: src, Dst: iso},
	} {
		srv.Query(req)
	}

	ch := synthesis.LinkDownChange(t1, dst)
	perChange, live, epoch, gen, err := srv.CollectAffected(func() ([]synthesis.Change, error) {
		return []synthesis.Change{ch}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != srv.Epoch() || gen != srv.Generation() {
		t.Fatalf("snapshot at %d/%d, server at %d/%d", epoch, gen, srv.Epoch(), srv.Generation())
	}
	if live != srv.CacheLen() {
		t.Fatalf("live = %d, cache holds %d", live, srv.CacheLen())
	}

	evicted, retained := srv.MutateScoped(ch, func() { g.RemoveLink(t1, dst) })
	if evicted != len(perChange[0]) {
		t.Errorf("MutateScoped evicted %d, CollectAffected predicted %d", evicted, len(perChange[0]))
	}
	if retained != live-len(perChange[0]) {
		t.Errorf("MutateScoped retained %d, predicted %d", retained, live-len(perChange[0]))
	}
	after := make(map[Key]bool)
	for _, e := range srv.DumpEntries(nil) {
		after[e.Key] = true
	}
	for _, e := range perChange[0] {
		if after[e.Key] {
			t.Errorf("predicted victim %+v survived", e.Key)
		}
	}
}
