package routeserver

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/synthesis"
)

// scopedWorld builds a diamond with a cheap transit (t1), an expensive
// detour (t2), a second source homed only on t2, and an isolated AD for
// negative entries.
//
//	src ─ t1 ─ dst   (cost 2)
//	src ─ t2 ─ dst   (cost 10)
//	src2 ─ t2        (src2 reaches dst only through t2)
//	iso              (unreachable)
func scopedWorld(t *testing.T) (g *ad.Graph, db *policy.DB, srv *Server,
	src, t1, t2, dst, src2, iso ad.ID) {
	t.Helper()
	g = ad.NewGraph()
	src = g.AddAD("src", ad.Stub, ad.Campus)
	t1 = g.AddAD("t1", ad.Transit, ad.Regional)
	t2 = g.AddAD("t2", ad.Transit, ad.Regional)
	dst = g.AddAD("dst", ad.Stub, ad.Campus)
	src2 = g.AddAD("src2", ad.Stub, ad.Campus)
	iso = g.AddAD("iso", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: t1, Cost: 1}, {A: t1, B: dst, Cost: 1},
		{A: src, B: t2, Cost: 5}, {A: t2, B: dst, Cost: 5},
		{A: src2, B: t2, Cost: 1},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db = policy.OpenDB(g)
	srv = New(synthesis.NewOnDemand(g, db), Config{})
	return g, db, srv, src, t1, t2, dst, src2, iso
}

func TestMutateScopedLinkDownEvictsOnlyCrossing(t *testing.T) {
	g, _, srv, src, t1, _, dst, src2, iso := scopedWorld(t)
	rCheap := policy.Request{Src: src, Dst: dst}
	rVia2 := policy.Request{Src: src2, Dst: dst}
	rNeg := policy.Request{Src: src, Dst: iso}

	if res := srv.Query(rCheap); !res.Path.Equal(ad.Path{src, t1, dst}) {
		t.Fatalf("warm route = %+v", res)
	}
	srv.Query(rVia2)
	if res := srv.Query(rNeg); res.Found {
		t.Fatalf("iso AD routable: %+v", res)
	}

	evicted, retained := srv.MutateScoped(
		synthesis.LinkDownChange(t1, dst),
		func() { g.RemoveLink(t1, dst) })
	if evicted != 1 || retained != 2 {
		t.Fatalf("evicted %d retained %d, want 1 and 2", evicted, retained)
	}

	before := srv.Snapshot()
	if res := srv.Query(rCheap); !res.Found || res.Path.Transits(t1) {
		t.Fatalf("post-failure route = %+v", res)
	}
	// The unaffected positive and the negative are served from cache: a
	// link failure cannot create routes, so negatives survive.
	srv.Query(rVia2)
	srv.Query(rNeg)
	after := srv.Snapshot()
	if after.Misses != before.Misses+1 {
		t.Fatalf("misses %d -> %d, want exactly one recompute", before.Misses, after.Misses)
	}
	if after.Invalidations != 0 || after.ScopedMutations != 1 || after.ScopedEvicted != 1 {
		t.Fatalf("counters %+v", after)
	}
}

func TestMutateScopedLinkUpRetainsLegalEvictsNegatives(t *testing.T) {
	g, db, srv, src, t1, t2, dst, _, iso := scopedWorld(t)
	rCheap := policy.Request{Src: src, Dst: dst}
	rNeg := policy.Request{Src: src, Dst: iso}

	srv.MutateScoped(synthesis.LinkDownChange(t1, dst), func() { g.RemoveLink(t1, dst) })
	if res := srv.Query(rCheap); !res.Path.Equal(ad.Path{src, t2, dst}) {
		t.Fatalf("detour = %+v", res)
	}
	srv.Query(rNeg)

	l := ad.Link{A: t1, B: dst, Cost: 1}
	evicted, retained := srv.MutateScoped(
		synthesis.LinkUpChange(t1, dst),
		func() {
			if err := g.AddLink(l); err != nil {
				t.Error(err)
			}
		})
	if evicted != 1 || retained != 1 {
		t.Fatalf("evicted %d retained %d, want the negative out and the detour kept", evicted, retained)
	}

	// The retained detour keeps serving: legal, no longer optimal.
	res := srv.Query(rCheap)
	if !res.Path.Equal(ad.Path{src, t2, dst}) {
		t.Fatalf("retained route = %+v, want the detour", res)
	}
	if !res.Path.Valid(g) || !db.PathLegal(res.Path, rCheap) {
		t.Fatalf("retained route %v is illegal", res.Path)
	}
	// A full invalidation restores optimality.
	srv.Invalidate()
	if res := srv.Query(rCheap); !res.Path.Equal(ad.Path{src, t1, dst}) {
		t.Fatalf("post-invalidate route = %+v, want the cheap path back", res)
	}
}

func TestMutateScopedPolicyEvictsByTerm(t *testing.T) {
	_, db, srv, src, t1, t2, dst, src2, _ := scopedWorld(t)
	rVia1 := policy.Request{Src: src, Dst: dst}
	rVia2 := policy.Request{Src: src2, Dst: dst}
	srv.Query(rVia1)
	srv.Query(rVia2)

	// Dropping t2's terms kills only the route transiting t2.
	ch := synthesis.PolicyChangeOf(db.DiffTerms(t2, nil))
	if ch.Broadens || len(ch.RemovedTerms) == 0 {
		t.Fatalf("dropping terms is not a narrowing: %+v", ch)
	}
	evicted, retained := srv.MutateScoped(ch, func() { db.SetTerms(t2, nil) })
	if evicted != 1 || retained != 1 {
		t.Fatalf("evicted %d retained %d, want only the t2 route out", evicted, retained)
	}

	before := srv.Snapshot()
	if res := srv.Query(rVia1); !res.Path.Equal(ad.Path{src, t1, dst}) {
		t.Fatalf("unaffected route = %+v", res)
	}
	if srv.Snapshot().Misses != before.Misses {
		t.Fatal("unaffected entry was recomputed")
	}
	if res := srv.Query(rVia2); res.Found {
		t.Fatalf("route through term-less transit survived: %+v", res)
	}

	// AD-level fallback (AllTerms) taints every route transiting the AD,
	// and — because it may broaden — every cached negative too.
	srv.Invalidate()
	srv.Query(rVia1)
	evicted, _ = srv.MutateScoped(synthesis.PolicyChangeAt(t1), nil)
	if evicted != 2 {
		t.Fatalf("AllTerms change at t1 evicted %d, want the t1 route and the negative", evicted)
	}
}

// slowStrategy widens the synthesis window so in-flight computations and
// coalesced waiters reliably straddle concurrent scoped mutations.
type slowStrategy struct {
	synthesis.Strategy
	delay time.Duration
}

func (s slowStrategy) Route(req policy.Request) (ad.Path, bool) {
	time.Sleep(s.delay)
	return s.Strategy.Route(req)
}

// TestScopedChurnStress is the race-detector workout for the scoped path:
// concurrent clients query while a churn goroutine interleaves scoped link
// failures/restorations, scoped policy changes, and full bumps. The slow
// strategy keeps misses in flight across mutations, exercising the
// epoch-keyed coalescing and the insert-under-mutation path.
func TestScopedChurnStress(t *testing.T) {
	g, db, workload := testbed(23, 300)
	target := ad.ID(0)
	for _, info := range g.ADs() {
		if info.Class == ad.Transit && len(db.Terms(info.ID)) > 0 {
			target = info.ID
			break
		}
	}
	if target == 0 {
		t.Fatal("no transit with terms")
	}
	originalTerms := append([]policy.Term(nil), db.Terms(target)...)
	links := g.Links()
	lat := links[len(links)-1]

	srv := New(slowStrategy{synthesis.NewOnDemand(g, db), 20 * time.Microsecond}, Config{})

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := c; i < len(workload); i += 4 {
					srv.Query(workload[i])
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			srv.MutateScoped(synthesis.LinkDownChange(lat.A, lat.B),
				func() { g.RemoveLink(lat.A, lat.B) })
			srv.MutateScoped(synthesis.LinkUpChange(lat.A, lat.B),
				func() {
					if err := g.AddLink(lat); err != nil {
						panic(err)
					}
				})
			ch := synthesis.PolicyChangeOf(db.DiffTerms(target, nil))
			srv.MutateScoped(ch, func() { db.SetTerms(target, nil) })
			srv.MutateScoped(
				synthesis.PolicyChangeOf(db.DiffTerms(target, originalTerms)),
				func() { db.SetTerms(target, originalTerms) })
			srv.Mutate(nil) // interleave a full bump
		}
	}()
	wg.Wait()

	snap := srv.Snapshot()
	if snap.Queries != uint64(3*len(workload)) {
		t.Fatalf("Queries = %d, want %d", snap.Queries, 3*len(workload))
	}
	if snap.Hits+snap.Misses+snap.Coalesced != snap.Queries {
		t.Fatalf("counter accounting broken under scoped churn: %+v", snap)
	}
	if snap.ScopedMutations != 16 || snap.Invalidations != 4 {
		t.Fatalf("mutation counters %+v, want 16 scoped and 4 full", snap)
	}

	// The world is back in its initial state; after a full bump every
	// answer must match the oracle exactly.
	srv.Invalidate()
	for _, req := range workload[:50] {
		want := synthesis.FindRoute(g, db, req)
		got := srv.Query(req)
		if got.Found != want.Found || (want.Found && !got.Path.Equal(want.Path)) {
			t.Fatalf("req %v: %+v vs oracle %+v", req, got, want)
		}
	}
}
