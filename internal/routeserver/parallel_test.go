package routeserver

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/synthesis"
)

// barrierStrategy proves miss overlap directly: every Route call parks at
// a barrier that opens only when want calls are inside Route at the same
// instant. If the serving layer serialized misses (the old global strategy
// lock), the barrier could never fill and every call would time out.
type barrierStrategy struct {
	synthesis.Strategy
	want     int32
	inside   atomic.Int32
	peak     atomic.Int32
	release  chan struct{}
	timedOut atomic.Bool
}

func (s *barrierStrategy) Route(req policy.Request) (ad.Path, bool) {
	n := s.inside.Add(1)
	defer s.inside.Add(-1)
	for {
		p := s.peak.Load()
		if n <= p || s.peak.CompareAndSwap(p, n) {
			break
		}
	}
	if n == s.want {
		close(s.release)
	}
	select {
	case <-s.release:
	case <-time.After(10 * time.Second):
		s.timedOut.Store(true)
		return nil, false
	}
	return s.Strategy.Route(req)
}

// TestMissOverlapBarrier asserts concurrent-miss overlap directly rather
// than inferring it from timing: N misses for distinct keys must all be
// inside strategy.Route simultaneously before any of them may return.
func TestMissOverlapBarrier(t *testing.T) {
	g, db, _, src, _, _, dst, _, _ := scopedWorld(t)
	const n = 4
	bs := &barrierStrategy{
		Strategy: synthesis.NewOnDemand(g, db),
		want:     n,
		release:  make(chan struct{}),
	}
	srv := New(bs, Config{Workers: n})

	var wg sync.WaitGroup
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Distinct hours make distinct serving keys, so singleflight
			// cannot coalesce these into one computation.
			results[i] = srv.Query(policy.Request{Src: src, Dst: dst, Hour: uint8(i)})
		}()
	}
	wg.Wait()

	if bs.timedOut.Load() {
		t.Fatalf("misses never overlapped: %d of %d reached the barrier", bs.peak.Load(), n)
	}
	if got := bs.peak.Load(); got != n {
		t.Fatalf("peak concurrent Route calls = %d, want %d", got, n)
	}
	for i, res := range results {
		if !res.Found {
			t.Fatalf("query %d found no route", i)
		}
	}
	if snap := srv.Snapshot(); snap.Misses != n {
		t.Fatalf("Misses = %d, want %d distinct-key leaders", snap.Misses, n)
	}
}

// missBatchElapsed serves `keys` distinct-key misses against a slow
// strategy with GOMAXPROCS set to procs (which also sizes the default
// worker pool) and returns the wall time for the batch.
func missBatchElapsed(t *testing.T, procs, keys int, delay time.Duration) time.Duration {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	g, db, _, src, _, _, dst, _, _ := scopedWorld(t)
	srv := New(slowStrategy{synthesis.NewOnDemand(g, db), delay}, Config{})

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < keys; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Query(policy.Request{Src: src, Dst: dst, Hour: uint8(i)})
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// TestMissThroughputScalesWithGOMAXPROCS pins the tentpole claim: with a
// deliberately slow strategy, miss-path throughput at GOMAXPROCS=4 is at
// least 2x the GOMAXPROCS=1 throughput. The slow search sleeps rather
// than burns CPU, so the speedup measures lock structure, not core count
// — under the old global strategy lock the sleeps serialized and the
// ratio was ~1x regardless of GOMAXPROCS; under the read-plane design the
// worker pool (sized by GOMAXPROCS) is the only width limit.
func TestMissThroughputScalesWithGOMAXPROCS(t *testing.T) {
	const keys = 16
	const delay = 5 * time.Millisecond
	serial := missBatchElapsed(t, 1, keys, delay)
	parallel := missBatchElapsed(t, 4, keys, delay)
	// keys/elapsed is the miss QPS; the ratio inverts to elapsed times.
	if serial < 2*parallel {
		t.Fatalf("miss throughput at GOMAXPROCS=4 only %.2fx of GOMAXPROCS=1 (serial %v, parallel %v), want >= 2x",
			float64(serial)/float64(parallel), serial, parallel)
	}
}

// TestParallelMissesStraddleMutateScoped is the race workout for the
// reader/writer redesign: slow concurrent misses overlap full and scoped
// mutations, so every interleaving of search, insert, eviction scan, and
// table rebuild is on the table. The -race runs in `make check` are the
// teeth; the oracle sweep at the end catches stale answers that landed
// behind a mutation.
func TestParallelMissesStraddleMutateScoped(t *testing.T) {
	g, db, workload := testbed(31, 200)
	links := g.Links()
	lat := links[len(links)-1]
	srv := New(slowStrategy{synthesis.NewOnDemand(g, db), 50 * time.Microsecond},
		Config{Workers: 8})

	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				for i := c; i < len(workload); i += 6 {
					srv.Query(workload[i])
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			srv.MutateScoped(synthesis.LinkDownChange(lat.A, lat.B),
				func() { g.RemoveLink(lat.A, lat.B) })
			srv.MutateScoped(synthesis.LinkUpChange(lat.A, lat.B),
				func() {
					if err := g.AddLink(lat); err != nil {
						panic(err)
					}
				})
			if i%2 == 1 {
				srv.Mutate(nil)
			}
		}
	}()
	wg.Wait()

	checkLive(t, srv, "after parallel misses straddling mutations")
	snap := srv.Snapshot()
	if snap.Hits+snap.Misses+snap.Coalesced != snap.Queries {
		t.Fatalf("counter accounting broken: %+v", snap)
	}
	srv.Invalidate()
	for _, req := range workload[:40] {
		want := synthesis.FindRoute(g, db, req)
		got := srv.Query(req)
		if got.Found != want.Found || (want.Found && !got.Path.Equal(want.Path)) {
			t.Fatalf("req %v: %+v vs oracle %+v", req, got, want)
		}
	}
}

// TestQueryLogConcurrentRecord hammers the atomic ring from many writers
// with readers in flight, then pins the quiesced semantics: the newest
// cap records win, oldest first — exactly what the old mutex ring
// reported.
func TestQueryLogConcurrentRecord(t *testing.T) {
	const capn = 8
	q := &queryLog{buf: make([]atomic.Pointer[policy.Request], capn)}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, req := range q.recent() {
					if req.Src == 0 {
						t.Error("recent() surfaced a zero request")
						return
					}
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 1000; i++ {
				q.record(policy.Request{Src: 1 + ad.ID(w), Dst: 1 + ad.ID(i%7)})
			}
		}()
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	if got := q.next.Load(); got != 8000 {
		t.Fatalf("ticket counter = %d, want 8000", got)
	}
	if got := len(q.recent()); got > capn {
		t.Fatalf("recent() returned %d entries, cap is %d", got, capn)
	}

	// Quiesced tail: the last capn serial records are exactly what recent
	// reports, oldest first.
	var want []policy.Request
	for i := 0; i < capn; i++ {
		req := policy.Request{Src: 100, Dst: ad.ID(200 + i)}
		q.record(req)
		want = append(want, req)
	}
	got := q.recent()
	if len(got) != capn {
		t.Fatalf("recent() after quiesce: %d entries, want %d", len(got), capn)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recent()[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}
