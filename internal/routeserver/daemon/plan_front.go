package daemon

import (
	"fmt"

	"repro/internal/policytool"
	"repro/internal/routeserver/plan"
	"repro/internal/wire"
)

// HandlePlan executes one wire.Plan — a what-if proposal or a commit —
// against the backend and builds the reply. It is the single execution
// path shared by the daemon protocol and cmd/routed's stdin line mode, so
// both front ends predict and apply identically (the session-parity test
// pins this).
func (b *Backend) HandlePlan(q *wire.Plan) *wire.PlanReply {
	rep := &wire.PlanReply{ID: q.ID}
	if q.Commit {
		res, err := b.Commit(q.PlanID)
		if err != nil {
			rep.Code, rep.Err = wire.CtlErr, err.Error()
			return rep
		}
		rep.PlanID = q.PlanID
		rep.Committed = true
		rep.Evicted = uint64(res.Evicted)
		rep.Retained = uint64(res.Retained)
		rep.Flushed = uint64(res.Flushed)
		return rep
	}
	steps := make([]plan.Step, len(q.Steps))
	for i, st := range q.Steps {
		switch st.Op {
		case wire.CtlFail:
			steps[i] = plan.Step{Kind: plan.StepFail, A: st.A, B: st.B}
		case wire.CtlRestore:
			steps[i] = plan.Step{Kind: plan.StepRestore, A: st.A, B: st.B}
		case wire.CtlPolicy:
			steps[i] = plan.Step{Kind: plan.StepPolicy, A: st.A, Cost: st.Cost}
		default:
			rep.Code, rep.Err = wire.CtlErr, fmt.Sprintf("step %d: unknown plan op %d", i+1, st.Op)
			return rep
		}
	}
	id, r, err := b.Plan(steps)
	if err != nil {
		rep.Code, rep.Err = wire.CtlErr, err.Error()
		return rep
	}
	rep.PlanID = id
	rep.Epoch = r.Epoch
	rep.Evicted = uint64(len(r.EvictedKeys))
	rep.Retained = uint64(r.Retained)
	rep.Teardowns = uint64(len(r.Teardowns))
	rep.Unroutable = uint64(len(r.Unroutable))
	rep.Resynth = uint64(r.Bill.Count)
	rep.MeanSynthNanos = uint64(r.Bill.PerSynth)
	rep.ProjNanos = uint64(r.Bill.Projected)
	rep.Focus = r.Impact.AD
	rep.Gained = uint64(len(r.Impact.Gained))
	rep.Lost = uint64(len(r.Impact.Lost))
	rep.Rerouted = uint64(len(r.Impact.Rerouted))
	rep.TransitBefore = uint64(r.Impact.TransitBefore)
	rep.TransitAfter = uint64(r.Impact.TransitAfter)
	rep.Truncated = r.Truncated
	return rep
}

// RenderPlanReply renders a plan or commit reply as the routed CLI's text
// lines, routing the Gained/Lost/transit digest through policytool's
// shared formatter so routed and policytool print the same summary. The
// wall-clock projection fields are deliberately omitted: the text output
// must be deterministic for a given serving state (the session-parity test
// compares two independently built worlds byte for byte), while the
// nanosecond fields stay available on the wire reply.
func RenderPlanReply(rep *wire.PlanReply) []string {
	if !rep.OK() {
		return []string{"error: " + rep.Err}
	}
	if rep.Committed {
		return []string{fmt.Sprintf("committed plan %d: evicted %d, retained %d, flushed %d",
			rep.PlanID, rep.Evicted, rep.Retained, rep.Flushed)}
	}
	lines := []string{
		fmt.Sprintf("plan %d @ epoch %d", rep.PlanID, rep.Epoch),
		fmt.Sprintf("cache: evict %d, retain %d | teardown %d flows | %d pairs lose all routes | resynth %d",
			rep.Evicted, rep.Retained, rep.Teardowns, rep.Unroutable, rep.Resynth),
	}
	lines = append(lines, policytool.SummaryLines(rep.Focus,
		int(rep.TransitBefore), int(rep.TransitAfter),
		int(rep.Gained), int(rep.Lost), int(rep.Rerouted))...)
	if rep.Truncated {
		lines = append(lines, "note: population truncated by budget")
	}
	lines = append(lines, fmt.Sprintf("commit %d to apply", rep.PlanID))
	return lines
}
