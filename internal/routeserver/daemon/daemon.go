package daemon

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Config parameterizes a Daemon. The zero value is usable: 2048
// connections, 128-message write queues, 2s slow-client grace.
type Config struct {
	// MaxConns bounds concurrent sessions; connections beyond it are
	// refused (closed immediately). Default 2048.
	MaxConns int
	// WriteQueue is the per-session outbound reply queue length; a
	// pipelining client that stops reading fills it. Default 128.
	WriteQueue int
	// WriteTimeout is how long a session blocks on a full write queue (or
	// a stuck socket write) before the client is declared slow and
	// evicted. Default 2s.
	WriteTimeout time.Duration
}

func (c Config) normalize() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 2048
	}
	if c.WriteQueue <= 0 {
		c.WriteQueue = 128
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	return c
}

// Metrics is a snapshot of the daemon's connection counters.
type Metrics struct {
	// Accepted counts sessions ever started; Active of them are live now.
	Accepted, Active uint64
	// Refused counts connections closed at the limit or during drain.
	Refused uint64
	// Evicted counts sessions closed for slow consumption.
	Evicted uint64
	// Requests counts dispatched protocol requests.
	Requests uint64
}

// Daemon serves the route-server protocol over any number of listeners.
// All exported methods are safe for concurrent use.
type Daemon struct {
	be  *Backend
	cfg Config

	mu        sync.Mutex
	sessions  map[*session]struct{}
	listeners map[net.Listener]struct{}
	draining  bool

	wg        sync.WaitGroup // live sessions
	drainOnce sync.Once
	done      chan struct{} // closed when a drain completes

	accepted atomic.Uint64
	refused  atomic.Uint64
	evicted  atomic.Uint64
	requests atomic.Uint64

	redirect atomic.Pointer[redirectFunc]
}

// redirectFunc reports whether requests should be redirected and where:
// an HA follower answers Query/Control/DataOp with NotPrimary naming the
// current primary's client address.
type redirectFunc func() (primaryID uint32, addr string, redirect bool)

// New builds a daemon over the backend and wires the backend's stats
// command to this daemon's connection counters.
func New(be *Backend, cfg Config) *Daemon {
	d := &Daemon{
		be:        be,
		cfg:       cfg.normalize(),
		sessions:  make(map[*session]struct{}),
		listeners: make(map[net.Listener]struct{}),
		done:      make(chan struct{}),
	}
	be.SetConnMetrics(d.Metrics)
	return d
}

// SetRedirect installs (or with nil removes) the HA redirect gate: while
// fn reports true, Query/Control/DataOp requests are answered with
// NotPrimary instead of being dispatched. Stats and Drain are always
// served locally — operators can inspect and drain a follower directly.
func (d *Daemon) SetRedirect(fn func() (primaryID uint32, addr string, redirect bool)) {
	if fn == nil {
		d.redirect.Store(nil)
		return
	}
	rf := redirectFunc(fn)
	d.redirect.Store(&rf)
}

// Serve accepts connections on ln until the listener closes. It returns
// nil when the close was a drain, the accept error otherwise. Call it from
// one goroutine per listener.
func (d *Daemon) Serve(ln net.Listener) error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		ln.Close()
		return nil
	}
	d.listeners[ln] = struct{}{}
	d.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			d.mu.Lock()
			delete(d.listeners, ln)
			draining := d.draining
			d.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		go d.ServeConn(conn)
	}
}

// ServeConn runs one session over an established connection and blocks
// until it ends. Exported so sessions are testable without sockets (e.g.
// over net.Pipe). The connection is refused — closed immediately — at the
// connection limit or during drain.
func (d *Daemon) ServeConn(conn net.Conn) {
	d.mu.Lock()
	if d.draining || len(d.sessions) >= d.cfg.MaxConns {
		d.mu.Unlock()
		d.refused.Add(1)
		conn.Close()
		return
	}
	s := &session{
		d:    d,
		conn: conn,
		out:  make(chan wire.Message, d.cfg.WriteQueue),
	}
	d.sessions[s] = struct{}{}
	d.wg.Add(1)
	d.accepted.Add(1)
	d.mu.Unlock()

	defer func() {
		d.mu.Lock()
		delete(d.sessions, s)
		d.mu.Unlock()
		d.wg.Done()
	}()
	s.run()
}

// Drain shuts the daemon down gracefully: stop accepting, let every
// session finish the request it is processing, flush queued replies, and
// close. Idempotent; blocks until the drain completes. Safe to call from
// inside a session (the Drain protocol message does, via a goroutine).
func (d *Daemon) Drain() {
	d.drainOnce.Do(func() {
		d.mu.Lock()
		d.draining = true
		lns := make([]net.Listener, 0, len(d.listeners))
		for ln := range d.listeners {
			lns = append(lns, ln)
		}
		sess := make([]*session, 0, len(d.sessions))
		for s := range d.sessions {
			sess = append(sess, s)
		}
		d.mu.Unlock()
		for _, ln := range lns {
			ln.Close()
		}
		for _, s := range sess {
			s.beginDrain()
		}
		d.wg.Wait()
		close(d.done)
	})
	<-d.done
}

// Kill shuts the daemon down abruptly: stop accepting and close every
// live session's connection without flushing queued replies — the
// SIGKILL model HA failover is built against (clients observe connection
// errors, not a drain). Blocks until every session goroutine has exited.
// A later Drain still completes (and closes Done) immediately.
func (d *Daemon) Kill() {
	d.mu.Lock()
	d.draining = true
	lns := make([]net.Listener, 0, len(d.listeners))
	for ln := range d.listeners {
		lns = append(lns, ln)
	}
	sess := make([]*session, 0, len(d.sessions))
	for s := range d.sessions {
		sess = append(sess, s)
	}
	d.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, s := range sess {
		s.close()
	}
	d.wg.Wait()
}

// Done is closed once a drain has completed.
func (d *Daemon) Done() <-chan struct{} { return d.done }

// Metrics snapshots the connection counters.
func (d *Daemon) Metrics() Metrics {
	d.mu.Lock()
	active := len(d.sessions)
	d.mu.Unlock()
	return Metrics{
		Accepted: d.accepted.Load(),
		Active:   uint64(active),
		Refused:  d.refused.Load(),
		Evicted:  d.evicted.Load(),
		Requests: d.requests.Load(),
	}
}

// session is one connection's state: a reader loop that decodes and
// dispatches requests, and a writer goroutine that drains the bounded
// reply queue. The reader enqueues replies with backpressure: a full queue
// beyond the write-timeout grace means the client is not consuming and the
// session is evicted.
type session struct {
	d    *Daemon
	conn net.Conn
	out  chan wire.Message

	closeOnce sync.Once
	draining  atomic.Bool
}

func (s *session) run() {
	writerDone := make(chan struct{})
	go s.writer(writerDone)

	for {
		m, err := wire.ReadMessage(s.conn)
		if err != nil {
			// EOF, a malformed frame, eviction, or the drain deadline:
			// either way this session takes no more requests.
			break
		}
		s.d.requests.Add(1)
		reply, drain := s.d.dispatch(m)
		if reply != nil && !s.send(reply) {
			break
		}
		if drain {
			// Ack first (already queued), then drain from outside the
			// session: Drain waits for this very session to finish.
			go s.d.Drain()
		}
	}
	// Flush whatever the writer still holds, then close the connection.
	close(s.out)
	<-writerDone
	s.close()
}

// writer drains the reply queue to the connection through a buffered
// writer, flushing whenever the queue goes momentarily idle so pipelined
// replies batch but interactive clients never wait.
func (s *session) writer(done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriter(s.conn)
	for m := range s.out {
		if s.d.cfg.WriteTimeout > 0 {
			s.conn.SetWriteDeadline(time.Now().Add(s.d.cfg.WriteTimeout))
		}
		if err := wire.WriteMessage(bw, m); err != nil {
			s.evict()
			continue // drain the queue so the reader never blocks on it
		}
		if len(s.out) == 0 {
			if err := bw.Flush(); err != nil {
				s.evict()
			}
		}
	}
	bw.Flush()
}

// send enqueues a reply, giving a slow client the write-timeout grace to
// make room before evicting it. Reports whether the session should go on.
func (s *session) send(m wire.Message) bool {
	select {
	case s.out <- m:
		return true
	default:
	}
	t := time.NewTimer(s.d.cfg.WriteTimeout)
	defer t.Stop()
	select {
	case s.out <- m:
		return true
	case <-t.C:
		s.evict()
		return false
	}
}

// evict closes a slow client's connection; the reader and writer unblock
// with errors and the session winds down.
func (s *session) evict() {
	s.closeOnce.Do(func() {
		s.d.evicted.Add(1)
		s.conn.Close()
	})
}

// beginDrain stops the reader from taking new requests: the read deadline
// pops immediately, while the request being dispatched (if any) still
// completes and its reply is flushed before the connection closes.
func (s *session) beginDrain() {
	s.draining.Store(true)
	s.conn.SetReadDeadline(time.Now())
}

func (s *session) close() {
	s.closeOnce.Do(func() { s.conn.Close() })
}

// dispatch executes one protocol request against the backend and builds
// the reply. The drain result asks the session to trigger a daemon drain
// after the ack is queued.
func (d *Daemon) dispatch(m wire.Message) (reply wire.Message, drain bool) {
	if p := d.redirect.Load(); p != nil {
		switch q := m.(type) {
		case *wire.Query:
			if id, addr, redir := (*p)(); redir {
				return &wire.NotPrimary{ID: q.ID, PrimaryID: id, Addr: addr}, false
			}
		case *wire.Control:
			if id, addr, redir := (*p)(); redir {
				return &wire.NotPrimary{ID: q.ID, PrimaryID: id, Addr: addr}, false
			}
		case *wire.DataOp:
			if id, addr, redir := (*p)(); redir {
				return &wire.NotPrimary{ID: q.ID, PrimaryID: id, Addr: addr}, false
			}
		case *wire.Plan:
			if id, addr, redir := (*p)(); redir {
				return &wire.NotPrimary{ID: q.ID, PrimaryID: id, Addr: addr}, false
			}
		}
	}
	switch q := m.(type) {
	case *wire.Query:
		res := d.be.Query(q.Req)
		return &wire.QueryReply{ID: q.ID, Found: res.Found, Path: res.Path}, false

	case *wire.Control:
		rep := &wire.ControlReply{ID: q.ID}
		switch q.Op {
		case wire.CtlFail:
			evicted, retained, flushed, err := d.be.Fail(q.A, q.B)
			if err != nil {
				rep.Code, rep.Err = wire.CtlErr, err.Error()
				break
			}
			rep.Evicted, rep.Retained, rep.Flushed =
				uint64(evicted), uint64(retained), uint64(flushed)
		case wire.CtlRestore:
			evicted, retained, err := d.be.Restore(q.A, q.B)
			if err != nil {
				rep.Code, rep.Err = wire.CtlErr, err.Error()
				break
			}
			rep.Evicted, rep.Retained = uint64(evicted), uint64(retained)
		case wire.CtlPolicy:
			evicted, retained := d.be.SetPolicy(q.A, q.Cost)
			rep.Evicted, rep.Retained = uint64(evicted), uint64(retained)
		case wire.CtlInvalidate:
			rep.Gen = d.be.Invalidate()
		default:
			rep.Code, rep.Err = wire.CtlErr, "unknown control op"
		}
		return rep, false

	case *wire.DataOp:
		rep := &wire.DataOpReply{ID: q.ID, Op: q.Op}
		switch q.Op {
		case wire.OpInstall:
			handle, path, found := d.be.Install(q.Req)
			if !found {
				rep.Code = wire.DataNoRoute
				break
			}
			rep.Handle, rep.Path = handle, path
		case wire.OpSend:
			switch r := d.be.Send(q.Handle); {
			case r.Delivered:
			case r.MissAt != 0:
				rep.Code, rep.N1 = wire.DataNoState, uint64(r.MissAt)
			default:
				rep.Code = wire.DataUnknownHandle
			}
		case wire.OpRefresh:
			refreshed, failed := d.be.Refresh()
			rep.N1, rep.N2 = uint64(refreshed), uint64(failed)
		case wire.OpTick:
			secs := int64(q.Arg)
			if secs <= 0 {
				secs = 1
			}
			now, expired := d.be.Tick(secs)
			rep.N1, rep.N2 = uint64(now), uint64(expired)
		case wire.OpRepair:
			attempted, repaired := d.be.Repair()
			rep.N1, rep.N2 = uint64(attempted), uint64(repaired)
		case wire.OpState:
			rep.Text = d.be.State().String()
		default:
			rep.Code = wire.DataBadOp
		}
		return rep, false

	case *wire.Plan:
		return d.be.HandlePlan(q), false

	case *wire.StatsQuery:
		st := d.be.Stats()
		return &wire.StatsReply{
			ID: q.ID, Gen: st.Gen, Queries: st.Queries, Hits: st.Hits,
			Coalesced: st.Coalesced, Misses: st.Misses, Failures: st.Failures,
			Cached:   uint64(st.Cached),
			Accepted: st.Accepted, EvictedSlow: st.EvictedSlow, Refused: st.Refused,
		}, false

	case *wire.Drain:
		return &wire.ControlReply{ID: q.ID}, true

	default:
		// A routing-protocol message (or a reply) is not a request this
		// daemon serves.
		return &wire.ControlReply{Code: wire.CtlErr, Err: "unexpected " + m.Type().String()}, false
	}
}
