// Package daemon makes the route-server serving layer (§5.4) a real
// network daemon: per-connection sessions speaking the framed binary
// protocol of internal/wire (route queries, control-plane mutations,
// data-plane operations, stats, graceful drain) over TCP or unix sockets,
// with bounded per-session write queues, slow-client eviction, connection
// limits, and drain semantics (stop accepting, finish in-flight requests,
// flush replies, close).
//
// The command dispatch itself lives in Backend, shared by the binary
// protocol and cmd/routed's stdin line mode, so both front ends execute
// identical operations against the same serving state — the session-parity
// test in cmd/routed pins this.
package daemon

import (
	"fmt"
	"sync"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/routeserver"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/wire"
)

// Backend bundles the serving state one daemon (or line-mode session)
// operates on and dispatches every protocol command against it. Queries
// and data-plane operations are safe for any number of concurrent
// sessions (Server and DataPlane synchronize internally); control-plane
// mutations are serialized by the backend's own lock, which also protects
// the failed-link memory and makes graph reads in control handlers safe
// against concurrent mutation (all graph writes happen under this lock,
// inside MutateScoped's exclusive section).
type Backend struct {
	srv *routeserver.Server
	dp  *routeserver.DataPlane
	g   *ad.Graph
	db  *policy.DB

	mu sync.Mutex
	// removed remembers links taken down by Fail so Restore can re-add
	// them with their original class and cost.
	removed map[[2]ad.ID]ad.Link

	// replicate, when set, is called inside each control mutation's
	// MutateScoped closure — i.e. under the server's strategy lock — so an
	// HA primary appends the op to its sync backlog in exactly the order
	// mutations interleave with cache inserts. Nil outside an HA group.
	replicate func(op uint8, a, b ad.ID, cost uint32)
	// connMetrics, when set, reports the daemon's connection counters for
	// the stats command. Nil on front ends with no daemon (line mode).
	connMetrics func() Metrics
}

// Stats is the serving-counter snapshot the stats command reports.
type Stats struct {
	Gen       uint64
	Queries   uint64
	Hits      uint64
	Coalesced uint64
	Misses    uint64
	Failures  uint64
	Cached    int
	// Connection counters, filled only when the backend fronts a daemon
	// (ConnsKnown true): sessions accepted, evicted for slow consumption,
	// and refused at the connection limit or during drain.
	ConnsKnown  bool
	Accepted    uint64
	EvictedSlow uint64
	Refused     uint64
}

// NewBackend wires a backend over the serving stack.
func NewBackend(srv *routeserver.Server, dp *routeserver.DataPlane, g *ad.Graph, db *policy.DB) *Backend {
	return &Backend{
		srv: srv, dp: dp, g: g, db: db,
		removed: make(map[[2]ad.ID]ad.Link),
	}
}

// Server returns the wrapped route server.
func (b *Backend) Server() *routeserver.Server { return b.srv }

// SetReplicator registers the HA replication hook; fn is invoked inside
// every control mutation's exclusive section. Set it before the backend
// starts serving.
func (b *Backend) SetReplicator(fn func(op uint8, a, b ad.ID, cost uint32)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.replicate = fn
}

// SetConnMetrics registers the daemon connection-counter source the stats
// command reports. daemon.New wires it automatically.
func (b *Backend) SetConnMetrics(fn func() Metrics) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.connMetrics = fn
}

// repl calls the replication hook if one is registered. Callers hold the
// strategy lock (it runs inside MutateScoped closures).
func (b *Backend) repl(op uint8, x, y ad.ID, cost uint32) {
	if b.replicate != nil {
		b.replicate(op, x, y, cost)
	}
}

// Query answers one route request.
func (b *Backend) Query(req policy.Request) routeserver.Result {
	return b.srv.Query(req)
}

// Fail takes the x-y link down: scoped cache invalidation, then a flush of
// installed handle state crossing the link (failure-driven repair).
func (b *Backend) Fail(x, y ad.ID) (evicted, retained, flushed int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	link, found := linkOf(b.g, x, y)
	if !found {
		return 0, 0, 0, fmt.Errorf("no link %v-%v", x, y)
	}
	b.removed[[2]ad.ID{link.A, link.B}] = link
	evicted, retained = b.srv.MutateScoped(
		synthesis.LinkDownChange(x, y), func() {
			b.g.RemoveLink(x, y)
			b.repl(wire.CtlFail, x, y, 0)
		})
	flushed = b.dp.InvalidateLink(x, y)
	return evicted, retained, flushed, nil
}

// Restore brings a previously failed x-y link back up with its original
// class and cost. Retained entries stay legal but may no longer be optimal
// until a full invalidation.
func (b *Backend) Restore(x, y ad.ID) (evicted, retained int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	key := ad.Link{A: x, B: y}.Canonical()
	link, found := b.removed[[2]ad.ID{key.A, key.B}]
	if !found {
		return 0, 0, fmt.Errorf("link %v-%v was not failed here", x, y)
	}
	delete(b.removed, [2]ad.ID{key.A, key.B})
	evicted, retained = b.srv.MutateScoped(
		synthesis.LinkUpChange(x, y), func() {
			_ = b.g.AddLink(link)
			b.repl(wire.CtlRestore, x, y, 0)
		})
	return evicted, retained, nil
}

// SetPolicy replaces a's terms with one open term of the given cost,
// scoping the invalidation to the term keys that actually changed.
func (b *Backend) SetPolicy(a ad.ID, cost uint32) (evicted, retained int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	term := policy.OpenTerm(a, 0)
	term.Cost = cost
	ch := synthesis.PolicyChangeOf(b.db.DiffTerms(a, []policy.Term{term}))
	return b.srv.MutateScoped(ch, func() {
		b.db.SetTerms(a, []policy.Term{term})
		b.repl(wire.CtlPolicy, a, 0, cost)
	})
}

// Invalidate forces the full generation bump, restoring optimality after
// scoped retentions, and returns the new generation.
func (b *Backend) Invalidate() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.srv.Mutate(func() { b.repl(wire.CtlInvalidate, 0, 0, 0) })
	return b.srv.Generation()
}

// Stats snapshots the serving counters.
func (b *Backend) Stats() Stats {
	m := b.srv.Snapshot()
	st := Stats{
		Gen:       b.srv.Generation(),
		Queries:   m.Queries,
		Hits:      m.Hits,
		Coalesced: m.Coalesced,
		Misses:    m.Misses,
		Failures:  m.Failures,
		Cached:    b.srv.CacheLen(),
	}
	b.mu.Lock()
	connMetrics := b.connMetrics
	b.mu.Unlock()
	if connMetrics != nil {
		cm := connMetrics()
		st.ConnsKnown = true
		st.Accepted = cm.Accepted
		st.EvictedSlow = cm.Evicted
		st.Refused = cm.Refused
	}
	return st
}

// Install serves a route for req and installs it as PG handle state.
func (b *Backend) Install(req policy.Request) (handle uint64, path ad.Path, found bool) {
	res := b.srv.Query(req)
	if !res.Found {
		return 0, nil, false
	}
	return b.dp.Install(req, res.Path), res.Path, true
}

// Send forwards one data packet over handle.
func (b *Backend) Send(handle uint64) routeserver.SendResult {
	return b.dp.Send(handle)
}

// Refresh re-asserts every live flow's soft state.
func (b *Backend) Refresh() (refreshed, failed int) {
	return b.dp.RefreshAll()
}

// Tick advances the data plane's logical clock by secs seconds and returns
// the new clock reading plus the expired-entry count.
func (b *Backend) Tick(secs int64) (nowSecs int64, expired int) {
	expired = b.dp.Tick(sim.Time(secs) * sim.Second)
	return int64(b.dp.Now() / sim.Second), expired
}

// Repair re-establishes every flow queued by misses or failures.
func (b *Backend) Repair() (attempted, repaired int) {
	return b.dp.Repair(b.srv)
}

// State reports the data-plane metrics.
func (b *Backend) State() routeserver.DataPlaneMetrics {
	return b.dp.Metrics()
}

// linkOf returns the graph's link between a and b, if present.
func linkOf(g *ad.Graph, a, b ad.ID) (ad.Link, bool) {
	want := ad.Link{A: a, B: b}.Canonical()
	for _, l := range g.Links() {
		if l.A == want.A && l.B == want.B {
			return l, true
		}
	}
	return ad.Link{}, false
}
