// Package daemon makes the route-server serving layer (§5.4) a real
// network daemon: per-connection sessions speaking the framed binary
// protocol of internal/wire (route queries, control-plane mutations,
// data-plane operations, stats, graceful drain) over TCP or unix sockets,
// with bounded per-session write queues, slow-client eviction, connection
// limits, and drain semantics (stop accepting, finish in-flight requests,
// flush replies, close).
//
// The command dispatch itself lives in Backend, shared by the binary
// protocol and cmd/routed's stdin line mode, so both front ends execute
// identical operations against the same serving state — the session-parity
// test in cmd/routed pins this.
package daemon

import (
	"fmt"
	"sync"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/routeserver"
	"repro/internal/routeserver/plan"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/wire"
)

// Backend bundles the serving state one daemon (or line-mode session)
// operates on and dispatches every protocol command against it. Queries
// and data-plane operations are safe for any number of concurrent
// sessions (Server and DataPlane synchronize internally); control-plane
// mutations are serialized by the backend's own lock, which also protects
// the failed-link memory and makes graph reads in control handlers safe
// against concurrent mutation (all graph writes happen under this lock,
// inside MutateScoped's exclusive section).
type Backend struct {
	srv *routeserver.Server
	dp  *routeserver.DataPlane
	g   *ad.Graph
	db  *policy.DB

	mu sync.Mutex
	// removed remembers links taken down by Fail so Restore can re-add
	// them with their original class and cost.
	removed map[[2]ad.ID]ad.Link

	// plans holds pending what-if plans by ID, awaiting Commit or
	// displacement (the store is bounded; the oldest plan is dropped when
	// a new one would exceed maxPendingPlans).
	planSeq uint64
	plans   map[uint64]*pendingPlan

	// replicate, when set, is called inside each control mutation's
	// MutateScoped closure — i.e. under the server's strategy lock — so an
	// HA primary appends the op to its sync backlog in exactly the order
	// mutations interleave with cache inserts. Nil outside an HA group.
	replicate func(op uint8, a, b ad.ID, cost uint32)
	// connMetrics, when set, reports the daemon's connection counters for
	// the stats command. Nil on front ends with no daemon (line mode).
	connMetrics func() Metrics
}

// Stats is the serving-counter snapshot the stats command reports.
type Stats struct {
	Gen       uint64
	Queries   uint64
	Hits      uint64
	Coalesced uint64
	Misses    uint64
	Failures  uint64
	Cached    int
	// Connection counters, filled only when the backend fronts a daemon
	// (ConnsKnown true): sessions accepted, evicted for slow consumption,
	// and refused at the connection limit or during drain.
	ConnsKnown  bool
	Accepted    uint64
	EvictedSlow uint64
	Refused     uint64
}

// NewBackend wires a backend over the serving stack.
func NewBackend(srv *routeserver.Server, dp *routeserver.DataPlane, g *ad.Graph, db *policy.DB) *Backend {
	return &Backend{
		srv: srv, dp: dp, g: g, db: db,
		removed: make(map[[2]ad.ID]ad.Link),
	}
}

// Server returns the wrapped route server.
func (b *Backend) Server() *routeserver.Server { return b.srv }

// SetReplicator registers the HA replication hook; fn is invoked inside
// every control mutation's exclusive section. Set it before the backend
// starts serving.
func (b *Backend) SetReplicator(fn func(op uint8, a, b ad.ID, cost uint32)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.replicate = fn
}

// SetConnMetrics registers the daemon connection-counter source the stats
// command reports. daemon.New wires it automatically.
func (b *Backend) SetConnMetrics(fn func() Metrics) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.connMetrics = fn
}

// repl calls the replication hook if one is registered. Callers hold the
// strategy lock (it runs inside MutateScoped closures).
func (b *Backend) repl(op uint8, x, y ad.ID, cost uint32) {
	if b.replicate != nil {
		b.replicate(op, x, y, cost)
	}
}

// Query answers one route request.
func (b *Backend) Query(req policy.Request) routeserver.Result {
	return b.srv.Query(req)
}

// Fail takes the x-y link down: scoped cache invalidation, then a flush of
// installed handle state crossing the link (failure-driven repair).
func (b *Backend) Fail(x, y ad.ID) (evicted, retained, flushed int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fail(x, y)
}

// fail is Fail's body; caller holds b.mu (Commit loops it over a batch
// under one hold).
func (b *Backend) fail(x, y ad.ID) (evicted, retained, flushed int, err error) {
	link, found := linkOf(b.g, x, y)
	if !found {
		return 0, 0, 0, fmt.Errorf("no link %v-%v", x, y)
	}
	b.removed[[2]ad.ID{link.A, link.B}] = link
	evicted, retained = b.srv.MutateScoped(
		synthesis.LinkDownChange(x, y), func() {
			b.g.RemoveLink(x, y)
			b.repl(wire.CtlFail, x, y, 0)
		})
	flushed = b.dp.InvalidateLink(x, y)
	return evicted, retained, flushed, nil
}

// Restore brings a previously failed x-y link back up with its original
// class and cost. Retained entries stay legal but may no longer be optimal
// until a full invalidation.
func (b *Backend) Restore(x, y ad.ID) (evicted, retained int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.restore(x, y)
}

// restore is Restore's body; caller holds b.mu.
func (b *Backend) restore(x, y ad.ID) (evicted, retained int, err error) {
	key := ad.Link{A: x, B: y}.Canonical()
	link, found := b.removed[[2]ad.ID{key.A, key.B}]
	if !found {
		return 0, 0, fmt.Errorf("link %v-%v was not failed here", x, y)
	}
	delete(b.removed, [2]ad.ID{key.A, key.B})
	evicted, retained = b.srv.MutateScoped(
		synthesis.LinkUpChange(x, y), func() {
			_ = b.g.AddLink(link)
			b.repl(wire.CtlRestore, x, y, 0)
		})
	return evicted, retained, nil
}

// SetPolicy replaces a's terms with one open term of the given cost,
// scoping the invalidation to the term keys that actually changed.
func (b *Backend) SetPolicy(a ad.ID, cost uint32) (evicted, retained int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.setPolicy(a, cost)
}

// setPolicy is SetPolicy's body; caller holds b.mu.
func (b *Backend) setPolicy(a ad.ID, cost uint32) (evicted, retained int) {
	term := policy.OpenTerm(a, 0)
	term.Cost = cost
	ch := synthesis.PolicyChangeOf(b.db.DiffTerms(a, []policy.Term{term}))
	return b.srv.MutateScoped(ch, func() {
		b.db.SetTerms(a, []policy.Term{term})
		b.repl(wire.CtlPolicy, a, 0, cost)
	})
}

// Invalidate forces the full generation bump, restoring optimality after
// scoped retentions, and returns the new generation.
func (b *Backend) Invalidate() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.srv.Mutate(func() { b.repl(wire.CtlInvalidate, 0, 0, 0) })
	return b.srv.Generation()
}

// maxPendingPlans bounds the uncommitted-plan store: plans are cheap to
// recompute, so an operator juggling more than this many proposals just
// re-plans the displaced one.
const maxPendingPlans = 16

// pendingPlan is one computed, not-yet-committed what-if plan.
type pendingPlan struct {
	steps  []plan.Step
	report *plan.Report
}

// Plan computes the blast radius of applying steps, in order, against the
// live serving state — read-only, under the same lock control mutations
// take — and parks the batch under a fresh plan ID for a later Commit. The
// recorded query log (when the server has one) is replayed as the assessed
// workload.
func (b *Backend) Plan(steps []plan.Step) (id uint64, rep *plan.Report, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rep, err = plan.Compute(b.srv, b.dp, b.g, b.db, b.removed, steps,
		plan.Config{Workload: b.srv.RecentQueries()})
	if err != nil {
		return 0, nil, err
	}
	b.planSeq++
	id = b.planSeq
	if b.plans == nil {
		b.plans = make(map[uint64]*pendingPlan)
	}
	if len(b.plans) >= maxPendingPlans {
		oldest := uint64(0)
		for pid := range b.plans {
			if oldest == 0 || pid < oldest {
				oldest = pid
			}
		}
		delete(b.plans, oldest)
	}
	b.plans[id] = &pendingPlan{steps: steps, report: rep}
	return id, rep, nil
}

// CommitStep records what one applied plan step actually did.
type CommitStep struct {
	Evicted, Retained, Flushed int
}

// CommitResult records what applying a whole plan actually did: per-step
// counts plus the batch totals (Retained is the final step's count —
// what is still cached once the batch has landed).
type CommitResult struct {
	Steps             []CommitStep
	Evicted, Retained int
	Flushed           int
}

// Commit applies a previously computed plan. The staleness guard refuses
// if the server's mutation epoch moved since the plan was computed — any
// conflicting control mutation (not a routine cache fill) bumps it, so a
// stale plan's predictions can no longer be trusted and the operator must
// re-plan. A committed (or refused-as-stale) plan leaves the store; on a
// mid-batch step error the earlier steps stay applied, exactly as if
// issued individually, and the error reports which step failed.
func (b *Backend) Commit(id uint64) (CommitResult, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.plans[id]
	if !ok {
		return CommitResult{}, fmt.Errorf("unknown plan %d", id)
	}
	delete(b.plans, id)
	if now := b.srv.Epoch(); now != p.report.Epoch {
		return CommitResult{}, fmt.Errorf("plan %d is stale: mutation epoch moved %d -> %d, re-plan",
			id, p.report.Epoch, now)
	}
	var out CommitResult
	for i, st := range p.steps {
		var cs CommitStep
		var err error
		switch st.Kind {
		case plan.StepFail:
			cs.Evicted, cs.Retained, cs.Flushed, err = b.fail(st.A, st.B)
		case plan.StepRestore:
			cs.Evicted, cs.Retained, err = b.restore(st.A, st.B)
		case plan.StepPolicy:
			cs.Evicted, cs.Retained = b.setPolicy(st.A, st.Cost)
		default:
			err = fmt.Errorf("unknown step kind %d", st.Kind)
		}
		if err != nil {
			return out, fmt.Errorf("plan %d step %d (%s): %v", id, i+1, st.Label(), err)
		}
		out.Steps = append(out.Steps, cs)
		out.Evicted += cs.Evicted
		out.Retained = cs.Retained
		out.Flushed += cs.Flushed
	}
	return out, nil
}

// Stats snapshots the serving counters.
func (b *Backend) Stats() Stats {
	m := b.srv.Snapshot()
	st := Stats{
		Gen:       b.srv.Generation(),
		Queries:   m.Queries,
		Hits:      m.Hits,
		Coalesced: m.Coalesced,
		Misses:    m.Misses,
		Failures:  m.Failures,
		Cached:    b.srv.CacheLen(),
	}
	b.mu.Lock()
	connMetrics := b.connMetrics
	b.mu.Unlock()
	if connMetrics != nil {
		cm := connMetrics()
		st.ConnsKnown = true
		st.Accepted = cm.Accepted
		st.EvictedSlow = cm.Evicted
		st.Refused = cm.Refused
	}
	return st
}

// Install serves a route for req and installs it as PG handle state.
func (b *Backend) Install(req policy.Request) (handle uint64, path ad.Path, found bool) {
	res := b.srv.Query(req)
	if !res.Found {
		return 0, nil, false
	}
	return b.dp.Install(req, res.Path), res.Path, true
}

// Send forwards one data packet over handle.
func (b *Backend) Send(handle uint64) routeserver.SendResult {
	return b.dp.Send(handle)
}

// Refresh re-asserts every live flow's soft state.
func (b *Backend) Refresh() (refreshed, failed int) {
	return b.dp.RefreshAll()
}

// Tick advances the data plane's logical clock by secs seconds and returns
// the new clock reading plus the expired-entry count.
func (b *Backend) Tick(secs int64) (nowSecs int64, expired int) {
	expired = b.dp.Tick(sim.Time(secs) * sim.Second)
	return int64(b.dp.Now() / sim.Second), expired
}

// Repair re-establishes every flow queued by misses or failures.
func (b *Backend) Repair() (attempted, repaired int) {
	return b.dp.Repair(b.srv)
}

// State reports the data-plane metrics.
func (b *Backend) State() routeserver.DataPlaneMetrics {
	return b.dp.Metrics()
}

// linkOf returns the graph's link between a and b, if present.
func linkOf(g *ad.Graph, a, b ad.ID) (ad.Link, bool) {
	want := ad.Link{A: a, B: b}.Canonical()
	for _, l := range g.Links() {
		if l.A == want.A && l.B == want.B {
			return l, true
		}
	}
	return ad.Link{}, false
}
