package daemon

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/routeserver"
	"repro/internal/wire"
)

// backoff is the capped jittered retry delay shared by the failover
// client and the load harness: base doubles per consecutive failure up to
// cap, and each sleep is jittered to half-to-full of the current value so
// a thundering herd of reconnecting clients spreads out. The rng is
// caller-owned (one per client goroutine).
type backoff struct {
	base, cap time.Duration
	cur       time.Duration
	rng       *rand.Rand
}

func newBackoff(base, cap time.Duration, rng *rand.Rand) *backoff {
	if base <= 0 {
		base = 500 * time.Microsecond
	}
	if cap <= 0 {
		cap = 50 * time.Millisecond
	}
	return &backoff{base: base, cap: cap, rng: rng}
}

// sleep waits the current delay (jittered) and doubles it toward the cap.
func (b *backoff) sleep() {
	if b.cur <= 0 {
		b.cur = b.base
	}
	d := b.cur/2 + time.Duration(b.rng.Int63n(int64(b.cur/2)+1))
	time.Sleep(d)
	b.cur *= 2
	if b.cur > b.cap {
		b.cur = b.cap
	}
}

// reset returns to the base delay after a success.
func (b *backoff) reset() { b.cur = 0 }

// FailoverStats counts a failover client's recovery work.
type FailoverStats struct {
	// Redirects counts NotPrimary replies followed to a named primary.
	Redirects uint64
	// Reconnects counts redials after a connection error (dead replica,
	// refused connection, timeout).
	Reconnects uint64
	// Failures counts dial or connect attempts that did not yield a
	// usable connection.
	Failures uint64
}

// Failover is a client over an HA replica group: it talks to one replica
// at a time, follows NotPrimary redirects to the current primary, and on
// connection errors or timeouts rotates to the next replica address with
// capped jittered backoff. Like Client it is synchronous and not safe for
// concurrent use.
type Failover struct {
	network string
	addrs   []string
	timeout time.Duration
	cur     int    // index into addrs of the preferred dial target
	target  string // explicit redirect target, overrides addrs[cur] once
	cl      *Client
	bo      *backoff
	stats   FailoverStats
}

// maxAttempts is the floor of one request's recovery loop: enough to try
// every replica twice plus follow a redirect from each. The loop also
// keeps retrying until the request timeout has elapsed, so a request only
// fails once the group has been unreachable for a full timeout window —
// an election shorter than that (the common case) is invisible to the
// caller beyond latency.
func (f *Failover) maxAttempts() int { return 3*len(f.addrs) + 2 }

// DialFailover builds a failover client over the replica client addresses
// (tried in order; the first that accepts and serves wins). timeout
// bounds each round trip — it is the client-side heartbeat that detects a
// dead primary whose TCP peer never closed. Connections are established
// lazily on first use. seed derandomizes the backoff jitter for tests.
func DialFailover(network string, addrs []string, timeout time.Duration, seed int64) *Failover {
	rng := rand.New(rand.NewSource(seed))
	return &Failover{
		network: network,
		addrs:   append([]string(nil), addrs...),
		timeout: timeout,
		bo:      newBackoff(0, 0, rng),
	}
}

// RecoveryStats returns the redirect/reconnect counters.
func (f *Failover) RecoveryStats() FailoverStats { return f.stats }

// Close drops the current connection (a later request redials).
func (f *Failover) Close() error {
	if f.cl == nil {
		return nil
	}
	err := f.cl.Close()
	f.cl = nil
	return err
}

// connect ensures a live connection, dialing the redirect target if one
// is pending, else the current rotation address.
func (f *Failover) connect() error {
	if f.cl != nil {
		return nil
	}
	addr := f.addrs[f.cur%len(f.addrs)]
	if f.target != "" {
		addr = f.target
		f.target = ""
	}
	cl, err := Dial(f.network, addr)
	if err != nil {
		f.stats.Failures++
		f.cur++ // rotate off the dead replica
		return err
	}
	cl.Timeout = f.timeout
	f.cl = cl
	return nil
}

// fail records a broken connection and rotates to the next replica.
func (f *Failover) fail() {
	f.Close()
	f.stats.Reconnects++
	f.cur++
}

// do runs op against the group until it succeeds or the attempt budget is
// spent. op runs on a connected client; a NotPrimaryError re-aims the
// next dial at the named primary, any other error rotates replicas.
func (f *Failover) do(op func(*Client) error) error {
	var lastErr error
	var deadline time.Time
	if f.timeout > 0 {
		deadline = time.Now().Add(f.timeout)
	}
	retry := func(attempt int) bool {
		return attempt < f.maxAttempts() ||
			(!deadline.IsZero() && time.Now().Before(deadline))
	}
	for attempt := 0; retry(attempt); attempt++ {
		if err := f.connect(); err != nil {
			lastErr = err
			f.bo.sleep()
			continue
		}
		err := op(f.cl)
		if err == nil {
			f.bo.reset()
			return nil
		}
		lastErr = err
		if np, ok := err.(*NotPrimaryError); ok {
			f.Close()
			if np.Addr != "" {
				f.target = np.Addr
				f.stats.Redirects++
				// A redirect is information, not a failure: dial the
				// primary immediately.
				continue
			}
			// Follower knows no primary yet (mid-election): back off and
			// retry the rotation.
			f.stats.Reconnects++
			f.bo.sleep()
			continue
		}
		f.fail()
		f.bo.sleep()
	}
	return fmt.Errorf("daemon: failover exhausted %d attempts: %w", f.maxAttempts(), lastErr)
}

// Query asks for a route, failing over as needed.
func (f *Failover) Query(req policy.Request) (routeserver.Result, error) {
	var res routeserver.Result
	err := f.do(func(c *Client) error {
		var err error
		res, err = c.Query(req)
		return err
	})
	return res, err
}

// Control issues a control-plane mutation, failing over as needed. The
// churn ops the load harness replays (fail/restore/policy) are idempotent
// at the backend, so retrying after a mid-request connection loss is
// safe; the reply's error code (e.g. "link was not failed here" after a
// retried restore landed twice) is returned to the caller as-is.
func (f *Failover) Control(op uint8, a, b ad.ID, cost uint32) (*wire.ControlReply, error) {
	var rep *wire.ControlReply
	err := f.do(func(c *Client) error {
		var err error
		rep, err = c.Control(op, a, b, cost)
		return err
	})
	return rep, err
}

// Stats fetches the serving counters from whichever replica currently
// serves this client (followers answer stats directly).
func (f *Failover) Stats() (*wire.StatsReply, error) {
	var rep *wire.StatsReply
	err := f.do(func(c *Client) error {
		var err error
		rep, err = c.Stats()
		return err
	})
	return rep, err
}
