package daemon

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/routeserver"
	"repro/internal/wire"
)

// NotPrimaryError is returned when a request landed on an HA follower:
// the daemon answered with a redirect instead of serving. Addr is the
// current primary's client address ("" when the follower knows no live
// primary yet, e.g. mid-election).
type NotPrimaryError struct {
	PrimaryID uint32
	Addr      string
}

// Error implements error.
func (e *NotPrimaryError) Error() string {
	if e.Addr == "" {
		return "daemon: not primary (no known primary)"
	}
	return fmt.Sprintf("daemon: not primary, redirect to replica %d at %s", e.PrimaryID, e.Addr)
}

// Client is a synchronous protocol client: one request on the wire at a
// time, each reply matched to its request ID. Not safe for concurrent use;
// the load harness gives every goroutine its own client, which is also
// what makes connection counts meaningful.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	seq  uint64

	// Timeout, when positive, bounds each round trip: a reply not arriving
	// within it fails the request with a timeout error. Failover clients
	// use it as their liveness probe — a wedged primary looks exactly like
	// a dead one.
	Timeout time.Duration
}

// Dial connects a client to a daemon ("tcp", "unix").
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriter(conn),
		br:   bufio.NewReader(conn),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its reply. A NotPrimary reply is
// surfaced as *NotPrimaryError on every request kind.
func (c *Client) roundTrip(m wire.Message) (wire.Message, error) {
	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := wire.WriteMessage(c.bw, m); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	rep, err := wire.ReadMessage(c.br)
	if err != nil {
		return nil, err
	}
	if np, ok := rep.(*wire.NotPrimary); ok {
		return nil, &NotPrimaryError{PrimaryID: np.PrimaryID, Addr: np.Addr}
	}
	return rep, nil
}

// Query asks for a route.
func (c *Client) Query(req policy.Request) (routeserver.Result, error) {
	c.seq++
	rep, err := c.roundTrip(&wire.Query{ID: c.seq, Req: req})
	if err != nil {
		return routeserver.Result{}, err
	}
	qr, ok := rep.(*wire.QueryReply)
	if !ok || qr.ID != c.seq {
		return routeserver.Result{}, fmt.Errorf("daemon: bad query reply %T", rep)
	}
	return routeserver.Result{Path: qr.Path, Found: qr.Found}, nil
}

// Control issues a control-plane mutation.
func (c *Client) Control(op uint8, a, b ad.ID, cost uint32) (*wire.ControlReply, error) {
	c.seq++
	rep, err := c.roundTrip(&wire.Control{ID: c.seq, Op: op, A: a, B: b, Cost: cost})
	if err != nil {
		return nil, err
	}
	cr, ok := rep.(*wire.ControlReply)
	if !ok || cr.ID != c.seq {
		return nil, fmt.Errorf("daemon: bad control reply %T", rep)
	}
	return cr, nil
}

// DataOp issues a data-plane operation.
func (c *Client) DataOp(op uint8, handle uint64, arg uint32, req policy.Request) (*wire.DataOpReply, error) {
	c.seq++
	rep, err := c.roundTrip(&wire.DataOp{ID: c.seq, Op: op, Handle: handle, Arg: arg, Req: req})
	if err != nil {
		return nil, err
	}
	dr, ok := rep.(*wire.DataOpReply)
	if !ok || dr.ID != c.seq {
		return nil, fmt.Errorf("daemon: bad data-op reply %T", rep)
	}
	return dr, nil
}

// Plan sends a what-if proposal (steps) and returns the predicted blast
// radius plus the plan ID a later Commit may apply.
func (c *Client) Plan(steps []wire.PlanStep) (*wire.PlanReply, error) {
	c.seq++
	return c.planRoundTrip(&wire.Plan{ID: c.seq, Steps: steps})
}

// Commit asks the daemon to apply a previously computed plan. The daemon
// refuses (CtlErr) if its mutation epoch moved since the plan.
func (c *Client) Commit(planID uint64) (*wire.PlanReply, error) {
	c.seq++
	return c.planRoundTrip(&wire.Plan{ID: c.seq, Commit: true, PlanID: planID})
}

func (c *Client) planRoundTrip(m *wire.Plan) (*wire.PlanReply, error) {
	rep, err := c.roundTrip(m)
	if err != nil {
		return nil, err
	}
	pr, ok := rep.(*wire.PlanReply)
	if !ok || pr.ID != c.seq {
		return nil, fmt.Errorf("daemon: bad plan reply %T", rep)
	}
	return pr, nil
}

// Stats fetches the serving counters.
func (c *Client) Stats() (*wire.StatsReply, error) {
	c.seq++
	rep, err := c.roundTrip(&wire.StatsQuery{ID: c.seq})
	if err != nil {
		return nil, err
	}
	sr, ok := rep.(*wire.StatsReply)
	if !ok || sr.ID != c.seq {
		return nil, fmt.Errorf("daemon: bad stats reply %T", rep)
	}
	return sr, nil
}

// Drain asks the daemon to drain; the ack arrives before the drain begins.
func (c *Client) Drain() error {
	c.seq++
	rep, err := c.roundTrip(&wire.Drain{ID: c.seq})
	if err != nil {
		return err
	}
	if cr, ok := rep.(*wire.ControlReply); !ok || cr.ID != c.seq || !cr.OK() {
		return fmt.Errorf("daemon: bad drain ack %T", rep)
	}
	return nil
}
