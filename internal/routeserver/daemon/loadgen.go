package daemon

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/policy"
)

// LoadConfig parameterizes a network load run.
type LoadConfig struct {
	// Clients is the number of concurrent connections, each driven by its
	// own goroutine (default 4).
	Clients int
	// ReconnectEvery injects connection churn: each client tears its
	// connection down and redials after this many requests (0 = never).
	ReconnectEvery int
	// Events is the control-plane churn timeline, sent from a dedicated
	// connection as each event's workload fraction is reached.
	Events []ChurnEvent
}

// ChurnEvent is one control-plane mutation in a load run's timeline.
type ChurnEvent struct {
	// After is the workload fraction (0..1) at which the event fires.
	After float64
	// Op, A, B, Cost form the wire.Control request.
	Op   uint8
	A, B ad.ID
	Cost uint32
}

func (c LoadConfig) normalize() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	return c
}

// LoadReport summarizes a network load run.
type LoadReport struct {
	// Requests is the workload length; Served of them found a route,
	// NoRoute did not, and Errors hit connection failures.
	Requests, Served, NoRoute, Errors int
	// Reconnects counts connection-churn redials across all clients.
	Reconnects int
	// Elapsed is the serving phase's wall-clock duration; QPS is
	// Requests/Elapsed.
	Elapsed time.Duration
	QPS     float64
	// Latency digests per-request round-trip latency (P50/P95/P99).
	Latency metrics.LatencySummary
}

// LoadRun replays the workload against a live daemon from cfg.Clients
// concurrent connections — client i takes requests i, i+C, i+2C, … — with
// optional connection churn and control-plane events, and blocks until
// every request is answered. Unlike routeserver.Run this exercises the
// full network path: framing, session queues, backpressure.
func LoadRun(network, addr string, workload []policy.Request, cfg LoadConfig) LoadReport {
	cfg = cfg.normalize()
	rep := LoadReport{Requests: len(workload)}
	if len(workload) == 0 {
		return rep
	}
	n := cfg.Clients
	if n > len(workload) {
		n = len(workload)
	}

	var (
		progress   atomic.Uint64 // requests answered so far
		served     atomic.Uint64
		noRoute    atomic.Uint64
		errors     atomic.Uint64
		reconnects atomic.Uint64
		hist       metrics.Histogram
	)

	// Churn driver: a dedicated control connection fires events in order
	// as the answered-request count crosses their fractions.
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		if len(cfg.Events) == 0 {
			return
		}
		ctl, err := Dial(network, addr)
		if err != nil {
			return
		}
		defer ctl.Close()
		for _, ev := range cfg.Events {
			threshold := uint64(ev.After * float64(len(workload)))
			for progress.Load() < threshold {
				select {
				case <-stop:
					return
				default:
					time.Sleep(100 * time.Microsecond)
				}
			}
			if _, err := ctl.Control(ev.Op, ev.A, ev.B, ev.Cost); err != nil {
				return
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(network, addr)
			if err != nil {
				for i := c; i < len(workload); i += n {
					errors.Add(1)
					progress.Add(1)
				}
				return
			}
			defer func() { cl.Close() }()
			sent := 0
			for i := c; i < len(workload); i += n {
				if cfg.ReconnectEvery > 0 && sent > 0 && sent%cfg.ReconnectEvery == 0 {
					cl.Close()
					if cl, err = Dial(network, addr); err != nil {
						errors.Add(1)
						progress.Add(1)
						return
					}
					reconnects.Add(1)
				}
				t0 := time.Now()
				res, err := cl.Query(workload[i])
				hist.Observe(time.Since(t0))
				switch {
				case err != nil:
					errors.Add(1)
				case res.Found:
					served.Add(1)
				default:
					noRoute.Add(1)
				}
				progress.Add(1)
				sent++
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	close(stop)
	<-churnDone

	rep.Served = int(served.Load())
	rep.NoRoute = int(noRoute.Load())
	rep.Errors = int(errors.Load())
	rep.Reconnects = int(reconnects.Load())
	if rep.Elapsed > 0 {
		rep.QPS = float64(rep.Requests) / rep.Elapsed.Seconds()
	}
	rep.Latency = hist.Snapshot()
	return rep
}
