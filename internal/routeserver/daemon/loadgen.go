package daemon

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/policy"
)

// LoadConfig parameterizes a network load run.
type LoadConfig struct {
	// Clients is the number of concurrent connections, each driven by its
	// own goroutine (default 4).
	Clients int
	// ReconnectEvery injects connection churn: each client tears its
	// connection down and redials after this many requests (0 = never).
	ReconnectEvery int
	// Events is the control-plane churn timeline, sent from a dedicated
	// connection as each event's workload fraction is reached.
	Events []ChurnEvent
	// Addrs is the HA replica set's client addresses. When set, every
	// client is a failover client over these addresses (the addr argument
	// to LoadRun is ignored): NotPrimary redirects are followed and dead
	// replicas rotated past. Empty = single-server mode against addr.
	Addrs []string
	// Timeout bounds each request round trip (failover mode only); it is
	// the client-side heartbeat that detects a silently dead primary.
	// Default 2s.
	Timeout time.Duration
	// Seed derandomizes the reconnect-backoff jitter (default 1; each
	// client derives its own stream from it).
	Seed int64
}

// ChurnEvent is one control-plane mutation in a load run's timeline.
type ChurnEvent struct {
	// After is the workload fraction (0..1) at which the event fires.
	After float64
	// Op, A, B, Cost form the wire.Control request.
	Op   uint8
	A, B ad.ID
	Cost uint32
}

func (c LoadConfig) normalize() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LoadReport summarizes a network load run.
type LoadReport struct {
	// Requests is the workload length; Served of them found a route,
	// NoRoute did not, and Errors hit connection failures that survived
	// every retry.
	Requests, Served, NoRoute, Errors int
	// Reconnects counts voluntary connection-churn redials plus failover
	// rotations off a dead replica.
	Reconnects int
	// ReconnectFailures counts dial attempts that failed (connection
	// refused at -max-conns, dead primary before failover kicks in): each
	// one cost a backoff sleep before the next attempt.
	ReconnectFailures int
	// Redirects counts NotPrimary replies followed to the named primary.
	Redirects int
	// MaxStall is the longest gap between consecutive successful replies
	// across all clients — the availability gap a failover opens.
	MaxStall time.Duration
	// Elapsed is the serving phase's wall-clock duration; QPS is
	// Requests/Elapsed.
	Elapsed time.Duration
	QPS     float64
	// Latency digests per-request round-trip latency (P50/P95/P99).
	Latency metrics.LatencySummary
}

// stallTracker records the longest gap between consecutive successful
// replies, cluster-wide.
type stallTracker struct {
	mu     sync.Mutex
	last   time.Time
	maxGap time.Duration
}

func (st *stallTracker) start(t time.Time) { st.last = t }

func (st *stallTracker) success(t time.Time) {
	st.mu.Lock()
	if gap := t.Sub(st.last); gap > st.maxGap {
		st.maxGap = gap
	}
	if t.After(st.last) {
		st.last = t
	}
	st.mu.Unlock()
}

// LoadRun replays the workload against a live daemon (or, with
// cfg.Addrs, an HA replica group) from cfg.Clients concurrent
// connections — client i takes requests i, i+C, i+2C, … — with optional
// connection churn and control-plane events, and blocks until every
// request is answered or exhausts its retries. Unlike routeserver.Run
// this exercises the full network path: framing, session queues,
// backpressure, and (in failover mode) redirect-following and
// reconnect-with-backoff against dead or refusing replicas.
func LoadRun(network, addr string, workload []policy.Request, cfg LoadConfig) LoadReport {
	cfg = cfg.normalize()
	rep := LoadReport{Requests: len(workload)}
	if len(workload) == 0 {
		return rep
	}
	addrs := cfg.Addrs
	if len(addrs) == 0 {
		addrs = []string{addr}
	}
	n := cfg.Clients
	if n > len(workload) {
		n = len(workload)
	}

	var (
		progress   atomic.Uint64 // requests answered so far
		served     atomic.Uint64
		noRoute    atomic.Uint64
		errCount   atomic.Uint64
		reconnects atomic.Uint64
		dialFails  atomic.Uint64
		redirects  atomic.Uint64
		hist       metrics.Histogram
		stalls     stallTracker
	)

	// Churn driver: a dedicated control connection fires events in order
	// as the answered-request count crosses their fractions. It fails over
	// like the workload clients so the timeline survives a primary kill.
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		if len(cfg.Events) == 0 {
			return
		}
		ctl := DialFailover(network, addrs, cfg.Timeout, cfg.Seed)
		defer ctl.Close()
		for _, ev := range cfg.Events {
			threshold := uint64(ev.After * float64(len(workload)))
			for progress.Load() < threshold {
				select {
				case <-stop:
					return
				default:
					time.Sleep(100 * time.Microsecond)
				}
			}
			if _, err := ctl.Control(ev.Op, ev.A, ev.B, ev.Cost); err != nil {
				return
			}
		}
	}()

	start := time.Now()
	stalls.start(start)
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := DialFailover(network, addrs, cfg.Timeout, cfg.Seed+int64(c))
			defer cl.Close()
			sent := 0
			for i := c; i < len(workload); i += n {
				if cfg.ReconnectEvery > 0 && sent > 0 && sent%cfg.ReconnectEvery == 0 {
					cl.Close()
					reconnects.Add(1)
				}
				t0 := time.Now()
				res, err := cl.Query(workload[i])
				hist.Observe(time.Since(t0))
				switch {
				case err != nil:
					errCount.Add(1)
				case res.Found:
					served.Add(1)
					stalls.success(time.Now())
				default:
					noRoute.Add(1)
					stalls.success(time.Now())
				}
				progress.Add(1)
				sent++
			}
			fs := cl.RecoveryStats()
			reconnects.Add(fs.Reconnects)
			dialFails.Add(fs.Failures)
			redirects.Add(fs.Redirects)
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	close(stop)
	<-churnDone

	rep.Served = int(served.Load())
	rep.NoRoute = int(noRoute.Load())
	rep.Errors = int(errCount.Load())
	rep.Reconnects = int(reconnects.Load())
	rep.ReconnectFailures = int(dialFails.Load())
	rep.Redirects = int(redirects.Load())
	rep.MaxStall = stalls.maxGap
	if rep.Elapsed > 0 {
		rep.QPS = float64(rep.Requests) / rep.Elapsed.Seconds()
	}
	rep.Latency = hist.Snapshot()
	return rep
}
