package daemon

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ad"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/routeserver"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/wire"
)

// testWorld is the diamond the cmd/routed tests use: a cheap transit (t1),
// an expensive detour (t2).
//
//	src(1) ─ t1(2) ─ dst(4)   (cost 2)
//	src(1) ─ t2(3) ─ dst(4)   (cost 10)
func testWorld(t *testing.T, strat func(*ad.Graph, *policy.DB) synthesis.Strategy) *Backend {
	t.Helper()
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	dst := g.AddAD("dst", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: t1, Cost: 1}, {A: t1, B: dst, Cost: 1},
		{A: src, B: t2, Cost: 5}, {A: t2, B: dst, Cost: 5},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.OpenDB(g)
	if strat == nil {
		strat = func(g *ad.Graph, db *policy.DB) synthesis.Strategy {
			return synthesis.NewOnDemand(g, db)
		}
	}
	srv := routeserver.New(strat(g, db), routeserver.Config{})
	dp, err := routeserver.NewDataPlane(pgstate.Config{Kind: pgstate.Soft, TTL: 30 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	return NewBackend(srv, dp, g, db)
}

// pipeSession runs one session over net.Pipe — no sockets — and returns a
// protocol client talking to it.
func pipeSession(t *testing.T, d *Daemon) *Client {
	t.Helper()
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.ServeConn(server)
	}()
	t.Cleanup(func() {
		client.Close()
		<-done
	})
	return NewClient(client)
}

func TestSessionProtocolRoundTrip(t *testing.T) {
	be := testWorld(t, nil)
	d := New(be, Config{})
	cl := pipeSession(t, d)

	// Query: cheap route, then an unroutable pair.
	res, err := cl.Query(policy.Request{Src: 1, Dst: 4})
	if err != nil || !res.Found || !res.Path.Equal(ad.Path{1, 2, 4}) {
		t.Fatalf("query = %+v, %v", res, err)
	}
	if res, err = cl.Query(policy.Request{Src: 99, Dst: 98}); err != nil || res.Found {
		t.Fatalf("unroutable pair = %+v, %v", res, err)
	}

	// Data plane: install, send, refresh, tick, repair, state.
	dr, err := cl.DataOp(wire.OpInstall, 0, 0, policy.Request{Src: 1, Dst: 4})
	if err != nil || dr.Code != wire.DataOK || dr.Handle != 1 || !dr.Path.Equal(ad.Path{1, 2, 4}) {
		t.Fatalf("install = %+v, %v", dr, err)
	}
	if dr, err = cl.DataOp(wire.OpSend, 1, 0, policy.Request{}); err != nil || dr.Code != wire.DataOK {
		t.Fatalf("send = %+v, %v", dr, err)
	}
	if dr, err = cl.DataOp(wire.OpSend, 777, 0, policy.Request{}); err != nil || dr.Code != wire.DataUnknownHandle {
		t.Fatalf("send unknown = %+v, %v", dr, err)
	}
	if dr, err = cl.DataOp(wire.OpRefresh, 0, 0, policy.Request{}); err != nil || dr.N1 != 1 || dr.N2 != 0 {
		t.Fatalf("refresh = %+v, %v", dr, err)
	}
	if dr, err = cl.DataOp(wire.OpTick, 0, 10, policy.Request{}); err != nil || dr.N1 != 10 {
		t.Fatalf("tick = %+v, %v", dr, err)
	}
	if dr, err = cl.DataOp(wire.OpState, 0, 0, policy.Request{}); err != nil || dr.Text == "" {
		t.Fatalf("state = %+v, %v", dr, err)
	}
	if dr, err = cl.DataOp(99, 0, 0, policy.Request{}); err != nil || dr.Code != wire.DataBadOp {
		t.Fatalf("bad op = %+v, %v", dr, err)
	}

	// Control plane: fail evicts the cheap route and flushes the handle,
	// the rerouted query takes the detour, restore retains it.
	cr, err := cl.Control(wire.CtlFail, 2, 4, 0)
	if err != nil || !cr.OK() || cr.Evicted != 1 || cr.Flushed != 3 {
		t.Fatalf("fail = %+v, %v", cr, err)
	}
	if res, err = cl.Query(policy.Request{Src: 1, Dst: 4}); err != nil || !res.Path.Equal(ad.Path{1, 3, 4}) {
		t.Fatalf("post-failure query = %+v, %v", res, err)
	}
	if dr, err = cl.DataOp(wire.OpRepair, 0, 0, policy.Request{}); err != nil || dr.N1 != 1 || dr.N2 != 1 {
		t.Fatalf("repair = %+v, %v", dr, err)
	}
	if cr, err = cl.Control(wire.CtlRestore, 2, 4, 0); err != nil || !cr.OK() || cr.Retained == 0 {
		t.Fatalf("restore = %+v, %v", cr, err)
	}

	// Control errors travel as text, not as broken sessions.
	if cr, err = cl.Control(wire.CtlFail, 9, 9, 0); err != nil || cr.OK() || cr.Err != "no link AD9-AD9" {
		t.Fatalf("fail bad link = %+v, %v", cr, err)
	}
	if cr, err = cl.Control(wire.CtlRestore, 9, 9, 0); err != nil || cr.OK() || cr.Err != "link AD9-AD9 was not failed here" {
		t.Fatalf("restore unfailed = %+v, %v", cr, err)
	}
	if cr, err = cl.Control(99, 0, 0, 0); err != nil || cr.OK() {
		t.Fatalf("unknown control op = %+v, %v", cr, err)
	}

	// Policy: making t1 expensive reroutes through t2 after the scoped
	// eviction.
	if cr, err = cl.Control(wire.CtlPolicy, 2, 0, 100); err != nil || !cr.OK() {
		t.Fatalf("policy = %+v, %v", cr, err)
	}
	if res, err = cl.Query(policy.Request{Src: 1, Dst: 4}); err != nil || !res.Path.Equal(ad.Path{1, 3, 4}) {
		t.Fatalf("post-policy query = %+v, %v", res, err)
	}

	// Invalidate bumps the generation; stats reflect the session's work.
	if cr, err = cl.Control(wire.CtlInvalidate, 0, 0, 0); err != nil || cr.Gen != 1 {
		t.Fatalf("invalidate = %+v, %v", cr, err)
	}
	st, err := cl.Stats()
	if err != nil || st.Gen != 1 || st.Queries == 0 {
		t.Fatalf("stats = %+v, %v", st, err)
	}

	if got := d.Metrics(); got.Requests == 0 || got.Accepted != 1 || got.Active != 1 {
		t.Fatalf("daemon metrics = %+v", got)
	}
}

func TestSessionRejectsNonRequests(t *testing.T) {
	be := testWorld(t, nil)
	cl := pipeSession(t, New(be, Config{}))
	// A routing-protocol message is not a serving request: the daemon
	// answers with a control error instead of wedging or closing.
	if err := wire.WriteMessage(cl.bw, &wire.DVUpdate{}); err != nil {
		t.Fatal(err)
	}
	if err := cl.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := wire.ReadMessage(cl.br)
	if err != nil {
		t.Fatal(err)
	}
	cr, ok := rep.(*wire.ControlReply)
	if !ok || cr.OK() {
		t.Fatalf("reply to a non-request = %#v", rep)
	}
}

func TestConnectionLimitRefuses(t *testing.T) {
	be := testWorld(t, nil)
	d := New(be, Config{MaxConns: 1})
	cl := pipeSession(t, d)
	if _, err := cl.Query(policy.Request{Src: 1, Dst: 4}); err != nil {
		t.Fatal(err)
	}

	// The second connection is refused: closed before any reply.
	server, client := net.Pipe()
	go d.ServeConn(server)
	defer client.Close()
	over := NewClient(client)
	if _, err := over.Query(policy.Request{Src: 1, Dst: 4}); err == nil {
		t.Fatal("query over the connection limit succeeded")
	}
	if m := d.Metrics(); m.Refused != 1 || m.Active != 1 {
		t.Fatalf("metrics after refusal = %+v", m)
	}
}

func TestSlowClientEviction(t *testing.T) {
	be := testWorld(t, nil)
	d := New(be, Config{WriteQueue: 1, WriteTimeout: 20 * time.Millisecond})
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.ServeConn(server)
	}()
	defer client.Close()

	// Pipeline requests without ever reading replies: the write queue
	// fills, the grace expires, and the daemon evicts the session rather
	// than blocking its reader forever.
	for i := 0; i < 16; i++ {
		if err := wire.WriteMessage(client, &wire.Query{ID: uint64(i), Req: policy.Request{Src: 1, Dst: 4}}); err != nil {
			break // the eviction closed the pipe under us: exactly the point
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("slow client was never evicted")
	}
	if m := d.Metrics(); m.Evicted != 1 {
		t.Fatalf("metrics after slow client = %+v", m)
	}
}

// stallStrategy blocks one Route call so a drain can be triggered while
// the request is provably in flight.
type stallStrategy struct {
	synthesis.Strategy
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func (s *stallStrategy) Route(req policy.Request) (ad.Path, bool) {
	if s.armed.CompareAndSwap(true, false) {
		close(s.entered)
		<-s.release
	}
	return s.Strategy.Route(req)
}

func TestDrainFinishesInFlight(t *testing.T) {
	stall := &stallStrategy{entered: make(chan struct{}), release: make(chan struct{})}
	be := testWorld(t, func(g *ad.Graph, db *policy.DB) synthesis.Strategy {
		stall.Strategy = synthesis.NewOnDemand(g, db)
		return stall
	})
	stall.armed.Store(true)
	d := New(be, Config{})
	cl := pipeSession(t, d)

	type answer struct {
		res routeserver.Result
		err error
	}
	got := make(chan answer, 1)
	go func() {
		res, err := cl.Query(policy.Request{Src: 1, Dst: 4})
		got <- answer{res, err}
	}()
	<-stall.entered

	// Drain while the query is mid-synthesis: the session must finish the
	// request and flush the reply before closing.
	drained := make(chan struct{})
	go func() {
		d.Drain()
		close(drained)
	}()
	time.Sleep(10 * time.Millisecond) // let the drain reach the session
	close(stall.release)

	select {
	case a := <-got:
		if a.err != nil || !a.res.Found || !a.res.Path.Equal(ad.Path{1, 2, 4}) {
			t.Fatalf("in-flight query lost to drain: %+v, %v", a.res, a.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight reply never arrived")
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed")
	}

	// After the drain the session is gone and new connections are refused.
	if _, err := wire.ReadMessage(cl.br); err != io.EOF {
		t.Fatalf("post-drain read = %v, want EOF", err)
	}
	server, client := net.Pipe()
	go d.ServeConn(server)
	defer client.Close()
	if _, err := wire.ReadMessage(client); err != io.EOF {
		t.Fatalf("post-drain connection not refused: %v", err)
	}
}

func TestDrainMessageOverTCP(t *testing.T) {
	be := testWorld(t, nil)
	d := New(be, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()

	cl, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(policy.Request{Src: 1, Dst: 4}); err != nil {
		t.Fatal(err)
	}
	// The Drain message is acked first, then the daemon winds down: the
	// listener closes (Serve returns nil, not an accept error) and the
	// connection reaches EOF.
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-d.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("drain message did not complete a drain")
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v for a drain close", err)
	}
	if _, err := wire.ReadMessage(cl.br); err != io.EOF {
		t.Fatalf("post-drain read = %v, want EOF", err)
	}
}

// TestConcurrentSessionsAcrossScopedMutation is the race-detector workout
// for the network path: concurrent connections query while another
// connection interleaves scoped link failures/restorations and policy
// changes. Every reply must be a legal answer for the topology interval it
// was computed in — here simply: no errors, and the counters add up.
func TestConcurrentSessionsAcrossScopedMutation(t *testing.T) {
	be := testWorld(t, nil)
	d := New(be, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(ln)
	defer d.Drain()

	const clients = 4
	const rounds = 100
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < rounds; i++ {
				res, err := cl.Query(policy.Request{Src: 1, Dst: 4})
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if res.Found && !res.Path.Equal(ad.Path{1, 2, 4}) && !res.Path.Equal(ad.Path{1, 3, 4}) {
					t.Errorf("impossible path %v", res.Path)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctl, err := Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Error(err)
			return
		}
		defer ctl.Close()
		for i := 0; i < 10; i++ {
			if _, err := ctl.Control(wire.CtlFail, 2, 4, 0); err != nil {
				t.Errorf("fail: %v", err)
				return
			}
			if _, err := ctl.Control(wire.CtlRestore, 2, 4, 0); err != nil {
				t.Errorf("restore: %v", err)
				return
			}
			if _, err := ctl.Control(wire.CtlPolicy, 3, 0, uint32(5+i%3)); err != nil {
				t.Errorf("policy: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	st, err := func() (*wire.StatsReply, error) {
		cl, err := Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		return cl.Stats()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries < clients*rounds {
		t.Fatalf("stats lost queries: %+v", st)
	}
	if st.Hits+st.Coalesced+st.Misses != st.Queries {
		t.Fatalf("counter accounting broken under churn: %+v", st)
	}
}

func TestLoadRunAgainstDaemon(t *testing.T) {
	be := testWorld(t, nil)
	d := New(be, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(ln)
	defer d.Drain()

	workload := make([]policy.Request, 200)
	for i := range workload {
		workload[i] = policy.Request{Src: 1, Dst: 4, Hour: uint8(i % 4)}
	}
	rep := LoadRun("tcp", ln.Addr().String(), workload, LoadConfig{
		Clients:        8,
		ReconnectEvery: 10,
		Events: []ChurnEvent{
			{After: 0.3, Op: wire.CtlFail, A: 2, B: 4},
			{After: 0.6, Op: wire.CtlRestore, A: 2, B: 4},
		},
	})
	if rep.Errors != 0 {
		t.Fatalf("load run hit %d errors: %+v", rep.Errors, rep)
	}
	if rep.Served != rep.Requests {
		t.Fatalf("served %d of %d", rep.Served, rep.Requests)
	}
	if rep.Reconnects == 0 {
		t.Fatal("connection churn never reconnected")
	}
	if rep.QPS <= 0 || rep.Latency.P99 <= 0 {
		t.Fatalf("report missing rates: %+v", rep)
	}
	if m := d.Metrics(); m.Accepted < 8 || m.Requests < uint64(len(workload)) {
		t.Fatalf("daemon metrics = %+v", m)
	}
}

func TestLinkOf(t *testing.T) {
	g := ad.NewGraph()
	a := g.AddAD("a", ad.Stub, ad.Campus)
	b := g.AddAD("b", ad.Stub, ad.Campus)
	if err := g.AddLink(ad.Link{A: a, B: b, Cost: 3}); err != nil {
		t.Fatal(err)
	}
	// Link lookup is order-insensitive: the graph stores the canonical form.
	l, ok := linkOf(g, b, a)
	if !ok || l.Cost != 3 {
		t.Errorf("linkOf(b, a) = %+v %v", l, ok)
	}
	if _, ok := linkOf(g, a, 99); ok {
		t.Error("linkOf found a nonexistent link")
	}
}
