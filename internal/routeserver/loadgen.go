package routeserver

import (
	"time"

	"repro/internal/policy"
	"repro/internal/synthesis"
)

// Event is one churn injection during a load run: after roughly the given
// fraction of the workload has been served, Apply runs under
// Server.MutateScoped (exclusive access, then invalidation scoped to
// Change).
type Event struct {
	// After is the workload fraction (0..1) at which the event fires.
	After float64
	// Label names the event in reports.
	Label string
	// Apply mutates the topology or policy database the server's
	// strategy synthesizes over.
	Apply func()
	// Change scopes the invalidation to what Apply actually touched. The
	// zero value is a full (unscoped) invalidation, so existing timelines
	// keep their whole-cache-bump semantics.
	Change synthesis.Change
}

// LoadConfig parameterizes a load run.
type LoadConfig struct {
	// Clients is the number of concurrent client goroutines (default 4).
	Clients int
	// Events is the churn timeline, injected while clients are querying.
	Events []Event
}

func (c LoadConfig) normalize() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	return c
}

// Report summarizes a load run.
type Report struct {
	// Elapsed is wall-clock duration of the serving phase.
	Elapsed time.Duration
	// QPS is Requests / Elapsed.
	QPS float64
	// Requests is the workload length; Served of them found a route.
	Requests, Served, NoRoute int
	// Metrics is the server's counter/latency snapshot after the run.
	Metrics MetricsSnapshot
	// Strategy is the wrapped strategy's instrumentation after the run.
	Strategy synthesis.StrategyStats
}

// Run replays the workload against the server from cfg.Clients concurrent
// goroutines — client i takes requests i, i+C, i+2C, … — injecting
// cfg.Events at their workload fractions, and blocks until every request is
// answered. Results are wall-clock timed; for deterministic phase-by-phase
// serving use ServePhase and call Server.Mutate at the barriers yourself.
func Run(srv *Server, workload []policy.Request, cfg LoadConfig) Report {
	cfg = cfg.normalize()
	rep := Report{Requests: len(workload)}
	if len(workload) == 0 {
		return rep
	}

	// Churn driver: watch served-query progress, fire events in order.
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	base := srv.Snapshot().Queries
	go func() {
		defer close(churnDone)
		for _, ev := range cfg.Events {
			threshold := base + uint64(ev.After*float64(len(workload)))
			for srv.Snapshot().Queries < threshold {
				select {
				case <-stop:
					return
				default:
					time.Sleep(50 * time.Microsecond)
				}
			}
			srv.MutateScoped(ev.Change, ev.Apply)
		}
	}()

	results := make([]Result, len(workload))
	start := time.Now()
	serveStriped(srv, workload, results, cfg.Clients)
	rep.Elapsed = time.Since(start)

	close(stop)
	<-churnDone

	for _, r := range results {
		if r.Found {
			rep.Served++
		} else {
			rep.NoRoute++
		}
	}
	if rep.Elapsed > 0 {
		rep.QPS = float64(rep.Requests) / rep.Elapsed.Seconds()
	}
	rep.Metrics = srv.Snapshot()
	rep.Strategy = srv.StrategyStats()
	return rep
}

// ServePhase serves every request across clients concurrent goroutines and
// returns the per-request results in workload order. Because results are
// written to the slot of their request, the returned slice is independent
// of scheduling; experiments rely on this for byte-identical tables at any
// parallelism.
func ServePhase(srv *Server, workload []policy.Request, clients int) []Result {
	if clients <= 0 {
		clients = 4
	}
	results := make([]Result, len(workload))
	serveStriped(srv, workload, results, clients)
	return results
}

// serveStriped fans the workload across n client goroutines by stride.
func serveStriped(srv *Server, workload []policy.Request, results []Result, n int) {
	if n > len(workload) {
		n = len(workload)
	}
	if n <= 1 {
		for i, req := range workload {
			results[i] = srv.Query(req)
		}
		return
	}
	done := make(chan struct{})
	for c := 0; c < n; c++ {
		c := c
		go func() {
			defer func() { done <- struct{}{} }()
			for i := c; i < len(workload); i += n {
				results[i] = srv.Query(workload[i])
			}
		}()
	}
	for c := 0; c < n; c++ {
		<-done
	}
}
