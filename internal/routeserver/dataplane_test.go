package routeserver

import (
	"strings"
	"testing"

	"repro/internal/ad"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/synthesis"
)

// dpGraph is a diamond: src reaches dst through either t1 or t2.
func dpGraph(t *testing.T) (*ad.Graph, *policy.DB, ad.ID, ad.ID, ad.ID, ad.ID) {
	t.Helper()
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	dst := g.AddAD("dst", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: t1, Cost: 1}, {A: t1, B: dst, Cost: 1},
		{A: src, B: t2, Cost: 5}, {A: t2, B: dst, Cost: 5},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return g, policy.OpenDB(g), src, t1, t2, dst
}

func dpServer(g *ad.Graph, db *policy.DB) *Server {
	return New(synthesis.NewOnDemand(g, db), Config{})
}

func TestDataPlaneInstallAndSend(t *testing.T) {
	g, db, src, _, _, dst := dpGraph(t)
	srv := dpServer(g, db)
	dp, err := NewDataPlane(pgstate.Config{Kind: pgstate.Hard})
	if err != nil {
		t.Fatal(err)
	}
	req := policy.Request{Src: src, Dst: dst}
	res := srv.Query(req)
	if !res.Found {
		t.Fatal("no route served")
	}
	h := dp.Install(req, res.Path)
	if r := dp.Send(h); !r.Delivered {
		t.Fatalf("send = %+v", r)
	}
	m := dp.Metrics()
	if m.Flows != 1 || m.State.Resident != len(res.Path) {
		t.Fatalf("metrics = %+v", m)
	}
	if r := dp.Send(999); r.Delivered {
		t.Error("unknown handle delivered")
	}
}

func TestDataPlaneSoftExpiryAndRefresh(t *testing.T) {
	g, db, src, _, _, dst := dpGraph(t)
	srv := dpServer(g, db)
	dp, err := NewDataPlane(pgstate.Config{Kind: pgstate.Soft, TTL: 10 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	req := policy.Request{Src: src, Dst: dst}
	res := srv.Query(req)
	h := dp.Install(req, res.Path)
	// Refreshed within the TTL, the flow survives several TTLs.
	for i := 0; i < 4; i++ {
		dp.Tick(5 * sim.Second)
		if refreshed, failed := dp.RefreshAll(); refreshed != 1 || failed != 0 {
			t.Fatalf("round %d: refreshed=%d failed=%d", i, refreshed, failed)
		}
	}
	if r := dp.Send(h); !r.Delivered {
		t.Fatal("refreshed flow died")
	}
	if m := dp.Metrics(); m.RefreshBytes == 0 {
		t.Error("no refresh bytes counted")
	}
	// Unrefreshed past the TTL, the whole route expires and the flow is
	// abandoned (no repair).
	if expired := dp.Tick(11 * sim.Second); expired != len(res.Path) {
		t.Fatalf("expired %d entries, want %d", expired, len(res.Path))
	}
	m := dp.Metrics()
	if m.Flows != 0 || m.PendingRepairs != 0 || m.State.Resident != 0 {
		t.Fatalf("metrics after expiry = %+v", m)
	}
}

func TestDataPlaneNAKOnMissRepairs(t *testing.T) {
	g, db, src, _, _, dst := dpGraph(t)
	srv := dpServer(g, db)
	dp, err := NewDataPlane(pgstate.Config{Kind: pgstate.Capped, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	req := policy.Request{Src: src, Dst: dst}
	res := srv.Query(req)
	h1 := dp.Install(req, res.Path)
	// Two more flows over the same 2-capacity gateways evict h1's state.
	dp.Install(req, res.Path)
	dp.Install(req, res.Path)
	r := dp.Send(h1)
	if r.Delivered || r.MissAt == 0 {
		t.Fatalf("send over evicted state = %+v", r)
	}
	m := dp.Metrics()
	if m.NAKs != 1 || m.PendingRepairs != 1 || m.MaxPeak > 2 {
		t.Fatalf("metrics = %+v", m)
	}
	attempted, repaired := dp.Repair(srv)
	if attempted != 1 || repaired != 1 {
		t.Fatalf("repair = %d/%d", repaired, attempted)
	}
	hs := dp.Handles()
	if len(hs) != 3 || hs[len(hs)-1] == h1 {
		t.Fatalf("handles after repair = %v", hs)
	}
	if r := dp.Send(hs[len(hs)-1]); !r.Delivered {
		t.Error("repaired flow does not deliver")
	}
	if lat := dp.Metrics().ResetupLatency; lat.Count != 1 {
		t.Errorf("resetup latency count = %d", lat.Count)
	}
}

func TestDataPlaneLinkFailureRepairsAroundIt(t *testing.T) {
	g, db, src, t1, _, dst := dpGraph(t)
	srv := dpServer(g, db)
	dp, err := NewDataPlane(pgstate.Config{Kind: pgstate.Hard})
	if err != nil {
		t.Fatal(err)
	}
	req := policy.Request{Src: src, Dst: dst}
	res := srv.Query(req)
	if !res.Path.Contains(t1) {
		t.Fatalf("cheap route should use t1: %v", res.Path)
	}
	h := dp.Install(req, res.Path)
	// Fail the t1-dst link on the live server, then flush crossing state.
	srv.Mutate(func() { g.RemoveLink(t1, dst) })
	if flushed := dp.InvalidateLink(t1, dst); flushed == 0 {
		t.Fatal("no state flushed for the failed link")
	}
	if r := dp.Send(h); r.Delivered {
		t.Fatal("flow delivered across failed link")
	}
	if _, repaired := dp.Repair(srv); repaired != 1 {
		t.Fatal("flow not repaired")
	}
	hs := dp.Handles()
	f, ok := dp.Flow(hs[len(hs)-1])
	if !ok || f.Path.Contains(t1) {
		t.Fatalf("repaired path still uses t1: %+v", f)
	}
	if r := dp.Send(hs[len(hs)-1]); !r.Delivered {
		t.Error("repaired flow does not deliver")
	}
}

func TestDataPlaneMetricsString(t *testing.T) {
	var m DataPlaneMetrics
	s := m.String()
	for _, want := range []string{"flows", "resident", "refreshes", "resetups"} {
		if !strings.Contains(s, want) {
			t.Errorf("metrics string missing %q: %s", want, s)
		}
	}
}

func TestDataPlaneRejectsBadConfig(t *testing.T) {
	if _, err := NewDataPlane(pgstate.Config{Kind: "bogus"}); err == nil {
		t.Fatal("bad config accepted")
	}
}
