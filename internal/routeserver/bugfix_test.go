package routeserver

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/synthesis"
)

// panicOnceStrategy panics on the first Route call after arming, after
// letting concurrent waiters pile onto the same singleflight call.
type panicOnceStrategy struct {
	synthesis.Strategy
	armed   atomic.Bool
	entered chan struct{} // closed when the doomed Route is running
	release chan struct{} // the doomed Route panics when this closes
}

func (s *panicOnceStrategy) Route(req policy.Request) (ad.Path, bool) {
	if s.armed.CompareAndSwap(true, false) {
		close(s.entered)
		<-s.release
		panic("synthesis exploded")
	}
	return s.Strategy.Route(req)
}

// TestCoalescePanicSafety pins the panic contract of the singleflight
// path: a panicking synthesis must re-panic on the leader, release every
// coalesced waiter (with the zero "no legal route" Result) rather than
// hanging them forever, deregister the in-flight call, and leave the
// strategy lock released so the server keeps serving.
func TestCoalescePanicSafety(t *testing.T) {
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	dst := g.AddAD("dst", ad.Stub, ad.Campus)
	if err := g.AddLink(ad.Link{A: src, B: dst, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	db := policy.OpenDB(g)
	strat := &panicOnceStrategy{
		Strategy: synthesis.NewOnDemand(g, db),
		entered:  make(chan struct{}),
		release:  make(chan struct{}),
	}
	strat.armed.Store(true)
	srv := New(strat, Config{Workers: 4})

	req := policy.Request{Src: src, Dst: dst}

	// Leader: runs the doomed computation and must see the panic again.
	leaderPanicked := make(chan any, 1)
	go func() {
		defer func() { leaderPanicked <- recover() }()
		srv.Query(req)
	}()
	<-strat.entered

	// Waiters: coalesce onto the leader's in-flight call.
	const waiters = 3
	var wg sync.WaitGroup
	results := make([]Result, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = srv.Query(req)
		}()
	}
	// Give the waiters time to register on the singleflight call before
	// the leader blows up; joining late (as fresh leaders) would dodge the
	// regression this test exists for.
	time.Sleep(20 * time.Millisecond)
	close(strat.release)

	if p := <-leaderPanicked; p == nil {
		t.Fatal("leader swallowed the synthesis panic")
	} else if !strings.Contains(p.(string), "synthesis exploded") {
		t.Fatalf("leader re-panicked with %v", p)
	}

	waitersDone := make(chan struct{})
	go func() { wg.Wait(); close(waitersDone) }()
	select {
	case <-waitersDone:
	case <-time.After(5 * time.Second):
		t.Fatal("coalesced waiters hung after the leader panicked")
	}
	for i, res := range results {
		if res.Found {
			t.Errorf("waiter %d got a route from a panicked computation: %+v", i, res)
		}
	}

	// The in-flight call must not leak.
	srv.sfMu.Lock()
	leaked := len(srv.sfCalls)
	srv.sfMu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d singleflight calls leaked", leaked)
	}

	// The strategy lock must be free again: queries and mutations proceed.
	done := make(chan Result, 1)
	go func() { done <- srv.Query(req) }()
	select {
	case res := <-done:
		if !res.Found || !res.Path.Equal(ad.Path{src, dst}) {
			t.Fatalf("post-panic query = %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server deadlocked after a synthesis panic (strategy lock held?)")
	}
	srv.MutateScoped(synthesis.LinkDownChange(src, dst), func() { g.RemoveLink(src, dst) })
}

// TestEvictScopedCountsActualDeletions pins the eviction accounting: a
// victim key resolved through the reverse index whose cache entry is
// already gone (a dangling index edge) is not eviction work and must not
// be reported as such.
func TestEvictScopedCountsActualDeletions(t *testing.T) {
	g, _, srv, src, t1, _, dst, _, _ := scopedWorld(t)
	rCheap := policy.Request{Src: src, Dst: dst}
	if res := srv.Query(rCheap); !res.Path.Equal(ad.Path{src, t1, dst}) {
		t.Fatalf("warm route = %+v", res)
	}

	// Manufacture the dangling edge: drop the LRU entry while leaving its
	// index edges in place, as a racing deletion between index resolution
	// and the eviction sweep would.
	k := KeyOf(rCheap)
	sh := &srv.shards[k.hash()&srv.mask]
	sh.mu.Lock()
	if _, ok := sh.lru.Peek(k); !ok {
		sh.mu.Unlock()
		t.Fatal("warm entry missing")
	}
	sh.lru.Delete(k)
	sh.mu.Unlock()

	evicted, _ := srv.MutateScoped(
		synthesis.LinkDownChange(t1, dst), func() { g.RemoveLink(t1, dst) })
	if evicted != 0 {
		t.Fatalf("evicted = %d for a dangling index edge, want 0", evicted)
	}
}

// TestMutateScopedRetainedExcludesStale pins the retention accounting:
// entries orphaned by a prior full invalidation sit in the LRU awaiting
// lazy deletion but can never serve again, so a scoped mutation must not
// report them as retained working set.
func TestMutateScopedRetainedExcludesStale(t *testing.T) {
	g, _, srv, src, t1, t2, dst, src2, iso := scopedWorld(t)
	rCheap := policy.Request{Src: src, Dst: dst}
	rVia2 := policy.Request{Src: src2, Dst: dst}
	rNeg := policy.Request{Src: src, Dst: iso}

	// Three entries at generation 0, then a full bump strands them.
	srv.Query(rCheap)
	srv.Query(rVia2)
	srv.Query(rNeg)
	srv.Invalidate()

	// One current entry at generation 1. The stale rCheap and rNeg entries
	// are still in the LRU (lazy deletion) — and still indexed.
	if res := srv.Query(rVia2); !res.Path.Equal(ad.Path{src2, t2, dst}) {
		t.Fatalf("post-bump route = %+v", res)
	}
	if n := srv.CacheLen(); n != 3 {
		t.Fatalf("CacheLen = %d, want 3 (two stale + one current)", n)
	}

	// Failing t1-dst touches only the stale rCheap entry; rVia2 survives.
	_, retained := srv.MutateScoped(
		synthesis.LinkDownChange(t1, dst), func() { g.RemoveLink(t1, dst) })
	if retained != 1 {
		t.Fatalf("retained = %d, want only the current-generation entry", retained)
	}
}
