// Package routeserver is the concurrent serving layer over route synthesis:
// the paper's route servers (§5.4) synthesize policy routes on behalf of
// clients, and §5.4.1 leaves open how to make that fast at scale. This
// package wraps any synthesis.Strategy behind a thread-safe query engine:
//
//   - a sharded LRU route cache keyed by (src, dst, QOS, UCI, hour) with
//     generation-based invalidation on topology/policy-change events,
//   - a per-shard reverse dependency index (link → keys, term → keys,
//     negative-entry set) fed by each route's synthesis.Footprint, so
//     MutateScoped evicts only the entries a change can affect while the
//     rest of the cache keeps serving with zero recomputation,
//   - singleflight request coalescing, so concurrent misses for the same
//     key trigger exactly one synthesis,
//   - a reader/writer strategy lock: misses for distinct keys synthesize
//     concurrently on the strategy's read plane (Route/Footprint are
//     concurrent-safe; see synthesis.Strategy), while mutations and
//     rebuilds take the write side and run exclusively,
//   - a bounded worker pool for miss computation, charged only for the
//     search itself — never for time spent waiting on a lock,
//   - an atomic server-metrics layer: query/hit/miss/coalesce counters and
//     a latency histogram with p50/p95/p99.
//
// Correctness contract: a query observes either the state before an
// invalidation or after it, never a mix — cached entries are tagged with
// the generation that produced them and are never served across a full
// bump. Scoped mutations do not bump the generation; instead they evict
// every dependent entry under the strategy lock before any post-change
// synthesis can run, and bump a coalescing epoch so queries issued after
// the mutation never join a pre-mutation in-flight computation. Entries
// retained across a scoped mutation are legal under the post-change state
// by construction (the change provably cannot affect them), though a
// broadening change may have created a cheaper route; callers that need
// optimality back use the full Invalidate.
package routeserver

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ad"
	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/synthesis"
)

// Key is the serving-cache key. Unlike the strategies' internal tables it
// includes the request hour, so the serving layer stays correct even for
// hour-sensitive strategies; for hour-insensitive ones the extra field only
// fragments the cache, never corrupts it.
type Key struct {
	Src, Dst ad.ID
	QOS      policy.QOS
	UCI      policy.UCI
	Hour     uint8
}

// KeyOf derives the serving-cache key for a request.
func KeyOf(req policy.Request) Key {
	return Key{Src: req.Src, Dst: req.Dst, QOS: req.QOS, UCI: req.UCI, Hour: req.Hour}
}

// Request reconstructs the request a key stands for (keys carry every
// request field). Replication uses it to ship cache entries as requests.
func (k Key) Request() policy.Request {
	return policy.Request{Src: k.Src, Dst: k.Dst, QOS: k.QOS, UCI: k.UCI, Hour: k.Hour}
}

// hash is FNV-1a over the key's fields, used to pick a cache shard.
func (k Key) hash() uint32 {
	h := uint32(2166136261)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= 16777619
	}
	for _, v := range []uint32{uint32(k.Src), uint32(k.Dst)} {
		mix(byte(v))
		mix(byte(v >> 8))
		mix(byte(v >> 16))
		mix(byte(v >> 24))
	}
	mix(byte(k.QOS))
	mix(byte(k.UCI))
	mix(k.Hour)
	return h
}

// Result is one served route answer.
type Result struct {
	// Path is the synthesized route (nil when Found is false).
	Path ad.Path
	// Found reports whether a legal route exists.
	Found bool
}

// Config parameterizes a Server. The zero value is usable: 16 shards,
// 65536 total entries, one miss worker per CPU.
type Config struct {
	// Shards is the cache shard count, rounded up to a power of two
	// (default 16). More shards = less hit-path contention.
	Shards int
	// Capacity is the total cache capacity in entries, split evenly
	// across shards (default 65536; < 0 = unbounded).
	Capacity int
	// Workers bounds concurrent miss computations (default GOMAXPROCS).
	// Coalesced waiters do not consume workers.
	Workers int
	// QueryLog, when > 0, keeps a bounded ring of the most recent queries.
	// The what-if plan engine replays it as the recorded workload, so
	// "which pairs lose all routes" reflects real traffic rather than just
	// cache residency. 0 disables recording.
	QueryLog int
}

func (c Config) normalize() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.Capacity == 0 {
		c.Capacity = 1 << 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// cached is one route-cache entry, tagged with the generation whose
// topology/policy state produced it and carrying the route's dependency
// footprint for the reverse index.
type cached struct {
	gen   uint64
	path  ad.Path
	found bool
	fp    synthesis.Footprint
}

// shard is one lockable slice of the route cache plus the reverse
// dependency index over its entries: byLink/byTerm map each footprint
// element to the keys depending on it, and negs holds the keys of cached
// negative ("no legal route") answers, which depend on the absence of
// routes rather than on any particular link or term. All four structures
// are maintained together under mu.
type shard struct {
	mu     sync.Mutex
	lru    *cache.LRU[Key, cached]
	byLink map[[2]ad.ID]map[Key]struct{}
	byTerm map[policy.Key]map[Key]struct{}
	negs   map[Key]struct{}
	// live counts resident current-generation entries — the population
	// scoped mutations report as "retained" and the plan engine reads in
	// O(shards) instead of O(cache). Maintained under mu at every insert,
	// capacity eviction, stale-on-sight deletion, and scoped eviction; a
	// full bump zeroes it (every resident entry just went stale, deletion
	// stays lazy). Stale entries are never counted.
	live int
}

// index adds k's dependency edges. Caller holds mu.
func (sh *shard) index(k Key, c cached) {
	if !c.found {
		sh.negs[k] = struct{}{}
		return
	}
	for _, l := range c.fp.Links {
		m := sh.byLink[l]
		if m == nil {
			m = make(map[Key]struct{})
			sh.byLink[l] = m
		}
		m[k] = struct{}{}
	}
	for _, t := range c.fp.Terms {
		m := sh.byTerm[t]
		if m == nil {
			m = make(map[Key]struct{})
			sh.byTerm[t] = m
		}
		m[k] = struct{}{}
	}
}

// unindex removes k's dependency edges. Caller holds mu.
func (sh *shard) unindex(k Key, c cached) {
	if !c.found {
		delete(sh.negs, k)
		return
	}
	for _, l := range c.fp.Links {
		if m := sh.byLink[l]; m != nil {
			delete(m, k)
			if len(m) == 0 {
				delete(sh.byLink, l)
			}
		}
	}
	for _, t := range c.fp.Terms {
		if m := sh.byTerm[t]; m != nil {
			delete(m, k)
			if len(m) == 0 {
				delete(sh.byTerm, t)
			}
		}
	}
}

// victimKeys resolves the set of cached keys the change can affect through
// the reverse index: routes crossing a failed link, routes admitted by a
// removed or modified policy term, and — when the change broadens what is
// routable — cached negative answers. Shared by evictScoped (which deletes
// the victims) and the read-only plan path CollectAffected (which only
// reports them), so prediction and eviction can never disagree on the
// soundness rules. Caller holds mu.
func (sh *shard) victimKeys(c synthesis.Change) map[Key]struct{} {
	victims := make(map[Key]struct{})
	switch c.Kind {
	case synthesis.ChangeLinkDown:
		for k := range sh.byLink[synthesis.CanonicalPair(c.A, c.B)] {
			victims[k] = struct{}{}
		}
	case synthesis.ChangePolicy:
		if c.AllTerms {
			for tk, keys := range sh.byTerm {
				if tk.Advertiser == c.AD {
					for k := range keys {
						victims[k] = struct{}{}
					}
				}
			}
		} else {
			for _, tk := range c.RemovedTerms {
				for k := range sh.byTerm[tk] {
					victims[k] = struct{}{}
				}
			}
		}
	}
	if c.AffectsNegative() {
		for k := range sh.negs {
			victims[k] = struct{}{}
		}
	}
	return victims
}

// evictScoped drops every entry the change can affect, resolved through
// the reverse index, and returns the number of entries actually deleted —
// a victim key whose cache entry is already gone (e.g. dropped by a
// concurrent lookup's stale-on-sight deletion between index resolution and
// here, or a dangling index edge) is not counted as eviction work. gen is
// the current cache generation: victims still carrying it come out of the
// live count. Caller holds mu.
func (sh *shard) evictScoped(c synthesis.Change, gen uint64) int {
	deleted := 0
	for k := range sh.victimKeys(c) {
		if ent, ok := sh.lru.Peek(k); ok {
			sh.unindex(k, ent)
			sh.lru.Delete(k)
			deleted++
			if ent.gen == gen {
				sh.live--
			}
		}
	}
	return deleted
}

// retainedCurrent counts the shard's entries of generation gen — stale
// entries left behind by a prior full bump are dead weight awaiting lazy
// deletion, not retained work. Caller holds mu.
func (sh *shard) retainedCurrent(gen uint64) int {
	n := 0
	sh.lru.Range(func(_ Key, c cached) bool {
		if c.gen == gen {
			n++
		}
		return true
	})
	return n
}

// call is one in-flight singleflight computation.
type call struct {
	wg  sync.WaitGroup
	res Result
}

// sfKey scopes coalescing to a mutation epoch: a miss issued after any
// invalidation — full or scoped — never joins a computation started
// before it. The epoch (unlike the cache generation) is bumped by scoped
// mutations too, which is what keeps a post-mutation query from adopting
// a pre-mutation in-flight result for a dependent key.
type sfKey struct {
	epoch uint64
	key   Key
}

// Metrics is the server's atomic instrumentation. Read it via Snapshot.
type Metrics struct {
	queries         atomic.Uint64
	hits            atomic.Uint64
	misses          atomic.Uint64 // singleflight leaders = synthesis computations
	coalesced       atomic.Uint64 // waiters served by another query's computation
	failures        atomic.Uint64
	evictions       atomic.Uint64
	invalidations   atomic.Uint64
	scopedMutations atomic.Uint64
	scopedEvicted   atomic.Uint64
	scopedRetained  atomic.Uint64
	latency         metrics.Histogram
	synthLat        metrics.Histogram
}

// MetricsSnapshot is a point-in-time copy of the server counters.
type MetricsSnapshot struct {
	// Queries is the total query count; every query is exactly one of a
	// Hit, a Miss (it ran the synthesis), or a Coalesced wait.
	Queries uint64
	// Hits were served from the sharded cache.
	Hits uint64
	// Misses ran a synthesis computation (the singleflight leaders).
	Misses uint64
	// Coalesced joined another query's in-flight computation.
	Coalesced uint64
	// Failures are queries answered "no legal route".
	Failures uint64
	// Evictions counts cache entries dropped for capacity.
	Evictions uint64
	// Invalidations counts full generation bumps.
	Invalidations uint64
	// ScopedMutations counts MutateScoped calls that took the scoped
	// (non-full) eviction path.
	ScopedMutations uint64
	// ScopedEvicted is the total entries evicted by scoped mutations.
	ScopedEvicted uint64
	// ScopedRetained is the total entries retained across scoped
	// mutations (current-generation entries summed after each scoped
	// eviction; stale entries awaiting lazy deletion are excluded).
	ScopedRetained uint64
	// Latency digests per-query serving latency.
	Latency metrics.LatencySummary
	// SynthLatency digests the wall time of each synthesis computation
	// (strategy route + footprint extraction, under the strategy lock).
	// The plan engine projects the re-synthesis bill from it.
	SynthLatency metrics.LatencySummary
}

// HitRate returns the fraction of queries served without running a
// synthesis (cache hits plus coalesced waits).
func (s MetricsSnapshot) HitRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(s.Queries)
}

// Server is the concurrent route-query engine. Queries may be issued from
// any number of goroutines; Invalidate/Mutate may run concurrently with
// queries.
type Server struct {
	cfg     Config
	gen     atomic.Uint64
	epoch   atomic.Uint64 // coalescing scope; bumped by full AND scoped mutations
	shards  []shard
	mask    uint32
	met     Metrics
	workers chan struct{}
	sfMu    sync.Mutex
	sfCalls map[sfKey]*call
	// stratMu splits the strategy into a concurrent-read plane and an
	// exclusive-write plane: misses hold the read side while they search
	// (synthesis.Strategy's Route/Footprint/Stats are concurrent-safe),
	// mutations and rebuilds hold the write side. The generation and epoch
	// advance only under the write side, so a read-side holder sees both
	// frozen for the duration of its hold.
	stratMu sync.RWMutex
	// seqMu sequences cache inserts and the OnInsert hook among concurrent
	// read-side holders, so HA replication observes puts in one total
	// order; mutations order against inserts through stratMu itself (the
	// write side drains every reader first). Lock order is
	// stratMu(R) → seqMu → shard.mu, nowhere reversed.
	seqMu    sync.Mutex
	strategy synthesis.Strategy
	onInsert func(Key, Result, synthesis.Footprint)
	qlog     queryLog
}

// queryLog is the bounded ring of recent queries (Config.QueryLog). The
// cursor is an atomic ticket counter and each slot an atomic pointer, so
// hot-path queries never contend on a log lock: record is one atomic add
// plus one pointer store. buf is sized once at construction and never
// resized, so its length may be read without synchronization.
//
// Serially the semantics match the old mutex ring exactly: the last
// len(buf) requests in arrival order, oldest first. Under concurrent
// recording "arrival order" is ticket order; a reader racing writers may
// observe a slot whose store has not landed yet (skipped) or one already
// overwritten by a newer request (still a recent query, surfaced slightly
// early) — recent() is a workload sample, not a transaction log, and the
// plan engine tolerates both.
type queryLog struct {
	next atomic.Uint64
	buf  []atomic.Pointer[policy.Request]
}

func (q *queryLog) record(req policy.Request) {
	if len(q.buf) == 0 {
		return
	}
	t := q.next.Add(1) - 1
	r := req
	q.buf[t%uint64(len(q.buf))].Store(&r)
}

func (q *queryLog) recent() []policy.Request {
	n := uint64(len(q.buf))
	if n == 0 {
		return nil
	}
	t := q.next.Load()
	start := uint64(0)
	if t > n {
		start = t - n
	}
	var out []policy.Request
	for i := start; i < t; i++ {
		if p := q.buf[i%n].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// New wraps the strategy in a serving layer. The strategy must not be used
// directly while the server is live: the server owns it, driving the
// concurrent read plane from miss computations and taking exclusive access
// for every mutation (see synthesis.Strategy for the two-plane contract).
func New(strategy synthesis.Strategy, cfg Config) *Server {
	cfg = cfg.normalize()
	s := &Server{
		cfg:      cfg,
		shards:   make([]shard, cfg.Shards),
		mask:     uint32(cfg.Shards - 1),
		workers:  make(chan struct{}, cfg.Workers),
		sfCalls:  make(map[sfKey]*call),
		strategy: strategy,
	}
	perShard := cfg.Capacity
	if perShard > 0 {
		perShard = (cfg.Capacity + cfg.Shards - 1) / cfg.Shards
	}
	if perShard < 0 {
		perShard = 0 // unbounded
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lru = cache.NewLRU[Key, cached](perShard)
		sh.byLink = make(map[[2]ad.ID]map[Key]struct{})
		sh.byTerm = make(map[policy.Key]map[Key]struct{})
		sh.negs = make(map[Key]struct{})
		// Capacity evictions fire inside Put, i.e. under sh.mu: keep the
		// reverse index and the live count in step with the LRU.
		sh.lru.OnEvict = func(k Key, c cached) {
			sh.unindex(k, c)
			if c.gen == s.gen.Load() {
				sh.live--
			}
		}
	}
	if cfg.QueryLog > 0 {
		s.qlog.buf = make([]atomic.Pointer[policy.Request], cfg.QueryLog)
	}
	return s
}

// Generation returns the current cache generation (bumped by every
// invalidation).
func (s *Server) Generation() uint64 { return s.gen.Load() }

// Epoch returns the mutation epoch. Unlike the generation it is bumped by
// every mutation, full or scoped — but not by routine cache fills — so the
// plan/commit staleness guard compares it: a commit is refused exactly
// when a conflicting mutation landed after the plan was computed.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// RecentQueries returns the last Config.QueryLog queries in arrival order
// (oldest first), or nil when recording is disabled. The plan engine
// replays them as the recorded workload.
func (s *Server) RecentQueries() []policy.Request { return s.qlog.recent() }

// lookup serves k from the cache if a current-generation entry exists.
// Stale entries are deleted on sight.
func (s *Server) lookup(k Key, gen uint64) (Result, bool) {
	sh := &s.shards[k.hash()&s.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c, ok := sh.lru.Get(k)
	if !ok {
		return Result{}, false
	}
	if c.gen != gen {
		// gen was loaded before sh.mu was taken; re-check against the live
		// generation so an entry inserted after a concurrent bump is not
		// dropped from the count it was added under.
		if c.gen == s.gen.Load() {
			sh.live--
		}
		sh.unindex(k, c)
		sh.lru.Delete(k)
		return Result{}, false
	}
	return Result{Path: c.path, Found: c.found}, true
}

// insert stores a computed result tagged with the generation it was
// computed under and indexes its dependency footprint. Every caller loads
// gen while holding at least the read side of stratMu and inserts under
// the same hold; the generation advances only under the write side, so gen
// is always the current generation and the new entry always joins the live
// count.
func (s *Server) insert(k Key, gen uint64, res Result, fp synthesis.Footprint) {
	sh := &s.shards[k.hash()&s.mask]
	sh.mu.Lock()
	if old, ok := sh.lru.Peek(k); ok {
		sh.unindex(k, old)
		if old.gen == gen {
			sh.live--
		}
	}
	ent := cached{gen: gen, path: res.Path, found: res.Found, fp: fp}
	if sh.lru.Put(k, ent) {
		s.met.evictions.Add(1)
	}
	sh.live++
	sh.index(k, ent)
	sh.mu.Unlock()
}

// Query answers one route request. Safe for concurrent use.
func (s *Server) Query(req policy.Request) Result {
	start := time.Now()
	defer func() { s.met.latency.Observe(time.Since(start)) }()
	s.met.queries.Add(1)
	s.qlog.record(req)

	k := KeyOf(req)
	gen := s.gen.Load()
	if res, ok := s.lookup(k, gen); ok {
		s.met.hits.Add(1)
		if !res.Found {
			s.met.failures.Add(1)
		}
		return res
	}

	res, leader := s.coalesce(sfKey{epoch: s.epoch.Load(), key: k}, req)
	if leader {
		s.met.misses.Add(1)
	} else {
		s.met.coalesced.Add(1)
	}
	if !res.Found {
		s.met.failures.Add(1)
	}
	return res
}

// coalesce runs the synthesis for key at most once among concurrent
// callers; every caller gets the same result. Reports whether this caller
// was the leader (ran the computation).
//
// Panic safety: if the computation panics, the leader re-panics after
// deregistering the call and releasing every coalesced waiter — waiters
// observe the zero Result ("no legal route") rather than blocking forever
// on a wg.Done that would never come, and the sfCalls entry never leaks.
func (s *Server) coalesce(key sfKey, req policy.Request) (Result, bool) {
	s.sfMu.Lock()
	if c, ok := s.sfCalls[key]; ok {
		s.sfMu.Unlock()
		c.wg.Wait()
		return c.res, false
	}
	c := &call{}
	c.wg.Add(1)
	s.sfCalls[key] = c
	s.sfMu.Unlock()

	defer func() {
		s.sfMu.Lock()
		delete(s.sfCalls, key)
		s.sfMu.Unlock()
		c.wg.Done()
	}()
	c.res = s.compute(req)
	return c.res, true
}

// compute runs one synthesis on the strategy's read plane, then caches the
// result (negative results too — repeated queries for an unroutable pair
// must not re-run the search) under the generation current at computation
// time. Any number of computations for distinct keys run concurrently; a
// mutation takes the write side of stratMu and therefore waits for every
// in-flight search, so every in-flight result is either indexed before a
// scoped eviction scans (and evicted if dependent) or computed after the
// mutation (and already post-change) — never a stale result landing behind
// a completed scoped eviction. The insert and the OnInsert hook run under
// seqMu while still holding the read side: inserts form one total order
// among themselves, and order against mutations through stratMu, so HA
// replication replays puts and control mutations in stream order.
//
// Unlock via defer throughout: a panicking strategy must not leave the
// strategy lock held, or every later query and mutation would deadlock.
func (s *Server) compute(req policy.Request) Result {
	s.stratMu.RLock()
	defer s.stratMu.RUnlock()
	gen := s.gen.Load() // frozen for this hold: gen advances only write-side
	res, fp := s.search(req)
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	s.insert(KeyOf(req), gen, res, fp)
	if s.onInsert != nil {
		s.onInsert(KeyOf(req), res, fp)
	}
	return res
}

// search runs the strategy search and footprint extraction under a worker
// slot. The slot is acquired here — after the strategy lock, around the
// search alone — so the pool bounds actual synthesis work; goroutines
// blocked on a lock hold no slot. Caller holds the read side of stratMu.
func (s *Server) search(req policy.Request) (Result, synthesis.Footprint) {
	s.workers <- struct{}{}
	defer func() { <-s.workers }()

	synthStart := time.Now()
	defer func() { s.met.synthLat.Observe(time.Since(synthStart)) }()
	path, found := s.strategy.Route(req)
	res := Result{Path: path, Found: found}
	var fp synthesis.Footprint
	if found {
		fp = s.strategy.Footprint(req, path)
	}
	return res, fp
}

// Invalidate reacts to a topology or policy change: it bumps the cache
// generation (so every cached route is stale) and rebuilds the strategy.
// In-flight computations finish against whichever state they observed and
// are tagged accordingly; their results are never served across the bump.
func (s *Server) Invalidate() {
	s.Mutate(nil)
}

// Mutate applies fn — which may mutate the graph or policy database the
// strategy synthesizes over — with exclusive access, then invalidates the
// whole cache. Use this for unscoped changes on a live server; queries
// that hit the cache keep being served concurrently (from the pre-change
// generation) until the bump lands.
func (s *Server) Mutate(fn func()) {
	s.MutateScoped(synthesis.FullChange(), fn)
}

// MutateScoped applies fn with exclusive access, then evicts only the
// cache entries the change can affect, resolved through the reverse
// dependency index: routes crossing a failed link, routes admitted by a
// removed or modified policy term, and — when the change broadens what is
// routable (link restored, terms added) — cached negative answers.
// Everything else keeps serving with zero recomputation. The wrapped
// strategy gets the same change for partial invalidation of its own
// tables. A ChangeFull falls back to the legacy full generation bump.
//
// Returns the evicted and retained entry counts (0, 0 for a full bump,
// whose eviction is lazy).
func (s *Server) MutateScoped(ch synthesis.Change, fn func()) (evicted, retained int) {
	s.stratMu.Lock()
	defer s.stratMu.Unlock()
	if fn != nil {
		fn()
	}
	if ch.Kind == synthesis.ChangeFull {
		s.gen.Add(1)
		s.epoch.Add(1)
		// Every resident entry just went stale: zero the live counts
		// (the deletions themselves stay lazy).
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			sh.live = 0
			sh.mu.Unlock()
		}
		s.strategy.Invalidate()
		s.met.invalidations.Add(1)
		return 0, 0
	}
	// New queries must not join pre-mutation in-flight computations; those
	// finish under the read side of stratMu — which acquiring the write
	// side drained — and are therefore indexed before this point.
	s.epoch.Add(1)
	gen := s.gen.Load()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		evicted += sh.evictScoped(ch, gen)
		retained += sh.live
		sh.mu.Unlock()
	}
	s.strategy.InvalidateScoped(ch)
	s.met.scopedMutations.Add(1)
	s.met.scopedEvicted.Add(uint64(evicted))
	s.met.scopedRetained.Add(uint64(retained))
	return evicted, retained
}

// OnInsert registers a hook called — under the insert sequencer, in one
// total order with every other insert, and ordered against mutations by
// the strategy lock — every time a computed result is inserted into the
// cache. HA replication uses it to append cache puts to the sync backlog;
// entries installed via InstallEntry do not fire it (a follower must not
// re-replicate what it is replaying). Set it before the server starts
// serving.
func (s *Server) OnInsert(fn func(Key, Result, synthesis.Footprint)) {
	s.stratMu.Lock()
	defer s.stratMu.Unlock()
	s.onInsert = fn
}

// CacheEntry is one exported warm-cache entry: key, answer, and the
// dependency footprint that feeds the reverse index. DumpEntries returns
// them and InstallEntry re-creates them, which is how a primary ships its
// warm state to followers.
type CacheEntry struct {
	Key Key
	Res Result
	Fp  synthesis.Footprint
}

// InstallEntry inserts a replicated entry at the current generation,
// indexing its footprint exactly as a computed result would be: read side
// of the strategy lock (so installs order against mutations) plus the
// insert sequencer (so they order against concurrent computed inserts).
// The OnInsert hook does not fire.
func (s *Server) InstallEntry(k Key, res Result, fp synthesis.Footprint) {
	s.stratMu.RLock()
	defer s.stratMu.RUnlock()
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	s.insert(k, s.gen.Load(), res, fp)
}

// DumpEntries copies every current-generation cache entry under the write
// side of the strategy lock — draining every in-flight miss — so the dump
// is a consistent cut: no mutation or insert can interleave with it. fn
// (optional) runs first under the same lock hold — HA replication uses it
// to record the sync-backlog position the cut corresponds to, making
// snapshot + subsequent incremental entries seamless.
func (s *Server) DumpEntries(fn func()) []CacheEntry {
	s.stratMu.Lock()
	defer s.stratMu.Unlock()
	if fn != nil {
		fn()
	}
	gen := s.gen.Load()
	var out []CacheEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.lru.Range(func(k Key, c cached) bool {
			if c.gen == gen {
				out = append(out, CacheEntry{
					Key: k,
					Res: Result{Path: c.path, Found: c.found},
					Fp:  c.fp,
				})
			}
			return true
		})
		sh.mu.Unlock()
	}
	return out
}

// CollectAffected is the read-only half of scoped invalidation, built for
// the what-if plan engine. It runs prepare under the read side of the
// strategy lock — the engine uses it to clone the graph/policy state and
// derive the batch's changes from a cut no mutation can move (the epoch
// guard catches any mutation that lands after) — then resolves each
// returned change's victims through the same reverse indexes and soundness
// rules evictScoped applies, without deleting anything. Holding only the
// read side means concurrent queries keep being served, including misses;
// a routine fill landing mid-scan is invisible to the prediction, exactly
// as a fill landing between plan and commit always was (fills bump no
// epoch). It returns the victim entries per change (current generation
// only; stale leftovers of an old full bump are dead weight, not predicted
// work), the live current-generation entry count, and the epoch/generation
// the snapshot corresponds to. Nothing a query can observe is mutated, and
// the cost is proportional to the changes' blast radius (index fan-out),
// not to the cache size.
func (s *Server) CollectAffected(prepare func() ([]synthesis.Change, error)) (perChange [][]CacheEntry, live int, epoch, gen uint64, err error) {
	s.stratMu.RLock()
	defer s.stratMu.RUnlock()
	changes, err := prepare()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	gen = s.gen.Load()
	epoch = s.epoch.Load()
	perChange = make([][]CacheEntry, len(changes))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		live += sh.live
		for ci := range changes {
			for k := range sh.victimKeys(changes[ci]) {
				if ent, ok := sh.lru.Peek(k); ok && ent.gen == gen {
					perChange[ci] = append(perChange[ci], CacheEntry{
						Key: k,
						Res: Result{Path: ent.path, Found: ent.found},
						Fp:  ent.fp,
					})
				}
			}
		}
		sh.mu.Unlock()
	}
	return perChange, live, epoch, gen, nil
}

// StrategyStats returns the wrapped strategy's cumulative instrumentation.
// Stats is on the strategy's read plane, so the read side suffices: the
// snapshot never shears against a rebuild.
func (s *Server) StrategyStats() synthesis.StrategyStats {
	s.stratMu.RLock()
	defer s.stratMu.RUnlock()
	return s.strategy.Stats()
}

// StrategyName names the wrapped strategy.
func (s *Server) StrategyName() string { return s.strategy.Name() }

// CacheLen returns the total number of live cache entries (stale entries
// not yet lazily dropped included).
func (s *Server) CacheLen() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Snapshot returns a point-in-time copy of the server metrics.
func (s *Server) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Queries:         s.met.queries.Load(),
		Hits:            s.met.hits.Load(),
		Misses:          s.met.misses.Load(),
		Coalesced:       s.met.coalesced.Load(),
		Failures:        s.met.failures.Load(),
		Evictions:       s.met.evictions.Load(),
		Invalidations:   s.met.invalidations.Load(),
		ScopedMutations: s.met.scopedMutations.Load(),
		ScopedEvicted:   s.met.scopedEvicted.Load(),
		ScopedRetained:  s.met.scopedRetained.Load(),
		Latency:         s.met.latency.Snapshot(),
		SynthLatency:    s.met.synthLat.Snapshot(),
	}
}
