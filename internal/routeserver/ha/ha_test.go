package ha

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/ad"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/routeserver"
	"repro/internal/routeserver/daemon"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/topology"
	"repro/internal/trafficgen"
	"repro/internal/wire"
)

// world builds a moderate internet, a restricted policy regime, and a
// workload (the routeserver testbed recipe).
func world(seed int64, requests int) (*ad.Graph, *policy.DB, []policy.Request) {
	topo := topology.Generate(topology.Config{
		Seed: seed, Backbones: 2, RegionalsPerBackbone: 3,
		CampusesPerParent: 3, LateralProb: 0.25, BypassProb: 0.1,
	})
	g := topo.Graph
	db := policy.Generate(g, policy.GenConfig{
		Seed: seed + 1, SourceRestrictionProb: 0.4, SourceFraction: 0.5,
	})
	workload := trafficgen.Generate(g, trafficgen.Config{
		Seed: seed + 2, Requests: requests, StubsOnly: true,
		Model: "zipf", ZipfS: 1.4, QOSClasses: 2, UCIClasses: 2,
	})
	return g, db, workload
}

// replica is one group member's full stack, cloned from the shared world
// so failure injection on the primary reaches followers only through the
// sync stream.
type replica struct {
	node *Node
	be   *daemon.Backend
	srv  *routeserver.Server
	g    *ad.Graph
	db   *policy.DB
	d    *daemon.Daemon
	// clientAddr is the serving daemon's address ("" without daemons).
	clientAddr string
}

// newGroup builds and starts an N-replica group over clones of (g, db).
// Listeners bind 127.0.0.1:0 first so peers exchange real addresses.
// strat (nil = on-demand) builds each replica's synthesis strategy.
func newGroup(t *testing.T, count int, g *ad.Graph, db *policy.DB, withDaemons bool,
	strat func(*ad.Graph, *policy.DB) synthesis.Strategy, tweak func(*Config)) []*replica {
	if strat == nil {
		strat = func(g *ad.Graph, db *policy.DB) synthesis.Strategy {
			return synthesis.NewOnDemand(g, db)
		}
	}
	t.Helper()
	lns := make([]net.Listener, count)
	peers := make([]Peer, count)
	dlns := make([]net.Listener, count)
	for i := 0; i < count; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = Peer{ID: uint32(i + 1), HAAddr: ln.Addr().String()}
		if withDaemons {
			dln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			dlns[i] = dln
			peers[i].ClientAddr = dln.Addr().String()
		}
	}
	reps := make([]*replica, count)
	for i := 0; i < count; i++ {
		gc := g.Clone()
		dbc := db.Clone()
		srv := routeserver.New(strat(gc, dbc), routeserver.Config{})
		dp, err := routeserver.NewDataPlane(pgstate.Config{Kind: pgstate.Soft, TTL: 30 * sim.Second})
		if err != nil {
			t.Fatal(err)
		}
		be := daemon.NewBackend(srv, dp, gc, dbc)
		var d *daemon.Daemon
		addr := ""
		if withDaemons {
			d = daemon.New(be, daemon.Config{})
			addr = dlns[i].Addr().String()
			dln := dlns[i]
			go d.Serve(dln)
		}
		cfg := Config{
			ID: uint32(i + 1), Peers: peers,
			HeartbeatEvery:   10 * time.Millisecond,
			HeartbeatTimeout: 80 * time.Millisecond,
			Listener:         lns[i],
		}
		if tweak != nil {
			tweak(&cfg)
		}
		node, err := NewNode(cfg, be, d)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = &replica{node: node, be: be, srv: srv, g: gc, db: dbc, d: d, clientAddr: addr}
	}
	for _, r := range reps {
		r.node.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.node.Stop()
			if r.d != nil {
				r.d.Kill()
			}
		}
	})
	return reps
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", msg)
}

// synced reports whether follower has applied everything primary logged.
func synced(primary, follower *replica) bool {
	latest := primary.node.BacklogLatest()
	return latest > 0 && follower.node.AppliedSeq() == latest
}

// dumpMap indexes a cache dump by key.
func dumpMap(srv *routeserver.Server) map[routeserver.Key]routeserver.Result {
	m := make(map[routeserver.Key]routeserver.Result)
	for _, e := range srv.DumpEntries(nil) {
		m[e.Key] = e.Res
	}
	return m
}

func TestReplicationStreamsWarmCache(t *testing.T) {
	g, db, workload := world(31, 300)
	reps := newGroup(t, 2, g, db, false, nil, nil)
	prim, fol := reps[0], reps[1]

	routeserver.ServePhase(prim.srv, workload, 4)
	waitFor(t, 5*time.Second, func() bool { return synced(prim, fol) }, "follower sync")

	want := dumpMap(prim.srv)
	got := dumpMap(fol.srv)
	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("follower cache has %d entries, primary %d", len(got), len(want))
	}
	for k, res := range want {
		fres, ok := got[k]
		if !ok || fres.Found != res.Found || !fres.Path.Equal(res.Path) {
			t.Fatalf("key %+v: follower %+v, primary %+v (present %v)", k, fres, res, ok)
		}
	}
}

// TestBacklogCutoverToSnapshot drives the sender over a raw wire
// connection: a cursor behind the put-trim horizon must get a snapshot
// (marker, entries, done), a cursor at the tip must get incremental
// entries with no snapshot.
func TestBacklogCutoverToSnapshot(t *testing.T) {
	g, db, workload := world(33, 400)
	reps := newGroup(t, 1, g, db, false, nil, func(c *Config) { c.BacklogCap = 8 })
	prim := reps[0]

	// Warm well past the cap so old puts are trimmed.
	routeserver.ServePhase(prim.srv, workload, 4)
	bl := prim.node.currentBacklog()
	if bl.trimmedThrough == 0 {
		t.Fatalf("workload did not overflow the backlog cap (latest %d)", bl.latest())
	}

	dial := func(from uint64) (net.Conn, *bufio.Reader) {
		conn, err := net.Dial("tcp", prim.node.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		bw := bufio.NewWriter(conn)
		if err := wire.WriteMessage(bw, &wire.Hello{
			ReplicaID: 99, Mode: wire.ModeSync, FromSeq: from,
		}); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		return conn, bufio.NewReader(conn)
	}

	// Laggard cursor: strictly between genesis and the trim horizon.
	_, br := dial(1)
	m, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := m.(*wire.SyncSnapshot)
	if !ok || snap.Done {
		t.Fatalf("laggard's first message = %#v, want snapshot marker", m)
	}
	for i := uint32(0); i < snap.Count; i++ {
		if m, err = wire.ReadMessage(br); err != nil {
			t.Fatalf("snapshot entry %d: %v", i, err)
		}
		e, ok := m.(*wire.SyncEntry)
		if !ok {
			t.Fatalf("snapshot entry %d = %#v", i, m)
		}
		if e.Op == wire.SyncPut && e.Seq != snap.Seq {
			t.Fatalf("snapshot put carries seq %d, want cut seq %d", e.Seq, snap.Seq)
		}
	}
	if m, err = wire.ReadMessage(br); err != nil {
		t.Fatal(err)
	}
	if done, ok := m.(*wire.SyncSnapshot); !ok || !done.Done || done.Seq != snap.Seq {
		t.Fatalf("after %d entries got %#v, want done marker at %d", snap.Count, m, snap.Seq)
	}

	// Tip cursor: the next insert arrives incrementally, no snapshot.
	_, br2 := dial(prim.node.BacklogLatest())
	var fresh policy.Request
	seen := map[routeserver.Key]bool{}
	for _, r := range workload {
		seen[routeserver.KeyOf(r)] = true
	}
	for _, r := range workload {
		r.Dst, r.Src = r.Src, r.Dst
		if !seen[routeserver.KeyOf(r)] {
			fresh = r
			break
		}
	}
	prim.be.Query(fresh)
	if m, err = wire.ReadMessage(br2); err != nil {
		t.Fatal(err)
	}
	if e, ok := m.(*wire.SyncEntry); !ok || e.Op != wire.SyncPut {
		t.Fatalf("tip cursor's first message = %#v, want incremental put", m)
	}
}

func TestHeartbeatLossPromotesLowestLiveReplica(t *testing.T) {
	g, db, workload := world(35, 200)
	reps := newGroup(t, 3, g, db, false, nil, nil)
	prim, r2, r3 := reps[0], reps[1], reps[2]

	routeserver.ServePhase(prim.srv, workload, 4)
	waitFor(t, 5*time.Second, func() bool { return synced(prim, r2) && synced(prim, r3) }, "followers sync")
	warm := r2.srv.CacheLen()
	if warm == 0 {
		t.Fatal("follower cache cold before kill")
	}

	prim.node.Kill()

	// Replica 2 — the lowest live ID — must promote; replica 3 must not,
	// and must adopt 2 as primary under a bumped epoch.
	waitFor(t, 5*time.Second, func() bool {
		return r2.node.IsPrimary() && !r3.node.IsPrimary() && r3.node.Primary() == 2
	}, "replica 2 promotion")
	if e := r2.node.Epoch(); e < 2 {
		t.Fatalf("promotion did not bump epoch: %d", e)
	}
	if r2.srv.CacheLen() < warm {
		t.Fatalf("promotion lost warm state: %d -> %d entries", warm, r2.srv.CacheLen())
	}

	// Replication resumes under the new primary: replica 3 resyncs into
	// the new epoch's sequence space. (The promoted cache is warm, so
	// plain re-queries would hit and log nothing — force misses with a
	// replicated full invalidation.)
	r2.be.Invalidate()
	routeserver.ServePhase(r2.srv, workload[:50], 4)
	waitFor(t, 5*time.Second, func() bool { return synced(r2, r3) }, "resync to new primary")
}

func TestNotPrimaryRedirect(t *testing.T) {
	g, db, workload := world(37, 100)
	reps := newGroup(t, 2, g, db, true, nil, nil)
	prim, fol := reps[0], reps[1]

	// A plain client on the follower is redirected, with the primary's
	// client address in the error; stats are still served locally.
	cl, err := daemon.Dial("tcp", fol.clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Query(workload[0])
	np, ok := err.(*daemon.NotPrimaryError)
	if !ok {
		t.Fatalf("query on follower = %v, want NotPrimaryError", err)
	}
	if np.PrimaryID != 1 || np.Addr != prim.clientAddr {
		t.Fatalf("redirect names %d at %q, want 1 at %q", np.PrimaryID, np.Addr, prim.clientAddr)
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("stats on follower: %v", err)
	}

	// A failover client aimed at the follower transparently follows the
	// redirect and answers from the primary.
	fc := daemon.DialFailover("tcp", []string{fol.clientAddr, prim.clientAddr}, 2*time.Second, 7)
	defer fc.Close()
	res, err := fc.Query(workload[0])
	if err != nil {
		t.Fatalf("failover query: %v", err)
	}
	want := synthesis.FindRoute(prim.g, prim.db, workload[0])
	if res.Found != want.Found || (want.Found && !res.Path.Equal(want.Path)) {
		t.Fatalf("failover query = %+v, oracle %+v", res, want)
	}
	if st := fc.RecoveryStats(); st.Redirects == 0 {
		t.Fatalf("failover stats %+v, want a redirect", st)
	}
}

func TestDrainDuringFailover(t *testing.T) {
	g, db, workload := world(39, 100)
	reps := newGroup(t, 2, g, db, true, nil, nil)
	prim, fol := reps[0], reps[1]

	routeserver.ServePhase(prim.srv, workload, 4)
	waitFor(t, 5*time.Second, func() bool { return synced(prim, fol) }, "follower sync")

	// Kill the primary; while the follower's election clock is still
	// running, drain it directly. The drain must be served (acked, then
	// completed) even though the replica is mid-failover.
	prim.node.Kill()
	cl, err := daemon.Dial("tcp", fol.clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Drain(); err != nil {
		t.Fatalf("drain during failover: %v", err)
	}
	select {
	case <-fol.d.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not complete during failover")
	}
	// The replication machinery is independent of the serving daemon:
	// the drained follower still promotes.
	waitFor(t, 5*time.Second, func() bool { return fol.node.IsPrimary() }, "drained follower promotion")
}

// slowStrategy widens the synthesis window so computations straddle
// concurrent mutations and snapshot cuts.
type slowStrategy struct {
	synthesis.Strategy
	delay time.Duration
}

func (s slowStrategy) Route(req policy.Request) (ad.Path, bool) {
	time.Sleep(s.delay)
	return s.Strategy.Route(req)
}

// TestSyncSnapshotUnderConcurrentScopedMutations is the replication
// race-detector workout: while the primary serves a concurrent workload
// and a churn goroutine interleaves scoped link failures, restorations,
// and policy changes, a follower with a tiny backlog cap syncs — forced
// through snapshot cutovers mid-churn. The follower must converge to the
// primary's exact world state, and every synced cache entry must be
// legal in it.
func TestSyncSnapshotUnderConcurrentScopedMutations(t *testing.T) {
	g, db, workload := world(41, 300)
	target := ad.ID(0)
	for _, info := range g.ADs() {
		if info.Class == ad.Transit && len(db.Terms(info.ID)) > 0 {
			target = info.ID
			break
		}
	}
	if target == 0 {
		t.Fatal("no transit with terms")
	}
	links := g.Links()
	lat := links[len(links)-1]

	reps := newGroup(t, 2, g, db, false,
		func(g *ad.Graph, db *policy.DB) synthesis.Strategy {
			return slowStrategy{synthesis.NewOnDemand(g, db), 20 * time.Microsecond}
		},
		func(c *Config) { c.BacklogCap = 16 })
	prim, fol := reps[0], reps[1]

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := c; i < len(workload); i += 4 {
					prim.be.Query(workload[i])
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, _, _, err := prim.be.Fail(lat.A, lat.B); err != nil {
				panic(err)
			}
			if _, _, err := prim.be.Restore(lat.A, lat.B); err != nil {
				panic(err)
			}
			prim.be.SetPolicy(target, uint32(10+i))
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	waitFor(t, 10*time.Second, func() bool { return synced(prim, fol) }, "follower convergence")

	// World convergence: the follower's graph holds exactly the primary's
	// links (every fail/restore replayed).
	if got, want := linkSet(fol.g), linkSet(prim.g); got != want {
		t.Fatalf("follower links diverged:\n got %s\nwant %s", got, want)
	}
	// Every synced entry is legal in the converged world: positives carry
	// valid, policy-legal paths; negatives only where no route exists.
	checked := 0
	for _, e := range fol.srv.DumpEntries(nil) {
		req := e.Key.Request()
		if e.Res.Found {
			if !e.Res.Path.Valid(fol.g) || !fol.db.PathLegal(e.Res.Path, req) {
				t.Fatalf("synced entry %v -> %v is illegal", req, e.Res.Path)
			}
		} else if res := synthesis.FindRoute(fol.g, fol.db, req); res.Found {
			t.Fatalf("synced negative %v but oracle routes %v", req, res.Path)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("follower synced no entries")
	}
}

// linkSet renders a graph's link set canonically for comparison.
func linkSet(g *ad.Graph) string {
	ls := g.Links()
	keys := make([]string, len(ls))
	for i, l := range ls {
		c := l.Canonical()
		keys[i] = fmt.Sprintf("%d-%d/%d", c.A, c.B, c.Cost)
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

func TestBacklogTrimsPutsKeepsCtls(t *testing.T) {
	bl := newBacklog(2)
	bl.append(wire.SyncEntry{Op: wire.SyncPut}) // seq 1
	bl.append(wire.SyncEntry{Op: wire.SyncCtl}) // seq 2
	bl.append(wire.SyncEntry{Op: wire.SyncPut}) // seq 3
	bl.append(wire.SyncEntry{Op: wire.SyncPut}) // seq 4: trims seq 1
	bl.append(wire.SyncEntry{Op: wire.SyncCtl}) // seq 5
	bl.append(wire.SyncEntry{Op: wire.SyncPut}) // seq 6: trims seq 3

	if bl.latest() != 6 {
		t.Fatalf("latest = %d", bl.latest())
	}
	if bl.trimmedThrough != 3 {
		t.Fatalf("trimmedThrough = %d, want 3", bl.trimmedThrough)
	}
	// A cursor behind the horizon cannot be served incrementally.
	if _, ok := bl.from(1); ok {
		t.Fatal("cursor 1 served incrementally past trim")
	}
	// A cursor at the horizon can: everything after it is retained.
	ents, ok := bl.from(3)
	if !ok || len(ents) != 3 {
		t.Fatalf("from(3) = %d entries, ok=%v; want 3 (seqs 4,5,6)", len(ents), ok)
	}
	// Control history is complete across trims.
	ctls := bl.ctlsIn(0, 6)
	if len(ctls) != 2 || ctls[0].Seq != 2 || ctls[1].Seq != 5 {
		t.Fatalf("ctlsIn = %+v, want seqs 2 and 5", ctls)
	}
}

func TestElectionDeterminism(t *testing.T) {
	mk := func(id uint32) *Node {
		peers := []Peer{
			{ID: 1, HAAddr: "127.0.0.1:0"},
			{ID: 2, HAAddr: "127.0.0.1:0"},
			{ID: 3, HAAddr: "127.0.0.1:0"},
		}
		srv := routeserver.New(synthesis.NewOnDemand(ad.NewGraph(), policy.NewDB()), routeserver.Config{})
		dp, err := routeserver.NewDataPlane(pgstate.Config{Kind: pgstate.Soft, TTL: 30 * sim.Second})
		if err != nil {
			t.Fatal(err)
		}
		be := daemon.NewBackend(srv, dp, ad.NewGraph(), policy.NewDB())
		n, err := NewNode(Config{ID: id, Peers: peers, HeartbeatTimeout: 100 * time.Millisecond}, be, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Stop() })
		return n
	}
	now := time.Now()
	stale := now.Add(-time.Second)

	// Primary dead, lower-ID peer live: replica 3 must defer to 2.
	n3 := mk(3)
	n3.lastSeen[1] = stale
	n3.lastSeen[2] = now
	n3.electTick(now)
	if n3.IsPrimary() {
		t.Fatal("replica 3 promoted over live replica 2")
	}
	// Primary dead, lower-ID peer dead too: replica 3 is the lowest live.
	n3.lastSeen[2] = stale
	n3.electTick(now)
	if !n3.IsPrimary() || n3.Epoch() != 2 {
		t.Fatalf("replica 3 did not promote (primary=%v epoch=%d)", n3.IsPrimary(), n3.Epoch())
	}

	// Replica 2 promotes regardless of 3's liveness.
	n2 := mk(2)
	n2.lastSeen[1] = stale
	n2.lastSeen[3] = now
	n2.electTick(now)
	if !n2.IsPrimary() {
		t.Fatal("replica 2 did not promote")
	}

	// Epoch tie-break: a promotion claim from a lower ID at the same
	// epoch wins; a claim from a higher ID loses.
	n2.adopt(2, 3)
	if !n2.IsPrimary() || n2.Primary() != 2 {
		t.Fatal("higher-ID claim displaced the lower-ID primary at the same epoch")
	}
	n3.adopt(2, 2)
	if n3.IsPrimary() || n3.Primary() != 2 {
		t.Fatal("lower-ID claim at the same epoch was not adopted")
	}
}

// TestParallelMissStreamOrderConvergence pins the replication total-order
// invariant under the parallel miss path: with misses synthesizing
// concurrently on the primary, cache puts are sequenced into the backlog
// by the insert sequencer and mutations order against them through the
// write side of the strategy lock, so backlog order must equal apply
// order. The teeth: after the run quiesces and the follower drains the
// stream, the two cache dumps must be *identical* — an insert that raced
// a mutation into the wrong stream position would leave an entry the
// primary evicted resident on the follower (or vice versa), and this
// map comparison would catch exactly that.
func TestParallelMissStreamOrderConvergence(t *testing.T) {
	g, db, workload := world(53, 300)
	links := g.Links()
	lat := links[len(links)-1]

	reps := newGroup(t, 2, g, db, false,
		func(g *ad.Graph, db *policy.DB) synthesis.Strategy {
			return slowStrategy{synthesis.NewOnDemand(g, db), 20 * time.Microsecond}
		}, nil)
	prim, fol := reps[0], reps[1]

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := c; i < len(workload); i += 4 {
					prim.be.Query(workload[i])
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, _, _, err := prim.be.Fail(lat.A, lat.B); err != nil {
				panic(err)
			}
			if _, _, err := prim.be.Restore(lat.A, lat.B); err != nil {
				panic(err)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	waitFor(t, 10*time.Second, func() bool { return synced(prim, fol) }, "follower convergence")

	pd, fd := dumpMap(prim.srv), dumpMap(fol.srv)
	if len(pd) == 0 {
		t.Fatal("primary served nothing")
	}
	if len(pd) != len(fd) {
		t.Fatalf("dumps diverged: primary %d entries, follower %d", len(pd), len(fd))
	}
	for k, res := range pd {
		fres, ok := fd[k]
		if !ok {
			t.Fatalf("follower missing entry %v", k)
		}
		if fres.Found != res.Found || (res.Found && !fres.Path.Equal(res.Path)) {
			t.Fatalf("entry %v diverged: primary %+v, follower %+v", k, res, fres)
		}
	}
}
