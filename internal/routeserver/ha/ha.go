// Package ha replicates a route-server daemon across an N-replica group
// (ROADMAP: "replicated route servers with failover"). One replica is
// primary: it serves clients and streams its warm route cache — every
// entry with the dependency footprint that feeds scoped invalidation —
// plus its control-plane mutations to the followers over internal/wire.
// Followers redirect clients to the primary (NotPrimary), apply the sync
// stream through their own Backend (so scoped eviction replays naturally),
// and watch the primary via heartbeats. When the primary goes silent past
// the heartbeat timeout, the lowest-ID live replica promotes itself under
// a bumped epoch; its cache is warm by construction, so the promoted
// follower serves at nearly the dead primary's hit rate instead of
// recomputing the working set from scratch.
//
// Replication ordering: cache puts are appended to the sync backlog by
// the server's OnInsert hook and control mutations by the backend's
// replicator hook, both of which run under the server's strategy lock —
// so backlog order is exactly the order inserts and mutations interleaved
// on the primary, and followers replay them in that order. The backlog
// trims old cache puts past a cap (control mutations are never trimmed);
// a follower whose cursor precedes the trim horizon receives a snapshot
// instead: the missing control history, then every current cache entry,
// cut consistently under the strategy lock.
//
// Known limitation (accepted, documented in DESIGN.md): there is no
// epoch-fenced log truncation, so a follower that had applied more of the
// old primary's stream than the newly promoted follower can transiently
// diverge in control state until operators reconcile; every follower
// resyncs from scratch (FromSeq 0 → snapshot) on each epoch change, which
// restores cache consistency with the new primary immediately.
package ha

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ad"
	"repro/internal/routeserver"
	"repro/internal/routeserver/daemon"
	"repro/internal/synthesis"
	"repro/internal/wire"
)

// Peer describes one replica in the group.
type Peer struct {
	// ID is the replica's unique identifier; elections pick the lowest
	// live ID.
	ID uint32
	// HAAddr is the replica's replication listener (heartbeat + sync).
	HAAddr string
	// ClientAddr is the replica's serving daemon address, handed to
	// clients in NotPrimary redirects.
	ClientAddr string
}

// Config parameterizes a Node.
type Config struct {
	// ID is this replica's identifier; it must appear in Peers.
	ID uint32
	// Peers is the full group membership, this replica included.
	Peers []Peer
	// Primary is the initial primary's ID (default: the lowest peer ID).
	Primary uint32
	// HeartbeatEvery is the beacon interval (default 50ms).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout declares a silent replica dead (default 6x
	// HeartbeatEvery). It also grace-periods election at startup.
	HeartbeatTimeout time.Duration
	// BacklogCap bounds retained cache-put backlog entries; a follower
	// lagging past it cuts over to a snapshot (default 4096).
	BacklogCap int
	// Listener optionally supplies a pre-bound replication listener
	// (tests bind :0 first so peers can exchange real addresses);
	// otherwise the node listens on its own Peer.HAAddr.
	Listener net.Listener
}

func (c Config) normalize() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 50 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 6 * c.HeartbeatEvery
	}
	if c.BacklogCap <= 0 {
		c.BacklogCap = 4096
	}
	if c.Primary == 0 {
		low := uint32(0)
		for _, p := range c.Peers {
			if low == 0 || p.ID < low {
				low = p.ID
			}
		}
		c.Primary = low
	}
	return c
}

// Node is one replica: a route-server backend (and optionally its
// serving daemon) plus the replication machinery. Create with NewNode,
// then Start; Stop winds it down gracefully, Kill abruptly (the crash
// the rest of the group fails over around).
type Node struct {
	cfg Config
	be  *daemon.Backend
	srv *routeserver.Server
	d   *daemon.Daemon // may be nil (no serving front end)

	ln net.Listener

	mu        sync.Mutex
	epoch     uint64
	primary   uint32
	lastSeen  map[uint32]time.Time
	conns     map[net.Conn]struct{}
	syncConn  net.Conn // the follower's live sync connection, if any
	bl        *backlog
	promoteCh chan struct{} // closed+replaced on self-promotion

	primaryNow atomic.Bool
	applied    atomic.Uint64 // follower cursor: highest applied backlog seq
	limit      atomic.Uint64 // test hook: apply gate (0 = no gate)

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewNode wires a replica over its backend and (optional) daemon and
// binds the replication listener. Call Start to join the group.
func NewNode(cfg Config, be *daemon.Backend, d *daemon.Daemon) (*Node, error) {
	cfg = cfg.normalize()
	var self *Peer
	for i := range cfg.Peers {
		if cfg.Peers[i].ID == cfg.ID {
			self = &cfg.Peers[i]
		}
	}
	if self == nil {
		return nil, fmt.Errorf("ha: replica %d not in peer list", cfg.ID)
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", self.HAAddr)
		if err != nil {
			return nil, fmt.Errorf("ha: listen %s: %w", self.HAAddr, err)
		}
	}
	n := &Node{
		cfg:       cfg,
		be:        be,
		srv:       be.Server(),
		d:         d,
		ln:        ln,
		epoch:     1,
		primary:   cfg.Primary,
		lastSeen:  make(map[uint32]time.Time),
		conns:     make(map[net.Conn]struct{}),
		bl:        newBacklog(cfg.BacklogCap),
		promoteCh: make(chan struct{}),
		stop:      make(chan struct{}),
	}
	n.primaryNow.Store(cfg.Primary == cfg.ID)
	return n, nil
}

// Addr returns the replication listener's address (useful with :0).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// IsPrimary reports whether this replica currently leads.
func (n *Node) IsPrimary() bool { return n.primaryNow.Load() }

// Epoch returns the current election epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Primary returns the replica this node believes leads the current epoch.
func (n *Node) Primary() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.primary
}

// AppliedSeq returns the follower cursor: the highest backlog sequence
// applied locally. Experiments use it as a sync barrier.
func (n *Node) AppliedSeq() uint64 { return n.applied.Load() }

// BacklogLatest returns the last sequence this node's backlog assigned
// (0 unless it has been primary).
func (n *Node) BacklogLatest() uint64 { return n.currentBacklog().latest() }

// LimitApply gates the follower's apply loop at seq for failure
// injection: entries past it block until the gate is raised. 0 removes
// the gate.
func (n *Node) LimitApply(seq uint64) { n.limit.Store(seq) }

// Start installs the replication hooks and launches the group machinery:
// the replication listener, one heartbeat dialer per peer, the follower
// sync loop, and the election ticker.
func (n *Node) Start() {
	n.srv.OnInsert(func(k routeserver.Key, res routeserver.Result, fp synthesis.Footprint) {
		if !n.primaryNow.Load() {
			return
		}
		n.currentBacklog().append(wire.SyncEntry{
			Op: wire.SyncPut, Req: k.Request(), Found: res.Found, Path: res.Path,
			Links: fp.Links, Terms: fp.Terms,
		})
	})
	n.be.SetReplicator(func(op uint8, a, b ad.ID, cost uint32) {
		if !n.primaryNow.Load() {
			return
		}
		n.currentBacklog().append(wire.SyncEntry{
			Op: wire.SyncCtl, CtlOp: op, A: a, B: b, Cost: cost,
		})
	})
	if n.d != nil {
		n.d.SetRedirect(func() (uint32, string, bool) {
			if n.primaryNow.Load() {
				return 0, "", false
			}
			n.mu.Lock()
			p := n.primary
			n.mu.Unlock()
			return p, n.clientAddrOf(p), true
		})
	}

	// Startup grace: treat every peer as just-seen so elections wait a
	// full timeout for the group to come up.
	now := time.Now()
	n.mu.Lock()
	for _, p := range n.cfg.Peers {
		if p.ID != n.cfg.ID {
			n.lastSeen[p.ID] = now
		}
	}
	n.mu.Unlock()

	n.wg.Add(1)
	go n.acceptLoop()
	for _, p := range n.cfg.Peers {
		if p.ID == n.cfg.ID {
			continue
		}
		n.wg.Add(1)
		go n.heartbeatLoop(p)
	}
	n.wg.Add(1)
	go n.syncLoop()
	n.wg.Add(1)
	go n.electionLoop()
}

// Stop winds the replication machinery down: close the listener and
// every replication connection, stop the loops. It does not drain the
// serving daemon (callers own that).
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.ln.Close()
	n.mu.Lock()
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
}

// Kill is the crash model: the serving daemon's sessions are severed
// without flushing and the replication machinery torn down, exactly what
// the rest of the group (and its clients) fail over around.
func (n *Node) Kill() {
	if n.d != nil {
		n.d.Kill()
	}
	n.Stop()
}

// currentBacklog returns the backlog for the current epoch (swapped on
// self-promotion).
func (n *Node) currentBacklog() *backlog {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bl
}

// clientAddrOf resolves a replica's serving address.
func (n *Node) clientAddrOf(id uint32) string {
	for _, p := range n.cfg.Peers {
		if p.ID == id {
			return p.ClientAddr
		}
	}
	return ""
}

// haAddrOf resolves a replica's replication address.
func (n *Node) haAddrOf(id uint32) string {
	for _, p := range n.cfg.Peers {
		if p.ID == id {
			return p.HAAddr
		}
	}
	return ""
}

// view returns the current (epoch, primary).
func (n *Node) view() (uint64, uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch, n.primary
}

// track/untrack register replication connections for teardown.
func (n *Node) track(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case <-n.stop:
		return false
	default:
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Node) untrack(c net.Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// observe records a liveness proof for peer id.
func (n *Node) observe(id uint32) {
	n.mu.Lock()
	n.lastSeen[id] = time.Now()
	n.mu.Unlock()
}

// adopt merges a peer's (epoch, primary) claim: a strictly higher epoch
// always wins, and on an epoch tie the lower primary ID wins (the
// deterministic tie-break that collapses split brains from symmetric
// elections). Demotion and follower resync both flow from here.
func (n *Node) adopt(epoch uint64, primary uint32) {
	n.mu.Lock()
	if epoch < n.epoch || (epoch == n.epoch && primary >= n.primary) {
		n.mu.Unlock()
		return
	}
	wasPrimary := n.primary == n.cfg.ID
	n.epoch, n.primary = epoch, primary
	becomePrimary := primary == n.cfg.ID
	sc := n.syncConn
	n.syncConn = nil
	n.mu.Unlock()

	n.primaryNow.Store(becomePrimary)
	if !becomePrimary {
		// Resync against the new primary from scratch: its backlog is a
		// fresh sequence space and our cursor means nothing in it.
		n.applied.Store(0)
		if sc != nil {
			sc.Close() // kick the sync loop onto the new primary
		}
		_ = wasPrimary // a demoted primary simply starts following
	}
}

// electionLoop promotes this node when the primary has gone silent and
// no lower-ID replica is live to take over.
func (n *Node) electionLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		n.electTick(time.Now())
	}
}

// electTick runs one election check at the given instant.
func (n *Node) electTick(now time.Time) {
	n.mu.Lock()
	if n.primary == n.cfg.ID {
		n.mu.Unlock()
		return
	}
	if now.Sub(n.lastSeen[n.primary]) <= n.cfg.HeartbeatTimeout {
		n.mu.Unlock()
		return
	}
	// The primary is dead to us. Promote only if no live replica has a
	// lower ID than ours (the dead primary excluded).
	for _, p := range n.cfg.Peers {
		if p.ID == n.cfg.ID || p.ID == n.primary {
			continue
		}
		if p.ID < n.cfg.ID && now.Sub(n.lastSeen[p.ID]) <= n.cfg.HeartbeatTimeout {
			n.mu.Unlock()
			return
		}
	}
	n.epoch++
	n.primary = n.cfg.ID
	n.bl = newBacklog(n.cfg.BacklogCap)
	close(n.promoteCh)
	n.promoteCh = make(chan struct{})
	sc := n.syncConn
	n.syncConn = nil
	n.mu.Unlock()

	n.primaryNow.Store(true)
	if sc != nil {
		sc.Close()
	}
}

// promoteSignal returns a channel closed at the next self-promotion.
func (n *Node) promoteSignal() <-chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.promoteCh
}

// heartbeatLoop dials peer and beacons this node's liveness and election
// view every interval; a self-promotion is pushed immediately as a
// Promote message rather than waiting out the tick.
func (n *Node) heartbeatLoop(p Peer) {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatEvery)
	defer t.Stop()
	var conn net.Conn
	var bw *bufio.Writer
	drop := func() {
		if conn != nil {
			n.untrack(conn)
			conn.Close()
			conn, bw = nil, nil
		}
	}
	defer drop()
	for {
		promoted := false
		select {
		case <-n.stop:
			return
		case <-t.C:
		case <-n.promoteSignal():
			promoted = true
		}
		if conn == nil {
			c, err := net.DialTimeout("tcp", p.HAAddr, n.cfg.HeartbeatTimeout)
			if err != nil {
				continue
			}
			conn, bw = c, bufio.NewWriter(c)
			if !n.track(conn) {
				conn.Close()
				return
			}
			epoch, _ := n.view()
			if err := wire.WriteMessage(bw, &wire.Hello{
				ReplicaID: n.cfg.ID, Mode: wire.ModeHeartbeat, Epoch: epoch,
			}); err != nil {
				drop()
				continue
			}
		}
		epoch, primary := n.view()
		var err error
		if promoted && primary == n.cfg.ID {
			err = wire.WriteMessage(bw, &wire.Promote{ReplicaID: n.cfg.ID, Epoch: epoch})
		}
		if err == nil {
			err = wire.WriteMessage(bw, &wire.Heartbeat{
				ReplicaID: n.cfg.ID, Epoch: epoch, Primary: primary,
				Seq: n.currentBacklog().latest(),
			})
		}
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			drop()
		}
	}
}

// acceptLoop serves inbound replication connections: heartbeat receivers
// and sync senders, discriminated by the Hello.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		if !n.track(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer n.untrack(conn)
			defer conn.Close()
			n.handleConn(conn)
		}()
	}
}

// handleConn runs one inbound replication connection.
func (n *Node) handleConn(conn net.Conn) {
	m, err := wire.ReadMessage(conn)
	if err != nil {
		return
	}
	hello, ok := m.(*wire.Hello)
	if !ok {
		return
	}
	switch hello.Mode {
	case wire.ModeHeartbeat:
		n.observe(hello.ReplicaID)
		for {
			m, err := wire.ReadMessage(conn)
			if err != nil {
				return
			}
			switch hb := m.(type) {
			case *wire.Heartbeat:
				n.observe(hb.ReplicaID)
				n.adopt(hb.Epoch, hb.Primary)
			case *wire.Promote:
				n.observe(hb.ReplicaID)
				n.adopt(hb.Epoch, hb.ReplicaID)
			}
		}
	case wire.ModeSync:
		n.runSender(conn, hello.FromSeq)
	}
}
