package ha

import (
	"bufio"
	"net"
	"time"

	"repro/internal/routeserver"
	"repro/internal/synthesis"
	"repro/internal/wire"
)

// runSender serves one follower's sync stream: snapshot if the follower's
// cursor cannot be served from the backlog (a fresh follower at FromSeq 0,
// or a laggard whose cursor fell behind the put-trim horizon), then the
// incremental tail, blocking on backlog appends. Returns when the
// connection breaks, the node stops, or this replica loses the primary
// role (including a re-promotion that swapped the backlog).
func (n *Node) runSender(conn net.Conn, from uint64) {
	bw := bufio.NewWriter(conn)
	if !n.primaryNow.Load() {
		_, primary := n.view()
		_ = wire.WriteMessage(bw, &wire.NotPrimary{PrimaryID: primary, Addr: n.haAddrOf(primary)})
		_ = bw.Flush()
		return
	}
	// Reader watchdog: the follower never writes after its Hello, so a
	// read returning means the connection died — wake the idle wait below.
	gone := make(chan struct{})
	go func() {
		defer close(gone)
		buf := make([]byte, 1)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	bl := n.currentBacklog()
	cursor := from
	if cursor > bl.latest() {
		// A cursor ahead of this backlog belongs to another epoch's
		// sequence space: resync from scratch.
		cursor = 0
	}
	needSnapshot := cursor == 0
	for {
		if !n.primaryNow.Load() || n.currentBacklog() != bl {
			_, primary := n.view()
			_ = wire.WriteMessage(bw, &wire.NotPrimary{PrimaryID: primary, Addr: n.haAddrOf(primary)})
			_ = bw.Flush()
			return
		}
		if needSnapshot {
			var err error
			if cursor, err = n.sendSnapshot(bw, cursor, bl); err != nil {
				return
			}
			needSnapshot = false
		}
		ents, ok := bl.from(cursor)
		if !ok {
			needSnapshot = true
			continue
		}
		if len(ents) == 0 {
			if bw.Flush() != nil {
				return
			}
			select {
			case <-n.stop:
				return
			case <-gone:
				return
			case <-bl.waitChanged():
			case <-time.After(n.cfg.HeartbeatEvery):
				// Re-check the primary role even with nothing to send.
			}
			continue
		}
		for i := range ents {
			if wire.WriteMessage(bw, &ents[i]) != nil {
				return
			}
			cursor = ents[i].Seq
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// sendSnapshot ships a consistent warm-state cut: the control history the
// follower is missing (real sequence numbers, applied incrementally so a
// mid-snapshot death resumes from the last control op), then every
// current cache entry stamped with the cut sequence S0, then the Done
// marker that advances the follower's cursor to S0. The cut is taken
// under the strategy lock, so no insert or mutation interleaves between
// recording S0 and copying the cache.
func (n *Node) sendSnapshot(bw *bufio.Writer, cursor uint64, bl *backlog) (uint64, error) {
	var s0 uint64
	var ctls []wire.SyncEntry
	entries := n.srv.DumpEntries(func() {
		s0 = bl.latest()
		ctls = bl.ctlsIn(cursor, s0)
	})
	if err := wire.WriteMessage(bw, &wire.SyncSnapshot{
		Seq: s0, Count: uint32(len(ctls) + len(entries)),
	}); err != nil {
		return 0, err
	}
	for i := range ctls {
		if err := wire.WriteMessage(bw, &ctls[i]); err != nil {
			return 0, err
		}
	}
	for _, ce := range entries {
		e := wire.SyncEntry{
			Seq: s0, Op: wire.SyncPut, Req: ce.Key.Request(),
			Found: ce.Res.Found, Path: ce.Res.Path,
			Links: ce.Fp.Links, Terms: ce.Fp.Terms,
		}
		if err := wire.WriteMessage(bw, &e); err != nil {
			return 0, err
		}
	}
	if err := wire.WriteMessage(bw, &wire.SyncSnapshot{Seq: s0, Done: true}); err != nil {
		return 0, err
	}
	return s0, bw.Flush()
}

// syncLoop is the follower's half: dial the primary's replication
// listener, announce the local cursor, and apply the stream. It idles
// while this replica is primary and redials — against whatever replica
// the election view names — whenever the connection breaks or an epoch
// change resets the cursor.
func (n *Node) syncLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		epoch, primary := n.view()
		if primary == n.cfg.ID {
			n.idle()
			continue
		}
		addr := n.haAddrOf(primary)
		conn, err := net.DialTimeout("tcp", addr, n.cfg.HeartbeatTimeout)
		if err != nil {
			n.idle()
			continue
		}
		if !n.track(conn) {
			conn.Close()
			return
		}
		n.mu.Lock()
		stale := n.epoch != epoch
		if !stale {
			n.syncConn = conn
		}
		n.mu.Unlock()
		if stale {
			n.untrack(conn)
			conn.Close()
			continue
		}
		n.followStream(conn)
		n.mu.Lock()
		if n.syncConn == conn {
			n.syncConn = nil
		}
		n.mu.Unlock()
		n.untrack(conn)
		conn.Close()
		n.idle() // don't hammer a dead primary between election ticks
	}
}

// idle waits one heartbeat interval or until stop.
func (n *Node) idle() {
	select {
	case <-n.stop:
	case <-time.After(n.cfg.HeartbeatEvery):
	}
}

// followStream announces the cursor and applies entries until the
// connection breaks or the sender bows out.
func (n *Node) followStream(conn net.Conn) {
	bw := bufio.NewWriter(conn)
	if err := wire.WriteMessage(bw, &wire.Hello{
		ReplicaID: n.cfg.ID, Mode: wire.ModeSync, FromSeq: n.applied.Load(),
	}); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	br := bufio.NewReader(conn)
	inSnapshot := false
	for {
		m, err := wire.ReadMessage(br)
		if err != nil {
			return
		}
		switch e := m.(type) {
		case *wire.SyncEntry:
			if !n.applyEntry(e, inSnapshot) {
				return
			}
		case *wire.SyncSnapshot:
			if e.Done {
				// The warm cut is fully installed: the cursor jumps to the
				// cut sequence in one step.
				if e.Seq > n.applied.Load() {
					n.applied.Store(e.Seq)
				}
				inSnapshot = false
			} else {
				inSnapshot = true
			}
		case *wire.NotPrimary:
			// Stale view: hang up and let heartbeats re-aim the dial.
			return
		}
	}
}

// applyEntry applies one replicated entry. Control ops replay through the
// local backend, so scoped invalidation evicts exactly what it evicted on
// the primary and retained entries stay legal; cache puts install
// directly. During a snapshot, puts carry the cut sequence and do not
// advance the cursor — only the Done marker does, so a half-applied
// snapshot resumes legal but colder. Returns false when the node is
// stopping.
func (n *Node) applyEntry(e *wire.SyncEntry, inSnapshot bool) bool {
	// Failure-injection gate: hold the stream at the configured sequence.
	for {
		lim := n.limit.Load()
		if lim == 0 || e.Seq <= lim {
			break
		}
		select {
		case <-n.stop:
			return false
		case <-time.After(time.Millisecond):
		}
	}
	if e.Op == wire.SyncCtl {
		if e.Seq <= n.applied.Load() {
			return true // already applied before a reconnect
		}
		n.applyCtl(e)
		n.applied.Store(e.Seq)
		return true
	}
	if !inSnapshot && e.Seq <= n.applied.Load() {
		return true
	}
	n.srv.InstallEntry(
		routeserver.KeyOf(e.Req),
		routeserver.Result{Path: e.Path, Found: e.Found},
		synthesis.Footprint{Links: e.Links, Terms: e.Terms},
	)
	if !inSnapshot {
		n.applied.Store(e.Seq)
	}
	return true
}

// applyCtl replays one control mutation through the local backend.
// Errors are tolerated: a fail of an already-absent link or a restore of
// a link not failed here can occur when a snapshot's control suffix
// overlaps ops applied before a reconnect, and the scoped invalidation
// still ran.
func (n *Node) applyCtl(e *wire.SyncEntry) {
	switch e.CtlOp {
	case wire.CtlFail:
		_, _, _, _ = n.be.Fail(e.A, e.B)
	case wire.CtlRestore:
		_, _, _ = n.be.Restore(e.A, e.B)
	case wire.CtlPolicy:
		n.be.SetPolicy(e.A, e.Cost)
	case wire.CtlInvalidate:
		n.be.Invalidate()
	}
}
