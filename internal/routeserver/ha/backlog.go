package ha

import (
	"sync"

	"repro/internal/wire"
)

// backlog is the primary's replication log: a seq-ordered record of every
// cache put and control mutation, appended under the route server's
// strategy lock so log order equals application order. Cache puts are
// trimmed once more than capPuts of them accumulate — a lagging follower
// whose cursor precedes the trim horizon cuts over to a snapshot instead
// of replaying them — while control mutations are never trimmed: they are
// rare, tiny, and replaying the missing suffix of control history is what
// lets a snapshot receiver's own graph and policy state converge on the
// primary's.
type backlog struct {
	mu sync.Mutex
	// capPuts bounds retained SyncPut entries.
	capPuts int
	// ents holds the retained entries in ascending Seq order. Trimming
	// puts leaves gaps; control entries persist.
	ents []wire.SyncEntry
	puts int
	// seq is the last assigned sequence number.
	seq uint64
	// trimmedThrough is the highest Seq of any trimmed put: a follower
	// cursor below it cannot be served incrementally.
	trimmedThrough uint64
	// changed is closed and replaced on every append, waking senders
	// blocked in waitChanged.
	changed chan struct{}
}

func newBacklog(capPuts int) *backlog {
	if capPuts <= 0 {
		capPuts = 4096
	}
	return &backlog{capPuts: capPuts, changed: make(chan struct{})}
}

// append assigns the next sequence number to e, stores it, and trims the
// oldest put if the put cap is exceeded. Returns the assigned seq.
func (b *backlog) append(e wire.SyncEntry) uint64 {
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	b.ents = append(b.ents, e)
	if e.Op == wire.SyncPut {
		b.puts++
	}
	for b.puts > b.capPuts {
		for i := range b.ents {
			if b.ents[i].Op == wire.SyncPut {
				b.trimmedThrough = b.ents[i].Seq
				b.ents = append(b.ents[:i], b.ents[i+1:]...)
				b.puts--
				break
			}
		}
	}
	close(b.changed)
	b.changed = make(chan struct{})
	seq := b.seq
	b.mu.Unlock()
	return seq
}

// latest returns the last assigned sequence number.
func (b *backlog) latest() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// from returns a copy of every entry with Seq > cursor, and whether the
// cursor can be served incrementally at all: false means a put past the
// cursor has been trimmed and the caller must cut over to a snapshot.
func (b *backlog) from(cursor uint64) ([]wire.SyncEntry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cursor < b.trimmedThrough {
		return nil, false
	}
	var out []wire.SyncEntry
	for _, e := range b.ents {
		if e.Seq > cursor {
			out = append(out, e)
		}
	}
	return out, true
}

// ctlsIn returns a copy of the control entries with lo < Seq <= hi — the
// control history a snapshot receiver is missing. Control entries are
// never trimmed, so this range is always complete.
func (b *backlog) ctlsIn(lo, hi uint64) []wire.SyncEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []wire.SyncEntry
	for _, e := range b.ents {
		if e.Op == wire.SyncCtl && e.Seq > lo && e.Seq <= hi {
			out = append(out, e)
		}
	}
	return out
}

// waitChanged returns a channel closed at the next append after this
// call's lock acquisition.
func (b *backlog) waitChanged() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.changed
}
