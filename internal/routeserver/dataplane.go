package routeserver

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/wire"
)

// DataPlane is the forwarding half of the serving architecture (§5.4): a
// route answered by the Server is only useful once every policy gateway on
// it holds handle state. The DataPlane keeps one pgstate.Table per AD under
// a configurable lifecycle discipline (§6), installs served routes into
// them, forwards data hop by hop, expires or evicts state per discipline,
// and re-establishes flows through the Server after misses or link
// failures.
//
// Time is a logical clock advanced by Tick — the serving layer has no
// discrete-event engine, so soft-state TTLs are measured in ticks of
// simulated time, while re-setup latency (a Server query plus re-install)
// is measured in wall time.
//
// The tables themselves are internally sharded and safe for concurrent
// use (Lookup and Peek return entries by value, so no caller ever holds a
// pointer into a table); d.mu remains, but only to keep the flow and
// repair maps coherent with the per-hop state transitions around them,
// not to serialize table access.
type DataPlane struct {
	mu     sync.Mutex
	cfg    pgstate.Config
	tables map[ad.ID]*pgstate.Table
	now    sim.Time

	handleSeq uint64
	flows     map[uint64]Flow
	repair    map[uint64]policy.Request

	refreshBytes uint64
	naks         uint64
	resetups     uint64
	resetupLat   metrics.Histogram
}

// Flow is one live source intent: the request it serves and the route its
// handle state was installed along.
type Flow struct {
	Req  policy.Request
	Path ad.Path
}

// SendResult reports one data forwarding attempt.
type SendResult struct {
	// Delivered is true when every hop held state for the handle.
	Delivered bool
	// MissAt names the first PG without state (zero when delivered). The
	// flow is dead afterwards and queued for repair, mirroring the
	// SetupNoState NAK of the simulated protocol.
	MissAt ad.ID
}

// DataPlaneMetrics is a point-in-time copy of the data plane's counters.
type DataPlaneMetrics struct {
	// State sums the per-AD handle-table counters.
	State pgstate.Stats
	// MaxPeak is the largest single-AD resident peak — the per-gateway
	// memory bound the §6 disciplines trade against availability.
	MaxPeak int
	// Flows counts live source intents.
	Flows int
	// PendingRepairs counts flows awaiting Repair.
	PendingRepairs int
	// RefreshBytes is the wire volume of soft-state keepalives.
	RefreshBytes uint64
	// NAKs counts forwarding attempts that hit missing state.
	NAKs uint64
	// Resetups counts successful flow re-establishments.
	Resetups uint64
	// ResetupLatency digests the wall time of each re-establishment.
	ResetupLatency metrics.LatencySummary
}

// NewDataPlane builds an empty data plane under the given state discipline.
func NewDataPlane(cfg pgstate.Config) (*DataPlane, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	return &DataPlane{
		cfg:    norm,
		tables: make(map[ad.ID]*pgstate.Table),
		flows:  make(map[uint64]Flow),
		repair: make(map[uint64]policy.Request),
	}, nil
}

// table returns id's handle table, creating it on first use.
func (d *DataPlane) table(id ad.ID) *pgstate.Table {
	t, ok := d.tables[id]
	if !ok {
		t = pgstate.NewTable(d.cfg)
		d.tables[id] = t
	}
	return t
}

// Now returns the logical clock.
func (d *DataPlane) Now() sim.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.now
}

// Install writes handle state for a served route into every AD along it
// and registers the source intent. Single-AD paths need no state.
func (d *DataPlane) Install(req policy.Request, path ad.Path) (handle uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.install(req, path)
}

func (d *DataPlane) install(req policy.Request, path ad.Path) uint64 {
	d.handleSeq++
	h := d.handleSeq
	for i, id := range path {
		d.table(id).Install(d.now, h, path, i, req, d.cfg.TTL)
	}
	d.flows[h] = Flow{Req: req, Path: path}
	return h
}

// Flow returns the live intent for handle.
func (d *DataPlane) Flow(handle uint64) (Flow, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.flows[handle]
	return f, ok
}

// Handles lists live flow handles in ascending order.
func (d *DataPlane) Handles() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	hs := make([]uint64, 0, len(d.flows))
	for h := range d.flows {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

// Send forwards one data packet over handle, hop by hop. The first PG
// without state NAKs: upstream state is torn down, the flow dies, and the
// request is queued for Repair — evicted or expired state is re-established
// on demand instead of silently blackholing.
func (d *DataPlane) Send(handle uint64) SendResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.flows[handle]
	if !ok {
		return SendResult{}
	}
	for i, id := range f.Path {
		if _, ok := d.table(id).Lookup(d.now, handle); !ok {
			d.naks++
			for j := 0; j < i; j++ {
				d.table(f.Path[j]).Remove(handle)
			}
			delete(d.flows, handle)
			d.repair[handle] = f.Req
			return SendResult{MissAt: id}
		}
	}
	return SendResult{Delivered: true}
}

// Tick advances the logical clock by d and sweeps expired soft state in AD
// order. A flow whose source entry expired was abandoned (the source
// stopped refreshing): it dies without being queued for repair.
func (d *DataPlane) Tick(dt sim.Time) (expired int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now += dt
	for _, id := range d.sortedADs() {
		due := d.tables[id].ExpireDue(d.now)
		expired += len(due)
		for _, h := range due {
			if f, ok := d.flows[h]; ok && f.Path.Source() == id {
				delete(d.flows, h)
			}
		}
	}
	return expired
}

// RefreshAll re-asserts every live flow: each hop's entry is refreshed (and
// its recency touched), with the keepalive's wire bytes counted per hop. A
// hop that already dropped the state NAKs; the flow dies and is queued for
// Repair.
func (d *DataPlane) RefreshAll() (refreshed, failed int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ttlMillis := uint32(0)
	if d.cfg.Kind == pgstate.Soft {
		ttlMillis = uint32(d.cfg.TTL / sim.Millisecond)
	}
	for _, h := range d.sortedFlows() {
		f := d.flows[h]
		pktLen := uint64(len(wire.Marshal(&wire.Refresh{Handle: h, TTLMillis: ttlMillis})))
		ok := true
		for i, id := range f.Path {
			if !d.table(id).Refresh(d.now, h, d.cfg.TTL) {
				d.naks++
				for j := 0; j < i; j++ {
					d.table(f.Path[j]).Remove(h)
				}
				delete(d.flows, h)
				d.repair[h] = f.Req
				ok = false
				break
			}
			if i > 0 {
				d.refreshBytes += pktLen // one keepalive per traversed link
			}
		}
		if ok {
			refreshed++
		} else {
			failed++
		}
	}
	return refreshed, failed
}

// InvalidateLink flushes every entry whose route crosses the a-b adjacency,
// in AD then handle order — the eager failure-driven invalidation of the
// simulated protocol's LinkDown path. Affected flows are queued for Repair.
// Each table resolves its dependents through its link index, so the cost
// scales with the flows actually crossing the link, not with total state.
func (d *DataPlane) InvalidateLink(a, b ad.ID) (flushed int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, id := range d.sortedADs() {
		t := d.tables[id]
		for _, h := range t.HandlesCrossing(a, b) {
			if _, ok := t.Peek(d.now, h); !ok {
				continue
			}
			t.Remove(h)
			flushed++
			if f, ok := d.flows[h]; ok && f.Path.Source() == id {
				delete(d.flows, h)
				d.repair[h] = f.Req
			}
		}
	}
	return flushed
}

// FlowsCrossing lists, in ascending handle order, the live flows that
// InvalidateLink(a, b) would tear down and queue for repair. It mirrors
// the teardown condition exactly — a flow dies when its *source* AD's
// table still holds a live entry whose route crosses the a-b adjacency —
// resolved through the same per-table link indexes, so the cost scales
// with the flows actually crossing the link. It is the read-only half of
// the eager failure-driven teardown; the what-if plan engine uses it to
// predict data-plane blast radius without touching any state.
func (d *DataPlane) FlowsCrossing(a, b ad.ID) []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]uint64, 0)
	for _, id := range d.sortedADs() {
		t := d.tables[id]
		for _, h := range t.HandlesCrossing(a, b) {
			if _, ok := t.Peek(d.now, h); !ok {
				continue
			}
			if f, ok := d.flows[h]; ok && f.Path.Source() == id {
				out = append(out, h)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Repair re-establishes every queued flow through srv, in handle order:
// query a fresh route (the server's cache reflects post-failure topology
// after its own invalidation) and install it under a new handle. Wall time
// per successful repair is recorded in the re-setup latency histogram.
func (d *DataPlane) Repair(srv *Server) (attempted, repaired int) {
	d.mu.Lock()
	handles := make([]uint64, 0, len(d.repair))
	for h := range d.repair {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	reqs := make([]policy.Request, len(handles))
	for i, h := range handles {
		reqs[i] = d.repair[h]
		delete(d.repair, h)
	}
	d.mu.Unlock()

	for _, req := range reqs {
		attempted++
		start := time.Now()
		res := srv.Query(req) // outside d.mu: queries may block on synthesis
		if !res.Found {
			continue
		}
		d.mu.Lock()
		d.install(req, res.Path)
		d.resetups++
		d.resetupLat.Observe(time.Since(start))
		d.mu.Unlock()
		repaired++
	}
	return attempted, repaired
}

// Metrics returns a snapshot of the data plane's counters.
func (d *DataPlane) Metrics() DataPlaneMetrics {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := DataPlaneMetrics{
		Flows:          len(d.flows),
		PendingRepairs: len(d.repair),
		RefreshBytes:   d.refreshBytes,
		NAKs:           d.naks,
		Resetups:       d.resetups,
		ResetupLatency: d.resetupLat.Snapshot(),
	}
	for _, t := range d.tables {
		st := t.Stats()
		m.State.Add(st)
		if st.Peak > m.MaxPeak {
			m.MaxPeak = st.Peak
		}
	}
	return m
}

// String summarizes the data plane for the routed CLI's "state" command.
func (m DataPlaneMetrics) String() string {
	return fmt.Sprintf(
		"flows %d, pending-repairs %d | state: %d resident (peak/PG %d), %d installs, %d evictions, %d expirations | %d refreshes (%d B), %d naks, %d resetups (p95 %v)",
		m.Flows, m.PendingRepairs, m.State.Resident, m.MaxPeak, m.State.Installs,
		m.State.Evictions, m.State.Expirations, m.State.Refreshes, m.RefreshBytes,
		m.NAKs, m.Resetups, m.ResetupLatency.P95)
}

// sortedADs lists the ADs holding tables in ascending order.
func (d *DataPlane) sortedADs() []ad.ID {
	ids := make([]ad.ID, 0, len(d.tables))
	for id := range d.tables {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sortedFlows lists live flow handles in ascending order.
func (d *DataPlane) sortedFlows() []uint64 {
	hs := make([]uint64, 0, len(d.flows))
	for h := range d.flows {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}
