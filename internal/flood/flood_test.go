package flood

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

func TestDBInstall(t *testing.T) {
	db := NewDB()
	l1 := &wire.LSA{Origin: 1, Seq: 1}
	if !db.Install(l1) {
		t.Error("first install rejected")
	}
	if db.Install(&wire.LSA{Origin: 1, Seq: 1}) {
		t.Error("equal seq accepted")
	}
	if db.Install(&wire.LSA{Origin: 1, Seq: 0}) {
		t.Error("older seq accepted")
	}
	if !db.Install(&wire.LSA{Origin: 1, Seq: 2}) {
		t.Error("newer seq rejected")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	if db.Installs != 2 || db.Duplicates != 2 {
		t.Errorf("installs=%d dups=%d", db.Installs, db.Duplicates)
	}
	got, ok := db.Get(1)
	if !ok || got.Seq != 2 {
		t.Errorf("Get = %+v,%v", got, ok)
	}
	if _, ok := db.Get(9); ok {
		t.Error("Get absent origin succeeded")
	}
}

func TestDBGraphReconstruction(t *testing.T) {
	db := NewDB()
	db.Install(&wire.LSA{Origin: 1, Seq: 1, Links: []wire.LSALink{{Neighbor: 2, Cost: 3, Up: true}}})
	db.Install(&wire.LSA{Origin: 2, Seq: 1, Links: []wire.LSALink{
		{Neighbor: 1, Cost: 5, Up: true},
		{Neighbor: 3, Cost: 1, Up: true}, // 3 has no LSA: one-sided
	}})
	g := db.Graph()
	if g.NumADs() != 2 {
		t.Errorf("ADs = %d, want 2", g.NumADs())
	}
	l, ok := g.LinkBetween(1, 2)
	if !ok {
		t.Fatal("link 1-2 missing")
	}
	if l.Cost != 5 { // max of the two advertised costs
		t.Errorf("cost = %d, want 5", l.Cost)
	}
	if g.HasLink(2, 3) {
		t.Error("one-sided adjacency admitted")
	}
}

func TestDBGraphDownLinks(t *testing.T) {
	db := NewDB()
	db.Install(&wire.LSA{Origin: 1, Seq: 1, Links: []wire.LSALink{{Neighbor: 2, Cost: 1, Up: false}}})
	db.Install(&wire.LSA{Origin: 2, Seq: 1, Links: []wire.LSALink{{Neighbor: 1, Cost: 1, Up: true}}})
	if db.Graph().HasLink(1, 2) {
		t.Error("half-down link present in reconstructed graph")
	}
}

func TestDBPolicyReconstruction(t *testing.T) {
	db := NewDB()
	term := policy.OpenTerm(1, 1)
	term.Cost = 9
	db.Install(&wire.LSA{Origin: 1, Seq: 1, Terms: []policy.Term{term}})
	pdb := db.PolicyDB()
	ts := pdb.Terms(1)
	if len(ts) != 1 || ts[0].Cost != 9 {
		t.Errorf("terms = %+v", ts)
	}
}

func TestDBWireBytes(t *testing.T) {
	db := NewDB()
	if db.WireBytes() != 0 {
		t.Error("empty DB has bytes")
	}
	lsa := &wire.LSA{Origin: 1, Seq: 1, Terms: []policy.Term{policy.OpenTerm(1, 1)}}
	db.Install(lsa)
	if db.WireBytes() != len(wire.Marshal(lsa)) {
		t.Errorf("WireBytes = %d, want %d", db.WireBytes(), len(wire.Marshal(lsa)))
	}
}

// floodNode wires a Flooder into a sim.Node for substrate testing.
type floodNode struct {
	f *Flooder
}

func (n *floodNode) ID() ad.ID { return n.f.Self }
func (n *floodNode) Start(nw *sim.Network) {
	n.f.Originate(nw, nil)
}
func (n *floodNode) Receive(nw *sim.Network, from ad.ID, payload []byte) {
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		return
	}
	if lsa, ok := msg.(*wire.LSA); ok {
		n.f.HandleLSA(nw, from, lsa)
	}
}
func (n *floodNode) LinkDown(nw *sim.Network, nb ad.ID) { n.f.Originate(nw, nil) }
func (n *floodNode) LinkUp(nw *sim.Network, nb ad.ID)   { n.f.Originate(nw, nil) }

func buildFloodNet(t *testing.T) (*sim.Network, map[ad.ID]*floodNode) {
	t.Helper()
	topo := topology.Figure1()
	nw := sim.NewNetwork(topo.Graph, 1)
	nodes := make(map[ad.ID]*floodNode)
	for _, id := range topo.Graph.IDs() {
		n := &floodNode{f: NewFlooder(id, "lsa")}
		nodes[id] = n
		nw.AddNode(n)
	}
	return nw, nodes
}

func TestFloodingConverges(t *testing.T) {
	nw, nodes := buildFloodNet(t)
	nw.Start()
	if _, ok := nw.RunToQuiescence(10 * sim.Second); !ok {
		t.Fatal("flooding did not quiesce")
	}
	want := nw.Graph.NumADs()
	for id, n := range nodes {
		if n.f.DB.Len() != want {
			t.Errorf("%v LSDB has %d origins, want %d", id, n.f.DB.Len(), want)
		}
	}
	// Every node's reconstructed graph matches the physical topology.
	for id, n := range nodes {
		g := n.f.DB.Graph()
		if g.NumLinks() != nw.Graph.NumLinks() {
			t.Errorf("%v reconstructed %d links, want %d", id, g.NumLinks(), nw.Graph.NumLinks())
		}
	}
}

func TestFloodingLinkFailurePropagates(t *testing.T) {
	nw, nodes := buildFloodNet(t)
	nw.Start()
	nw.RunToQuiescence(10 * sim.Second)

	// Fail a link and let the re-originated LSAs flood.
	links := nw.Graph.Links()
	l := links[0]
	nw.Engine.After(sim.Second, func() { _ = nw.FailLink(l.A, l.B) })
	nw.Engine.Run()
	for id, n := range nodes {
		if n.f.DB.Graph().HasLink(l.A, l.B) {
			t.Errorf("%v still sees failed link %v-%v", id, l.A, l.B)
		}
	}
}

func TestFloodingOnChangeCallback(t *testing.T) {
	nw, nodes := buildFloodNet(t)
	calls := 0
	for _, n := range nodes {
		n.f.OnChange = func(nw *sim.Network) { calls++ }
	}
	nw.Start()
	nw.RunToQuiescence(10 * sim.Second)
	// Each of the N nodes accepts N LSAs (its own + N-1 others).
	n := nw.Graph.NumADs()
	if calls != n*n {
		t.Errorf("OnChange calls = %d, want %d", calls, n*n)
	}
}

func TestFloodingDuplicateSuppression(t *testing.T) {
	nw, nodes := buildFloodNet(t)
	nw.Start()
	nw.RunToQuiescence(10 * sim.Second)
	// Without suppression flooding never terminates; reaching here proves
	// it. Sanity: every node saw at least one duplicate on the cyclic
	// topology.
	dups := 0
	for _, n := range nodes {
		dups += n.f.DB.Duplicates
	}
	if dups == 0 {
		t.Error("no duplicates on a cyclic topology — suppression untested")
	}
}

func TestFlooderScope(t *testing.T) {
	// A scope filter restricts which neighbors receive flooded copies.
	g := ad.NewGraph()
	hub := g.AddAD("hub", ad.Transit, ad.Backbone)
	allowed := g.AddAD("allowed", ad.Stub, ad.Campus)
	blocked := g.AddAD("blocked", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{{A: hub, B: allowed}, {A: hub, B: blocked}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	nw := sim.NewNetwork(g, 1)
	hubNode := &floodNode{f: NewFlooder(hub, "lsa")}
	hubNode.f.Scope = func(nb ad.ID) bool { return nb == allowed }
	allowedNode := &floodNode{f: NewFlooder(allowed, "lsa")}
	blockedNode := &floodNode{f: NewFlooder(blocked, "lsa")}
	nw.AddNode(hubNode)
	nw.AddNode(allowedNode)
	nw.AddNode(blockedNode)
	hubNode.f.Originate(nw, nil)
	nw.Engine.Run()
	if _, ok := allowedNode.f.DB.Get(hub); !ok {
		t.Error("scoped neighbor did not receive the LSA")
	}
	if _, ok := blockedNode.f.DB.Get(hub); ok {
		t.Error("blocked neighbor received the LSA")
	}
}
