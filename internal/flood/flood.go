// Package flood implements the link-state flooding substrate shared by the
// two link-state architectures (LS hop-by-hop, paper §5.3, and ORWG source
// routing, §5.4): a sequence-numbered link-state database and a reliable-ish
// flooding discipline (duplicate suppression by sequence number, re-flood of
// strictly newer LSAs).
package flood

import (
	"sort"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/wire"
)

// DB is a link-state database: the newest LSA per origin AD.
type DB struct {
	lsas map[ad.ID]*wire.LSA
	// Installs counts accepted (strictly newer) LSAs; Duplicates counts
	// rejected ones.
	Installs, Duplicates int
}

// NewDB returns an empty LSDB.
func NewDB() *DB {
	return &DB{lsas: make(map[ad.ID]*wire.LSA)}
}

// Install stores l if it is strictly newer than the current LSA from the
// same origin, reporting whether it was accepted.
func (db *DB) Install(l *wire.LSA) bool {
	cur, ok := db.lsas[l.Origin]
	if ok && cur.Seq >= l.Seq {
		db.Duplicates++
		return false
	}
	db.lsas[l.Origin] = l
	db.Installs++
	return true
}

// Get returns the newest LSA from origin, if any.
func (db *DB) Get(origin ad.ID) (*wire.LSA, bool) {
	l, ok := db.lsas[origin]
	return l, ok
}

// Origins returns the ADs with an installed LSA, ascending.
func (db *DB) Origins() []ad.ID {
	out := make([]ad.ID, 0, len(db.lsas))
	for id := range db.lsas {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of distinct origins in the database.
func (db *DB) Len() int { return len(db.lsas) }

// WireBytes returns the total marshalled size of the database, the LSDB
// memory metric used by experiment E8.
func (db *DB) WireBytes() int {
	n := 0
	for _, l := range db.lsas {
		n += len(wire.Marshal(l))
	}
	return n
}

// Graph reconstructs the AD-level topology currently described by the
// database. A link exists when both endpoints advertise the adjacency as
// up; its cost is the maximum of the two advertised costs (conservative
// when they briefly disagree during convergence).
func (db *DB) Graph() *ad.Graph {
	g := ad.NewGraph()
	// Create all origin nodes first. AD class/level are not carried in
	// LSAs (routing does not need them); transit permission comes from
	// policy terms.
	for id := range db.lsas {
		// Errors are impossible: ids are unique and non-zero origins
		// are enforced by Install callers.
		_ = g.AddADWithID(id, id.String(), ad.Transit, ad.Campus)
	}
	for a, la := range db.lsas {
		for _, al := range la.Links {
			if !al.Up || al.Neighbor <= a {
				continue // handle each pair once, from the lower ID
			}
			b := al.Neighbor
			lb, ok := db.lsas[b]
			if !ok {
				continue
			}
			var back *wire.LSALink
			for i := range lb.Links {
				if lb.Links[i].Neighbor == a {
					back = &lb.Links[i]
					break
				}
			}
			if back == nil || !back.Up {
				continue
			}
			cost := al.Cost
			if back.Cost > cost {
				cost = back.Cost
			}
			_ = g.AddLink(ad.Link{A: a, B: b, Cost: cost})
		}
	}
	return g
}

// PolicyDB reconstructs the policy database flooded in LSAs.
func (db *DB) PolicyDB() *policy.DB {
	p := policy.NewDB()
	for _, origin := range db.Origins() {
		for _, t := range db.lsas[origin].Terms {
			p.Add(t)
		}
	}
	return p
}

// Flooder runs the flooding discipline for one AD. Protocol nodes embed it
// and delegate LSA handling to it.
type Flooder struct {
	// Self is the AD this flooder serves.
	Self ad.ID
	// DB is the local link-state database.
	DB *DB
	// Kind labels flooded messages in traffic statistics.
	Kind string
	// OnChange, if non-nil, is invoked after each accepted LSA.
	OnChange func(nw *sim.Network)
	// Scope, if non-nil, restricts which neighbors receive flooded
	// copies — the §6 "database distribution strategies" knob. Returning
	// false suppresses the copy toward that neighbor. nil means flood to
	// every up neighbor (classic flooding).
	Scope func(neighbor ad.ID) bool

	seq uint32
}

// floodScoped sends payload to every up neighbor passing the scope filter,
// except skip.
func (f *Flooder) floodScoped(nw *sim.Network, payload []byte, skip ...ad.ID) int {
	if f.Scope == nil {
		return nw.Flood(f.Kind, f.Self, payload, skip...)
	}
	sent := 0
	for _, n := range nw.UpNeighbors(f.Self) {
		skipped := !f.Scope(n)
		for _, s := range skip {
			if n == s {
				skipped = true
			}
		}
		if skipped {
			continue
		}
		if nw.Send(f.Kind, f.Self, n, payload) {
			sent++
		}
	}
	return sent
}

// NewFlooder returns a flooder for self with an empty database.
func NewFlooder(self ad.ID, kind string) *Flooder {
	return &Flooder{Self: self, DB: NewDB(), Kind: kind}
}

// Originate builds, installs, and floods this AD's own LSA describing its
// current adjacencies and policy terms.
func (f *Flooder) Originate(nw *sim.Network, terms []policy.Term) {
	f.seq++
	lsa := &wire.LSA{Origin: f.Self, Seq: f.seq}
	for _, l := range nw.Graph.IncidentLinks(f.Self) {
		other, _ := l.Other(f.Self)
		lsa.Links = append(lsa.Links, wire.LSALink{
			Neighbor: other,
			Cost:     l.Cost,
			Up:       nw.LinkIsUp(f.Self, other),
		})
	}
	lsa.Terms = terms
	f.DB.Install(lsa)
	f.floodScoped(nw, wire.Marshal(lsa))
	if f.OnChange != nil {
		f.OnChange(nw)
	}
}

// HandleLSA processes a received LSA: install if newer, then re-flood to all
// up neighbors except the sender.
func (f *Flooder) HandleLSA(nw *sim.Network, from ad.ID, lsa *wire.LSA) {
	if !f.DB.Install(lsa) {
		return
	}
	f.floodScoped(nw, wire.Marshal(lsa), from)
	if f.OnChange != nil {
		f.OnChange(nw)
	}
}
