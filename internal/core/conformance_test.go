package core_test

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/egp"
	"repro/internal/protocols/filters"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
)

// TestConformanceAllProtocols runs the shared conformance suite over every
// architecture at its capability level (the design space's own taxonomy:
// policy-blind baselines, partially-capable designs, and the fully
// source-specific ones).
func TestConformanceAllProtocols(t *testing.T) {
	core.RunConformance(t, "plain-dv", func(g *ad.Graph, db *policy.DB) core.System {
		return plaindv.New(g, plaindv.Config{SplitHorizon: true, Seed: 1})
	}, core.ConformanceConfig{Seed: 100, SupportsFailure: true})

	core.RunConformance(t, "egp", func(g *ad.Graph, db *policy.DB) core.System {
		return egp.New(g, egp.Config{Seed: 1})
	}, core.ConformanceConfig{Seed: 200})

	core.RunConformance(t, "filters", func(g *ad.Graph, db *policy.DB) core.System {
		return filters.New(g, db, filters.Config{Seed: 1, MaxCandidates: 6})
	}, core.ConformanceConfig{Seed: 300})

	core.RunConformance(t, "ecma", func(g *ad.Graph, db *policy.DB) core.System {
		return ecma.New(g, db, ecma.Config{Seed: 1})
	}, core.ConformanceConfig{Seed: 400, PolicyAware: true, SupportsFailure: true})

	core.RunConformance(t, "idrp", func(g *ad.Graph, db *policy.DB) core.System {
		return idrp.New(g, db, idrp.Config{Seed: 1})
	}, core.ConformanceConfig{Seed: 500, PolicyAware: true, SourceSpecific: true, SupportsFailure: true})

	core.RunConformance(t, "bgp", func(g *ad.Graph, db *policy.DB) core.System {
		return idrp.New(g, db, idrp.Config{Seed: 1, BGPMode: true})
	}, core.ConformanceConfig{Seed: 600, PolicyAware: true, SupportsFailure: true})

	core.RunConformance(t, "lshh", func(g *ad.Graph, db *policy.DB) core.System {
		return lshh.New(g, db, lshh.Config{Seed: 1})
	}, core.ConformanceConfig{Seed: 700, PolicyAware: true, SourceSpecific: true, SupportsFailure: true})

	core.RunConformance(t, "orwg", func(g *ad.Graph, db *policy.DB) core.System {
		return orwg.New(g, db, orwg.Config{Seed: 1})
	}, core.ConformanceConfig{Seed: 800, PolicyAware: true, SourceSpecific: true, SupportsFailure: true})
}
