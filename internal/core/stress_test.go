package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
	"repro/internal/sim"
	"repro/internal/topology"
)

// failRestorer is the failure-injection surface shared by the protocols.
type failRestorer interface {
	core.System
	FailLink(a, b ad.ID) error
}

// TestStressRandomFailures subjects every policy-aware architecture to a
// random sequence of link failures and restorations, reconverging after
// each event and asserting the steady-state invariants the paper demands:
// no forwarding loops, and no deliveries that violate any AD's policy.
func TestStressRandomFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("long stress test")
	}
	topoCfg := topology.Config{
		Seed: 77, Backbones: 2, RegionalsPerBackbone: 3,
		CampusesPerParent: 2, LateralProb: 0.3, BypassProb: 0.15, MultihomedProb: 0.2,
	}
	makers := []struct {
		name  string
		build func(g *ad.Graph, db *policy.DB) failRestorer
		// strictLegal architectures must never deliver illegally.
		strictLegal bool
	}{
		{"ecma", func(g *ad.Graph, db *policy.DB) failRestorer {
			return ecma.New(g, db, ecma.Config{Seed: 1})
		}, false},
		{"idrp", func(g *ad.Graph, db *policy.DB) failRestorer {
			return idrp.New(g, db, idrp.Config{Seed: 1})
		}, true},
		{"lshh", func(g *ad.Graph, db *policy.DB) failRestorer {
			return lshh.New(g, db, lshh.Config{Seed: 1})
		}, true},
		{"orwg", func(g *ad.Graph, db *policy.DB) failRestorer {
			return orwg.New(g, db, orwg.Config{Seed: 1})
		}, true},
	}
	for _, m := range makers {
		m := m
		t.Run(m.name, func(t *testing.T) {
			topo := topology.Generate(topoCfg)
			g := topo.Graph
			db := policy.Generate(g, policy.GenConfig{
				Seed: 78, SourceRestrictionProb: 0.5, SourceFraction: 0.5,
			})
			oracle := core.Oracle{G: g, DB: db}
			reqs := core.AllPairsRequests(g, true, 0, 0)
			sys := m.build(g, db)
			if _, ok := sys.Converge(600 * sim.Second); !ok {
				t.Fatal("initial convergence failed")
			}

			rng := rand.New(rand.NewSource(79))
			links := g.Links()
			down := map[[2]ad.ID]bool{}
			for round := 0; round < 8; round++ {
				// Toggle a random link, keeping at most 2 down so
				// the internet stays mostly connected.
				l := links[rng.Intn(len(links))]
				key := [2]ad.ID{l.A, l.B}
				if down[key] {
					if err := sys.Network().RestoreLink(l.A, l.B); err != nil {
						t.Fatal(err)
					}
					delete(down, key)
				} else if len(down) < 2 {
					if err := sys.FailLink(l.A, l.B); err != nil {
						t.Fatal(err)
					}
					down[key] = true
				}
				if _, ok := sys.Converge(6000 * sim.Second); !ok {
					t.Fatalf("round %d: did not reconverge", round)
				}
				for _, req := range reqs[:len(reqs)/2] {
					out := sys.Route(req)
					if out.Looped {
						t.Fatalf("round %d: %v looped: %v", round, req, out.Path)
					}
					if m.strictLegal && out.Delivered && !oracle.Legal(out.Path, req) {
						t.Fatalf("round %d: %v delivered illegally: %v", round, req, out.Path)
					}
				}
			}
		})
	}
}

// TestStressPlainDVAlwaysConverges checks the baseline terminates (at its
// infinity bound) under repeated partitioning failures.
func TestStressPlainDVAlwaysConverges(t *testing.T) {
	topo := topology.Generate(topology.Config{Seed: 80, LateralProb: 0.2})
	sys := plaindv.New(topo.Graph, plaindv.Config{SplitHorizon: false, Infinity: 16, Seed: 2})
	if _, ok := sys.Converge(600 * sim.Second); !ok {
		t.Fatal("initial convergence failed")
	}
	rng := rand.New(rand.NewSource(81))
	links := topo.Graph.Links()
	for round := 0; round < 5; round++ {
		l := links[rng.Intn(len(links))]
		_ = sys.FailLink(l.A, l.B)
		if _, ok := sys.Converge(60000 * sim.Second); !ok {
			t.Fatalf("round %d: count-to-infinity did not terminate", round)
		}
		_ = sys.Network().RestoreLink(l.A, l.B)
		if _, ok := sys.Converge(60000 * sim.Second); !ok {
			t.Fatalf("round %d: recovery did not converge", round)
		}
	}
}

// TestCrossProtocolConsistency: on an open-policy internet every
// policy-aware protocol must agree with the oracle about reachability.
func TestCrossProtocolConsistency(t *testing.T) {
	topo := topology.Generate(topology.Config{Seed: 82, LateralProb: 0.25, BypassProb: 0.1})
	g := topo.Graph
	db := policy.OpenDB(g)
	oracle := core.Oracle{G: g, DB: db}
	reqs := core.AllPairsRequests(g, true, 0, 0)
	systems := []core.System{
		ecma.New(g, db, ecma.Config{Seed: 3}),
		idrp.New(g, db, idrp.Config{Seed: 3}),
		lshh.New(g, db, lshh.Config{Seed: 3}),
		orwg.New(g, db, orwg.Config{Seed: 3}),
	}
	for _, sys := range systems {
		sys.Converge(600 * sim.Second)
		for _, req := range reqs {
			want := oracle.HasRoute(req)
			out := sys.Route(req)
			if out.Delivered != want {
				t.Errorf("%s: %v delivered=%v oracle=%v", sys.Name(), req, out.Delivered, want)
			}
		}
	}
}
