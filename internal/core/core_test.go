package core_test

import (
	"strings"
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
	"repro/internal/sim"
	"repro/internal/topology"
)

func seconds(s int) sim.Time { return sim.Time(s) * sim.Second }

func TestOracle(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	oracle := core.Oracle{G: topo.Graph, DB: db}
	ids := topo.Graph.IDs()
	req := policy.Request{Src: ids[5], Dst: ids[9]}
	if !oracle.HasRoute(req) {
		t.Error("no route on open Figure 1")
	}
	if cost, ok := oracle.BestCost(req); !ok || cost == 0 {
		t.Errorf("BestCost = %d,%v", cost, ok)
	}
	if oracle.Legal(ad.Path{ids[5], ids[9]}, req) {
		t.Error("non-adjacent direct path reported legal")
	}
}

func TestAllPairsRequests(t *testing.T) {
	topo := topology.Figure1()
	stubs := 0
	for _, info := range topo.Graph.ADs() {
		if info.Class == ad.Stub || info.Class == ad.MultihomedStub {
			stubs++
		}
	}
	reqs := core.AllPairsRequests(topo.Graph, true, 1, 2)
	if len(reqs) != stubs*(stubs-1) {
		t.Errorf("requests = %d, want %d", len(reqs), stubs*(stubs-1))
	}
	for _, r := range reqs {
		if r.Src == r.Dst {
			t.Error("self request generated")
		}
		if r.QOS != 1 || r.UCI != 2 {
			t.Error("classes not propagated")
		}
	}
	all := core.AllPairsRequests(topo.Graph, false, 0, 0)
	n := topo.Graph.NumADs()
	if len(all) != n*(n-1) {
		t.Errorf("all-pairs = %d, want %d", len(all), n*(n-1))
	}
}

func TestRunScenarioOpenPolicy(t *testing.T) {
	topo := topology.Figure1()
	db := policy.OpenDB(topo.Graph)
	oracle := core.Oracle{G: topo.Graph, DB: db}
	reqs := core.AllPairsRequests(topo.Graph, true, 0, 0)

	systems := []core.System{
		plaindv.New(topo.Graph, plaindv.Config{SplitHorizon: true}),
		ecma.New(topo.Graph, db, ecma.Config{}),
		idrp.New(topo.Graph, db, idrp.Config{}),
		lshh.New(topo.Graph, db, lshh.Config{}),
		orwg.New(topo.Graph, db, orwg.Config{}),
	}
	for _, sys := range systems {
		m := core.RunScenario(sys, oracle, reqs, seconds(600))
		if !m.Quiesced {
			t.Errorf("%s did not quiesce", sys.Name())
		}
		if m.Requests != len(reqs) || m.OracleRoutable != len(reqs) {
			t.Errorf("%s: requests=%d routable=%d want %d", sys.Name(), m.Requests, m.OracleRoutable, len(reqs))
		}
		// Under open policy every policy-aware protocol achieves full
		// availability; plain DV may cut through stubs (illegal).
		if sys.Name() != "plain-dv" && m.Availability() < 1 {
			t.Errorf("%s availability = %.3f, want 1.0 (delivered-legal %d, illegal %d, loops %d, blackholed %d)",
				sys.Name(), m.Availability(), m.DeliveredLegal, m.DeliveredIllegal, m.Looped, m.Blackholed)
		}
		if m.Messages == 0 || m.Bytes == 0 {
			t.Errorf("%s: zero traffic recorded", sys.Name())
		}
		if !strings.Contains(m.String(), sys.Name()) {
			t.Errorf("metrics string missing protocol name: %s", m)
		}
	}
}

func TestRunScenarioRestrictedPolicyOrdering(t *testing.T) {
	// The paper's central claim (T1/E1): under source-specific policy,
	// availability orders ORWG >= LSHH >= IDRP, and ECMA leaks illegal
	// deliveries.
	topo := topology.Generate(topology.Config{Seed: 31, LateralProb: 0.3, BypassProb: 0.2})
	db := policy.Generate(topo.Graph, policy.GenConfig{
		Seed: 32, SourceRestrictionProb: 0.8, SourceFraction: 0.4,
	})
	oracle := core.Oracle{G: topo.Graph, DB: db}
	reqs := core.AllPairsRequests(topo.Graph, true, 0, 0)

	run := func(sys core.System) core.Metrics {
		return core.RunScenario(sys, oracle, reqs, seconds(600))
	}
	mOrwg := run(orwg.New(topo.Graph, db, orwg.Config{}))
	mLshh := run(lshh.New(topo.Graph, db, lshh.Config{}))
	mIdrp := run(idrp.New(topo.Graph, db, idrp.Config{}))
	mEcma := run(ecma.New(topo.Graph, db, ecma.Config{}))

	if mOrwg.Availability() < 0.999 {
		t.Errorf("orwg availability = %.3f, want 1.0", mOrwg.Availability())
	}
	if mLshh.Availability() > mOrwg.Availability()+1e-9 {
		t.Errorf("lshh %.3f > orwg %.3f", mLshh.Availability(), mOrwg.Availability())
	}
	if mIdrp.Availability() > mLshh.Availability()+1e-9 {
		t.Errorf("idrp %.3f > lshh %.3f", mIdrp.Availability(), mLshh.Availability())
	}
	if mIdrp.Availability() >= mOrwg.Availability() {
		t.Errorf("idrp %.3f not below orwg %.3f under heavy source restriction",
			mIdrp.Availability(), mOrwg.Availability())
	}
	if mEcma.DeliveredIllegal == 0 {
		t.Error("ecma produced no illegal deliveries under source-specific policy")
	}
	if mOrwg.DeliveredIllegal != 0 {
		t.Errorf("orwg delivered %d illegal paths", mOrwg.DeliveredIllegal)
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := core.Metrics{OracleRoutable: 4, DeliveredLegal: 3, StretchSum: 4.5}
	if m.Availability() != 0.75 {
		t.Errorf("availability = %v", m.Availability())
	}
	if m.Stretch() != 1.5 {
		t.Errorf("stretch = %v", m.Stretch())
	}
	empty := core.Metrics{}
	if empty.Availability() != 1 || empty.Stretch() != 0 {
		t.Error("empty metrics helpers wrong")
	}
}
