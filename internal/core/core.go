// Package core defines the common harness for the inter-AD routing
// architectures of Breslau & Estrin (SIGCOMM 1990): a System interface every
// protocol implements, the ground-truth oracle, and the scenario runner that
// produces the comparison metrics of Table 1 and experiments E1–E12.
package core

import (
	"fmt"
	"sort"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/synthesis"
)

// Outcome describes what happened to a traffic request under a protocol.
type Outcome struct {
	// Path is the AD-level path the traffic took (as far as it got).
	Path ad.Path
	// Delivered reports whether the traffic reached the destination.
	Delivered bool
	// Looped reports whether forwarding revisited an AD.
	Looped bool
	// Legal reports whether the delivered path satisfies the ground-truth
	// policy database. Filled by the harness; a protocol that delivers
	// over an illegal path has violated someone's policy.
	Legal bool
	// SetupMessages counts protocol messages spent on route establishment
	// for this request (nonzero only for setup-based architectures).
	SetupMessages int
}

// System is one routing architecture instantiated over a simulated network.
type System interface {
	// Name identifies the architecture in reports.
	Name() string
	// Network exposes the underlying simulated network and its stats.
	Network() *sim.Network
	// Converge starts the protocol (if needed) and runs to quiescence or
	// the limit, returning the convergence time (last protocol message)
	// and whether quiescence was reached.
	Converge(limit sim.Time) (sim.Time, bool)
	// Route resolves req through the protocol's own machinery: following
	// FIB next hops for hop-by-hop designs, or synthesizing and setting
	// up a source route for ORWG.
	Route(req policy.Request) Outcome
	// StateEntries is the total routing state across all ADs (FIB rows,
	// RIB routes, LSDB entries, or handle-cache slots).
	StateEntries() int
	// Computations is the cumulative count of route computations
	// performed anywhere in the system (table recomputations, spanning
	// tree builds, Dijkstra runs).
	Computations() int
}

// Oracle answers ground-truth questions from the global topology and policy
// database, independent of any protocol.
type Oracle struct {
	G  *ad.Graph
	DB *policy.DB
}

// HasRoute reports whether a legal route exists for req.
func (o Oracle) HasRoute(req policy.Request) bool {
	return synthesis.RouteExists(o.G, o.DB, req)
}

// BestCost returns the optimal legal policy cost for req.
func (o Oracle) BestCost(req policy.Request) (uint32, bool) {
	res := synthesis.FindRoute(o.G, o.DB, req)
	return res.Cost, res.Found
}

// Legal reports whether path is physically valid in the topology and legal
// under the ground-truth policy database.
func (o Oracle) Legal(path ad.Path, req policy.Request) bool {
	return path.Valid(o.G) && o.DB.PathLegal(path, req)
}

// Metrics aggregates one protocol's behaviour over a request workload.
type Metrics struct {
	Protocol string
	// ConvergenceTime is when the last protocol message was sent.
	ConvergenceTime sim.Time
	// Quiesced reports whether the protocol reached quiescence in time.
	Quiesced bool
	// Messages and Bytes are total protocol traffic to convergence.
	Messages, Bytes uint64
	// Requests is the number of traffic requests evaluated.
	Requests int
	// OracleRoutable counts requests for which a legal route exists.
	OracleRoutable int
	// DeliveredLegal counts requests delivered over a legal path.
	DeliveredLegal int
	// DeliveredIllegal counts requests delivered over a path that
	// violates some AD's policy (a policy failure, not a success).
	DeliveredIllegal int
	// Looped counts requests whose forwarding looped.
	Looped int
	// Blackholed counts requests dropped with no route.
	Blackholed int
	// StretchSum accumulates delivered-cost / optimal-cost for legal
	// deliveries (see Stretch).
	StretchSum float64
	// StateEntries and Computations snapshot the System counters after
	// the workload.
	StateEntries, Computations int
}

// Availability is the fraction of oracle-routable requests delivered over
// legal paths — the paper's central route-availability comparison (E1).
func (m Metrics) Availability() float64 {
	if m.OracleRoutable == 0 {
		return 1
	}
	return float64(m.DeliveredLegal) / float64(m.OracleRoutable)
}

// Stretch is the mean ratio of delivered path cost to optimal legal cost.
func (m Metrics) Stretch() float64 {
	if m.DeliveredLegal == 0 {
		return 0
	}
	return m.StretchSum / float64(m.DeliveredLegal)
}

// String renders a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("%-12s avail=%.3f loops=%d illegal=%d msgs=%d bytes=%d conv=%v state=%d comp=%d",
		m.Protocol, m.Availability(), m.Looped, m.DeliveredIllegal,
		m.Messages, m.Bytes, m.ConvergenceTime, m.StateEntries, m.Computations)
}

// RunScenario converges sys and evaluates it against every request,
// scoring outcomes with the oracle.
func RunScenario(sys System, oracle Oracle, reqs []policy.Request, limit sim.Time) Metrics {
	conv, ok := sys.Converge(limit)
	m := Metrics{
		Protocol:        sys.Name(),
		ConvergenceTime: conv,
		Quiesced:        ok,
		Requests:        len(reqs),
	}
	for _, req := range reqs {
		routable := oracle.HasRoute(req)
		if routable {
			m.OracleRoutable++
		}
		out := sys.Route(req)
		out.Legal = out.Delivered && oracle.Legal(out.Path, req)
		switch {
		case out.Delivered && out.Legal:
			m.DeliveredLegal++
			if cost, ok := oracle.DB.PathCost(oracle.G, out.Path, req); ok {
				if best, ok2 := oracle.BestCost(req); ok2 && best > 0 {
					m.StretchSum += float64(cost) / float64(best)
				}
			}
		case out.Delivered:
			m.DeliveredIllegal++
		case out.Looped:
			m.Looped++
		default:
			m.Blackholed++
		}
	}
	m.Messages = sys.Network().Stats.MessagesSent
	m.Bytes = sys.Network().Stats.BytesSent
	m.StateEntries = sys.StateEntries()
	m.Computations = sys.Computations()
	return m
}

// AllPairsRequests builds a deterministic request workload: one request per
// ordered stub pair (or all pairs when stubsOnly is false), with the given
// service class. Sources that are not stubs rarely originate traffic in the
// paper's model, so stubsOnly is the usual choice.
func AllPairsRequests(g *ad.Graph, stubsOnly bool, qos policy.QOS, uci policy.UCI) []policy.Request {
	var ids []ad.ID
	for _, info := range g.ADs() {
		if !stubsOnly || info.Class == ad.Stub || info.Class == ad.MultihomedStub {
			ids = append(ids, info.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var reqs []policy.Request
	for _, s := range ids {
		for _, d := range ids {
			if s != d {
				reqs = append(reqs, policy.Request{Src: s, Dst: d, QOS: qos, UCI: uci, Hour: 12})
			}
		}
	}
	return reqs
}
