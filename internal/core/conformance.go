package core

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// SystemBuilder constructs a protocol instance over a topology and policy
// database; conformance runs use it to create fresh systems per check.
type SystemBuilder func(g *ad.Graph, db *policy.DB) System

// ConformanceConfig tunes the suite.
type ConformanceConfig struct {
	// PolicyAware systems must never deliver over an illegal path and
	// must reach oracle availability 1.0 under open policies.
	PolicyAware bool
	// SourceSpecific systems additionally honour source-restricted terms
	// (either by detouring or by dropping — never by violating).
	SourceSpecific bool
	// SupportsFailure runs the failure/recovery checks (requires
	// FailLink support).
	SupportsFailure bool
	// Seed drives the generated internets.
	Seed int64
}

// RunConformance exercises a routing architecture against the invariants
// every design point of the paper must satisfy at its level of capability:
// convergence to quiescence, loop-free steady-state forwarding, determinism,
// oracle agreement under open policies, and policy compliance per the
// configured capability level. Downstream protocol implementations can run
// the suite against their own System.
func RunConformance(t *testing.T, name string, build SystemBuilder, cfg ConformanceConfig) {
	t.Helper()
	limit := 600 * sim.Second

	t.Run(name+"/converges", func(t *testing.T) {
		topo := topology.Generate(topology.Config{Seed: cfg.Seed, LateralProb: 0.25, BypassProb: 0.1})
		sys := build(topo.Graph, policy.OpenDB(topo.Graph))
		if _, ok := sys.Converge(limit); !ok {
			t.Fatal("did not reach quiescence")
		}
	})

	t.Run(name+"/loop-free", func(t *testing.T) {
		topo := topology.Generate(topology.Config{Seed: cfg.Seed + 1, LateralProb: 0.4, BypassProb: 0.2})
		db := policy.OpenDB(topo.Graph)
		sys := build(topo.Graph, db)
		sys.Converge(limit)
		for _, req := range AllPairsRequests(topo.Graph, false, 0, 0) {
			if out := sys.Route(req); out.Looped {
				t.Fatalf("%v looped: %v", req, out.Path)
			}
		}
	})

	t.Run(name+"/deterministic", func(t *testing.T) {
		run := func() (uint64, int) {
			topo := topology.Generate(topology.Config{Seed: cfg.Seed + 2, LateralProb: 0.3})
			db := policy.OpenDB(topo.Graph)
			sys := build(topo.Graph, db)
			sys.Converge(limit)
			delivered := 0
			for _, req := range AllPairsRequests(topo.Graph, true, 0, 0) {
				if sys.Route(req).Delivered {
					delivered++
				}
			}
			return sys.Network().Stats.MessagesSent, delivered
		}
		m1, d1 := run()
		m2, d2 := run()
		if m1 != m2 || d1 != d2 {
			t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", m1, d1, m2, d2)
		}
	})

	if cfg.PolicyAware {
		t.Run(name+"/open-policy-availability", func(t *testing.T) {
			topo := topology.Generate(topology.Config{Seed: cfg.Seed + 3, LateralProb: 0.25})
			db := policy.OpenDB(topo.Graph)
			oracle := Oracle{G: topo.Graph, DB: db}
			sys := build(topo.Graph, db)
			m := RunScenario(sys, oracle, AllPairsRequests(topo.Graph, true, 0, 0), limit)
			if m.Availability() < 1 {
				t.Fatalf("availability %.3f under open policy", m.Availability())
			}
			if m.DeliveredIllegal != 0 {
				t.Fatalf("%d illegal deliveries under open policy", m.DeliveredIllegal)
			}
		})
	}

	if cfg.SourceSpecific {
		t.Run(name+"/source-policy-compliance", func(t *testing.T) {
			topo := topology.Generate(topology.Config{Seed: cfg.Seed + 4, LateralProb: 0.3})
			db := policy.Generate(topo.Graph, policy.GenConfig{
				Seed: cfg.Seed + 5, SourceRestrictionProb: 0.7, SourceFraction: 0.4,
			})
			oracle := Oracle{G: topo.Graph, DB: db}
			sys := build(topo.Graph, db)
			m := RunScenario(sys, oracle, AllPairsRequests(topo.Graph, true, 0, 0), limit)
			if m.DeliveredIllegal != 0 {
				t.Fatalf("%d deliveries violated source-specific terms", m.DeliveredIllegal)
			}
		})
	}

	if cfg.SupportsFailure {
		t.Run(name+"/failure-recovery", func(t *testing.T) {
			topo := topology.Generate(topology.Config{Seed: cfg.Seed + 6, LateralProb: 0.35, BypassProb: 0.15})
			g := topo.Graph
			db := policy.OpenDB(g)
			sys := build(g, db)
			f, ok := sys.(interface{ FailLink(a, b ad.ID) error })
			if !ok {
				t.Skip("system does not expose FailLink")
			}
			sys.Converge(limit)
			// Fail a redundant link; the system must reconverge and
			// keep every still-connected pair loop-free.
			var victim ad.Link
			for _, l := range g.Links() {
				trial := g.Clone()
				trial.RemoveLink(l.A, l.B)
				if trial.Connected() {
					victim = l
					break
				}
			}
			if err := f.FailLink(victim.A, victim.B); err != nil {
				t.Fatal(err)
			}
			if _, ok := sys.Converge(10 * limit); !ok {
				t.Fatal("did not reconverge after failure")
			}
			for _, req := range AllPairsRequests(g, true, 0, 0) {
				if out := sys.Route(req); out.Looped {
					t.Fatalf("%v looped after failure: %v", req, out.Path)
				}
			}
		})
	}
}
