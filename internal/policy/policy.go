// Package policy models inter-AD routing policy as described in Breslau &
// Estrin (SIGCOMM 1990) §2.3 and §5.4: transit policies are expressed as
// Policy Terms (PTs) advertised by ADs, and source policies as route
// selection criteria.
//
// A Policy Term grants traversal of the advertising AD subject to
// constraints on the traffic source AD, destination AD, previous and next AD
// in the path, requested quality of service (QOS), User Class Identifier
// (UCI), and time of day. This is exactly the constraint vocabulary of the
// paper's §5.4.1 (path constraints on source/destination/previous/next AD,
// QOS, User Class, and "other global conditions").
package policy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ad"
)

// QOS is a quality-of-service class index. Class 0 is the default service.
// At most MaxClasses classes exist.
type QOS uint8

// UCI is a User Class Identifier. Class 0 is the default user class.
type UCI uint8

// MaxClasses bounds the number of distinct QOS or UCI classes, chosen so
// class sets fit a 32-bit mask in wire encodings.
const MaxClasses = 32

// ClassSet is a bitmask over QOS or UCI classes 0..31.
type ClassSet uint32

// AllClasses matches every class.
const AllClasses ClassSet = 1<<MaxClasses - 1

// ClassSetOf builds a set from the listed classes. Classes >= MaxClasses are
// ignored.
func ClassSetOf(classes ...uint8) ClassSet {
	var s ClassSet
	for _, c := range classes {
		if c < MaxClasses {
			s |= 1 << c
		}
	}
	return s
}

// Contains reports whether class c is in the set.
func (s ClassSet) Contains(c uint8) bool {
	return c < MaxClasses && s&(1<<c) != 0
}

// Count returns the number of classes in the set.
func (s ClassSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// ADSet is a possibly-universal set of AD IDs used in policy term
// constraints. The zero value is the empty set; use Universal() for the
// wildcard.
type ADSet struct {
	all bool
	ids map[ad.ID]struct{}
}

// Universal returns the set matching every AD.
func Universal() ADSet { return ADSet{all: true} }

// SetOf returns a set containing exactly the given ADs.
func SetOf(ids ...ad.ID) ADSet {
	s := ADSet{ids: make(map[ad.ID]struct{}, len(ids))}
	for _, id := range ids {
		s.ids[id] = struct{}{}
	}
	return s
}

// IsUniversal reports whether the set matches every AD.
func (s ADSet) IsUniversal() bool { return s.all }

// Contains reports whether id is in the set.
func (s ADSet) Contains(id ad.ID) bool {
	if s.all {
		return true
	}
	_, ok := s.ids[id]
	return ok
}

// Size returns the number of explicit members; it is 0 for the universal set
// (whose membership is implicit).
func (s ADSet) Size() int { return len(s.ids) }

// Members returns the explicit members in ascending order.
func (s ADSet) Members() []ad.ID {
	out := make([]ad.ID, 0, len(s.ids))
	for id := range s.ids {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Intersect returns the set of ADs in both s and o.
func (s ADSet) Intersect(o ADSet) ADSet {
	if s.all {
		return o
	}
	if o.all {
		return s
	}
	out := ADSet{ids: make(map[ad.ID]struct{})}
	for id := range s.ids {
		if _, ok := o.ids[id]; ok {
			out.ids[id] = struct{}{}
		}
	}
	return out
}

// Union returns the set of ADs in either s or o.
func (s ADSet) Union(o ADSet) ADSet {
	if s.all || o.all {
		return Universal()
	}
	out := ADSet{ids: make(map[ad.ID]struct{}, len(s.ids)+len(o.ids))}
	for id := range s.ids {
		out.ids[id] = struct{}{}
	}
	for id := range o.ids {
		out.ids[id] = struct{}{}
	}
	return out
}

// Empty reports whether the set matches no AD.
func (s ADSet) Empty() bool { return !s.all && len(s.ids) == 0 }

// Equal reports whether two sets have identical membership.
func (s ADSet) Equal(o ADSet) bool {
	if s.all != o.all {
		return false
	}
	if s.all {
		return true
	}
	if len(s.ids) != len(o.ids) {
		return false
	}
	for id := range s.ids {
		if _, ok := o.ids[id]; !ok {
			return false
		}
	}
	return true
}

// String renders "*" for the universal set, else the sorted member list.
func (s ADSet) String() string {
	if s.all {
		return "*"
	}
	parts := make([]string, 0, len(s.ids))
	for _, id := range s.Members() {
		parts = append(parts, id.String())
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// HourWindow is a time-of-day constraint in whole hours [Start, End).
// Start == 0 && End == 24 means always. If End < Start the window wraps
// midnight (e.g. 22..6).
type HourWindow struct {
	Start, End uint8
}

// Always is the unconstrained window.
var Always = HourWindow{Start: 0, End: 24}

// Contains reports whether hour h (0-23) is inside the window.
func (w HourWindow) Contains(h uint8) bool {
	h %= 24
	if w.Start == w.End {
		return false // empty window
	}
	if w == Always {
		return true
	}
	if w.Start < w.End {
		return h >= w.Start && h < w.End
	}
	return h >= w.Start || h < w.End
}

// IsAlways reports whether the window covers all 24 hours.
func (w HourWindow) IsAlways() bool { return w == Always }

// Term is one Policy Term: the advertising AD grants transit across itself
// to traffic matching all of the constraints. Cost is the metric the AD
// charges for the traversal (added to path cost during synthesis).
type Term struct {
	// Advertiser is the AD whose traversal this term permits.
	Advertiser ad.ID
	// Serial disambiguates multiple terms from one advertiser.
	Serial uint32
	// Sources constrains the origin AD of the traffic.
	Sources ADSet
	// Dests constrains the destination AD of the traffic.
	Dests ADSet
	// PrevADs constrains the AD from which traffic may enter.
	PrevADs ADSet
	// NextADs constrains the AD to which traffic may exit.
	NextADs ADSet
	// QOS is the set of service classes the term offers.
	QOS ClassSet
	// UCI is the set of user classes the term admits.
	UCI ClassSet
	// Hours is the time-of-day window during which the term is valid.
	Hours HourWindow
	// Cost is the advertised metric for crossing the AD under this term.
	Cost uint32
}

// Key uniquely identifies a term.
type Key struct {
	Advertiser ad.ID
	Serial     uint32
}

// Key returns the term's unique key.
func (t Term) Key() Key { return Key{Advertiser: t.Advertiser, Serial: t.Serial} }

// EqualContent reports whether two terms are identical apart from their
// serial numbers. SetTerms uses it to carry a term's key across a
// replacement, so scoped cache invalidation can tell "this term survived"
// from "this term changed".
func (t Term) EqualContent(o Term) bool {
	return t.Advertiser == o.Advertiser &&
		t.Sources.Equal(o.Sources) &&
		t.Dests.Equal(o.Dests) &&
		t.PrevADs.Equal(o.PrevADs) &&
		t.NextADs.Equal(o.NextADs) &&
		t.QOS == o.QOS &&
		t.UCI == o.UCI &&
		t.Hours == o.Hours &&
		t.Cost == o.Cost
}

// OpenTerm returns the least restrictive term for adID: all sources, dests,
// neighbors, classes, and hours, with cost 1. The paper recommends ADs
// "adopt the least restrictive policies possible" (§2.3); this is that
// policy.
func OpenTerm(adID ad.ID, serial uint32) Term {
	return Term{
		Advertiser: adID,
		Serial:     serial,
		Sources:    Universal(),
		Dests:      Universal(),
		PrevADs:    Universal(),
		NextADs:    Universal(),
		QOS:        AllClasses,
		UCI:        AllClasses,
		Hours:      Always,
		Cost:       1,
	}
}

// Request identifies a traffic class asking for a route: who is sending,
// to whom, with what service requirements, and when.
type Request struct {
	Src, Dst ad.ID
	QOS      QOS
	UCI      UCI
	Hour     uint8
}

// String implements fmt.Stringer.
func (r Request) String() string {
	return fmt.Sprintf("%v->%v qos=%d uci=%d h=%d", r.Src, r.Dst, r.QOS, r.UCI, r.Hour)
}

// Permits reports whether this term allows the advertiser to be traversed by
// traffic for req entering from prev and leaving toward next.
func (t Term) Permits(req Request, prev, next ad.ID) bool {
	return t.Sources.Contains(req.Src) &&
		t.Dests.Contains(req.Dst) &&
		t.PrevADs.Contains(prev) &&
		t.NextADs.Contains(next) &&
		t.QOS.Contains(uint8(req.QOS)) &&
		t.UCI.Contains(uint8(req.UCI)) &&
		t.Hours.Contains(req.Hour)
}

// String implements fmt.Stringer.
func (t Term) String() string {
	return fmt.Sprintf("PT{%v#%d src=%v dst=%v prev=%v next=%v cost=%d}",
		t.Advertiser, t.Serial, t.Sources, t.Dests, t.PrevADs, t.NextADs, t.Cost)
}

// Criteria is a source AD's route selection policy (§2.3 "route selection
// criteria"): which ADs to avoid, a hop budget, and ADs the source prefers
// to route through when there is a choice.
type Criteria struct {
	// Avoid lists ADs the source refuses to route through.
	Avoid ADSet
	// MaxHops caps the AD-path length (0 = unlimited).
	MaxHops int
	// Prefer lists ADs whose presence in a path makes it preferred when
	// costs tie.
	Prefer ADSet
}

// OpenCriteria accepts any route.
func OpenCriteria() Criteria { return Criteria{} }

// Accepts reports whether the source's criteria allow path.
func (c Criteria) Accepts(path ad.Path) bool {
	if c.MaxHops > 0 && path.Hops() > c.MaxHops {
		return false
	}
	if c.Avoid.IsUniversal() {
		// An avoid-everything policy still allows the direct path
		// (only source and destination, no transit).
		return len(path) <= 2
	}
	for i := 1; i < len(path)-1; i++ {
		if c.Avoid.Contains(path[i]) {
			return false
		}
	}
	return true
}

// PreferenceScore counts preferred ADs on the path; higher is better.
func (c Criteria) PreferenceScore(path ad.Path) int {
	score := 0
	for _, id := range path {
		if c.Prefer.Contains(id) {
			score++
		}
	}
	return score
}

// DB is the global policy database: the set of policy terms advertised by
// each AD, plus per-source selection criteria. A DB plays two roles: it is
// the ground truth an oracle evaluates against, and the content that
// link-state protocols flood.
type DB struct {
	terms    map[ad.ID][]Term
	criteria map[ad.ID]Criteria
	serial   map[ad.ID]uint32
}

// NewDB returns an empty policy database.
func NewDB() *DB {
	return &DB{
		terms:    make(map[ad.ID][]Term),
		criteria: make(map[ad.ID]Criteria),
		serial:   make(map[ad.ID]uint32),
	}
}

// Add inserts a term. If its Serial is zero, the next free serial for the
// advertiser is assigned. The stored term is returned.
func (db *DB) Add(t Term) Term {
	if t.Serial == 0 {
		db.serial[t.Advertiser]++
		t.Serial = db.serial[t.Advertiser]
	} else if t.Serial > db.serial[t.Advertiser] {
		db.serial[t.Advertiser] = t.Serial
	}
	db.terms[t.Advertiser] = append(db.terms[t.Advertiser], t)
	return t
}

// SetCriteria installs source selection criteria for an AD.
func (db *DB) SetCriteria(id ad.ID, c Criteria) { db.criteria[id] = c }

// CriteriaFor returns the selection criteria for id (open if none set).
func (db *DB) CriteriaFor(id ad.ID) Criteria { return db.criteria[id] }

// Terms returns the terms advertised by id. The returned slice is shared;
// callers must not modify it.
func (db *DB) Terms(id ad.ID) []Term { return db.terms[id] }

// NumTerms returns the total number of terms in the database.
func (db *DB) NumTerms() int {
	n := 0
	for _, ts := range db.terms {
		n += len(ts)
	}
	return n
}

// CriteriaADs returns the ADs with explicit selection criteria, ascending.
func (db *DB) CriteriaADs() []ad.ID {
	out := make([]ad.ID, 0, len(db.criteria))
	for id := range db.criteria {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Advertisers returns the ADs that advertise at least one term, ascending.
func (db *DB) Advertisers() []ad.ID {
	out := make([]ad.ID, 0, len(db.terms))
	for id := range db.terms {
		if len(db.terms[id]) > 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the database.
func (db *DB) Clone() *DB {
	c := NewDB()
	for id, ts := range db.terms {
		cp := make([]Term, len(ts))
		copy(cp, ts)
		c.terms[id] = cp
	}
	for id, cr := range db.criteria {
		c.criteria[id] = cr
	}
	for id, s := range db.serial {
		c.serial[id] = s
	}
	return c
}

// TermsDelta describes how an advertiser's term set changed across a
// SetTerms call, in the vocabulary scoped cache invalidation needs.
type TermsDelta struct {
	// AD is the advertiser whose terms changed.
	AD ad.ID
	// Removed lists the keys of terms that were dropped or whose content
	// changed: routes admitted by one of them may have lost their
	// permission. Sorted by serial.
	Removed []Key
	// Broadens reports whether any term was added or modified: request
	// pairs that previously had no legal route may have gained one.
	Broadens bool
}

// Empty reports whether the delta describes no change at all.
func (d TermsDelta) Empty() bool { return len(d.Removed) == 0 && !d.Broadens }

// pairTerms forces the advertiser on the incoming terms and matches each
// zero-serial one against an unclaimed old term with identical content,
// reusing its serial — stable term identity across replacements — then
// returns the prepared terms plus the old-vs-new delta. Incoming terms
// still holding serial 0 after pairing are genuinely new; Add assigns them
// fresh serials.
func pairTerms(id ad.ID, old, terms []Term) ([]Term, TermsDelta) {
	prepared := make([]Term, len(terms))
	used := make(map[uint32]bool, len(terms))
	for _, t := range terms {
		if t.Serial != 0 {
			used[t.Serial] = true
		}
	}
	for i, t := range terms {
		t.Advertiser = id
		if t.Serial == 0 {
			for _, o := range old {
				if !used[o.Serial] && t.EqualContent(o) {
					t.Serial = o.Serial
					used[o.Serial] = true
					break
				}
			}
		}
		prepared[i] = t
	}

	delta := TermsDelta{AD: id}
	oldByKey := make(map[Key]Term, len(old))
	for _, o := range old {
		oldByKey[o.Key()] = o
	}
	for _, t := range prepared {
		o, survives := oldByKey[t.Key()]
		switch {
		case t.Serial == 0:
			// Freshly added term (serial assigned later by Add).
			delta.Broadens = true
		case survives && t.EqualContent(o):
			delete(oldByKey, t.Key())
		case survives:
			// Same key, different content: dependents must go, and the
			// new content may admit routes the old one refused.
			delta.Removed = append(delta.Removed, t.Key())
			delta.Broadens = true
			delete(oldByKey, t.Key())
		default:
			// Explicit serial with no predecessor.
			delta.Broadens = true
		}
	}
	for k := range oldByKey {
		delta.Removed = append(delta.Removed, k)
	}
	sort.Slice(delta.Removed, func(i, j int) bool {
		return delta.Removed[i].Serial < delta.Removed[j].Serial
	})
	return prepared, delta
}

// SetTerms replaces id's advertised terms in place (advertiser fields are
// forced to id) and returns the delta between the old and new sets. A new
// term whose content is identical to a replaced one keeps that term's
// serial, so term keys — which scoped cache invalidation indexes routes by
// — stay stable across no-op and partial replacements. The route server
// uses this for policy changes on a live database; callers must hold off
// concurrent readers while mutating (e.g. via routeserver.Server.Mutate or
// MutateScoped).
func (db *DB) SetTerms(id ad.ID, terms []Term) TermsDelta {
	prepared, delta := pairTerms(id, db.terms[id], terms)
	db.terms[id] = nil
	for _, t := range prepared {
		db.Add(t)
	}
	return delta
}

// DiffTerms returns the delta SetTerms(id, terms) would produce, without
// mutating the database. Serving front ends use it to build the scoped
// change descriptor before applying the mutation under
// routeserver.Server.MutateScoped. It must not race with concurrent
// mutations of the database.
func (db *DB) DiffTerms(id ad.ID, terms []Term) TermsDelta {
	_, delta := pairTerms(id, db.terms[id], terms)
	return delta
}

// WithTerms returns a copy of the database in which id's terms are replaced
// by the given set (advertiser fields are forced to id). Criteria are
// preserved. Policy-impact analysis and runtime policy changes use this to
// build candidate databases without mutating the original.
func (db *DB) WithTerms(id ad.ID, terms []Term) *DB {
	out := NewDB()
	for _, adv := range db.Advertisers() {
		if adv == id {
			continue
		}
		for _, t := range db.terms[adv] {
			out.Add(t)
		}
	}
	for _, t := range terms {
		t.Advertiser = id
		out.Add(t)
	}
	for _, src := range db.CriteriaADs() {
		out.SetCriteria(src, db.criteria[src])
	}
	return out
}

// PermitsTransit reports whether any term of transit permits req entering
// from prev and exiting toward next, returning the cheapest matching term.
func (db *DB) PermitsTransit(transit ad.ID, req Request, prev, next ad.ID) (Term, bool) {
	var best Term
	found := false
	for _, t := range db.terms[transit] {
		if !t.Permits(req, prev, next) {
			continue
		}
		if !found || t.Cost < best.Cost {
			best = t
			found = true
		}
	}
	return best, found
}

// PathLegal reports whether path is legal for req: it must start at req.Src,
// end at req.Dst, be loop-free, satisfy the source's selection criteria, and
// every transit AD on it must advertise a term permitting the traversal.
// Endpoint ADs do not need transit terms for their own traffic (§2.1: stub
// ADs carry only traffic sourced or sunk locally).
func (db *DB) PathLegal(path ad.Path, req Request) bool {
	if len(path) < 1 || path.Source() != req.Src || path.Dest() != req.Dst {
		return false
	}
	if !path.LoopFree() {
		return false
	}
	if !db.CriteriaFor(req.Src).Accepts(path) {
		return false
	}
	for i := 1; i < len(path)-1; i++ {
		if _, ok := db.PermitsTransit(path[i], req, path[i-1], path[i+1]); !ok {
			return false
		}
	}
	return true
}

// PathCost returns the policy cost of a legal path: the sum of link costs in
// g plus the cost of the cheapest permitting term at each transit AD. The
// second return is false if the path is not legal or not connected in g.
func (db *DB) PathCost(g *ad.Graph, path ad.Path, req Request) (uint32, bool) {
	linkCost, ok := path.Cost(g)
	if !ok {
		return 0, false
	}
	if !db.PathLegal(path, req) {
		return 0, false
	}
	total := linkCost
	for i := 1; i < len(path)-1; i++ {
		t, ok := db.PermitsTransit(path[i], req, path[i-1], path[i+1])
		if !ok {
			return 0, false
		}
		total += t.Cost
	}
	return total, true
}
