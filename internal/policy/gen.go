package policy

import (
	"math/rand"

	"repro/internal/ad"
)

// GenConfig controls the synthetic policy generator. The zero value with
// Normalize applied produces the paper's recommended regime: coarse, open
// policies ("ADs should adopt the least restrictive policies possible and
// should control access at the coarsest granularity possible", §2.3).
// Raising the knobs moves toward the fine-grained regime whose costs the
// paper analyses.
type GenConfig struct {
	// Seed fixes the generator RNG.
	Seed int64
	// SourceRestrictionProb is the probability that a transit AD
	// restricts which source ADs may use it.
	SourceRestrictionProb float64
	// SourceFraction is the fraction of ADs admitted as sources by a
	// restricting transit AD.
	SourceFraction float64
	// DestRestrictionProb and DestFraction mirror the source knobs for
	// destination-specific policies.
	DestRestrictionProb float64
	DestFraction        float64
	// QOSClasses is the number of distinct QOS classes in the internet
	// (>= 1). Each transit AD offers class 0 always and each higher class
	// with probability QOSCoverage.
	QOSClasses  int
	QOSCoverage float64
	// UCIClasses is the number of distinct user classes (>= 1). Each
	// transit AD admits class 0 always and each higher class with
	// probability UCICoverage.
	UCIClasses  int
	UCICoverage float64
	// TimeWindowProb is the probability a term carries a non-always
	// time-of-day window.
	TimeWindowProb float64
	// TermsPerTransit splits each transit AD's policy into this many
	// separate terms over destination partitions, modelling granularity
	// (>= 1). More terms = finer-grained policy = bigger LSDB.
	TermsPerTransit int
	// HybridSourceFraction is the fraction of ADs a hybrid
	// (limited-transit) AD carries traffic for; hybrids always restrict.
	HybridSourceFraction float64
	// AvoidProb is the probability a stub source AD has an avoid-list
	// selection criterion; AvoidCount is its size.
	AvoidProb  float64
	AvoidCount int
	// MaxTermCost is the upper bound for random per-term transit costs
	// (cost drawn uniformly from [1, MaxTermCost]). 0 means cost 1.
	MaxTermCost int
}

// Normalize fills zero fields with defaults that produce a legal, mostly
// open policy set, and clamps probabilities into [0,1].
func (c GenConfig) Normalize() GenConfig {
	if c.QOSClasses < 1 {
		c.QOSClasses = 1
	}
	if c.QOSClasses > MaxClasses {
		c.QOSClasses = MaxClasses
	}
	if c.UCIClasses < 1 {
		c.UCIClasses = 1
	}
	if c.UCIClasses > MaxClasses {
		c.UCIClasses = MaxClasses
	}
	if c.QOSCoverage == 0 {
		c.QOSCoverage = 0.8
	}
	if c.UCICoverage == 0 {
		c.UCICoverage = 0.8
	}
	if c.TermsPerTransit < 1 {
		c.TermsPerTransit = 1
	}
	if c.SourceFraction == 0 {
		c.SourceFraction = 0.5
	}
	if c.DestFraction == 0 {
		c.DestFraction = 0.5
	}
	if c.HybridSourceFraction == 0 {
		c.HybridSourceFraction = 0.3
	}
	if c.AvoidCount == 0 {
		c.AvoidCount = 1
	}
	clamp := func(p *float64) {
		if *p < 0 {
			*p = 0
		}
		if *p > 1 {
			*p = 1
		}
	}
	clamp(&c.SourceRestrictionProb)
	clamp(&c.SourceFraction)
	clamp(&c.DestRestrictionProb)
	clamp(&c.DestFraction)
	clamp(&c.QOSCoverage)
	clamp(&c.UCICoverage)
	clamp(&c.TimeWindowProb)
	clamp(&c.HybridSourceFraction)
	clamp(&c.AvoidProb)
	return c
}

// Generate builds a policy database for graph g under config c.
//
// Class behaviour follows the paper's AD taxonomy (§2.1):
//   - Stub and multi-homed stub ADs advertise no transit terms at all.
//   - Transit ADs advertise terms for all traffic, restricted per the knobs.
//   - Hybrid ADs advertise limited-transit terms: a restricted source set.
func Generate(g *ad.Graph, c GenConfig) *DB {
	c = c.Normalize()
	rng := rand.New(rand.NewSource(c.Seed))
	db := NewDB()
	all := g.IDs()

	qosSet := func() ClassSet {
		s := ClassSetOf(0)
		for q := 1; q < c.QOSClasses; q++ {
			if rng.Float64() < c.QOSCoverage {
				s |= 1 << uint(q)
			}
		}
		return s
	}
	uciSet := func() ClassSet {
		s := ClassSetOf(0)
		for u := 1; u < c.UCIClasses; u++ {
			if rng.Float64() < c.UCICoverage {
				s |= 1 << uint(u)
			}
		}
		return s
	}
	randomSubset := func(frac float64, exclude ad.ID) ADSet {
		n := int(frac * float64(len(all)))
		if n < 1 {
			n = 1
		}
		perm := rng.Perm(len(all))
		picked := make([]ad.ID, 0, n)
		for _, idx := range perm {
			if all[idx] == exclude {
				continue
			}
			picked = append(picked, all[idx])
			if len(picked) == n {
				break
			}
		}
		return SetOf(picked...)
	}
	window := func() HourWindow {
		if rng.Float64() >= c.TimeWindowProb {
			return Always
		}
		start := uint8(rng.Intn(24))
		length := uint8(4 + rng.Intn(16)) // 4..19 hour window
		return HourWindow{Start: start, End: (start + length) % 24}
	}
	cost := func() uint32 {
		if c.MaxTermCost <= 1 {
			return 1
		}
		return uint32(1 + rng.Intn(c.MaxTermCost))
	}

	// Destination partitions for granularity: split the AD space into
	// TermsPerTransit contiguous chunks; each term covers one chunk.
	destPartition := func(k int) ADSet {
		if c.TermsPerTransit == 1 {
			return Universal()
		}
		chunk := (len(all) + c.TermsPerTransit - 1) / c.TermsPerTransit
		lo := k * chunk
		if lo >= len(all) {
			// More terms than ADs: surplus terms repeat full coverage
			// so granularity sweeps still emit the requested count.
			return Universal()
		}
		hi := lo + chunk
		if hi > len(all) {
			hi = len(all)
		}
		return SetOf(all[lo:hi]...)
	}

	for _, info := range g.ADs() {
		switch info.Class {
		case ad.Stub, ad.MultihomedStub:
			// No transit terms: paper §2.1, stubs disallow transit.
		case ad.Transit:
			sources := Universal()
			if rng.Float64() < c.SourceRestrictionProb {
				sources = randomSubset(c.SourceFraction, info.ID)
			}
			dests := Universal()
			if rng.Float64() < c.DestRestrictionProb {
				dests = randomSubset(c.DestFraction, info.ID)
			}
			for k := 0; k < c.TermsPerTransit; k++ {
				part := destPartition(k)
				d := dests
				if !part.IsUniversal() {
					d = intersect(dests, part, all)
				}
				db.Add(Term{
					Advertiser: info.ID,
					Sources:    sources,
					Dests:      d,
					PrevADs:    Universal(),
					NextADs:    Universal(),
					QOS:        qosSet(),
					UCI:        uciSet(),
					Hours:      window(),
					Cost:       cost(),
				})
			}
		case ad.Hybrid:
			// Limited transit: always a restricted source set.
			db.Add(Term{
				Advertiser: info.ID,
				Sources:    randomSubset(c.HybridSourceFraction, info.ID),
				Dests:      Universal(),
				PrevADs:    Universal(),
				NextADs:    Universal(),
				QOS:        qosSet(),
				UCI:        uciSet(),
				Hours:      window(),
				Cost:       cost(),
			})
		}
	}

	// Source selection criteria for stub ADs.
	for _, info := range g.ADs() {
		if info.Class != ad.Stub && info.Class != ad.MultihomedStub {
			continue
		}
		if rng.Float64() < c.AvoidProb {
			avoid := randomSubset(float64(c.AvoidCount)/float64(len(all)), info.ID)
			db.SetCriteria(info.ID, Criteria{Avoid: avoid})
		}
	}
	return db
}

// intersect returns the intersection of two ADSets given the universe.
func intersect(a, b ADSet, universe []ad.ID) ADSet {
	if a.IsUniversal() {
		return b
	}
	if b.IsUniversal() {
		return a
	}
	var out []ad.ID
	for _, id := range universe {
		if a.Contains(id) && b.Contains(id) {
			out = append(out, id)
		}
	}
	return SetOf(out...)
}

// OpenDB returns the least restrictive database for g: every transit and
// hybrid AD advertises one open term; no source criteria. This is the
// baseline against which restriction experiments compare.
func OpenDB(g *ad.Graph) *DB {
	db := NewDB()
	for _, info := range g.ADs() {
		if info.Class == ad.Transit || info.Class == ad.Hybrid {
			db.Add(OpenTerm(info.ID, 0))
		}
	}
	return db
}
