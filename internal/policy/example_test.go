package policy_test

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/policy"
)

// ExampleTerm_Permits shows the full constraint vocabulary of a Policy Term
// (paper §5.4.1): source, destination, previous/next AD, service class,
// user class, and time of day all gate the traversal.
func ExampleTerm_Permits() {
	term := policy.Term{
		Advertiser: 5,
		Sources:    policy.SetOf(1),                      // only AD1's traffic
		Dests:      policy.Universal(),                   // to anywhere
		PrevADs:    policy.Universal(),                   // entering from anyone
		NextADs:    policy.SetOf(9),                      // but exiting only toward AD9
		QOS:        policy.ClassSetOf(0),                 // best-effort only
		UCI:        policy.AllClasses,                    // any user class
		Hours:      policy.HourWindow{Start: 8, End: 18}, // business hours
		Cost:       2,
	}
	daytime := policy.Request{Src: 1, Dst: 12, QOS: 0, Hour: 10}
	night := policy.Request{Src: 1, Dst: 12, QOS: 0, Hour: 23}
	otherSource := policy.Request{Src: 3, Dst: 12, QOS: 0, Hour: 10}

	fmt.Println(term.Permits(daytime, 4, 9))
	fmt.Println(term.Permits(night, 4, 9))
	fmt.Println(term.Permits(otherSource, 4, 9))
	fmt.Println(term.Permits(daytime, 4, 7)) // wrong next hop
	// Output:
	// true
	// false
	// false
	// false
}

// ExampleDB_PathLegal evaluates a whole AD path: every transit AD on the
// path must advertise a permitting term; endpoints need none.
func ExampleDB_PathLegal() {
	db := policy.NewDB()
	db.Add(policy.OpenTerm(2, 0)) // AD2 is an open transit
	req := policy.Request{Src: 1, Dst: 3}
	fmt.Println(db.PathLegal(ad.Path{1, 2, 3}, req)) // via the transit
	fmt.Println(db.PathLegal(ad.Path{1, 4, 3}, req)) // AD4 advertises nothing
	// Output:
	// true
	// false
}
