package policy

import (
	"testing"
	"testing/quick"

	"repro/internal/ad"
)

func TestClassSet(t *testing.T) {
	s := ClassSetOf(0, 3, 31)
	if !s.Contains(0) || !s.Contains(3) || !s.Contains(31) {
		t.Error("ClassSetOf members missing")
	}
	if s.Contains(1) || s.Contains(32) {
		t.Error("ClassSet contains spurious members")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	if AllClasses.Count() != 32 {
		t.Errorf("AllClasses.Count = %d, want 32", AllClasses.Count())
	}
	// Out-of-range classes ignored by constructor.
	if ClassSetOf(40).Count() != 0 {
		t.Error("out-of-range class admitted")
	}
}

func TestADSet(t *testing.T) {
	u := Universal()
	if !u.IsUniversal() || !u.Contains(123) {
		t.Error("Universal set wrong")
	}
	if u.String() != "*" {
		t.Errorf("Universal String = %q", u.String())
	}
	s := SetOf(3, 1)
	if s.IsUniversal() {
		t.Error("explicit set reported universal")
	}
	if !s.Contains(1) || !s.Contains(3) || s.Contains(2) {
		t.Error("SetOf membership wrong")
	}
	m := s.Members()
	if len(m) != 2 || m[0] != 1 || m[1] != 3 {
		t.Errorf("Members = %v", m)
	}
	if s.String() != "{AD1,AD3}" {
		t.Errorf("String = %q", s.String())
	}
	var empty ADSet
	if empty.Contains(1) || empty.IsUniversal() || empty.Size() != 0 {
		t.Error("zero ADSet should be empty")
	}
}

func TestHourWindow(t *testing.T) {
	cases := []struct {
		w    HourWindow
		h    uint8
		want bool
	}{
		{Always, 0, true},
		{Always, 23, true},
		{HourWindow{9, 17}, 9, true},
		{HourWindow{9, 17}, 16, true},
		{HourWindow{9, 17}, 17, false},
		{HourWindow{9, 17}, 3, false},
		{HourWindow{22, 6}, 23, true}, // wraps midnight
		{HourWindow{22, 6}, 2, true},
		{HourWindow{22, 6}, 12, false},
		{HourWindow{5, 5}, 5, false}, // empty window
		{Always, 25, true},           // hour normalized mod 24
	}
	for _, tc := range cases {
		if got := tc.w.Contains(tc.h); got != tc.want {
			t.Errorf("window %+v contains %d = %v, want %v", tc.w, tc.h, got, tc.want)
		}
	}
	if !Always.IsAlways() || (HourWindow{1, 5}).IsAlways() {
		t.Error("IsAlways wrong")
	}
}

func TestTermPermits(t *testing.T) {
	term := Term{
		Advertiser: 5,
		Sources:    SetOf(1, 2),
		Dests:      Universal(),
		PrevADs:    SetOf(4),
		NextADs:    SetOf(6),
		QOS:        ClassSetOf(0, 1),
		UCI:        ClassSetOf(0),
		Hours:      Always,
	}
	base := Request{Src: 1, Dst: 9, QOS: 0, UCI: 0, Hour: 12}
	if !term.Permits(base, 4, 6) {
		t.Error("expected permit")
	}
	bad := base
	bad.Src = 3
	if term.Permits(bad, 4, 6) {
		t.Error("wrong source admitted")
	}
	if term.Permits(base, 7, 6) {
		t.Error("wrong prev admitted")
	}
	if term.Permits(base, 4, 7) {
		t.Error("wrong next admitted")
	}
	badQ := base
	badQ.QOS = 2
	if term.Permits(badQ, 4, 6) {
		t.Error("unoffered QOS admitted")
	}
	badU := base
	badU.UCI = 1
	if term.Permits(badU, 4, 6) {
		t.Error("unadmitted UCI accepted")
	}
}

func TestOpenTermPermitsEverything(t *testing.T) {
	term := OpenTerm(5, 1)
	f := func(src, dst, prev, next uint32, qos, uci, hour uint8) bool {
		req := Request{Src: ad.ID(src), Dst: ad.ID(dst), QOS: QOS(qos % 32), UCI: UCI(uci % 32), Hour: hour % 24}
		return term.Permits(req, ad.ID(prev), ad.ID(next))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCriteria(t *testing.T) {
	c := Criteria{Avoid: SetOf(5), MaxHops: 3}
	if !c.Accepts(ad.Path{1, 2, 3}) {
		t.Error("clean path rejected")
	}
	if c.Accepts(ad.Path{1, 5, 3}) {
		t.Error("avoided transit accepted")
	}
	// Avoided AD as an endpoint is fine: avoid applies to transit only.
	if !c.Accepts(ad.Path{5, 2, 3}) {
		t.Error("avoided AD as source rejected")
	}
	if c.Accepts(ad.Path{1, 2, 3, 4, 6}) {
		t.Error("over-hop path accepted")
	}
	if !OpenCriteria().Accepts(ad.Path{1, 2, 3, 4, 5, 6, 7}) {
		t.Error("open criteria rejected a path")
	}
	// Universal avoid: only direct paths allowed.
	ua := Criteria{Avoid: Universal()}
	if !ua.Accepts(ad.Path{1, 2}) || ua.Accepts(ad.Path{1, 3, 2}) {
		t.Error("universal avoid semantics wrong")
	}
	p := Criteria{Prefer: SetOf(2, 3)}
	if p.PreferenceScore(ad.Path{1, 2, 3, 4}) != 2 {
		t.Error("PreferenceScore wrong")
	}
}

// lineGraph builds 1-2-3-4-5 with AD classes: ends stubs, middle transit.
func lineGraph(t *testing.T) *ad.Graph {
	t.Helper()
	g := ad.NewGraph()
	ids := make([]ad.ID, 5)
	for i := range ids {
		class := ad.Transit
		if i == 0 || i == len(ids)-1 {
			class = ad.Stub
		}
		ids[i] = g.AddAD("n", class, ad.Regional)
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := g.AddLink(ad.Link{A: ids[i], B: ids[i+1], Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestDBPathLegal(t *testing.T) {
	g := lineGraph(t)
	db := OpenDB(g)
	req := Request{Src: 1, Dst: 5}
	if !db.PathLegal(ad.Path{1, 2, 3, 4, 5}, req) {
		t.Error("open path rejected")
	}
	if db.PathLegal(ad.Path{1, 2, 3}, req) {
		t.Error("path not ending at dst accepted")
	}
	if db.PathLegal(ad.Path{2, 3, 4, 5}, req) {
		t.Error("path not starting at src accepted")
	}
	if db.PathLegal(ad.Path{1, 2, 3, 2, 4, 5}, req) {
		t.Error("looping path accepted")
	}
	// Stub AD as transit must be illegal (no terms advertised).
	db2 := NewDB()
	db2.Add(OpenTerm(2, 0))
	db2.Add(OpenTerm(4, 0)) // 3 has no term
	if db2.PathLegal(ad.Path{1, 2, 3, 4, 5}, req) {
		t.Error("path through termless AD accepted")
	}
}

func TestDBPathLegalRespectsCriteria(t *testing.T) {
	g := lineGraph(t)
	db := OpenDB(g)
	db.SetCriteria(1, Criteria{Avoid: SetOf(3)})
	req := Request{Src: 1, Dst: 5}
	if db.PathLegal(ad.Path{1, 2, 3, 4, 5}, req) {
		t.Error("path violating source criteria accepted")
	}
}

func TestDBPermitsTransitPicksCheapest(t *testing.T) {
	db := NewDB()
	t1 := OpenTerm(2, 0)
	t1.Cost = 5
	db.Add(t1)
	t2 := OpenTerm(2, 0)
	t2.Cost = 2
	db.Add(t2)
	got, ok := db.PermitsTransit(2, Request{Src: 1, Dst: 3}, 1, 3)
	if !ok || got.Cost != 2 {
		t.Errorf("PermitsTransit = %+v,%v want cost 2", got, ok)
	}
}

func TestDBPathCost(t *testing.T) {
	g := lineGraph(t)
	db := NewDB()
	for _, id := range []ad.ID{2, 3, 4} {
		term := OpenTerm(id, 0)
		term.Cost = 10
		db.Add(term)
	}
	req := Request{Src: 1, Dst: 5}
	cost, ok := db.PathCost(g, ad.Path{1, 2, 3, 4, 5}, req)
	if !ok {
		t.Fatal("legal path cost not computed")
	}
	// 4 links at cost 1 + 3 transits at cost 10.
	if cost != 34 {
		t.Errorf("cost = %d, want 34", cost)
	}
	if _, ok := db.PathCost(g, ad.Path{1, 3, 5}, req); ok {
		t.Error("cost computed for disconnected path")
	}
}

func TestDBSerialAssignment(t *testing.T) {
	db := NewDB()
	a := db.Add(OpenTerm(7, 0))
	b := db.Add(OpenTerm(7, 0))
	if a.Serial == 0 || b.Serial == 0 || a.Serial == b.Serial {
		t.Errorf("serials not unique: %d %d", a.Serial, b.Serial)
	}
	c := db.Add(OpenTerm(7, 100))
	if c.Serial != 100 {
		t.Errorf("explicit serial overridden: %d", c.Serial)
	}
	d := db.Add(OpenTerm(7, 0))
	if d.Serial <= 100 {
		t.Errorf("serial after explicit 100 = %d, want > 100", d.Serial)
	}
	if db.NumTerms() != 4 {
		t.Errorf("NumTerms = %d, want 4", db.NumTerms())
	}
}

func TestDBClone(t *testing.T) {
	db := NewDB()
	db.Add(OpenTerm(2, 0))
	db.SetCriteria(1, Criteria{MaxHops: 2})
	c := db.Clone()
	c.Add(OpenTerm(3, 0))
	if db.NumTerms() != 1 {
		t.Error("clone Add leaked into original")
	}
	if c.CriteriaFor(1).MaxHops != 2 {
		t.Error("criteria not cloned")
	}
	if got := c.Advertisers(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Advertisers = %v", got)
	}
}

func TestGenerateOpenDefaults(t *testing.T) {
	g := lineGraph(t)
	db := Generate(g, GenConfig{Seed: 1})
	req := Request{Src: 1, Dst: 5}
	if !db.PathLegal(ad.Path{1, 2, 3, 4, 5}, req) {
		t.Error("default generated policy rejects the only path")
	}
	// Stubs advertise nothing.
	if len(db.Terms(1)) != 0 || len(db.Terms(5)) != 0 {
		t.Error("stub AD advertised transit terms")
	}
	// Transits advertise exactly one open term.
	for _, id := range []ad.ID{2, 3, 4} {
		ts := db.Terms(id)
		if len(ts) != 1 {
			t.Fatalf("transit %v has %d terms, want 1", id, len(ts))
		}
		if !ts[0].Sources.IsUniversal() || !ts[0].Dests.IsUniversal() {
			t.Errorf("default term for %v is restricted: %v", id, ts[0])
		}
	}
}

func TestGenerateRestriction(t *testing.T) {
	g := lineGraph(t)
	cfg := GenConfig{Seed: 42, SourceRestrictionProb: 1, SourceFraction: 0.3}
	db := Generate(g, cfg)
	for _, id := range []ad.ID{2, 3, 4} {
		ts := db.Terms(id)
		if len(ts) != 1 {
			t.Fatalf("transit %v term count %d", id, len(ts))
		}
		if ts[0].Sources.IsUniversal() {
			t.Errorf("transit %v should be source-restricted", id)
		}
	}
}

func TestGenerateGranularity(t *testing.T) {
	g := lineGraph(t)
	db := Generate(g, GenConfig{Seed: 7, TermsPerTransit: 4})
	for _, id := range []ad.ID{2, 3, 4} {
		if got := len(db.Terms(id)); got != 4 {
			t.Errorf("transit %v terms = %d, want 4", id, got)
		}
	}
	// The union of destination partitions must cover all ADs, so any
	// destination remains reachable through any transit.
	req := Request{Src: 1, Dst: 5}
	if !db.PathLegal(ad.Path{1, 2, 3, 4, 5}, req) {
		t.Error("partitioned terms broke coverage")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	g := lineGraph(t)
	cfg := GenConfig{Seed: 9, SourceRestrictionProb: 0.5, QOSClasses: 4, TimeWindowProb: 0.5}
	a := Generate(g, cfg)
	b := Generate(g, cfg)
	if a.NumTerms() != b.NumTerms() {
		t.Fatalf("term counts differ: %d vs %d", a.NumTerms(), b.NumTerms())
	}
	for _, id := range g.IDs() {
		ta, tb := a.Terms(id), b.Terms(id)
		if len(ta) != len(tb) {
			t.Fatalf("terms for %v differ in count", id)
		}
		for i := range ta {
			if ta[i].String() != tb[i].String() || ta[i].QOS != tb[i].QOS {
				t.Errorf("term %d for %v differs: %v vs %v", i, id, ta[i], tb[i])
			}
		}
	}
}

func TestGenerateHybridRestricted(t *testing.T) {
	g := ad.NewGraph()
	s1 := g.AddAD("s1", ad.Stub, ad.Campus)
	h := g.AddAD("h", ad.Hybrid, ad.Regional)
	s2 := g.AddAD("s2", ad.Stub, ad.Campus)
	if err := g.AddLink(ad.Link{A: s1, B: h}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(ad.Link{A: h, B: s2}); err != nil {
		t.Fatal(err)
	}
	db := Generate(g, GenConfig{Seed: 3})
	ts := db.Terms(h)
	if len(ts) != 1 {
		t.Fatalf("hybrid terms = %d, want 1", len(ts))
	}
	if ts[0].Sources.IsUniversal() {
		t.Error("hybrid AD advertised unrestricted sources")
	}
}

func TestGenConfigNormalizeClamps(t *testing.T) {
	c := GenConfig{SourceRestrictionProb: 2, QOSClasses: 100, TermsPerTransit: -1}.Normalize()
	if c.SourceRestrictionProb != 1 {
		t.Errorf("prob not clamped: %v", c.SourceRestrictionProb)
	}
	if c.QOSClasses != MaxClasses {
		t.Errorf("QOSClasses not clamped: %d", c.QOSClasses)
	}
	if c.TermsPerTransit != 1 {
		t.Errorf("TermsPerTransit not normalized: %d", c.TermsPerTransit)
	}
}

func TestRequestString(t *testing.T) {
	s := Request{Src: 1, Dst: 2, QOS: 3, UCI: 4, Hour: 5}.String()
	if s != "AD1->AD2 qos=3 uci=4 h=5" {
		t.Errorf("Request.String = %q", s)
	}
}

func TestTermKey(t *testing.T) {
	term := OpenTerm(9, 4)
	if term.Key() != (Key{Advertiser: 9, Serial: 4}) {
		t.Errorf("Key = %+v", term.Key())
	}
}

func TestADSetOps(t *testing.T) {
	a := SetOf(1, 2, 3)
	b := SetOf(2, 3, 4)
	inter := a.Intersect(b)
	if inter.Contains(1) || !inter.Contains(2) || !inter.Contains(3) || inter.Contains(4) {
		t.Errorf("Intersect = %v", inter)
	}
	uni := a.Union(b)
	for _, id := range []ad.ID{1, 2, 3, 4} {
		if !uni.Contains(id) {
			t.Errorf("Union missing %v", id)
		}
	}
	if uni.Contains(5) {
		t.Error("Union has spurious member")
	}
	// Universal interactions.
	u := Universal()
	if got := u.Intersect(a); got.IsUniversal() || !got.Contains(1) || got.Contains(4) {
		t.Errorf("Universal∩a = %v", got)
	}
	if got := a.Intersect(u); !got.Contains(3) {
		t.Errorf("a∩Universal = %v", got)
	}
	if !a.Union(u).IsUniversal() || !u.Union(a).IsUniversal() {
		t.Error("union with universal not universal")
	}
	// Empty.
	if !SetOf().Empty() || a.Empty() || u.Empty() {
		t.Error("Empty wrong")
	}
	if !SetOf(1).Intersect(SetOf(2)).Empty() {
		t.Error("disjoint intersect not empty")
	}
}

func TestCriteriaADs(t *testing.T) {
	db := NewDB()
	if len(db.CriteriaADs()) != 0 {
		t.Error("empty DB has criteria ADs")
	}
	db.SetCriteria(5, Criteria{MaxHops: 3})
	db.SetCriteria(2, Criteria{MaxHops: 1})
	got := db.CriteriaADs()
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Errorf("CriteriaADs = %v", got)
	}
}

func TestWithTerms(t *testing.T) {
	db := NewDB()
	db.Add(OpenTerm(1, 0))
	db.Add(OpenTerm(2, 0))
	db.SetCriteria(9, Criteria{MaxHops: 4})

	replacement := OpenTerm(0, 7) // advertiser forced to target
	replacement.Cost = 3
	out := db.WithTerms(2, []Term{replacement})

	// Original untouched.
	if len(db.Terms(2)) != 1 || db.Terms(2)[0].Cost != 1 {
		t.Error("WithTerms mutated original")
	}
	// Replacement applied with advertiser forced.
	ts := out.Terms(2)
	if len(ts) != 1 || ts[0].Cost != 3 || ts[0].Advertiser != 2 {
		t.Errorf("replaced terms = %+v", ts)
	}
	// Other advertisers and criteria preserved.
	if len(out.Terms(1)) != 1 {
		t.Error("other advertiser lost")
	}
	if out.CriteriaFor(9).MaxHops != 4 {
		t.Error("criteria lost")
	}
	// Removal via empty set.
	none := db.WithTerms(1, nil)
	if len(none.Terms(1)) != 0 {
		t.Error("WithTerms(nil) did not remove terms")
	}
}

func TestGenerateTimeWindows(t *testing.T) {
	g := lineGraph(t)
	db := Generate(g, GenConfig{Seed: 6, TimeWindowProb: 1})
	windowed := 0
	for _, id := range []ad.ID{2, 3, 4} {
		for _, term := range db.Terms(id) {
			if !term.Hours.IsAlways() {
				windowed++
				// Generated windows span 4-19 hours; verify they
				// admit some hour and reject another.
				admits, rejects := false, false
				for h := uint8(0); h < 24; h++ {
					if term.Hours.Contains(h) {
						admits = true
					} else {
						rejects = true
					}
				}
				if !admits || !rejects {
					t.Errorf("degenerate window %+v", term.Hours)
				}
			}
		}
	}
	if windowed == 0 {
		t.Error("TimeWindowProb=1 produced no windowed terms")
	}
}

func TestGenerateMaxTermCost(t *testing.T) {
	g := lineGraph(t)
	db := Generate(g, GenConfig{Seed: 7, MaxTermCost: 5, TermsPerTransit: 4})
	seen := map[uint32]bool{}
	for _, id := range []ad.ID{2, 3, 4} {
		for _, term := range db.Terms(id) {
			if term.Cost < 1 || term.Cost > 5 {
				t.Errorf("cost %d out of [1,5]", term.Cost)
			}
			seen[term.Cost] = true
		}
	}
	if len(seen) < 2 {
		t.Error("MaxTermCost produced uniform costs")
	}
}
