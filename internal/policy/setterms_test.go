package policy

import (
	"testing"

	"repro/internal/ad"
)

func TestSetTermsReplacesInPlace(t *testing.T) {
	db := NewDB()
	db.Add(OpenTerm(3, 0))
	db.Add(OpenTerm(3, 0))
	db.Add(OpenTerm(5, 0))
	if got := len(db.Terms(3)); got != 2 {
		t.Fatalf("setup: %d terms", got)
	}

	repl := OpenTerm(9, 0) // advertiser field must be forced to 3
	repl.Cost = 7
	db.SetTerms(3, []Term{repl})

	terms := db.Terms(3)
	if len(terms) != 1 {
		t.Fatalf("len(Terms(3)) = %d, want 1", len(terms))
	}
	if terms[0].Advertiser != ad.ID(3) || terms[0].Cost != 7 {
		t.Fatalf("stored term = %+v", terms[0])
	}
	if len(db.Terms(5)) != 1 {
		t.Fatal("unrelated advertiser mutated")
	}

	db.SetTerms(5, nil)
	if len(db.Terms(5)) != 0 {
		t.Fatal("SetTerms(nil) should clear the advertiser")
	}
	for _, adv := range db.Advertisers() {
		if adv == ad.ID(5) {
			t.Fatal("cleared advertiser still listed")
		}
	}
}
