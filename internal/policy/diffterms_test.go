package policy

import (
	"testing"

	"repro/internal/ad"
)

// diffWorld builds a two-term DB at AD 5 for the delta tests.
func diffWorld(t *testing.T) (*DB, Term, Term) {
	t.Helper()
	id := ad.ID(5)
	db := NewDB()
	a := OpenTerm(id, 0)
	b := OpenTerm(id, 0)
	b.Cost = 7
	db.Add(a)
	db.Add(b)
	terms := db.Terms(id)
	if len(terms) != 2 || terms[0].Serial == 0 || terms[1].Serial == 0 {
		t.Fatalf("setup: terms = %+v", terms)
	}
	return db, terms[0], terms[1]
}

func TestDiffTermsNoChange(t *testing.T) {
	db, a, b := diffWorld(t)
	d := db.DiffTerms(a.Advertiser, []Term{a, b})
	if !d.Empty() {
		t.Fatalf("identical replacement produced delta %+v", d)
	}
	// Serial-stripped but content-identical terms pair with the existing
	// ones (stable term identity), so the delta is still empty.
	a2, b2 := a, b
	a2.Serial, b2.Serial = 0, 0
	if d := db.DiffTerms(a.Advertiser, []Term{a2, b2}); !d.Empty() {
		t.Fatalf("content-identical replacement produced delta %+v", d)
	}
}

func TestDiffTermsRemoval(t *testing.T) {
	db, a, b := diffWorld(t)
	d := db.DiffTerms(a.Advertiser, []Term{a})
	if d.Broadens {
		t.Fatalf("pure removal reported Broadens: %+v", d)
	}
	if len(d.Removed) != 1 || d.Removed[0] != b.Key() {
		t.Fatalf("Removed = %+v, want [%v]", d.Removed, b.Key())
	}
}

func TestDiffTermsModification(t *testing.T) {
	db, a, b := diffWorld(t)
	// Same serial, new content: dependents of the old content must go and
	// the new content may admit previously refused routes.
	mod := b
	mod.Cost = 1
	d := db.DiffTerms(a.Advertiser, []Term{a, mod})
	if !d.Broadens {
		t.Fatalf("modification did not broaden: %+v", d)
	}
	if len(d.Removed) != 1 || d.Removed[0] != b.Key() {
		t.Fatalf("Removed = %+v, want [%v]", d.Removed, b.Key())
	}
}

func TestDiffTermsAddition(t *testing.T) {
	db, a, b := diffWorld(t)
	extra := OpenTerm(a.Advertiser, 0)
	extra.Cost = 99
	d := db.DiffTerms(a.Advertiser, []Term{a, b, extra})
	if !d.Broadens || len(d.Removed) != 0 {
		t.Fatalf("pure addition delta = %+v, want Broadens only", d)
	}
}

func TestDiffTermsMatchesSetTerms(t *testing.T) {
	db, a, b := diffWorld(t)
	mod := b
	mod.Cost = 3
	next := []Term{a, mod}
	want := db.DiffTerms(a.Advertiser, next)
	got := db.SetTerms(a.Advertiser, next)
	if want.AD != got.AD || want.Broadens != got.Broadens ||
		len(want.Removed) != len(got.Removed) {
		t.Fatalf("DiffTerms %+v != SetTerms %+v", want, got)
	}
	for i := range want.Removed {
		if want.Removed[i] != got.Removed[i] {
			t.Fatalf("DiffTerms %+v != SetTerms %+v", want, got)
		}
	}
	// DiffTerms must not have mutated: a second identical SetTerms is a
	// no-op delta.
	if d := db.SetTerms(a.Advertiser, next); !d.Empty() {
		t.Fatalf("SetTerms after DiffTerms not idempotent: %+v", d)
	}
}
