// Package dvcore provides the routing-table machinery shared by the
// distance-vector family of protocols in this repository (plain DV, ECMA,
// and the EGP baseline): a (destination, QOS)-keyed table with change
// tracking for triggered updates.
package dvcore

import (
	"sort"

	"repro/internal/ad"
	"repro/internal/policy"
)

// Key identifies a routing-table entry: a destination AD and a QOS class
// (protocols without QOS routing use class 0).
type Key struct {
	Dest ad.ID
	QOS  policy.QOS
}

// Entry is one routing-table row.
type Entry struct {
	Key     Key
	Metric  uint32
	NextHop ad.ID
	// Flags carries protocol-specific bits (e.g. ECMA's traversed-down
	// marker).
	Flags uint8
}

// Table is a distance-vector routing table with dirty-key tracking: every
// mutation records the key so the protocol can emit triggered updates for
// exactly the changed routes.
type Table struct {
	entries map[Key]Entry
	dirty   map[Key]struct{}
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		entries: make(map[Key]Entry),
		dirty:   make(map[Key]struct{}),
	}
}

// Get returns the entry for k, if present.
func (t *Table) Get(k Key) (Entry, bool) {
	e, ok := t.entries[k]
	return e, ok
}

// Set installs e and marks its key dirty if anything changed. It reports
// whether the table changed.
func (t *Table) Set(e Entry) bool {
	old, ok := t.entries[e.Key]
	if ok && old == e {
		return false
	}
	t.entries[e.Key] = e
	t.dirty[e.Key] = struct{}{}
	return true
}

// Delete removes the entry for k, marking it dirty if it existed.
func (t *Table) Delete(k Key) bool {
	if _, ok := t.entries[k]; !ok {
		return false
	}
	delete(t.entries, k)
	t.dirty[k] = struct{}{}
	return true
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// Entries returns all entries sorted by (dest, qos) for deterministic
// iteration.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Dest != out[j].Key.Dest {
			return out[i].Key.Dest < out[j].Key.Dest
		}
		return out[i].Key.QOS < out[j].Key.QOS
	})
	return out
}

// NextHop returns the next hop for k, or Invalid if absent.
func (t *Table) NextHop(k Key) ad.ID {
	if e, ok := t.entries[k]; ok {
		return e.NextHop
	}
	return ad.Invalid
}

// TakeDirty returns the keys dirtied since the last call, sorted, and
// clears the dirty set.
func (t *Table) TakeDirty() []Key {
	out := make([]Key, 0, len(t.dirty))
	for k := range t.dirty {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dest != out[j].Dest {
			return out[i].Dest < out[j].Dest
		}
		return out[i].QOS < out[j].QOS
	})
	t.dirty = make(map[Key]struct{})
	return out
}

// HasDirty reports whether un-taken dirty keys exist.
func (t *Table) HasDirty() bool { return len(t.dirty) > 0 }

// ViaNeighbor returns the keys of all entries whose next hop is n.
func (t *Table) ViaNeighbor(n ad.ID) []Key {
	var out []Key
	for k, e := range t.entries {
		if e.NextHop == n {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dest != out[j].Dest {
			return out[i].Dest < out[j].Dest
		}
		return out[i].QOS < out[j].QOS
	})
	return out
}

// FollowNextHops traces the hop-by-hop forwarding path for key k from src,
// consulting lookup for each AD's table. It returns the traversed path and
// an outcome: delivered (reached k.Dest), looped (revisited an AD), or
// black-holed (an AD had no route).
func FollowNextHops(src ad.ID, k Key, lookup func(ad.ID) *Table) (path ad.Path, delivered, looped bool) {
	cur := src
	seen := map[ad.ID]bool{}
	path = ad.Path{cur}
	for {
		if cur == k.Dest {
			return path, true, false
		}
		if seen[cur] {
			return path, false, true
		}
		seen[cur] = true
		tbl := lookup(cur)
		if tbl == nil {
			return path, false, false
		}
		nh := tbl.NextHop(k)
		if nh == ad.Invalid {
			return path, false, false
		}
		cur = nh
		path = append(path, cur)
	}
}
