package dvcore

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
)

func TestTableSetGet(t *testing.T) {
	tbl := NewTable()
	k := Key{Dest: 5, QOS: 1}
	e := Entry{Key: k, Metric: 3, NextHop: 2}
	if !tbl.Set(e) {
		t.Error("first Set reported no change")
	}
	if tbl.Set(e) {
		t.Error("identical Set reported change")
	}
	got, ok := tbl.Get(k)
	if !ok || got != e {
		t.Errorf("Get = %+v,%v", got, ok)
	}
	if _, ok := tbl.Get(Key{Dest: 9}); ok {
		t.Error("Get of absent key succeeded")
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	e.Metric = 4
	if !tbl.Set(e) {
		t.Error("metric change reported no change")
	}
}

func TestTableDirtyTracking(t *testing.T) {
	tbl := NewTable()
	tbl.Set(Entry{Key: Key{Dest: 1}, Metric: 1, NextHop: 2})
	tbl.Set(Entry{Key: Key{Dest: 3}, Metric: 1, NextHop: 2})
	if !tbl.HasDirty() {
		t.Error("HasDirty = false after sets")
	}
	dirty := tbl.TakeDirty()
	if len(dirty) != 2 || dirty[0].Dest != 1 || dirty[1].Dest != 3 {
		t.Errorf("dirty = %v", dirty)
	}
	if tbl.HasDirty() {
		t.Error("dirty set not cleared")
	}
	// Unchanged set does not re-dirty.
	tbl.Set(Entry{Key: Key{Dest: 1}, Metric: 1, NextHop: 2})
	if tbl.HasDirty() {
		t.Error("no-op Set dirtied the table")
	}
	// Delete dirties.
	if !tbl.Delete(Key{Dest: 1}) {
		t.Error("Delete existing = false")
	}
	if tbl.Delete(Key{Dest: 1}) {
		t.Error("Delete absent = true")
	}
	if d := tbl.TakeDirty(); len(d) != 1 || d[0].Dest != 1 {
		t.Errorf("dirty after delete = %v", d)
	}
}

func TestTableEntriesSorted(t *testing.T) {
	tbl := NewTable()
	tbl.Set(Entry{Key: Key{Dest: 2, QOS: 1}, Metric: 1, NextHop: 9})
	tbl.Set(Entry{Key: Key{Dest: 2, QOS: 0}, Metric: 1, NextHop: 9})
	tbl.Set(Entry{Key: Key{Dest: 1, QOS: 3}, Metric: 1, NextHop: 9})
	es := tbl.Entries()
	if len(es) != 3 {
		t.Fatalf("entries = %d", len(es))
	}
	if es[0].Key != (Key{Dest: 1, QOS: 3}) || es[1].Key != (Key{Dest: 2, QOS: 0}) || es[2].Key != (Key{Dest: 2, QOS: 1}) {
		t.Errorf("order = %v", es)
	}
}

func TestViaNeighbor(t *testing.T) {
	tbl := NewTable()
	tbl.Set(Entry{Key: Key{Dest: 1}, NextHop: 7})
	tbl.Set(Entry{Key: Key{Dest: 2}, NextHop: 8})
	tbl.Set(Entry{Key: Key{Dest: 3, QOS: 1}, NextHop: 7})
	ks := tbl.ViaNeighbor(7)
	if len(ks) != 2 || ks[0].Dest != 1 || ks[1].Dest != 3 {
		t.Errorf("ViaNeighbor = %v", ks)
	}
	if len(tbl.ViaNeighbor(99)) != 0 {
		t.Error("ViaNeighbor(99) nonempty")
	}
}

func TestNextHop(t *testing.T) {
	tbl := NewTable()
	tbl.Set(Entry{Key: Key{Dest: 1}, NextHop: 4})
	if tbl.NextHop(Key{Dest: 1}) != 4 {
		t.Error("NextHop wrong")
	}
	if tbl.NextHop(Key{Dest: 2}) != ad.Invalid {
		t.Error("NextHop of absent key not Invalid")
	}
}

func TestFollowNextHops(t *testing.T) {
	// Tables: 1 -> 2 -> 3 (dest).
	tables := map[ad.ID]*Table{
		1: NewTable(), 2: NewTable(), 3: NewTable(),
	}
	k := Key{Dest: 3, QOS: policy.QOS(0)}
	tables[1].Set(Entry{Key: k, NextHop: 2})
	tables[2].Set(Entry{Key: k, NextHop: 3})
	lookup := func(id ad.ID) *Table { return tables[id] }

	path, delivered, looped := FollowNextHops(1, k, lookup)
	if !delivered || looped || !path.Equal(ad.Path{1, 2, 3}) {
		t.Errorf("delivered=%v looped=%v path=%v", delivered, looped, path)
	}

	// Loop: 2 points back at 1.
	tables[2].Set(Entry{Key: k, NextHop: 1})
	_, delivered, looped = FollowNextHops(1, k, lookup)
	if delivered || !looped {
		t.Errorf("loop not detected: delivered=%v looped=%v", delivered, looped)
	}

	// Black hole: 2 has no entry.
	tables[2].Delete(k)
	path, delivered, looped = FollowNextHops(1, k, lookup)
	if delivered || looped {
		t.Errorf("black hole misreported: delivered=%v looped=%v", delivered, looped)
	}
	if !path.Equal(ad.Path{1, 2}) {
		t.Errorf("black hole path = %v", path)
	}

	// Missing table entirely.
	_, delivered, looped = FollowNextHops(9, k, lookup)
	if delivered || looped {
		t.Error("missing table misreported")
	}

	// Already at destination.
	path, delivered, _ = FollowNextHops(3, k, lookup)
	if !delivered || !path.Equal(ad.Path{3}) {
		t.Errorf("self delivery wrong: %v %v", path, delivered)
	}
}
