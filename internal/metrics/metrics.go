// Package metrics provides the result-table machinery shared by the
// experiment harness and the CLI tools: fixed-width text tables, counters,
// and simple summary statistics.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a simple fixed-width text table with a title and column headers.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are printed under the table, one per line, prefixed "note:".
	Notes []string
}

// NewTable creates a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends an explanatory note.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Summary holds basic statistics over a sample.
type Summary struct {
	Count          int
	Min, Max, Mean float64
	P50, P95, P99  float64
}

// Summarize computes summary statistics for xs (zero Summary when empty).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	q := func(p float64) float64 {
		if len(sorted) == 1 {
			return sorted[0]
		}
		idx := p * float64(len(sorted)-1)
		lo := int(math.Floor(idx))
		hi := int(math.Ceil(idx))
		frac := idx - float64(lo)
		return sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  sum / float64(len(sorted)),
		P50:   q(0.5),
		P95:   q(0.95),
		P99:   q(0.99),
	}
}

// Ratio divides a by b, returning 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
