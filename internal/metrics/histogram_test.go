package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should read all zeros")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations: 1µs x90, 1ms x9, 100ms x1.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)

	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	// Buckets are power-of-two, so quantiles are good to a factor of 2.
	within2x := func(got, want time.Duration) bool {
		return got >= want/2 && got <= want*2
	}
	if p50 := h.Quantile(0.50); !within2x(p50, time.Microsecond) {
		t.Errorf("P50 = %v, want ~1µs", p50)
	}
	if p95 := h.Quantile(0.95); !within2x(p95, time.Millisecond) {
		t.Errorf("P95 = %v, want ~1ms", p95)
	}
	if p99 := h.Quantile(0.99); !within2x(p99, time.Millisecond) {
		t.Errorf("P99 = %v, want ~1ms", p99)
	}
	if p100 := h.Quantile(1.0); !within2x(p100, 100*time.Millisecond) {
		t.Errorf("P100 = %v, want ~100ms", p100)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.P50 == 0 || s.P99 < s.P50 {
		t.Errorf("bad snapshot: %+v", s)
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	prev := time.Duration(0)
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", p, q, prev)
		}
		prev = q
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
}

// TestHistogramEmptyQuantileEdges pins the empty-histogram contract the
// plan engine's latency projection relies on: every quantile — the
// extremes and out-of-range p included — and the snapshot read as clean
// zeros, never NaN or a panic.
func TestHistogramEmptyQuantileEdges(t *testing.T) {
	var h Histogram
	for _, p := range []float64{-1, 0, 0.5, 0.95, 1, 2, math.NaN()} {
		if q := h.Quantile(p); q != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", p, q)
		}
	}
	s := h.Snapshot()
	if s != (LatencySummary{}) {
		t.Errorf("empty snapshot = %+v, want zero value", s)
	}
}

// TestHistogramSingleBucket pins single-bucket populations: identical
// observations put every quantile inside one bucket, and the interpolated
// values must stay within that bucket's 2x bounds with p=0 and p=1 agreeing.
func TestHistogramSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 7; i++ {
		h.Observe(3 * time.Microsecond)
	}
	lo, hi := time.Duration(2048), time.Duration(4096) // 3µs falls in [2^11, 2^12)
	for _, p := range []float64{0, 0.25, 0.5, 0.99, 1} {
		q := h.Quantile(p)
		if q < lo || q > hi {
			t.Errorf("Quantile(%v) = %v outside the only occupied bucket [%v, %v)", p, q, lo, hi)
		}
	}
	if h.Mean() != 3*time.Microsecond {
		t.Errorf("Mean = %v, want 3µs", h.Mean())
	}

	// A single observation is the degenerate single-bucket case.
	var one Histogram
	one.Observe(time.Millisecond)
	if q := one.Quantile(0.5); q < 512*time.Microsecond || q > 2*time.Millisecond {
		t.Errorf("single observation: Quantile(0.5) = %v, want within 2x of 1ms", q)
	}
}

// TestHistogramZeroAndNegative pins the bottom bucket: zero and negative
// durations land in bucket 0 ([0,1ns)) and keep every read finite.
func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second)
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Mean() != 0 {
		t.Errorf("Mean = %v, want 0", h.Mean())
	}
	// Interpolation may land on the bucket's exclusive upper bound (1ns)
	// at p=1; anything beyond that would be a different bucket.
	for _, p := range []float64{0, 0.5, 1} {
		if q := h.Quantile(p); q < 0 || q > time.Nanosecond {
			t.Errorf("Quantile(%v) = %v, want within [0, 1ns]", p, q)
		}
	}
}

func TestSummaryP99(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.P99 < s.P95 || s.P99 > s.Max {
		t.Fatalf("P99 = %v out of order (P95=%v Max=%v)", s.P99, s.P95, s.Max)
	}
	if s.P99 < 98 || s.P99 > 100 {
		t.Fatalf("P99 = %v, want ~99", s.P99)
	}
}
