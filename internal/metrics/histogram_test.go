package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should read all zeros")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations: 1µs x90, 1ms x9, 100ms x1.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)

	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	// Buckets are power-of-two, so quantiles are good to a factor of 2.
	within2x := func(got, want time.Duration) bool {
		return got >= want/2 && got <= want*2
	}
	if p50 := h.Quantile(0.50); !within2x(p50, time.Microsecond) {
		t.Errorf("P50 = %v, want ~1µs", p50)
	}
	if p95 := h.Quantile(0.95); !within2x(p95, time.Millisecond) {
		t.Errorf("P95 = %v, want ~1ms", p95)
	}
	if p99 := h.Quantile(0.99); !within2x(p99, time.Millisecond) {
		t.Errorf("P99 = %v, want ~1ms", p99)
	}
	if p100 := h.Quantile(1.0); !within2x(p100, 100*time.Millisecond) {
		t.Errorf("P100 = %v, want ~100ms", p100)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.P50 == 0 || s.P99 < s.P50 {
		t.Errorf("bad snapshot: %+v", s)
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	prev := time.Duration(0)
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", p, q, prev)
		}
		prev = q
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
}

func TestSummaryP99(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.P99 < s.P95 || s.P99 > s.Max {
		t.Fatalf("P99 = %v out of order (P95=%v Max=%v)", s.P99, s.P95, s.Max)
	}
	if s.P99 < 98 || s.P99 > 100 {
		t.Fatalf("P99 = %v, want ~99", s.P99)
	}
}
