package metrics

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", 1)
	tbl.AddRow("b", 2.5)
	tbl.AddNote("seed=%d", 42)
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.500") {
		t.Errorf("rows missing:\n%s", out)
	}
	if !strings.Contains(out, "note: seed=42") {
		t.Error("note missing")
	}
	// Column alignment: header and separator lines equal length.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header/separator misaligned: %q vs %q", lines[1], lines[2])
	}
}

func TestTableEmptyTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("x")
	if strings.Contains(tbl.String(), "==") {
		t.Error("empty title rendered")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 2.5 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 != 2.5 {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P95 < 3.8 || s.P95 > 4 {
		t.Errorf("p95 = %v", s.P95)
	}
	if Summarize(nil).Count != 0 {
		t.Error("empty summary count nonzero")
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P95 != 7 || one.Mean != 7 {
		t.Errorf("single-sample summary = %+v", one)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio wrong")
	}
	if Ratio(1, 0) != 0 {
		t.Error("div by zero not guarded")
	}
}
