package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free latency histogram: 64 power-of-two buckets over
// nanosecond durations, safe for concurrent Observe from any number of
// goroutines. Quantiles are estimated by linear interpolation inside the
// containing bucket, so they carry at most one-bucket (2x) resolution —
// ample for the p50/p95/p99 shape reporting the route server needs.
type Histogram struct {
	buckets [65]atomic.Uint64 // buckets[i] counts values with bit length i
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one duration (negative durations count as zero).
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bits.Len64(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the p-quantile (p in [0,1]) of the observed
// durations. With no observations it returns 0.
func (h *Histogram) Quantile(p float64) time.Duration {
	if math.IsNaN(p) || p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			// Interpolate within bucket i, which spans [lo, hi).
			lo, hi := bucketBounds(i)
			frac := float64(rank-cum) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	return 0
}

// bucketBounds returns the value range covered by bucket i: bit length i
// means values in [2^(i-1), 2^i), with bucket 0 holding exactly zero.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// LatencySummary is a point-in-time digest of a Histogram.
type LatencySummary struct {
	Count         uint64
	Mean          time.Duration
	P50, P95, P99 time.Duration
}

// Snapshot digests the histogram. Concurrent Observe calls during the
// snapshot can skew the digest by the in-flight observations, which is the
// usual and acceptable histogram-scrape semantics.
func (h *Histogram) Snapshot() LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
