// Package synthesis implements policy route computation: finding AD-level
// routes that satisfy both transit policies (Policy Terms) and source route
// selection criteria.
//
// The paper identifies route synthesis as "probably the most difficult
// aspect" of the link-state source-routing architecture (§6) and calls for
// simulation of synthesis strategies. This package provides:
//
//   - FindRoute: an exact constrained shortest-path search (Dijkstra over
//     (current, previous) states, since term legality depends on the
//     previous and next AD in the path).
//   - EnumeratePaths: bounded DFS enumeration of all legal paths, used as
//     the ground-truth oracle.
//   - Precomputed, OnDemand, and Hybrid strategies with instrumentation
//     (experiment E7).
package synthesis

import (
	"container/heap"
	"sort"

	"repro/internal/ad"
	"repro/internal/policy"
)

// Result reports the outcome of one route computation.
type Result struct {
	// Path is the discovered route (nil if none).
	Path ad.Path
	// Cost is the policy cost of Path (links + transit terms).
	Cost uint32
	// Expanded counts search-state expansions, the computation-cost
	// measure used by E3/E7/E8.
	Expanded int
	// Found reports whether a legal route exists in the view.
	Found bool
}

// state is a Dijkstra search state. Legality of continuing through an AD
// depends on the previous hop (terms constrain PrevADs) so the state is the
// (current, previous) pair; when a hop budget applies, hops joins the state.
type state struct {
	cur, prev ad.ID
	hops      int
}

// pqItem is a priority-queue entry.
type pqItem struct {
	st   state
	cost uint32
	seq  uint64
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].cost != q[j].cost {
		return q[i].cost < q[j].cost
	}
	return q[i].seq < q[j].seq
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// FindRoute computes the minimum-cost legal route for req over the given
// graph and policy database. Cost is the sum of link costs and the cheapest
// permitting term's cost at each transit AD. The source's selection
// criteria (avoid set, hop budget) are honored.
//
// With positive link costs the minimum-cost walk never repeats an AD, so the
// returned path is loop-free by construction; a final validation guards the
// invariant regardless.
func FindRoute(g *ad.Graph, db *policy.DB, req policy.Request) Result {
	return FindRouteFrom(g, db, req, req.Src, ad.Invalid)
}

// FindRouteFrom computes the minimum-cost legal continuation of a path for
// req starting at AD from, which the traffic entered from prev (Invalid when
// from is the source itself). Hop-by-hop link-state forwarding (paper §5.3)
// uses this: every transit AD repeats the source's computation from its own
// position, which is exactly the replicated work the paper criticises.
//
// When from is not the source, terms at from must permit the continuation
// (the entry from prev is part of the legality check at from). The source's
// selection criteria still apply: the paper notes hop-by-hop routing only
// stays consistent if "all ADS in the path must be aware of policy related
// criteria used by the source".
func FindRouteFrom(g *ad.Graph, db *policy.DB, req policy.Request, from, prev ad.ID) Result {
	if from == req.Dst {
		if _, ok := g.AD(from); !ok {
			return Result{}
		}
		return Result{Path: ad.Path{from}, Found: true}
	}
	if _, ok := g.AD(from); !ok {
		return Result{}
	}
	if _, ok := g.AD(req.Dst); !ok {
		return Result{}
	}
	crit := db.CriteriaFor(req.Src)
	trackHops := crit.MaxHops > 0

	dist := make(map[state]uint32)
	parent := make(map[state]state)
	start := state{cur: from, prev: prev}
	dist[start] = 0
	var q pq
	var seq uint64
	heap.Push(&q, pqItem{st: start, cost: 0, seq: seq})
	expanded := 0
	var goal state
	found := false

	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		st := it.st
		if d, ok := dist[st]; !ok || it.cost > d {
			continue
		}
		expanded++
		if st.cur == req.Dst {
			goal = st
			found = true
			break
		}
		if trackHops && st.hops >= crit.MaxHops {
			continue
		}
		cur := st.cur
		// Transit-term cost and legality at cur (not required at the
		// source itself).
		for _, link := range g.IncidentLinks(cur) {
			next, _ := link.Other(cur)
			if next == st.prev {
				continue // no immediate backtracking
			}
			var termCost uint32
			if cur != req.Src {
				t, ok := db.PermitsTransit(cur, req, st.prev, next)
				if !ok {
					continue
				}
				termCost = t.Cost
			}
			// Source criteria: avoid set applies to transit ADs.
			if next != req.Dst && crit.Avoid.Contains(next) {
				continue
			}
			if crit.Avoid.IsUniversal() && next != req.Dst {
				continue
			}
			ns := state{cur: next, prev: cur}
			if trackHops {
				ns.hops = st.hops + 1
			}
			nc := it.cost + link.Cost + termCost
			if d, ok := dist[ns]; ok && nc >= d {
				continue
			}
			dist[ns] = nc
			parent[ns] = st
			seq++
			heap.Push(&q, pqItem{st: ns, cost: nc, seq: seq})
		}
	}
	if !found {
		return Result{Expanded: expanded}
	}
	// Reconstruct.
	var rev ad.Path
	for st := goal; ; {
		rev = append(rev, st.cur)
		if st == start {
			break
		}
		st = parent[st]
	}
	path := rev.Reverse()
	legal := path.LoopFree()
	if legal {
		if from == req.Src {
			legal = db.PathLegal(path, req)
		} else {
			legal = continuationLegal(db, path, req, prev)
		}
	}
	if !legal {
		// Defensive: should be unreachable with positive costs.
		return Result{Expanded: expanded}
	}
	return Result{Path: path, Cost: dist[goal], Expanded: expanded, Found: true}
}

// continuationLegal checks a path suffix starting at a transit AD: every AD
// on it except the final destination needs a permitting term, where the
// first AD's previous hop is entry.
func continuationLegal(db *policy.DB, path ad.Path, req policy.Request, entry ad.ID) bool {
	if len(path) == 0 || path.Dest() != req.Dst {
		return false
	}
	prev := entry
	for i := 0; i < len(path)-1; i++ {
		if _, ok := db.PermitsTransit(path[i], req, prev, path[i+1]); !ok {
			return false
		}
		prev = path[i]
	}
	return true
}

// EnumerateConfig bounds EnumeratePaths.
type EnumerateConfig struct {
	// MaxPaths stops enumeration after this many legal paths (0 = no
	// bound; use with care on dense graphs).
	MaxPaths int
	// MaxHops bounds path length in AD hops (0 = graph diameter bound of
	// NumADs-1, i.e. elementary paths only).
	MaxHops int
}

// EnumeratePaths returns every legal loop-free path for req, in
// lexicographic DFS order, subject to the config bounds. It is the oracle
// against which protocol route availability is measured.
func EnumeratePaths(g *ad.Graph, db *policy.DB, req policy.Request, cfg EnumerateConfig) []ad.Path {
	if _, ok := g.AD(req.Src); !ok {
		return nil
	}
	if _, ok := g.AD(req.Dst); !ok {
		return nil
	}
	maxHops := cfg.MaxHops
	if maxHops <= 0 {
		maxHops = g.NumADs() - 1
	}
	crit := db.CriteriaFor(req.Src)
	if crit.MaxHops > 0 && crit.MaxHops < maxHops {
		maxHops = crit.MaxHops
	}
	var out []ad.Path
	visited := map[ad.ID]bool{req.Src: true}
	path := ad.Path{req.Src}

	var dfs func() bool // returns false when MaxPaths reached
	dfs = func() bool {
		cur := path[len(path)-1]
		if cur == req.Dst {
			out = append(out, path.Clone())
			return cfg.MaxPaths == 0 || len(out) < cfg.MaxPaths
		}
		if path.Hops() >= maxHops {
			return true
		}
		var prev ad.ID = ad.Invalid
		if len(path) >= 2 {
			prev = path[len(path)-2]
		}
		for _, next := range g.Neighbors(cur) {
			if visited[next] {
				continue
			}
			if cur != req.Src {
				if _, ok := db.PermitsTransit(cur, req, prev, next); !ok {
					continue
				}
			}
			if next != req.Dst {
				if crit.Avoid.Contains(next) || crit.Avoid.IsUniversal() {
					continue
				}
			}
			visited[next] = true
			path = append(path, next)
			ok := dfs()
			path = path[:len(path)-1]
			delete(visited, next)
			if !ok {
				return false
			}
		}
		return true
	}
	if req.Src == req.Dst {
		return []ad.Path{{req.Src}}
	}
	dfs()
	return out
}

// RouteExists reports whether any legal route exists for req.
func RouteExists(g *ad.Graph, db *policy.DB, req policy.Request) bool {
	return FindRoute(g, db, req).Found
}

// KShortest returns up to k legal paths ordered by increasing policy cost
// (ties broken lexicographically). It enumerates legal paths and sorts, so
// it is intended for modest graphs and bounded k.
func KShortest(g *ad.Graph, db *policy.DB, req policy.Request, k int, maxHops int) []ad.Path {
	paths := EnumeratePaths(g, db, req, EnumerateConfig{MaxHops: maxHops})
	type scored struct {
		p ad.Path
		c uint32
	}
	var sc []scored
	for _, p := range paths {
		c, ok := db.PathCost(g, p, req)
		if !ok {
			continue
		}
		sc = append(sc, scored{p: p, c: c})
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].c != sc[j].c {
			return sc[i].c < sc[j].c
		}
		return sc[i].p.String() < sc[j].p.String()
	})
	if k > 0 && len(sc) > k {
		sc = sc[:k]
	}
	out := make([]ad.Path, len(sc))
	for i, s := range sc {
		out[i] = s.p
	}
	return out
}
