package synthesis

import (
	"math/rand"
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/topology"
)

// randomScenario builds a random internet and policy set for property
// checks.
func randomScenario(seed int64) (*ad.Graph, *policy.DB) {
	rng := rand.New(rand.NewSource(seed))
	topo := topology.Generate(topology.Config{
		Seed:                 seed,
		Backbones:            1 + rng.Intn(3),
		RegionalsPerBackbone: 1 + rng.Intn(3),
		CampusesPerParent:    1 + rng.Intn(3),
		LateralProb:          rng.Float64() * 0.5,
		BypassProb:           rng.Float64() * 0.3,
		MultihomedProb:       rng.Float64() * 0.3,
		HybridProb:           rng.Float64() * 0.4,
	})
	db := policy.Generate(topo.Graph, policy.GenConfig{
		Seed:                  seed + 1,
		SourceRestrictionProb: rng.Float64(),
		SourceFraction:        0.3 + rng.Float64()*0.5,
		DestRestrictionProb:   rng.Float64() * 0.5,
		QOSClasses:            1 + rng.Intn(4),
		UCIClasses:            1 + rng.Intn(3),
		TimeWindowProb:        rng.Float64() * 0.5,
		TermsPerTransit:       1 + rng.Intn(3),
		MaxTermCost:           1 + rng.Intn(5),
		AvoidProb:             rng.Float64() * 0.5,
	})
	return topo.Graph, db
}

// TestPropertyFindRouteSoundAndComplete: across many random internets,
// FindRoute must (a) return only legal paths, (b) agree with exhaustive
// enumeration about existence, and (c) return the minimum policy cost.
func TestPropertyFindRouteSoundAndComplete(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g, db := randomScenario(seed * 17)
		ids := g.IDs()
		rng := rand.New(rand.NewSource(seed))
		// Sample random request classes, not just defaults.
		for trial := 0; trial < 30; trial++ {
			req := policy.Request{
				Src:  ids[rng.Intn(len(ids))],
				Dst:  ids[rng.Intn(len(ids))],
				QOS:  policy.QOS(rng.Intn(4)),
				UCI:  policy.UCI(rng.Intn(3)),
				Hour: uint8(rng.Intn(24)),
			}
			if req.Src == req.Dst {
				continue
			}
			res := FindRoute(g, db, req)
			paths := EnumeratePaths(g, db, req, EnumerateConfig{})
			if res.Found != (len(paths) > 0) {
				t.Fatalf("seed %d %v: found=%v but oracle has %d paths",
					seed, req, res.Found, len(paths))
			}
			if !res.Found {
				continue
			}
			if !db.PathLegal(res.Path, req) {
				t.Fatalf("seed %d %v: illegal path %v", seed, req, res.Path)
			}
			if !res.Path.Valid(g) {
				t.Fatalf("seed %d %v: physically invalid path %v", seed, req, res.Path)
			}
			best := ^uint32(0)
			for _, p := range paths {
				if c, ok := db.PathCost(g, p, req); ok && c < best {
					best = c
				}
			}
			if res.Cost != best {
				t.Fatalf("seed %d %v: cost %d, oracle best %d", seed, req, res.Cost, best)
			}
		}
	}
}

// TestPropertyEnumerationLegality: every enumerated path must be legal and
// loop-free, and enumeration must contain no duplicates.
func TestPropertyEnumerationLegality(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g, db := randomScenario(seed*31 + 5)
		ids := g.IDs()
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 10; trial++ {
			req := policy.Request{Src: ids[rng.Intn(len(ids))], Dst: ids[rng.Intn(len(ids))]}
			if req.Src == req.Dst {
				continue
			}
			paths := EnumeratePaths(g, db, req, EnumerateConfig{MaxPaths: 200})
			seen := map[string]bool{}
			for _, p := range paths {
				if !p.LoopFree() {
					t.Fatalf("seed %d: loop in %v", seed, p)
				}
				if !db.PathLegal(p, req) {
					t.Fatalf("seed %d: illegal %v", seed, p)
				}
				key := p.String()
				if seen[key] {
					t.Fatalf("seed %d: duplicate %v", seed, p)
				}
				seen[key] = true
			}
		}
	}
}

// TestPropertyContinuationConsistency: a FindRouteFrom continuation from
// the second hop of a full route must itself be legal and reach the
// destination at no greater cost than the suffix implies.
func TestPropertyContinuationConsistency(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g, db := randomScenario(seed*13 + 3)
		ids := g.IDs()
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20; trial++ {
			req := policy.Request{Src: ids[rng.Intn(len(ids))], Dst: ids[rng.Intn(len(ids))]}
			if req.Src == req.Dst {
				continue
			}
			res := FindRoute(g, db, req)
			if !res.Found || len(res.Path) < 3 {
				continue
			}
			// Continue from the first transit hop.
			cont := FindRouteFrom(g, db, req, res.Path[1], res.Path[0])
			if !cont.Found {
				t.Fatalf("seed %d %v: continuation from %v not found though full path %v exists",
					seed, req, res.Path[1], res.Path)
			}
			if cont.Path.Source() != res.Path[1] || cont.Path.Dest() != req.Dst {
				t.Fatalf("seed %d: continuation endpoints wrong: %v", seed, cont.Path)
			}
		}
	}
}

// TestPropertyKShortestOrdered: KShortest output is sorted by policy cost
// and each entry is legal.
func TestPropertyKShortestOrdered(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, db := randomScenario(seed*7 + 11)
		ids := g.IDs()
		req := policy.Request{Src: ids[0], Dst: ids[len(ids)-1]}
		paths := KShortest(g, db, req, 8, 0)
		var prev uint32
		for i, p := range paths {
			c, ok := db.PathCost(g, p, req)
			if !ok {
				t.Fatalf("seed %d: illegal k-shortest path %v", seed, p)
			}
			if i > 0 && c < prev {
				t.Fatalf("seed %d: k-shortest out of order: %d after %d", seed, c, prev)
			}
			prev = c
		}
	}
}
