package synthesis

import (
	"repro/internal/ad"
	"repro/internal/policy"
)

// ChangeKind classifies a topology or policy mutation for scoped
// invalidation. The zero value is ChangeFull, so an unannotated mutation
// always falls back to the sound whole-cache path.
type ChangeKind uint8

const (
	// ChangeFull is the unscoped fallback: anything may have changed, so
	// every cached route is suspect.
	ChangeFull ChangeKind = iota
	// ChangeLinkDown removes the A-B link. Routes crossing it die; no
	// route can be created, so negative results stay correct.
	ChangeLinkDown
	// ChangeLinkUp adds (or restores) the A-B link. Existing routes stay
	// legal — though possibly no longer optimal — while unroutable pairs
	// may have gained a route.
	ChangeLinkUp
	// ChangePolicy replaces terms at advertiser AD, described by the
	// RemovedTerms/AllTerms/Broadens fields.
	ChangePolicy
)

// String implements fmt.Stringer.
func (k ChangeKind) String() string {
	switch k {
	case ChangeLinkDown:
		return "link-down"
	case ChangeLinkUp:
		return "link-up"
	case ChangePolicy:
		return "policy"
	default:
		return "full"
	}
}

// Change is a scoped-invalidation descriptor: it tells caches which of
// their entries a mutation can have affected, so everything else may keep
// serving. The retention contract is legality, not optimality: a retained
// positive entry is still a legal route under the post-change state, but a
// ChangeLinkUp or a broadening policy change may have created a cheaper
// one; callers that need optimality back issue a full invalidation.
type Change struct {
	Kind ChangeKind
	// A, B are the link endpoints for ChangeLinkDown / ChangeLinkUp.
	A, B ad.ID
	// AD is the advertiser for ChangePolicy.
	AD ad.ID
	// RemovedTerms lists the term keys dropped or modified by a
	// ChangePolicy: routes admitted by one of them must go.
	RemovedTerms []policy.Key
	// AllTerms widens a ChangePolicy to every term of AD, for callers
	// that know only "this AD's policy changed" (scenario timelines).
	AllTerms bool
	// Broadens reports whether the change can admit routes that did not
	// exist before (terms added or modified); it forces negative entries
	// out. Link restorations broaden by construction.
	Broadens bool
}

// LinkDownChange describes the removal of the a-b link.
func LinkDownChange(a, b ad.ID) Change {
	return Change{Kind: ChangeLinkDown, A: a, B: b}
}

// LinkUpChange describes the addition or restoration of the a-b link.
func LinkUpChange(a, b ad.ID) Change {
	return Change{Kind: ChangeLinkUp, A: a, B: b, Broadens: true}
}

// PolicyChangeOf describes a term replacement at delta.AD with term-level
// precision (see policy.DB.SetTerms / DiffTerms).
func PolicyChangeOf(delta policy.TermsDelta) Change {
	return Change{
		Kind:         ChangePolicy,
		AD:           delta.AD,
		RemovedTerms: delta.Removed,
		Broadens:     delta.Broadens,
	}
}

// FullChange describes an unscoped mutation: every cached route is
// suspect.
func FullChange() Change { return Change{Kind: ChangeFull} }

// PolicyChangeAt describes "some terms at id changed" with AD-level
// precision: every route transiting id is suspect, and new routes may
// exist.
func PolicyChangeAt(id ad.ID) Change {
	return Change{Kind: ChangePolicy, AD: id, AllTerms: true, Broadens: true}
}

// AffectsPath reports whether the change can invalidate the legality of an
// existing route. Strategies apply it at AD granularity (a ChangePolicy
// taints every route transiting the AD); the serving cache refines
// ChangePolicy to the recorded term keys via its reverse index.
func (c Change) AffectsPath(p ad.Path) bool {
	switch c.Kind {
	case ChangeLinkDown:
		return p.CrossesLink(c.A, c.B)
	case ChangeLinkUp:
		// A new link cannot break an existing route.
		return false
	case ChangePolicy:
		return p.Transits(c.AD)
	default:
		return true
	}
}

// AffectsNegative reports whether the change can make a previously
// unroutable request routable, i.e. whether cached negative results must
// be dropped.
func (c Change) AffectsNegative() bool {
	switch c.Kind {
	case ChangeLinkDown:
		return false
	case ChangeLinkUp:
		return true
	case ChangePolicy:
		return c.Broadens
	default:
		return true
	}
}

// Footprint is the dependency set of one synthesized route: the
// adjacencies it traverses (canonical low-high pairs) and the key of the
// cheapest permitting term at each transit AD. The route stays legal
// exactly as long as every listed link is up and every listed term still
// admits it, so an index over these two sets supports precise eviction.
// Negative results have an empty footprint; caches index them by their
// request key instead.
type Footprint struct {
	Links [][2]ad.ID
	Terms []policy.Key
}

// FootprintOf derives the footprint of a found route. It re-resolves the
// cheapest permitting term at each transit AD, which is the term whose
// cost the synthesis charged; a change to any other term at that AD
// cannot make the path illegal (some term still permits it) — only
// cheaper, which the legality retention contract tolerates.
func FootprintOf(g *ad.Graph, db *policy.DB, req policy.Request, path ad.Path) Footprint {
	if len(path) < 2 {
		return Footprint{}
	}
	fp := Footprint{Links: make([][2]ad.ID, 0, len(path)-1)}
	for i := 1; i < len(path); i++ {
		fp.Links = append(fp.Links, CanonicalPair(path[i-1], path[i]))
	}
	for i := 1; i < len(path)-1; i++ {
		if t, ok := db.PermitsTransit(path[i], req, path[i-1], path[i+1]); ok {
			fp.Terms = append(fp.Terms, t.Key())
		}
	}
	return fp
}

// CanonicalPair orders an adjacency low-high so both directions of a link
// index to the same slot.
func CanonicalPair(a, b ad.ID) [2]ad.ID {
	if a > b {
		a, b = b, a
	}
	return [2]ad.ID{a, b}
}
