package synthesis

import (
	"sync"
	"sync/atomic"

	"repro/internal/ad"
	"repro/internal/cache"
)

// counters is the concurrent-read-plane half of StrategyStats: every field
// Route touches is an atomic, so any number of goroutines can search (and
// account their work) at once while Stats merges a snapshot. Cumulative
// counters survive Invalidate by construction — there is nothing to carry
// forward, the atomics are simply never reset — which keeps the semantics
// TestInvalidatePreservesStats pins. CacheEntries and Evictions are
// per-table state, recomputed from the tables at each Stats call.
type counters struct {
	precompute atomic.Int64
	onDemand   atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	failures   atomic.Int64
}

// snapshot merges the counters into a StrategyStats; the caller fills in
// CacheEntries/Evictions from its tables.
func (c *counters) snapshot() StrategyStats {
	return StrategyStats{
		PrecomputeExpansions: int(c.precompute.Load()),
		OnDemandExpansions:   int(c.onDemand.Load()),
		Hits:                 int(c.hits.Load()),
		Misses:               int(c.misses.Load()),
		Failures:             int(c.failures.Load()),
	}
}

// demandShardCount shards the unbounded demand cache; must be a power of
// two so shard selection is a mask.
const demandShardCount = 16

// demandCache is the concurrent demand-fill cache behind Pruned and
// Hybrid: a sharded LRU with per-shard locks, so concurrent misses fill
// (and concurrent refills probe) without a global lock. When a DemandCap
// bounds the cache it collapses to a single shard: the global LRU eviction
// order is observable semantics (eviction counts are asserted exactly), and
// per-shard caps would change which entries die under pressure.
//
// Reads and writes on the route plane (get/put) are internally locked and
// safe from any number of goroutines. The write-plane operations
// (purge/dropAffected) take the same shard locks, but the caller is
// expected to hold the serving layer's exclusive lock so the table and
// demand cache mutate as one unit.
type demandCache struct {
	shards []demandShard
	mask   uint32
}

type demandShard struct {
	mu  sync.Mutex
	lru *cache.LRU[cacheKey, ad.Path]
}

func newDemandCache(capacity int) *demandCache {
	n := demandShardCount
	if capacity > 0 {
		n = 1
	}
	d := &demandCache{shards: make([]demandShard, n), mask: uint32(n - 1)}
	for i := range d.shards {
		d.shards[i].lru = cache.NewLRU[cacheKey, ad.Path](capacity)
	}
	return d
}

// hash is FNV-1a over the key's fields, used to pick a shard.
func (k cacheKey) hash() uint32 {
	h := uint32(2166136261)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= 16777619
	}
	for _, v := range []uint32{uint32(k.src), uint32(k.dst)} {
		mix(byte(v))
		mix(byte(v >> 8))
		mix(byte(v >> 16))
		mix(byte(v >> 24))
	}
	mix(byte(k.qos))
	mix(byte(k.uci))
	return h
}

func (d *demandCache) shard(k cacheKey) *demandShard {
	return &d.shards[k.hash()&d.mask]
}

func (d *demandCache) get(k cacheKey) (ad.Path, bool) {
	sh := d.shard(k)
	sh.mu.Lock()
	p, ok := sh.lru.Get(k)
	sh.mu.Unlock()
	return p, ok
}

func (d *demandCache) put(k cacheKey, p ad.Path) {
	sh := d.shard(k)
	sh.mu.Lock()
	sh.lru.Put(k, p)
	sh.mu.Unlock()
}

func (d *demandCache) len() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// evictions sums capacity evictions across shards. The per-LRU counters
// survive Purge, so the total is cumulative across Invalidate.
func (d *demandCache) evictions() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += sh.lru.Evictions()
		sh.mu.Unlock()
	}
	return n
}

func (d *demandCache) purge() {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		sh.lru.Purge()
		sh.mu.Unlock()
	}
}

// dropAffected evicts demand-cached routes the change can affect. Demand
// caches hold positive results only, so AffectsNegative is moot here: a
// dropped key is simply recomputed on next demand.
func (d *demandCache) dropAffected(c Change) {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for _, k := range sh.lru.Keys() {
			if p, ok := sh.lru.Peek(k); ok && c.AffectsPath(p) {
				sh.lru.Delete(k)
			}
		}
		sh.mu.Unlock()
	}
}
