package synthesis_test

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/synthesis"
)

// ExampleFindRoute demonstrates policy route synthesis: the cheap transit
// refuses the source, so the route detours through the expensive one.
func ExampleFindRoute() {
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	cheap := g.AddAD("cheap", ad.Transit, ad.Regional)
	dear := g.AddAD("dear", ad.Transit, ad.Regional)
	dst := g.AddAD("dst", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: cheap, Cost: 1}, {A: cheap, B: dst, Cost: 1},
		{A: src, B: dear, Cost: 5}, {A: dear, B: dst, Cost: 5},
	} {
		if err := g.AddLink(l); err != nil {
			panic(err)
		}
	}

	db := policy.NewDB()
	restricted := policy.OpenTerm(cheap, 0)
	restricted.Sources = policy.SetOf(dst) // cheap carries only dst's traffic
	db.Add(restricted)
	db.Add(policy.OpenTerm(dear, 0))

	res := synthesis.FindRoute(g, db, policy.Request{Src: src, Dst: dst})
	fmt.Println(res.Found, res.Path)
	// Output: true AD1>AD3>AD4
}

// ExampleEnumeratePaths lists every legal route, which the experiments use
// as the ground-truth oracle.
func ExampleEnumeratePaths() {
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	dst := g.AddAD("dst", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: t1}, {A: t1, B: dst},
		{A: src, B: t2}, {A: t2, B: dst},
	} {
		if err := g.AddLink(l); err != nil {
			panic(err)
		}
	}
	db := policy.OpenDB(g)
	paths := synthesis.EnumeratePaths(g, db, policy.Request{Src: src, Dst: dst}, synthesis.EnumerateConfig{})
	for _, p := range paths {
		fmt.Println(p)
	}
	// Output:
	// AD1>AD2>AD4
	// AD1>AD3>AD4
}
