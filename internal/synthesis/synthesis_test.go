package synthesis

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/topology"
)

// diamond builds:
//
//	    2
//	  /   \
//	1       4
//	  \   /
//	    3
//
// with 1 and 4 stubs, 2 and 3 transit. Link 1-2,2-4 cost 1; 1-3,3-4 cost 1.
func diamond(t *testing.T) (*ad.Graph, ad.ID, ad.ID, ad.ID, ad.ID) {
	t.Helper()
	g := ad.NewGraph()
	n1 := g.AddAD("s", ad.Stub, ad.Campus)
	n2 := g.AddAD("t1", ad.Transit, ad.Regional)
	n3 := g.AddAD("t2", ad.Transit, ad.Regional)
	n4 := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: n1, B: n2, Cost: 1}, {A: n2, B: n4, Cost: 1},
		{A: n1, B: n3, Cost: 1}, {A: n3, B: n4, Cost: 1},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return g, n1, n2, n3, n4
}

func TestFindRouteBasic(t *testing.T) {
	g, s, t2, _, d := diamond(t)
	db := policy.OpenDB(g)
	res := FindRoute(g, db, policy.Request{Src: s, Dst: d})
	if !res.Found {
		t.Fatal("no route found in open diamond")
	}
	if res.Path.Hops() != 2 {
		t.Errorf("path = %v, want 2 hops", res.Path)
	}
	if res.Expanded == 0 {
		t.Error("no expansions recorded")
	}
	// Cost: 2 links + 1 transit term (cost 1) = 3.
	if res.Cost != 3 {
		t.Errorf("cost = %d, want 3", res.Cost)
	}
	_ = t2
}

func TestFindRouteRespectsTermCost(t *testing.T) {
	g, s, t2, t3, d := diamond(t)
	db := policy.NewDB()
	expensive := policy.OpenTerm(t2, 0)
	expensive.Cost = 10
	db.Add(expensive)
	cheap := policy.OpenTerm(t3, 0)
	cheap.Cost = 1
	db.Add(cheap)
	res := FindRoute(g, db, policy.Request{Src: s, Dst: d})
	if !res.Found || !res.Path.Contains(t3) {
		t.Errorf("route should prefer cheap transit %v, got %v", t3, res.Path)
	}
}

func TestFindRouteSourceRestriction(t *testing.T) {
	g, s, t2, t3, d := diamond(t)
	db := policy.NewDB()
	// t2 only carries traffic from some other AD; t3 carries s.
	term2 := policy.OpenTerm(t2, 0)
	term2.Sources = policy.SetOf(d)
	db.Add(term2)
	term3 := policy.OpenTerm(t3, 0)
	term3.Sources = policy.SetOf(s)
	db.Add(term3)
	res := FindRoute(g, db, policy.Request{Src: s, Dst: d})
	if !res.Found || !res.Path.Contains(t3) || res.Path.Contains(t2) {
		t.Errorf("route = %v, want via %v only", res.Path, t3)
	}
	// Reverse direction must use t2.
	res = FindRoute(g, db, policy.Request{Src: d, Dst: s})
	if !res.Found || !res.Path.Contains(t2) {
		t.Errorf("reverse route = %v, want via %v", res.Path, t2)
	}
}

func TestFindRouteNoRoute(t *testing.T) {
	g, s, _, _, d := diamond(t)
	db := policy.NewDB() // no terms at all: no transit possible
	res := FindRoute(g, db, policy.Request{Src: s, Dst: d})
	if res.Found {
		t.Errorf("route found with empty policy DB: %v", res.Path)
	}
}

func TestFindRouteAvoidCriteria(t *testing.T) {
	g, s, t2, t3, d := diamond(t)
	db := policy.OpenDB(g)
	db.SetCriteria(s, policy.Criteria{Avoid: policy.SetOf(t2)})
	res := FindRoute(g, db, policy.Request{Src: s, Dst: d})
	if !res.Found || res.Path.Contains(t2) {
		t.Errorf("route = %v, must avoid %v", res.Path, t2)
	}
	if !res.Path.Contains(t3) {
		t.Errorf("route = %v, want via %v", res.Path, t3)
	}
	// Avoiding both transits leaves no route.
	db.SetCriteria(s, policy.Criteria{Avoid: policy.SetOf(t2, t3)})
	if res := FindRoute(g, db, policy.Request{Src: s, Dst: d}); res.Found {
		t.Errorf("route found despite avoiding all transits: %v", res.Path)
	}
}

func TestFindRouteMaxHops(t *testing.T) {
	// Line 1-2-3-4-5: 4 hops needed; budget of 3 must fail.
	g := ad.NewGraph()
	ids := make([]ad.ID, 5)
	for i := range ids {
		class := ad.Transit
		if i == 0 || i == 4 {
			class = ad.Stub
		}
		ids[i] = g.AddAD("n", class, ad.Regional)
	}
	for i := 0; i+1 < 5; i++ {
		if err := g.AddLink(ad.Link{A: ids[i], B: ids[i+1], Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.OpenDB(g)
	db.SetCriteria(ids[0], policy.Criteria{MaxHops: 3})
	if res := FindRoute(g, db, policy.Request{Src: ids[0], Dst: ids[4]}); res.Found {
		t.Errorf("route found beyond hop budget: %v", res.Path)
	}
	db.SetCriteria(ids[0], policy.Criteria{MaxHops: 4})
	if res := FindRoute(g, db, policy.Request{Src: ids[0], Dst: ids[4]}); !res.Found {
		t.Error("route not found within hop budget")
	}
}

func TestFindRoutePrevNextConstraints(t *testing.T) {
	// Terms that depend on the previous AD: t2 only accepts traffic
	// entering from s. Build s-t2-t3-d line plus s-t3 link, so t3 can be
	// entered either from t2 or directly from s.
	g := ad.NewGraph()
	s := g.AddAD("s", ad.Stub, ad.Campus)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	t3 := g.AddAD("t3", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: s, B: t2, Cost: 1}, {A: t2, B: t3, Cost: 1},
		{A: t3, B: d, Cost: 1}, {A: s, B: t3, Cost: 10},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.NewDB()
	db.Add(policy.OpenTerm(t2, 0))
	// t3 only admits traffic arriving directly from the source s.
	restricted := policy.OpenTerm(t3, 0)
	restricted.PrevADs = policy.SetOf(s)
	db.Add(restricted)
	res := FindRoute(g, db, policy.Request{Src: s, Dst: d})
	if !res.Found {
		t.Fatal("no route")
	}
	// The cheap path s-t2-t3-d is illegal (t3 entered from t2), so the
	// expensive s-t3-d must be chosen.
	want := ad.Path{s, t3, d}
	if !res.Path.Equal(want) {
		t.Errorf("path = %v, want %v", res.Path, want)
	}
}

func TestFindRouteSelfAndMissing(t *testing.T) {
	g, s, _, _, _ := diamond(t)
	db := policy.OpenDB(g)
	res := FindRoute(g, db, policy.Request{Src: s, Dst: s})
	if !res.Found || len(res.Path) != 1 {
		t.Errorf("self route = %+v", res)
	}
	if res := FindRoute(g, db, policy.Request{Src: 99, Dst: s}); res.Found {
		t.Error("route from unknown AD found")
	}
	if res := FindRoute(g, db, policy.Request{Src: s, Dst: 99}); res.Found {
		t.Error("route to unknown AD found")
	}
}

func TestEnumeratePaths(t *testing.T) {
	g, s, _, _, d := diamond(t)
	db := policy.OpenDB(g)
	paths := EnumeratePaths(g, db, policy.Request{Src: s, Dst: d}, EnumerateConfig{})
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2", paths)
	}
	for _, p := range paths {
		if !db.PathLegal(p, policy.Request{Src: s, Dst: d}) {
			t.Errorf("enumerated illegal path %v", p)
		}
	}
}

func TestEnumeratePathsMaxPaths(t *testing.T) {
	g, s, _, _, d := diamond(t)
	db := policy.OpenDB(g)
	paths := EnumeratePaths(g, db, policy.Request{Src: s, Dst: d}, EnumerateConfig{MaxPaths: 1})
	if len(paths) != 1 {
		t.Errorf("MaxPaths=1 returned %d paths", len(paths))
	}
}

func TestEnumeratePathsHonorsPolicy(t *testing.T) {
	g, s, t2, _, d := diamond(t)
	db := policy.NewDB()
	db.Add(policy.OpenTerm(t2, 0)) // only t2 is transit-enabled
	paths := EnumeratePaths(g, db, policy.Request{Src: s, Dst: d}, EnumerateConfig{})
	if len(paths) != 1 || !paths[0].Contains(t2) {
		t.Errorf("paths = %v, want exactly one via %v", paths, t2)
	}
}

func TestEnumerateSelf(t *testing.T) {
	g, s, _, _, _ := diamond(t)
	db := policy.OpenDB(g)
	paths := EnumeratePaths(g, db, policy.Request{Src: s, Dst: s}, EnumerateConfig{})
	if len(paths) != 1 || len(paths[0]) != 1 {
		t.Errorf("self paths = %v", paths)
	}
}

func TestFindRouteAgreesWithOracleOnFigure1(t *testing.T) {
	topo := topology.Figure1()
	g := topo.Graph
	db := policy.OpenDB(g)
	ids := g.IDs()
	for _, src := range ids {
		for _, dst := range ids {
			if src == dst {
				continue
			}
			req := policy.Request{Src: src, Dst: dst}
			found := FindRoute(g, db, req).Found
			oracle := len(EnumeratePaths(g, db, req, EnumerateConfig{MaxPaths: 1})) > 0
			if found != oracle {
				t.Errorf("%v: FindRoute=%v oracle=%v", req, found, oracle)
			}
		}
	}
}

func TestFindRouteOptimalityAgainstEnumeration(t *testing.T) {
	// Exhaustive check on a restricted policy set: Dijkstra's result must
	// match the cheapest enumerated path cost.
	topo := topology.Figure1()
	g := topo.Graph
	db := policy.Generate(g, policy.GenConfig{Seed: 5, SourceRestrictionProb: 0.5, SourceFraction: 0.5, MaxTermCost: 4})
	req := policy.Request{}
	ids := g.IDs()
	for _, src := range ids {
		for _, dst := range ids {
			if src == dst {
				continue
			}
			req.Src, req.Dst = src, dst
			res := FindRoute(g, db, req)
			paths := EnumeratePaths(g, db, req, EnumerateConfig{})
			if res.Found != (len(paths) > 0) {
				t.Fatalf("%v: found=%v enumerated=%d", req, res.Found, len(paths))
			}
			if !res.Found {
				continue
			}
			best := uint32(1 << 31)
			for _, p := range paths {
				if c, ok := db.PathCost(g, p, req); ok && c < best {
					best = c
				}
			}
			if res.Cost != best {
				t.Errorf("%v: dijkstra cost %d, oracle best %d (path %v)", req, res.Cost, best, res.Path)
			}
		}
	}
}

func TestKShortest(t *testing.T) {
	g, s, t2, t3, d := diamond(t)
	db := policy.NewDB()
	cheap := policy.OpenTerm(t2, 0)
	cheap.Cost = 1
	db.Add(cheap)
	dear := policy.OpenTerm(t3, 0)
	dear.Cost = 5
	db.Add(dear)
	paths := KShortest(g, db, policy.Request{Src: s, Dst: d}, 2, 0)
	if len(paths) != 2 {
		t.Fatalf("k=2 returned %d", len(paths))
	}
	if !paths[0].Contains(t2) || !paths[1].Contains(t3) {
		t.Errorf("order wrong: %v", paths)
	}
	one := KShortest(g, db, policy.Request{Src: s, Dst: d}, 1, 0)
	if len(one) != 1 {
		t.Errorf("k=1 returned %d", len(one))
	}
}

func TestOnDemandStrategy(t *testing.T) {
	g, s, _, _, d := diamond(t)
	db := policy.OpenDB(g)
	st := NewOnDemand(g, db)
	if st.Name() != "on-demand" {
		t.Errorf("name = %q", st.Name())
	}
	p, ok := st.Route(policy.Request{Src: s, Dst: d})
	if !ok || p == nil {
		t.Fatal("route failed")
	}
	if _, ok := st.Route(policy.Request{Src: s, Dst: 99}); ok {
		t.Error("route to unknown AD succeeded")
	}
	stats := st.Stats()
	if stats.Misses != 2 || stats.Failures != 1 || stats.OnDemandExpansions == 0 {
		t.Errorf("stats = %+v", stats)
	}
	st.Invalidate() // no-op, must not panic
}

func TestPrecomputedStrategy(t *testing.T) {
	g, s, _, _, d := diamond(t)
	db := policy.OpenDB(g)
	reqs := []policy.Request{{Src: s, Dst: d}}
	st := NewPrecomputed(g, db, reqs)
	if st.Name() != "precomputed" {
		t.Errorf("name = %q", st.Name())
	}
	if _, ok := st.Route(policy.Request{Src: s, Dst: d}); !ok {
		t.Error("precomputed request missed")
	}
	if _, ok := st.Route(policy.Request{Src: d, Dst: s}); ok {
		t.Error("unprecomputed request hit")
	}
	stats := st.Stats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.PrecomputeExpansions == 0 || stats.CacheEntries != 1 {
		t.Errorf("stats = %+v", stats)
	}
	before := stats.PrecomputeExpansions
	st.Invalidate()
	if st.Stats().PrecomputeExpansions <= before {
		t.Error("Invalidate did not recompute")
	}
	if _, ok := st.Route(policy.Request{Src: s, Dst: d}); !ok {
		t.Error("route lost after invalidate")
	}
}

func TestHybridStrategy(t *testing.T) {
	g, s, _, _, d := diamond(t)
	db := policy.OpenDB(g)
	st := NewHybrid(g, db, []policy.Request{{Src: s, Dst: d}})
	if st.Name() != "hybrid" {
		t.Errorf("name = %q", st.Name())
	}
	// Hot request: hit.
	if _, ok := st.Route(policy.Request{Src: s, Dst: d}); !ok {
		t.Error("hot request failed")
	}
	// Cold request: miss then demand-fill.
	if _, ok := st.Route(policy.Request{Src: d, Dst: s}); !ok {
		t.Error("cold request failed")
	}
	if _, ok := st.Route(policy.Request{Src: d, Dst: s}); !ok {
		t.Error("demand-filled request failed")
	}
	stats := st.Stats()
	if stats.Hits != 2 || stats.Misses != 1 {
		t.Errorf("stats = %+v (want 2 hits: 1 hot + 1 demand-filled)", stats)
	}
	st.Invalidate()
	stats = st.Stats()
	if stats.CacheEntries != 1 {
		t.Errorf("after invalidate cache = %d, want 1 (hot only)", stats.CacheEntries)
	}
}

func TestStrategiesAgreeOnAvailability(t *testing.T) {
	topo := topology.Generate(topology.Config{Seed: 20, LateralProb: 0.3})
	g := topo.Graph
	db := policy.Generate(g, policy.GenConfig{Seed: 21, SourceRestrictionProb: 0.4, SourceFraction: 0.5})
	var reqs []policy.Request
	ids := g.IDs()
	for i := 0; i < len(ids); i++ {
		for j := 0; j < len(ids); j += 3 {
			if ids[i] != ids[j] {
				reqs = append(reqs, policy.Request{Src: ids[i], Dst: ids[j]})
			}
		}
	}
	pre := NewPrecomputed(g, db, reqs)
	dem := NewOnDemand(g, db)
	hyb := NewHybrid(g, db, reqs[:len(reqs)/2])
	for _, req := range reqs {
		_, a := pre.Route(req)
		_, b := dem.Route(req)
		_, c := hyb.Route(req)
		if a != b || b != c {
			t.Errorf("%v: availability disagrees pre=%v dem=%v hyb=%v", req, a, b, c)
		}
	}
}

func TestPrunedStrategy(t *testing.T) {
	topo := topology.Generate(topology.Config{Seed: 44, LateralProb: 0.2})
	g := topo.Graph
	db := policy.OpenDB(g)
	var stubs []ad.ID
	for _, info := range g.ADs() {
		if info.Class == ad.Stub {
			stubs = append(stubs, info.ID)
		}
	}
	st := NewPruned(g, db, stubs, 2)
	if st.Name() != "pruned" {
		t.Errorf("name = %q", st.Name())
	}
	stats := st.Stats()
	if stats.PrecomputeExpansions == 0 || stats.CacheEntries == 0 {
		t.Fatalf("no precompute work done: %+v", stats)
	}
	// Nearby destination (the stub's own regional, 1 hop): table hit.
	nearReq := policy.Request{Src: stubs[0], Dst: g.Neighbors(stubs[0])[0], Hour: 12}
	if _, ok := st.Route(nearReq); !ok {
		t.Fatal("near route failed")
	}
	if st.Stats().Hits == 0 {
		t.Error("near destination was not precomputed")
	}
	// Far destination: computed on demand and then cached.
	var far ad.ID
	for _, info := range g.ADs() {
		req := policy.Request{Src: stubs[0], Dst: info.ID, Hour: 12}
		res := FindRoute(g, db, req)
		if res.Found && res.Path.Hops() > 2 {
			far = info.ID
		}
	}
	if far == ad.Invalid {
		t.Skip("no far destination in this topology")
	}
	missesBefore := st.Stats().Misses
	if _, ok := st.Route(policy.Request{Src: stubs[0], Dst: far, Hour: 12}); !ok {
		t.Fatal("far route failed")
	}
	if st.Stats().Misses != missesBefore+1 {
		t.Error("far destination unexpectedly precomputed")
	}
	hitsBefore := st.Stats().Hits
	st.Route(policy.Request{Src: stubs[0], Dst: far, Hour: 12})
	if st.Stats().Hits != hitsBefore+1 {
		t.Error("demand-filled entry not cached")
	}
	// Invalidate keeps counters, rebuilds neighbourhood.
	pre := st.Stats().PrecomputeExpansions
	st.Invalidate()
	if st.Stats().PrecomputeExpansions <= pre {
		t.Error("Invalidate did not recompute")
	}
	// Pruned precompute must be cheaper than precompute-everything.
	all := core_AllPairs(g)
	full := NewPrecomputed(g, db, all)
	if st.Stats().PrecomputeExpansions >= full.Stats().PrecomputeExpansions {
		t.Errorf("pruned precompute %d >= full %d",
			st.Stats().PrecomputeExpansions, full.Stats().PrecomputeExpansions)
	}
}

// core_AllPairs avoids an import cycle with core by building the request
// population locally.
func core_AllPairs(g *ad.Graph) []policy.Request {
	var out []policy.Request
	for _, a := range g.IDs() {
		for _, b := range g.IDs() {
			if a != b {
				out = append(out, policy.Request{Src: a, Dst: b, Hour: 12})
			}
		}
	}
	return out
}
