package synthesis

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/topology"
	"repro/internal/trafficgen"
)

// scopedWorld builds one independent (graph, db, strategy) triple per call
// so a scoped copy and a full-invalidation oracle copy can mutate in step
// without sharing state.
func scopedWorld(t *testing.T, kind string, workload []policy.Request) (*ad.Graph, *policy.DB, Strategy) {
	t.Helper()
	topo := topology.Generate(topology.Config{
		Seed: 9, Backbones: 2, RegionalsPerBackbone: 2,
		CampusesPerParent: 2, LateralProb: 0.3, BypassProb: 0.1,
	})
	g := topo.Graph
	db := policy.OpenDB(g)
	var st Strategy
	switch kind {
	case "on-demand":
		st = NewOnDemand(g, db)
	case "precomputed":
		st = NewPrecomputed(g, db, workload)
	case "pruned":
		var stubs []ad.ID
		for _, info := range g.ADs() {
			if info.Class == ad.Stub || info.Class == ad.MultihomedStub {
				stubs = append(stubs, info.ID)
			}
		}
		st = NewPruned(g, db, stubs, 6)
	case "hybrid":
		st = NewHybrid(g, db, workload[:5])
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	return g, db, st
}

func scopedWorkload(t *testing.T) []policy.Request {
	t.Helper()
	topo := topology.Generate(topology.Config{
		Seed: 9, Backbones: 2, RegionalsPerBackbone: 2,
		CampusesPerParent: 2, LateralProb: 0.3, BypassProb: 0.1,
	})
	return trafficgen.Generate(topo.Graph, trafficgen.Config{
		Seed: 10, Requests: 60, StubsOnly: true, Model: "uniform",
	})
}

var scopedKinds = []string{"on-demand", "precomputed", "pruned", "hybrid"}

// TestInvalidateScopedNarrowingMatchesFull: for changes that only remove
// routes (link failure, term removal), scoped invalidation must serve the
// exact same answers as a full rebuild — unaffected entries were optimal
// and stay optimal, affected ones are recomputed.
func TestInvalidateScopedNarrowingMatchesFull(t *testing.T) {
	workload := scopedWorkload(t)
	for _, kind := range scopedKinds {
		t.Run(kind, func(t *testing.T) {
			gS, dbS, scoped := scopedWorld(t, kind, workload)
			gF, dbF, full := scopedWorld(t, kind, workload)
			for _, req := range workload {
				scoped.Route(req)
				full.Route(req)
			}

			// Narrowing 1: a link failure.
			var lat ad.Link
			for _, l := range gS.Links() {
				if l.Class == ad.Lateral {
					lat = l
					break
				}
			}
			if lat.A == 0 {
				lat = gS.Links()[0]
			}
			gS.RemoveLink(lat.A, lat.B)
			gF.RemoveLink(lat.A, lat.B)
			scoped.InvalidateScoped(LinkDownChange(lat.A, lat.B))
			full.Invalidate()
			compareStrategies(t, "link-down", scoped, full, workload)

			// Narrowing 2: drop a transit AD's terms entirely.
			target := transitWithTerms(t, gS, dbS)
			deltaS := dbS.SetTerms(target, nil)
			dbF.SetTerms(target, nil)
			if deltaS.Broadens || len(deltaS.Removed) == 0 {
				t.Fatalf("dropping terms is not a pure narrowing: %+v", deltaS)
			}
			scoped.InvalidateScoped(PolicyChangeOf(deltaS))
			full.Invalidate()
			compareStrategies(t, "policy-narrow", scoped, full, workload)
		})
	}
}

// TestInvalidateScopedBroadeningStaysLegal: for changes that can create
// routes (link restoration), scoped invalidation retains legal-but-maybe-
// suboptimal positives and must still find a route wherever the full oracle
// does (negatives are dropped).
func TestInvalidateScopedBroadeningStaysLegal(t *testing.T) {
	workload := scopedWorkload(t)
	for _, kind := range scopedKinds {
		t.Run(kind, func(t *testing.T) {
			gS, dbS, scoped := scopedWorld(t, kind, workload)

			var lat ad.Link
			for _, l := range gS.Links() {
				if l.Class == ad.Lateral {
					lat = l
					break
				}
			}
			if lat.A == 0 {
				lat = gS.Links()[0]
			}
			// Fail the link, settle on the degraded world, then restore.
			gS.RemoveLink(lat.A, lat.B)
			scoped.InvalidateScoped(LinkDownChange(lat.A, lat.B))
			for _, req := range workload {
				scoped.Route(req)
			}
			if err := gS.AddLink(lat); err != nil {
				t.Fatal(err)
			}
			scoped.InvalidateScoped(LinkUpChange(lat.A, lat.B))

			for _, req := range workload {
				path, found := scoped.Route(req)
				exists := RouteExists(gS, dbS, req)
				if found != exists {
					t.Fatalf("req %v: found = %v, route exists = %v", req, found, exists)
				}
				if found && (!path.Valid(gS) || !dbS.PathLegal(path, req)) {
					t.Fatalf("req %v: retained route %v is illegal after restore", req, path)
				}
			}
		})
	}
}

func compareStrategies(t *testing.T, stage string, scoped, full Strategy, workload []policy.Request) {
	t.Helper()
	for _, req := range workload {
		pS, okS := scoped.Route(req)
		pF, okF := full.Route(req)
		if okS != okF || (okS && !pS.Equal(pF)) {
			t.Fatalf("%s: req %v: scoped (%v,%v) != full (%v,%v)",
				stage, req, pS, okS, pF, okF)
		}
	}
}

func transitWithTerms(t *testing.T, g *ad.Graph, db *policy.DB) ad.ID {
	t.Helper()
	for _, info := range g.ADs() {
		if info.Class == ad.Transit && len(db.Terms(info.ID)) > 0 {
			return info.ID
		}
	}
	t.Fatal("no transit AD with terms")
	return 0
}

// TestInvalidateScopedFullChangeEqualsInvalidate pins the fallback: a
// zero-value Change through InvalidateScoped must behave exactly like
// Invalidate (fresh recompute, optimal answers).
func TestInvalidateScopedFullChangeEqualsInvalidate(t *testing.T) {
	workload := scopedWorkload(t)
	for _, kind := range scopedKinds {
		t.Run(kind, func(t *testing.T) {
			gS, _, scoped := scopedWorld(t, kind, workload)
			gF, _, full := scopedWorld(t, kind, workload)
			for _, req := range workload {
				scoped.Route(req)
				full.Route(req)
			}
			l := gS.Links()[0]
			gS.RemoveLink(l.A, l.B)
			gF.RemoveLink(l.A, l.B)
			scoped.InvalidateScoped(FullChange())
			full.Invalidate()
			compareStrategies(t, "full-fallback", scoped, full, workload)
		})
	}
}
