package synthesis

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/topology"
)

// TestPrunedPrecomputesConfiguredClasses is the regression test for the
// class-blind precompute bug: the table was built only for (QOS 0, UCI 0),
// so any workload with QOSClasses/UCIClasses > 0 could never hit it (the
// cache key includes both classes).
func TestPrunedPrecomputesConfiguredClasses(t *testing.T) {
	g, s, _, _, d := diamond(t)
	db := policy.OpenDB(g)
	st := NewPrunedConfig(g, db, []ad.ID{s}, PrunedConfig{
		HopRadius: 3, QOSClasses: 2, UCIClasses: 2,
	})
	for qos := 0; qos < 2; qos++ {
		for uci := 0; uci < 2; uci++ {
			req := policy.Request{Src: s, Dst: d, Hour: 12,
				QOS: policy.QOS(qos), UCI: policy.UCI(uci)}
			if _, ok := st.Route(req); !ok {
				t.Fatalf("no route for %v", req)
			}
		}
	}
	stats := st.Stats()
	if stats.Misses != 0 {
		t.Fatalf("class-spread requests missed the precomputed table: %+v", stats)
	}
	if stats.Hits != 4 {
		t.Fatalf("Hits = %d, want 4", stats.Hits)
	}

	// The default constructor precomputes class 0 only; a class-1 request
	// must take the on-demand path (documenting the narrower semantics).
	def := NewPruned(g, db, []ad.ID{s}, 3)
	if _, ok := def.Route(policy.Request{Src: s, Dst: d, QOS: 1, Hour: 12}); !ok {
		t.Fatal("no on-demand route")
	}
	if got := def.Stats(); got.Misses != 1 {
		t.Fatalf("default-class strategy should miss on QOS 1: %+v", got)
	}
}

// classedWorkload builds distinct cold requests across a generated internet.
func classedWorkload(t *testing.T) (*ad.Graph, *policy.DB, []policy.Request) {
	t.Helper()
	topo := topology.Generate(topology.Config{Seed: 7, LateralProb: 0.3})
	g := topo.Graph
	db := policy.OpenDB(g)
	ids := g.IDs()
	var reqs []policy.Request
	for i, s := range ids {
		for j, d := range ids {
			if i == j {
				continue
			}
			reqs = append(reqs, policy.Request{Src: s, Dst: d, Hour: 12})
			if len(reqs) >= 40 {
				return g, db, reqs
			}
		}
	}
	return g, db, reqs
}

func TestHybridDemandCapEvicts(t *testing.T) {
	g, db, reqs := classedWorkload(t)
	const capn = 4
	st := NewHybridCapped(g, db, nil, capn)
	served := 0
	for _, r := range reqs {
		if _, ok := st.Route(r); ok {
			served++
		}
	}
	if served < capn+2 {
		t.Skipf("only %d routable requests; need > %d", served, capn+1)
	}
	stats := st.Stats()
	if stats.CacheEntries > capn {
		t.Fatalf("demand cache exceeded cap: %d > %d", stats.CacheEntries, capn)
	}
	if stats.Evictions == 0 {
		t.Fatalf("no evictions reported under cap pressure: %+v", stats)
	}
	if stats.Evictions != served-capn {
		t.Fatalf("Evictions = %d, want %d (served %d, cap %d)",
			stats.Evictions, served-capn, served, capn)
	}
}

func TestPrunedDemandCapEvicts(t *testing.T) {
	g, db, reqs := classedWorkload(t)
	const capn = 3
	// No sources precomputed: every request is a demand fill.
	st := NewPrunedConfig(g, db, nil, PrunedConfig{HopRadius: 1, DemandCap: capn})
	served := 0
	for _, r := range reqs {
		if _, ok := st.Route(r); ok {
			served++
		}
	}
	if served < capn+2 {
		t.Skipf("only %d routable requests; need > %d", served, capn+1)
	}
	stats := st.Stats()
	if stats.CacheEntries > capn {
		t.Fatalf("demand cache exceeded cap: %d > %d", stats.CacheEntries, capn)
	}
	if stats.Evictions == 0 {
		t.Fatalf("no evictions reported under cap pressure: %+v", stats)
	}
}

// TestInvalidatePreservesStats pins the copy-forward semantics of
// Strategy.Invalidate for all four strategies: cumulative counters (hits,
// misses, failures, expansion work, evictions) survive an invalidation;
// only the table state is rebuilt.
func TestInvalidatePreservesStats(t *testing.T) {
	g, s, _, _, d := diamond(t)
	db := policy.OpenDB(g)
	hot := []policy.Request{{Src: s, Dst: d, Hour: 12}}
	workload := []policy.Request{
		{Src: s, Dst: d, Hour: 12},
		{Src: d, Dst: s, Hour: 12},
		{Src: s, Dst: d, QOS: 1, Hour: 12},
		{Src: ad.ID(999), Dst: d, Hour: 12}, // unroutable: source not in graph
	}
	build := map[string]func() Strategy{
		"on-demand":   func() Strategy { return NewOnDemand(g, db) },
		"precomputed": func() Strategy { return NewPrecomputed(g, db, hot) },
		"hybrid":      func() Strategy { return NewHybridCapped(g, db, hot, 8) },
		"pruned": func() Strategy {
			return NewPrunedConfig(g, db, []ad.ID{s, d}, PrunedConfig{HopRadius: 2, DemandCap: 8})
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			st := mk()
			for _, r := range workload {
				st.Route(r)
			}
			before := st.Stats()
			if before.Hits+before.Misses != len(workload) {
				t.Fatalf("accounting broken before invalidation: %+v", before)
			}
			st.Invalidate()
			after := st.Stats()
			if after.Hits != before.Hits || after.Misses != before.Misses ||
				after.Failures != before.Failures {
				t.Fatalf("request counters not preserved:\nbefore %+v\nafter  %+v", before, after)
			}
			if after.OnDemandExpansions != before.OnDemandExpansions {
				t.Fatalf("on-demand work not preserved:\nbefore %+v\nafter  %+v", before, after)
			}
			if after.PrecomputeExpansions < before.PrecomputeExpansions {
				t.Fatalf("precompute work went backwards:\nbefore %+v\nafter  %+v", before, after)
			}
			if after.Evictions != before.Evictions {
				t.Fatalf("evictions not preserved:\nbefore %+v\nafter  %+v", before, after)
			}
			// The strategy must keep serving and accumulating afterwards.
			if _, ok := st.Route(policy.Request{Src: s, Dst: d, Hour: 12}); !ok {
				t.Fatal("strategy cannot serve after Invalidate")
			}
			final := st.Stats()
			if final.Hits+final.Misses != after.Hits+after.Misses+1 {
				t.Fatalf("counters stopped accumulating after Invalidate: %+v", final)
			}
		})
	}
}
