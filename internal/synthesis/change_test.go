package synthesis

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
)

// diamondDB builds src -(t1|t2)- dst with t1 the cheap transit.
func diamondDB(t *testing.T) (*ad.Graph, *policy.DB, ad.ID, ad.ID, ad.ID, ad.ID) {
	t.Helper()
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	dst := g.AddAD("dst", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: t1, Cost: 1}, {A: t1, B: dst, Cost: 1},
		{A: src, B: t2, Cost: 5}, {A: t2, B: dst, Cost: 5},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return g, policy.OpenDB(g), src, t1, t2, dst
}

func TestChangeAffectsPath(t *testing.T) {
	_, _, src, t1, t2, dst := diamondDB(t)
	via1 := ad.Path{src, t1, dst}

	cases := []struct {
		name string
		c    Change
		want bool
	}{
		{"link-down crossing", LinkDownChange(t1, dst), true},
		{"link-down crossing reversed", LinkDownChange(dst, t1), true},
		{"link-down elsewhere", LinkDownChange(src, t2), false},
		{"link-up never breaks", LinkUpChange(t1, dst), false},
		{"policy at transited AD", PolicyChangeAt(t1), true},
		{"policy at other AD", PolicyChangeAt(t2), false},
		{"full", FullChange(), true},
	}
	for _, tc := range cases {
		if got := tc.c.AffectsPath(via1); got != tc.want {
			t.Errorf("%s: AffectsPath = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Policy changes taint transits, not endpoints: the source and
	// destination ADs advertise no transit terms a route depends on.
	if PolicyChangeAt(src).AffectsPath(via1) {
		t.Error("policy change at the source AD tainted the path")
	}
}

func TestChangeAffectsNegative(t *testing.T) {
	cases := []struct {
		name string
		c    Change
		want bool
	}{
		{"link-down cannot create routes", LinkDownChange(1, 2), false},
		{"link-up broadens", LinkUpChange(1, 2), true},
		{"narrowing policy", PolicyChangeOf(policy.TermsDelta{AD: 3, Removed: []policy.Key{{Advertiser: 3, Serial: 1}}}), false},
		{"broadening policy", PolicyChangeOf(policy.TermsDelta{AD: 3, Broadens: true}), true},
		{"AD-level policy", PolicyChangeAt(3), true},
		{"full", FullChange(), true},
	}
	for _, tc := range cases {
		if got := tc.c.AffectsNegative(); got != tc.want {
			t.Errorf("%s: AffectsNegative = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestChangeZeroValueIsFull(t *testing.T) {
	var c Change
	if c.Kind != ChangeFull || !c.AffectsPath(ad.Path{1, 2}) || !c.AffectsNegative() {
		t.Fatalf("zero Change is not the sound full fallback: %+v", c)
	}
	if ChangeFull.String() != "full" || ChangeLinkDown.String() != "link-down" ||
		ChangeLinkUp.String() != "link-up" || ChangePolicy.String() != "policy" {
		t.Error("ChangeKind.String mismatch")
	}
}

func TestFootprintOf(t *testing.T) {
	g, db, src, t1, _, dst := diamondDB(t)
	req := policy.Request{Src: src, Dst: dst}
	res := FindRoute(g, db, req)
	if !res.Found || !res.Path.Equal(ad.Path{src, t1, dst}) {
		t.Fatalf("setup: route = %+v", res)
	}

	fp := FootprintOf(g, db, req, res.Path)
	wantLinks := [][2]ad.ID{CanonicalPair(src, t1), CanonicalPair(t1, dst)}
	if len(fp.Links) != len(wantLinks) {
		t.Fatalf("links = %v, want %v", fp.Links, wantLinks)
	}
	for i := range wantLinks {
		if fp.Links[i] != wantLinks[i] {
			t.Fatalf("links = %v, want %v", fp.Links, wantLinks)
		}
	}
	// One transit AD, so one admitting term: the cheapest one at t1.
	if len(fp.Terms) != 1 || fp.Terms[0].Advertiser != t1 {
		t.Fatalf("terms = %v, want one key at %v", fp.Terms, t1)
	}
	term, ok := db.PermitsTransit(t1, req, src, dst)
	if !ok || fp.Terms[0] != term.Key() {
		t.Fatalf("footprint term %v != cheapest permitting term %v", fp.Terms[0], term.Key())
	}

	// Degenerate paths carry no dependencies.
	if fp := FootprintOf(g, db, req, ad.Path{src}); len(fp.Links) != 0 || len(fp.Terms) != 0 {
		t.Fatalf("single-AD path footprint = %+v", fp)
	}
}

func TestCanonicalPair(t *testing.T) {
	if CanonicalPair(7, 3) != [2]ad.ID{3, 7} || CanonicalPair(3, 7) != [2]ad.ID{3, 7} {
		t.Error("CanonicalPair is not order-insensitive")
	}
}
