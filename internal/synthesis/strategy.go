package synthesis

import (
	"repro/internal/ad"
	"repro/internal/policy"
)

// StrategyStats instruments a synthesis strategy for experiment E7.
type StrategyStats struct {
	// PrecomputeExpansions is search work done up front.
	PrecomputeExpansions int
	// OnDemandExpansions is search work done at request time.
	OnDemandExpansions int
	// Hits are requests answered from the precomputed table.
	Hits int
	// Misses are requests that required an on-demand computation.
	Misses int
	// Failures are requests for which no legal route exists.
	Failures int
	// CacheEntries is the current size of the route table.
	CacheEntries int
	// Evictions counts demand-fill entries dropped for capacity.
	Evictions int
}

// Strategy is a route synthesis strategy: given a traffic request, produce a
// legal route, accounting the work performed.
//
// The contract has two planes. The read plane — Route, Footprint, Stats,
// Name — is safe for any number of concurrent goroutines: routes are
// resolved against the strategy's current tables, demand fills land in
// internally locked sharded caches, and counters are atomics merged on
// read. The write plane — Invalidate and InvalidateScoped — rebuilds those
// tables and requires exclusive access: no read-plane call may be in
// flight while a write-plane call runs. The serving layer enforces this
// with a sync.RWMutex (misses hold the read side, mutations the write
// side); code driving a strategy directly must provide the same exclusion.
type Strategy interface {
	// Route returns a legal route for req, or false if none exists.
	// Read plane: safe to call concurrently.
	Route(req policy.Request) (ad.Path, bool)
	// Stats returns cumulative instrumentation. Read plane.
	Stats() StrategyStats
	// Invalidate discards cached state after a topology/policy change.
	// Write plane: requires exclusive access. Cumulative counters survive;
	// CacheEntries reflects the rebuilt tables at the next Stats call.
	Invalidate()
	// InvalidateScoped discards only cached state the change can affect;
	// a ChangeFull is equivalent to Invalidate. Recompute work is charged
	// to PrecomputeExpansions. Write plane: requires exclusive access.
	InvalidateScoped(c Change)
	// Footprint reports the dependency set of a route this strategy
	// returned for req. Read plane: safe to call concurrently.
	Footprint(req policy.Request, path ad.Path) Footprint
	// Name identifies the strategy in reports.
	Name() string
}

// refill reconciles one table entry with a scoped change: entries the
// change cannot touch are kept as-is; affected entries are recomputed in
// place (deleted if the route vanished), and absent entries are computed
// when the change broadens what is routable. Returns the search work done.
// Write plane only: it mutates the table without locking.
func refill(g *ad.Graph, db *policy.DB, table map[cacheKey]ad.Path, req policy.Request, c Change) int {
	k := keyOf(req)
	p, exists := table[k]
	if exists && !c.AffectsPath(p) {
		return 0
	}
	if !exists && !c.AffectsNegative() {
		return 0
	}
	res := FindRoute(g, db, req)
	if res.Found {
		table[k] = res.Path
	} else {
		delete(table, k)
	}
	return res.Expanded
}

// OnDemand computes every route at request time: minimal state, maximal
// setup latency (the paper: "on demand computation may introduce excessive
// latency at setup time", §5.4.1).
type OnDemand struct {
	g   *ad.Graph
	db  *policy.DB
	ctr counters
}

// NewOnDemand returns an on-demand strategy over the given view.
func NewOnDemand(g *ad.Graph, db *policy.DB) *OnDemand {
	return &OnDemand{g: g, db: db}
}

// Name implements Strategy.
func (s *OnDemand) Name() string { return "on-demand" }

// Route implements Strategy.
func (s *OnDemand) Route(req policy.Request) (ad.Path, bool) {
	res := FindRoute(s.g, s.db, req)
	s.ctr.onDemand.Add(int64(res.Expanded))
	s.ctr.misses.Add(1)
	if !res.Found {
		s.ctr.failures.Add(1)
		return nil, false
	}
	return res.Path, true
}

// Stats implements Strategy.
func (s *OnDemand) Stats() StrategyStats { return s.ctr.snapshot() }

// Invalidate implements Strategy (no cached state; cumulative counters
// survive).
func (s *OnDemand) Invalidate() {}

// InvalidateScoped implements Strategy (no cached state to scope).
func (s *OnDemand) InvalidateScoped(c Change) {
	if c.Kind == ChangeFull {
		s.Invalidate()
	}
}

// Footprint implements Strategy.
func (s *OnDemand) Footprint(req policy.Request, path ad.Path) Footprint {
	return FootprintOf(s.g, s.db, req, path)
}

// cacheKey identifies a precomputed route. Hour is quantized out: routes
// are recomputed only when term windows change legality, which the
// strategies treat as an invalidation event.
type cacheKey struct {
	src, dst ad.ID
	qos      policy.QOS
	uci      policy.UCI
}

func keyOf(req policy.Request) cacheKey {
	return cacheKey{src: req.Src, dst: req.Dst, qos: req.QOS, uci: req.UCI}
}

// Precomputed computes routes for an anticipated request population up
// front. Requests outside the precomputed set fail unless they hit the
// table ("precomputation of all policy routes in a large internet is
// computationally intractable", §5.4.1 — this strategy makes that cost
// measurable).
type Precomputed struct {
	g    *ad.Graph
	db   *policy.DB
	reqs []policy.Request
	// table is read concurrently by Route and replaced wholesale only on
	// the write plane; map reads need no lock as long as the caller keeps
	// the planes exclusive.
	table map[cacheKey]ad.Path
	ctr   counters
}

// NewPrecomputed builds the table for the given request population.
func NewPrecomputed(g *ad.Graph, db *policy.DB, reqs []policy.Request) *Precomputed {
	s := &Precomputed{g: g, db: db, reqs: reqs}
	s.build()
	return s
}

func (s *Precomputed) build() {
	s.table = make(map[cacheKey]ad.Path, len(s.reqs))
	for _, req := range s.reqs {
		res := FindRoute(s.g, s.db, req)
		s.ctr.precompute.Add(int64(res.Expanded))
		if res.Found {
			s.table[keyOf(req)] = res.Path
		}
	}
}

// Name implements Strategy.
func (s *Precomputed) Name() string { return "precomputed" }

// Route implements Strategy.
func (s *Precomputed) Route(req policy.Request) (ad.Path, bool) {
	if p, ok := s.table[keyOf(req)]; ok {
		s.ctr.hits.Add(1)
		return p, true
	}
	s.ctr.misses.Add(1)
	s.ctr.failures.Add(1)
	return nil, false
}

// Stats implements Strategy.
func (s *Precomputed) Stats() StrategyStats {
	st := s.ctr.snapshot()
	st.CacheEntries = len(s.table)
	return st
}

// Invalidate rebuilds the whole table, charging precompute work again.
func (s *Precomputed) Invalidate() {
	s.build()
}

// InvalidateScoped recomputes only the population entries the change can
// affect; the rest of the table keeps serving untouched.
func (s *Precomputed) InvalidateScoped(c Change) {
	if c.Kind == ChangeFull {
		s.Invalidate()
		return
	}
	for _, req := range s.reqs {
		s.ctr.precompute.Add(int64(refill(s.g, s.db, s.table, req, c)))
	}
}

// Footprint implements Strategy.
func (s *Precomputed) Footprint(req policy.Request, path ad.Path) Footprint {
	return FootprintOf(s.g, s.db, req, path)
}

// PrunedConfig parameterizes the pruned-precompute strategy.
type PrunedConfig struct {
	// HopRadius bounds the precomputed neighbourhood (< 1 means 2).
	HopRadius int
	// QOSClasses / UCIClasses are the traffic class counts to precompute
	// over: the table is built for every (qos, uci) in
	// [0,QOSClasses) x [0,UCIClasses). Values < 1 mean class 0 only. The
	// cache key includes both classes, so a strategy precomputed for class
	// 0 only can never serve a class-1 request from its table.
	QOSClasses int
	UCIClasses int
	// DemandCap bounds the demand-fill cache for requests outside the
	// precomputed neighbourhood (0 = unbounded).
	DemandCap int
}

func (c PrunedConfig) normalize() PrunedConfig {
	if c.HopRadius < 1 {
		c.HopRadius = 2
	}
	if c.QOSClasses < 1 {
		c.QOSClasses = 1
	}
	if c.UCIClasses < 1 {
		c.UCIClasses = 1
	}
	return c
}

// Pruned is a heuristic precomputation strategy in the direction the paper
// sketches ("precomputation could use heuristics to prune the search and
// limit it to commonly used routes", §5.4.1): for each source it precomputes
// routes only to destinations within HopRadius AD hops, on the observation
// that inter-AD traffic is dominated by nearby destinations; everything
// farther is computed on demand and cached (bounded by DemandCap).
type Pruned struct {
	g    *ad.Graph
	db   *policy.DB
	srcs []ad.ID
	cfg  PrunedConfig
	// HopRadius mirrors cfg.HopRadius for report labelling.
	HopRadius int
	table     map[cacheKey]ad.Path
	demand    *demandCache
	ctr       counters
}

// NewPruned builds the pruned-precompute strategy for the given sources with
// default traffic classes (class 0 only) and an unbounded demand cache.
func NewPruned(g *ad.Graph, db *policy.DB, srcs []ad.ID, hopRadius int) *Pruned {
	return NewPrunedConfig(g, db, srcs, PrunedConfig{HopRadius: hopRadius})
}

// NewPrunedConfig builds the pruned-precompute strategy with explicit
// neighbourhood, traffic-class, and demand-cache configuration.
func NewPrunedConfig(g *ad.Graph, db *policy.DB, srcs []ad.ID, cfg PrunedConfig) *Pruned {
	cfg = cfg.normalize()
	s := &Pruned{
		g: g, db: db, srcs: srcs, cfg: cfg, HopRadius: cfg.HopRadius,
		demand: newDemandCache(cfg.DemandCap),
	}
	s.build()
	return s
}

// withinRadius returns the ADs reachable from src within r hops (BFS on the
// raw topology, policy-blind — it is only a pruning heuristic).
func (s *Pruned) withinRadius(src ad.ID, r int) []ad.ID {
	depth := map[ad.ID]int{src: 0}
	queue := []ad.ID{src}
	var out []ad.ID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if depth[cur] >= r {
			continue
		}
		for _, nb := range s.g.Neighbors(cur) {
			if _, seen := depth[nb]; seen {
				continue
			}
			depth[nb] = depth[cur] + 1
			out = append(out, nb)
			queue = append(queue, nb)
		}
	}
	return out
}

func (s *Pruned) build() {
	s.table = make(map[cacheKey]ad.Path)
	for _, src := range s.srcs {
		for _, dst := range s.withinRadius(src, s.cfg.HopRadius) {
			for qos := 0; qos < s.cfg.QOSClasses; qos++ {
				for uci := 0; uci < s.cfg.UCIClasses; uci++ {
					req := policy.Request{
						Src: src, Dst: dst, Hour: 12,
						QOS: policy.QOS(qos), UCI: policy.UCI(uci),
					}
					res := FindRoute(s.g, s.db, req)
					s.ctr.precompute.Add(int64(res.Expanded))
					if res.Found {
						s.table[keyOf(req)] = res.Path
					}
				}
			}
		}
	}
}

// Name implements Strategy.
func (s *Pruned) Name() string { return "pruned" }

// Route implements Strategy.
func (s *Pruned) Route(req policy.Request) (ad.Path, bool) {
	k := keyOf(req)
	if p, ok := s.table[k]; ok {
		s.ctr.hits.Add(1)
		return p, true
	}
	if p, ok := s.demand.get(k); ok {
		s.ctr.hits.Add(1)
		return p, true
	}
	s.ctr.misses.Add(1)
	res := FindRoute(s.g, s.db, req)
	s.ctr.onDemand.Add(int64(res.Expanded))
	if !res.Found {
		s.ctr.failures.Add(1)
		return nil, false
	}
	s.demand.put(k, res.Path)
	return res.Path, true
}

// Stats implements Strategy.
func (s *Pruned) Stats() StrategyStats {
	st := s.ctr.snapshot()
	st.CacheEntries = len(s.table) + s.demand.len()
	st.Evictions = s.demand.evictions()
	return st
}

// Invalidate rebuilds the neighbourhood tables and drops demand fills.
func (s *Pruned) Invalidate() {
	s.demand.purge()
	s.build()
}

// InvalidateScoped refills only the affected slice of the post-change
// neighbourhood population. Table entries that fell outside the
// neighbourhood (a removed link can shrink it) are retained while legal —
// the contract is legality, not population membership — and dropped when
// the change touches them, leaving the demand path to recompute.
func (s *Pruned) InvalidateScoped(c Change) {
	if c.Kind == ChangeFull {
		s.Invalidate()
		return
	}
	seen := make(map[cacheKey]bool, len(s.table))
	for _, src := range s.srcs {
		for _, dst := range s.withinRadius(src, s.cfg.HopRadius) {
			for qos := 0; qos < s.cfg.QOSClasses; qos++ {
				for uci := 0; uci < s.cfg.UCIClasses; uci++ {
					req := policy.Request{
						Src: src, Dst: dst, Hour: 12,
						QOS: policy.QOS(qos), UCI: policy.UCI(uci),
					}
					seen[keyOf(req)] = true
					s.ctr.precompute.Add(int64(refill(s.g, s.db, s.table, req, c)))
				}
			}
		}
	}
	for k, p := range s.table {
		if !seen[k] && c.AffectsPath(p) {
			delete(s.table, k)
		}
	}
	s.demand.dropAffected(c)
}

// Footprint implements Strategy.
func (s *Pruned) Footprint(req policy.Request, path ad.Path) Footprint {
	return FootprintOf(s.g, s.db, req, path)
}

// Hybrid precomputes routes for a hot set of requests and falls back to
// on-demand computation (with caching, bounded by the demand cap) for the
// rest — the combination the paper recommends (§5.4.1: "a combination of
// precomputation and on-demand computation should be used").
type Hybrid struct {
	g      *ad.Graph
	db     *policy.DB
	hot    []policy.Request
	table  map[cacheKey]ad.Path
	demand *demandCache
	ctr    counters
}

// NewHybrid builds the hot-set table with an unbounded demand cache.
func NewHybrid(g *ad.Graph, db *policy.DB, hot []policy.Request) *Hybrid {
	return NewHybridCapped(g, db, hot, 0)
}

// NewHybridCapped builds the hot-set table with the demand-fill cache
// bounded to demandCap entries (0 = unbounded). Under streaming workloads
// the demand map otherwise grows without bound; evictions are reported in
// StrategyStats.
func NewHybridCapped(g *ad.Graph, db *policy.DB, hot []policy.Request, demandCap int) *Hybrid {
	s := &Hybrid{g: g, db: db, hot: hot,
		demand: newDemandCache(demandCap)}
	s.build()
	return s
}

func (s *Hybrid) build() {
	s.table = make(map[cacheKey]ad.Path, len(s.hot))
	for _, req := range s.hot {
		res := FindRoute(s.g, s.db, req)
		s.ctr.precompute.Add(int64(res.Expanded))
		if res.Found {
			s.table[keyOf(req)] = res.Path
		}
	}
}

// Name implements Strategy.
func (s *Hybrid) Name() string { return "hybrid" }

// Route implements Strategy.
func (s *Hybrid) Route(req policy.Request) (ad.Path, bool) {
	k := keyOf(req)
	if p, ok := s.table[k]; ok {
		s.ctr.hits.Add(1)
		return p, true
	}
	if p, ok := s.demand.get(k); ok {
		s.ctr.hits.Add(1)
		return p, true
	}
	s.ctr.misses.Add(1)
	res := FindRoute(s.g, s.db, req)
	s.ctr.onDemand.Add(int64(res.Expanded))
	if !res.Found {
		s.ctr.failures.Add(1)
		return nil, false
	}
	// Demand-filled entries serve later requests from the cache.
	s.demand.put(k, res.Path)
	return res.Path, true
}

// Stats implements Strategy.
func (s *Hybrid) Stats() StrategyStats {
	st := s.ctr.snapshot()
	st.CacheEntries = len(s.table) + s.demand.len()
	st.Evictions = s.demand.evictions()
	return st
}

// Invalidate drops demand-filled entries and rebuilds the hot set.
func (s *Hybrid) Invalidate() {
	s.demand.purge()
	s.build()
}

// InvalidateScoped refills affected hot-set entries and evicts only the
// affected demand fills; unaffected entries keep serving.
func (s *Hybrid) InvalidateScoped(c Change) {
	if c.Kind == ChangeFull {
		s.Invalidate()
		return
	}
	for _, req := range s.hot {
		s.ctr.precompute.Add(int64(refill(s.g, s.db, s.table, req, c)))
	}
	s.demand.dropAffected(c)
}

// Footprint implements Strategy.
func (s *Hybrid) Footprint(req policy.Request, path ad.Path) Footprint {
	return FootprintOf(s.g, s.db, req, path)
}
