package pgstate

// Concurrency stress for the sharded table, meaningful under -race (the
// Makefile's race target runs this package explicitly, mirroring the ha
// package's double-race pattern). Handles are drawn from a small space so
// goroutines constantly collide on the same shards; the assertions are
// deliberately weak (the differential harness owns exact semantics) — this
// test exists so the race detector can watch every lock path at once.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ad"
	"repro/internal/sim"
)

func TestConcurrentShardStress(t *testing.T) {
	const (
		workers = 8
		opsEach = 4000
		space   = 256 // handle space << workers*ops: heavy shard overlap
	)
	tab := NewTable(Config{Kind: Soft, TTL: 2 * sim.Second, Shards: 4})
	var clock atomic.Int64 // shared monotone clock, coarse ticks
	clock.Store(1)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				now := sim.Time(clock.Add(int64(rng.Intn(3))))
				h := uint64(rng.Intn(space)) + 1
				switch rng.Intn(10) {
				case 0, 1, 2:
					route := ad.Path{ad.ID(rng.Intn(4) + 1), ad.ID(rng.Intn(4) + 5)}
					tab.Install(now, h, route, 0, testReq, sim.Time(1+rng.Intn(3))*sim.Second)
				case 3, 4:
					tab.Lookup(now, h)
				case 5:
					tab.Peek(now, h)
				case 6:
					tab.Refresh(now, h, 0)
				case 7:
					tab.Remove(h)
				case 8:
					tab.ExpireDue(now)
				default:
					tab.HandlesCrossing(ad.ID(rng.Intn(4)+1), ad.ID(rng.Intn(4)+5))
				}
			}
		}(int64(wkr + 1))
	}
	wg.Wait()
	// Sanity: counters and residency are coherent after the dust settles.
	st := tab.Stats()
	if st.Resident != tab.Len() || st.Resident != len(tab.Handles()) {
		t.Fatalf("resident bookkeeping diverged: stats=%d len=%d handles=%d",
			st.Resident, tab.Len(), len(tab.Handles()))
	}
	if st.Peak < st.Resident {
		t.Fatalf("peak %d below resident %d", st.Peak, st.Resident)
	}
	if st.Installs == 0 || st.Hits+st.Misses == 0 {
		t.Fatalf("stress ran no ops? %+v", st)
	}
	// Drain everything and confirm the table empties cleanly.
	for _, h := range tab.Handles() {
		tab.Remove(h)
	}
	if tab.Len() != 0 {
		t.Fatalf("table not empty after removing all handles: %d left", tab.Len())
	}
}
