package pgstate

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/sim"
)

var (
	testRoute = ad.Path{1, 2, 3}
	testReq   = policy.Request{Src: 1, Dst: 3}
)

func install(t *Table, now sim.Time, h uint64) {
	t.Install(now, h, testRoute, 1, testReq, 0)
}

func TestConfigNormalize(t *testing.T) {
	c, err := Config{}.Normalize()
	if err != nil || c.Kind != Hard {
		t.Fatalf("zero config = %+v, %v; want hard state", c, err)
	}
	c, err = Config{Kind: Soft}.Normalize()
	if err != nil || c.TTL != DefaultTTL {
		t.Fatalf("soft config = %+v, %v; want default TTL", c, err)
	}
	c, err = Config{Kind: Capped}.Normalize()
	if err != nil || c.Capacity != DefaultCapacity {
		t.Fatalf("capped config = %+v, %v; want default capacity", c, err)
	}
	if _, err := (Config{Kind: "bogus"}).Normalize(); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestHardStateLivesUntilRemove(t *testing.T) {
	tab := NewTable(Config{Kind: Hard})
	for h := uint64(1); h <= 100; h++ {
		install(tab, sim.Time(h), h)
	}
	// A very late lookup still hits: hard state never expires.
	if _, ok := tab.Lookup(1000*sim.Second, 1); !ok {
		t.Fatal("hard entry vanished without teardown")
	}
	if !tab.Remove(1) {
		t.Fatal("remove failed")
	}
	if _, ok := tab.Lookup(0, 1); ok {
		t.Fatal("entry survived removal")
	}
	st := tab.Stats()
	if st.Evictions != 0 || st.Expirations != 0 {
		t.Fatalf("hard state evicted/expired: %+v", st)
	}
	if st.Peak != 100 || st.Resident != 99 {
		t.Fatalf("peak/resident = %d/%d, want 100/99", st.Peak, st.Resident)
	}
}

func TestSoftStateExpiresWithoutRefresh(t *testing.T) {
	tab := NewTable(Config{Kind: Soft, TTL: 10 * sim.Second})
	install(tab, 0, 1)
	install(tab, 0, 2)
	// Refresh keeps handle 1 alive past the original deadline.
	if !tab.Refresh(8*sim.Second, 1, 0) {
		t.Fatal("refresh of live entry failed")
	}
	if _, ok := tab.Lookup(12*sim.Second, 1); !ok {
		t.Fatal("refreshed entry expired")
	}
	// Handle 2 was never refreshed: dead at 12s, and the lookup both
	// expires it and counts a miss.
	if _, ok := tab.Lookup(12*sim.Second, 2); ok {
		t.Fatal("unrefreshed entry survived past TTL")
	}
	st := tab.Stats()
	if st.Expirations != 1 || st.Misses != 1 || st.Refreshes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Refreshing an expired handle fails (the source must re-setup).
	if tab.Refresh(100*sim.Second, 1, 0) {
		t.Fatal("refresh resurrected an expired entry")
	}
}

func TestSoftStateSourceRequestedTTL(t *testing.T) {
	tab := NewTable(Config{Kind: Soft, TTL: 10 * sim.Second})
	// The setup packet asked for a 60s lifetime; the table honours it.
	tab.Install(0, 1, testRoute, 1, testReq, 60*sim.Second)
	if _, ok := tab.Peek(50*sim.Second, 1); !ok {
		t.Fatal("source-requested TTL not honoured")
	}
	if _, ok := tab.Peek(61*sim.Second, 1); ok {
		t.Fatal("entry outlived the requested TTL")
	}
}

func TestSoftExpireDueSweepsDeterministically(t *testing.T) {
	tab := NewTable(Config{Kind: Soft, TTL: 5 * sim.Second})
	for h := uint64(10); h >= 1; h-- { // install in descending order
		install(tab, 0, h)
	}
	tab.Refresh(4*sim.Second, 3, 0)
	due := tab.ExpireDue(6 * sim.Second)
	if len(due) != 9 {
		t.Fatalf("expired %d, want 9", len(due))
	}
	for i := 1; i < len(due); i++ {
		if due[i-1] >= due[i] {
			t.Fatalf("expiry sweep not ascending: %v", due)
		}
	}
	if tab.Len() != 1 {
		t.Fatalf("resident = %d, want 1 (the refreshed entry)", tab.Len())
	}
	if hs := tab.Handles(); len(hs) != 1 || hs[0] != 3 {
		t.Fatalf("survivor = %v, want [3]", hs)
	}
}

func TestCappedStateEvictsLRU(t *testing.T) {
	tab := NewTable(Config{Kind: Capped, Capacity: 3})
	for h := uint64(1); h <= 3; h++ {
		install(tab, 0, h)
	}
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := tab.Lookup(1, 1); !ok {
		t.Fatal("lookup of live entry failed")
	}
	install(tab, 2, 4)
	if _, ok := tab.Peek(2, 2); ok {
		t.Fatal("LRU entry survived over-capacity install")
	}
	for _, h := range []uint64{1, 3, 4} {
		if _, ok := tab.Peek(2, h); !ok {
			t.Fatalf("entry %d wrongly evicted", h)
		}
	}
	st := tab.Stats()
	if st.Evictions != 1 || st.Peak != 3 || st.Resident != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Peak never exceeds capacity: the discipline's whole point.
	for h := uint64(5); h <= 50; h++ {
		install(tab, sim.Time(h), h)
	}
	if st = tab.Stats(); st.Peak != 3 {
		t.Fatalf("peak %d exceeds capacity 3", st.Peak)
	}
}

func TestRefreshTouchesCappedRecency(t *testing.T) {
	tab := NewTable(Config{Kind: Capped, Capacity: 2})
	install(tab, 0, 1)
	install(tab, 1, 2)
	// Refreshing 1 makes 2 the victim of the next install.
	if !tab.Refresh(2, 1, 0) {
		t.Fatal("refresh failed")
	}
	install(tab, 3, 3)
	if _, ok := tab.Peek(3, 1); !ok {
		t.Fatal("refreshed entry was evicted")
	}
	if _, ok := tab.Peek(3, 2); ok {
		t.Fatal("stale entry survived")
	}
}

func TestPeekDoesNotCountOrTouch(t *testing.T) {
	tab := NewTable(Config{Kind: Capped, Capacity: 2})
	install(tab, 0, 1)
	install(tab, 1, 2)
	// Peek at 1 must NOT promote it: 1 stays the LRU victim.
	tab.Peek(2, 1)
	install(tab, 3, 3)
	if _, ok := tab.Peek(3, 1); ok {
		t.Fatal("Peek promoted the entry")
	}
	st := tab.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek moved data-plane counters: %+v", st)
	}
}

func TestEntryFieldsRoundTrip(t *testing.T) {
	tab := NewTable(Config{Kind: Soft, TTL: 7 * sim.Second})
	tab.Install(3, 9, testRoute, 2, testReq, 0)
	e, ok := tab.Lookup(4, 9)
	if !ok {
		t.Fatal("entry missing")
	}
	if !e.Route.Equal(testRoute) || e.Idx != 2 || e.Req != testReq ||
		e.Installed != 3 || e.Deadline != 3+7*sim.Second {
		t.Fatalf("entry = %+v", e)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Installs: 1, Hits: 2, Misses: 3, Evictions: 4, Expirations: 5, Refreshes: 6, Resident: 7, Peak: 8}
	b := a
	a.Add(b)
	want := Stats{Installs: 2, Hits: 4, Misses: 6, Evictions: 8, Expirations: 10, Refreshes: 12, Resident: 14, Peak: 16}
	if a != want {
		t.Fatalf("sum = %+v, want %+v", a, want)
	}
}

func TestNewTablePanicsOnBadKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad kind did not panic")
		}
	}()
	NewTable(Config{Kind: "nope"})
}
