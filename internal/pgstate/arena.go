package pgstate

// The arena packs handle records into fixed-size slabs with free-list
// reuse. A record never moves once allocated, so the timer wheel and the
// handle map can both refer to it by a stable int32 index; a released slot
// goes onto the free list and is handed back to the next Install, which
// keeps steady-state install/remove traffic allocation-free (a new slab is
// allocated only when the table grows past every slot it has ever held).

// Slab sizing: 256 records per slab (~40 KB) keeps growth increments small
// enough for the per-PG tables of the simulator while letting one shard of
// the serving layer hold millions of records without ever moving one.
const (
	slabShift = 8
	slabSize  = 1 << slabShift
	slabMask  = slabSize - 1
)

// rec is one arena slot: the entry payload, its handle (so wheel sweeps can
// report handles without a reverse map), and the intrusive timer-wheel
// links. gen is bumped on every release so stale overflow-heap references
// to a reused slot can be detected and skipped.
type rec struct {
	entry  Entry
	handle uint64
	gen    uint32
	live   bool
	// wSlot is the flat wheel slot holding this record
	// (level*wheelSlots+slot), wheelOverflow, or wheelNone when the record
	// is not scheduled. wNext/wPrev are arena indices chaining the slot's
	// doubly-linked list (-1 terminated).
	wSlot        int32
	wNext, wPrev int32
}

// arena is a grow-only collection of slabs plus a LIFO free list of
// released slots.
type arena struct {
	slabs [][]rec
	free  []int32
}

// at returns the record for idx. The pointer is stable for the record's
// lifetime but must not be retained past a release of idx.
func (a *arena) at(idx int32) *rec {
	return &a.slabs[idx>>slabShift][idx&slabMask]
}

// alloc returns a free record index, growing by one slab when the free
// list is empty. The returned record is zeroed except for gen (which must
// survive reuse for staleness detection).
func (a *arena) alloc() int32 {
	if n := len(a.free); n > 0 {
		idx := a.free[n-1]
		a.free = a.free[:n-1]
		r := a.at(idx)
		r.live = true
		r.wSlot, r.wNext, r.wPrev = wheelNone, -1, -1
		return idx
	}
	base := int32(len(a.slabs)) << slabShift
	slab := make([]rec, slabSize)
	a.slabs = append(a.slabs, slab)
	// Hand out slot 0 now and stack the rest so they allocate in ascending
	// order.
	for i := slabSize - 1; i >= 1; i-- {
		slab[i].wSlot = wheelNone
		slab[i].wNext, slab[i].wPrev = -1, -1
		a.free = append(a.free, base+int32(i))
	}
	r := &slab[0]
	r.live = true
	r.wSlot, r.wNext, r.wPrev = wheelNone, -1, -1
	return base
}

// release returns idx to the free list. The payload is cleared so the
// arena does not pin the route slice, and gen is bumped so any stale
// overflow-heap reference to this slot is recognizably dead.
func (a *arena) release(idx int32) {
	r := a.at(idx)
	r.entry = Entry{}
	r.handle = 0
	r.live = false
	r.gen++
	r.wSlot, r.wNext, r.wPrev = wheelNone, -1, -1
	a.free = append(a.free, idx)
}
