package pgstate

// Reference is the retained scan-based handle table: one LRU, one flat
// link index, full-table scans for expiry. It is the executable
// specification for Table — every observable behaviour (returned entries,
// booleans, handle orderings, expiry sets, Stats) is defined by this
// implementation, and differential_test.go drives the two in lockstep
// through the Store interface to prove the sharded table equivalent.
//
// Keep this implementation boring. Its value is that it is obviously
// correct; performance work belongs in Table.

import (
	"sort"

	"repro/internal/ad"
	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Reference is one PG's handle table under a lifecycle discipline. Not
// safe for concurrent use.
type Reference struct {
	cfg Config
	lru *cache.LRU[uint64, *Entry]
	// byLink maps each adjacency (canonical low-high pair) crossed by an
	// entry's route to the handles depending on it. Maintained in step
	// with lru.
	byLink map[[2]ad.ID]map[uint64]struct{}
	stats  Stats
}

// NewReference builds an empty reference table. Unknown kinds panic,
// matching NewTable.
func NewReference(cfg Config) *Reference {
	cfg, err := cfg.Normalize()
	if err != nil {
		panic(err)
	}
	capacity := 0 // unbounded for hard and soft state
	if cfg.Kind == Capped {
		capacity = cfg.Capacity
	}
	t := &Reference{
		cfg:    cfg,
		lru:    cache.NewLRU[uint64, *Entry](capacity),
		byLink: make(map[[2]ad.ID]map[uint64]struct{}),
	}
	t.lru.OnEvict = func(h uint64, e *Entry) {
		t.stats.Evictions++
		unindexRoute(t.byLink, h, e.Route)
	}
	return t
}

// drop removes h and its index edges, reporting whether it was present.
func (t *Reference) drop(h uint64) bool {
	if e, ok := t.lru.Peek(h); ok {
		unindexRoute(t.byLink, h, e.Route)
	}
	return t.lru.Delete(h)
}

// Kind returns the table's lifecycle discipline.
func (t *Reference) Kind() Kind { return t.cfg.Kind }

// TTL returns the soft-state lifetime (zero for other kinds).
func (t *Reference) TTL() sim.Time {
	if t.cfg.Kind != Soft {
		return 0
	}
	return t.cfg.TTL
}

// Install adds (or overwrites) the entry for handle h.
func (t *Reference) Install(now sim.Time, h uint64, route ad.Path, idx int, req policy.Request, ttl sim.Time) {
	t.stats.Installs++
	if old, ok := t.lru.Peek(h); ok {
		unindexRoute(t.byLink, h, old.Route)
	}
	t.lru.Put(h, &Entry{
		Route: route, Idx: idx, Req: req,
		Installed: now, Deadline: deadlineFor(t.cfg, now, ttl),
	})
	indexRoute(t.byLink, h, route)
	if n := t.lru.Len(); n > t.stats.Peak {
		t.stats.Peak = n
	}
}

// Lookup returns the live entry for h, counting a hit or miss and
// touching recency; expired entries drop and count as miss + expiration.
func (t *Reference) Lookup(now sim.Time, h uint64) (Entry, bool) {
	e, ok := t.lru.Get(h)
	if ok && e.expired(now) {
		t.drop(h)
		t.stats.Expirations++
		ok = false
	}
	if !ok {
		t.stats.Misses++
		return Entry{}, false
	}
	t.stats.Hits++
	return *e, true
}

// Peek returns the live entry for h without touching recency or the
// hit/miss counters; expired entries still drop.
func (t *Reference) Peek(now sim.Time, h uint64) (Entry, bool) {
	e, ok := t.lru.Peek(h)
	if !ok {
		return Entry{}, false
	}
	if e.expired(now) {
		t.drop(h)
		t.stats.Expirations++
		return Entry{}, false
	}
	return *e, true
}

// Refresh extends h's soft-state deadline and touches recency.
func (t *Reference) Refresh(now sim.Time, h uint64, ttl sim.Time) bool {
	e, ok := t.lru.Get(h)
	if !ok {
		return false
	}
	if e.expired(now) {
		t.drop(h)
		t.stats.Expirations++
		return false
	}
	e.Deadline = deadlineFor(t.cfg, now, ttl)
	t.stats.Refreshes++
	return true
}

// Remove deletes h, reporting whether it was present.
func (t *Reference) Remove(h uint64) bool { return t.drop(h) }

// ExpireDue scans the whole table, drops every entry whose deadline has
// passed, and returns their handles in ascending order.
func (t *Reference) ExpireDue(now sim.Time) []uint64 {
	var due []uint64
	for _, h := range t.Handles() {
		if e, ok := t.lru.Peek(h); ok && e.expired(now) {
			due = append(due, h)
		}
	}
	for _, h := range due {
		t.drop(h)
		t.stats.Expirations++
	}
	return due
}

// Handles returns the live handles in ascending order, including
// expired-but-unswept entries.
func (t *Reference) Handles() []uint64 {
	out := make([]uint64, 0, t.lru.Len())
	for _, h := range t.lru.Keys() {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HandlesCrossing returns, in ascending order, the handles whose routes
// traverse the a-b adjacency (either direction).
func (t *Reference) HandlesCrossing(a, b ad.ID) []uint64 {
	m := t.byLink[linkOf(a, b)]
	out := make([]uint64, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the current entry count.
func (t *Reference) Len() int { return t.lru.Len() }

// Stats returns the table's counters with Resident filled in.
func (t *Reference) Stats() Stats {
	s := t.stats
	s.Resident = t.lru.Len()
	return s
}
