package pgstate

import "repro/internal/sim"

// The hierarchical timer wheel replaces the reference table's full-scan
// expiry: each scheduled deadline lives in a slot of one of wheelLevels
// wheels of wheelSlots slots, level l covering 2^(8(l+1)) ticks (a tick is
// one sim.Time unit, i.e. a microsecond). Advancing from one time to
// another visits only the slots the interval covers — at most
// wheelLevels*wheelSlots of them no matter how far time jumps — and
// re-checks each resident record: due records are collected, not-yet-due
// records re-schedule themselves, which is exactly the cascade from a
// coarse level into a finer one. Expiry cost is therefore proportional to
// the records actually due (plus a bounded slot-walk), never to the table
// size.
//
// Deadlines further out than the wheel's 2^32-tick horizon (~71 simulated
// minutes) wait in a min-heap overflow; each advance drains the heap
// entries whose deadlines fall back inside the horizon, so an overflow
// record is touched once on entry and once on re-entry, not per sweep.
// Cancellation marks overflow records stale in place (the record's wSlot
// and generation are re-checked on pop) and unlinks wheel records in O(1)
// through the arena's intrusive links.
//
// The wheel's clock only moves forward: advance with an earlier time is a
// no-op. Lookup/Peek/Refresh expire lazily off their own clocks, so only
// ExpireDue's completeness depends on its callers' time being
// non-decreasing — which holds for both the simulator and the data plane's
// logical clock.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// wheelSpan is the horizon: deltas at or beyond it go to overflow.
	wheelSpan = uint64(1) << (wheelBits * wheelLevels)
)

// Sentinel wSlot values for records not resident in a wheel slot.
const (
	wheelNone     int32 = -1
	wheelOverflow int32 = -2
)

// farEntry is an overflow-heap element. idx/gen identify the arena record;
// a popped element whose record was released (gen mismatch) or rescheduled
// (wSlot no longer wheelOverflow) is stale and skipped.
type farEntry struct {
	deadline sim.Time
	idx      int32
	gen      uint32
}

// wheel is one shard's expiry schedule. It is guarded by the shard mutex.
type wheel struct {
	cur      uint64 // ticks: every deadline < cur has been collected
	slots    [wheelLevels * wheelSlots]int32
	overflow []farEntry // min-heap by deadline

	// Sweep-cost counters (reported via Table.SweepCost, not Stats):
	// slotsVisited counts slot walks, entriesVisited records popped from
	// slots or the overflow heap during advance.
	slotsVisited   uint64
	entriesVisited uint64
}

func newWheel() *wheel {
	w := &wheel{}
	for i := range w.slots {
		w.slots[i] = wheelNone
	}
	return w
}

// schedule places record idx (whose entry deadline is deadline) on the
// wheel. A deadline at or behind the cursor lands in the next tick so the
// following advance re-checks it; collection always re-verifies the real
// deadline, so clamping never expires anything early.
func (w *wheel) schedule(a *arena, idx int32, deadline sim.Time) {
	d := uint64(deadline)
	if d <= w.cur {
		d = w.cur + 1
	}
	r := a.at(idx)
	delta := d - w.cur
	if delta >= wheelSpan {
		r.wSlot = wheelOverflow
		w.overflowPush(farEntry{deadline: deadline, idx: idx, gen: r.gen})
		return
	}
	level := 0
	for delta >= uint64(1)<<(wheelBits*(level+1)) {
		level++
	}
	slot := int((d >> (wheelBits * level)) & wheelMask)
	flat := int32(level*wheelSlots + slot)
	r.wSlot = flat
	r.wPrev = -1
	r.wNext = w.slots[flat]
	if r.wNext != -1 {
		a.at(r.wNext).wPrev = idx
	}
	w.slots[flat] = idx
}

// cancel removes record idx from the schedule. Overflow records are marked
// stale in place; wheel records unlink in O(1).
func (w *wheel) cancel(a *arena, idx int32) {
	r := a.at(idx)
	switch r.wSlot {
	case wheelNone:
		return
	case wheelOverflow:
		r.wSlot = wheelNone // heap element goes stale, skipped on pop
	default:
		if r.wPrev != -1 {
			a.at(r.wPrev).wNext = r.wNext
		} else {
			w.slots[r.wSlot] = r.wNext
		}
		if r.wNext != -1 {
			a.at(r.wNext).wPrev = r.wPrev
		}
		r.wSlot, r.wNext, r.wPrev = wheelNone, -1, -1
	}
}

// advance moves the cursor to now and appends to due the indices of every
// record whose deadline has passed (deadline < now, matching
// Entry.expired's strict inequality). Collected records are unscheduled;
// visited records that are not yet due re-schedule themselves relative to
// the new cursor, cascading toward finer levels as their deadlines near.
func (w *wheel) advance(a *arena, now sim.Time, due []int32) []int32 {
	target := uint64(now)
	if target <= w.cur {
		return due
	}
	oldCur := w.cur
	w.cur = target

	// Overflow entries whose deadline fell inside the horizon re-enter the
	// wheel (or expire outright). The heap keeps the rest untouched.
	for len(w.overflow) > 0 && uint64(w.overflow[0].deadline) < target+wheelSpan {
		fe := w.overflowPop()
		r := a.at(fe.idx)
		if !r.live || r.gen != fe.gen || r.wSlot != wheelOverflow {
			continue // released, reused, or rescheduled since push
		}
		w.entriesVisited++
		r.wSlot = wheelNone
		if uint64(r.entry.Deadline) < target {
			due = append(due, fe.idx)
		} else {
			w.schedule(a, fe.idx, r.entry.Deadline)
		}
	}

	// Walk each level across the slots the interval covers, capped at one
	// full rotation: a slot holds only deadlines within its level's range
	// of the cursor, so one rotation covers every index that can be
	// resident. Slots are popped whole before processing, and a not-yet-due
	// record re-schedules at an absolute index past the target, so nothing
	// is visited twice in one advance.
	for level := 0; level < wheelLevels; level++ {
		shift := uint(wheelBits * level)
		from := oldCur >> shift
		to := target >> shift
		steps := to - from + 1
		if steps > wheelSlots {
			steps = wheelSlots
		}
		for i := uint64(0); i < steps; i++ {
			flat := int32(level*wheelSlots + int((from+i)&wheelMask))
			w.slotsVisited++
			idx := w.slots[flat]
			w.slots[flat] = wheelNone
			for idx != -1 {
				r := a.at(idx)
				next := r.wNext
				r.wSlot, r.wNext, r.wPrev = wheelNone, -1, -1
				w.entriesVisited++
				if uint64(r.entry.Deadline) < target {
					due = append(due, idx)
				} else {
					w.schedule(a, idx, r.entry.Deadline)
				}
				idx = next
			}
		}
	}
	return due
}

// overflowPush adds fe to the min-heap.
func (w *wheel) overflowPush(fe farEntry) {
	w.overflow = append(w.overflow, fe)
	i := len(w.overflow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if w.overflow[parent].deadline <= w.overflow[i].deadline {
			break
		}
		w.overflow[parent], w.overflow[i] = w.overflow[i], w.overflow[parent]
		i = parent
	}
}

// overflowPop removes and returns the heap minimum.
func (w *wheel) overflowPop() farEntry {
	top := w.overflow[0]
	last := len(w.overflow) - 1
	w.overflow[0] = w.overflow[last]
	w.overflow = w.overflow[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && w.overflow[l].deadline < w.overflow[small].deadline {
			small = l
		}
		if r < last && w.overflow[r].deadline < w.overflow[small].deadline {
			small = r
		}
		if small == i {
			return top
		}
		w.overflow[i], w.overflow[small] = w.overflow[small], w.overflow[i]
		i = small
	}
}
