// Package pgstate manages policy-gateway handle state — the per-route
// entries installed by ORWG setup packets that let data packets carry a
// short handle instead of a full source route (paper §5.4.1). How PGs hold
// this state under churn is the explicit open issue of §6 ("policy gateway
// state management"): handles installed by sources that crash, move, or
// simply stop sending would accumulate forever under the seed
// implementation's hard state.
//
// The package offers three pluggable lifecycle disciplines for one PG's
// handle table:
//
//   - Hard: entries live until an explicit teardown (the seed behaviour).
//     Zero control overhead, unbounded state: abandoned flows leak.
//   - Soft: entries carry a TTL and expire unless the source refreshes
//     them (wire.Refresh keepalives). State is bounded by the live flow
//     set at the cost of refresh traffic.
//   - Capped: the table holds at most Capacity entries, evicting the
//     least recently used. State is bounded by construction; an evicted
//     live flow drops packets (NAK-on-miss) until the source re-installs.
//
// Table is built for millions of concurrent handles: records pack into
// arena slabs with free-list reuse (no per-install allocation in steady
// state), the handle space splits across power-of-two hash shards under
// per-shard mutexes (safe for concurrent use — the serving-layer data
// plane and the simulator can drive one table from multiple goroutines),
// expiry runs off a per-shard hierarchical timer wheel whose sweep cost is
// proportional to the handles actually due rather than the table size, and
// the byLink reverse index shards alongside the entries. Stats are kept
// per shard and merged on read, so metric cardinality stays constant no
// matter how many shards a table has.
//
// Reference is the retained scan-based implementation with the same
// observable behaviour; the differential harness in differential_test.go
// drives both in lockstep to prove the sharded table equivalent.
// Experiment E24 and BenchmarkPGStateMillion measure the difference the
// structure makes at scale.
package pgstate

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ad"
	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Kind selects the handle-lifecycle discipline.
type Kind string

// The three disciplines of §6.
const (
	// Hard state lives until explicit teardown.
	Hard Kind = "hard"
	// Soft state expires TTL after its last install/refresh.
	Soft Kind = "soft"
	// Capped state holds at most Capacity entries, evicting the LRU.
	Capped Kind = "capped"
)

// Valid reports whether k names a known discipline ("" counts as Hard).
func (k Kind) Valid() bool {
	switch k {
	case "", Hard, Soft, Capped:
		return true
	}
	return false
}

// Default lifecycle parameters.
const (
	// DefaultTTL is the soft-state lifetime without a refresh.
	DefaultTTL = 30 * sim.Second
	// DefaultCapacity bounds a capped table when none is configured.
	DefaultCapacity = 64
	// DefaultShards is the hash-shard count when none is configured.
	DefaultShards = 16
)

// Config parameterizes a Table. The zero value is hard state.
type Config struct {
	// Kind is the lifecycle discipline (default Hard).
	Kind Kind
	// TTL is the soft-state entry lifetime without refresh
	// (default DefaultTTL; ignored unless Kind == Soft).
	TTL sim.Time
	// Capacity bounds a capped table's entry count
	// (default DefaultCapacity; ignored unless Kind == Capped).
	Capacity int
	// Shards is the hash-shard count, rounded up to a power of two
	// (default DefaultShards). Capped tables always use one shard: the
	// global LRU eviction order is observable semantics that independent
	// per-shard recency lists would change — and a capped table is bounded
	// at Capacity entries by construction, so it is never the
	// million-handle case sharding exists for.
	Shards int
}

// Normalize fills defaults and returns an error for unknown kinds.
func (c Config) Normalize() (Config, error) {
	if !c.Kind.Valid() {
		return c, fmt.Errorf("pgstate: unknown kind %q", c.Kind)
	}
	if c.Kind == "" {
		c.Kind = Hard
	}
	if c.Kind == Soft && c.TTL <= 0 {
		c.TTL = DefaultTTL
	}
	if c.Kind == Capped && c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	switch {
	case c.Kind == Capped:
		c.Shards = 1
	case c.Shards <= 0:
		c.Shards = DefaultShards
	default:
		n := 1
		for n < c.Shards {
			n <<= 1
		}
		c.Shards = n
	}
	return c, nil
}

// Entry is one cached policy-route handle at a PG: the full route, this
// AD's position on it, and the traffic class it was set up for.
type Entry struct {
	Route ad.Path
	// Idx is this AD's position on Route (0 = source PG).
	Idx int
	Req policy.Request
	// Installed is the setup time; Deadline is the soft-state expiry
	// (zero = never expires).
	Installed, Deadline sim.Time
}

// expired reports whether the entry's deadline has passed.
func (e *Entry) expired(now sim.Time) bool {
	return e.Deadline != 0 && e.Deadline < now
}

// Stats counts one table's lifecycle events. Resident and Peak track live
// entries; the rest are cumulative. A sharded table merges its per-shard
// counters into this one struct on read, so the exported cardinality does
// not grow with the shard count.
type Stats struct {
	// Installs counts entries accepted; Hits and Misses count data-plane
	// lookups (an expired entry found by lookup counts as a miss).
	Installs, Hits, Misses uint64
	// Evictions counts capacity drops (capped); Expirations counts TTL
	// drops (soft); Refreshes counts accepted deadline extensions.
	Evictions, Expirations, Refreshes uint64
	// Resident is the current entry count; Peak is its maximum so far.
	Resident, Peak int
}

// Add accumulates o into s, summing Resident and Peak (aggregating across
// PGs: the Peak sum upper-bounds simultaneous state; per-PG peaks stay
// exact in each table).
func (s *Stats) Add(o Stats) {
	s.Installs += o.Installs
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Expirations += o.Expirations
	s.Refreshes += o.Refreshes
	s.Resident += o.Resident
	s.Peak += o.Peak
}

// SweepCost accumulates the work ExpireDue has done: Slots counts timer-
// wheel slot walks (bounded per sweep by levels x slots x shards,
// independent of table size), Entries counts records popped from wheel
// slots or the overflow heap (proportional to due handles plus bounded
// cascade traffic). Experiment E24 compares it against the reference
// implementation's full scans. It is diagnostic state, deliberately not
// part of Stats: the two implementations must agree on Stats exactly.
type SweepCost struct {
	Slots, Entries uint64
}

// Store is the handle-table API, implemented by both the sharded Table and
// the scan-based Reference. The differential test harness drives the two
// in lockstep through this interface; observable behaviour — returned
// entries, booleans, handle sets, expiry sets, and Stats — must be
// identical.
type Store interface {
	Kind() Kind
	TTL() sim.Time
	Install(now sim.Time, h uint64, route ad.Path, idx int, req policy.Request, ttl sim.Time)
	Lookup(now sim.Time, h uint64) (Entry, bool)
	Peek(now sim.Time, h uint64) (Entry, bool)
	Refresh(now sim.Time, h uint64, ttl sim.Time) bool
	Remove(h uint64) bool
	ExpireDue(now sim.Time) []uint64
	Handles() []uint64
	HandlesCrossing(a, b ad.ID) []uint64
	Len() int
	Stats() Stats
}

var (
	_ Store = (*Table)(nil)
	_ Store = (*Reference)(nil)
)

// linkOf orders an adjacency low-high so both directions index together.
func linkOf(a, b ad.ID) [2]ad.ID {
	if a > b {
		a, b = b, a
	}
	return [2]ad.ID{a, b}
}

// indexRoute adds h's link-dependency edges to byLink.
func indexRoute(byLink map[[2]ad.ID]map[uint64]struct{}, h uint64, route ad.Path) {
	for i := 1; i < len(route); i++ {
		l := linkOf(route[i-1], route[i])
		m := byLink[l]
		if m == nil {
			m = make(map[uint64]struct{})
			byLink[l] = m
		}
		m[h] = struct{}{}
	}
}

// unindexRoute removes h's link-dependency edges from byLink.
func unindexRoute(byLink map[[2]ad.ID]map[uint64]struct{}, h uint64, route ad.Path) {
	for i := 1; i < len(route); i++ {
		l := linkOf(route[i-1], route[i])
		if m := byLink[l]; m != nil {
			delete(m, h)
			if len(m) == 0 {
				delete(byLink, l)
			}
		}
	}
}

// shard is one hash partition of the handle space: its own mutex, handle
// index (a plain map for hard/soft, the recency LRU for capped), arena,
// timer wheel (soft only), slice of the byLink reverse index, and
// counters. Everything a shard touches is its own, so shards never take
// two locks.
type shard struct {
	mu       sync.Mutex
	byHandle map[uint64]int32          // hard and soft tables
	lru      *cache.LRU[uint64, int32] // capped tables
	arena    arena
	wheel    *wheel // soft tables
	byLink   map[[2]ad.ID]map[uint64]struct{}
	st       Stats // cumulative counters only; Resident/Peak live on Table
}

// lookupIdx finds h's record index. touch promotes recency under capped.
func (s *shard) lookupIdx(h uint64, touch bool) (int32, bool) {
	if s.lru != nil {
		if touch {
			return s.lru.Get(h)
		}
		return s.lru.Peek(h)
	}
	idx, ok := s.byHandle[h]
	return idx, ok
}

// deleteIdx removes h from the handle index.
func (s *shard) deleteIdx(h uint64) {
	if s.lru != nil {
		s.lru.Delete(h)
		return
	}
	delete(s.byHandle, h)
}

// Table is one PG's handle table under a lifecycle discipline, sharded for
// concurrent use: the data plane and the control plane (ORWG) can drive it
// from different goroutines, and operations on handles in different shards
// never contend.
type Table struct {
	cfg    Config
	shards []*shard
	mask   uint64

	// resident and peak are table-global so Stats reports the same
	// whole-table high-water mark the reference tracks; they are atomics
	// because installs and drops in different shards race.
	resident atomic.Int64
	peak     atomic.Int64
}

// NewTable builds an empty table. Unknown kinds panic: the Config is
// program state, not input (validate input with Config.Normalize).
func NewTable(cfg Config) *Table {
	cfg, err := cfg.Normalize()
	if err != nil {
		panic(err)
	}
	t := &Table{
		cfg:    cfg,
		shards: make([]*shard, cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
	}
	for i := range t.shards {
		sh := &shard{byLink: make(map[[2]ad.ID]map[uint64]struct{})}
		switch cfg.Kind {
		case Capped:
			sh.lru = cache.NewLRU[uint64, int32](cfg.Capacity)
			sh.lru.OnEvict = func(h uint64, idx int32) {
				sh.st.Evictions++
				r := sh.arena.at(idx)
				unindexRoute(sh.byLink, h, r.entry.Route)
				sh.arena.release(idx)
				t.resident.Add(-1)
			}
		case Soft:
			sh.byHandle = make(map[uint64]int32)
			sh.wheel = newWheel()
		default:
			sh.byHandle = make(map[uint64]int32)
		}
		t.shards[i] = sh
	}
	return t
}

// shardOf routes handle h to its shard. Handles are sequential in
// practice (source<<32|seq), so the hash mixes before masking.
func (t *Table) shardOf(h uint64) *shard {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return t.shards[h&t.mask]
}

// Kind returns the table's lifecycle discipline.
func (t *Table) Kind() Kind { return t.cfg.Kind }

// Shards returns the table's shard count.
func (t *Table) Shards() int { return len(t.shards) }

// TTL returns the soft-state lifetime (zero for other kinds).
func (t *Table) TTL() sim.Time {
	if t.cfg.Kind != Soft {
		return 0
	}
	return t.cfg.TTL
}

// deadlineFor computes the expiry for an install/refresh at now. ttl
// overrides the configured TTL when positive (the Setup/Refresh packets
// carry the source's requested lifetime).
func deadlineFor(cfg Config, now, ttl sim.Time) sim.Time {
	if cfg.Kind != Soft {
		return 0
	}
	if ttl <= 0 {
		ttl = cfg.TTL
	}
	return now + ttl
}

// dropLocked removes the record for h at idx: unindex its links, cancel
// its timer, release its arena slot, and forget the handle. Caller holds
// sh.mu.
func (t *Table) dropLocked(sh *shard, h uint64, idx int32) {
	r := sh.arena.at(idx)
	unindexRoute(sh.byLink, h, r.entry.Route)
	if sh.wheel != nil {
		sh.wheel.cancel(&sh.arena, idx)
	}
	sh.deleteIdx(h)
	sh.arena.release(idx)
	t.resident.Add(-1)
}

// Install adds (or overwrites) the entry for handle h. ttl is the
// source-requested soft lifetime (<= 0 = the table default). Under Capped
// the LRU entry beyond capacity is evicted.
func (t *Table) Install(now sim.Time, h uint64, route ad.Path, idx int, req policy.Request, ttl sim.Time) {
	sh := t.shardOf(h)
	sh.mu.Lock()
	sh.st.Installs++
	e := Entry{
		Route: route, Idx: idx, Req: req,
		Installed: now, Deadline: deadlineFor(t.cfg, now, ttl),
	}
	if i, ok := sh.lookupIdx(h, false); ok {
		// Overwrite in place: re-index the route, re-arm the timer, touch
		// recency (the reference's Put promotes on overwrite).
		r := sh.arena.at(i)
		unindexRoute(sh.byLink, h, r.entry.Route)
		if sh.wheel != nil {
			sh.wheel.cancel(&sh.arena, i)
		}
		r.entry = e
		indexRoute(sh.byLink, h, route)
		if sh.wheel != nil && e.Deadline != 0 {
			sh.wheel.schedule(&sh.arena, i, e.Deadline)
		}
		if sh.lru != nil {
			sh.lru.Get(h)
		}
		sh.mu.Unlock()
		return
	}
	i := sh.arena.alloc()
	r := sh.arena.at(i)
	r.entry = e
	r.handle = h
	indexRoute(sh.byLink, h, route)
	if sh.wheel != nil && e.Deadline != 0 {
		sh.wheel.schedule(&sh.arena, i, e.Deadline)
	}
	t.resident.Add(1)
	if sh.lru != nil {
		sh.lru.Put(h, i) // may evict the LRU victim via OnEvict
	} else {
		sh.byHandle[h] = i
	}
	n := t.resident.Load()
	for {
		p := t.peak.Load()
		if n <= p || t.peak.CompareAndSwap(p, n) {
			break
		}
	}
	sh.mu.Unlock()
}

// Lookup is the data-plane path: it returns the live entry for h, counts a
// hit or miss, and touches recency. An expired entry is dropped and counts
// as both an expiration and a miss — exactly the packet-drop a soft-state
// PG inflicts on a flow whose source stopped refreshing.
func (t *Table) Lookup(now sim.Time, h uint64) (Entry, bool) {
	sh := t.shardOf(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if i, ok := sh.lookupIdx(h, true); ok {
		r := sh.arena.at(i)
		if !r.entry.expired(now) {
			sh.st.Hits++
			return r.entry, true
		}
		t.dropLocked(sh, h, i)
		sh.st.Expirations++
	}
	sh.st.Misses++
	return Entry{}, false
}

// Peek is the control-plane path: like Lookup it drops expired entries,
// but it touches neither recency nor the hit/miss counters (replies and
// teardowns must not keep a dying entry warm).
func (t *Table) Peek(now sim.Time, h uint64) (Entry, bool) {
	sh := t.shardOf(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	i, ok := sh.lookupIdx(h, false)
	if !ok {
		return Entry{}, false
	}
	r := sh.arena.at(i)
	if r.entry.expired(now) {
		t.dropLocked(sh, h, i)
		sh.st.Expirations++
		return Entry{}, false
	}
	return r.entry, true
}

// Refresh extends h's soft-state deadline (ttl <= 0 = table default) and
// touches recency, reporting whether the entry was still present. For hard
// and capped tables it is a recency touch only.
func (t *Table) Refresh(now sim.Time, h uint64, ttl sim.Time) bool {
	sh := t.shardOf(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	i, ok := sh.lookupIdx(h, true)
	if !ok {
		return false
	}
	r := sh.arena.at(i)
	if r.entry.expired(now) {
		t.dropLocked(sh, h, i)
		sh.st.Expirations++
		return false
	}
	r.entry.Deadline = deadlineFor(t.cfg, now, ttl)
	if sh.wheel != nil {
		// Reschedule: the old slot must no longer fire for this record.
		sh.wheel.cancel(&sh.arena, i)
		if r.entry.Deadline != 0 {
			sh.wheel.schedule(&sh.arena, i, r.entry.Deadline)
		}
	}
	sh.st.Refreshes++
	return true
}

// Remove deletes h (explicit teardown), reporting whether it was present.
func (t *Table) Remove(h uint64) bool {
	sh := t.shardOf(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	i, ok := sh.lookupIdx(h, false)
	if !ok {
		return false
	}
	t.dropLocked(sh, h, i)
	return true
}

// ExpireDue drops every entry whose deadline has passed and returns their
// handles in ascending order (deterministic for simulation replay — the
// ordering is independent of shard count and wheel layout). Each shard's
// wheel advances to now, so the cost is proportional to the due handles
// plus a bounded slot walk, never to the table size.
func (t *Table) ExpireDue(now sim.Time) []uint64 {
	var out []uint64
	var scratch []int32
	for _, sh := range t.shards {
		if sh.wheel == nil {
			continue // hard and capped entries carry no deadline
		}
		sh.mu.Lock()
		scratch = sh.wheel.advance(&sh.arena, now, scratch[:0])
		for _, i := range scratch {
			r := sh.arena.at(i)
			out = append(out, r.handle)
			t.dropLocked(sh, r.handle, i)
			sh.st.Expirations++
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Handles returns the live handles in ascending order. Expired-but-unswept
// entries are included; call ExpireDue first for a live-only view.
func (t *Table) Handles() []uint64 {
	out := make([]uint64, 0, t.Len())
	for _, sh := range t.shards {
		sh.mu.Lock()
		if sh.lru != nil {
			for _, h := range sh.lru.Keys() {
				out = append(out, h)
			}
		} else {
			for h := range sh.byHandle {
				out = append(out, h)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HandlesCrossing returns, in ascending order, the handles whose routes
// traverse the a-b adjacency (either direction), resolved through the
// sharded link index — link-failure invalidation cost scales with the
// affected flows, not the table size. Expired-but-unswept entries are
// included, matching Handles.
func (t *Table) HandlesCrossing(a, b ad.ID) []uint64 {
	l := linkOf(a, b)
	var out []uint64
	for _, sh := range t.shards {
		sh.mu.Lock()
		for h := range sh.byLink[l] {
			out = append(out, h)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the current entry count.
func (t *Table) Len() int { return int(t.resident.Load()) }

// Stats returns the table's counters: per-shard counts merged on read
// (one Stats per table regardless of shard count), with Resident and the
// whole-table Peak filled in.
func (t *Table) Stats() Stats {
	var s Stats
	for _, sh := range t.shards {
		sh.mu.Lock()
		st := sh.st
		sh.mu.Unlock()
		s.Installs += st.Installs
		s.Hits += st.Hits
		s.Misses += st.Misses
		s.Evictions += st.Evictions
		s.Expirations += st.Expirations
		s.Refreshes += st.Refreshes
	}
	s.Resident = int(t.resident.Load())
	s.Peak = int(t.peak.Load())
	return s
}

// SweepCost returns the cumulative ExpireDue work across all shards. Zero
// for hard and capped tables, which have no wheels.
func (t *Table) SweepCost() SweepCost {
	var c SweepCost
	for _, sh := range t.shards {
		if sh.wheel == nil {
			continue
		}
		sh.mu.Lock()
		c.Slots += sh.wheel.slotsVisited
		c.Entries += sh.wheel.entriesVisited
		sh.mu.Unlock()
	}
	return c
}
