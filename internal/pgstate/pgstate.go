// Package pgstate manages policy-gateway handle state — the per-route
// entries installed by ORWG setup packets that let data packets carry a
// short handle instead of a full source route (paper §5.4.1). How PGs hold
// this state under churn is the explicit open issue of §6 ("policy gateway
// state management"): handles installed by sources that crash, move, or
// simply stop sending would accumulate forever under the seed
// implementation's hard state.
//
// The package offers three pluggable lifecycle disciplines for one PG's
// handle table:
//
//   - Hard: entries live until an explicit teardown (the seed behaviour).
//     Zero control overhead, unbounded state: abandoned flows leak.
//   - Soft: entries carry a TTL and expire unless the source refreshes
//     them (wire.Refresh keepalives). State is bounded by the live flow
//     set at the cost of refresh traffic.
//   - Capped: the table holds at most Capacity entries, evicting the
//     least recently used. State is bounded by construction; an evicted
//     live flow drops packets (NAK-on-miss) until the source re-installs.
//
// Tables are single-threaded like the simulator nodes that own them;
// callers needing concurrency (the route-server data plane) lock outside.
// Experiment E21 measures the footprint / availability / control-overhead
// triangle between the three disciplines.
package pgstate

import (
	"fmt"
	"sort"

	"repro/internal/ad"
	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Kind selects the handle-lifecycle discipline.
type Kind string

// The three disciplines of §6.
const (
	// Hard state lives until explicit teardown.
	Hard Kind = "hard"
	// Soft state expires TTL after its last install/refresh.
	Soft Kind = "soft"
	// Capped state holds at most Capacity entries, evicting the LRU.
	Capped Kind = "capped"
)

// Valid reports whether k names a known discipline ("" counts as Hard).
func (k Kind) Valid() bool {
	switch k {
	case "", Hard, Soft, Capped:
		return true
	}
	return false
}

// Default lifecycle parameters.
const (
	// DefaultTTL is the soft-state lifetime without a refresh.
	DefaultTTL = 30 * sim.Second
	// DefaultCapacity bounds a capped table when none is configured.
	DefaultCapacity = 64
)

// Config parameterizes a Table. The zero value is hard state.
type Config struct {
	// Kind is the lifecycle discipline (default Hard).
	Kind Kind
	// TTL is the soft-state entry lifetime without refresh
	// (default DefaultTTL; ignored unless Kind == Soft).
	TTL sim.Time
	// Capacity bounds a capped table's entry count
	// (default DefaultCapacity; ignored unless Kind == Capped).
	Capacity int
}

// Normalize fills defaults and returns an error for unknown kinds.
func (c Config) Normalize() (Config, error) {
	if !c.Kind.Valid() {
		return c, fmt.Errorf("pgstate: unknown kind %q", c.Kind)
	}
	if c.Kind == "" {
		c.Kind = Hard
	}
	if c.Kind == Soft && c.TTL <= 0 {
		c.TTL = DefaultTTL
	}
	if c.Kind == Capped && c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	return c, nil
}

// Entry is one cached policy-route handle at a PG: the full route, this
// AD's position on it, and the traffic class it was set up for.
type Entry struct {
	Route ad.Path
	// Idx is this AD's position on Route (0 = source PG).
	Idx int
	Req policy.Request
	// Installed is the setup time; Deadline is the soft-state expiry
	// (zero = never expires).
	Installed, Deadline sim.Time
}

// expired reports whether the entry's deadline has passed.
func (e *Entry) expired(now sim.Time) bool {
	return e.Deadline != 0 && e.Deadline < now
}

// Stats counts one table's lifecycle events. Resident and Peak track live
// entries; the rest are cumulative.
type Stats struct {
	// Installs counts entries accepted; Hits and Misses count data-plane
	// lookups (an expired entry found by lookup counts as a miss).
	Installs, Hits, Misses uint64
	// Evictions counts capacity drops (capped); Expirations counts TTL
	// drops (soft); Refreshes counts accepted deadline extensions.
	Evictions, Expirations, Refreshes uint64
	// Resident is the current entry count; Peak is its maximum so far.
	Resident, Peak int
}

// Add accumulates o into s, summing Resident and Peak (aggregating across
// PGs: the Peak sum upper-bounds simultaneous state; per-PG peaks stay
// exact in each table).
func (s *Stats) Add(o Stats) {
	s.Installs += o.Installs
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Expirations += o.Expirations
	s.Refreshes += o.Refreshes
	s.Resident += o.Resident
	s.Peak += o.Peak
}

// Table is one PG's handle table under a lifecycle discipline. Not safe
// for concurrent use.
type Table struct {
	cfg Config
	lru *cache.LRU[uint64, *Entry]
	// byLink maps each adjacency (canonical low-high pair) crossed by an
	// entry's route to the handles depending on it, so link-failure
	// invalidation touches only the affected handles instead of scanning
	// the whole table. Maintained in step with lru.
	byLink map[[2]ad.ID]map[uint64]struct{}
	stats  Stats
}

// linkOf orders an adjacency low-high so both directions index together.
func linkOf(a, b ad.ID) [2]ad.ID {
	if a > b {
		a, b = b, a
	}
	return [2]ad.ID{a, b}
}

// indexRoute adds h's link-dependency edges.
func (t *Table) indexRoute(h uint64, route ad.Path) {
	for i := 1; i < len(route); i++ {
		l := linkOf(route[i-1], route[i])
		m := t.byLink[l]
		if m == nil {
			m = make(map[uint64]struct{})
			t.byLink[l] = m
		}
		m[h] = struct{}{}
	}
}

// unindexRoute removes h's link-dependency edges.
func (t *Table) unindexRoute(h uint64, route ad.Path) {
	for i := 1; i < len(route); i++ {
		l := linkOf(route[i-1], route[i])
		if m := t.byLink[l]; m != nil {
			delete(m, h)
			if len(m) == 0 {
				delete(t.byLink, l)
			}
		}
	}
}

// drop removes h and its index edges, reporting whether it was present.
func (t *Table) drop(h uint64) bool {
	if e, ok := t.lru.Peek(h); ok {
		t.unindexRoute(h, e.Route)
	}
	return t.lru.Delete(h)
}

// NewTable builds an empty table. Unknown kinds panic: the Config is
// program state, not input (validate input with Config.Normalize).
func NewTable(cfg Config) *Table {
	cfg, err := cfg.Normalize()
	if err != nil {
		panic(err)
	}
	capacity := 0 // unbounded for hard and soft state
	if cfg.Kind == Capped {
		capacity = cfg.Capacity
	}
	t := &Table{
		cfg:    cfg,
		lru:    cache.NewLRU[uint64, *Entry](capacity),
		byLink: make(map[[2]ad.ID]map[uint64]struct{}),
	}
	t.lru.OnEvict = func(h uint64, e *Entry) {
		t.stats.Evictions++
		t.unindexRoute(h, e.Route)
	}
	return t
}

// Kind returns the table's lifecycle discipline.
func (t *Table) Kind() Kind { return t.cfg.Kind }

// TTL returns the soft-state lifetime (zero for other kinds).
func (t *Table) TTL() sim.Time {
	if t.cfg.Kind != Soft {
		return 0
	}
	return t.cfg.TTL
}

// deadline computes the expiry for an install/refresh at now. ttl
// overrides the configured TTL when positive (the Setup/Refresh packets
// carry the source's requested lifetime).
func (t *Table) deadline(now, ttl sim.Time) sim.Time {
	if t.cfg.Kind != Soft {
		return 0
	}
	if ttl <= 0 {
		ttl = t.cfg.TTL
	}
	return now + ttl
}

// Install adds (or overwrites) the entry for handle h. ttl is the
// source-requested soft lifetime (<= 0 = the table default). Under Capped
// the LRU entry beyond capacity is evicted.
func (t *Table) Install(now sim.Time, h uint64, route ad.Path, idx int, req policy.Request, ttl sim.Time) {
	t.stats.Installs++
	if old, ok := t.lru.Peek(h); ok {
		t.unindexRoute(h, old.Route)
	}
	t.lru.Put(h, &Entry{
		Route: route, Idx: idx, Req: req,
		Installed: now, Deadline: t.deadline(now, ttl),
	})
	t.indexRoute(h, route)
	if n := t.lru.Len(); n > t.stats.Peak {
		t.stats.Peak = n
	}
}

// Lookup is the data-plane path: it returns the live entry for h, counts a
// hit or miss, and touches recency. An expired entry is dropped and counts
// as both an expiration and a miss — exactly the packet-drop a soft-state
// PG inflicts on a flow whose source stopped refreshing.
func (t *Table) Lookup(now sim.Time, h uint64) (*Entry, bool) {
	e, ok := t.lru.Get(h)
	if ok && e.expired(now) {
		t.drop(h)
		t.stats.Expirations++
		ok = false
	}
	if !ok {
		t.stats.Misses++
		return nil, false
	}
	t.stats.Hits++
	return e, true
}

// Peek is the control-plane path: like Lookup it drops expired entries,
// but it touches neither recency nor the hit/miss counters (replies and
// teardowns must not keep a dying entry warm).
func (t *Table) Peek(now sim.Time, h uint64) (*Entry, bool) {
	e, ok := t.lru.Peek(h)
	if !ok {
		return nil, false
	}
	if e.expired(now) {
		t.drop(h)
		t.stats.Expirations++
		return nil, false
	}
	return e, true
}

// Refresh extends h's soft-state deadline (ttl <= 0 = table default) and
// touches recency, reporting whether the entry was still present. For hard
// and capped tables it is a recency touch only.
func (t *Table) Refresh(now sim.Time, h uint64, ttl sim.Time) bool {
	e, ok := t.lru.Get(h)
	if !ok {
		return false
	}
	if e.expired(now) {
		t.drop(h)
		t.stats.Expirations++
		return false
	}
	e.Deadline = t.deadline(now, ttl)
	t.stats.Refreshes++
	return true
}

// Remove deletes h (explicit teardown), reporting whether it was present.
func (t *Table) Remove(h uint64) bool { return t.drop(h) }

// ExpireDue drops every entry whose deadline has passed and returns their
// handles in ascending order (deterministic for simulation replay).
func (t *Table) ExpireDue(now sim.Time) []uint64 {
	var due []uint64
	for _, h := range t.Handles() {
		if e, ok := t.lru.Peek(h); ok && e.expired(now) {
			due = append(due, h)
		}
	}
	for _, h := range due {
		t.drop(h)
		t.stats.Expirations++
	}
	return due
}

// Handles returns the live handles in ascending order. Expired-but-unswept
// entries are included; call ExpireDue first for a live-only view.
func (t *Table) Handles() []uint64 {
	out := make([]uint64, 0, t.lru.Len())
	for _, h := range t.lru.Keys() {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HandlesCrossing returns, in ascending order, the handles whose routes
// traverse the a-b adjacency (either direction), resolved through the link
// index — link-failure invalidation cost scales with the affected flows,
// not the table size. Expired-but-unswept entries are included, matching
// Handles.
func (t *Table) HandlesCrossing(a, b ad.ID) []uint64 {
	m := t.byLink[linkOf(a, b)]
	out := make([]uint64, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the current entry count.
func (t *Table) Len() int { return t.lru.Len() }

// Stats returns the table's counters with Resident filled in.
func (t *Table) Stats() Stats {
	s := t.stats
	s.Resident = t.lru.Len()
	return s
}
