package pgstate

// Interplay between the link index and the arena's slot reuse: the
// documented Handles/HandlesCrossing semantics (expired-but-unswept
// entries stay visible until something drops them) must survive the
// sharded rewrite, and a reused arena slot must never resurrect the
// previous tenant's link-index edges.

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/sim"
)

// TestExpiredUnsweptStaysVisible: an entry past its deadline that no op
// has yet dropped is still listed by Handles and HandlesCrossing — the
// documented contract ("call ExpireDue first for a live-only view") —
// and disappears from both the moment any path drops it.
func TestExpiredUnsweptStaysVisible(t *testing.T) {
	for _, shards := range []int{1, 8} {
		tab := NewTable(Config{Kind: Soft, TTL: 1 * sim.Second, Shards: shards})
		tab.Install(0, 7, ad.Path{1, 2, 3}, 1, testReq, 0)
		past := 10 * sim.Second // well past the deadline, nothing swept yet
		if got := tab.Handles(); !handlesEqual(got, []uint64{7}) {
			t.Fatalf("shards=%d: expired-unswept entry missing from Handles: %v", shards, got)
		}
		if got := tab.HandlesCrossing(2, 3); !handlesEqual(got, []uint64{7}) {
			t.Fatalf("shards=%d: expired-unswept entry missing from HandlesCrossing: %v", shards, got)
		}
		// A lookup at the late clock drops it; both views go empty together.
		if _, ok := tab.Lookup(past, 7); ok {
			t.Fatalf("shards=%d: expired entry returned live", shards)
		}
		if got := tab.Handles(); len(got) != 0 {
			t.Fatalf("shards=%d: dropped entry still in Handles: %v", shards, got)
		}
		if got := tab.HandlesCrossing(2, 3); len(got) != 0 {
			t.Fatalf("shards=%d: dropped entry still in HandlesCrossing: %v", shards, got)
		}
	}
}

// TestSlabReuseNoStaleEdges: Remove then Install reuses the released arena
// slot (single shard forces it); the new tenant must carry only its own
// route's edges — none of the old tenant's.
func TestSlabReuseNoStaleEdges(t *testing.T) {
	tab := NewTable(Config{Kind: Hard, Shards: 1})
	tab.Install(0, 1, ad.Path{1, 2, 3}, 1, testReq, 0)
	tab.Remove(1)
	// The freed slot is the only one on the free list; this install reuses it.
	tab.Install(0, 2, ad.Path{5, 6}, 0, testReq, 0)
	if got := tab.HandlesCrossing(1, 2); len(got) != 0 {
		t.Fatalf("old tenant's edge 1-2 resurrected: %v", got)
	}
	if got := tab.HandlesCrossing(2, 3); len(got) != 0 {
		t.Fatalf("old tenant's edge 2-3 resurrected: %v", got)
	}
	if got := tab.HandlesCrossing(5, 6); !handlesEqual(got, []uint64{2}) {
		t.Fatalf("new tenant's edge missing: %v", got)
	}
}

// TestOverwriteReplacesEdges: re-installing a handle with a different
// route swaps its link-index edges atomically — the old route's edges go,
// the new route's arrive, other handles are untouched.
func TestOverwriteReplacesEdges(t *testing.T) {
	tab := NewTable(Config{Kind: Soft, Shards: 4})
	tab.Install(0, 1, ad.Path{1, 2, 3}, 1, testReq, 0)
	tab.Install(0, 9, ad.Path{2, 3}, 0, testReq, 0) // shares the 2-3 edge
	tab.Install(1, 1, ad.Path{1, 4, 3}, 1, testReq, 0)
	if got := tab.HandlesCrossing(1, 2); len(got) != 0 {
		t.Fatalf("overwritten route's 1-2 edge lingers: %v", got)
	}
	if got := tab.HandlesCrossing(2, 3); !handlesEqual(got, []uint64{9}) {
		t.Fatalf("2-3 edge wrong after overwrite: %v, want [9]", got)
	}
	if got := tab.HandlesCrossing(1, 4); !handlesEqual(got, []uint64{1}) {
		t.Fatalf("new route's 1-4 edge missing: %v", got)
	}
	if tab.Len() != 2 {
		t.Fatalf("overwrite changed residency: %d", tab.Len())
	}
}

// TestArenaSteadyStateNoGrowth: a sustained install/remove churn loop must
// recycle free-listed slots instead of growing new slabs.
func TestArenaSteadyStateNoGrowth(t *testing.T) {
	tab := NewTable(Config{Kind: Soft, Shards: 1})
	for h := uint64(1); h <= slabSize; h++ {
		tab.Install(0, h, testRoute, 1, testReq, 0)
	}
	sh := tab.shards[0]
	slabs := len(sh.arena.slabs)
	for round := 0; round < 50; round++ {
		for h := uint64(1); h <= slabSize; h += 2 {
			tab.Remove(h)
		}
		for h := uint64(1); h <= slabSize; h += 2 {
			tab.Install(sim.Time(round), h, testRoute, 1, testReq, 0)
		}
	}
	if got := len(sh.arena.slabs); got != slabs {
		t.Fatalf("steady-state churn grew the arena: %d -> %d slabs", slabs, got)
	}
	if tab.Len() != slabSize {
		t.Fatalf("churn lost entries: %d", tab.Len())
	}
}
