package pgstate

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/sim"
)

// The PG state operations sit on the simulated data plane's hot path:
// every forwarded packet is a Lookup, every keepalive a Refresh, and every
// setup an Install (with a possible eviction under Capped). These
// benchmarks track their cost per discipline.

func benchRoute() (ad.Path, policy.Request) {
	return ad.Path{1, 2, 3, 4, 5}, policy.Request{Src: 1, Dst: 5}
}

func BenchmarkInstallHard(b *testing.B)   { benchInstall(b, Config{Kind: Hard}) }
func BenchmarkInstallSoft(b *testing.B)   { benchInstall(b, Config{Kind: Soft}) }
func BenchmarkInstallCapped(b *testing.B) { benchInstall(b, Config{Kind: Capped, Capacity: 256}) }

// benchInstall measures steady-state install cost; under Capped every
// install past the 256th also evicts.
func benchInstall(b *testing.B, cfg Config) {
	route, req := benchRoute()
	tab := NewTable(cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Install(sim.Time(i), uint64(i), route, 2, req, 0)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	route, req := benchRoute()
	tab := NewTable(Config{Kind: Soft, TTL: sim.Time(1 << 60)})
	for h := uint64(0); h < 1024; h++ {
		tab.Install(0, h, route, 2, req, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(1, uint64(i)&1023)
	}
}

func BenchmarkRefresh(b *testing.B) {
	route, req := benchRoute()
	tab := NewTable(Config{Kind: Soft, TTL: sim.Time(1 << 60)})
	for h := uint64(0); h < 1024; h++ {
		tab.Install(0, h, route, 2, req, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Refresh(1, uint64(i)&1023, 0)
	}
}

func BenchmarkExpireDueSweep(b *testing.B) {
	route, req := benchRoute()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tab := NewTable(Config{Kind: Soft, TTL: sim.Time(1)})
		for h := uint64(0); h < 512; h++ {
			tab.Install(0, h, route, 2, req, 0)
		}
		b.StartTimer()
		tab.ExpireDue(2)
	}
}
