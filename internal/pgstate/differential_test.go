package pgstate

// Differential harness: the sharded Table and the scan-based Reference are
// driven in lockstep through randomized op sequences, and every observable
// — returned entries, booleans, expiry sets, handle orderings, Stats —
// must match at every step. The Reference is the executable specification;
// any divergence fails with the seed printed so the exact sequence
// replays with `-run TestDifferential -seed N`.

import (
	"flag"
	"math/rand"
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/sim"
)

var diffSeed = flag.Int64("seed", 0, "replay a specific differential-test seed (0 = derive per subtest)")

// diffOps is the op count per (Kind, shard-count) sequence; the issue's
// acceptance floor is 10k randomized ops per Kind.
const diffOps = 12_000

// entryEqual compares two returned entries field by field (Route is a
// slice, so Entry is not comparable with ==).
func entryEqual(a, b Entry) bool {
	if len(a.Route) != len(b.Route) {
		return false
	}
	for i := range a.Route {
		if a.Route[i] != b.Route[i] {
			return false
		}
	}
	return a.Idx == b.Idx && a.Req == b.Req &&
		a.Installed == b.Installed && a.Deadline == b.Deadline
}

// diffWorld generates the workload: a small handle space (so installs
// overwrite and removes hit), a small AD set (so routes share links and
// HandlesCrossing has real fan-out), and a monotone clock whose steps are
// mostly sub-TTL with occasional jumps past the timer wheel's 2^32-tick
// horizon (forcing overflow-heap traffic and multi-level cascades).
type diffWorld struct {
	rng *rand.Rand
	now sim.Time
}

func (w *diffWorld) handle() uint64 { return uint64(w.rng.Intn(400)) + 1 }

func (w *diffWorld) route() ad.Path {
	n := 2 + w.rng.Intn(5)
	p := make(ad.Path, 0, n)
	last := ad.ID(0)
	for len(p) < n {
		id := ad.ID(w.rng.Intn(8) + 1)
		if id == last {
			continue
		}
		p = append(p, id)
		last = id
	}
	return p
}

// ttl picks a source-requested lifetime: usually 0 (table default) or a
// short explicit one, occasionally far beyond the wheel horizon.
func (w *diffWorld) ttl() sim.Time {
	switch w.rng.Intn(10) {
	case 0:
		return 0
	case 1:
		return 5000 * sim.Second // past the 2^32-microsecond wheel horizon
	default:
		return sim.Time(1+w.rng.Intn(40)) * sim.Second
	}
}

// advance moves the clock forward: usually a sub-second step, sometimes a
// multi-TTL jump, rarely a jump past the wheel horizon.
func (w *diffWorld) advance() {
	switch w.rng.Intn(20) {
	case 0:
		w.now += sim.Time(w.rng.Intn(120)) * sim.Second
	case 1:
		w.now += 6000 * sim.Second
	default:
		w.now += sim.Time(w.rng.Intn(500)) * sim.Millisecond
	}
}

// runDifferential drives ref and tab in lockstep for ops operations,
// failing on the first divergence.
func runDifferential(t *testing.T, seed int64, ref, tab Store, ops int) {
	t.Helper()
	w := &diffWorld{rng: rand.New(rand.NewSource(seed)), now: 1}
	for step := 0; step < ops; step++ {
		w.advance()
		switch op := w.rng.Intn(100); {
		case op < 30: // Install
			h := w.handle()
			route := w.route()
			idx := w.rng.Intn(len(route))
			req := policy.Request{Src: route[0], Dst: route[len(route)-1], Hour: uint8(w.rng.Intn(24))}
			ttl := w.ttl()
			ref.Install(w.now, h, route, idx, req, ttl)
			tab.Install(w.now, h, route, idx, req, ttl)
		case op < 50: // Lookup
			h := w.handle()
			re, rok := ref.Lookup(w.now, h)
			te, tok := tab.Lookup(w.now, h)
			if rok != tok || (rok && !entryEqual(re, te)) {
				t.Fatalf("seed %d step %d: Lookup(%d) diverged: ref=(%+v,%v) tab=(%+v,%v)",
					seed, step, h, re, rok, te, tok)
			}
		case op < 60: // Peek
			h := w.handle()
			re, rok := ref.Peek(w.now, h)
			te, tok := tab.Peek(w.now, h)
			if rok != tok || (rok && !entryEqual(re, te)) {
				t.Fatalf("seed %d step %d: Peek(%d) diverged: ref=(%+v,%v) tab=(%+v,%v)",
					seed, step, h, re, rok, te, tok)
			}
		case op < 75: // Refresh
			h := w.handle()
			ttl := w.ttl()
			if rok, tok := ref.Refresh(w.now, h, ttl), tab.Refresh(w.now, h, ttl); rok != tok {
				t.Fatalf("seed %d step %d: Refresh(%d) diverged: ref=%v tab=%v", seed, step, h, rok, tok)
			}
		case op < 85: // Remove
			h := w.handle()
			if rok, tok := ref.Remove(h), tab.Remove(h); rok != tok {
				t.Fatalf("seed %d step %d: Remove(%d) diverged: ref=%v tab=%v", seed, step, h, rok, tok)
			}
		case op < 90: // ExpireDue
			rd, td := ref.ExpireDue(w.now), tab.ExpireDue(w.now)
			if !handlesEqual(rd, td) {
				t.Fatalf("seed %d step %d: ExpireDue diverged:\nref=%v\ntab=%v", seed, step, rd, td)
			}
		case op < 96: // HandlesCrossing
			a := ad.ID(w.rng.Intn(8) + 1)
			b := ad.ID(w.rng.Intn(8) + 1)
			rh, th := ref.HandlesCrossing(a, b), tab.HandlesCrossing(a, b)
			if !handlesEqual(rh, th) {
				t.Fatalf("seed %d step %d: HandlesCrossing(%d,%d) diverged:\nref=%v\ntab=%v",
					seed, step, a, b, rh, th)
			}
		default: // Handles
			rh, th := ref.Handles(), tab.Handles()
			if !handlesEqual(rh, th) {
				t.Fatalf("seed %d step %d: Handles diverged:\nref=%v\ntab=%v", seed, step, rh, th)
			}
		}
		if rl, tl := ref.Len(), tab.Len(); rl != tl {
			t.Fatalf("seed %d step %d: Len diverged: ref=%d tab=%d", seed, step, rl, tl)
		}
		if rs, ts := ref.Stats(), tab.Stats(); rs != ts {
			t.Fatalf("seed %d step %d: Stats diverged:\nref=%+v\ntab=%+v", seed, step, rs, ts)
		}
	}
	// Final full-state audit: every remaining handle agrees entry-for-entry.
	rh, th := ref.Handles(), tab.Handles()
	if !handlesEqual(rh, th) {
		t.Fatalf("seed %d final: Handles diverged:\nref=%v\ntab=%v", seed, rh, th)
	}
	for _, h := range rh {
		re, rok := ref.Peek(w.now, h)
		te, tok := tab.Peek(w.now, h)
		if rok != tok || (rok && !entryEqual(re, te)) {
			t.Fatalf("seed %d final: entry %d diverged: ref=(%+v,%v) tab=(%+v,%v)", seed, h, re, rok, te, tok)
		}
	}
}

// TestDifferential is the headline equivalence proof: for every Kind and a
// spread of shard counts, the sharded Table tracks the Reference through
// >= 10k randomized ops with zero divergence. Capped always normalizes to
// one shard (global LRU order is observable), so it runs once.
func TestDifferential(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"hard/shards=1", Config{Kind: Hard, Shards: 1}},
		{"hard/shards=8", Config{Kind: Hard, Shards: 8}},
		{"soft/shards=1", Config{Kind: Soft, TTL: 10 * sim.Second, Shards: 1}},
		{"soft/shards=4", Config{Kind: Soft, TTL: 10 * sim.Second, Shards: 4}},
		{"soft/shards=16", Config{Kind: Soft, TTL: 10 * sim.Second, Shards: 16}},
		{"capped/cap=32", Config{Kind: Capped, Capacity: 32}},
		{"capped/cap=200", Config{Kind: Capped, Capacity: 200}},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seed := *diffSeed
			if seed == 0 {
				seed = int64(42 + i*1000)
			}
			runDifferential(t, seed, NewReference(tc.cfg), NewTable(tc.cfg), diffOps)
		})
	}
}

// TestDifferentialManySeeds widens the net: shorter sequences across many
// seeds, the soft discipline (the one with a timer wheel to get wrong)
// at a non-trivial shard count.
func TestDifferentialManySeeds(t *testing.T) {
	cfg := Config{Kind: Soft, TTL: 7 * sim.Second, Shards: 8}
	for seed := int64(1); seed <= 40; seed++ {
		runDifferential(t, seed, NewReference(cfg), NewTable(cfg), 1500)
	}
}
