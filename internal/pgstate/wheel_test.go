package pgstate

// White-box tests for the hierarchical timer wheel, pinning the behaviours
// the differential harness exercises only statistically: boundary
// deadlines, refresh rescheduling, cross-level cascades, mass expiry of a
// single slot, the overflow heap, and ExpireDue's ordering determinism.

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sim"
)

// wheelFixture allocates n records with the given deadlines and schedules
// them all, returning the wheel, arena, and indices.
func wheelFixture(deadlines []sim.Time) (*wheel, *arena, []int32) {
	w := newWheel()
	a := &arena{}
	idxs := make([]int32, len(deadlines))
	for i, d := range deadlines {
		idx := a.alloc()
		r := a.at(idx)
		r.handle = uint64(i + 1)
		r.entry.Deadline = d
		w.schedule(a, idx, d)
		idxs[i] = idx
	}
	return w, a, idxs
}

func dueHandles(a *arena, due []int32) []uint64 {
	out := make([]uint64, 0, len(due))
	for _, i := range due {
		out = append(out, a.at(i).handle)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestWheelBoundaryDeadlines: Entry.expired is strict (Deadline < now), so
// advancing the wheel exactly to a deadline must NOT collect it — even
// when the deadline sits exactly on a slot or level boundary — and
// advancing one tick past must.
func TestWheelBoundaryDeadlines(t *testing.T) {
	boundaries := []sim.Time{
		1, 255, 256, 257, // level-0/1 slot edges
		1 << 16, 1<<16 + 1, // level-1/2 edge
		1 << 24, // level-2/3 edge
		1<<24 + 513,
	}
	for _, d := range boundaries {
		w, a, _ := wheelFixture([]sim.Time{d})
		if due := w.advance(a, d, nil); len(due) != 0 {
			t.Fatalf("deadline %d fired at now==deadline (strict < required): %v", d, dueHandles(a, due))
		}
		if due := w.advance(a, d+1, nil); len(due) != 1 {
			t.Fatalf("deadline %d did not fire at now=deadline+1", d)
		}
	}
}

// TestWheelRefreshReschedules: after a cancel+schedule to a later
// deadline, the old slot must no longer fire the record; the new deadline
// must.
func TestWheelRefreshReschedules(t *testing.T) {
	w, a, idxs := wheelFixture([]sim.Time{100})
	r := a.at(idxs[0])
	w.cancel(a, idxs[0])
	r.entry.Deadline = 5000
	w.schedule(a, idxs[0], 5000)
	if due := w.advance(a, 200, nil); len(due) != 0 {
		t.Fatalf("old slot fired after reschedule: %v", dueHandles(a, due))
	}
	if due := w.advance(a, 5001, nil); len(due) != 1 {
		t.Fatal("rescheduled deadline did not fire")
	}
}

// TestWheelCascade: a deadline scheduled at a coarse level must survive
// intermediate advances (which cascade it toward level 0 by rescheduling)
// and fire exactly when due.
func TestWheelCascade(t *testing.T) {
	const d = sim.Time(1<<16 + 700) // starts at level 2
	w, a, _ := wheelFixture([]sim.Time{d})
	// Walk time up in uneven steps that straddle level boundaries.
	for _, now := range []sim.Time{300, 1 << 8, 1<<16 - 1, 1 << 16, d - 1, d} {
		if due := w.advance(a, now, nil); len(due) != 0 {
			t.Fatalf("cascaded entry fired early at now=%d", now)
		}
	}
	if due := w.advance(a, d+1, nil); len(due) != 1 {
		t.Fatal("cascaded entry never fired")
	}
}

// TestWheelMassExpiry: many records sharing one deadline all pop in a
// single advance, and the per-advance cost tracks the due count rather
// than anything table-sized.
func TestWheelMassExpiry(t *testing.T) {
	const n = 2000
	deadlines := make([]sim.Time, n)
	for i := range deadlines {
		deadlines[i] = 1000
	}
	w, a, _ := wheelFixture(deadlines)
	due := w.advance(a, 1001, nil)
	if len(due) != n {
		t.Fatalf("mass expiry collected %d of %d", len(due), n)
	}
	got := dueHandles(a, due)
	for i, h := range got {
		if h != uint64(i+1) {
			t.Fatalf("handle %d missing from mass expiry", i+1)
		}
	}
}

// TestWheelOverflow: deadlines beyond the 2^32-tick horizon wait in the
// overflow heap, re-enter the wheel when the horizon reaches them, and a
// cancelled overflow record never fires.
func TestWheelOverflow(t *testing.T) {
	far := sim.Time(wheelSpan) + 12345
	w, a, idxs := wheelFixture([]sim.Time{far, far + 99})
	if a.at(idxs[0]).wSlot != wheelOverflow {
		t.Fatal("far deadline not parked in overflow")
	}
	w.cancel(a, idxs[1]) // stale heap element must be skipped on pop
	if due := w.advance(a, far-1, nil); len(due) != 0 {
		t.Fatalf("overflow fired early: %v", dueHandles(a, due))
	}
	due := w.advance(a, far+1000, nil)
	if got := dueHandles(a, due); len(got) != 1 || got[0] != 1 {
		t.Fatalf("overflow expiry = %v, want [1] (record 2 was cancelled)", got)
	}
}

// TestWheelSlotReuseGeneration: releasing a record parked in overflow and
// reusing its arena slot must not let the stale heap element fire the new
// tenant.
func TestWheelSlotReuseGeneration(t *testing.T) {
	far := sim.Time(wheelSpan) + 500
	w, a, idxs := wheelFixture([]sim.Time{far})
	w.cancel(a, idxs[0])
	a.release(idxs[0])
	idx2 := a.alloc()
	if idx2 != idxs[0] {
		t.Fatalf("free list did not reuse slot: got %d want %d", idx2, idxs[0])
	}
	r := a.at(idx2)
	r.handle = 7
	r.entry.Deadline = far + sim.Time(wheelSpan) // itself in overflow again
	w.schedule(a, idx2, r.entry.Deadline)
	// Advancing past the stale element's deadline must not collect the new
	// tenant (generation mismatch marks the old heap element dead).
	if due := w.advance(a, far+1, nil); len(due) != 0 {
		t.Fatalf("stale overflow element fired reused slot: %v", dueHandles(a, due))
	}
	if due := w.advance(a, r.entry.Deadline+1, nil); len(due) != 1 || a.at(due[0]).handle != 7 {
		t.Fatal("reused record did not fire at its own deadline")
	}
}

// TestExpireDueOrderingDeterminism: Table.ExpireDue returns ascending
// handles regardless of install order, shard count, or wheel layout — the
// property simulation replay depends on.
func TestExpireDueOrderingDeterminism(t *testing.T) {
	build := func(shards int, perm []uint64) *Table {
		tab := NewTable(Config{Kind: Soft, TTL: 10 * sim.Second, Shards: shards})
		for _, h := range perm {
			// Two deadline cohorts so each sweep collects a strict subset.
			ttl := sim.Time(5+int(h%2)*20) * sim.Second
			tab.Install(0, h, testRoute, 1, testReq, ttl)
		}
		return tab
	}
	handles := make([]uint64, 300)
	for i := range handles {
		handles[i] = uint64(i + 1)
	}
	rng := rand.New(rand.NewSource(99))
	var want []uint64
	for trial := 0; trial < 4; trial++ {
		perm := append([]uint64(nil), handles...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for _, shards := range []int{1, 4, 16} {
			tab := build(shards, perm)
			due := tab.ExpireDue(6 * sim.Second)
			if !sort.SliceIsSorted(due, func(i, j int) bool { return due[i] < due[j] }) {
				t.Fatalf("shards=%d: ExpireDue not ascending: %v", shards, due)
			}
			if want == nil {
				want = due
			} else if !handlesEqual(due, want) {
				t.Fatalf("shards=%d perm %d: ExpireDue differs from first layout", shards, trial)
			}
			// The second cohort fires later, identically across layouts.
			rest := tab.ExpireDue(30 * sim.Second)
			if len(due)+len(rest) != len(handles) {
				t.Fatalf("shards=%d: sweeps collected %d+%d of %d", shards, len(due), len(rest), len(handles))
			}
		}
	}
}

// TestWheelSweepCostScalesWithDue: the whole point of the wheel — an
// ExpireDue over a huge table with few due entries must do work bounded by
// the due count plus the fixed slot walk, not the table size.
func TestWheelSweepCostScalesWithDue(t *testing.T) {
	const total = 100_000
	tab := NewTable(Config{Kind: Soft, Shards: 8})
	for h := uint64(1); h <= total; h++ {
		ttl := 1000 * sim.Second
		if h <= 50 {
			ttl = 1 * sim.Second // the only due cohort
		}
		tab.Install(0, h, testRoute, 1, testReq, ttl)
	}
	before := tab.SweepCost()
	due := tab.ExpireDue(2 * sim.Second)
	cost := tab.SweepCost()
	if len(due) != 50 {
		t.Fatalf("due = %d, want 50", len(due))
	}
	visited := cost.Entries - before.Entries
	if visited > 5000 { // 50 due + bounded cascade traffic, nowhere near 100k
		t.Fatalf("sweep visited %d entries for 50 due in a %d-entry table", visited, total)
	}
	slots := cost.Slots - before.Slots
	if max := uint64(8 * wheelLevels * wheelSlots); slots > max {
		t.Fatalf("sweep walked %d slots, cap is %d", slots, max)
	}
}
