package pgstate

import (
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
)

func handlesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHandlesCrossingIndexesBothDirections(t *testing.T) {
	tab := NewTable(Config{Kind: Hard})
	tab.Install(0, 2, ad.Path{1, 2, 3}, 0, policy.Request{Src: 1, Dst: 3}, 0)
	tab.Install(0, 1, ad.Path{1, 2, 4}, 0, policy.Request{Src: 1, Dst: 4}, 0)
	tab.Install(0, 3, ad.Path{5, 6}, 0, policy.Request{Src: 5, Dst: 6}, 0)

	// Both handles cross 1-2, queried in either direction, ascending.
	if got := tab.HandlesCrossing(1, 2); !handlesEqual(got, []uint64{1, 2}) {
		t.Fatalf("HandlesCrossing(1,2) = %v", got)
	}
	if got := tab.HandlesCrossing(2, 1); !handlesEqual(got, []uint64{1, 2}) {
		t.Fatalf("HandlesCrossing(2,1) = %v", got)
	}
	if got := tab.HandlesCrossing(2, 3); !handlesEqual(got, []uint64{2}) {
		t.Fatalf("HandlesCrossing(2,3) = %v", got)
	}
	if got := tab.HandlesCrossing(7, 8); len(got) != 0 {
		t.Fatalf("HandlesCrossing(7,8) = %v, want none", got)
	}
}

func TestHandlesCrossingTracksRemovalAndOverwrite(t *testing.T) {
	tab := NewTable(Config{Kind: Hard})
	tab.Install(0, 1, ad.Path{1, 2, 3}, 0, policy.Request{Src: 1, Dst: 3}, 0)

	// Overwriting a handle with a new route re-indexes it.
	tab.Install(0, 1, ad.Path{1, 4, 3}, 0, policy.Request{Src: 1, Dst: 3}, 0)
	if got := tab.HandlesCrossing(1, 2); len(got) != 0 {
		t.Fatalf("stale index edge after overwrite: %v", got)
	}
	if got := tab.HandlesCrossing(1, 4); !handlesEqual(got, []uint64{1}) {
		t.Fatalf("HandlesCrossing(1,4) = %v", got)
	}

	if !tab.Remove(1) {
		t.Fatal("Remove missed")
	}
	if got := tab.HandlesCrossing(1, 4); len(got) != 0 {
		t.Fatalf("stale index edge after remove: %v", got)
	}
}

func TestHandlesCrossingTracksExpiryAndEviction(t *testing.T) {
	// Soft: an expired entry swept by ExpireDue leaves the index.
	soft := NewTable(Config{Kind: Soft, TTL: 10})
	soft.Install(0, 1, ad.Path{1, 2}, 0, policy.Request{Src: 1, Dst: 2}, 0)
	if got := soft.HandlesCrossing(1, 2); !handlesEqual(got, []uint64{1}) {
		t.Fatalf("pre-expiry index = %v", got)
	}
	soft.ExpireDue(100)
	if got := soft.HandlesCrossing(1, 2); len(got) != 0 {
		t.Fatalf("expired entry still indexed: %v", got)
	}

	// Capped: a capacity eviction unindexes through OnEvict.
	capped := NewTable(Config{Kind: Capped, Capacity: 1})
	capped.Install(0, 1, ad.Path{1, 2}, 0, policy.Request{Src: 1, Dst: 2}, 0)
	capped.Install(0, 2, ad.Path{3, 4}, 0, policy.Request{Src: 3, Dst: 4}, 0)
	if got := capped.HandlesCrossing(1, 2); len(got) != 0 {
		t.Fatalf("evicted entry still indexed: %v", got)
	}
	if got := capped.HandlesCrossing(3, 4); !handlesEqual(got, []uint64{2}) {
		t.Fatalf("survivor not indexed: %v", got)
	}
}
