package wire

import (
	"repro/internal/ad"
	"repro/internal/policy"
)

// ADSet encoding: 1 flag byte (1 = universal), then for explicit sets a
// 16-bit count followed by 32-bit AD IDs in ascending order.

func appendADSet(dst []byte, s policy.ADSet) []byte {
	if s.IsUniversal() {
		return append(dst, 1)
	}
	dst = append(dst, 0)
	members := s.Members()
	dst = appendU16(dst, uint16(len(members)))
	for _, id := range members {
		dst = appendU32(dst, uint32(id))
	}
	return dst
}

func readADSet(r *reader) policy.ADSet {
	if r.u8() == 1 {
		return policy.Universal()
	}
	n := int(r.u16())
	ids := make([]ad.ID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, ad.ID(r.u32()))
	}
	return policy.SetOf(ids...)
}

// adSetWireLen returns the encoded size of s, used by header-overhead
// accounting in experiments.
func adSetWireLen(s policy.ADSet) int {
	if s.IsUniversal() {
		return 1
	}
	return 1 + 2 + 4*s.Size()
}

// Policy Term encoding: advertiser, serial, the four AD sets, QOS and UCI
// class masks, hour window, and cost.

func appendTerm(dst []byte, t policy.Term) []byte {
	dst = appendU32(dst, uint32(t.Advertiser))
	dst = appendU32(dst, t.Serial)
	dst = appendADSet(dst, t.Sources)
	dst = appendADSet(dst, t.Dests)
	dst = appendADSet(dst, t.PrevADs)
	dst = appendADSet(dst, t.NextADs)
	dst = appendU32(dst, uint32(t.QOS))
	dst = appendU32(dst, uint32(t.UCI))
	dst = append(dst, t.Hours.Start, t.Hours.End)
	dst = appendU32(dst, t.Cost)
	return dst
}

func readTerm(r *reader) policy.Term {
	var t policy.Term
	t.Advertiser = ad.ID(r.u32())
	t.Serial = r.u32()
	t.Sources = readADSet(r)
	t.Dests = readADSet(r)
	t.PrevADs = readADSet(r)
	t.NextADs = readADSet(r)
	t.QOS = policy.ClassSet(r.u32())
	t.UCI = policy.ClassSet(r.u32())
	t.Hours = policy.HourWindow{Start: r.u8(), End: r.u8()}
	t.Cost = r.u32()
	return t
}

// TermWireLen returns the encoded size of a term in bytes. Experiment E8
// uses it to report LSDB growth under fine-grained policy.
func TermWireLen(t policy.Term) int {
	return 4 + 4 + adSetWireLen(t.Sources) + adSetWireLen(t.Dests) +
		adSetWireLen(t.PrevADs) + adSetWireLen(t.NextADs) + 4 + 4 + 2 + 4
}

// Request encoding: src, dst, qos, uci, hour.

func appendRequest(dst []byte, req policy.Request) []byte {
	dst = appendU32(dst, uint32(req.Src))
	dst = appendU32(dst, uint32(req.Dst))
	return append(dst, uint8(req.QOS), uint8(req.UCI), req.Hour)
}

func readRequest(r *reader) policy.Request {
	var req policy.Request
	req.Src = ad.ID(r.u32())
	req.Dst = ad.ID(r.u32())
	req.QOS = policy.QOS(r.u8())
	req.UCI = policy.UCI(r.u8())
	req.Hour = r.u8()
	return req
}

// Path encoding: 16-bit hop count followed by 32-bit AD IDs.

func appendPath(dst []byte, p ad.Path) []byte {
	dst = appendU16(dst, uint16(len(p)))
	for _, id := range p {
		dst = appendU32(dst, uint32(id))
	}
	return dst
}

func readPath(r *reader) ad.Path {
	n := int(r.u16())
	p := make(ad.Path, 0, n)
	for i := 0; i < n; i++ {
		p = append(p, ad.ID(r.u32()))
	}
	return p
}
