package wire

import (
	"repro/internal/ad"
	"repro/internal/policy"
)

// MetricInfinity is the conventional unreachable metric carried in
// distance-vector and EGP updates. Protocols may use a smaller local
// infinity (e.g. plain DV's 16) but the field accommodates this sentinel.
const MetricInfinity uint32 = 1<<32 - 1

// DVRoute flag bits.
const (
	// FlagTraversedDown marks a route that has crossed a "down" link in
	// the ECMA partial ordering; such routes may not be re-advertised up
	// (paper §5.1.1).
	FlagTraversedDown uint8 = 1 << iota
	// FlagWithdraw marks an explicit route withdrawal.
	FlagWithdraw
)

// DVRoute is one entry of a distance-vector update: destination, composite
// metric, QOS index, and flags.
type DVRoute struct {
	Dest   ad.ID
	Metric uint32
	QOS    policy.QOS
	Flags  uint8
}

// DVUpdate is a distance-vector routing update (plain DV and ECMA).
type DVUpdate struct {
	Routes []DVRoute
}

// Type implements Message.
func (*DVUpdate) Type() MsgType { return TypeDVUpdate }

func (m *DVUpdate) appendBody(dst []byte) []byte {
	dst = appendU16(dst, uint16(len(m.Routes)))
	for _, rt := range m.Routes {
		dst = appendU32(dst, uint32(rt.Dest))
		dst = appendU32(dst, rt.Metric)
		dst = append(dst, uint8(rt.QOS), rt.Flags)
	}
	return dst
}

func (m *DVUpdate) decodeBody(r *reader) {
	n := int(r.u16())
	if n == 0 {
		return
	}
	m.Routes = make([]DVRoute, 0, n)
	for i := 0; i < n; i++ {
		m.Routes = append(m.Routes, DVRoute{
			Dest:   ad.ID(r.u32()),
			Metric: r.u32(),
			QOS:    policy.QOS(r.u8()),
			Flags:  r.u8(),
		})
	}
}

// PVRoute is one entry of an IDRP/BGP-2 path-vector update. Beyond the
// distance-vector fields it carries the full AD path (for loop avoidance)
// and policy attributes: the set of source ADs permitted to use the route
// and the user classes admitted (paper §5.2.1).
type PVRoute struct {
	Dest      ad.ID
	Metric    uint32
	QOS       policy.QOS
	Withdrawn bool
	Path      ad.Path
	// AllowedSources is the distribution/usage constraint attribute.
	AllowedSources policy.ADSet
	// UCI is the set of user classes the route admits.
	UCI policy.ClassSet
}

// PathVector is an IDRP/BGP-2 routing update.
type PathVector struct {
	Routes []PVRoute
}

// Type implements Message.
func (*PathVector) Type() MsgType { return TypePathVector }

func (m *PathVector) appendBody(dst []byte) []byte {
	dst = appendU16(dst, uint16(len(m.Routes)))
	for _, rt := range m.Routes {
		dst = appendU32(dst, uint32(rt.Dest))
		dst = appendU32(dst, rt.Metric)
		flags := uint8(0)
		if rt.Withdrawn {
			flags |= FlagWithdraw
		}
		dst = append(dst, uint8(rt.QOS), flags)
		dst = appendPath(dst, rt.Path)
		dst = appendADSet(dst, rt.AllowedSources)
		dst = appendU32(dst, uint32(rt.UCI))
	}
	return dst
}

func (m *PathVector) decodeBody(r *reader) {
	n := int(r.u16())
	if n == 0 {
		return
	}
	m.Routes = make([]PVRoute, 0, n)
	for i := 0; i < n; i++ {
		var rt PVRoute
		rt.Dest = ad.ID(r.u32())
		rt.Metric = r.u32()
		rt.QOS = policy.QOS(r.u8())
		rt.Withdrawn = r.u8()&FlagWithdraw != 0
		rt.Path = readPath(r)
		rt.AllowedSources = readADSet(r)
		rt.UCI = policy.ClassSet(r.u32())
		m.Routes = append(m.Routes, rt)
	}
}

// LSALink describes one adjacency in a link-state advertisement.
type LSALink struct {
	Neighbor ad.ID
	Cost     uint32
	Up       bool
}

// LSA is a policy link-state advertisement: the origin AD's adjacencies plus
// the policy terms it advertises. Flooded by the LS hop-by-hop and ORWG
// architectures (paper §5.3, §5.4).
type LSA struct {
	Origin ad.ID
	Seq    uint32
	Links  []LSALink
	Terms  []policy.Term
}

// Type implements Message.
func (*LSA) Type() MsgType { return TypeLSA }

func (m *LSA) appendBody(dst []byte) []byte {
	dst = appendU32(dst, uint32(m.Origin))
	dst = appendU32(dst, m.Seq)
	dst = appendU16(dst, uint16(len(m.Links)))
	for _, l := range m.Links {
		dst = appendU32(dst, uint32(l.Neighbor))
		dst = appendU32(dst, l.Cost)
		up := uint8(0)
		if l.Up {
			up = 1
		}
		dst = append(dst, up)
	}
	dst = appendU16(dst, uint16(len(m.Terms)))
	for _, t := range m.Terms {
		dst = appendTerm(dst, t)
	}
	return dst
}

func (m *LSA) decodeBody(r *reader) {
	m.Origin = ad.ID(r.u32())
	m.Seq = r.u32()
	nl := int(r.u16())
	if nl > 0 {
		m.Links = make([]LSALink, 0, nl)
	}
	for i := 0; i < nl; i++ {
		m.Links = append(m.Links, LSALink{
			Neighbor: ad.ID(r.u32()),
			Cost:     r.u32(),
			Up:       r.u8() == 1,
		})
	}
	nt := int(r.u16())
	if nt > 0 {
		m.Terms = make([]policy.Term, 0, nt)
	}
	for i := 0; i < nt; i++ {
		m.Terms = append(m.Terms, readTerm(r))
	}
}

// Setup is an ORWG policy-route setup packet: it carries the full policy
// route (list of ADs) and, for each transit AD, the key of the policy term
// the source believes authorizes the traversal (paper §5.4.1).
type Setup struct {
	// Handle is the source-assigned identifier successive data packets
	// will carry in place of the full route.
	Handle uint64
	// Req identifies the traffic class the route serves.
	Req policy.Request
	// Route is the full AD-level source route.
	Route ad.Path
	// TermKeys lists, in route order, the claimed policy term for each
	// transit AD (len(Route)-2 entries for routes of length >= 2).
	TermKeys []policy.Key
	// TTLMillis is the soft-state lifetime the source requests for the
	// installed handle, in milliseconds (0 = the PG's default; hard and
	// capped PGs ignore it). Part of the §6 state-management extension.
	TTLMillis uint32
}

// Type implements Message.
func (*Setup) Type() MsgType { return TypeSetup }

func (m *Setup) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Handle)
	dst = appendRequest(dst, m.Req)
	dst = appendPath(dst, m.Route)
	dst = appendU16(dst, uint16(len(m.TermKeys)))
	for _, k := range m.TermKeys {
		dst = appendU32(dst, uint32(k.Advertiser))
		dst = appendU32(dst, k.Serial)
	}
	return appendU32(dst, m.TTLMillis)
}

func (m *Setup) decodeBody(r *reader) {
	m.Handle = r.u64()
	m.Req = readRequest(r)
	m.Route = readPath(r)
	n := int(r.u16())
	if n > 0 {
		m.TermKeys = make([]policy.Key, 0, n)
	}
	for i := 0; i < n; i++ {
		m.TermKeys = append(m.TermKeys, policy.Key{
			Advertiser: ad.ID(r.u32()),
			Serial:     r.u32(),
		})
	}
	m.TTLMillis = r.u32()
}

// Setup reply codes.
const (
	// SetupOK confirms the policy route was validated and cached by
	// every AD on the path.
	SetupOK uint8 = iota
	// SetupNoPolicy means a transit AD found no term permitting the
	// route.
	SetupNoPolicy
	// SetupNoLink means a hop on the route is not an adjacency.
	SetupNoLink
	// SetupBadRoute means the route was malformed (loop, wrong
	// endpoints).
	SetupBadRoute
	// SetupNoState is the NAK a PG returns when a data or refresh packet
	// names a handle it no longer holds (evicted, expired, or flushed by
	// a failure): the source must re-establish via its route server.
	SetupNoState
)

// SetupReply reports setup success or the failing AD and reason.
type SetupReply struct {
	Handle   uint64
	Code     uint8
	FailedAt ad.ID
}

// OK reports whether the setup succeeded.
func (m *SetupReply) OK() bool { return m.Code == SetupOK }

// Type implements Message.
func (*SetupReply) Type() MsgType { return TypeSetupReply }

func (m *SetupReply) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Handle)
	dst = append(dst, m.Code)
	dst = appendU32(dst, uint32(m.FailedAt))
	return dst
}

func (m *SetupReply) decodeBody(r *reader) {
	m.Handle = r.u64()
	m.Code = r.u8()
	m.FailedAt = ad.ID(r.u32())
}

// Data packet forwarding modes.
const (
	// ModeHandle forwards using a previously established policy-route
	// handle: the per-packet header is just the handle.
	ModeHandle uint8 = iota
	// ModeSourceRoute carries the full AD source route and traffic-class
	// request in every packet (used before setup completes, and by the
	// filter baseline).
	ModeSourceRoute
)

// Data is a data packet. In handle mode Route is empty and Req is ignored
// by forwarders (the cached setup supplies them); in source-route mode the
// full route and request ride in the header, exactly the overhead ORWG's
// handles eliminate (paper §5.4.1).
type Data struct {
	Handle   uint64
	Mode     uint8
	HopIndex uint8
	Req      policy.Request
	Route    ad.Path
	Payload  []byte
}

// Type implements Message.
func (*Data) Type() MsgType { return TypeData }

func (m *Data) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Handle)
	dst = append(dst, m.Mode, m.HopIndex)
	dst = appendRequest(dst, m.Req)
	dst = appendPath(dst, m.Route)
	dst = appendU16(dst, uint16(len(m.Payload)))
	return append(dst, m.Payload...)
}

func (m *Data) decodeBody(r *reader) {
	m.Handle = r.u64()
	m.Mode = r.u8()
	m.HopIndex = r.u8()
	m.Req = readRequest(r)
	m.Route = readPath(r)
	m.Payload = r.bytes(int(r.u16()))
}

// HeaderLen returns the size of the packet's routing header: everything
// except the payload. Experiment E5 compares this between modes.
func (m *Data) HeaderLen() int {
	return headerLen + 8 + 2 + 11 + 2 + 4*len(m.Route) + 2
}

// Teardown reasons.
const (
	// TeardownExplicit is an ordinary source-initiated release.
	TeardownExplicit uint8 = iota
	// TeardownRepair is a failure-driven invalidation: a PG adjacent to a
	// failed link flushes the handle downstream so stale state does not
	// linger while the source re-establishes.
	TeardownRepair
)

// Teardown releases the policy-route state identified by Handle at each AD
// along the cached route.
type Teardown struct {
	Handle uint64
	// Reason distinguishes explicit release from failure-driven repair.
	Reason uint8
}

// Type implements Message.
func (*Teardown) Type() MsgType { return TypeTeardown }

func (m *Teardown) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Handle)
	return append(dst, m.Reason)
}

func (m *Teardown) decodeBody(r *reader) {
	m.Handle = r.u64()
	m.Reason = r.u8()
}

// Refresh is the soft-state keepalive (paper §6): the source re-asserts an
// established handle so each PG on the route extends the entry's lifetime.
// A PG without state for the handle answers with a SetupReply carrying
// SetupNoState, forcing a re-setup.
type Refresh struct {
	Handle uint64
	// TTLMillis is the requested lifetime extension in milliseconds
	// (0 = the PG's configured default).
	TTLMillis uint32
}

// Type implements Message.
func (*Refresh) Type() MsgType { return TypeRefresh }

func (m *Refresh) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Handle)
	return appendU32(dst, m.TTLMillis)
}

func (m *Refresh) decodeBody(r *reader) {
	m.Handle = r.u64()
	m.TTLMillis = r.u32()
}

// EGPRoute is one reachability entry in an EGP update.
type EGPRoute struct {
	Dest   ad.ID
	Metric uint32
}

// EGPUpdate is the EGP baseline's reachability advertisement (paper §3):
// destinations and metrics only, no policy content.
type EGPUpdate struct {
	Routes []EGPRoute
}

// Type implements Message.
func (*EGPUpdate) Type() MsgType { return TypeEGP }

func (m *EGPUpdate) appendBody(dst []byte) []byte {
	dst = appendU16(dst, uint16(len(m.Routes)))
	for _, rt := range m.Routes {
		dst = appendU32(dst, uint32(rt.Dest))
		dst = appendU32(dst, rt.Metric)
	}
	return dst
}

func (m *EGPUpdate) decodeBody(r *reader) {
	n := int(r.u16())
	if n == 0 {
		return
	}
	m.Routes = make([]EGPRoute, 0, n)
	for i := 0; i < n; i++ {
		m.Routes = append(m.Routes, EGPRoute{Dest: ad.ID(r.u32()), Metric: r.u32()})
	}
}
