package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ad"
	"repro/internal/policy"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf := Marshal(m)
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", m.Type(), err)
	}
	if got.Type() != m.Type() {
		t.Fatalf("type mismatch: %v vs %v", got.Type(), m.Type())
	}
	return got
}

func TestDVUpdateRoundTrip(t *testing.T) {
	m := &DVUpdate{Routes: []DVRoute{
		{Dest: 5, Metric: 3, QOS: 1, Flags: FlagTraversedDown},
		{Dest: 9, Metric: MetricInfinity, QOS: 0, Flags: FlagWithdraw},
	}}
	got := roundTrip(t, m).(*DVUpdate)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %+v, want %+v", got, m)
	}
}

func TestDVUpdateEmpty(t *testing.T) {
	got := roundTrip(t, &DVUpdate{}).(*DVUpdate)
	if len(got.Routes) != 0 {
		t.Errorf("empty update decoded with %d routes", len(got.Routes))
	}
}

func TestPathVectorRoundTrip(t *testing.T) {
	m := &PathVector{Routes: []PVRoute{
		{
			Dest: 7, Metric: 12, QOS: 2, Withdrawn: false,
			Path:           ad.Path{1, 2, 7},
			AllowedSources: policy.SetOf(1, 3),
			UCI:            policy.ClassSetOf(0, 1),
		},
		{
			Dest: 8, Metric: 1, Withdrawn: true,
			Path:           ad.Path{2, 8},
			AllowedSources: policy.Universal(),
			UCI:            policy.AllClasses,
		},
	}}
	got := roundTrip(t, m).(*PathVector)
	if len(got.Routes) != 2 {
		t.Fatalf("routes = %d", len(got.Routes))
	}
	r0 := got.Routes[0]
	if !r0.Path.Equal(ad.Path{1, 2, 7}) || r0.AllowedSources.IsUniversal() || !r0.AllowedSources.Contains(3) {
		t.Errorf("route 0 = %+v", r0)
	}
	r1 := got.Routes[1]
	if !r1.Withdrawn || !r1.AllowedSources.IsUniversal() {
		t.Errorf("route 1 = %+v", r1)
	}
}

func testTerm() policy.Term {
	return policy.Term{
		Advertiser: 5, Serial: 2,
		Sources: policy.SetOf(1, 2), Dests: policy.Universal(),
		PrevADs: policy.Universal(), NextADs: policy.SetOf(9),
		QOS: policy.ClassSetOf(0, 3), UCI: policy.ClassSetOf(0),
		Hours: policy.HourWindow{Start: 9, End: 17}, Cost: 7,
	}
}

func TestLSARoundTrip(t *testing.T) {
	m := &LSA{
		Origin: 4, Seq: 17,
		Links: []LSALink{{Neighbor: 1, Cost: 2, Up: true}, {Neighbor: 9, Cost: 5, Up: false}},
		Terms: []policy.Term{testTerm(), policy.OpenTerm(4, 1)},
	}
	got := roundTrip(t, m).(*LSA)
	if got.Origin != 4 || got.Seq != 17 {
		t.Errorf("origin/seq = %v/%v", got.Origin, got.Seq)
	}
	if !reflect.DeepEqual(got.Links, m.Links) {
		t.Errorf("links = %+v", got.Links)
	}
	if len(got.Terms) != 2 {
		t.Fatalf("terms = %d", len(got.Terms))
	}
	tm := got.Terms[0]
	if tm.Advertiser != 5 || tm.Serial != 2 || !tm.Sources.Contains(2) || tm.Sources.Contains(3) ||
		!tm.Dests.IsUniversal() || !tm.NextADs.Contains(9) || tm.NextADs.Contains(8) ||
		tm.QOS != policy.ClassSetOf(0, 3) || tm.Hours != (policy.HourWindow{Start: 9, End: 17}) || tm.Cost != 7 {
		t.Errorf("term 0 = %+v", tm)
	}
	open := got.Terms[1]
	if !open.Sources.IsUniversal() || open.QOS != policy.AllClasses {
		t.Errorf("open term = %+v", open)
	}
}

func TestTermWireLenMatchesEncoding(t *testing.T) {
	for _, tm := range []policy.Term{testTerm(), policy.OpenTerm(1, 1)} {
		var buf []byte
		buf = appendTerm(buf, tm)
		if got := TermWireLen(tm); got != len(buf) {
			t.Errorf("TermWireLen(%v) = %d, encoded %d", tm, got, len(buf))
		}
	}
}

func TestSetupRoundTrip(t *testing.T) {
	m := &Setup{
		Handle: 0xDEADBEEF12345678,
		Req:    policy.Request{Src: 1, Dst: 9, QOS: 1, UCI: 2, Hour: 13},
		Route:  ad.Path{1, 4, 6, 9},
		TermKeys: []policy.Key{
			{Advertiser: 4, Serial: 1},
			{Advertiser: 6, Serial: 3},
		},
		TTLMillis: 30000,
	}
	got := roundTrip(t, m).(*Setup)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %+v, want %+v", got, m)
	}
}

func TestSetupReplyRoundTrip(t *testing.T) {
	m := &SetupReply{Handle: 42, Code: SetupNoPolicy, FailedAt: 6}
	got := roundTrip(t, m).(*SetupReply)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %+v, want %+v", got, m)
	}
	if got.OK() {
		t.Error("failed reply reports OK")
	}
	if !(&SetupReply{Code: SetupOK}).OK() {
		t.Error("OK reply reports failure")
	}
}

func TestDataRoundTrip(t *testing.T) {
	m := &Data{
		Handle: 7, Mode: ModeSourceRoute, HopIndex: 2,
		Req:     policy.Request{Src: 1, Dst: 5},
		Route:   ad.Path{1, 3, 5},
		Payload: []byte("hello world"),
	}
	got := roundTrip(t, m).(*Data)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %+v, want %+v", got, m)
	}
}

func TestDataHandleModeSmaller(t *testing.T) {
	// The whole point of ORWG handles: per-packet header shrinks.
	payload := bytes.Repeat([]byte{0xAB}, 64)
	full := &Data{Mode: ModeSourceRoute, Req: policy.Request{Src: 1, Dst: 9},
		Route: ad.Path{1, 2, 3, 4, 5, 6, 7, 8, 9}, Payload: payload}
	handle := &Data{Mode: ModeHandle, Handle: 99, Payload: payload}
	lf, lh := len(Marshal(full)), len(Marshal(handle))
	if lh >= lf {
		t.Errorf("handle-mode packet (%d) not smaller than source-route (%d)", lh, lf)
	}
}

func TestDataHeaderLen(t *testing.T) {
	for _, m := range []*Data{
		{Mode: ModeHandle, Payload: []byte("xyz")},
		{Mode: ModeSourceRoute, Route: ad.Path{1, 2, 3}, Payload: bytes.Repeat([]byte{1}, 100)},
		{Mode: ModeSourceRoute, Route: ad.Path{}},
	} {
		want := len(Marshal(m)) - len(m.Payload)
		if got := m.HeaderLen(); got != want {
			t.Errorf("HeaderLen = %d, want %d (route len %d)", got, want, len(m.Route))
		}
	}
}

func TestTeardownRoundTrip(t *testing.T) {
	got := roundTrip(t, &Teardown{Handle: 1234, Reason: TeardownRepair}).(*Teardown)
	if got.Handle != 1234 || got.Reason != TeardownRepair {
		t.Errorf("got %+v", got)
	}
	if got := roundTrip(t, &Teardown{Handle: 9}).(*Teardown); got.Reason != TeardownExplicit {
		t.Errorf("zero reason decoded as %d", got.Reason)
	}
}

func TestRefreshRoundTrip(t *testing.T) {
	m := &Refresh{Handle: 0xABCDEF0102030405, TTLMillis: 45000}
	got := roundTrip(t, m).(*Refresh)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %+v, want %+v", got, m)
	}
}

func TestEGPRoundTrip(t *testing.T) {
	m := &EGPUpdate{Routes: []EGPRoute{{Dest: 1, Metric: 0}, {Dest: 2, Metric: 128}}}
	got := roundTrip(t, m).(*EGPUpdate)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %+v, want %+v", got, m)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid := Marshal(&Teardown{Handle: 1})

	if _, err := Unmarshal(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil: err = %v", err)
	}
	if _, err := Unmarshal(valid[:2]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: err = %v", err)
	}
	badVer := append([]byte{}, valid...)
	badVer[0] = 99
	if _, err := Unmarshal(badVer); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: err = %v", err)
	}
	badType := append([]byte{}, valid...)
	badType[1] = 250
	if _, err := Unmarshal(badType); !errors.Is(err, ErrUnknownType) {
		t.Errorf("bad type: err = %v", err)
	}
	if _, err := Unmarshal(valid[:len(valid)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short body: err = %v", err)
	}
	trailing := append(append([]byte{}, valid...), 0)
	if _, err := Unmarshal(trailing); !errors.Is(err, ErrTrailing) {
		t.Errorf("trailing: err = %v", err)
	}
}

func TestUnmarshalBodyTruncationEveryPrefix(t *testing.T) {
	// Every strict prefix of a valid message must fail cleanly, never
	// panic. This sweeps the reader's bounds checks.
	msgs := []Message{
		&DVUpdate{Routes: []DVRoute{{Dest: 1, Metric: 2}}},
		&PathVector{Routes: []PVRoute{{Dest: 1, Path: ad.Path{1, 2}, AllowedSources: policy.SetOf(1)}}},
		&LSA{Origin: 1, Seq: 1, Links: []LSALink{{Neighbor: 2, Cost: 1, Up: true}}, Terms: []policy.Term{testTerm()}},
		&Setup{Handle: 1, Route: ad.Path{1, 2}, TermKeys: []policy.Key{{Advertiser: 1, Serial: 1}}, TTLMillis: 1000},
		&SetupReply{Handle: 1},
		&Data{Route: ad.Path{1}, Payload: []byte("abc")},
		&Teardown{Handle: 1, Reason: TeardownRepair},
		&EGPUpdate{Routes: []EGPRoute{{Dest: 1}}},
		&Refresh{Handle: 1, TTLMillis: 500},
	}
	for _, m := range msgs {
		full := Marshal(m)
		for cut := 4; cut < len(full); cut++ {
			truncated := append([]byte{}, full[:cut]...)
			// Fix up the declared body length so the header is
			// consistent with the truncation; the body itself is
			// still short for the decoder.
			truncated[2] = byte((cut - 4) >> 8)
			truncated[3] = byte(cut - 4)
			if _, err := Unmarshal(truncated); err == nil {
				// Some prefixes decode cleanly (e.g. count=0);
				// that is acceptable as long as nothing panics,
				// but a full count with missing entries must
				// error. We only require no panic here.
				continue
			}
		}
	}
}

func TestPropertyDVRoundTrip(t *testing.T) {
	f := func(dests []uint32, metric uint32, qos, flags uint8) bool {
		m := &DVUpdate{}
		for _, d := range dests {
			m.Routes = append(m.Routes, DVRoute{Dest: ad.ID(d), Metric: metric, QOS: policy.QOS(qos), Flags: flags})
		}
		if len(m.Routes) > 1000 {
			return true
		}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertySetupRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		routeLen := rng.Intn(10)
		m := &Setup{Handle: rng.Uint64(), Req: policy.Request{
			Src: ad.ID(rng.Uint32()), Dst: ad.ID(rng.Uint32()),
			QOS: policy.QOS(rng.Intn(32)), UCI: policy.UCI(rng.Intn(32)), Hour: uint8(rng.Intn(24)),
		}}
		for j := 0; j < routeLen; j++ {
			m.Route = append(m.Route, ad.ID(rng.Uint32()))
		}
		for j := 0; j < rng.Intn(5); j++ {
			m.TermKeys = append(m.TermKeys, policy.Key{Advertiser: ad.ID(rng.Uint32()), Serial: rng.Uint32()})
		}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		g := got.(*Setup)
		if g.Handle != m.Handle || !g.Route.Equal(m.Route) || len(g.TermKeys) != len(m.TermKeys) {
			t.Fatalf("iteration %d: mismatch", i)
		}
	}
}

func TestPropertyLSATermRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	randSet := func() policy.ADSet {
		if rng.Intn(2) == 0 {
			return policy.Universal()
		}
		n := rng.Intn(5)
		ids := make([]ad.ID, n)
		for i := range ids {
			ids[i] = ad.ID(rng.Uint32())
		}
		return policy.SetOf(ids...)
	}
	for i := 0; i < 200; i++ {
		tm := policy.Term{
			Advertiser: ad.ID(rng.Uint32()), Serial: rng.Uint32(),
			Sources: randSet(), Dests: randSet(), PrevADs: randSet(), NextADs: randSet(),
			QOS: policy.ClassSet(rng.Uint32()), UCI: policy.ClassSet(rng.Uint32()),
			Hours: policy.HourWindow{Start: uint8(rng.Intn(24)), End: uint8(rng.Intn(25))},
			Cost:  rng.Uint32(),
		}
		m := &LSA{Origin: 1, Seq: uint32(i), Terms: []policy.Term{tm}}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		g := got.(*LSA).Terms[0]
		// ADSet lacks exported equality; compare via String and probes.
		if g.Advertiser != tm.Advertiser || g.Serial != tm.Serial ||
			g.Sources.String() != tm.Sources.String() ||
			g.Dests.String() != tm.Dests.String() ||
			g.PrevADs.String() != tm.PrevADs.String() ||
			g.NextADs.String() != tm.NextADs.String() ||
			g.QOS != tm.QOS || g.UCI != tm.UCI || g.Hours != tm.Hours || g.Cost != tm.Cost {
			t.Fatalf("iteration %d: term mismatch:\n got %+v\nwant %+v", i, g, tm)
		}
	}
}

func TestMsgTypeString(t *testing.T) {
	types := []MsgType{TypeDVUpdate, TypePathVector, TypeLSA, TypeSetup,
		TypeSetupReply, TypeData, TypeTeardown, TypeEGP, TypeRefresh, MsgType(99)}
	for _, typ := range types {
		if typ.String() == "" {
			t.Errorf("MsgType(%d).String() empty", typ)
		}
	}
}

func TestMarshalTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized message did not panic")
		}
	}()
	m := &DVUpdate{Routes: make([]DVRoute, 7000)} // 7000*10 > 65535
	Marshal(m)
}
