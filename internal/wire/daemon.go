package wire

import (
	"fmt"
	"io"

	"repro/internal/ad"
	"repro/internal/policy"
)

// Serving-protocol messages: the route-server daemon (§5.4) answers route
// queries, control-plane mutations (link fail/restore, policy replacement,
// full invalidation), data-plane operations, and stats requests over a
// framed binary session built on this package's message format. Every
// request carries a client-chosen ID echoed verbatim in its reply so
// clients may pipeline.

// Control operation codes (Control.Op).
const (
	// CtlFail takes the A-B link down with a scoped invalidation.
	CtlFail uint8 = iota
	// CtlRestore brings a previously failed A-B link back up.
	CtlRestore
	// CtlPolicy replaces AD A's terms with one open term of cost Cost.
	CtlPolicy
	// CtlInvalidate forces the full generation bump.
	CtlInvalidate
)

// Control reply codes (ControlReply.Code).
const (
	// CtlOK reports success.
	CtlOK uint8 = iota
	// CtlErr reports failure; ControlReply.Err carries the reason.
	CtlErr
)

// Data-plane operation codes (DataOp.Op).
const (
	// OpInstall serves a route for Req and installs PG handle state.
	OpInstall uint8 = iota
	// OpSend forwards one data packet over Handle.
	OpSend
	// OpRefresh re-asserts every live flow's soft state.
	OpRefresh
	// OpTick advances the data plane's logical clock by Arg seconds.
	OpTick
	// OpRepair re-establishes every flow queued by misses or failures.
	OpRepair
	// OpState reports the data-plane metrics summary.
	OpState
)

// Data-plane reply codes (DataOpReply.Code).
const (
	// DataOK reports success (install found a route, send delivered, …).
	DataOK uint8 = iota
	// DataNoRoute means install found no legal route for the request.
	DataNoRoute
	// DataNoState means send hit a PG without state; N1 names the AD and
	// the flow is queued for repair.
	DataNoState
	// DataUnknownHandle means send named a handle with no live flow.
	DataUnknownHandle
	// DataBadOp means the daemon did not recognize DataOp.Op.
	DataBadOp
)

// Query is one route request on a daemon session.
type Query struct {
	// ID correlates the reply; the daemon echoes it verbatim.
	ID  uint64
	Req policy.Request
}

// Type implements Message.
func (*Query) Type() MsgType { return TypeQuery }

func (m *Query) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.ID)
	return appendRequest(dst, m.Req)
}

func (m *Query) decodeBody(r *reader) {
	m.ID = r.u64()
	m.Req = readRequest(r)
}

// QueryReply answers a Query: the synthesized route, or Found false when no
// legal route exists.
type QueryReply struct {
	ID    uint64
	Found bool
	Path  ad.Path
}

// Type implements Message.
func (*QueryReply) Type() MsgType { return TypeQueryReply }

func (m *QueryReply) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.ID)
	found := uint8(0)
	if m.Found {
		found = 1
	}
	dst = append(dst, found)
	return appendPath(dst, m.Path)
}

func (m *QueryReply) decodeBody(r *reader) {
	m.ID = r.u64()
	m.Found = r.u8() == 1
	m.Path = readPath(r)
}

// Control is a control-plane mutation: link fail/restore (A, B), policy
// replacement (A = the AD, Cost = the open term's cost), or a full
// invalidation.
type Control struct {
	ID   uint64
	Op   uint8
	A, B ad.ID
	Cost uint32
}

// Type implements Message.
func (*Control) Type() MsgType { return TypeControl }

func (m *Control) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.ID)
	dst = append(dst, m.Op)
	dst = appendU32(dst, uint32(m.A))
	dst = appendU32(dst, uint32(m.B))
	return appendU32(dst, m.Cost)
}

func (m *Control) decodeBody(r *reader) {
	m.ID = r.u64()
	m.Op = r.u8()
	m.A = ad.ID(r.u32())
	m.B = ad.ID(r.u32())
	m.Cost = r.u32()
}

// ControlReply acknowledges a Control or Drain: the scoped-invalidation
// eviction/retention counts (fail/restore/policy), the new generation
// (invalidate), or an error.
type ControlReply struct {
	ID       uint64
	Code     uint8
	Evicted  uint64
	Retained uint64
	// Flushed counts PG handle entries invalidated by a link failure.
	Flushed uint64
	Gen     uint64
	// Err is the failure reason when Code is CtlErr.
	Err string
}

// OK reports whether the control operation succeeded.
func (m *ControlReply) OK() bool { return m.Code == CtlOK }

// Type implements Message.
func (*ControlReply) Type() MsgType { return TypeControlReply }

func (m *ControlReply) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.ID)
	dst = append(dst, m.Code)
	dst = appendU64(dst, m.Evicted)
	dst = appendU64(dst, m.Retained)
	dst = appendU64(dst, m.Flushed)
	dst = appendU64(dst, m.Gen)
	return appendString(dst, m.Err)
}

func (m *ControlReply) decodeBody(r *reader) {
	m.ID = r.u64()
	m.Code = r.u8()
	m.Evicted = r.u64()
	m.Retained = r.u64()
	m.Flushed = r.u64()
	m.Gen = r.u64()
	m.Err = readString(r)
}

// DataOp is one data-plane operation: install (Req), send (Handle), tick
// (Arg seconds), refresh, repair, or state.
type DataOp struct {
	ID     uint64
	Op     uint8
	Handle uint64
	Arg    uint32
	Req    policy.Request
}

// Type implements Message.
func (*DataOp) Type() MsgType { return TypeDataOp }

func (m *DataOp) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.ID)
	dst = append(dst, m.Op)
	dst = appendU64(dst, m.Handle)
	dst = appendU32(dst, m.Arg)
	return appendRequest(dst, m.Req)
}

func (m *DataOp) decodeBody(r *reader) {
	m.ID = r.u64()
	m.Op = r.u8()
	m.Handle = r.u64()
	m.Arg = r.u32()
	m.Req = readRequest(r)
}

// DataOpReply answers a DataOp. Field use per op:
//
//	install  Handle + Path on DataOK
//	send     DataOK delivered; DataNoState with N1 = the stateless AD
//	refresh  N1 refreshed, N2 lost state
//	tick     N1 clock seconds, N2 entries expired
//	repair   N1 attempted, N2 repaired
//	state    Text = the metrics summary
type DataOpReply struct {
	ID     uint64
	Op     uint8
	Code   uint8
	Handle uint64
	Path   ad.Path
	N1, N2 uint64
	Text   string
}

// Type implements Message.
func (*DataOpReply) Type() MsgType { return TypeDataOpReply }

func (m *DataOpReply) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.ID)
	dst = append(dst, m.Op, m.Code)
	dst = appendU64(dst, m.Handle)
	dst = appendPath(dst, m.Path)
	dst = appendU64(dst, m.N1)
	dst = appendU64(dst, m.N2)
	return appendString(dst, m.Text)
}

func (m *DataOpReply) decodeBody(r *reader) {
	m.ID = r.u64()
	m.Op = r.u8()
	m.Code = r.u8()
	m.Handle = r.u64()
	m.Path = readPath(r)
	m.N1 = r.u64()
	m.N2 = r.u64()
	m.Text = readString(r)
}

// StatsQuery asks for the serving counters.
type StatsQuery struct {
	ID uint64
}

// Type implements Message.
func (*StatsQuery) Type() MsgType { return TypeStatsQuery }

func (m *StatsQuery) appendBody(dst []byte) []byte { return appendU64(dst, m.ID) }

func (m *StatsQuery) decodeBody(r *reader) { m.ID = r.u64() }

// StatsReply carries the serving counters: generation, query/hit/coalesce/
// miss/failure totals, the live cache size, and the daemon's connection
// counters (sessions accepted, evicted for slow consumption, refused at
// the limit or during drain) so operators can observe connection churn
// server-side. The connection counters are zero on front ends with no
// daemon (stdin line mode).
type StatsReply struct {
	ID          uint64
	Gen         uint64
	Queries     uint64
	Hits        uint64
	Coalesced   uint64
	Misses      uint64
	Failures    uint64
	Cached      uint64
	Accepted    uint64
	EvictedSlow uint64
	Refused     uint64
}

// Type implements Message.
func (*StatsReply) Type() MsgType { return TypeStatsReply }

func (m *StatsReply) appendBody(dst []byte) []byte {
	for _, v := range []uint64{m.ID, m.Gen, m.Queries, m.Hits, m.Coalesced, m.Misses, m.Failures, m.Cached, m.Accepted, m.EvictedSlow, m.Refused} {
		dst = appendU64(dst, v)
	}
	return dst
}

func (m *StatsReply) decodeBody(r *reader) {
	m.ID = r.u64()
	m.Gen = r.u64()
	m.Queries = r.u64()
	m.Hits = r.u64()
	m.Coalesced = r.u64()
	m.Misses = r.u64()
	m.Failures = r.u64()
	m.Cached = r.u64()
	m.Accepted = r.u64()
	m.EvictedSlow = r.u64()
	m.Refused = r.u64()
}

// Drain asks the daemon to shut down gracefully: stop accepting, finish
// in-flight requests, flush replies, close every session. Acknowledged
// with a ControlReply before the drain begins.
type Drain struct {
	ID uint64
}

// Type implements Message.
func (*Drain) Type() MsgType { return TypeDrain }

func (m *Drain) appendBody(dst []byte) []byte { return appendU64(dst, m.ID) }

func (m *Drain) decodeBody(r *reader) { m.ID = r.u64() }

// String encoding: 16-bit byte length followed by the raw bytes.

func appendString(dst []byte, s string) []byte {
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

func readString(r *reader) string {
	return string(r.bytes(int(r.u16())))
}

// ReadMessage reads exactly one framed message from r: the fixed header,
// then the body the header's length field declares. A clean EOF before any
// header byte returns io.EOF; EOF mid-message returns io.ErrUnexpectedEOF.
// Sessions use it to delimit messages on a byte stream.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if hdr[0] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[0])
	}
	n := int(hdr[2])<<8 | int(hdr[3])
	buf := make([]byte, headerLen+n)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[headerLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return Unmarshal(buf)
}

// WriteMessage frames and writes one message to w.
func WriteMessage(w io.Writer, m Message) error {
	_, err := w.Write(Marshal(m))
	return err
}
