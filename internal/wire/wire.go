// Package wire defines the binary on-the-wire encodings of every protocol
// message exchanged in the simulations: distance-vector and path-vector
// updates, policy link-state advertisements, ORWG route setup/teardown, data
// packets, and the EGP baseline's reachability updates.
//
// Message overhead statistics in the experiments are computed from these
// marshalled bytes, so header-size claims (e.g. source route vs handle,
// paper §5.4.1) are measured rather than estimated.
//
// All integers are big-endian. Every message starts with a 4-byte header:
//
//	byte 0   version (currently 1)
//	byte 1   message type
//	bytes2-3 body length in bytes
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the wire protocol version emitted and accepted.
const Version = 1

// headerLen is the fixed message header size.
const headerLen = 4

// MsgType discriminates message bodies.
type MsgType uint8

// Message types.
const (
	TypeInvalid MsgType = iota
	// TypeDVUpdate is a distance-vector routing update (plain DV, ECMA).
	TypeDVUpdate
	// TypePathVector is an IDRP/BGP-2 path-vector update with policy
	// attributes.
	TypePathVector
	// TypeLSA is a policy link-state advertisement.
	TypeLSA
	// TypeSetup is an ORWG policy-route setup packet.
	TypeSetup
	// TypeSetupReply acknowledges or refuses a setup.
	TypeSetupReply
	// TypeData is a data packet (source-routed or handle-forwarded).
	TypeData
	// TypeTeardown releases an established policy route.
	TypeTeardown
	// TypeEGP is an EGP neighbor-reachability update.
	TypeEGP
	// TypeRefresh is a soft-state keepalive extending a policy-route
	// handle's lifetime at each PG on the cached route.
	TypeRefresh
	// TypeQuery is a route query on a daemon session (§5.4 serving).
	TypeQuery
	// TypeQueryReply answers a route query.
	TypeQueryReply
	// TypeControl is a control-plane mutation (fail/restore/policy/
	// invalidate) on a daemon session.
	TypeControl
	// TypeControlReply acknowledges a Control or Drain.
	TypeControlReply
	// TypeDataOp is a data-plane operation (install/send/refresh/tick/
	// repair/state) on a daemon session.
	TypeDataOp
	// TypeDataOpReply answers a DataOp.
	TypeDataOpReply
	// TypeStatsQuery asks for the daemon's serving counters.
	TypeStatsQuery
	// TypeStatsReply carries the serving counters.
	TypeStatsReply
	// TypeDrain asks the daemon to drain gracefully.
	TypeDrain
	// TypeHello opens an HA replication connection (heartbeat or sync).
	TypeHello
	// TypeHeartbeat is the periodic liveness beacon between replicas.
	TypeHeartbeat
	// TypeSyncEntry replicates one backlog record (cache put or control
	// mutation) from primary to follower.
	TypeSyncEntry
	// TypeSyncSnapshot brackets a full warm-state transfer on a sync link.
	TypeSyncSnapshot
	// TypePromote announces a replica's self-promotion to primary.
	TypePromote
	// TypeNotPrimary redirects a client (or refuses a sync stream) toward
	// the current primary.
	TypeNotPrimary
	// TypePlan proposes a what-if control batch for blast-radius
	// prediction, or commits a previously computed plan.
	TypePlan
	// TypePlanReply carries the predicted blast radius (or the committed
	// plan's observed counts).
	TypePlanReply
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TypeDVUpdate:
		return "dv-update"
	case TypePathVector:
		return "path-vector"
	case TypeLSA:
		return "lsa"
	case TypeSetup:
		return "setup"
	case TypeSetupReply:
		return "setup-reply"
	case TypeData:
		return "data"
	case TypeTeardown:
		return "teardown"
	case TypeEGP:
		return "egp"
	case TypeRefresh:
		return "refresh"
	case TypeQuery:
		return "query"
	case TypeQueryReply:
		return "query-reply"
	case TypeControl:
		return "control"
	case TypeControlReply:
		return "control-reply"
	case TypeDataOp:
		return "data-op"
	case TypeDataOpReply:
		return "data-op-reply"
	case TypeStatsQuery:
		return "stats-query"
	case TypeStatsReply:
		return "stats-reply"
	case TypeDrain:
		return "drain"
	case TypeHello:
		return "hello"
	case TypeHeartbeat:
		return "heartbeat"
	case TypeSyncEntry:
		return "sync-entry"
	case TypeSyncSnapshot:
		return "sync-snapshot"
	case TypePromote:
		return "promote"
	case TypeNotPrimary:
		return "not-primary"
	case TypePlan:
		return "plan"
	case TypePlanReply:
		return "plan-reply"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Errors returned by Unmarshal.
var (
	ErrTruncated   = errors.New("wire: truncated message")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrUnknownType = errors.New("wire: unknown message type")
	ErrTrailing    = errors.New("wire: trailing bytes after message body")
	ErrTooLarge    = errors.New("wire: message exceeds maximum size")
)

// maxBody bounds message bodies to what the 16-bit length field can carry.
const maxBody = 1<<16 - 1

// Message is implemented by every wire message.
type Message interface {
	// Type returns the message's type code.
	Type() MsgType
	// appendBody appends the marshalled body to dst and returns it.
	appendBody(dst []byte) []byte
	// decodeBody parses the body. It must consume the whole buffer.
	decodeBody(r *reader)
}

// Marshal encodes m with its header. It panics if the body exceeds the
// 16-bit length field: that is a protocol design error, not a runtime
// condition (callers size updates below the limit).
func Marshal(m Message) []byte {
	buf := make([]byte, headerLen, headerLen+64)
	buf[0] = Version
	buf[1] = byte(m.Type())
	buf = m.appendBody(buf)
	body := len(buf) - headerLen
	if body > maxBody {
		panic(fmt.Sprintf("wire: %v body %d bytes exceeds max %d", m.Type(), body, maxBody))
	}
	binary.BigEndian.PutUint16(buf[2:4], uint16(body))
	return buf
}

// Unmarshal decodes one message from b, which must contain exactly one
// message.
func Unmarshal(b []byte) (Message, error) {
	if len(b) < headerLen {
		return nil, ErrTruncated
	}
	if b[0] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, b[0])
	}
	t := MsgType(b[1])
	bodyLen := int(binary.BigEndian.Uint16(b[2:4]))
	body := b[headerLen:]
	if len(body) < bodyLen {
		return nil, ErrTruncated
	}
	if len(body) > bodyLen {
		return nil, ErrTrailing
	}
	var m Message
	switch t {
	case TypeDVUpdate:
		m = &DVUpdate{}
	case TypePathVector:
		m = &PathVector{}
	case TypeLSA:
		m = &LSA{}
	case TypeSetup:
		m = &Setup{}
	case TypeSetupReply:
		m = &SetupReply{}
	case TypeData:
		m = &Data{}
	case TypeTeardown:
		m = &Teardown{}
	case TypeEGP:
		m = &EGPUpdate{}
	case TypeRefresh:
		m = &Refresh{}
	case TypeQuery:
		m = &Query{}
	case TypeQueryReply:
		m = &QueryReply{}
	case TypeControl:
		m = &Control{}
	case TypeControlReply:
		m = &ControlReply{}
	case TypeDataOp:
		m = &DataOp{}
	case TypeDataOpReply:
		m = &DataOpReply{}
	case TypeStatsQuery:
		m = &StatsQuery{}
	case TypeStatsReply:
		m = &StatsReply{}
	case TypeDrain:
		m = &Drain{}
	case TypeHello:
		m = &Hello{}
	case TypeHeartbeat:
		m = &Heartbeat{}
	case TypeSyncEntry:
		m = &SyncEntry{}
	case TypeSyncSnapshot:
		m = &SyncSnapshot{}
	case TypePromote:
		m = &Promote{}
	case TypeNotPrimary:
		m = &NotPrimary{}
	case TypePlan:
		m = &Plan{}
	case TypePlanReply:
		m = &PlanReply{}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, b[1])
	}
	r := &reader{buf: body}
	m.decodeBody(r)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, ErrTrailing
	}
	return m, nil
}

// reader is a cursor over a message body that records the first error and
// turns subsequent reads into no-ops, so decoders can be written without
// per-field error checks.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += n
	return out
}

// Append helpers shared by encoders.

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	dst = appendU32(dst, uint32(v>>32))
	return appendU32(dst, uint32(v))
}
