package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
)

func daemonMessages() []Message {
	return []Message{
		&Query{ID: 1, Req: policy.Request{Src: 1, Dst: 9, QOS: 1, UCI: 2, Hour: 13}},
		&QueryReply{ID: 1, Found: true, Path: ad.Path{1, 4, 9}},
		&QueryReply{ID: 2, Found: false, Path: ad.Path{}},
		&Control{ID: 3, Op: CtlFail, A: 2, B: 4},
		&Control{ID: 4, Op: CtlPolicy, A: 2, Cost: 100},
		&ControlReply{ID: 3, Code: CtlOK, Evicted: 5, Retained: 12, Flushed: 3, Gen: 2},
		&ControlReply{ID: 9, Code: CtlErr, Err: "no link AD2-AD4"},
		&DataOp{ID: 5, Op: OpInstall, Req: policy.Request{Src: 1, Dst: 4}},
		&DataOp{ID: 6, Op: OpSend, Handle: 7},
		&DataOp{ID: 7, Op: OpTick, Arg: 30},
		&DataOpReply{ID: 5, Op: OpInstall, Code: DataOK, Handle: 7, Path: ad.Path{1, 2, 4}},
		&DataOpReply{ID: 6, Op: OpSend, Code: DataNoState, N1: 2, Path: ad.Path{}},
		&DataOpReply{ID: 8, Op: OpState, Code: DataOK, Path: ad.Path{}, Text: "flows 3, pending-repairs 0"},
		&StatsQuery{ID: 10},
		&StatsReply{ID: 10, Gen: 1, Queries: 100, Hits: 80, Coalesced: 5, Misses: 15, Failures: 2, Cached: 15,
			Accepted: 40, EvictedSlow: 1, Refused: 3},
		&Drain{ID: 11},
		&Hello{ReplicaID: 2, Mode: ModeSync, Epoch: 3, FromSeq: 77},
		&Hello{ReplicaID: 1, Mode: ModeHeartbeat, Epoch: 1},
		&Heartbeat{ReplicaID: 1, Epoch: 3, Primary: 2, Seq: 120},
		&SyncEntry{Seq: 9, Op: SyncPut,
			Req: policy.Request{Src: 1, Dst: 9, QOS: 1, UCI: 1, Hour: 4}, Found: true,
			Path:  ad.Path{1, 4, 9},
			Links: [][2]ad.ID{{1, 4}, {4, 9}},
			Terms: []policy.Key{{Advertiser: 4, Serial: 2}}},
		&SyncEntry{Seq: 10, Op: SyncPut,
			Req: policy.Request{Src: 1, Dst: 3}, Found: false, Path: ad.Path{}},
		&SyncEntry{Seq: 11, Op: SyncCtl, Path: ad.Path{}, CtlOp: CtlFail, A: 2, B: 4},
		&SyncSnapshot{Seq: 40, Count: 17},
		&SyncSnapshot{Seq: 40, Done: true},
		&Promote{ReplicaID: 2, Epoch: 4},
		&NotPrimary{ID: 5, PrimaryID: 1, Addr: "127.0.0.1:4242"},
		&NotPrimary{},
		&Plan{ID: 12, Steps: []PlanStep{
			{Op: CtlFail, A: 2, B: 4},
			{Op: CtlPolicy, A: 7, Cost: 10},
		}},
		&Plan{ID: 13, Commit: true, PlanID: 3},
		&PlanReply{ID: 12, Code: CtlOK, PlanID: 3, Epoch: 9,
			Evicted: 17, Retained: 203, Teardowns: 4, Unroutable: 2, Resynth: 17,
			MeanSynthNanos: 12345, ProjNanos: 209865, Focus: 7,
			Gained: 1, Lost: 2, Rerouted: 5, TransitBefore: 40, TransitAfter: 38,
			Truncated: true},
		&PlanReply{ID: 13, Code: CtlOK, PlanID: 3, Committed: true,
			Evicted: 17, Retained: 203, Flushed: 6},
		&PlanReply{ID: 14, Code: CtlErr, Err: "plan 3 is stale: mutation epoch moved 9 -> 11, re-plan"},
	}
}

func TestDaemonMessagesRoundTrip(t *testing.T) {
	for _, m := range daemonMessages() {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%v: got %+v, want %+v", m.Type(), got, m)
		}
	}
}

func TestDaemonMessagesTruncationEveryPrefix(t *testing.T) {
	for _, m := range daemonMessages() {
		full := Marshal(m)
		for cut := 4; cut < len(full); cut++ {
			truncated := append([]byte{}, full[:cut]...)
			truncated[2] = byte((cut - 4) >> 8)
			truncated[3] = byte(cut - 4)
			_, _ = Unmarshal(truncated) // must not panic
		}
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := daemonMessages()
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("write %v: %v", m.Type(), err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("message %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Errorf("end of stream: err = %v, want io.EOF", err)
	}
}

func TestReadMessageErrors(t *testing.T) {
	full := Marshal(&Query{ID: 1, Req: policy.Request{Src: 1, Dst: 2}})

	// EOF mid-header.
	if _, err := ReadMessage(bytes.NewReader(full[:2])); err != io.ErrUnexpectedEOF {
		t.Errorf("mid-header: err = %v", err)
	}
	// EOF mid-body.
	if _, err := ReadMessage(bytes.NewReader(full[:len(full)-3])); err != io.ErrUnexpectedEOF {
		t.Errorf("mid-body: err = %v", err)
	}
	// Bad version rejected before the body is read.
	bad := append([]byte{}, full...)
	bad[0] = 9
	if _, err := ReadMessage(bytes.NewReader(bad)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: err = %v", err)
	}
}

func TestControlReplyOK(t *testing.T) {
	if !(&ControlReply{Code: CtlOK}).OK() {
		t.Error("CtlOK reply reports failure")
	}
	if (&ControlReply{Code: CtlErr, Err: "x"}).OK() {
		t.Error("CtlErr reply reports OK")
	}
}
