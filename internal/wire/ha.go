package wire

import (
	"repro/internal/ad"
	"repro/internal/policy"
)

// Replication messages: an HA group of route-server daemons elects one
// primary and streams its warm route cache — each entry with the
// dependency footprint that feeds scoped invalidation — to followers, so
// a promoted follower starts serving from warm state instead of an empty
// cache. Two connection kinds share one listener, discriminated by
// Hello.Mode: heartbeat links (periodic Heartbeat, occasional Promote)
// and sync links (a SyncEntry stream, with SyncSnapshot bracketing a full
// state transfer when the follower's cursor precedes the backlog's trim
// horizon). NotPrimary doubles as the sync-link refusal from a
// non-primary and the client-facing redirect on serving sessions.

// Hello connection modes (Hello.Mode).
const (
	// ModeHeartbeat opens a failure-detection link: the dialer sends
	// periodic Heartbeats (and Promotes) and reads nothing back.
	ModeHeartbeat uint8 = iota
	// ModeSync opens a replication link: the dialer is a follower asking
	// the primary to stream backlog entries starting after FromSeq.
	ModeSync
)

// Sync operation codes (SyncEntry.Op).
const (
	// SyncPut replicates one warm-cache entry (request, result, footprint).
	SyncPut uint8 = iota
	// SyncCtl replicates one control-plane mutation (CtlOp/A/B/Cost as in
	// Control); the follower applies it through its own backend so scoped
	// eviction replays naturally.
	SyncCtl
)

// Hello opens a replication-listener connection and declares what it is.
type Hello struct {
	// ReplicaID identifies the dialing replica.
	ReplicaID uint32
	// Mode is ModeHeartbeat or ModeSync.
	Mode uint8
	// Epoch is the dialer's current election epoch.
	Epoch uint64
	// FromSeq (ModeSync) is the follower's applied cursor: stream entries
	// with Seq > FromSeq, or cut over to a snapshot if they are gone.
	FromSeq uint64
}

// Type implements Message.
func (*Hello) Type() MsgType { return TypeHello }

func (m *Hello) appendBody(dst []byte) []byte {
	dst = appendU32(dst, m.ReplicaID)
	dst = append(dst, m.Mode)
	dst = appendU64(dst, m.Epoch)
	return appendU64(dst, m.FromSeq)
}

func (m *Hello) decodeBody(r *reader) {
	m.ReplicaID = r.u32()
	m.Mode = r.u8()
	m.Epoch = r.u64()
	m.FromSeq = r.u64()
}

// Heartbeat is the periodic liveness beacon on a heartbeat link. It also
// carries the sender's view of the election — receivers adopt a strictly
// higher epoch — and the sender's backlog position for lag observability.
type Heartbeat struct {
	ReplicaID uint32
	Epoch     uint64
	// Primary is the replica the sender believes leads Epoch.
	Primary uint32
	// Seq is the sender's latest backlog sequence (0 for followers).
	Seq uint64
}

// Type implements Message.
func (*Heartbeat) Type() MsgType { return TypeHeartbeat }

func (m *Heartbeat) appendBody(dst []byte) []byte {
	dst = appendU32(dst, m.ReplicaID)
	dst = appendU64(dst, m.Epoch)
	dst = appendU32(dst, m.Primary)
	return appendU64(dst, m.Seq)
}

func (m *Heartbeat) decodeBody(r *reader) {
	m.ReplicaID = r.u32()
	m.Epoch = r.u64()
	m.Primary = r.u32()
	m.Seq = r.u64()
}

// SyncEntry is one replicated backlog record: a warm-cache put (SyncPut)
// or a control-plane mutation (SyncCtl). Followers apply entries strictly
// in Seq order; the backlog assigns Seq under the same lock that orders
// the primary's cache inserts and mutations, so stream order is
// application order.
type SyncEntry struct {
	Seq uint64
	Op  uint8

	// SyncPut: the cached answer and its dependency footprint.
	Req   policy.Request
	Found bool
	Path  ad.Path
	// Links are the footprint's canonical link pairs; Terms the admitting
	// policy-term keys (routeserver's byLink/byTerm reverse index).
	Links [][2]ad.ID
	Terms []policy.Key

	// SyncCtl: the mutation, encoded like Control.
	CtlOp uint8
	A, B  ad.ID
	Cost  uint32
}

// Type implements Message.
func (*SyncEntry) Type() MsgType { return TypeSyncEntry }

func (m *SyncEntry) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Seq)
	dst = append(dst, m.Op)
	dst = appendRequest(dst, m.Req)
	found := uint8(0)
	if m.Found {
		found = 1
	}
	dst = append(dst, found)
	dst = appendPath(dst, m.Path)
	dst = appendU16(dst, uint16(len(m.Links)))
	for _, l := range m.Links {
		dst = appendU32(dst, uint32(l[0]))
		dst = appendU32(dst, uint32(l[1]))
	}
	dst = appendU16(dst, uint16(len(m.Terms)))
	for _, t := range m.Terms {
		dst = appendU32(dst, uint32(t.Advertiser))
		dst = appendU32(dst, t.Serial)
	}
	dst = append(dst, m.CtlOp)
	dst = appendU32(dst, uint32(m.A))
	dst = appendU32(dst, uint32(m.B))
	return appendU32(dst, m.Cost)
}

func (m *SyncEntry) decodeBody(r *reader) {
	m.Seq = r.u64()
	m.Op = r.u8()
	m.Req = readRequest(r)
	m.Found = r.u8() == 1
	m.Path = readPath(r)
	if n := int(r.u16()); n > 0 {
		m.Links = make([][2]ad.ID, 0, n)
		for i := 0; i < n; i++ {
			a := ad.ID(r.u32())
			b := ad.ID(r.u32())
			m.Links = append(m.Links, [2]ad.ID{a, b})
		}
	}
	if n := int(r.u16()); n > 0 {
		m.Terms = make([]policy.Key, 0, n)
		for i := 0; i < n; i++ {
			adv := ad.ID(r.u32())
			m.Terms = append(m.Terms, policy.Key{Advertiser: adv, Serial: r.u32()})
		}
	}
	m.CtlOp = r.u8()
	m.A = ad.ID(r.u32())
	m.B = ad.ID(r.u32())
	m.Cost = r.u32()
}

// SyncSnapshot brackets a full state transfer on a sync link. The opener
// (Done false) announces Count entries follow — the control history the
// follower is missing, then every current cache entry — and Seq is the
// backlog position the cut was taken at; the closer (Done true) tells the
// follower to advance its cursor to Seq and resume incremental entries.
type SyncSnapshot struct {
	Seq   uint64
	Count uint32
	Done  bool
}

// Type implements Message.
func (*SyncSnapshot) Type() MsgType { return TypeSyncSnapshot }

func (m *SyncSnapshot) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Seq)
	dst = appendU32(dst, m.Count)
	done := uint8(0)
	if m.Done {
		done = 1
	}
	return append(dst, done)
}

func (m *SyncSnapshot) decodeBody(r *reader) {
	m.Seq = r.u64()
	m.Count = r.u32()
	m.Done = r.u8() == 1
}

// Promote announces a self-promotion on heartbeat links: ReplicaID now
// leads Epoch. Receivers adopt a strictly higher epoch immediately
// instead of waiting a heartbeat interval.
type Promote struct {
	ReplicaID uint32
	Epoch     uint64
}

// Type implements Message.
func (*Promote) Type() MsgType { return TypePromote }

func (m *Promote) appendBody(dst []byte) []byte {
	dst = appendU32(dst, m.ReplicaID)
	return appendU64(dst, m.Epoch)
}

func (m *Promote) decodeBody(r *reader) {
	m.ReplicaID = r.u32()
	m.Epoch = r.u64()
}

// NotPrimary tells the peer it is talking to a follower. On a serving
// session it answers a Query/Control/DataOp (echoing the request ID) and
// names the current primary's client address so the client can redirect;
// on a sync link it refuses the stream (the dialer should re-resolve the
// primary). Addr is empty when the sender does not know a live primary.
type NotPrimary struct {
	ID        uint64
	PrimaryID uint32
	Addr      string
}

// Type implements Message.
func (*NotPrimary) Type() MsgType { return TypeNotPrimary }

func (m *NotPrimary) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.ID)
	dst = appendU32(dst, m.PrimaryID)
	return appendString(dst, m.Addr)
}

func (m *NotPrimary) decodeBody(r *reader) {
	m.ID = r.u64()
	m.PrimaryID = r.u32()
	m.Addr = readString(r)
}
