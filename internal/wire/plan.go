package wire

import (
	"repro/internal/ad"
)

// What-if planning messages: a daemon session may propose a batch of
// control mutations (Plan with Commit false), receive the predicted blast
// radius (PlanReply carrying the plan ID), and later apply it (Plan with
// Commit true naming the plan ID; the daemon refuses if its mutation epoch
// moved since the plan was computed). Like every serving message, requests
// carry a client-chosen ID echoed verbatim in the reply.

// PlanStep is one proposed control mutation. Op reuses the Control
// operation codes CtlFail, CtlRestore, and CtlPolicy (CtlInvalidate is not
// plannable: a full bump's blast radius is the whole cache by definition).
type PlanStep struct {
	Op   uint8
	A, B ad.ID
	Cost uint32
}

// Plan proposes a what-if batch (Commit false, Steps set) or asks to apply
// a previously computed plan (Commit true, PlanID set).
type Plan struct {
	ID     uint64
	Commit bool
	PlanID uint64
	Steps  []PlanStep
}

// Type implements Message.
func (*Plan) Type() MsgType { return TypePlan }

func (m *Plan) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.ID)
	commit := uint8(0)
	if m.Commit {
		commit = 1
	}
	dst = append(dst, commit)
	dst = appendU64(dst, m.PlanID)
	dst = appendU16(dst, uint16(len(m.Steps)))
	for _, st := range m.Steps {
		dst = append(dst, st.Op)
		dst = appendU32(dst, uint32(st.A))
		dst = appendU32(dst, uint32(st.B))
		dst = appendU32(dst, st.Cost)
	}
	return dst
}

func (m *Plan) decodeBody(r *reader) {
	m.ID = r.u64()
	m.Commit = r.u8() == 1
	m.PlanID = r.u64()
	n := int(r.u16())
	if r.err != nil {
		return
	}
	m.Steps = make([]PlanStep, 0, n)
	for i := 0; i < n; i++ {
		st := PlanStep{
			Op:   r.u8(),
			A:    ad.ID(r.u32()),
			B:    ad.ID(r.u32()),
			Cost: r.u32(),
		}
		if r.err != nil {
			m.Steps = nil
			return
		}
		m.Steps = append(m.Steps, st)
	}
	if len(m.Steps) == 0 {
		m.Steps = nil
	}
}

// PlanReply answers a Plan. For a proposal it carries the predicted blast
// radius: cache entries evicted vs retained, live flows torn down, pairs
// losing all routes, the re-synthesis bill (count plus a latency
// projection from the live synthesis histogram), and the shared
// gained/lost/rerouted/transit impact summary for the focus AD. For a
// commit it carries the observed eviction/retention/flush counts with
// Committed true. Code is CtlOK or CtlErr (Err holds the reason — e.g. the
// staleness refusal).
type PlanReply struct {
	ID   uint64
	Code uint8
	Err  string
	// PlanID names the parked plan a later commit may apply; Epoch is the
	// server state it was computed against.
	PlanID uint64
	Epoch  uint64
	// Committed distinguishes an applied plan's observed counts from a
	// proposal's predictions.
	Committed bool
	Evicted   uint64
	Retained  uint64
	Teardowns uint64
	// Flushed counts PG handle entries invalidated by committed link
	// failures (commit replies only).
	Flushed uint64
	// Unroutable counts pairs that lose all routes; Resynth is the
	// re-synthesis bill's count, with the projection priced from the live
	// histogram (nanoseconds; zero before any synthesis was observed).
	Unroutable     uint64
	Resynth        uint64
	MeanSynthNanos uint64
	ProjNanos      uint64
	// The shared impact summary (policytool's rendering path).
	Focus         ad.ID
	Gained        uint64
	Lost          uint64
	Rerouted      uint64
	TransitBefore uint64
	TransitAfter  uint64
	// Truncated reports that the shadow-synthesis budget cut the assessed
	// population short.
	Truncated bool
}

// OK reports whether the plan operation succeeded.
func (m *PlanReply) OK() bool { return m.Code == CtlOK }

// Type implements Message.
func (*PlanReply) Type() MsgType { return TypePlanReply }

func (m *PlanReply) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.ID)
	dst = append(dst, m.Code)
	dst = appendString(dst, m.Err)
	dst = appendU64(dst, m.PlanID)
	dst = appendU64(dst, m.Epoch)
	flags := uint8(0)
	if m.Committed {
		flags |= 1
	}
	if m.Truncated {
		flags |= 2
	}
	dst = append(dst, flags)
	for _, v := range []uint64{
		m.Evicted, m.Retained, m.Teardowns, m.Flushed,
		m.Unroutable, m.Resynth, m.MeanSynthNanos, m.ProjNanos,
	} {
		dst = appendU64(dst, v)
	}
	dst = appendU32(dst, uint32(m.Focus))
	for _, v := range []uint64{m.Gained, m.Lost, m.Rerouted, m.TransitBefore, m.TransitAfter} {
		dst = appendU64(dst, v)
	}
	return dst
}

func (m *PlanReply) decodeBody(r *reader) {
	m.ID = r.u64()
	m.Code = r.u8()
	m.Err = readString(r)
	m.PlanID = r.u64()
	m.Epoch = r.u64()
	flags := r.u8()
	m.Committed = flags&1 != 0
	m.Truncated = flags&2 != 0
	m.Evicted = r.u64()
	m.Retained = r.u64()
	m.Teardowns = r.u64()
	m.Flushed = r.u64()
	m.Unroutable = r.u64()
	m.Resynth = r.u64()
	m.MeanSynthNanos = r.u64()
	m.ProjNanos = r.u64()
	m.Focus = ad.ID(r.u32())
	m.Gained = r.u64()
	m.Lost = r.u64()
	m.Rerouted = r.u64()
	m.TransitBefore = r.u64()
	m.TransitAfter = r.u64()
}
