package wire_test

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/wire"
)

// ExampleMarshal round-trips an ORWG setup packet, the message that carries
// a full policy route and the claimed policy terms (paper §5.4.1).
func ExampleMarshal() {
	setup := &wire.Setup{
		Handle:   42,
		Req:      policy.Request{Src: 1, Dst: 9, Hour: 12},
		Route:    ad.Path{1, 4, 6, 9},
		TermKeys: []policy.Key{{Advertiser: 4, Serial: 1}, {Advertiser: 6, Serial: 2}},
	}
	buf := wire.Marshal(setup)
	msg, err := wire.Unmarshal(buf)
	if err != nil {
		panic(err)
	}
	decoded := msg.(*wire.Setup)
	fmt.Println(decoded.Type(), decoded.Route, "terms:", len(decoded.TermKeys), "bytes:", len(buf))
	// Output: setup AD1>AD4>AD6>AD9 terms: 2 bytes: 63
}

// ExampleData_HeaderLen contrasts the per-packet routing header of the two
// forwarding modes: handles versus full source routes.
func ExampleData_HeaderLen() {
	payload := make([]byte, 512)
	handle := &wire.Data{Mode: wire.ModeHandle, Handle: 42, Payload: payload}
	srcroute := &wire.Data{
		Mode:    wire.ModeSourceRoute,
		Req:     policy.Request{Src: 1, Dst: 9},
		Route:   ad.Path{1, 4, 6, 9},
		Payload: payload,
	}
	fmt.Println("handle header:", handle.HeaderLen(), "bytes")
	fmt.Println("source-route header:", srcroute.HeaderLen(), "bytes")
	// Output:
	// handle header: 29 bytes
	// source-route header: 45 bytes
}
