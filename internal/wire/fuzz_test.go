package wire

import (
	"math/rand"
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
)

// TestUnmarshalRandomBytesNeverPanics feeds Unmarshal random garbage. The
// decoder must either return a message or an error — never panic or hang —
// for any input, since nodes parse whatever arrives on a link.
func TestUnmarshalRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(512)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on %d random bytes: %v", trial, n, r)
				}
			}()
			_, _ = Unmarshal(buf)
		}()
	}
}

// TestUnmarshalMutatedValidMessages flips bytes in valid messages: decode
// must never panic, and when it succeeds, re-marshalling must not panic
// either (decoded values stay in-range for the encoder).
func TestUnmarshalMutatedValidMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	bases := [][]byte{
		Marshal(&DVUpdate{Routes: []DVRoute{{Dest: 1, Metric: 2, QOS: 1}}}),
		Marshal(&LSA{Origin: 3, Seq: 9, Links: []LSALink{{Neighbor: 4, Cost: 1, Up: true}}}),
		Marshal(&Setup{Handle: 7, Route: ad.Path{1, 2, 3}, TTLMillis: 250}),
		Marshal(&Data{Mode: ModeSourceRoute, Payload: []byte("abcdef")}),
		Marshal(&EGPUpdate{Routes: []EGPRoute{{Dest: 5, Metric: 2}}}),
		Marshal(&Refresh{Handle: 7, TTLMillis: 1000}),
		Marshal(&Teardown{Handle: 7, Reason: TeardownRepair}),
		Marshal(&Query{ID: 1, Req: policy.Request{Src: 1, Dst: 9}}),
		Marshal(&QueryReply{ID: 1, Found: true, Path: ad.Path{1, 4, 9}}),
		Marshal(&ControlReply{ID: 9, Code: CtlErr, Err: "no link"}),
		Marshal(&DataOpReply{ID: 5, Op: OpState, Text: "flows 3"}),
		Marshal(&StatsReply{ID: 10, Queries: 100}),
		Marshal(&Plan{ID: 12, Steps: []PlanStep{{Op: CtlFail, A: 2, B: 4}}}),
		Marshal(&PlanReply{ID: 12, Code: CtlOK, PlanID: 3, Evicted: 17, Retained: 203}),
	}
	for trial := 0; trial < 5000; trial++ {
		base := bases[rng.Intn(len(bases))]
		buf := append([]byte(nil), base...)
		// Flip 1-4 random bytes (keep the version byte valid half the
		// time so bodies actually get decoded).
		flips := 1 + rng.Intn(4)
		for i := 0; i < flips; i++ {
			pos := rng.Intn(len(buf))
			if pos == 0 && rng.Intn(2) == 0 {
				continue
			}
			buf[pos] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			m, err := Unmarshal(buf)
			if err == nil && m != nil {
				// Round-trip the decoded value; size limits can
				// legitimately panic only if counts exploded, which
				// decode bounds by the body length, so none expected.
				_ = Marshal(m)
			}
		}()
	}
}

// FuzzDecode is the native fuzz target over the full message set: Unmarshal
// must never panic, and any message it accepts must re-marshal and decode
// back to an identical byte string (encode/decode is a bijection on the
// accepted set).
func FuzzDecode(f *testing.F) {
	seeds := []Message{
		&DVUpdate{Routes: []DVRoute{{Dest: 1, Metric: 2, QOS: 1, Flags: FlagWithdraw}}},
		&PathVector{Routes: []PVRoute{{
			Dest: 7, Metric: 12, Path: ad.Path{1, 2, 7},
			AllowedSources: policy.SetOf(1, 3), UCI: policy.ClassSetOf(0, 1),
		}}},
		&LSA{Origin: 3, Seq: 9,
			Links: []LSALink{{Neighbor: 4, Cost: 1, Up: true}},
			Terms: []policy.Term{policy.OpenTerm(3, 1)}},
		&Setup{Handle: 7, Req: policy.Request{Src: 1, Dst: 3}, Route: ad.Path{1, 2, 3},
			TermKeys: []policy.Key{{Advertiser: 2, Serial: 1}}, TTLMillis: 250},
		&SetupReply{Handle: 7, Code: SetupNoState, FailedAt: 2},
		&Data{Handle: 7, Mode: ModeHandle, Payload: []byte("payload")},
		&Data{Mode: ModeSourceRoute, HopIndex: 1, Req: policy.Request{Src: 1, Dst: 3},
			Route: ad.Path{1, 2, 3}, Payload: []byte("payload")},
		&Teardown{Handle: 7, Reason: TeardownRepair},
		&EGPUpdate{Routes: []EGPRoute{{Dest: 5, Metric: 2}}},
		&Refresh{Handle: 7, TTLMillis: 1000},
		&Query{ID: 1, Req: policy.Request{Src: 1, Dst: 9, QOS: 1, UCI: 2, Hour: 13}},
		&QueryReply{ID: 1, Found: true, Path: ad.Path{1, 4, 9}},
		&Control{ID: 3, Op: CtlFail, A: 2, B: 4},
		&ControlReply{ID: 9, Code: CtlErr, Evicted: 5, Retained: 12, Err: "no link AD2-AD4"},
		&DataOp{ID: 5, Op: OpInstall, Req: policy.Request{Src: 1, Dst: 4}},
		&DataOpReply{ID: 5, Op: OpInstall, Code: DataOK, Handle: 7, Path: ad.Path{1, 2, 4}, Text: "ok"},
		&StatsQuery{ID: 10},
		&StatsReply{ID: 10, Gen: 1, Queries: 100, Hits: 80, Cached: 15,
			Accepted: 40, EvictedSlow: 1, Refused: 3},
		&Drain{ID: 11},
		&Hello{ReplicaID: 2, Mode: ModeSync, Epoch: 3, FromSeq: 77},
		&Heartbeat{ReplicaID: 1, Epoch: 3, Primary: 2, Seq: 120},
		&SyncEntry{Seq: 9, Op: SyncPut,
			Req: policy.Request{Src: 1, Dst: 9, QOS: 1}, Found: true,
			Path:  ad.Path{1, 4, 9},
			Links: [][2]ad.ID{{1, 4}, {4, 9}},
			Terms: []policy.Key{{Advertiser: 4, Serial: 2}}},
		&SyncEntry{Seq: 11, Op: SyncCtl, CtlOp: CtlFail, A: 2, B: 4},
		&SyncSnapshot{Seq: 40, Count: 17},
		&SyncSnapshot{Seq: 40, Done: true},
		&Promote{ReplicaID: 2, Epoch: 4},
		&NotPrimary{ID: 5, PrimaryID: 1, Addr: "127.0.0.1:4242"},
		&Plan{ID: 12, Steps: []PlanStep{{Op: CtlFail, A: 2, B: 4}, {Op: CtlPolicy, A: 7, Cost: 10}}},
		&Plan{ID: 13, Commit: true, PlanID: 3},
		&PlanReply{ID: 12, Code: CtlOK, PlanID: 3, Epoch: 9,
			Evicted: 17, Retained: 203, Teardowns: 4, Unroutable: 2, Resynth: 17,
			MeanSynthNanos: 12345, ProjNanos: 209865, Focus: 7,
			Gained: 1, Lost: 2, Rerouted: 5, TransitBefore: 40, TransitAfter: 38},
		&PlanReply{ID: 14, Code: CtlErr, Err: "plan 3 is stale", Committed: true},
	}
	for _, m := range seeds {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{Version, byte(TypeRefresh), 0, 0})
	f.Fuzz(func(t *testing.T, buf []byte) {
		m, err := Unmarshal(buf)
		if err != nil {
			return
		}
		re := Marshal(m)
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode of accepted %v failed: %v", m.Type(), err)
		}
		if string(Marshal(m2)) != string(re) {
			t.Fatalf("%v not a fixed point: % x vs % x", m.Type(), Marshal(m2), re)
		}
	})
}
