package cache

import "testing"

func TestLRUBasic(t *testing.T) {
	l := NewLRU[int, string](2)
	if _, ok := l.Get(1); ok {
		t.Fatal("empty LRU returned a value")
	}
	l.Put(1, "a")
	l.Put(2, "b")
	if v, ok := l.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	// 1 is now most recent; inserting 3 must evict 2.
	if evicted := l.Put(3, "c"); !evicted {
		t.Fatal("Put over capacity did not evict")
	}
	if _, ok := l.Get(2); ok {
		t.Fatal("LRU kept the least-recently-used entry")
	}
	if _, ok := l.Get(1); !ok {
		t.Fatal("LRU evicted the most-recently-used entry")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if l.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", l.Evictions())
	}
}

func TestLRUReplaceDoesNotEvict(t *testing.T) {
	l := NewLRU[int, int](2)
	l.Put(1, 10)
	l.Put(2, 20)
	if evicted := l.Put(1, 11); evicted {
		t.Fatal("replacing an existing key evicted")
	}
	if v, _ := l.Get(1); v != 11 {
		t.Fatalf("value not replaced: %d", v)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestLRUUnbounded(t *testing.T) {
	l := NewLRU[int, int](0)
	for i := 0; i < 1000; i++ {
		if evicted := l.Put(i, i); evicted {
			t.Fatal("unbounded LRU evicted")
		}
	}
	if l.Len() != 1000 || l.Evictions() != 0 {
		t.Fatalf("Len=%d Evictions=%d", l.Len(), l.Evictions())
	}
}

func TestLRUPeekDoesNotPromote(t *testing.T) {
	l := NewLRU[int, int](2)
	l.Put(1, 1)
	l.Put(2, 2)
	l.Peek(1)   // must not promote
	l.Put(3, 3) // evicts 1, the true LRU
	if _, ok := l.Peek(1); ok {
		t.Fatal("Peek promoted the entry")
	}
	if _, ok := l.Peek(2); !ok {
		t.Fatal("wrong entry evicted")
	}
}

func TestLRUDeleteAndPurge(t *testing.T) {
	l := NewLRU[int, int](4)
	for i := 0; i < 4; i++ {
		l.Put(i, i)
	}
	if !l.Delete(2) || l.Delete(2) {
		t.Fatal("Delete semantics wrong")
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	// Exercise the list after deletion: fill, evict, re-read.
	l.Put(9, 9)
	l.Put(10, 10)
	if l.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", l.Evictions())
	}
	l.Purge()
	if l.Len() != 0 {
		t.Fatalf("Len after Purge = %d", l.Len())
	}
	if l.Evictions() != 1 {
		t.Fatal("Purge must preserve the eviction counter")
	}
	l.Put(1, 1)
	if v, ok := l.Get(1); !ok || v != 1 {
		t.Fatal("LRU unusable after Purge")
	}
}

func TestLRUOrderStress(t *testing.T) {
	// Deterministic access pattern; verify the survivor set matches a
	// straightforward reference implementation.
	const capn = 8
	l := NewLRU[int, int](capn)
	var order []int // reference recency, most recent first
	touch := func(k int) {
		for i, x := range order {
			if x == k {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
		order = append([]int{k}, order...)
		if len(order) > capn {
			order = order[:capn]
		}
	}
	for i := 0; i < 200; i++ {
		k := (i * 7) % 20
		if i%3 == 0 {
			if _, ok := l.Get(k); ok {
				touch(k)
			}
		} else {
			l.Put(k, i)
			touch(k)
		}
	}
	if l.Len() != len(order) {
		t.Fatalf("Len = %d, reference = %d", l.Len(), len(order))
	}
	for _, k := range order {
		if _, ok := l.Peek(k); !ok {
			t.Fatalf("reference survivor %d missing", k)
		}
	}
}
