// Package cache provides the fixed-capacity LRU map shared by the
// synthesis strategies' demand-fill tables and, shard by shard, by the
// route-server serving cache. It is deliberately minimal: a map plus an
// intrusive recency list, no locking (callers shard and lock), and an
// eviction counter so strategies can report cache pressure.
package cache

// LRU is a fixed-capacity map with least-recently-used eviction. A
// capacity <= 0 means unbounded (no eviction ever happens). The zero value
// is not usable; construct with NewLRU. LRU is not safe for concurrent
// use.
type LRU[K comparable, V any] struct {
	capacity  int
	entries   map[K]*entry[K, V]
	head      *entry[K, V] // most recently used
	tail      *entry[K, V] // least recently used
	evictions int

	// OnEvict, if non-nil, is invoked with each entry dropped for
	// capacity (not for Delete or Purge), before Put returns.
	OnEvict func(K, V)
}

type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// NewLRU returns an empty LRU holding at most capacity entries
// (capacity <= 0 = unbounded).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	return &LRU[K, V]{
		capacity: capacity,
		entries:  make(map[K]*entry[K, V]),
	}
}

// unlink removes e from the recency list.
func (l *LRU[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (l *LRU[K, V]) pushFront(e *entry[K, V]) {
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

// Get returns the value for k and promotes it to most recently used.
func (l *LRU[K, V]) Get(k K) (V, bool) {
	e, ok := l.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	if l.head != e {
		l.unlink(e)
		l.pushFront(e)
	}
	return e.val, true
}

// Peek returns the value for k without touching recency.
func (l *LRU[K, V]) Peek(k K) (V, bool) {
	e, ok := l.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	return e.val, true
}

// Put inserts or replaces the value for k, promoting it to most recently
// used, and reports whether an unrelated entry was evicted to make room.
func (l *LRU[K, V]) Put(k K, v V) (evicted bool) {
	if e, ok := l.entries[k]; ok {
		e.val = v
		if l.head != e {
			l.unlink(e)
			l.pushFront(e)
		}
		return false
	}
	e := &entry[K, V]{key: k, val: v}
	l.entries[k] = e
	l.pushFront(e)
	if l.capacity > 0 && len(l.entries) > l.capacity {
		victim := l.tail
		l.unlink(victim)
		delete(l.entries, victim.key)
		l.evictions++
		if l.OnEvict != nil {
			l.OnEvict(victim.key, victim.val)
		}
		return true
	}
	return false
}

// Delete removes k if present.
func (l *LRU[K, V]) Delete(k K) bool {
	e, ok := l.entries[k]
	if !ok {
		return false
	}
	l.unlink(e)
	delete(l.entries, k)
	return true
}

// Purge drops every entry. The eviction counter is preserved: purges are
// invalidations, not capacity pressure.
func (l *LRU[K, V]) Purge() {
	l.entries = make(map[K]*entry[K, V])
	l.head, l.tail = nil, nil
}

// Keys returns the live keys in recency order, most recently used first.
// The order is deterministic: it reflects only the sequence of Put/Get
// calls, never map iteration.
func (l *LRU[K, V]) Keys() []K {
	out := make([]K, 0, len(l.entries))
	for e := l.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

// Range calls fn for each live entry in recency order (most recently used
// first) without touching recency, stopping early if fn returns false. fn
// must not mutate the LRU.
func (l *LRU[K, V]) Range(fn func(K, V) bool) {
	for e := l.head; e != nil; e = e.next {
		if !fn(e.key, e.val) {
			return
		}
	}
}

// Len returns the number of live entries.
func (l *LRU[K, V]) Len() int { return len(l.entries) }

// Cap returns the configured capacity (<= 0 = unbounded).
func (l *LRU[K, V]) Cap() int { return l.capacity }

// Evictions returns the cumulative count of capacity evictions.
func (l *LRU[K, V]) Evictions() int { return l.evictions }
