// Package ad defines Administrative Domain (AD) identities, classes, and the
// AD-level graph on which all inter-AD routing protocols in this repository
// operate.
//
// Following Breslau & Estrin (SIGCOMM 1990) §4.1, an inter-AD route is a
// sequence of ADs: routing internal to a domain is abstracted away entirely.
// The graph therefore has one node per AD and one edge per inter-AD
// connection (a "virtual gateway" in ORWG terminology).
package ad

import (
	"fmt"
	"sort"
)

// ID identifies an Administrative Domain. IDs are dense small integers
// assigned by the topology builder; 0 is reserved as Invalid.
type ID uint32

// Invalid is the zero ID; no real AD ever has it.
const Invalid ID = 0

// String implements fmt.Stringer.
func (id ID) String() string {
	if id == Invalid {
		return "AD?"
	}
	return fmt.Sprintf("AD%d", uint32(id))
}

// Class categorizes an AD by its transit behaviour (paper §2.1).
type Class uint8

const (
	// Stub ADs originate and sink traffic but never carry transit traffic.
	Stub Class = iota
	// MultihomedStub ADs have more than one inter-AD connection but still
	// disallow all transit traffic.
	MultihomedStub
	// Transit ADs exist primarily to carry traffic for other ADs
	// (backbones and regionals).
	Transit
	// Hybrid (limited-transit) ADs support end systems as well as limited
	// forms of transit for selected neighbors.
	Hybrid
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Stub:
		return "stub"
	case MultihomedStub:
		return "multihomed-stub"
	case Transit:
		return "transit"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Level places an AD in the hierarchy of the paper's topology model (§2.1).
// Lower numeric values are higher in the hierarchy.
type Level uint8

const (
	// Backbone is a long-haul wide area network.
	Backbone Level = iota
	// Regional networks connect metropolitan/campus nets to backbones.
	Regional
	// Metro networks sit between regionals and campuses.
	Metro
	// Campus networks are the leaves of the hierarchy.
	Campus
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Backbone:
		return "backbone"
	case Regional:
		return "regional"
	case Metro:
		return "metro"
	case Campus:
		return "campus"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// LinkClass categorizes an inter-AD link per the paper's topology model:
// the hierarchy is "augmented with special purpose lateral links ... as well
// as special purpose bypass links" (§2.1).
type LinkClass uint8

const (
	// Hierarchical links connect a child AD to its parent (campus→metro,
	// metro→regional, regional→backbone) or two backbones.
	Hierarchical LinkClass = iota
	// Lateral links connect two ADs at the same level that are not
	// hierarchically related (e.g. two regionals, or two campuses).
	Lateral
	// Bypass links skip levels (e.g. campus directly to backbone).
	Bypass
)

// String implements fmt.Stringer.
func (lc LinkClass) String() string {
	switch lc {
	case Hierarchical:
		return "hierarchical"
	case Lateral:
		return "lateral"
	case Bypass:
		return "bypass"
	default:
		return fmt.Sprintf("LinkClass(%d)", uint8(lc))
	}
}

// Info is the static description of one AD.
type Info struct {
	ID    ID
	Name  string // human-readable label, unique within a graph
	Class Class
	Level Level
}

// Link is an undirected inter-AD connection. A and B are always stored with
// A < B so a link has a canonical form.
type Link struct {
	A, B  ID
	Class LinkClass
	// DelayMicros is the one-way propagation delay used by the simulator.
	DelayMicros int64
	// BandwidthBps is the link rate in bits per second; messages incur a
	// serialization delay of size/bandwidth on top of propagation. Zero
	// disables serialization modelling (propagation only).
	BandwidthBps int64
	// Cost is the routing metric advertised for traversing the link.
	Cost uint32
}

// Canonical returns the link with endpoints ordered A < B.
func (l Link) Canonical() Link {
	if l.A > l.B {
		l.A, l.B = l.B, l.A
	}
	return l
}

// Other returns the far endpoint of the link relative to id, and whether id
// is an endpoint at all.
func (l Link) Other(id ID) (ID, bool) {
	switch id {
	case l.A:
		return l.B, true
	case l.B:
		return l.A, true
	default:
		return Invalid, false
	}
}

// Graph is the AD-level topology: a set of ADs and undirected links.
// The zero value is an empty graph ready for use via AddAD/AddLink.
type Graph struct {
	ads    map[ID]Info
	adj    map[ID][]Link // links incident to each AD
	links  map[[2]ID]Link
	nextID ID
	// sortedAdj caches each AD's neighbor IDs in ascending order. It is
	// maintained incrementally by AddLink/RemoveLink (never lazily), so
	// concurrent readers of a finished graph need no synchronization.
	sortedAdj map[ID][]ID
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		ads:       make(map[ID]Info),
		adj:       make(map[ID][]Link),
		links:     make(map[[2]ID]Link),
		nextID:    1,
		sortedAdj: make(map[ID][]ID),
	}
}

// AddAD inserts a new AD with the next free ID and returns it.
func (g *Graph) AddAD(name string, class Class, level Level) ID {
	id := g.nextID
	g.nextID++
	g.ads[id] = Info{ID: id, Name: name, Class: class, Level: level}
	return id
}

// AddADWithID inserts an AD with a caller-chosen ID. It returns an error if
// the ID is Invalid or already in use.
func (g *Graph) AddADWithID(id ID, name string, class Class, level Level) error {
	if id == Invalid {
		return fmt.Errorf("ad: cannot add AD with the invalid ID")
	}
	if _, ok := g.ads[id]; ok {
		return fmt.Errorf("ad: duplicate AD ID %v", id)
	}
	g.ads[id] = Info{ID: id, Name: name, Class: class, Level: level}
	if id >= g.nextID {
		g.nextID = id + 1
	}
	return nil
}

// AddLink inserts an undirected link. It returns an error if either endpoint
// is unknown, the endpoints are equal, or the link already exists.
func (g *Graph) AddLink(l Link) error {
	l = l.Canonical()
	if l.A == l.B {
		return fmt.Errorf("ad: self-link at %v", l.A)
	}
	if _, ok := g.ads[l.A]; !ok {
		return fmt.Errorf("ad: link endpoint %v unknown", l.A)
	}
	if _, ok := g.ads[l.B]; !ok {
		return fmt.Errorf("ad: link endpoint %v unknown", l.B)
	}
	key := [2]ID{l.A, l.B}
	if _, ok := g.links[key]; ok {
		return fmt.Errorf("ad: duplicate link %v-%v", l.A, l.B)
	}
	if l.Cost == 0 {
		l.Cost = 1
	}
	g.links[key] = l
	g.adj[l.A] = append(g.adj[l.A], l)
	g.adj[l.B] = append(g.adj[l.B], l)
	g.insertNeighbor(l.A, l.B)
	g.insertNeighbor(l.B, l.A)
	return nil
}

// insertNeighbor keeps the sorted-adjacency cache ordered as links are added.
func (g *Graph) insertNeighbor(id, nb ID) {
	if g.sortedAdj == nil {
		g.sortedAdj = make(map[ID][]ID)
	}
	s := g.sortedAdj[id]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= nb })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = nb
	g.sortedAdj[id] = s
}

// removeNeighbor drops nb from id's sorted-adjacency cache.
func (g *Graph) removeNeighbor(id, nb ID) {
	s := g.sortedAdj[id]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= nb })
	if i < len(s) && s[i] == nb {
		g.sortedAdj[id] = append(s[:i], s[i+1:]...)
	}
}

// RemoveLink deletes the link between a and b if present, reporting whether
// it existed. It is used by failure-injection scenarios.
func (g *Graph) RemoveLink(a, b ID) bool {
	l := Link{A: a, B: b}.Canonical()
	key := [2]ID{l.A, l.B}
	if _, ok := g.links[key]; !ok {
		return false
	}
	delete(g.links, key)
	filter := func(id ID) {
		adj := g.adj[id][:0]
		for _, x := range g.adj[id] {
			if x.Canonical() != l && (x.A != l.A || x.B != l.B) {
				adj = append(adj, x)
			}
		}
		g.adj[id] = adj
	}
	filter(l.A)
	filter(l.B)
	g.removeNeighbor(l.A, l.B)
	g.removeNeighbor(l.B, l.A)
	return true
}

// AD returns the Info for id and whether it exists.
func (g *Graph) AD(id ID) (Info, bool) {
	info, ok := g.ads[id]
	return info, ok
}

// HasLink reports whether an undirected link between a and b exists.
func (g *Graph) HasLink(a, b ID) bool {
	l := Link{A: a, B: b}.Canonical()
	_, ok := g.links[[2]ID{l.A, l.B}]
	return ok
}

// LinkBetween returns the link between a and b, if any.
func (g *Graph) LinkBetween(a, b ID) (Link, bool) {
	l := Link{A: a, B: b}.Canonical()
	link, ok := g.links[[2]ID{l.A, l.B}]
	return link, ok
}

// Neighbors returns the IDs adjacent to id in ascending order. The returned
// slice is the graph's cached adjacency index: callers must not modify it.
// Use NeighborsCopy for a private slice.
func (g *Graph) Neighbors(id ID) []ID {
	return g.sortedAdj[id]
}

// NeighborsCopy returns a freshly allocated copy of Neighbors(id).
func (g *Graph) NeighborsCopy(id ID) []ID {
	return append([]ID(nil), g.sortedAdj[id]...)
}

// IncidentLinks returns the links incident to id, sorted by far endpoint.
func (g *Graph) IncidentLinks(id ID) []Link {
	adj := g.adj[id]
	out := make([]Link, len(adj))
	copy(out, adj)
	sort.Slice(out, func(i, j int) bool {
		oi, _ := out[i].Other(id)
		oj, _ := out[j].Other(id)
		return oi < oj
	})
	return out
}

// ADs returns all AD infos sorted by ID.
func (g *Graph) ADs() []Info {
	out := make([]Info, 0, len(g.ads))
	for _, info := range g.ads {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns all AD IDs in ascending order.
func (g *Graph) IDs() []ID {
	out := make([]ID, 0, len(g.ads))
	for id := range g.ads {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Links returns all links sorted by (A, B).
func (g *Graph) Links() []Link {
	out := make([]Link, 0, len(g.links))
	for _, l := range g.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// NumADs returns the number of ADs in the graph.
func (g *Graph) NumADs() int { return len(g.ads) }

// NumLinks returns the number of undirected links in the graph.
func (g *Graph) NumLinks() int { return len(g.links) }

// Degree returns the number of links incident to id.
func (g *Graph) Degree(id ID) int { return len(g.adj[id]) }

// Clone returns a deep copy of the graph. Protocol instances clone the graph
// so failure injection in one scenario cannot leak into another.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	c.nextID = g.nextID
	for id, info := range g.ads {
		c.ads[id] = info
	}
	for key, l := range g.links {
		c.links[key] = l
		c.adj[l.A] = append(c.adj[l.A], l)
		c.adj[l.B] = append(c.adj[l.B], l)
	}
	for id, s := range g.sortedAdj {
		c.sortedAdj[id] = append([]ID(nil), s...)
	}
	return c
}

// Connected reports whether the graph is connected (ignoring an empty graph,
// which is considered connected).
func (g *Graph) Connected() bool {
	if len(g.ads) == 0 {
		return true
	}
	var start ID
	for id := range g.ads {
		start = id
		break
	}
	seen := map[ID]bool{start: true}
	queue := []ID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range g.adj[cur] {
			other, _ := l.Other(cur)
			if !seen[other] {
				seen[other] = true
				queue = append(queue, other)
			}
		}
	}
	return len(seen) == len(g.ads)
}

// IsTree reports whether the graph is connected and acyclic — the topology
// restriction EGP places on the inter-AD graph (paper §3).
func (g *Graph) IsTree() bool {
	return g.Connected() && g.NumLinks() == g.NumADs()-1
}

// Path is an AD-level route: an ordered sequence of AD IDs from source to
// destination, inclusive. This is the paper's level of abstraction for an
// inter-AD route (§4.1).
type Path []ID

// Valid reports whether every consecutive pair in the path is linked in g and
// the path contains no repeated AD (i.e. is loop-free).
func (p Path) Valid(g *Graph) bool {
	if len(p) == 0 {
		return false
	}
	seen := make(map[ID]bool, len(p))
	for i, id := range p {
		if seen[id] {
			return false
		}
		seen[id] = true
		if i > 0 && !g.HasLink(p[i-1], id) {
			return false
		}
	}
	return true
}

// LoopFree reports whether the path visits no AD twice.
func (p Path) LoopFree() bool {
	seen := make(map[ID]bool, len(p))
	for _, id := range p {
		if seen[id] {
			return false
		}
		seen[id] = true
	}
	return true
}

// Source returns the first AD of the path, or Invalid if empty.
func (p Path) Source() ID {
	if len(p) == 0 {
		return Invalid
	}
	return p[0]
}

// Dest returns the last AD of the path, or Invalid if empty.
func (p Path) Dest() ID {
	if len(p) == 0 {
		return Invalid
	}
	return p[len(p)-1]
}

// Hops returns the number of inter-AD hops (len-1), or 0 for empty paths.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Cost sums the link costs along the path using graph g. The second return
// is false if any consecutive pair is not linked.
func (p Path) Cost(g *Graph) (uint32, bool) {
	var total uint32
	for i := 1; i < len(p); i++ {
		l, ok := g.LinkBetween(p[i-1], p[i])
		if !ok {
			return 0, false
		}
		total += l.Cost
	}
	return total, true
}

// CrossesLink reports whether the path traverses the a-b adjacency in
// either direction.
func (p Path) CrossesLink(a, b ID) bool {
	for i := 1; i < len(p); i++ {
		if (p[i-1] == a && p[i] == b) || (p[i-1] == b && p[i] == a) {
			return true
		}
	}
	return false
}

// Transits reports whether id appears as a transit (interior) AD on the
// path — endpoints do not count.
func (p Path) Transits(id ID) bool {
	for i := 1; i < len(p)-1; i++ {
		if p[i] == id {
			return true
		}
	}
	return false
}

// Contains reports whether the path visits id.
func (p Path) Contains(id ID) bool {
	for _, x := range p {
		if x == id {
			return true
		}
	}
	return false
}

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// Reverse returns the path in the opposite direction.
func (p Path) Reverse() Path {
	out := make(Path, len(p))
	for i, id := range p {
		out[len(p)-1-i] = id
	}
	return out
}

// String renders the path as "AD1>AD2>AD3".
func (p Path) String() string {
	if len(p) == 0 {
		return "<empty>"
	}
	s := ""
	for i, id := range p {
		if i > 0 {
			s += ">"
		}
		s += id.String()
	}
	return s
}
