package ad

import (
	"testing"
	"testing/quick"
)

func buildTriangle(t *testing.T) (*Graph, ID, ID, ID) {
	t.Helper()
	g := NewGraph()
	a := g.AddAD("a", Transit, Backbone)
	b := g.AddAD("b", Transit, Regional)
	c := g.AddAD("c", Stub, Campus)
	for _, l := range []Link{
		{A: a, B: b, Class: Hierarchical, Cost: 1},
		{A: b, B: c, Class: Hierarchical, Cost: 2},
		{A: a, B: c, Class: Bypass, Cost: 5},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatalf("AddLink(%v): %v", l, err)
		}
	}
	return g, a, b, c
}

func TestAddAD(t *testing.T) {
	g := NewGraph()
	a := g.AddAD("first", Stub, Campus)
	b := g.AddAD("second", Transit, Backbone)
	if a == b {
		t.Fatalf("AddAD returned duplicate IDs: %v", a)
	}
	if a == Invalid || b == Invalid {
		t.Fatalf("AddAD returned Invalid ID")
	}
	info, ok := g.AD(a)
	if !ok {
		t.Fatalf("AD(%v) not found", a)
	}
	if info.Name != "first" || info.Class != Stub || info.Level != Campus {
		t.Errorf("AD(%v) = %+v, want first/stub/campus", a, info)
	}
}

func TestAddADWithID(t *testing.T) {
	g := NewGraph()
	if err := g.AddADWithID(10, "ten", Transit, Backbone); err != nil {
		t.Fatalf("AddADWithID(10): %v", err)
	}
	if err := g.AddADWithID(10, "dup", Stub, Campus); err == nil {
		t.Error("AddADWithID duplicate: want error, got nil")
	}
	if err := g.AddADWithID(Invalid, "zero", Stub, Campus); err == nil {
		t.Error("AddADWithID(Invalid): want error, got nil")
	}
	// nextID must advance past explicit IDs.
	next := g.AddAD("next", Stub, Campus)
	if next <= 10 {
		t.Errorf("AddAD after explicit ID 10 returned %v, want > 10", next)
	}
}

func TestAddLinkErrors(t *testing.T) {
	g := NewGraph()
	a := g.AddAD("a", Stub, Campus)
	b := g.AddAD("b", Stub, Campus)
	if err := g.AddLink(Link{A: a, B: a}); err == nil {
		t.Error("self-link: want error")
	}
	if err := g.AddLink(Link{A: a, B: 999}); err == nil {
		t.Error("unknown endpoint: want error")
	}
	if err := g.AddLink(Link{A: a, B: b}); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	// Duplicate in either orientation must fail.
	if err := g.AddLink(Link{A: b, B: a}); err == nil {
		t.Error("duplicate reversed link: want error")
	}
}

func TestLinkCostDefaults(t *testing.T) {
	g := NewGraph()
	a := g.AddAD("a", Stub, Campus)
	b := g.AddAD("b", Stub, Campus)
	if err := g.AddLink(Link{A: a, B: b}); err != nil {
		t.Fatal(err)
	}
	l, ok := g.LinkBetween(a, b)
	if !ok {
		t.Fatal("LinkBetween: missing")
	}
	if l.Cost != 1 {
		t.Errorf("default link cost = %d, want 1", l.Cost)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g, a, b, c := buildTriangle(t)
	n := g.Neighbors(a)
	if len(n) != 2 || n[0] != b || n[1] != c {
		t.Errorf("Neighbors(%v) = %v, want [%v %v]", a, n, b, c)
	}
}

func TestNeighborsCacheTracksMutations(t *testing.T) {
	// The sorted-adjacency cache must stay correct across AddLink and
	// RemoveLink, including out-of-order insertions.
	g := NewGraph()
	a := g.AddAD("a", Transit, Backbone)
	var others []ID
	for i := 0; i < 5; i++ {
		others = append(others, g.AddAD("x", Stub, Campus))
	}
	// Link in a scrambled order; Neighbors must still come out ascending.
	for _, i := range []int{3, 0, 4, 2, 1} {
		if err := g.AddLink(Link{A: a, B: others[i]}); err != nil {
			t.Fatal(err)
		}
	}
	n := g.Neighbors(a)
	if len(n) != 5 {
		t.Fatalf("Neighbors = %v", n)
	}
	for i := 1; i < len(n); i++ {
		if n[i-1] >= n[i] {
			t.Fatalf("Neighbors not ascending: %v", n)
		}
	}
	if !g.RemoveLink(a, others[2]) {
		t.Fatal("RemoveLink failed")
	}
	n = g.Neighbors(a)
	if len(n) != 4 {
		t.Fatalf("Neighbors after removal = %v", n)
	}
	for _, id := range n {
		if id == others[2] {
			t.Errorf("removed neighbor still cached: %v", n)
		}
	}
	if got := g.Neighbors(others[2]); len(got) != 0 {
		t.Errorf("far endpoint still caches removed link: %v", got)
	}
}

func TestNeighborsCopyIsPrivate(t *testing.T) {
	g, a, b, c := buildTriangle(t)
	cp := g.NeighborsCopy(a)
	if len(cp) != 2 {
		t.Fatalf("NeighborsCopy = %v", cp)
	}
	cp[0] = 999
	if n := g.Neighbors(a); n[0] != b || n[1] != c {
		t.Errorf("mutating NeighborsCopy corrupted the cache: %v", n)
	}
}

func TestCloneCopiesNeighborCache(t *testing.T) {
	g, a, b, _ := buildTriangle(t)
	clone := g.Clone()
	if !clone.RemoveLink(a, b) {
		t.Fatal("RemoveLink on clone failed")
	}
	if n := g.Neighbors(a); len(n) != 2 {
		t.Errorf("clone mutation leaked into original: %v", n)
	}
	if n := clone.Neighbors(a); len(n) != 1 {
		t.Errorf("clone Neighbors = %v, want 1 entry", n)
	}
}

func TestRemoveLink(t *testing.T) {
	g, a, b, _ := buildTriangle(t)
	if !g.RemoveLink(b, a) { // reversed order must still match
		t.Fatal("RemoveLink(b,a) = false, want true")
	}
	if g.HasLink(a, b) {
		t.Error("HasLink after removal = true")
	}
	if g.RemoveLink(a, b) {
		t.Error("second RemoveLink = true, want false")
	}
	if got := g.Degree(a); got != 1 {
		t.Errorf("Degree(a) after removal = %d, want 1", got)
	}
	if got := g.NumLinks(); got != 2 {
		t.Errorf("NumLinks after removal = %d, want 2", got)
	}
}

func TestConnectedAndTree(t *testing.T) {
	g, a, b, c := buildTriangle(t)
	if !g.Connected() {
		t.Error("triangle not connected")
	}
	if g.IsTree() {
		t.Error("triangle reported as tree")
	}
	g.RemoveLink(a, c)
	if !g.IsTree() {
		t.Error("path graph not reported as tree")
	}
	g.RemoveLink(a, b)
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	_ = c
}

func TestCloneIsolation(t *testing.T) {
	g, a, b, _ := buildTriangle(t)
	c := g.Clone()
	c.RemoveLink(a, b)
	if !g.HasLink(a, b) {
		t.Error("RemoveLink on clone affected original")
	}
	if c.NumADs() != g.NumADs() {
		t.Errorf("clone NumADs = %d, want %d", c.NumADs(), g.NumADs())
	}
	// Adding to the clone must not collide with original IDs.
	n := c.AddAD("new", Stub, Campus)
	if _, ok := g.AD(n); ok {
		t.Error("AddAD on clone leaked into original")
	}
}

func TestPathValid(t *testing.T) {
	g, a, b, c := buildTriangle(t)
	cases := []struct {
		name string
		p    Path
		want bool
	}{
		{"direct", Path{a, b}, true},
		{"two-hop", Path{a, b, c}, true},
		{"bypass", Path{a, c}, true},
		{"empty", Path{}, false},
		{"loop", Path{a, b, a}, false},
		{"nonadjacent", Path{a, 99}, false},
		{"single", Path{a}, true},
	}
	for _, tc := range cases {
		if got := tc.p.Valid(g); got != tc.want {
			t.Errorf("%s: Valid(%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
}

func TestPathCost(t *testing.T) {
	g, a, b, c := buildTriangle(t)
	cost, ok := Path{a, b, c}.Cost(g)
	if !ok || cost != 3 {
		t.Errorf("Cost(a,b,c) = %d,%v want 3,true", cost, ok)
	}
	cost, ok = Path{a, c}.Cost(g)
	if !ok || cost != 5 {
		t.Errorf("Cost(a,c) = %d,%v want 5,true", cost, ok)
	}
	if _, ok := (Path{a, 77}).Cost(g); ok {
		t.Error("Cost of invalid path reported ok")
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{3, 1, 2}
	if p.Source() != 3 || p.Dest() != 2 || p.Hops() != 2 {
		t.Errorf("Source/Dest/Hops = %v/%v/%d", p.Source(), p.Dest(), p.Hops())
	}
	if !p.Contains(1) || p.Contains(9) {
		t.Error("Contains wrong")
	}
	r := p.Reverse()
	if !r.Equal(Path{2, 1, 3}) {
		t.Errorf("Reverse = %v", r)
	}
	if !p.Equal(p.Clone()) {
		t.Error("Clone not equal")
	}
	var empty Path
	if empty.Source() != Invalid || empty.Dest() != Invalid || empty.Hops() != 0 {
		t.Error("empty path helpers wrong")
	}
	if empty.String() != "<empty>" {
		t.Errorf("empty String = %q", empty.String())
	}
	if got := (Path{1, 2}).String(); got != "AD1>AD2" {
		t.Errorf("String = %q, want AD1>AD2", got)
	}
}

func TestPropertyReverseTwiceIsIdentity(t *testing.T) {
	f := func(ids []uint32) bool {
		p := make(Path, len(ids))
		for i, x := range ids {
			p[i] = ID(x)
		}
		return p.Reverse().Reverse().Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCanonicalLink(t *testing.T) {
	f := func(a, b uint32) bool {
		l := Link{A: ID(a), B: ID(b)}.Canonical()
		return l.A <= l.B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyLoopFreeMatchesValidOnCompleteGraph(t *testing.T) {
	// On a complete graph, Valid reduces to LoopFree for non-empty paths.
	g := NewGraph()
	var ids []ID
	for i := 0; i < 6; i++ {
		ids = append(ids, g.AddAD("n", Stub, Campus))
	}
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if err := g.AddLink(Link{A: ids[i], B: ids[j]}); err != nil {
				t.Fatal(err)
			}
		}
	}
	f := func(idx []uint8) bool {
		if len(idx) == 0 {
			return true
		}
		p := make(Path, 0, len(idx))
		for _, x := range idx {
			p = append(p, ids[int(x)%len(ids)])
		}
		return p.Valid(g) == p.LoopFree()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if Invalid.String() != "AD?" {
		t.Errorf("Invalid.String() = %q", Invalid.String())
	}
	if ID(7).String() != "AD7" {
		t.Errorf("ID(7).String() = %q", ID(7).String())
	}
	for _, c := range []Class{Stub, MultihomedStub, Transit, Hybrid, Class(200)} {
		if c.String() == "" {
			t.Errorf("Class(%d).String() empty", c)
		}
	}
	for _, l := range []Level{Backbone, Regional, Metro, Campus, Level(200)} {
		if l.String() == "" {
			t.Errorf("Level(%d).String() empty", l)
		}
	}
	for _, lc := range []LinkClass{Hierarchical, Lateral, Bypass, LinkClass(200)} {
		if lc.String() == "" {
			t.Errorf("LinkClass(%d).String() empty", lc)
		}
	}
}

func TestLinkOther(t *testing.T) {
	l := Link{A: 1, B: 2}
	if o, ok := l.Other(1); !ok || o != 2 {
		t.Errorf("Other(1) = %v,%v", o, ok)
	}
	if o, ok := l.Other(2); !ok || o != 1 {
		t.Errorf("Other(2) = %v,%v", o, ok)
	}
	if _, ok := l.Other(3); ok {
		t.Error("Other(3) should be false")
	}
}

func TestGraphAccessors(t *testing.T) {
	g, a, b, c := buildTriangle(t)
	links := g.Links()
	if len(links) != 3 {
		t.Fatalf("Links = %d", len(links))
	}
	for i := 1; i < len(links); i++ {
		if links[i-1].A > links[i].A || (links[i-1].A == links[i].A && links[i-1].B > links[i].B) {
			t.Error("Links not sorted")
		}
	}
	infos := g.ADs()
	if len(infos) != 3 || infos[0].ID != a || infos[2].ID != c {
		t.Errorf("ADs = %v", infos)
	}
	ids := g.IDs()
	if len(ids) != 3 || ids[0] != a || ids[1] != b {
		t.Errorf("IDs = %v", ids)
	}
	inc := g.IncidentLinks(a)
	if len(inc) != 2 {
		t.Fatalf("IncidentLinks = %d", len(inc))
	}
	o0, _ := inc[0].Other(a)
	o1, _ := inc[1].Other(a)
	if o0 > o1 {
		t.Error("IncidentLinks not sorted by far endpoint")
	}
}

func TestPathEqualLengthMismatch(t *testing.T) {
	if (Path{1, 2}).Equal(Path{1}) {
		t.Error("different lengths equal")
	}
	if (Path{1, 2}).Equal(Path{1, 3}) {
		t.Error("different members equal")
	}
	if !(Path{}).Equal(Path{}) {
		t.Error("empty paths unequal")
	}
}
