package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/orwg"
	"repro/internal/wire"
)

// E17SetupAmortization quantifies §5.4.1's argument for the setup/handle
// design: "PRs may have a long lifetime ... a single policy route can
// support multiple pairs of hosts in the source and destination ADS." The
// setup exchange is a fixed cost; every data packet then saves the
// difference between a source-route header and a handle header. The
// experiment sweeps packets-per-route and reports the effective per-packet
// overhead of the handle plane against always-source-routing, locating the
// break-even point.
func E17SetupAmortization(seed int64) *metrics.Table {
	topo := defaultTopology(seed)
	g := topo.Graph
	db := restrictedPolicy(g, seed+1)
	sys := orwg.New(g, db, orwg.Config{Seed: seed})
	sys.Converge(convergenceLimit)

	// Pick a representative long route: the stub pair with the most hops.
	var best orwg.SetupResult
	var bestReq policy.Request
	for _, req := range core.AllPairsRequests(g, true, 0, 0) {
		res := sys.Establish(req)
		if res.OK && res.Path.Hops() > best.Path.Hops() {
			best = res
			bestReq = req
		}
	}
	if !best.OK {
		panic("experiments: no route established")
	}

	// Byte costs measured on real encodings.
	setupBytes := 0
	{
		var keys []policy.Key
		for i := 1; i < len(best.Path)-1; i++ {
			if term, ok := db.PermitsTransit(best.Path[i], bestReq, best.Path[i-1], best.Path[i+1]); ok {
				keys = append(keys, term.Key())
			}
		}
		setup := &wire.Setup{Handle: best.Handle, Req: bestReq, Route: best.Path, TermKeys: keys}
		reply := &wire.SetupReply{Handle: best.Handle}
		// The setup traverses each hop once; the reply returns.
		hops := best.Path.Hops()
		setupBytes = hops*len(wire.Marshal(setup)) + hops*len(wire.Marshal(reply))
	}
	const payload = 64
	handlePkt := &wire.Data{Mode: wire.ModeHandle, Handle: best.Handle, Payload: make([]byte, payload)}
	srcroutePkt := &wire.Data{Mode: wire.ModeSourceRoute, Req: bestReq, Route: best.Path, Payload: make([]byte, payload)}
	hops := best.Path.Hops()
	handleBytesPerPkt := hops * len(wire.Marshal(handlePkt))
	srcrouteBytesPerPkt := hops * len(wire.Marshal(srcroutePkt))

	t := metrics.NewTable("E17 — setup cost amortization over a policy route's lifetime",
		"packets", "handle-plane-bytes", "srcroute-plane-bytes", "handle/srcroute", "handle-wins")
	for _, n := range []int{1, 2, 5, 10, 50, 200, 1000} {
		handleTotal := setupBytes + n*handleBytesPerPkt
		srcTotal := n * srcrouteBytesPerPkt
		t.AddRow(fmt.Sprintf("%d", n), handleTotal, srcTotal,
			metrics.Ratio(float64(handleTotal), float64(srcTotal)),
			handleTotal < srcTotal)
	}
	t.AddNote("route %v (%d hops), %dB payloads; setup+reply cost %dB once, then %dB vs %dB per packet",
		best.Path, hops, payload, setupBytes, handleBytesPerPkt, srcrouteBytesPerPkt)
	t.AddNote("long-lived policy routes amortize the setup quickly — the §5.4.1 virtual-circuit argument")
	return t
}
