package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/protocols/idrp"
)

// E12IDRPMultiRoute sweeps the number of attribute-distinct routes IDRP
// advertises per destination. The paper (§5.2): advertising multiple routes
// raises the probability that sources have acceptable routes, but
// "effectively replicates the routing table per forwarding entity" — an
// availability/state tradeoff.
func E12IDRPMultiRoute(seed int64) *metrics.Table {
	topo := defaultTopology(seed)
	g := topo.Graph
	db := restrictedPolicy(g, seed+1)
	oracle := core.Oracle{G: g, DB: db}
	reqs := core.AllPairsRequests(g, true, 0, 0)

	t := metrics.NewTable("E12 — IDRP multi-route advertisement tradeoff",
		"routes/dest", "availability", "blackholed", "state-entries", "messages", "bytes")
	for _, k := range []int{1, 2, 4, 8} {
		sys := idrp.New(g, db, idrp.Config{Seed: seed, MultiRoute: k})
		m := core.RunScenario(sys, oracle, reqs, convergenceLimit)
		t.AddRow(fmt.Sprintf("%d", k), m.Availability(), m.Blackholed,
			m.StateEntries, m.Messages, m.Bytes)
	}
	t.AddNote("more advertised routes recover availability lost to source-specific policy, at the cost of table state and update traffic")
	return t
}
