// Package experiments implements the reproduction harness: one function per
// table/figure/claim of Breslau & Estrin (SIGCOMM 1990), each returning a
// rendered result table. The per-experiment index lives in DESIGN.md; the
// recorded outcomes in EXPERIMENTS.md.
//
// All experiments are deterministic in their seed. cmd/experiments runs them
// all; bench_test.go wraps each as a benchmark.
package experiments

import (
	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// convergenceLimit bounds every protocol run.
const convergenceLimit = 600 * sim.Second

// failer is implemented by every system that supports failure injection.
type failer interface {
	FailLink(a, b ad.ID) error
}

// defaultTopology builds the common evaluation internet used by T1/E1: two
// backbones, three regionals each, three campuses per regional, with
// lateral, bypass, and multi-homing structure per the paper's model.
func defaultTopology(seed int64) *topology.Topology {
	return topology.Generate(topology.Config{
		Seed:                 seed,
		Backbones:            2,
		RegionalsPerBackbone: 3,
		CampusesPerParent:    3,
		LateralProb:          0.25,
		BypassProb:           0.10,
		MultihomedProb:       0.15,
		HybridProb:           0.15,
	})
}

// restrictedPolicy builds the moderately restricted policy regime used by
// the headline comparisons.
func restrictedPolicy(g *ad.Graph, seed int64) *policy.DB {
	return policy.Generate(g, policy.GenConfig{
		Seed:                  seed,
		SourceRestrictionProb: 0.6,
		SourceFraction:        0.5,
		DestRestrictionProb:   0.2,
		DestFraction:          0.7,
		AvoidProb:             0.2,
	})
}

// All runs every experiment with the given seed.
func All(seed int64) []*metrics.Table {
	return []*metrics.Table{
		Table1DesignSpace(seed),
		Figure1Topology(),
		E1RouteAvailability(seed),
		E2Convergence(seed),
		E3SpanningTreeReplication(seed),
		E4QOSScaling(seed),
		E5SetupVsHandle(seed),
		E6EGPTopologyRestriction(seed),
		E7SynthesisStrategies(seed),
		E8PolicyGranularity(seed),
		E9MessageScaling(seed),
		E10OrderingSatisfiability(seed),
		E11FilterDiscovery(seed),
		E12IDRPMultiRoute(seed),
		E13TimeOfDay(seed),
		E14PolicyChange(seed),
		E15LogicalClusterCost(seed),
		E16DatabaseDistribution(seed),
		E17SetupAmortization(seed),
		E18PathStretch(seed),
		E19MultihomedStubs(seed),
	}
}
