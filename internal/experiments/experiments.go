// Package experiments implements the reproduction harness: one function per
// table/figure/claim of Breslau & Estrin (SIGCOMM 1990), each returning a
// rendered result table. The per-experiment index lives in DESIGN.md; the
// recorded outcomes in EXPERIMENTS.md.
//
// All experiments are deterministic in their seed. cmd/experiments runs them
// all; bench_test.go wraps each as a benchmark.
package experiments

import (
	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// convergenceLimit bounds every protocol run.
const convergenceLimit = 600 * sim.Second

// failer is implemented by every system that supports failure injection.
type failer interface {
	FailLink(a, b ad.ID) error
}

// defaultTopology builds the common evaluation internet used by T1/E1: two
// backbones, three regionals each, three campuses per regional, with
// lateral, bypass, and multi-homing structure per the paper's model.
func defaultTopology(seed int64) *topology.Topology {
	return topology.Generate(topology.Config{
		Seed:                 seed,
		Backbones:            2,
		RegionalsPerBackbone: 3,
		CampusesPerParent:    3,
		LateralProb:          0.25,
		BypassProb:           0.10,
		MultihomedProb:       0.15,
		HybridProb:           0.15,
	})
}

// restrictedPolicy builds the moderately restricted policy regime used by
// the headline comparisons.
func restrictedPolicy(g *ad.Graph, seed int64) *policy.DB {
	return policy.Generate(g, policy.GenConfig{
		Seed:                  seed,
		SourceRestrictionProb: 0.6,
		SourceFraction:        0.5,
		DestRestrictionProb:   0.2,
		DestFraction:          0.7,
		AvoidProb:             0.2,
	})
}

// independent lists every experiment other than Table 1, in report order.
// Each entry is deterministic in the seed and shares no state with the
// others, which is what makes the fan-out in RunAll sound.
var independent = []func(int64) *metrics.Table{
	func(int64) *metrics.Table { return Figure1Topology() },
	E1RouteAvailability,
	E2Convergence,
	E3SpanningTreeReplication,
	E4QOSScaling,
	E5SetupVsHandle,
	E6EGPTopologyRestriction,
	E7SynthesisStrategies,
	E8PolicyGranularity,
	E9MessageScaling,
	E10OrderingSatisfiability,
	E11FilterDiscovery,
	E12IDRPMultiRoute,
	E13TimeOfDay,
	E14PolicyChange,
	E15LogicalClusterCost,
	E16DatabaseDistribution,
	E17SetupAmortization,
	E18PathStretch,
	E19MultihomedStubs,
	E20RouteServer,
	E21StateLifecycles,
	E22ScopedInvalidation,
	E23HAFailover,
	E24PGStateScale,
	E25PlanEngine,
}

// All runs every experiment serially with the given seed. It is equivalent
// to RunAll(seed, 1).
func All(seed int64) []*metrics.Table {
	return RunAll(seed, 1)
}

// RunAll runs every experiment with the given seed, fanning the independent
// experiments — and, within Table 1, the nine independent protocol runs —
// across a bounded pool of at most parallelism workers (<= 0 means one per
// CPU). Tables are collected in the same fixed order as All, and because
// every experiment owns its topology, RNGs, and engine, the rendered output
// is byte-identical for any parallelism.
func RunAll(seed int64, parallelism int) []*metrics.Table {
	t1 := newTable1Run(seed)
	out := make([]*metrics.Table, 1+len(independent))
	tasks := make([]func(), 0, len(t1.points)+len(independent))
	for i := range t1.points {
		i := i
		tasks = append(tasks, func() { t1.runPoint(i) })
	}
	for j, fn := range independent {
		j, fn := j, fn
		tasks = append(tasks, func() { out[1+j] = fn(seed) })
	}
	parallel.Do(parallelism, tasks)
	out[0] = t1.table()
	return out
}
