package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/wire"
)

// E15LogicalClusterCost quantifies the paper's §5.1.1 footnote: to widen
// the range of policies expressible in a partial ordering, "the same
// physical group of AD resources may be replicated and represented as
// multiple logical clusters ... However, logical replication requires that
// the replicated region be assigned multiple network addresses in order to
// determine which FIB should be applied to a particular packet."
//
// The cost model: each attribute-distinct policy regime at a transit AD
// (distinct source-set among its terms) needs its own logical cluster, and
// every logical cluster carries a full per-destination per-QOS FIB at every
// AD. The experiment sweeps policy granularity and compares the resulting
// ECMA-with-replication state and address consumption against ORWG's
// flooded policy database, which expresses the same policies directly.
func E15LogicalClusterCost(seed int64) *metrics.Table {
	t := metrics.NewTable("E15 — logical cluster replication cost (ECMA footnote) vs ORWG",
		"restriction", "transits", "terms", "logical-clusters", "addresses", "ecma-replicated-FIB-rows", "orwg-lsdb-bytes")
	topo := defaultTopology(seed)
	g := topo.Graph
	n := g.NumADs()

	rng := rand.New(rand.NewSource(seed))
	all := g.IDs()
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		// Build a policy set whose transit ADs each maintain a number of
		// distinct source regimes proportional to the restriction level:
		// at 0, one open term; at 1, up to five disjoint source groups.
		db := policy.NewDB()
		regimesPer := 1 + int(p*4)
		for _, info := range g.ADs() {
			if info.Class != ad.Transit && info.Class != ad.Hybrid {
				continue
			}
			if regimesPer == 1 {
				db.Add(policy.OpenTerm(info.ID, 0))
				continue
			}
			// Partition the AD space into regimesPer source groups.
			perm := rng.Perm(len(all))
			chunk := (len(all) + regimesPer - 1) / regimesPer
			for k := 0; k < regimesPer; k++ {
				lo, hi := k*chunk, (k+1)*chunk
				if lo >= len(all) {
					break
				}
				if hi > len(all) {
					hi = len(all)
				}
				srcs := make([]ad.ID, 0, hi-lo)
				for _, idx := range perm[lo:hi] {
					srcs = append(srcs, all[idx])
				}
				term := policy.OpenTerm(info.ID, 0)
				term.Sources = policy.SetOf(srcs...)
				db.Add(term)
			}
		}
		transits, terms := 0, 0
		clusters := 0
		for _, info := range g.ADs() {
			ts := db.Terms(info.ID)
			if len(ts) == 0 {
				continue
			}
			transits++
			terms += len(ts)
			// Distinct source regimes at this AD.
			regimes := map[string]bool{}
			for _, term := range ts {
				regimes[term.Sources.String()] = true
			}
			clusters += len(regimes)
		}
		// Addresses: one per logical cluster plus one per ordinary AD.
		addresses := (n - transits) + clusters
		// Replicated FIB rows: every AD keeps one row per destination
		// per logical topology (each extra cluster replicates the
		// whole routing database, per the footnote).
		fibRows := n * n // baseline: one FIB, all dests, all ADs
		extra := clusters - transits
		if extra > 0 {
			fibRows += extra * n * n
		}
		// ORWG expresses the same policies as flooded terms.
		lsdbBytes := 0
		for _, info := range g.ADs() {
			lsa := &wire.LSA{Origin: info.ID, Seq: 1, Terms: db.Terms(info.ID)}
			for _, l := range g.IncidentLinks(info.ID) {
				other, _ := l.Other(info.ID)
				lsa.Links = append(lsa.Links, wire.LSALink{Neighbor: other, Cost: l.Cost, Up: true})
			}
			lsdbBytes += len(wire.Marshal(lsa))
		}
		t.AddRow(fmt.Sprintf("%.2f", p), transits, terms, clusters, addresses, fibRows, lsdbBytes)
	}
	t.AddNote("each attribute-distinct source regime at a transit AD needs one logical cluster (its own address + replicated FIBs everywhere)")
	t.AddNote("ORWG floods the same policies as terms: state grows with terms, not with cluster x destination products")
	return t
}
