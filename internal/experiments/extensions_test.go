package experiments

import "testing"

func TestE13TimeOfDay(t *testing.T) {
	tbl := E13TimeOfDay(seed)
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (3-hour steps)", len(tbl.Rows))
	}
	byHour := map[string][]string{}
	for _, row := range tbl.Rows {
		byHour[row[0]] = row
	}
	// During business hours traffic to d1 uses the cheap windowed
	// transit; at night it shifts to the expensive always-on one.
	if byHour["12:00"][1] != "day" {
		t.Errorf("noon d1 via %s, want day", byHour["12:00"][1])
	}
	if byHour["03:00"][1] != "allday" {
		t.Errorf("3am d1 via %s, want allday", byHour["03:00"][1])
	}
	// d1 stays legal around the clock.
	for _, row := range tbl.Rows {
		if row[2] != "true" {
			t.Errorf("hour %s: d1 not delivered legally", row[0])
		}
	}
	// d2 is reachable only in the night window.
	if byHour["03:00"][3] != "true" || byHour["03:00"][4] != "true" {
		t.Errorf("3am d2 row = %v, want reachable", byHour["03:00"])
	}
	if byHour["12:00"][3] != "false" || byHour["12:00"][4] != "false" {
		t.Errorf("noon d2 row = %v, want unreachable", byHour["12:00"])
	}
	// Protocol behaviour must match the oracle at every hour.
	for _, row := range tbl.Rows {
		if row[3] != row[4] {
			t.Errorf("hour %s: delivered=%s but routable=%s", row[0], row[3], row[4])
		}
	}
}

func TestE15LogicalClusterCost(t *testing.T) {
	tbl := E15LogicalClusterCost(seed)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	// With no source restrictions, one regime per transit: clusters ==
	// transits and no extra addresses.
	if first[1] != first[3] {
		t.Errorf("unrestricted: clusters %s != transits %s", first[3], first[1])
	}
	// Heavy restriction multiplies logical clusters and replicated FIBs.
	if parseFloat(t, last[3]) <= parseFloat(t, first[3]) {
		t.Error("clusters did not grow with restriction")
	}
	if parseFloat(t, last[5]) <= parseFloat(t, first[5]) {
		t.Error("replicated FIB rows did not grow")
	}
	// ORWG's LSDB grows far more slowly than replicated FIB rows.
	fibGrowth := parseFloat(t, last[5]) / parseFloat(t, first[5])
	lsdbGrowth := parseFloat(t, last[6]) / parseFloat(t, first[6])
	if lsdbGrowth >= fibGrowth {
		t.Errorf("LSDB growth %.2f not below FIB replication growth %.2f", lsdbGrowth, fibGrowth)
	}
}

func TestE14PolicyChange(t *testing.T) {
	tbl := E14PolicyChange(seed)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	established := parseFloat(t, tbl.Rows[0][1])
	afterChange := parseFloat(t, tbl.Rows[1][1])
	afterResetup := parseFloat(t, tbl.Rows[2][1])
	if established == 0 {
		t.Fatal("no flows established")
	}
	if afterChange >= established {
		t.Errorf("policy restriction tore down nothing: %v -> %v", established, afterChange)
	}
	if afterResetup <= afterChange {
		t.Errorf("re-setup recovered nothing: %v -> %v", afterChange, afterResetup)
	}
	// The policy change itself must be far cheaper than establishing all
	// flows (the paper's slow-change operating assumption).
	setupMsgs := parseFloat(t, tbl.Rows[0][2])
	changeMsgs := parseFloat(t, tbl.Rows[1][2])
	if changeMsgs >= setupMsgs {
		t.Errorf("policy change cost %v >= full setup cost %v", changeMsgs, setupMsgs)
	}
}

func TestE16DatabaseDistribution(t *testing.T) {
	tbl := E16DatabaseDistribution(seed)
	byKey := map[string][]string{}
	for _, row := range tbl.Rows {
		byKey[row[0]+"/"+row[1]] = row
	}
	// Tree scoping saves traffic at initial convergence.
	classicMsgs := parseFloat(t, byKey["classic-flood/initial"][2])
	treeMsgs := parseFloat(t, byKey["tree-scoped/initial"][2])
	if treeMsgs >= classicMsgs {
		t.Errorf("tree scoping saved nothing: %v >= %v", treeMsgs, classicMsgs)
	}
	// Both reach complete LSDBs initially.
	for _, k := range []string{"classic-flood/initial", "tree-scoped/initial"} {
		if byKey[k][5] != "0" {
			t.Errorf("%s: stale LSDBs at start: %s", k, byKey[k][5])
		}
	}
	// After an on-tree failure classic reconverges; tree-scoped strands.
	if byKey["classic-flood/post-failure"][5] != "0" {
		t.Errorf("classic flooding left stale LSDBs: %s", byKey["classic-flood/post-failure"][5])
	}
	if parseFloat(t, byKey["tree-scoped/post-failure"][5]) == 0 {
		t.Error("tree scoping stranded nobody — the robustness cost did not appear")
	}
}

func TestE17SetupAmortization(t *testing.T) {
	tbl := E17SetupAmortization(seed)
	if len(tbl.Rows) < 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Single packet: setup overhead makes handles more expensive.
	if tbl.Rows[0][4] != "false" {
		t.Error("handle plane should lose at 1 packet")
	}
	// Long-lived routes: handles win, and the ratio decreases
	// monotonically toward the asymptotic header saving.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[4] != "true" {
		t.Error("handle plane should win at 1000 packets")
	}
	var prev float64 = 1 << 30
	for _, row := range tbl.Rows {
		r := parseFloat(t, row[3])
		if r >= prev {
			t.Errorf("ratio not decreasing: %v after %v", r, prev)
		}
		prev = r
	}
	if parseFloat(t, last[3]) >= 1 {
		t.Error("asymptotic ratio not below 1")
	}
}

func TestE18PathStretch(t *testing.T) {
	tbl := E18PathStretch(seed)
	byProto := map[string][]string{}
	for _, row := range tbl.Rows {
		byProto[row[0]] = row
	}
	// Consistent source-side synthesis is cost-optimal.
	for _, p := range []string{"orwg", "ls-hop-by-hop"} {
		if s := parseFloat(t, byProto[p][2]); s != 1 {
			t.Errorf("%s stretch = %v, want exactly 1", p, s)
		}
	}
	// The inconsistent ablation pays stretch.
	if s := parseFloat(t, byProto["lshh-inconsistent"][2]); s <= 1 {
		t.Errorf("lshh-inconsistent stretch = %v, want > 1", s)
	}
	// No protocol beats the oracle.
	for p, row := range byProto {
		if parseFloat(t, row[2]) < 1-1e-9 {
			t.Errorf("%s stretch below 1 — oracle or cost accounting broken", p)
		}
	}
}

func TestE19MultihomedStubs(t *testing.T) {
	tbl := E19MultihomedStubs(seed)
	byProto := map[string][]string{}
	for _, row := range tbl.Rows {
		byProto[row[0]] = row
	}
	// Policy-blind baselines cut through multi-homed stubs.
	blindThrough := parseFloat(t, byProto["plain-dv"][2]) + parseFloat(t, byProto["egp"][2])
	if blindThrough == 0 {
		t.Error("policy-blind baselines never cut through a multi-homed stub — scenario too easy")
	}
	// Policy-aware designs never do.
	for _, p := range []string{"ecma", "idrp", "ls-hop-by-hop", "orwg"} {
		if byProto[p][2] != "0" {
			t.Errorf("%s transited a multi-homed stub %s times", p, byProto[p][2])
		}
	}
}

func TestE20RouteServer(t *testing.T) {
	tbl := E20RouteServer(seed)
	if len(tbl.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(tbl.Rows))
	}
	type rowKey struct{ model, churn, strategy string }
	rows := map[rowKey][]string{}
	for _, row := range tbl.Rows {
		// Every served result must agree with the oracle, and the serving
		// layer must never compute more than naive per-request synthesis.
		if row[10] != row[3] {
			t.Errorf("%s/%s/%s: oracle-ok %s of %s", row[0], row[1], row[2], row[10], row[3])
		}
		if parseFloat(t, row[4]) > parseFloat(t, row[5]) {
			t.Errorf("%s/%s/%s: served with more synthesis (%s) than naive (%s)", row[0], row[1], row[2], row[4], row[5])
		}
		rows[rowKey{row[0], row[1], row[2]}] = row
	}
	// Coalescing + caching must at least halve synthesis on the skewed
	// workload (the §5.4.1 claim), and skew must amortize better than
	// uniform demand.
	zipf := rows[rowKey{"zipf", "none", "on-demand"}]
	uniform := rows[rowKey{"uniform", "none", "on-demand"}]
	if saved := parseFloat(t, zipf[6]); saved < 2 {
		t.Errorf("zipf saved = %.3f, want >= 2", saved)
	}
	if parseFloat(t, zipf[6]) <= parseFloat(t, uniform[6]) {
		t.Error("zipf workload did not amortize better than uniform")
	}
	// Churn re-earns the cache, so it can only cost synthesis.
	if parseFloat(t, rows[rowKey{"zipf", "fail+policy", "on-demand"}][4]) <=
		parseFloat(t, zipf[4]) {
		t.Error("churn did not increase synthesis")
	}
	// The serving layer is strategy-orthogonal: every strategy needs the
	// same demand computations on the same workload.
	for _, churn := range []string{"none", "fail+policy"} {
		base := rows[rowKey{"zipf", churn, "on-demand"}][4]
		for _, s := range []string{"precomputed", "hybrid", "pruned"} {
			if got := rows[rowKey{"zipf", churn, s}][4]; got != base {
				t.Errorf("zipf/%s/%s: synth %s != on-demand %s", churn, s, got, base)
			}
		}
	}
}

func TestE21StateLifecycles(t *testing.T) {
	tbl := E21StateLifecycles(seed)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 workloads x 3 disciplines)", len(tbl.Rows))
	}
	type key struct{ model, state string }
	rows := map[key][]string{}
	for _, row := range tbl.Rows {
		// Every establishment must agree with the oracle, and every flow
		// must establish under the open policy regime.
		if row[11] != row[2] {
			t.Errorf("%s/%s: oracle-ok %s of %s", row[0], row[1], row[11], row[2])
		}
		if row[3] != row[2] {
			t.Errorf("%s/%s: only %s of %s flows established", row[0], row[1], row[3], row[2])
		}
		rows[key{row[0], row[1]}] = row
	}
	for _, model := range []string{"uniform", "zipf"} {
		hard := rows[key{model, "hard"}]
		soft := rows[key{model, "soft"}]
		capped := rows[key{model, "capped"}]
		// The §6 footprint claims: capped bounds peak state by
		// construction, soft bounds it by the live flow set (the leaked
		// wave-1 orphans expired), hard stacks both waves.
		if p := parseFloat(t, capped[4]); p > 8 {
			t.Errorf("%s: capped peak/PG %.0f exceeds capacity 8", model, p)
		}
		if parseFloat(t, capped[4]) >= parseFloat(t, hard[4]) {
			t.Errorf("%s: capped peak %s not below hard peak %s", model, capped[4], hard[4])
		}
		if parseFloat(t, soft[4]) >= parseFloat(t, hard[4]) {
			t.Errorf("%s: soft peak %s not below hard peak %s", model, soft[4], hard[4])
		}
		// Hard state leaks the abandoned orphans: more resident entries
		// than soft at the measurement point.
		if parseFloat(t, hard[5]) <= parseFloat(t, soft[5]) {
			t.Errorf("%s: hard resident %s not above soft resident %s", model, hard[5], soft[5])
		}
		// The control-overhead side: only soft pays refresh bytes.
		if parseFloat(t, soft[6]) == 0 {
			t.Errorf("%s: soft sent no refresh bytes", model)
		}
		if hard[6] != "0" || capped[6] != "0" {
			t.Errorf("%s: refresh bytes hard=%s capped=%s, want 0", model, hard[6], capped[6])
		}
		// The availability side: hard and refreshed soft deliver
		// everything; capped drops evicted live flows until re-setup.
		if parseFloat(t, hard[7]) != 1 || parseFloat(t, soft[7]) != 1 {
			t.Errorf("%s: hard/soft availability %s/%s, want 1", model, hard[7], soft[7])
		}
		if parseFloat(t, capped[7]) >= parseFloat(t, hard[7]) {
			t.Errorf("%s: capped availability %s not below hard %s", model, capped[7], hard[7])
		}
		// Failure-driven repair: the busiest-link failure queues flows
		// under every discipline, capped queues strictly more (NAKs),
		// and re-setup latency is observed whenever flows were repaired.
		if parseFloat(t, hard[8]) == 0 {
			t.Errorf("%s: link failure invalidated no hard-state flows", model)
		}
		if parseFloat(t, capped[8]) <= parseFloat(t, hard[8]) {
			t.Errorf("%s: capped repair queue %s not above hard %s", model, capped[8], hard[8])
		}
		for _, row := range []([]string){hard, soft, capped} {
			if parseFloat(t, row[9]) > 0 && parseFloat(t, row[10]) == 0 {
				t.Errorf("%s/%s: %s repairs but no re-setup latency", model, row[1], row[9])
			}
		}
	}
}

func TestE22ScopedInvalidation(t *testing.T) {
	tbl := E22ScopedInvalidation(seed)
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (2 workloads x 2 strategies x 2 modes)", len(tbl.Rows))
	}
	type key struct{ model, strategy, mode string }
	rows := map[key][]string{}
	for _, row := range tbl.Rows {
		// The retention oracle is absolute: every served route must be
		// legal under the then-current topology and policy, every no-route
		// answer verified by exhaustive search.
		if row[8] != row[3] {
			t.Errorf("%s/%s/%s: legal-ok %s of %s", row[0], row[1], row[2], row[8], row[3])
		}
		// Full mode's discard is the lazy generation bump: it never takes
		// the scoped eviction path.
		if row[2] == "full" && (row[6] != "0" || row[7] != "0") {
			t.Errorf("%s/%s/full: evicted/retained = %s/%s, want 0/0", row[0], row[1], row[6], row[7])
		}
		rows[key{row[0], row[1], row[2]}] = row
	}
	for _, model := range []string{"uniform", "zipf"} {
		for _, strategy := range []string{"on-demand", "hybrid"} {
			full := rows[key{model, strategy, "full"}]
			scoped := rows[key{model, strategy, "scoped"}]
			if full == nil || scoped == nil {
				t.Fatalf("missing rows for %s/%s", model, strategy)
			}
			// The headline claims: scoped invalidation avoids at least half
			// of the post-churn synthesis work and at least doubles the
			// retained hit rate, on every workload/strategy combination.
			fullSynth, scopedSynth := parseFloat(t, full[4]), parseFloat(t, scoped[4])
			if scopedSynth > fullSynth/2 {
				t.Errorf("%s/%s: scoped synth %.0f > half of full %.0f", model, strategy, scopedSynth, fullSynth)
			}
			fullHit, scopedHit := parseFloat(t, full[5]), parseFloat(t, scoped[5])
			if scopedHit < 2*fullHit {
				t.Errorf("%s/%s: scoped hit-rate %.3f < 2x full %.3f", model, strategy, scopedHit, fullHit)
			}
			// Scoped mode both evicts (the changes do bite) and retains
			// (most of the cache is out of any one change's footprint).
			if parseFloat(t, scoped[6]) == 0 || parseFloat(t, scoped[7]) == 0 {
				t.Errorf("%s/%s: scoped evicted/retained = %s/%s", model, strategy, scoped[6], scoped[7])
			}
			if parseFloat(t, scoped[7]) <= parseFloat(t, scoped[6]) {
				t.Errorf("%s/%s: link-local churn evicted more (%s) than it retained (%s)", model, strategy, scoped[6], scoped[7])
			}
		}
	}
}

func TestE23HAFailover(t *testing.T) {
	tbl := E23HAFailover(seed)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 workloads x 3 servers)", len(tbl.Rows))
	}
	type key struct{ model, server string }
	rows := map[key][]string{}
	for _, row := range tbl.Rows {
		// The legality oracle is absolute on every server, the promoted
		// follower included: replicated state never serves an illegal route.
		if row[6] != row[3] {
			t.Errorf("%s/%s: legal-ok %s of %s", row[0], row[1], row[6], row[3])
		}
		rows[key{row[0], row[1]}] = row
	}
	for _, model := range []string{"uniform", "zipf"} {
		warm := rows[key{model, "warm"}]
		promoted := rows[key{model, "promoted"}]
		cold := rows[key{model, "cold"}]
		if warm == nil || promoted == nil || cold == nil {
			t.Fatalf("missing rows for %s", model)
		}
		// The headline failover claim: the promoted follower keeps at least
		// half of the reference hit rate (in fact the sync barrier makes it
		// identical) and beats the cold restart outright.
		warmHit, promHit, coldHit := parseFloat(t, warm[5]), parseFloat(t, promoted[5]), parseFloat(t, cold[5])
		if promHit < warmHit/2 {
			t.Errorf("%s: promoted hit-rate %.3f below half of warm %.3f", model, promHit, warmHit)
		}
		if promHit <= coldHit {
			t.Errorf("%s: promoted hit-rate %.3f not above cold restart %.3f", model, promHit, coldHit)
		}
		// The cache column shows why: replication hands the follower a warm
		// cache, the restart starts empty and pays for it in synthesis.
		if parseFloat(t, promoted[2]) == 0 {
			t.Errorf("%s: promoted follower's cache is empty", model)
		}
		if cold[2] != "0" {
			t.Errorf("%s: cold restart cache = %s, want 0", model, cold[2])
		}
		if parseFloat(t, cold[4]) <= parseFloat(t, warm[4]) {
			t.Errorf("%s: cold synth %s not above warm %s", model, cold[4], warm[4])
		}
	}
}

func TestE24PGStateScale(t *testing.T) {
	tbl := E24PGStateScale(seed)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (shard counts 1, 8, 32)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		// The headline claim: the sharded table tracked the retained
		// scan-based reference exactly — per-sweep expiry sets, final
		// stats, final length. Any "no" here means the rewrite changed
		// observable semantics.
		if row[9] != "yes" {
			t.Errorf("shards=%s: sharded table diverged from reference", row[0])
		}
		// Every cohort expires by the last sweep, at every shard count.
		if row[3] != row[1] {
			t.Errorf("shards=%s: expired %s of %s handles", row[0], row[3], row[1])
		}
		if row[8] != row[1] {
			t.Errorf("shards=%s: peak %s, want %s (install-before-sweep workload)", row[0], row[8], row[1])
		}
		// The wheel's whole point: entries visited scale with due handles
		// (plus bounded cascade traffic), far under the reference's full
		// scans over the same sweeps.
		wheel, scan := parseFloat(t, row[4]), parseFloat(t, row[6])
		if wheel >= scan*0.7 {
			t.Errorf("shards=%s: wheel visited %.0f entries, not clearly under %.0f scanned", row[0], wheel, scan)
		}
	}
	// Expiry totals and visit counts are functions of the workload, not the
	// shard layout: the expired column must agree across shard counts.
	for _, row := range tbl.Rows[1:] {
		if row[3] != tbl.Rows[0][3] {
			t.Errorf("expired differs across shard counts: %s vs %s", row[3], tbl.Rows[0][3])
		}
	}
}

func TestE25PlanEngine(t *testing.T) {
	tbl := E25PlanEngine(seed)
	if len(tbl.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (2 workloads x 6 events)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		// The headline claim: every prediction matched the committed
		// outcome set-for-set, oracle-verified. Any "no" means the plan
		// engine's model of the serving layer diverged from the real thing.
		if row[9] != "yes" {
			t.Errorf("%s/%s: plan diverged from committed reality", row[0], row[1])
		}
		// Count columns must agree pairwise too (redundant with exact, but
		// it localizes a failure to the column that moved).
		for _, c := range [][2]int{{2, 3}, {4, 5}, {6, 7}} {
			if row[c[0]] != row[c[1]] {
				t.Errorf("%s/%s: predicted %s, observed %s", row[0], row[1], row[c[0]], row[c[1]])
			}
		}
		// The re-synthesis bill is one synthesis per evicted key.
		if row[8] != row[2] {
			t.Errorf("%s/%s: resynth %s != pred-evict %s", row[0], row[1], row[8], row[2])
		}
		// Every event in the timeline bites the cache: a plan predicting
		// zero blast radius for link/policy churn would be vacuous.
		if row[2] == "0" {
			t.Errorf("%s/%s: event evicted nothing", row[0], row[1])
		}
	}
	for m := 0; m < 2; m++ {
		rows := tbl.Rows[m*6 : (m+1)*6]
		// The third event strands a flow-carrying single-homed stub: it
		// must predict (and observe) both teardowns and lost pairs.
		if parseFloat(t, rows[2][4]) == 0 {
			t.Errorf("%s: stub-uplink failure tore down no flows", rows[2][0])
		}
		if parseFloat(t, rows[2][6]) == 0 {
			t.Errorf("%s: stub-uplink failure lost no pairs", rows[2][0])
		}
		// Restoring it brings every stranded pair back.
		if rows[4][6] != "0" {
			t.Errorf("%s: restore still loses %s pairs", rows[4][0], rows[4][6])
		}
	}
}
