package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
)

// E1RouteAvailability sweeps policy restrictiveness and measures, for each
// architecture, the fraction of oracle-routable requests delivered over
// legal paths. The paper's claim (§4.4, §5.1–5.2): hop-by-hop designs hide
// legal routes from sources as policies become source-specific, while
// source routing over global link state finds every route that exists.
func E1RouteAvailability(seed int64) *metrics.Table {
	topo := defaultTopology(seed)
	g := topo.Graph
	reqs := core.AllPairsRequests(g, true, 0, 0)

	t := metrics.NewTable("E1 — route availability vs policy restrictiveness",
		"restriction", "routable", "bgp", "bgp-illegal", "ecma", "ecma-illegal", "idrp", "lshh", "orwg")
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		db := policy.Generate(g, policy.GenConfig{
			Seed:                  seed + int64(p*100),
			SourceRestrictionProb: p,
			SourceFraction:        0.5,
		})
		oracle := core.Oracle{G: g, DB: db}
		routable := 0
		for _, r := range reqs {
			if oracle.HasRoute(r) {
				routable++
			}
		}
		mBgp := core.RunScenario(idrp.New(g, db, idrp.Config{Seed: seed, BGPMode: true}), oracle, reqs, convergenceLimit)
		mEcma := core.RunScenario(ecma.New(g, db, ecma.Config{Seed: seed}), oracle, reqs, convergenceLimit)
		mIdrp := core.RunScenario(idrp.New(g, db, idrp.Config{Seed: seed}), oracle, reqs, convergenceLimit)
		mLshh := core.RunScenario(lshh.New(g, db, lshh.Config{Seed: seed}), oracle, reqs, convergenceLimit)
		mOrwg := core.RunScenario(orwg.New(g, db, orwg.Config{Seed: seed}), oracle, reqs, convergenceLimit)
		t.AddRow(fmt.Sprintf("%.2f", p), routable,
			mBgp.Availability(), mBgp.DeliveredIllegal,
			mEcma.Availability(), mEcma.DeliveredIllegal,
			mIdrp.Availability(), mLshh.Availability(), mOrwg.Availability())
	}
	t.AddNote("restriction = probability a transit AD limits which sources may use it")
	t.AddNote("bgp/ecma illegal columns count deliveries violating source-specific terms those designs cannot express")
	return t
}
