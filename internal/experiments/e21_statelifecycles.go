package experiments

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/protocols/orwg"
	"repro/internal/sim"
	"repro/internal/trafficgen"
)

// e21TTL is the soft-state lifetime. It must comfortably exceed the
// simulated duration of one establishment wave (tens of seconds) so that
// live flows never expire between their setup and the first refresh pump.
const e21TTL = 60 * sim.Second

// e21Capacity is the per-PG handle bound under the capped discipline —
// far below the concurrent flow count through the backbone PGs, so the
// footprint / availability trade is actually exercised.
const e21Capacity = 8

// E21StateLifecycles measures the §6 policy-gateway state-management
// trade-off: the same two-wave workload runs under each handle lifecycle
// discipline, and the table records what each one pays.
//
// Wave 1 establishes half the flows, then every source abandons them
// without teardown (crashed or silent sources — the §6 scenario). After an
// idle gap, wave 2 establishes the other half; soft-state sources then pump
// Refresh keepalives while hard and capped sources stay quiet. One data
// packet per wave-2 flow measures availability, then the busiest link under
// the live flows fails and RepairAll re-establishes everything that was
// NAKed or invalidated, with re-setup RTTs digested from simulated time.
//
//   - Hard: zero control overhead, full availability, but wave-1 orphans
//     leak forever, so peak state stacks both waves.
//   - Soft: orphans expire within a TTL, bounding state by the live flow
//     set, at the cost of refresh bytes on the wire.
//   - Capped: peak state is bounded by construction; live flows evicted
//     from a full table drop packets (NAK-on-miss) until re-setup.
//
// Every establishment is oracle-verified: setup succeeds exactly when the
// exact search finds a legal route, and the established path is legal.
// Everything is driven by the discrete-event engine, so rows are
// byte-identical for any -parallel.
func E21StateLifecycles(seed int64) *metrics.Table {
	t := metrics.NewTable("E21 — PG state lifecycles (§6)",
		"workload", "state", "reqs", "flows", "peak/PG", "resident",
		"refresh-B", "avail", "repair-q", "repaired", "resetup-p95(ms)", "oracle-ok")

	const requests = 120
	base := defaultTopology(seed)

	for _, model := range []string{"uniform", "zipf"} {
		workload := trafficgen.Generate(base.Graph, trafficgen.Config{
			Seed: seed + 3, Requests: requests, StubsOnly: true,
			Model: model, ZipfS: 1.4, QOSClasses: 2, UCIClasses: 2,
		})
		for _, st := range []pgstate.Config{
			{Kind: pgstate.Hard},
			{Kind: pgstate.Soft, TTL: e21TTL},
			{Kind: pgstate.Capped, Capacity: e21Capacity},
		} {
			// FailLink mutates link state inside the network, and the
			// oracle must see the same world the protocol does, so every
			// row gets private copies. Policies are open: §6 is about
			// state volume at transit PGs, which needs every flow to
			// actually establish.
			g := base.Graph.Clone()
			db := policy.OpenDB(g)
			oracle := core.Oracle{G: g, DB: db}
			sys := orwg.New(g, db, orwg.Config{Seed: seed, State: st})
			sys.Converge(convergenceLimit)

			type flow struct {
				req    policy.Request
				handle uint64
				path   ad.Path
			}
			oracleOK, established := 0, 0
			establish := func(reqs []policy.Request) []flow {
				var flows []flow
				for _, req := range reqs {
					res := sys.Establish(req)
					if res.OK == oracle.HasRoute(req) &&
						(!res.OK || oracle.Legal(res.Path, req)) {
						oracleOK++
					}
					if res.OK {
						established++
						if res.Handle != 0 {
							flows = append(flows, flow{req, res.Handle, res.Path})
						}
					}
				}
				return flows
			}

			// Wave 1, then silent abandonment and an idle gap: soft state
			// expires the orphans, hard state leaks them, capped keeps them
			// until wave 2 evicts.
			wave1 := establish(workload[:requests/2])
			for _, f := range wave1 {
				sys.Abandon(f.req.Src, f.handle)
			}
			sys.Advance(2 * e21TTL)

			// Wave 2 is the live traffic. Soft-state sources pump
			// keepalives through the same elapsed time the other
			// disciplines just idle through.
			wave2 := establish(workload[requests/2:])
			for i := 0; i < 3; i++ {
				if st.Kind == pgstate.Soft {
					sys.RefreshEstablished()
				}
				sys.Advance(e21TTL / 2)
			}
			if st.Kind == pgstate.Soft {
				sys.RefreshEstablished()
			}

			// Availability: one data packet per wave-2 flow. A capped PG
			// that evicted the flow NAKs, which kills the flow and queues
			// it for repair.
			delivered, live := 0, make([]ad.Path, 0, len(wave2))
			for _, f := range wave2 {
				if ok, _ := sys.SendData(f.req.Src, f.handle, 64); ok {
					delivered++
					live = append(live, f.path)
				}
			}

			total, maxPeak := sys.StateMetrics()
			resident := total.Resident

			// Churn: fail the busiest link under the surviving flows, then
			// repair everything queued by NAKs and the failure.
			if a, b, ok := busiestLink(live); ok {
				if err := sys.FailLink(a, b); err != nil {
					panic(err)
				}
			}
			repairQ := sys.PendingRepairs()
			rsum := sys.RepairAll()
			lat := sys.ResetupLatency()

			t.AddRow(model, string(st.Kind), requests, established, maxPeak, resident,
				sys.Network().Stats.BytesByKind["refresh"],
				metrics.Ratio(float64(delivered), float64(len(wave2))),
				repairQ, rsum.Repaired,
				float64(lat.P95)/1e6, oracleOK)
		}
	}
	t.AddNote("two waves of %d flows each; wave 1 is abandoned without teardown, wave 2 is live when availability is probed", requests/2)
	t.AddNote("peak/PG = largest single-PG resident high-water mark; hard stacks the leaked wave-1 orphans under wave 2, soft expires them (TTL %ds), capped is bounded at %d", e21TTL/sim.Second, e21Capacity)
	t.AddNote("avail = wave-2 data packets delivered before churn; capped pays NAK-on-miss for evicted live flows, repaired afterwards via re-setup")
	t.AddNote("repair-q = flows queued by NAKs plus the busiest-link failure; resetup-p95 digests simulated re-establishment RTTs")
	t.AddNote("oracle-ok = establishments that agree with the exact search (success iff a legal route exists, and the path is legal)")
	return t
}

// busiestLink returns the most-traversed adjacency among the live flows'
// paths (ties broken toward the canonically smallest pair), so the injected
// failure is guaranteed to invalidate installed state.
func busiestLink(paths []ad.Path) (ad.ID, ad.ID, bool) {
	counts := map[[2]ad.ID]int{}
	for _, p := range paths {
		for i := 1; i < len(p); i++ {
			l := ad.Link{A: p[i-1], B: p[i]}.Canonical()
			counts[[2]ad.ID{l.A, l.B}]++
		}
	}
	var best [2]ad.ID
	bestN := 0
	for k, n := range counts {
		if n > bestN || (n == bestN && (k[0] < best[0] || (k[0] == best[0] && k[1] < best[1]))) {
			best, bestN = k, n
		}
	}
	return best[0], best[1], bestN > 0
}
