package experiments

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/pgstate"
	"repro/internal/routeserver"
	"repro/internal/routeserver/daemon"
	"repro/internal/routeserver/plan"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/trafficgen"
)

// E25PlanEngine validates the what-if planning engine end to end: every
// prediction a plan makes about the live serving layer must match reality
// exactly once the plan is committed. An E22-style six-event timeline
// (fail/restore a lateral, strand/restore a single-homed stub carrying live
// flows, an open-term policy rewrite at a low-degree transit and its
// re-rewrite) is first planned — a read-only blast-radius computation under
// the strategy lock — and then committed through the same backend the
// daemon and routed's line mode share. For each event the table compares,
// set for set and not just count for count: the cache keys predicted
// evicted vs the keys that actually left the cache; the data-plane flows
// predicted torn down vs the handles that actually died; and the (src, dst,
// QOS, UCI) pairs predicted to lose all routes vs the pairs the server
// really stops serving, with every post-commit answer oracle-verified
// against an exhaustive search on the then-current topology and policy.
//
// The assessed population is the recorded query log (the plan engine's
// recorded-workload mode), so "exact" also pins that the log ring captures
// the serving history. The resynth column is the plan's re-synthesis bill
// (count only — its latency projection is wall-clock and belongs to
// BenchmarkPlan). Counters are scheduling-independent for the E22 reasons:
// uncapped cache, negative caching, coalescing, and a population that is
// deduplicated and sorted before assessment.
func E25PlanEngine(seed int64) *metrics.Table {
	t := metrics.NewTable("E25 — what-if plan vs committed reality",
		"workload", "event", "pred-evict", "evict", "pred-torn", "torn",
		"pred-lose", "lose", "resynth", "exact")

	const requests = 600
	const clients = 4
	const flows = 120
	base := defaultTopology(seed)

	for _, model := range []string{"uniform", "zipf"} {
		workload := trafficgen.Generate(base.Graph, trafficgen.Config{
			Seed: seed + 2, Requests: requests, StubsOnly: true,
			Model: model, ZipfS: 1.4, QOSClasses: 2, UCIClasses: 2,
		})
		g := base.Graph.Clone()
		db := e22Policy(g, seed)
		srv := routeserver.New(synthesis.NewOnDemand(g, db), routeserver.Config{QueryLog: 2048})
		dp, err := routeserver.NewDataPlane(pgstate.Config{Kind: pgstate.Soft, TTL: 300 * sim.Second})
		if err != nil {
			panic(fmt.Sprintf("e25: data plane: %v", err))
		}
		be := daemon.NewBackend(srv, dp, g, db)

		// Warm phase: the whole workload populates the cache, its
		// dependency index, and the query-log ring the plans will replay.
		routeserver.ServePhase(srv, workload, clients)
		installed := 0
		for _, req := range workload {
			if installed >= flows {
				break
			}
			if _, _, ok := be.Install(req); ok {
				installed++
			}
		}

		for _, steps := range e25Events(g, dp) {
			label := steps[0].Label()
			id, rep, err := be.Plan(steps)
			if err != nil {
				panic(fmt.Sprintf("e25: plan %s: %v", label, err))
			}

			// Pre-commit observation point. The plan itself mutated
			// nothing, so this is the exact state the plan was computed
			// against; the population probes below are pure cache hits
			// (every member is resident after the previous event's
			// re-queries), so they perturb nothing either.
			preKeys := e25KeySet(srv.DumpEntries(nil))
			preHandles := dp.Handles()
			foundBefore := make([]bool, len(rep.Population))
			for i, req := range rep.Population {
				foundBefore[i] = srv.Query(req).Found
			}

			res, err := be.Commit(id)
			if err != nil {
				panic(fmt.Sprintf("e25: commit %s: %v", label, err))
			}

			// Evicted: the keys that left the cache must be exactly the
			// predicted set.
			postKeys := e25KeySet(srv.DumpEntries(nil))
			gone := make(map[routeserver.Key]bool)
			for k := range preKeys {
				if !postKeys[k] {
					gone[k] = true
				}
			}
			exact := len(gone) == len(rep.EvictedKeys) &&
				res.Evicted == len(rep.EvictedKeys) &&
				res.Retained == rep.Retained &&
				rep.Bill.Count == len(rep.EvictedKeys)
			for _, k := range rep.EvictedKeys {
				if !gone[k] {
					exact = false
				}
			}

			// Torn down: the flow handles that died must be exactly the
			// predicted set.
			dead := e25HandleDiff(preHandles, dp.Handles())
			if len(dead) != len(rep.Teardowns) {
				exact = false
			}
			for _, h := range rep.Teardowns {
				if !dead[h] {
					exact = false
				}
			}

			// Lost: re-query the whole assessed population on the live
			// post-change server (re-filling the evictions, as real traffic
			// would) and oracle-verify every answer by exhaustive search.
			predLost := make(map[routeserver.Key]bool, len(rep.Unroutable))
			for _, req := range rep.Unroutable {
				predLost[routeserver.KeyOf(req)] = true
			}
			lost := 0
			for i, req := range rep.Population {
				got := srv.Query(req)
				if got.Found != synthesis.RouteExists(g, db, req) {
					exact = false
				}
				isLost := foundBefore[i] && !got.Found
				if isLost {
					lost++
				}
				if isLost != predLost[routeserver.KeyOf(req)] {
					exact = false
				}
			}

			t.AddRow(model, label, len(rep.EvictedKeys), len(gone),
				len(rep.Teardowns), len(dead), len(rep.Unroutable), lost,
				rep.Bill.Count, yesNo(exact))
		}
	}
	t.AddNote("six events after a 600-request warm (4 clients) with 120 installed flows: fail/restore a lateral, fail/restore a flow-carrying single-homed stub uplink, open-term policy rewrite at the quietest transit + re-rewrite")
	t.AddNote("each event is planned (read-only blast-radius prediction over the recorded query log) then committed on the same backend; pred-* vs observed columns compare key/handle/pair SETS, not just counts")
	t.AddNote("exact = predicted evicted keys, torn-down handles, lost pairs, retained count, and re-synthesis bill all match the committed outcome, with every post-commit answer verified by exhaustive search")
	t.AddNote("resynth = the plan's re-synthesis bill (one per evicted key); its latency projection is wall-clock and measured by BenchmarkPlan (BENCH_plan.json)")
	return t
}

// e25Events builds the six-event plan timeline: the first lateral link
// fails and is restored, a single-homed stub that sources a live flow loses
// its only uplink (guaranteeing both teardowns and lost pairs) and gets it
// back, and the quietest transit's policy is rewritten to one expensive
// open term and then re-rewritten cheap. Each event is one single-step plan
// batch; multi-step union semantics are pinned by the plan package's tests.
func e25Events(g *ad.Graph, dp *routeserver.DataPlane) [][]plan.Step {
	var lateral ad.Link
	for _, l := range g.Links() {
		if l.Class == ad.Lateral {
			lateral = l
			break
		}
	}
	if lateral == (ad.Link{}) {
		lateral = g.Links()[0]
	}
	stub := e25StubLink(g, dp)
	target := quietestTransit(g)
	return [][]plan.Step{
		{{Kind: plan.StepFail, A: lateral.A, B: lateral.B}},
		{{Kind: plan.StepRestore, A: lateral.A, B: lateral.B}},
		{{Kind: plan.StepFail, A: stub.A, B: stub.B}},
		{{Kind: plan.StepPolicy, A: target, Cost: 10}},
		{{Kind: plan.StepRestore, A: stub.A, B: stub.B}},
		{{Kind: plan.StepPolicy, A: target, Cost: 1}},
	}
}

// e25StubLink picks the uplink of the first live flow's source whose AD has
// degree one: failing it must strand that stub (lost pairs > 0) and tear
// the flow down (teardowns > 0). Falls back to the first degree-one stub's
// uplink if no such flow exists.
func e25StubLink(g *ad.Graph, dp *routeserver.DataPlane) ad.Link {
	uplink := func(id ad.ID) (ad.Link, bool) {
		for _, l := range g.Links() {
			if l.A == id || l.B == id {
				return l, true
			}
		}
		return ad.Link{}, false
	}
	for _, h := range dp.Handles() {
		f, ok := dp.Flow(h)
		if !ok || g.Degree(f.Req.Src) != 1 {
			continue
		}
		if l, ok := uplink(f.Req.Src); ok {
			return l
		}
	}
	for _, info := range g.ADs() {
		if info.Class == ad.Stub && g.Degree(info.ID) == 1 {
			if l, ok := uplink(info.ID); ok {
				return l
			}
		}
	}
	return g.Links()[0]
}

// e25KeySet collapses a cache dump to its key set.
func e25KeySet(ents []routeserver.CacheEntry) map[routeserver.Key]bool {
	s := make(map[routeserver.Key]bool, len(ents))
	for _, e := range ents {
		s[e.Key] = true
	}
	return s
}

// e25HandleDiff returns the handles present before but not after.
func e25HandleDiff(before, after []uint64) map[uint64]bool {
	alive := make(map[uint64]bool, len(after))
	for _, h := range after {
		alive[h] = true
	}
	dead := make(map[uint64]bool)
	for _, h := range before {
		if !alive[h] {
			dead[h] = true
		}
	}
	return dead
}
