package experiments

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
	"repro/internal/sim"
)

// E2Convergence measures reconvergence after a link failure: simulated time
// and protocol messages until quiescence. The paper's claims (§4.3,
// §5.1.1): plain distance vector converges slowly (count-to-infinity
// without split horizon), the ECMA partial ordering suppresses the bounce
// and converges rapidly, link-state flooding reconverges in a flood's time.
func E2Convergence(seed int64) *metrics.Table {
	t := metrics.NewTable("E2 — reconvergence after link failure",
		"protocol", "initial-msgs", "initial-conv", "failure-msgs", "failure-conv", "quiesced")

	type mk struct {
		name  string
		build func(g *ad.Graph, db *policy.DB) core.System
	}
	makers := []mk{
		{"plain-dv(split-horizon)", func(g *ad.Graph, db *policy.DB) core.System {
			return plaindv.New(g, plaindv.Config{SplitHorizon: true, Seed: seed})
		}},
		{"plain-dv(no-split)", func(g *ad.Graph, db *policy.DB) core.System {
			return plaindv.New(g, plaindv.Config{SplitHorizon: false, Seed: seed})
		}},
		{"ecma", func(g *ad.Graph, db *policy.DB) core.System {
			return ecma.New(g, db, ecma.Config{Seed: seed})
		}},
		{"ecma(no-ordering)", func(g *ad.Graph, db *policy.DB) core.System {
			return ecma.New(g, db, ecma.Config{Seed: seed, DisableOrdering: true})
		}},
		{"idrp", func(g *ad.Graph, db *policy.DB) core.System {
			return idrp.New(g, db, idrp.Config{Seed: seed})
		}},
		{"ls-hop-by-hop", func(g *ad.Graph, db *policy.DB) core.System {
			return lshh.New(g, db, lshh.Config{Seed: seed})
		}},
		{"orwg", func(g *ad.Graph, db *policy.DB) core.System {
			return orwg.New(g, db, orwg.Config{Seed: seed})
		}},
	}

	for _, m := range makers {
		topo := defaultTopology(seed)
		g := topo.Graph
		db := policy.OpenDB(g)
		sys := m.build(g, db)

		conv0, _ := sys.Converge(convergenceLimit)
		msgs0 := sys.Network().Stats.MessagesSent

		// Fail a stub's only uplink: the destination becomes
		// unreachable, the worst case for DV withdrawal dynamics.
		victim := singleHomedStubLink(g)
		tFail := sys.Network().Now()
		if f, ok := sys.(failer); ok {
			_ = f.FailLink(victim.A, victim.B)
		}
		conv1, quiesced := sys.Converge(10 * convergenceLimit)
		msgs1 := sys.Network().Stats.MessagesSent

		failConv := sim.Time(0)
		if conv1 > tFail {
			failConv = conv1 - tFail
		}
		t.AddRow(m.name, msgs0, conv0.String(), msgs1-msgs0, failConv.String(), quiesced)
	}
	t.AddNote("failure severs a single-homed stub (destination becomes unreachable)")
	t.AddNote("no-split plain DV counts to infinity; the ECMA ordering suppresses the bounce")
	return t
}

// singleHomedStubLink returns the uplink of the first degree-1 stub, or the
// first link if none exists.
func singleHomedStubLink(g *ad.Graph) ad.Link {
	for _, info := range g.ADs() {
		if info.Class == ad.Stub && g.Degree(info.ID) == 1 {
			return g.IncidentLinks(info.ID)[0]
		}
	}
	return g.Links()[0]
}
