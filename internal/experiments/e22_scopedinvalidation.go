package experiments

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/routeserver"
	"repro/internal/synthesis"
	"repro/internal/trafficgen"
)

// E22ScopedInvalidation measures what dependency-indexed cache invalidation
// buys under the slow-and-local churn the paper assumes (§2.2–§2.3): the
// same link-local event timeline is replayed against a route server in
// "full" mode (every mutation bumps the generation and discards the whole
// cache — the pre-scoping behaviour) and in "scoped" mode (MutateScoped
// evicts only the entries whose recorded footprint the change can touch).
// After warming the cache with the full workload, each of six events (two
// lateral-link failures, their restorations, a policy change at a
// low-degree transit AD, and its revert) is followed by a 50-request slice
// served by four concurrent clients; the table reports synthesis work and
// hit rate over those post-churn slices only.
//
// Counters are scheduling-independent for the same reason as E20: an
// uncapped cache, negative caching, and coalescing mean exactly one
// synthesis per unique key per (re)computation epoch, and hits+coalesced is
// reported as one number. The oracle is legality, not path equality:
// scoped mode deliberately retains routes that a restoration or policy
// broadening made suboptimal-but-legal, so every served route is checked
// against PathLegal on the then-current topology/policy (and every
// no-route answer against an exhaustive search). Wall-clock latency during
// churn is measured by BenchmarkE22ScopedInvalidation.
func E22ScopedInvalidation(seed int64) *metrics.Table {
	t := metrics.NewTable("E22 — scoped cache invalidation under churn",
		"workload", "strategy", "mode", "churn-reqs", "synth", "hit-rate",
		"evicted", "retained", "legal-ok")

	const requests = 600
	const clients = 4
	const phaseLen = 50
	base := defaultTopology(seed)

	// The policy regime matters here in a way it does not for E20: under
	// restrictedPolicy ~95% of stub pairs are unroutable, so the warm cache
	// is almost entirely negative entries — and every broadening event
	// (restore, policy revert) must soundly evict all of them, leaving
	// nothing for scoped invalidation to retain. A route server's cache is
	// interesting when it holds working routes, so E22 serves a mostly
	// permissive regime (full QOS/UCI coverage, mild source restriction)
	// where ~95% of the workload is routable and the dependency index has
	// positive footprints to discriminate on.

	for _, model := range []string{"uniform", "zipf"} {
		workload := trafficgen.Generate(base.Graph, trafficgen.Config{
			Seed: seed + 2, Requests: requests, StubsOnly: true,
			Model: model, ZipfS: 1.4, QOSClasses: 2, UCIClasses: 2,
		})
		for _, kind := range []string{"on-demand", "hybrid"} {
			for _, mode := range []string{"full", "scoped"} {
				g := base.Graph.Clone()
				db := e22Policy(g, seed)
				srv := routeserver.New(buildE20Strategy(kind, g, db, workload), routeserver.Config{})

				// Warm phase: the whole workload, populating the cache and
				// its dependency index.
				routeserver.ServePhase(srv, workload, clients)
				warm := srv.Snapshot()

				churnReqs, legalOK := 0, 0
				for i, ev := range e22Events(g, db) {
					ch := ev.change()
					if mode == "full" {
						ch = synthesis.FullChange()
					}
					srv.MutateScoped(ch, ev.apply)
					lo := (i * phaseLen) % requests
					slice := workload[lo : lo+phaseLen]
					results := routeserver.ServePhase(srv, slice, clients)
					churnReqs += len(slice)
					for j, req := range slice {
						if e22Legal(g, db, req, results[j]) {
							legalOK++
						}
					}
				}

				fin := srv.Snapshot()
				synth := fin.Misses - warm.Misses
				hitRate := float64((fin.Hits-warm.Hits)+(fin.Coalesced-warm.Coalesced)) /
					float64(churnReqs)
				t.AddRow(model, srv.StrategyName(), mode, churnReqs, synth,
					hitRate, fin.ScopedEvicted, fin.ScopedRetained, legalOK)
			}
		}
	}
	t.AddNote("six link-local events (fail/restore two laterals, policy change + revert at a low-degree transit) after a 600-request warm; each followed by a 50-request slice (4 clients)")
	t.AddNote("synth/hit-rate cover the post-churn slices only: full mode re-synthesizes the working set after every event, scoped keeps serving unaffected entries")
	t.AddNote("evicted/retained = cache entries dropped/kept across scoped mutations (0 for full mode, whose discard is the lazy generation bump)")
	t.AddNote("legal-ok = served routes legal under the then-current topology+policy (retained routes may be suboptimal by contract, never illegal); no-route answers verified by exhaustive search")
	return t
}

// e22Policy builds the mostly permissive regime E22 serves: every transit
// covers both QOS and UCI classes (restrictedPolicy leaves the defaults,
// which cover only class 0 and make 3/4 of the two-class workload
// unroutable before source restrictions even apply), hybrids carry for
// most sources, and a mild source/dest restriction leaves a small
// population of genuinely unroutable pairs to exercise negative caching.
func e22Policy(g *ad.Graph, seed int64) *policy.DB {
	return policy.Generate(g, policy.GenConfig{
		Seed:                  seed,
		QOSClasses:            2,
		UCIClasses:            2,
		QOSCoverage:           1.0,
		UCICoverage:           1.0,
		HybridSourceFraction:  0.9,
		SourceRestrictionProb: 0.2,
		SourceFraction:        0.7,
		DestRestrictionProb:   0.1,
		DestFraction:          0.7,
		AvoidProb:             0.1,
	})
}

// e22Event is one churn injection: change describes the mutation for
// scoped invalidation and is computed against the pre-mutation state
// (policy deltas diff the incoming terms with the current ones), apply
// performs it.
type e22Event struct {
	label  string
	change func() synthesis.Change
	apply  func()
}

// e22Events builds the six-event link-local timeline over g and db: fail
// and restore the first two lateral links, interleaved with an expensive
// open-term rewrite at the busiest transit AD and its revert.
func e22Events(g *ad.Graph, db *policy.DB) []e22Event {
	var laterals []ad.Link
	for _, l := range g.Links() {
		if l.Class == ad.Lateral {
			laterals = append(laterals, l)
		}
	}
	// The default topology has several laterals; fall back to the first
	// links so hand-rolled graphs still get a timeline.
	for _, l := range g.Links() {
		if len(laterals) >= 2 {
			break
		}
		laterals = append(laterals, l)
	}
	l0, l1 := laterals[0], laterals[1]

	target := quietestTransit(g)
	expensive := policy.OpenTerm(target, 0)
	expensive.Cost = 10
	original := append([]policy.Term(nil), db.Terms(target)...)

	failEv := func(l ad.Link) e22Event {
		return e22Event{
			label:  fmt.Sprintf("fail %v-%v", l.A, l.B),
			change: func() synthesis.Change { return synthesis.LinkDownChange(l.A, l.B) },
			apply:  func() { g.RemoveLink(l.A, l.B) },
		}
	}
	restoreEv := func(l ad.Link) e22Event {
		return e22Event{
			label:  fmt.Sprintf("restore %v-%v", l.A, l.B),
			change: func() synthesis.Change { return synthesis.LinkUpChange(l.A, l.B) },
			apply:  func() { _ = g.AddLink(l) },
		}
	}
	policyEv := func(label string, terms []policy.Term) e22Event {
		return e22Event{
			label:  fmt.Sprintf("%s %v", label, target),
			change: func() synthesis.Change { return synthesis.PolicyChangeOf(db.DiffTerms(target, terms)) },
			apply:  func() { db.SetTerms(target, terms) },
		}
	}
	return []e22Event{
		failEv(l0),
		restoreEv(l0),
		failEv(l1),
		policyEv("policy", []policy.Term{expensive}),
		restoreEv(l1),
		policyEv("revert", original),
	}
}

// quietestTransit returns the lowest-degree transit AD (lowest ID on
// ties) — the locality assumption of §2.2–§2.3 says most policy changes
// happen at the periphery, not at the busiest backbone.
func quietestTransit(g *ad.Graph) ad.ID {
	var quietest ad.ID
	bestDeg := -1
	for _, info := range g.ADs() {
		if info.Class != ad.Transit {
			continue
		}
		d := g.Degree(info.ID)
		if bestDeg == -1 || d < bestDeg || (d == bestDeg && info.ID < quietest) {
			quietest, bestDeg = info.ID, d
		}
	}
	return quietest
}

// e22Legal is the retention oracle: a served route must be a valid path on
// the current graph that every transit AD's policy still admits; a
// no-route answer must mean no legal route exists at all.
func e22Legal(g *ad.Graph, db *policy.DB, req policy.Request, res routeserver.Result) bool {
	if !res.Found {
		return !synthesis.RouteExists(g, db, req)
	}
	return res.Path.Valid(g) && db.PathLegal(res.Path, req)
}
