package experiments

import (
	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// Figure1Topology reconstructs the paper's Figure 1 example internet and
// reports its structural statistics, validating every feature the figure's
// legend names: hierarchy levels, lateral links, bypass links, and a
// multi-homed stub.
func Figure1Topology() *metrics.Table {
	topo := topology.Figure1()
	s := topology.ComputeStats(topo.Graph)
	t := metrics.NewTable("Figure 1 — example internet topology (reconstruction)",
		"property", "value")
	t.AddRow("ADs", s.ADs)
	t.AddRow("links", s.Links)
	t.AddRow("backbones", s.ByLevel[ad.Backbone])
	t.AddRow("regionals", s.ByLevel[ad.Regional])
	t.AddRow("campuses", s.ByLevel[ad.Campus])
	t.AddRow("stub ADs", s.ByClass[ad.Stub])
	t.AddRow("multi-homed stubs", s.ByClass[ad.MultihomedStub])
	t.AddRow("transit ADs", s.ByClass[ad.Transit])
	t.AddRow("hierarchical links", s.ByLinkClass[ad.Hierarchical])
	t.AddRow("lateral links", s.ByLinkClass[ad.Lateral])
	t.AddRow("bypass links", s.ByLinkClass[ad.Bypass])
	t.AddRow("connected", s.Connected)
	t.AddRow("contains cycles", !s.Tree)
	t.AddRow("avg degree", s.AvgDegree)
	t.AddNote("hierarchy augmented with lateral and bypass links per §2.1; cycles are required (EGP-incompatible)")
	return t
}
