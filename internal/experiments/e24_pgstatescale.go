package experiments

import (
	"math/rand"

	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/sim"
)

// E24 workload shape: e24Handles soft-state flows whose TTLs spread across
// e24Cohorts staggered deadlines, swept cohort by cohort. Small enough to
// run in the full-suite budget, large enough that a full-scan expiry pays
// visibly more than a wheel sweep (BenchmarkPGStateMillion covers the
// million-handle point).
const (
	e24Handles = 40_000
	e24Cohorts = 20
)

// E24PGStateScale measures what the sharded-table rewrite buys and proves
// it safe: the same staggered-TTL workload drives the scan-based Reference
// (the retained executable specification) and the sharded Table in
// lockstep, per shard count. The differential check — expiry sets compared
// sweep by sweep, Stats compared at the end — runs inside the experiment,
// so the equivalence claim is a reported, regression-checked result, not
// just a test. The cost columns contrast the Reference's full scans
// (entries visited per sweep = whole table) with the wheel's visit count
// (due entries plus bounded cascade/slot traffic).
//
// Purely synthetic and single-threaded: no network, no goroutines, all
// costs are deterministic op counts — rows are byte-identical for any
// -parallel and any host.
func E24PGStateScale(seed int64) *metrics.Table {
	t := metrics.NewTable("E24 — PG state at scale: sharded table + timer wheel vs reference scan",
		"shards", "handles", "sweeps", "expired", "wheel-visits", "slot-walks",
		"scan-visits", "visit-ratio", "peak", "equiv")

	for _, shards := range []int{1, 8, 32} {
		cfg := pgstate.Config{Kind: pgstate.Soft, TTL: 1000 * sim.Second, Shards: shards}
		ref := pgstate.NewReference(cfg)
		tab := pgstate.NewTable(cfg)

		// Install: every handle gets a cohort deadline; routes come from a
		// small AD pool so the link index has real fan-out.
		rng := rand.New(rand.NewSource(seed))
		for h := uint64(1); h <= e24Handles; h++ {
			cohort := rng.Intn(e24Cohorts)
			ttl := sim.Time(cohort+1) * 10 * sim.Second
			a := ad.ID(rng.Intn(16) + 1)
			b := ad.ID(rng.Intn(16) + 17)
			route := ad.Path{a, b}
			req := policy.Request{Src: a, Dst: b}
			ref.Install(0, h, route, 0, req, ttl)
			tab.Install(0, h, route, 0, req, ttl)
		}

		// Sweep cohort by cohort. The reference pays a full scan of the
		// surviving table each time; the wheel pays the due cohort plus
		// bounded slot/cascade traffic.
		equiv := true
		expired, scanVisits := 0, 0
		for c := 0; c < e24Cohorts; c++ {
			now := sim.Time(c+1)*10*sim.Second + 1
			scanVisits += ref.Len() // ExpireDue scans every resident entry
			rd := ref.ExpireDue(now)
			td := tab.ExpireDue(now)
			expired += len(td)
			if len(rd) != len(td) {
				equiv = false
			} else {
				for i := range rd {
					if rd[i] != td[i] {
						equiv = false
						break
					}
				}
			}
		}
		if ref.Stats() != tab.Stats() || ref.Len() != tab.Len() {
			equiv = false
		}
		cost := tab.SweepCost()
		st := tab.Stats()

		t.AddRow(shards, e24Handles, e24Cohorts, expired,
			cost.Entries, cost.Slots, scanVisits,
			metrics.Ratio(float64(cost.Entries), float64(scanVisits)),
			st.Peak, yesNo(equiv))
	}
	t.AddNote("%d soft-state handles in %d staggered-TTL cohorts; each sweep expires one cohort", e24Handles, e24Cohorts)
	t.AddNote("equiv = sharded table tracked the retained scan-based Reference exactly: per-sweep expiry sets, final Stats, final Len")
	t.AddNote("wheel-visits = entries popped from wheel slots/overflow across all sweeps (due + bounded cascade); scan-visits = entries the Reference's full scans walked")
	t.AddNote("slot-walks = timer-wheel slots visited, capped per sweep at levels x slots x shards regardless of table size")
	return t
}

// yesNo renders a boolean claim as a stable table cell.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
