package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
	"repro/internal/topology"
)

// E9MessageScaling sweeps internet size and measures the protocol traffic
// required to reach initial convergence — the scaling dimension of §2.2.
// Link-state flooding costs O(N·E) message copies; distance-vector costs
// grow with table size times churn; path-vector updates additionally carry
// full AD paths and policy attributes (larger bytes per message).
func E9MessageScaling(seed int64) *metrics.Table {
	t := metrics.NewTable("E9 — convergence traffic vs internet size",
		"ADs", "links", "protocol", "messages", "bytes", "conv-time")
	sizes := []topology.Config{
		{Seed: seed, Backbones: 1, RegionalsPerBackbone: 2, CampusesPerParent: 2, LateralProb: 0.15},
		{Seed: seed, Backbones: 2, RegionalsPerBackbone: 3, CampusesPerParent: 3, LateralProb: 0.15, BypassProb: 0.1},
		{Seed: seed, Backbones: 3, RegionalsPerBackbone: 4, CampusesPerParent: 4, LateralProb: 0.1, BypassProb: 0.05},
		{Seed: seed, Backbones: 4, RegionalsPerBackbone: 4, MetrosPerRegional: 2, CampusesPerParent: 3, LateralProb: 0.05, BypassProb: 0.05},
	}
	for _, cfg := range sizes {
		topo := topology.Generate(cfg)
		g := topo.Graph
		db := policy.Generate(g, policy.GenConfig{Seed: seed + 1, SourceRestrictionProb: 0.3, SourceFraction: 0.5})
		systems := []core.System{
			plaindv.New(g.Clone(), plaindv.Config{SplitHorizon: true, Seed: seed}),
			ecma.New(g.Clone(), db, ecma.Config{Seed: seed}),
			idrp.New(g.Clone(), db, idrp.Config{Seed: seed}),
			lshh.New(g.Clone(), db, lshh.Config{Seed: seed}),
			orwg.New(g.Clone(), db, orwg.Config{Seed: seed}),
		}
		for _, sys := range systems {
			conv, _ := sys.Converge(convergenceLimit)
			st := sys.Network().Stats
			t.AddRow(fmt.Sprintf("%d", g.NumADs()), g.NumLinks(), sys.Name(),
				st.MessagesSent, st.BytesSent, conv.String())
		}
	}
	t.AddNote("initial convergence from cold start; traffic measured on marshalled wire bytes")
	return t
}
