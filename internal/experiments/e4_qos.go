package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/orwg"
)

// E4QOSScaling sweeps the number of QOS classes and measures routing state
// and update traffic. The paper (§3, §5.1.1): per-QOS FIB replication in
// the DV designs "does not scale well with the number of possible packet
// classifications", whereas ORWG's state is the flooded policy database
// plus per-flow handles, independent of the class count.
func E4QOSScaling(seed int64) *metrics.Table {
	t := metrics.NewTable("E4 — state and traffic vs number of QOS classes",
		"qos-classes", "ecma-state", "ecma-bytes", "idrp-state", "idrp-bytes", "orwg-state", "orwg-bytes")
	for _, q := range []int{1, 2, 4, 8, 16} {
		topo := defaultTopology(seed)
		g := topo.Graph
		db := policy.Generate(g, policy.GenConfig{
			Seed:       seed + int64(q),
			QOSClasses: q,
			// All transits offer all classes so state growth is the
			// protocol's, not the policy's.
			QOSCoverage: 1.0,
		})
		oracle := core.Oracle{G: g, DB: db}
		reqs := core.AllPairsRequests(g, true, 0, 0)

		mEcma := core.RunScenario(ecma.New(g, db, ecma.Config{Seed: seed, QOSClasses: q}), oracle, reqs, convergenceLimit)
		mIdrp := core.RunScenario(idrp.New(g, db, idrp.Config{Seed: seed, QOSClasses: q}), oracle, reqs, convergenceLimit)
		mOrwg := core.RunScenario(orwg.New(g, db, orwg.Config{Seed: seed}), oracle, reqs, convergenceLimit)
		t.AddRow(fmt.Sprintf("%d", q),
			mEcma.StateEntries, mEcma.Bytes,
			mIdrp.StateEntries, mIdrp.Bytes,
			mOrwg.StateEntries, mOrwg.Bytes)
	}
	t.AddNote("DV designs replicate FIBs per class; ORWG state is LSDB + per-flow handles (class-independent)")
	return t
}
