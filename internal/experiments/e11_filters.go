package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/protocols/filters"
	"repro/internal/protocols/orwg"
	"repro/internal/sim"
)

// E11FilterDiscovery compares the §3 baseline — silent packet filters
// discovered "by having packets dropped until a higher level timeout
// occurs" — against ORWG's advertised policies with validated setup. The
// metrics are packets lost, attempts, and time until a working route.
func E11FilterDiscovery(seed int64) *metrics.Table {
	topo := defaultTopology(seed)
	g := topo.Graph
	db := restrictedPolicy(g, seed+1)
	reqs := core.AllPairsRequests(g, true, 0, 0)
	oracle := core.Oracle{G: g, DB: db}

	fs := filters.New(g, db, filters.Config{Seed: seed, Timeout: 500 * sim.Millisecond, MaxCandidates: 5})
	var fDrops, fAttempts, fDelivered int
	var fLatencies []float64
	for _, req := range reqs {
		d := fs.Discover(req)
		fDrops += d.DroppedPackets
		fAttempts += d.Attempts
		if d.Delivered {
			fDelivered++
			fLatencies = append(fLatencies, float64(d.Latency)/1000.0)
		}
	}

	ow := orwg.New(g, db, orwg.Config{Seed: seed})
	ow.Converge(convergenceLimit)
	var oDelivered int
	var oLatencies []float64
	for _, req := range reqs {
		res := ow.Establish(req)
		if res.OK {
			oDelivered++
			oLatencies = append(oLatencies, float64(res.RTT)/1000.0)
		}
	}

	routable := 0
	for _, r := range reqs {
		if oracle.HasRoute(r) {
			routable++
		}
	}

	fSum := metrics.Summarize(fLatencies)
	oSum := metrics.Summarize(oLatencies)
	t := metrics.NewTable("E11 — filter discovery vs advertised policy (ORWG)",
		"system", "delivered", "routable", "dropped-packets", "attempts", "latency-p50(ms)", "latency-p95(ms)")
	t.AddRow("filters", fDelivered, routable, fDrops, fAttempts, fSum.P50, fSum.P95)
	t.AddRow("orwg", oDelivered, routable, 0, len(reqs), oSum.P50, oSum.P95)
	t.AddNote("filters waste a 500ms timeout per filtered attempt; ORWG setups are validated before data flows")
	t.AddNote("filter sources only try the 5 shortest paths, so they also miss legal detours ORWG finds")
	return t
}
