package experiments

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/protocols/orwg"
	"repro/internal/wire"
)

// E5SetupVsHandle measures the ORWG data plane of §5.4.1: the one-time
// setup latency, the per-packet header saved by handles versus full source
// routes, and policy-gateway cache behaviour under bounded capacity.
func E5SetupVsHandle(seed int64) *metrics.Table {
	topo := defaultTopology(seed)
	g := topo.Graph
	db := restrictedPolicy(g, seed+1)
	reqs := core.AllPairsRequests(g, true, 0, 0)

	t := metrics.NewTable("E5 — ORWG setup vs handle forwarding",
		"cache-cap", "flows", "setup-rtt-p50(ms)", "setup-rtt-p95(ms)",
		"handle-hdr(B)", "srcroute-hdr(B)", "hdr-saving", "cache-hit", "evictions")

	for _, capacity := range []int{0, 64, 16, 4} {
		sys := orwg.New(g, db, orwg.Config{Seed: seed, CacheCapacity: capacity})
		sys.Converge(convergenceLimit)

		var rtts []float64
		type flow struct {
			src    ad.ID
			handle uint64
		}
		var flows []flow
		var srcrouteHdr, handleHdr float64
		established := 0
		for _, req := range reqs {
			res := sys.Establish(req)
			if !res.OK {
				continue
			}
			established++
			rtts = append(rtts, float64(res.RTT)/1000.0)
			flows = append(flows, flow{src: req.Src, handle: res.Handle})
			full := &wire.Data{Mode: wire.ModeSourceRoute, Req: req, Route: res.Path, Payload: nil}
			hdl := &wire.Data{Mode: wire.ModeHandle, Handle: res.Handle}
			srcrouteHdr += float64(full.HeaderLen())
			handleHdr += float64(hdl.HeaderLen())
		}
		// Send two rounds of data over every flow (round-robin) to
		// exercise the caches.
		for round := 0; round < 2; round++ {
			for _, f := range flows {
				sys.SendData(f.src, f.handle, 64)
			}
		}
		cs := sys.CacheStats()
		hitRate := metrics.Ratio(float64(cs.Hits), float64(cs.Hits+cs.Misses))
		s := metrics.Summarize(rtts)
		t.AddRow(capLabel(capacity), established,
			s.P50, s.P95,
			handleHdr/float64(max(1, established)),
			srcrouteHdr/float64(max(1, established)),
			metrics.Ratio(srcrouteHdr, handleHdr),
			hitRate, cs.Evictions)
	}
	t.AddNote("handle packets carry an 8-byte handle; source-route packets carry the full AD list + request")
	t.AddNote("bounded PG caches evict LRU flows, whose packets are then dropped until re-setup (§6 state management)")
	return t
}

func capLabel(c int) string {
	if c == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d", c)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
