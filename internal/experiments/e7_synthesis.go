package experiments

import (
	"fmt"
	"sort"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/synthesis"
	"repro/internal/topology"
	"repro/internal/trafficgen"
)

// E7SynthesisStrategies explores the route-synthesis tradeoff the paper
// flags as its principal open issue (§5.4.1, §6): full precomputation is
// intractable at scale, pure on-demand computation adds setup latency, and
// a hybrid "should be used". We sweep internet size and serve a skewed
// workload (a hot set of repeated requests plus a cold tail) through each
// strategy.
func E7SynthesisStrategies(seed int64) *metrics.Table {
	t := metrics.NewTable("E7 — route synthesis strategies",
		"ADs", "strategy", "precompute-work", "ondemand-work", "hit-rate", "fail", "table-size")

	for _, size := range []struct {
		regionals, campuses int
	}{{2, 2}, {3, 3}, {4, 5}} {
		topo := topology.Generate(topology.Config{
			Seed:                 seed,
			Backbones:            2,
			RegionalsPerBackbone: size.regionals,
			CampusesPerParent:    size.campuses,
			LateralProb:          0.2,
			BypassProb:           0.1,
		})
		g := topo.Graph
		db := policy.Generate(g, policy.GenConfig{
			Seed: seed + 1, SourceRestrictionProb: 0.4, SourceFraction: 0.5,
		})

		// Workload: a Zipf-skewed stub traffic matrix (most requests
		// concentrate on few pairs), as inter-AD traffic does.
		all := core.AllPairsRequests(g, true, 0, 0)
		workload := trafficgen.Generate(g, trafficgen.Config{
			Seed: seed + 2, Requests: 400, StubsOnly: true,
			Model: "zipf", ZipfS: 1.4,
		})
		// The hybrid strategy's hot set: the workload's busiest pairs.
		hot := hottestRequests(workload, len(all)/5+1)

		var stubs []ad.ID
		for _, info := range g.ADs() {
			if info.Class == ad.Stub || info.Class == ad.MultihomedStub {
				stubs = append(stubs, info.ID)
			}
		}
		strategies := []synthesis.Strategy{
			synthesis.NewPrecomputed(g, db, all), // precompute everything
			synthesis.NewOnDemand(g, db),
			synthesis.NewHybrid(g, db, hot),
			synthesis.NewPruned(g, db, stubs, 3), // §5.4.1 pruning heuristic
		}
		for _, st := range strategies {
			for _, req := range workload {
				st.Route(req)
			}
			stats := st.Stats()
			t.AddRow(fmt.Sprintf("%d", g.NumADs()), st.Name(),
				stats.PrecomputeExpansions, stats.OnDemandExpansions,
				metrics.Ratio(float64(stats.Hits), float64(stats.Hits+stats.Misses)),
				stats.Failures, stats.CacheEntries)
		}
	}
	t.AddNote("work = search-state expansions; workload = 400 Zipf-skewed requests (skew: busiest decile carries most traffic)")
	t.AddNote("precompute-everything pays the full cost up front and grows fastest with internet size (§5.4.1)")
	return t
}

// hottestRequests returns up to n requests covering the workload's most
// frequent (src,dst,qos,uci) contexts, for seeding precomputation.
func hottestRequests(workload []policy.Request, n int) []policy.Request {
	type key struct {
		src, dst ad.ID
		qos      policy.QOS
		uci      policy.UCI
	}
	counts := map[key]int{}
	rep := map[key]policy.Request{}
	for _, r := range workload {
		k := key{r.Src, r.Dst, r.QOS, r.UCI}
		counts[k]++
		rep[k] = r
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		if keys[i].dst != keys[j].dst {
			return keys[i].dst < keys[j].dst
		}
		if keys[i].qos != keys[j].qos {
			return keys[i].qos < keys[j].qos
		}
		return keys[i].uci < keys[j].uci
	})
	if n > len(keys) {
		n = len(keys)
	}
	out := make([]policy.Request, 0, n)
	for _, k := range keys[:n] {
		out = append(out, rep[k])
	}
	return out
}
