package experiments

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/orwg"
	"repro/internal/synthesis"
)

// E14PolicyChange measures the dynamics of a runtime policy change under
// ORWG: established policy routes whose transit terms are withdrawn are
// torn down by the policy gateways (NAKs to sources), and sources
// re-synthesize over the re-flooded policy database. The paper's operating
// assumption — "policy and topology change much more slowly than the time
// required for route setup" (§5.4.1) — is checked by comparing the change's
// total message cost against per-flow setup cost.
func E14PolicyChange(seed int64) *metrics.Table {
	topo := defaultTopology(seed)
	g := topo.Graph
	db := policy.OpenDB(g)
	sys := orwg.New(g, db, orwg.Config{Seed: seed})
	sys.Converge(convergenceLimit)
	reqs := core.AllPairsRequests(g, true, 0, 0)

	t := metrics.NewTable("E14 — runtime policy change under ORWG",
		"phase", "flows-up", "messages", "notes")

	// Phase 1: establish all stub-pair flows.
	type flow struct {
		req    policy.Request
		handle uint64
	}
	var flows []flow
	msgs0 := sys.Network().Stats.MessagesSent
	for _, req := range reqs {
		if res := sys.Establish(req); res.OK && len(res.Path) > 1 {
			flows = append(flows, flow{req: req, handle: res.Handle})
		}
	}
	setupMsgs := sys.Network().Stats.MessagesSent - msgs0
	alive := func() int {
		n := 0
		for _, f := range flows {
			if delivered, _ := sys.SendData(f.req.Src, f.handle, 8); delivered {
				n++
			}
		}
		return n
	}
	up0 := alive()
	t.AddRow("established", up0, setupMsgs, "one setup per stub pair")

	// Phase 2: the busiest transit AD tightens its policy to carry only
	// half the stubs.
	busiest := busiestTransit(g, db, reqs)
	var stubs []ad.ID
	for _, info := range g.ADs() {
		if info.Class == ad.Stub || info.Class == ad.MultihomedStub {
			stubs = append(stubs, info.ID)
		}
	}
	term := policy.OpenTerm(busiest, 0)
	term.Sources = policy.SetOf(stubs[:len(stubs)/2]...)
	msgs1 := sys.Network().Stats.MessagesSent
	if err := sys.UpdatePolicy(busiest, []policy.Term{term}); err != nil {
		panic(err)
	}
	changeMsgs := sys.Network().Stats.MessagesSent - msgs1
	up1 := alive()
	t.AddRow("after restriction", up1, changeMsgs, busiest.String()+" now carries half the stubs")

	// Phase 3: affected sources re-synthesize.
	msgs2 := sys.Network().Stats.MessagesSent
	recovered := 0
	for i, f := range flows {
		if delivered, _ := sys.SendData(f.req.Src, f.handle, 8); delivered {
			continue
		}
		if res := sys.Establish(f.req); res.OK {
			flows[i].handle = res.Handle
			recovered++
		}
	}
	reMsgs := sys.Network().Stats.MessagesSent - msgs2
	up2 := alive()
	t.AddRow("after re-setup", up2, reMsgs, "sources re-synthesized over the new policy")

	t.AddNote("the change costs one LSA flood + per-affected-flow NAK and re-setup — far less than initial convergence")
	t.AddNote("flows the new policy forbids stay down; detours are found where terms allow them")
	return t
}

// busiestTransit returns the transit AD crossed by the most oracle-best
// routes.
func busiestTransit(g *ad.Graph, db *policy.DB, reqs []policy.Request) ad.ID {
	counts := make(map[ad.ID]int)
	for _, req := range reqs {
		res := synthesis.FindRoute(g, db, req)
		if !res.Found {
			continue
		}
		for i := 1; i < len(res.Path)-1; i++ {
			counts[res.Path[i]]++
		}
	}
	var best ad.ID
	for _, info := range g.ADs() {
		if info.Class != ad.Transit {
			continue
		}
		if best == ad.Invalid || counts[info.ID] > counts[best] {
			best = info.ID
		}
	}
	return best
}
