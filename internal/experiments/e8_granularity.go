package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/orwg"
)

// E8PolicyGranularity sweeps policy granularity (terms per transit AD) and
// measures the costs the paper attributes to fine-grained policy (§5.4.1):
// more policy terms, a larger flooded database, more flooding traffic, and
// costlier route synthesis.
func E8PolicyGranularity(seed int64) *metrics.Table {
	topo := defaultTopology(seed)
	g := topo.Graph
	reqs := core.AllPairsRequests(g, true, 0, 0)

	t := metrics.NewTable("E8 — cost of policy granularity",
		"terms/transit", "total-terms", "lsdb-bytes", "flood-bytes", "mean-synthesis-work", "availability")
	for _, granularity := range []int{1, 2, 4, 8, 16} {
		db := policy.Generate(g, policy.GenConfig{
			Seed:            seed + int64(granularity),
			TermsPerTransit: granularity,
		})
		oracle := core.Oracle{G: g, DB: db}
		sys := orwg.New(g, db, orwg.Config{Seed: seed})
		sys.Converge(convergenceLimit)
		floodBytes := sys.Network().Stats.BytesSent
		work := 0
		okCount, routable := 0, 0
		for _, req := range reqs {
			if oracle.HasRoute(req) {
				routable++
			}
			res := sys.Establish(req)
			work += res.SynthesisExpansions
			if res.OK {
				okCount++
			}
		}
		t.AddRow(fmt.Sprintf("%d", granularity), db.NumTerms(), sys.LSDBBytes(), floodBytes,
			float64(work)/float64(len(reqs)),
			metrics.Ratio(float64(okCount), float64(routable)))
	}
	t.AddNote("granularity partitions each transit's policy over destination subsets (finer terms, same semantics)")
	return t
}
