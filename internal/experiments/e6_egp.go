package experiments

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/egp"
	"repro/internal/topology"
)

// E6EGPTopologyRestriction quantifies §3's criticism of EGP. Initial
// convergence is correct on any topology (reachability propagates
// breadth-first), but EGP has no loop-robust route computation: after a
// link failure a gateway falls back to any neighbor that ever advertised
// the destination — possibly one whose reachability was derived from the
// gateway itself — and the resulting forwarding loop is never detected.
//
// The experiment sweeps every possible single-link failure on a tree
// topology and on the paper's cyclic topology (lateral + bypass links) and
// counts how many failures leave persistent loops, how many pairs loop, and
// how many deliveries are lost.
func E6EGPTopologyRestriction(seed int64) *metrics.Table {
	t := metrics.NewTable("E6 — EGP and the acyclic topology restriction",
		"topology", "phase", "pairs", "delivered", "loops", "blackholes", "loop-inducing-failures")

	evaluate := func(sys *egp.System, g *ad.Graph) (delivered, loops, holes int) {
		for _, src := range g.IDs() {
			for _, dst := range g.IDs() {
				if src == dst {
					continue
				}
				out := sys.Route(policy.Request{Src: src, Dst: dst})
				switch {
				case out.Delivered:
					delivered++
				case out.Looped:
					loops++
				default:
					holes++
				}
			}
		}
		return
	}

	runTopology := func(name string, topo *topology.Topology) {
		g := topo.Graph
		n := g.NumADs()
		pairs := n * (n - 1)

		base := egp.New(g.Clone(), egp.Config{Seed: seed})
		base.Converge(convergenceLimit)
		d0, l0, h0 := evaluate(base, g)
		t.AddRow(name, "initial", pairs, d0, l0, h0, "-")

		// Sweep every single-link failure on a fresh system, in both
		// deployment styles: static (no fallback — blackholes) and
		// adaptive (fallback — loops).
		for _, mode := range []struct {
			label      string
			noFallback bool
		}{{"post-failure static", true}, {"post-failure adaptive", false}} {
			totalD, totalL, totalH := 0, 0, 0
			loopInducing := 0
			links := g.Links()
			for _, victim := range links {
				sys := egp.New(g.Clone(), egp.Config{Seed: seed, NoFallback: mode.noFallback})
				sys.Converge(convergenceLimit)
				_ = sys.FailLink(victim.A, victim.B)
				sys.Converge(10 * convergenceLimit)
				d, l, h := evaluate(sys, g)
				totalD += d
				totalL += l
				totalH += h
				if l > 0 {
					loopInducing++
				}
			}
			t.AddRow(name, mode.label, pairs,
				totalD/len(links), totalL/len(links), totalH/len(links),
				formatFrac(loopInducing, len(links)))
		}
	}

	treeTopo := topology.Generate(topology.Config{Seed: seed})
	if !treeTopo.Graph.IsTree() {
		panic("experiments: default hierarchy is not a tree")
	}
	runTopology("tree", treeTopo)
	runTopology("mesh", topology.Generate(topology.Config{Seed: seed, LateralProb: 0.4, BypassProb: 0.2}))

	t.AddNote("each post-failure row averages over every possible single-link failure (fresh system per failure)")
	t.AddNote("static EGP never loops but never adapts (blackholes, even where the mesh has a legal detour)")
	t.AddNote("adaptive fallback forms persistent undetectable loops — the dilemma behind the acyclic restriction (§3)")
	return t
}

func formatFrac(a, b int) string {
	return fmt.Sprintf("%d/%d", a, b)
}
