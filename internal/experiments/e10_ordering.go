package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/ordering"
)

// E10OrderingSatisfiability quantifies §5.1.1's concern that "there may not
// be a single partial ordering that simultaneously expresses the policies
// of all ADS": random AD policy constraints (X must rank above Y) are tested
// for joint satisfiability, and the central authority's negotiation cost is
// measured as the number of constraints that must be dropped.
func E10OrderingSatisfiability(seed int64) *metrics.Table {
	const (
		numADs = 60
		trials = 200
	)
	t := metrics.NewTable("E10 — mutual satisfiability of topological policies",
		"constraints", "satisfiable-frac", "mean-negotiation-rounds", "max-rounds", "kept-frac")
	rng := rand.New(rand.NewSource(seed))
	for _, k := range []int{10, 20, 40, 80, 160, 320} {
		satisfiable := 0
		totalRounds, maxRounds := 0, 0
		totalKept := 0
		for trial := 0; trial < trials; trial++ {
			cons := randomConstraints(rng, numADs, k)
			if ordering.Satisfiable(cons) {
				satisfiable++
			}
			kept, rounds := ordering.Negotiate(cons)
			totalRounds += rounds
			if rounds > maxRounds {
				maxRounds = rounds
			}
			totalKept += len(kept)
		}
		t.AddRow(fmt.Sprintf("%d", k),
			float64(satisfiable)/float64(trials),
			float64(totalRounds)/float64(trials),
			maxRounds,
			float64(totalKept)/float64(trials*k))
	}
	t.AddNote("%d ADs, %d trials per row; constraints drawn uniformly over ordered AD pairs", numADs, trials)
	t.AddNote("negotiation = central authority drops conflicting policies until a single ordering exists")
	return t
}

func randomConstraints(rng *rand.Rand, numADs, k int) []ordering.Constraint {
	cons := make([]ordering.Constraint, 0, k)
	for len(cons) < k {
		a := ad.ID(1 + rng.Intn(numADs))
		b := ad.ID(1 + rng.Intn(numADs))
		if a != b {
			cons = append(cons, ordering.Constraint{Above: a, Below: b})
		}
	}
	return cons
}
