package experiments

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/egp"
	"repro/internal/protocols/filters"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
)

// designPoint annotates a system with its Table 1 coordinates.
type designPoint struct {
	sys       core.System
	algorithm string // "DV" | "LS" | "—"
	decision  string // "hop-by-hop" | "source"
	policyIn  string // "topology" | "policy terms" | "none"
}

// table1Run is a Table 1 reproduction decomposed into independently runnable
// protocol points, so RunAll can fan the nine runs across workers. The
// topology, policy database, oracle, and request workload are shared
// read-only; each point's System owns all state it mutates.
type table1Run struct {
	seed    int64
	g       *ad.Graph
	oracle  core.Oracle
	reqs    []policy.Request
	points  []designPoint
	results []core.Metrics
}

func newTable1Run(seed int64) *table1Run {
	topo := defaultTopology(seed)
	g := topo.Graph
	db := restrictedPolicy(g, seed+1)

	points := []designPoint{
		{plaindv.New(g, plaindv.Config{SplitHorizon: true, Seed: seed}), "DV", "hop-by-hop", "none"},
		{egp.New(g, egp.Config{Seed: seed}), "DV", "hop-by-hop", "none"},
		{filters.New(g, db, filters.Config{Seed: seed}), "—", "source", "filters"},
		{ecma.New(g, db, ecma.Config{Seed: seed}), "DV", "hop-by-hop", "topology"},
		{idrp.New(g, db, idrp.Config{Seed: seed, BGPMode: true}), "DV", "hop-by-hop", "local only"},
		{idrp.New(g, db, idrp.Config{Seed: seed}), "DV", "hop-by-hop", "policy terms"},
		{idrp.New(g, db, idrp.Config{Seed: seed, MultiRoute: 4}), "DV", "hop-by-hop", "policy terms"},
		{lshh.New(g, db, lshh.Config{Seed: seed}), "LS", "hop-by-hop", "policy terms"},
		{orwg.New(g, db, orwg.Config{Seed: seed}), "LS", "source", "policy terms"},
	}
	return &table1Run{
		seed:    seed,
		g:       g,
		oracle:  core.Oracle{G: g, DB: db},
		reqs:    core.AllPairsRequests(g, true, 0, 0),
		points:  points,
		results: make([]core.Metrics, len(points)),
	}
}

// runPoint evaluates design point i, writing only its own results slot.
func (r *table1Run) runPoint(i int) {
	r.results[i] = core.RunScenario(r.points[i].sys, r.oracle, r.reqs, convergenceLimit)
}

// table assembles the result table in fixed point order; every runPoint must
// have completed first.
func (r *table1Run) table() *metrics.Table {
	t := metrics.NewTable("Table 1 — inter-AD routing design space on a common internet",
		"protocol", "algorithm", "decision", "policy", "availability", "illegal", "loops",
		"messages", "bytes", "conv", "state", "computations")
	for i, p := range r.points {
		m := r.results[i]
		t.AddRow(m.Protocol, p.algorithm, p.decision, p.policyIn,
			m.Availability(), m.DeliveredIllegal, m.Looped,
			m.Messages, m.Bytes, m.ConvergenceTime.String(), m.StateEntries, m.Computations)
	}
	t.AddNote("topology: %d ADs, %d links (seed %d); %d stub-pair requests, %d oracle-routable",
		r.g.NumADs(), r.g.NumLinks(), r.seed, len(r.reqs), func() int {
			n := 0
			for _, req := range r.reqs {
				if r.oracle.HasRoute(req) {
					n++
				}
			}
			return n
		}())
	t.AddNote("availability = legally delivered / oracle-routable; illegal deliveries violate some AD's policy")
	return t
}

// Table1DesignSpace instantiates every point of the paper's Table 1 design
// space (plus the §3 baselines) on a common topology and policy set, and
// reports the comparison the paper makes qualitatively: route availability,
// policy violations, loop behaviour, overhead, convergence, and state.
func Table1DesignSpace(seed int64) *metrics.Table {
	r := newTable1Run(seed)
	for i := range r.points {
		r.runPoint(i)
	}
	return r.table()
}
