package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/egp"
	"repro/internal/protocols/filters"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
)

// designPoint annotates a system with its Table 1 coordinates.
type designPoint struct {
	sys       core.System
	algorithm string // "DV" | "LS" | "—"
	decision  string // "hop-by-hop" | "source"
	policyIn  string // "topology" | "policy terms" | "none"
}

// Table1DesignSpace instantiates every point of the paper's Table 1 design
// space (plus the §3 baselines) on a common topology and policy set, and
// reports the comparison the paper makes qualitatively: route availability,
// policy violations, loop behaviour, overhead, convergence, and state.
func Table1DesignSpace(seed int64) *metrics.Table {
	topo := defaultTopology(seed)
	g := topo.Graph
	db := restrictedPolicy(g, seed+1)
	oracle := core.Oracle{G: g, DB: db}
	reqs := core.AllPairsRequests(g, true, 0, 0)

	points := []designPoint{
		{plaindv.New(g, plaindv.Config{SplitHorizon: true, Seed: seed}), "DV", "hop-by-hop", "none"},
		{egp.New(g, egp.Config{Seed: seed}), "DV", "hop-by-hop", "none"},
		{filters.New(g, db, filters.Config{Seed: seed}), "—", "source", "filters"},
		{ecma.New(g, db, ecma.Config{Seed: seed}), "DV", "hop-by-hop", "topology"},
		{idrp.New(g, db, idrp.Config{Seed: seed, BGPMode: true}), "DV", "hop-by-hop", "local only"},
		{idrp.New(g, db, idrp.Config{Seed: seed}), "DV", "hop-by-hop", "policy terms"},
		{idrp.New(g, db, idrp.Config{Seed: seed, MultiRoute: 4}), "DV", "hop-by-hop", "policy terms"},
		{lshh.New(g, db, lshh.Config{Seed: seed}), "LS", "hop-by-hop", "policy terms"},
		{orwg.New(g, db, orwg.Config{Seed: seed}), "LS", "source", "policy terms"},
	}

	t := metrics.NewTable("Table 1 — inter-AD routing design space on a common internet",
		"protocol", "algorithm", "decision", "policy", "availability", "illegal", "loops",
		"messages", "bytes", "conv", "state", "computations")
	for _, p := range points {
		m := core.RunScenario(p.sys, oracle, reqs, convergenceLimit)
		t.AddRow(m.Protocol, p.algorithm, p.decision, p.policyIn,
			m.Availability(), m.DeliveredIllegal, m.Looped,
			m.Messages, m.Bytes, m.ConvergenceTime.String(), m.StateEntries, m.Computations)
	}
	t.AddNote("topology: %d ADs, %d links (seed %d); %d stub-pair requests, %d oracle-routable",
		g.NumADs(), g.NumLinks(), seed, len(reqs), func() int {
			n := 0
			for _, r := range reqs {
				if oracle.HasRoute(r) {
					n++
				}
			}
			return n
		}())
	t.AddNote("availability = legally delivered / oracle-routable; illegal deliveries violate some AD's policy")
	return t
}
