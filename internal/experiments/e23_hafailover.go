package experiments

import (
	"net"
	"time"

	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/routeserver"
	"repro/internal/routeserver/daemon"
	"repro/internal/routeserver/ha"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/trafficgen"
)

// E23HAFailover measures what replicated route servers (internal/routeserver/ha)
// buy when the primary dies mid-churn: the warm cache a follower accumulated
// from the sync stream versus the empty cache of a cold restart. The E22
// regime is replayed — a 600-request warm phase, then a link-local event
// timeline with a 50-request slice (4 concurrent clients) after each event —
// but the timeline is split around a primary kill: three events served by the
// original primary, then the kill, then three events served by whichever
// server survives. Three servers answer the post-kill half:
//
//   - warm: the reference — the original server, never killed.
//   - promoted: a 2-replica group's follower, promoted by heartbeat-loss
//     election after the primary is killed; its cache arrived over the sync
//     stream (cache puts with dependency footprints, control ops replayed
//     through its own backend so scoped invalidation evicted the same
//     entries).
//   - cold: a fresh server with the same topology and policy state but an
//     empty cache — the restart-from-scratch alternative to replication.
//
// The table reports the post-kill slices only. Counters are scheduling-
// independent for the same reason as E20/E22 (uncapped cache, negative
// caching, coalescing → one synthesis per unique key per epoch), and the
// promoted follower's cache is pinned by a sync barrier (applied sequence ==
// backlog tail) before the kill, so its content equals the primary's exactly
// and the rendered table is byte-identical under any parallelism. Failover
// wall-clock (availability gap, promotion latency) is timing, not counting,
// and is measured by BenchmarkHAFailover instead.
func E23HAFailover(seed int64) *metrics.Table {
	t := metrics.NewTable("E23 — failover to a warm replica vs cold restart",
		"workload", "server", "cache", "churn-reqs", "synth", "hit-rate", "legal-ok")

	const requests = 600
	base := defaultTopology(seed)

	for _, model := range []string{"uniform", "zipf"} {
		workload := trafficgen.Generate(base.Graph, trafficgen.Config{
			Seed: seed + 2, Requests: requests, StubsOnly: true,
			Model: model, ZipfS: 1.4, QOSClasses: 2, UCIClasses: 2,
		})
		pre, post := e23Timeline(base.Graph)

		// Warm reference: one server lives through the whole timeline.
		{
			be, srv := e23Stack(base.Graph, seed)
			o := newE23Oracle(base.Graph, seed)
			routeserver.ServePhase(srv, workload, e23Clients)
			e23PreChurn(be, srv, workload, pre, o)
			cache := srv.CacheLen()
			churn, synth, legal, hr := e23Measure(be, srv, workload, post, o)
			t.AddRow(model, "warm", cache, churn, synth, hr, legal)
		}

		// Promoted follower: the primary serves the warm phase and the
		// pre-kill churn (every insert and mutation streaming to the
		// follower), is killed, and the follower takes over.
		{
			prim, fol := e23Group(base.Graph, seed)
			o := newE23Oracle(base.Graph, seed)
			routeserver.ServePhase(prim.srv, workload, e23Clients)
			e23PreChurn(prim.be, prim.srv, workload, pre, o)
			e23Wait(func() bool {
				latest := prim.node.BacklogLatest()
				return latest > 0 && fol.node.AppliedSeq() == latest
			}, "follower sync barrier")
			prim.node.Kill()
			e23Wait(fol.node.IsPrimary, "follower promotion")
			cache := fol.srv.CacheLen()
			churn, synth, legal, hr := e23Measure(fol.be, fol.srv, workload, post, o)
			fol.node.Stop()
			t.AddRow(model, "promoted", cache, churn, synth, hr, legal)
		}

		// Cold restart: same control-plane state (the pre-kill events are
		// applied, unserved), empty cache.
		{
			be, srv := e23Stack(base.Graph, seed)
			o := newE23Oracle(base.Graph, seed)
			for _, op := range pre {
				op.applyTo(be)
				o.apply(op)
			}
			cache := srv.CacheLen()
			churn, synth, legal, hr := e23Measure(be, srv, workload, post, o)
			t.AddRow(model, "cold", cache, churn, synth, hr, legal)
		}
	}
	t.AddNote("timeline: 600-request warm, three link-local events + 50-request slices (4 clients), primary kill, three more events + slices; the table covers the post-kill slices only")
	t.AddNote("promoted = 2-replica group's follower after heartbeat-loss election; its cache arrived over the sync stream and is barriered to the primary's backlog tail before the kill, so warm and promoted serve identical state")
	t.AddNote("cache = entries held when the post-kill phase starts; cold restarts with the same topology+policy but nothing cached")
	t.AddNote("legal-ok = served routes legal under the then-current topology+policy on an independently mutated oracle world; no-route answers verified by exhaustive search")
	return t
}

// e23Clients is the concurrent client count per serve phase, e23PhaseLen
// the post-event slice length — both as in E22.
const (
	e23Clients  = 4
	e23PhaseLen = 50
)

// e23Op is one control-plane mutation, expressed as the backend operation
// an operator (or replicated ctl entry) would perform — unlike E22's
// direct graph/policy closures, every op here must flow through a Backend
// so the HA row replicates it.
type e23Op struct {
	kind string // "fail", "restore", "policy"
	a, b ad.ID
	cost uint32
}

func (o e23Op) applyTo(be *daemon.Backend) {
	switch o.kind {
	case "fail":
		_, _, _, _ = be.Fail(o.a, o.b)
	case "restore":
		_, _, _ = be.Restore(o.a, o.b)
	case "policy":
		be.SetPolicy(o.a, o.cost)
	}
}

// e23Timeline splits the E22-style link-local event list around the kill:
// fail/restore of the first lateral and a failure of the second before it,
// then a policy rewrite at the quietest transit, the second lateral's
// restoration, and a second policy change after it. (Backend.SetPolicy
// installs an open term, so the post-kill policy pair is change + re-change
// rather than E22's change + revert.)
func e23Timeline(g *ad.Graph) (pre, post []e23Op) {
	var laterals []ad.Link
	for _, l := range g.Links() {
		if l.Class == ad.Lateral {
			laterals = append(laterals, l)
		}
	}
	for _, l := range g.Links() {
		if len(laterals) >= 2 {
			break
		}
		laterals = append(laterals, l)
	}
	l0, l1 := laterals[0], laterals[1]
	target := quietestTransit(g)
	pre = []e23Op{
		{kind: "fail", a: l0.A, b: l0.B},
		{kind: "restore", a: l0.A, b: l0.B},
		{kind: "fail", a: l1.A, b: l1.B},
	}
	post = []e23Op{
		{kind: "policy", a: target, cost: 10},
		{kind: "restore", a: l1.A, b: l1.B},
		{kind: "policy", a: target, cost: 3},
	}
	return pre, post
}

// e23Stack builds one server's full serving stack over clones of the base
// world, in the permissive E22 policy regime.
func e23Stack(base *ad.Graph, seed int64) (*daemon.Backend, *routeserver.Server) {
	g := base.Clone()
	db := e22Policy(g, seed)
	srv := routeserver.New(synthesis.NewOnDemand(g, db), routeserver.Config{})
	dp, err := routeserver.NewDataPlane(pgstate.Config{Kind: pgstate.Soft, TTL: 30 * sim.Second})
	if err != nil {
		panic(err)
	}
	return daemon.NewBackend(srv, dp, g, db), srv
}

// e23Replica is one group member's stack.
type e23Replica struct {
	node *ha.Node
	be   *daemon.Backend
	srv  *routeserver.Server
}

// e23Group starts a 2-replica group (IDs 1 and 2, replica 1 primary) over
// independent clones of the base world.
func e23Group(base *ad.Graph, seed int64) (prim, fol *e23Replica) {
	peers := make([]ha.Peer, 2)
	lns := make([]net.Listener, 2)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		lns[i] = ln
		peers[i] = ha.Peer{ID: uint32(i + 1), HAAddr: ln.Addr().String()}
	}
	mk := func(i int) *e23Replica {
		be, srv := e23Stack(base, seed)
		// A generous failure-detection window: the experiment may share one
		// CPU with the rest of the harness, and a heartbeat starved past the
		// timeout would spuriously promote the follower mid-replication.
		// Only the post-kill promotion wait pays for it, and no counter in
		// the table depends on timing.
		node, err := ha.NewNode(ha.Config{
			ID: uint32(i + 1), Peers: peers,
			HeartbeatEvery:   50 * time.Millisecond,
			HeartbeatTimeout: 2 * time.Second,
			Listener:         lns[i],
		}, be, nil)
		if err != nil {
			panic(err)
		}
		return &e23Replica{node: node, be: be, srv: srv}
	}
	prim, fol = mk(0), mk(1)
	prim.node.Start()
	fol.node.Start()
	return prim, fol
}

// e23PreChurn runs the pre-kill half: each event followed by its workload
// slice, mirrored onto the oracle.
func e23PreChurn(be *daemon.Backend, srv *routeserver.Server, workload []policy.Request, pre []e23Op, o *e23Oracle) {
	for i, op := range pre {
		op.applyTo(be)
		o.apply(op)
		lo := (i * e23PhaseLen) % len(workload)
		routeserver.ServePhase(srv, workload[lo:lo+e23PhaseLen], e23Clients)
	}
}

// e23Measure runs the post-kill half against one server and reports its
// slice counters: each event, its slice, and the legality of every answer
// against the oracle world.
func e23Measure(be *daemon.Backend, srv *routeserver.Server, workload []policy.Request, post []e23Op, o *e23Oracle) (churn int, synth uint64, legal int, hitRate float64) {
	warm := srv.Snapshot()
	for i, op := range post {
		op.applyTo(be)
		o.apply(op)
		lo := ((len(post) + i) * e23PhaseLen) % len(workload)
		slice := workload[lo : lo+e23PhaseLen]
		results := routeserver.ServePhase(srv, slice, e23Clients)
		churn += len(slice)
		for j, req := range slice {
			if e22Legal(o.g, o.db, req, results[j]) {
				legal++
			}
		}
	}
	fin := srv.Snapshot()
	synth = fin.Misses - warm.Misses
	hitRate = float64((fin.Hits-warm.Hits)+(fin.Coalesced-warm.Coalesced)) / float64(churn)
	return churn, synth, legal, hitRate
}

// e23Oracle is the independent legality world: the same base clone mutated
// in lockstep with the measured server, mirroring Backend semantics
// (Restore re-adds the failed link's original class and cost, SetPolicy
// installs a single open term).
type e23Oracle struct {
	g       *ad.Graph
	db      *policy.DB
	removed map[[2]ad.ID]ad.Link
}

func newE23Oracle(base *ad.Graph, seed int64) *e23Oracle {
	g := base.Clone()
	return &e23Oracle{g: g, db: e22Policy(g, seed), removed: make(map[[2]ad.ID]ad.Link)}
}

func (o *e23Oracle) apply(op e23Op) {
	switch op.kind {
	case "fail":
		want := ad.Link{A: op.a, B: op.b}.Canonical()
		for _, l := range o.g.Links() {
			if l.A == want.A && l.B == want.B {
				o.removed[[2]ad.ID{l.A, l.B}] = l
				break
			}
		}
		o.g.RemoveLink(op.a, op.b)
	case "restore":
		key := ad.Link{A: op.a, B: op.b}.Canonical()
		if l, ok := o.removed[[2]ad.ID{key.A, key.B}]; ok {
			delete(o.removed, [2]ad.ID{key.A, key.B})
			_ = o.g.AddLink(l)
		}
	case "policy":
		term := policy.OpenTerm(op.a, 0)
		term.Cost = op.cost
		o.db.SetTerms(op.a, []policy.Term{term})
	}
}

// e23Wait polls cond until it holds, panicking after a generous deadline
// (the barriers wait on real goroutines and sockets; the counters they
// guard stay deterministic).
func e23Wait(cond func() bool, what string) {
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			panic("e23: timed out waiting for " + what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
