package experiments

import (
	"repro/internal/ad"
	"repro/internal/flood"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// E16DatabaseDistribution explores §6's open issue of "database
// distribution strategies to provide the needed information for route
// computation while minimizing routing-data distribution overhead."
//
// Two strategies flood the same LSDB over the same internet:
//
//   - classic: every AD re-floods to every neighbor (duplicate-suppressed);
//   - tree-scoped: LSAs travel only over a precomputed spanning tree,
//     eliminating duplicate copies entirely.
//
// The experiment measures the traffic saved by tree scoping and its price:
// after an on-tree link fails, LSAs no longer reach the subtree, and the
// databases diverge (staleness) — classic flooding reconverges through the
// redundant links.
func E16DatabaseDistribution(seed int64) *metrics.Table {
	t := metrics.NewTable("E16 — LSDB distribution strategies",
		"strategy", "phase", "messages", "bytes", "complete-LSDBs", "stale-LSDBs")

	run := func(strategy string, scoped bool) {
		topo := topology.Generate(topology.Config{
			Seed: seed, Backbones: 2, RegionalsPerBackbone: 3,
			CampusesPerParent: 2, LateralProb: 0.3, BypassProb: 0.15,
		})
		g := topo.Graph
		db := policy.OpenDB(g)
		nw := sim.NewNetwork(g, seed)
		var tree map[[2]ad.ID]bool
		if scoped {
			tree = spanningTree(g)
		}
		nodes := make(map[ad.ID]*distNode)
		for _, id := range g.IDs() {
			n := &distNode{f: flood.NewFlooder(id, "lsa"), terms: db.Terms(id)}
			if scoped {
				self := id
				n.f.Scope = func(nb ad.ID) bool {
					return tree[linkKey(self, nb)]
				}
			}
			nodes[id] = n
			nw.AddNode(n)
		}
		nw.Start()
		nw.RunToQuiescence(convergenceLimit)

		count := func() (complete, stale int) {
			want := g.NumADs()
			for _, n := range nodes {
				if n.f.DB.Len() == want {
					complete++
				} else {
					stale++
				}
			}
			return
		}
		c0, s0 := count()
		t.AddRow(strategy, "initial", nw.Stats.MessagesSent, nw.Stats.BytesSent, c0, s0)

		// Fail one on-tree, non-partitioning link (the same in both
		// runs): classic flooding can then reconverge through the
		// redundant paths, while the tree-scoped strategy cannot.
		victim := firstCycleTreeLink(g)
		_ = nw.FailLink(victim.A, victim.B)
		nw.Engine.Run()
		// Staleness: after re-origination, how many ADs learned the
		// newest LSAs of the failed link's endpoints?
		fresh := 0
		for _, n := range nodes {
			la, oka := n.f.DB.Get(victim.A)
			lb, okb := n.f.DB.Get(victim.B)
			if oka && okb && la.Seq >= 2 && lb.Seq >= 2 {
				fresh++
			}
		}
		t.AddRow(strategy, "post-failure", nw.Stats.MessagesSent, nw.Stats.BytesSent,
			fresh, g.NumADs()-fresh)
	}

	run("classic-flood", false)
	run("tree-scoped", true)

	t.AddNote("complete-LSDBs counts ADs holding every origin; post-failure it counts ADs holding the re-originated LSAs")
	t.AddNote("tree scoping removes duplicate copies but strands the subtree when a tree link fails — the §6 tradeoff")
	return t
}

// distNode is a minimal flooding-only node for the distribution experiment.
type distNode struct {
	f     *flood.Flooder
	terms []policy.Term
}

func (n *distNode) ID() ad.ID             { return n.f.Self }
func (n *distNode) Start(nw *sim.Network) { n.f.Originate(nw, n.terms) }
func (n *distNode) Receive(nw *sim.Network, from ad.ID, payload []byte) {
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		return
	}
	if lsa, ok := msg.(*wire.LSA); ok {
		n.f.HandleLSA(nw, from, lsa)
	}
}
func (n *distNode) LinkDown(nw *sim.Network, nb ad.ID) { n.f.Originate(nw, n.terms) }
func (n *distNode) LinkUp(nw *sim.Network, nb ad.ID)   { n.f.Originate(nw, n.terms) }

// spanningTree returns the links of a BFS spanning tree rooted at the
// lowest AD ID — a globally consistent tree every node can compute.
func spanningTree(g *ad.Graph) map[[2]ad.ID]bool {
	tree := make(map[[2]ad.ID]bool)
	ids := g.IDs()
	if len(ids) == 0 {
		return tree
	}
	root := ids[0]
	seen := map[ad.ID]bool{root: true}
	queue := []ad.ID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(cur) {
			if seen[nb] {
				continue
			}
			seen[nb] = true
			tree[linkKey(cur, nb)] = true
			queue = append(queue, nb)
		}
	}
	return tree
}

func linkKey(a, b ad.ID) [2]ad.ID {
	if a > b {
		a, b = b, a
	}
	return [2]ad.ID{a, b}
}

// firstCycleTreeLink returns the first spanning-tree link whose removal
// leaves the graph connected (a tree link with a redundant detour). Such a
// link always exists when the graph has any cycle touching the tree.
func firstCycleTreeLink(g *ad.Graph) ad.Link {
	tree := spanningTree(g)
	for _, l := range g.Links() {
		if !tree[linkKey(l.A, l.B)] {
			continue
		}
		trial := g.Clone()
		trial.RemoveLink(l.A, l.B)
		if trial.Connected() {
			return l
		}
	}
	return g.Links()[0]
}
