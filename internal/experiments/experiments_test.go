package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

const seed = 42

func TestTable1DesignSpace(t *testing.T) {
	tbl := Table1DesignSpace(seed)
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(tbl.Rows))
	}
	avail := map[string]float64{}
	illegal := map[string]float64{}
	for _, row := range tbl.Rows {
		avail[row[0]] = parseFloat(t, row[4])
		illegal[row[0]] = parseFloat(t, row[5])
	}
	// The paper's conclusion: the LS + source routing + policy terms
	// architecture dominates on availability.
	if avail["orwg"] < 0.999 {
		t.Errorf("orwg availability = %.3f, want 1.0", avail["orwg"])
	}
	for _, p := range []string{"plain-dv", "egp", "bgp", "ecma", "idrp", "ls-hop-by-hop", "filters"} {
		if avail[p] > avail["orwg"]+1e-9 {
			t.Errorf("%s availability %.3f exceeds orwg %.3f", p, avail[p], avail["orwg"])
		}
	}
	// Policy-blind protocols violate policies; ORWG never does.
	if illegal["plain-dv"] == 0 {
		t.Error("plain-dv produced no illegal deliveries under restricted policy")
	}
	if illegal["bgp"] == 0 {
		t.Error("bgp produced no illegal deliveries under restricted policy")
	}
	if illegal["orwg"] != 0 {
		t.Errorf("orwg illegal deliveries = %v", illegal["orwg"])
	}
	// Multi-route IDRP at least matches single-route.
	if avail["idrp-multi"]+1e-9 < avail["idrp"] {
		t.Errorf("idrp-multi %.3f < idrp %.3f", avail["idrp-multi"], avail["idrp"])
	}
}

func TestFigure1Table(t *testing.T) {
	tbl := Figure1Topology()
	vals := map[string]string{}
	for _, row := range tbl.Rows {
		vals[row[0]] = row[1]
	}
	if vals["backbones"] != "2" || vals["lateral links"] != "2" || vals["bypass links"] != "1" {
		t.Errorf("figure 1 structure wrong: %v", vals)
	}
	if vals["connected"] != "true" || vals["contains cycles"] != "true" {
		t.Errorf("figure 1 invariants wrong: %v", vals)
	}
}

func TestE1AvailabilityMonotonicity(t *testing.T) {
	tbl := E1RouteAvailability(seed)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		orwg := parseFloat(t, row[8])
		if orwg < 0.999 {
			t.Errorf("restriction %s: orwg availability %.3f < 1", row[0], orwg)
		}
		idrp := parseFloat(t, row[6])
		lshh := parseFloat(t, row[7])
		if idrp > orwg+1e-9 || lshh > orwg+1e-9 {
			t.Errorf("restriction %s: hop-by-hop beats source routing", row[0])
		}
	}
	// At the highest restriction, IDRP must lose availability vs ORWG.
	last := tbl.Rows[len(tbl.Rows)-1]
	if parseFloat(t, last[6]) >= parseFloat(t, last[8]) {
		t.Errorf("full restriction: idrp %.3f !< orwg %.3f", parseFloat(t, last[6]), parseFloat(t, last[8]))
	}
	// BGP and ECMA leak illegal deliveries once restrictions exist.
	bgpLeaked, ecmaLeaked := false, false
	for _, row := range tbl.Rows[1:] {
		if parseFloat(t, row[3]) > 0 {
			bgpLeaked = true
		}
		if parseFloat(t, row[5]) > 0 {
			ecmaLeaked = true
		}
	}
	if !ecmaLeaked {
		t.Error("ECMA never leaked under source restrictions")
	}
	if !bgpLeaked {
		t.Error("BGP never leaked under source restrictions")
	}
}

func TestE2ConvergenceClaims(t *testing.T) {
	tbl := E2Convergence(seed)
	msgs := map[string]float64{}
	for _, row := range tbl.Rows {
		msgs[row[0]] = parseFloat(t, row[3])
		if row[5] != "true" {
			t.Errorf("%s did not quiesce", row[0])
		}
	}
	if msgs["plain-dv(no-split)"] <= msgs["plain-dv(split-horizon)"] {
		t.Errorf("count-to-infinity not visible: no-split %v <= split %v",
			msgs["plain-dv(no-split)"], msgs["plain-dv(split-horizon)"])
	}
	if msgs["ecma"] > msgs["ecma(no-ordering)"] {
		t.Errorf("ordering did not reduce failure traffic: %v > %v",
			msgs["ecma"], msgs["ecma(no-ordering)"])
	}
}

func TestE3ReplicationGrowsWithSources(t *testing.T) {
	tbl := E3SpanningTreeReplication(seed)
	var prev float64 = -1
	for _, row := range tbl.Rows {
		sources := parseFloat(t, row[0])
		hub := parseFloat(t, row[1])
		if hub != sources {
			t.Errorf("hub computations %v != sources %v", hub, sources)
		}
		if hub <= prev {
			t.Error("hub computations not growing")
		}
		prev = hub
		if parseFloat(t, row[3]) != 0 {
			t.Error("orwg transit computations nonzero")
		}
	}
}

func TestE4QOSStateGrowth(t *testing.T) {
	tbl := E4QOSScaling(seed)
	firstEcma := parseFloat(t, tbl.Rows[0][1])
	lastEcma := parseFloat(t, tbl.Rows[len(tbl.Rows)-1][1])
	if lastEcma < 4*firstEcma {
		t.Errorf("ECMA state did not scale with QOS classes: %v -> %v", firstEcma, lastEcma)
	}
	firstOrwg := parseFloat(t, tbl.Rows[0][5])
	lastOrwg := parseFloat(t, tbl.Rows[len(tbl.Rows)-1][5])
	if lastOrwg > 1.5*firstOrwg {
		t.Errorf("ORWG state grew with QOS classes: %v -> %v", firstOrwg, lastOrwg)
	}
}

func TestE5HeaderSavings(t *testing.T) {
	tbl := E5SetupVsHandle(seed)
	for _, row := range tbl.Rows {
		saving := parseFloat(t, row[6])
		if saving <= 1 {
			t.Errorf("cap %s: source-route/handle header ratio %.3f <= 1", row[0], saving)
		}
	}
	// Unlimited cache: perfect hit rate; tiny cache: evictions occur.
	if parseFloat(t, tbl.Rows[0][7]) < 0.999 {
		t.Errorf("unlimited cache hit rate %.3f < 1", parseFloat(t, tbl.Rows[0][7]))
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if parseFloat(t, last[8]) == 0 {
		t.Error("tiny cache produced no evictions")
	}
	if parseFloat(t, last[7]) >= parseFloat(t, tbl.Rows[0][7]) {
		t.Error("tiny cache hit rate not below unlimited")
	}
}

func TestE6EGPRestriction(t *testing.T) {
	tbl := E6EGPTopologyRestriction(seed)
	byKey := map[string][]string{}
	for _, row := range tbl.Rows {
		byKey[row[0]+"/"+row[1]] = row
	}
	// Initial phases deliver everything, no loops, on both topologies.
	for _, k := range []string{"tree/initial", "mesh/initial"} {
		row := byKey[k]
		if row[3] != row[2] || row[4] != "0" {
			t.Errorf("%s: delivered=%s/%s loops=%s", k, row[3], row[2], row[4])
		}
	}
	parseFrac := func(s string) (int, int) {
		var a, b int
		if _, err := fmt.Sscanf(s, "%d/%d", &a, &b); err != nil {
			t.Fatalf("parse frac %q: %v", s, err)
		}
		return a, b
	}
	// Static EGP never loops, anywhere.
	for _, k := range []string{"tree/post-failure static", "mesh/post-failure static"} {
		if byKey[k][4] != "0" {
			t.Errorf("%s: loops = %s, want 0", k, byKey[k][4])
		}
		if li, _ := parseFrac(byKey[k][6]); li != 0 {
			t.Errorf("%s: loop-inducing failures = %d, want 0", k, li)
		}
	}
	// Adaptive fallback on the mesh forms persistent loops.
	meshLoops, meshLinks := parseFrac(byKey["mesh/post-failure adaptive"][6])
	if meshLoops == 0 {
		t.Errorf("no loop-inducing failures on adaptive mesh (%d links)", meshLinks)
	}
	// Adaptation buys deliveries on the mesh relative to static EGP.
	if parseFloat(t, byKey["mesh/post-failure adaptive"][3]) < parseFloat(t, byKey["mesh/post-failure static"][3]) {
		t.Error("adaptive EGP delivered less than static on the mesh")
	}
}

func TestE7StrategyTradeoffs(t *testing.T) {
	tbl := E7SynthesisStrategies(seed)
	// Group rows by size; within each, check the tradeoff shape.
	for i := 0; i+3 < len(tbl.Rows); i += 4 {
		pre, dem, hyb, pru := tbl.Rows[i], tbl.Rows[i+1], tbl.Rows[i+2], tbl.Rows[i+3]
		if pre[1] != "precomputed" || dem[1] != "on-demand" || hyb[1] != "hybrid" || pru[1] != "pruned" {
			t.Fatalf("row order unexpected: %v %v %v %v", pre[1], dem[1], hyb[1], pru[1])
		}
		if parseFloat(t, pre[2]) <= parseFloat(t, hyb[2]) {
			t.Error("precompute-everything does not cost more than hybrid precompute")
		}
		if parseFloat(t, dem[2]) != 0 {
			t.Error("on-demand charged precompute work")
		}
		if parseFloat(t, hyb[4]) <= parseFloat(t, dem[4]) {
			t.Error("hybrid hit rate not above on-demand")
		}
		if parseFloat(t, pru[4]) <= parseFloat(t, dem[4]) {
			t.Error("pruned hit rate not above on-demand")
		}
		if parseFloat(t, pru[2]) >= parseFloat(t, pre[2]) {
			t.Error("pruned precompute not cheaper than precompute-everything")
		}
	}
}

func TestE8GranularityCosts(t *testing.T) {
	tbl := E8PolicyGranularity(seed)
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	if parseFloat(t, last[1]) <= parseFloat(t, first[1]) {
		t.Error("terms did not grow")
	}
	if parseFloat(t, last[2]) <= parseFloat(t, first[2]) {
		t.Error("LSDB bytes did not grow with granularity")
	}
	if parseFloat(t, last[3]) <= parseFloat(t, first[3]) {
		t.Error("flood bytes did not grow with granularity")
	}
	// Semantics preserved: availability stays 1.0.
	for _, row := range tbl.Rows {
		if parseFloat(t, row[5]) < 0.999 {
			t.Errorf("granularity %s lost availability %s", row[0], row[5])
		}
	}
}

func TestE9TrafficGrowsWithSize(t *testing.T) {
	tbl := E9MessageScaling(seed)
	// For each protocol, bytes must grow with AD count.
	byProto := map[string][]float64{}
	for _, row := range tbl.Rows {
		byProto[row[2]] = append(byProto[row[2]], parseFloat(t, row[4]))
	}
	for proto, bytes := range byProto {
		for i := 1; i < len(bytes); i++ {
			if bytes[i] <= bytes[i-1] {
				t.Errorf("%s: bytes not growing: %v", proto, bytes)
				break
			}
		}
	}
}

func TestE10SatisfiabilityDecays(t *testing.T) {
	tbl := E10OrderingSatisfiability(seed)
	first := parseFloat(t, tbl.Rows[0][1])
	last := parseFloat(t, tbl.Rows[len(tbl.Rows)-1][1])
	if first < 0.9 {
		t.Errorf("few constraints should almost always be satisfiable: %v", first)
	}
	if last > 0.05 {
		t.Errorf("many constraints should almost never be satisfiable: %v", last)
	}
	// Negotiation rounds grow.
	if parseFloat(t, tbl.Rows[len(tbl.Rows)-1][2]) <= parseFloat(t, tbl.Rows[0][2]) {
		t.Error("negotiation rounds did not grow")
	}
}

func TestE11FiltersWorse(t *testing.T) {
	tbl := E11FilterDiscovery(seed)
	f, o := tbl.Rows[0], tbl.Rows[1]
	if parseFloat(t, f[3]) == 0 {
		t.Error("filters dropped no packets")
	}
	if parseFloat(t, o[3]) != 0 {
		t.Error("orwg dropped packets")
	}
	if parseFloat(t, f[1]) > parseFloat(t, o[1]) {
		t.Error("filters delivered more than orwg")
	}
	if parseFloat(t, f[6]) <= parseFloat(t, o[6]) {
		t.Error("filter p95 latency not worse than orwg")
	}
}

func TestE12MultiRouteTradeoff(t *testing.T) {
	tbl := E12IDRPMultiRoute(seed)
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	if parseFloat(t, last[1]) < parseFloat(t, first[1]) {
		t.Error("more routes reduced availability")
	}
	if parseFloat(t, last[3]) <= parseFloat(t, first[3]) {
		t.Error("more routes did not increase state")
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tables := All(seed)
	if len(tables) != 27 {
		t.Fatalf("tables = %d, want 27", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("table %q empty", tbl.Title)
		}
		if tbl.String() == "" {
			t.Errorf("table %q renders empty", tbl.Title)
		}
	}
}

func TestRunAllParallelDeterminism(t *testing.T) {
	// The parallel runner must render byte-identical tables regardless of
	// parallelism: every experiment (and every Table 1 protocol run) owns
	// its engine and RNGs, and results land in fixed slots.
	if testing.Short() {
		t.Skip("long")
	}
	render := func(tables []*metrics.Table) string {
		var b strings.Builder
		for _, tbl := range tables {
			b.WriteString(tbl.String())
		}
		return b.String()
	}
	serial := render(RunAll(seed, 1))
	parallel := render(RunAll(seed, 8))
	if serial != parallel {
		t.Error("RunAll(seed, 8) output differs from RunAll(seed, 1)")
	}
}

func TestExperimentDeterminism(t *testing.T) {
	// Every experiment table must be bit-identical across runs with the
	// same seed; Table 1 exercises every protocol at once.
	a := Table1DesignSpace(seed).String()
	b := Table1DesignSpace(seed).String()
	if a != b {
		t.Error("Table 1 not deterministic across runs")
	}
	// And a different seed must actually change something.
	c := Table1DesignSpace(seed + 1).String()
	if a == c {
		t.Error("Table 1 identical across different seeds")
	}
}
