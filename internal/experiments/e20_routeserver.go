package experiments

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/routeserver"
	"repro/internal/synthesis"
	"repro/internal/trafficgen"
)

// E20RouteServer measures the route-server serving layer (§5.4/§5.4.1):
// a concurrent query engine — sharded route cache, singleflight coalescing,
// generation invalidation — wrapped around each synthesis strategy, serving
// skewed workloads with and without mid-serve churn (a link failure plus a
// policy change, each of which invalidates every cached route).
//
// Reported counters are scheduling-independent by construction: with an
// uncapped cache, negative caching, and coalescing, the server runs exactly
// one synthesis per unique (src,dst,qos,uci,hour) key per generation, so
// "synth" is deterministic even though four client goroutines race on the
// cache. Naive on-demand serving runs one synthesis per request; "saved" is
// the ratio. Wall-clock throughput and tail latency are measured by
// cmd/routed's load mode and BenchmarkE20RouteServer, which emits
// BENCH_routeserver.json.
func E20RouteServer(seed int64) *metrics.Table {
	t := metrics.NewTable("E20 — route-server serving layer",
		"workload", "churn", "strategy", "reqs", "synth", "naive", "saved",
		"cache-rate", "pre-work", "fail", "oracle-ok")

	const requests = 600
	const clients = 4
	base := defaultTopology(seed)

	for _, model := range []string{"uniform", "zipf"} {
		workload := trafficgen.Generate(base.Graph, trafficgen.Config{
			Seed: seed + 2, Requests: requests, StubsOnly: true,
			Model: model, ZipfS: 1.4, QOSClasses: 2, UCIClasses: 2,
		})
		for _, churn := range []bool{false, true} {
			for _, kind := range []string{"on-demand", "precomputed", "hybrid", "pruned"} {
				// Churn mutates the graph and policy database, so every
				// row gets a private copy of both.
				g := base.Graph.Clone()
				db := restrictedPolicy(g, seed)
				srv := routeserver.New(buildE20Strategy(kind, g, db, workload), routeserver.Config{})

				phases := [][]policy.Request{workload}
				if churn {
					phases = [][]policy.Request{workload[:requests/2], workload[requests/2:]}
				}
				var oracleOK, failures int
				for pi, phase := range phases {
					if pi > 0 {
						srv.Mutate(func() { applyE20Churn(g, db) })
					}
					results := routeserver.ServePhase(srv, phase, clients)
					for i, req := range phase {
						want := synthesis.FindRoute(g, db, req)
						if results[i].Found == want.Found &&
							(!want.Found || results[i].Path.Equal(want.Path)) {
							oracleOK++
						}
						if !results[i].Found {
							failures++
						}
					}
				}

				snap := srv.Snapshot()
				churnLabel := "none"
				if churn {
					churnLabel = "fail+policy"
				}
				t.AddRow(model, churnLabel, srv.StrategyName(),
					requests, snap.Misses, requests,
					metrics.Ratio(float64(requests), float64(snap.Misses)),
					snap.HitRate(),
					srv.StrategyStats().PrecomputeExpansions,
					failures, oracleOK)
			}
		}
	}
	t.AddNote("synth = synthesis computations run by the serving layer (4 concurrent clients); naive on-demand serving runs one per request")
	t.AddNote("saved = naive/synth; coalescing + caching computes each unique key once per generation, so skewed workloads save most (§5.4.1)")
	t.AddNote("churn = a lateral-link failure plus a transit policy change at half-serve; each bumps the cache generation and rebuilds the strategy")
	t.AddNote("oracle-ok = served results identical to the exact search on the then-current topology; throughput/latency: see cmd/routed -load and BENCH_routeserver.json")
	return t
}

// buildE20Strategy constructs the named synthesis strategy for the E20
// internet, covering the workload's class spread (QOS/UCI in {0,1}).
func buildE20Strategy(kind string, g *ad.Graph, db *policy.DB, workload []policy.Request) synthesis.Strategy {
	switch kind {
	case "precomputed":
		var all []policy.Request
		for qos := 0; qos < 2; qos++ {
			for uci := 0; uci < 2; uci++ {
				all = append(all, core.AllPairsRequests(g, true, policy.QOS(qos), policy.UCI(uci))...)
			}
		}
		return synthesis.NewPrecomputed(g, db, all)
	case "hybrid":
		return synthesis.NewHybrid(g, db, hottestRequests(workload, len(workload)/10))
	case "pruned":
		var stubs []ad.ID
		for _, info := range g.ADs() {
			if info.Class == ad.Stub || info.Class == ad.MultihomedStub {
				stubs = append(stubs, info.ID)
			}
		}
		return synthesis.NewPrunedConfig(g, db, stubs, synthesis.PrunedConfig{
			HopRadius: 2, QOSClasses: 2, UCIClasses: 2,
		})
	default:
		return synthesis.NewOnDemand(g, db)
	}
}

// applyE20Churn injects the mid-serve events: the first lateral link fails
// and the busiest transit AD replaces its policy with a single expensive
// open term (rerouting traffic that used it as a cheap transit).
func applyE20Churn(g *ad.Graph, db *policy.DB) {
	for _, l := range g.Links() {
		if l.Class == ad.Lateral {
			g.RemoveLink(l.A, l.B)
			break
		}
	}
	var busiest ad.ID
	bestDeg := -1
	for _, info := range g.ADs() {
		if info.Class != ad.Transit {
			continue
		}
		if d := g.Degree(info.ID); d > bestDeg || (d == bestDeg && info.ID < busiest) {
			busiest, bestDeg = info.ID, d
		}
	}
	if bestDeg >= 0 {
		expensive := policy.OpenTerm(busiest, 0)
		expensive.Cost = 10
		db.SetTerms(busiest, []policy.Term{expensive})
	}
}
