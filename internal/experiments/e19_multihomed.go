package experiments

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/egp"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
	"repro/internal/topology"
)

// E19MultihomedStubs verifies the model requirement of §2.1: "Multi-homed
// ADS are stub ADS that have more than one inter-AD connection but that
// wish to disallow any transit traffic." A topology rich in multi-homed
// stubs (which create tempting shortcuts) is routed by every architecture;
// the experiment counts deliveries that cut through a multi-homed stub —
// each one a violation of the stub's no-transit wish.
func E19MultihomedStubs(seed int64) *metrics.Table {
	topo := topology.Generate(topology.Config{
		Seed: seed, Backbones: 2, RegionalsPerBackbone: 3,
		CampusesPerParent: 3, LateralProb: 0.15, MultihomedProb: 0.5,
	})
	g := topo.Graph
	db := policy.OpenDB(g) // open transit policy; stubs still advertise nothing
	oracle := core.Oracle{G: g, DB: db}
	reqs := core.AllPairsRequests(g, true, 0, 0)

	multihomed := map[ad.ID]bool{}
	nMulti := 0
	for _, info := range g.ADs() {
		if info.Class == ad.MultihomedStub {
			multihomed[info.ID] = true
			nMulti++
		}
	}

	systems := []core.System{
		plaindv.New(g, plaindv.Config{SplitHorizon: true, Seed: seed}),
		egp.New(g, egp.Config{Seed: seed}),
		ecma.New(g, db, ecma.Config{Seed: seed}),
		idrp.New(g, db, idrp.Config{Seed: seed}),
		lshh.New(g, db, lshh.Config{Seed: seed}),
		orwg.New(g, db, orwg.Config{Seed: seed}),
	}
	t := metrics.NewTable("E19 — transit through multi-homed stubs (§2.1 no-transit requirement)",
		"protocol", "delivered", "through-multihomed", "availability")
	for _, sys := range systems {
		sys.Converge(convergenceLimit)
		delivered, through := 0, 0
		legal := 0
		routable := 0
		for _, req := range reqs {
			if oracle.HasRoute(req) {
				routable++
			}
			out := sys.Route(req)
			if !out.Delivered {
				continue
			}
			delivered++
			if oracle.Legal(out.Path, req) {
				legal++
			}
			for i := 1; i < len(out.Path)-1; i++ {
				if multihomed[out.Path[i]] {
					through++
					break
				}
			}
		}
		t.AddRow(sys.Name(), delivered, through,
			metrics.Ratio(float64(legal), float64(routable)))
	}
	t.AddNote("%d of %d ADs are multi-homed stubs; shortest physical paths often cut through them", nMulti, g.NumADs())
	t.AddNote("policy-aware designs never transit a stub because stubs advertise no terms; plain DV and EGP cannot tell")
	return t
}
