package experiments

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/orwg"
)

// E13TimeOfDay exercises the time-of-day policy dimension of §2.3 ("Common
// source and transit policies may be based on such things as ... time of
// day"): a cheap transit offers service only during business hours, an
// expensive one around the clock, and a third destination is reachable
// only through a night-window transit. Route choice and availability are
// measured across the day under ORWG.
func E13TimeOfDay(seed int64) *metrics.Table {
	// Topology: src -- {day (8-18, cheap), allday (dear)} -- d1
	//           src -- night (20-6) -- d2 (only path)
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	day := g.AddAD("day", ad.Transit, ad.Regional)
	allday := g.AddAD("allday", ad.Transit, ad.Regional)
	night := g.AddAD("night", ad.Transit, ad.Regional)
	d1 := g.AddAD("d1", ad.Stub, ad.Campus)
	d2 := g.AddAD("d2", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: day, Cost: 1}, {A: day, B: d1, Cost: 1},
		{A: src, B: allday, Cost: 5}, {A: allday, B: d1, Cost: 5},
		{A: src, B: night, Cost: 1}, {A: night, B: d2, Cost: 1},
	} {
		mustLink(g, l)
	}
	db := policy.NewDB()
	dayTerm := policy.OpenTerm(day, 0)
	dayTerm.Hours = policy.HourWindow{Start: 8, End: 18}
	db.Add(dayTerm)
	db.Add(policy.OpenTerm(allday, 0))
	nightTerm := policy.OpenTerm(night, 0)
	nightTerm.Hours = policy.HourWindow{Start: 20, End: 6}
	db.Add(nightTerm)

	sys := orwg.New(g, db, orwg.Config{Seed: seed})
	sys.Converge(convergenceLimit)
	oracle := core.Oracle{G: g, DB: db}

	t := metrics.NewTable("E13 — time-of-day policies (ORWG)",
		"hour", "d1-via", "d1-legal", "d2-delivered", "d2-routable")
	for hour := uint8(0); hour < 24; hour += 3 {
		req1 := policy.Request{Src: src, Dst: d1, Hour: hour}
		out1 := sys.Route(req1)
		via := "-"
		if out1.Delivered {
			switch {
			case out1.Path.Contains(day):
				via = "day"
			case out1.Path.Contains(allday):
				via = "allday"
			}
		}
		req2 := policy.Request{Src: src, Dst: d2, Hour: hour}
		out2 := sys.Route(req2)
		t.AddRow(fmt.Sprintf("%02d:00", hour), via,
			out1.Delivered && oracle.Legal(out1.Path, req1),
			out2.Delivered, oracle.HasRoute(req2))
	}
	t.AddNote("the cheap day transit serves 08-18; outside it traffic shifts to the expensive always-on transit")
	t.AddNote("d2 is reachable only through a 20-06 window: availability itself is time-dependent")
	return t
}
