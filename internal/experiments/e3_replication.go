package experiments

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/sim"
)

// E3SpanningTreeReplication quantifies §5.3's burden: under hop-by-hop link
// state routing with source-specific policies, a transit AD repeats the
// route computation once per traffic source, while ORWG's source routing
// relieves transit ADs of route computation entirely.
//
// Topology: k sources attached to a two-hop transit chain leading to one
// destination. Every source sends to the destination; we count route
// computations at the first transit hub.
func E3SpanningTreeReplication(seed int64) *metrics.Table {
	t := metrics.NewTable("E3 — per-source computation replication at transit ADs",
		"sources", "lshh-hub-computations", "lshh-total-expansions", "orwg-transit-computations", "orwg-source-expansions")
	for _, k := range []int{2, 4, 8, 16, 32} {
		g, hub, mid, dest, sources := sourcesFanIn(k)
		// Source-specific policy: each transit admits each source via a
		// distinct term, so contexts cannot be merged.
		db := policy.NewDB()
		for _, tr := range []ad.ID{hub, mid} {
			for _, s := range sources {
				term := policy.OpenTerm(tr, 0)
				term.Sources = policy.SetOf(s)
				db.Add(term)
			}
		}

		ls := lshh.New(g, db, lshh.Config{Seed: seed})
		ls.Converge(600 * sim.Second)
		for _, s := range sources {
			ls.Route(policy.Request{Src: s, Dst: dest})
		}

		ow := orwg.New(g, db, orwg.Config{Seed: seed})
		ow.Converge(600 * sim.Second)
		sourceExpansions := 0
		for _, s := range sources {
			res := ow.Establish(policy.Request{Src: s, Dst: dest})
			sourceExpansions += res.SynthesisExpansions
		}
		// ORWG transit ADs validate setups but never compute routes.
		t.AddRow(fmt.Sprintf("%d", k),
			ls.NodeComputations(hub), ls.Expansions(), 0, sourceExpansions)
	}
	t.AddNote("lshh hub computations grow linearly with traffic sources (one spanning-tree run per source)")
	t.AddNote("orwg transit ADs perform setup validation only; computation stays at sources")
	return t
}

// sourcesFanIn builds k sources -> hub -> mid -> dest.
func sourcesFanIn(k int) (*ad.Graph, ad.ID, ad.ID, ad.ID, []ad.ID) {
	g := ad.NewGraph()
	hub := g.AddAD("hub", ad.Transit, ad.Regional)
	mid := g.AddAD("mid", ad.Transit, ad.Regional)
	dest := g.AddAD("dest", ad.Stub, ad.Campus)
	mustLink(g, ad.Link{A: hub, B: mid})
	mustLink(g, ad.Link{A: mid, B: dest})
	var sources []ad.ID
	for i := 0; i < k; i++ {
		s := g.AddAD(fmt.Sprintf("src%d", i), ad.Stub, ad.Campus)
		sources = append(sources, s)
		mustLink(g, ad.Link{A: s, B: hub})
	}
	return g, hub, mid, dest, sources
}

func mustLink(g *ad.Graph, l ad.Link) {
	if err := g.AddLink(l); err != nil {
		panic(err)
	}
}
