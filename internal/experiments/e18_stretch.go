package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
)

// E18PathStretch measures §4.1's acknowledged cost of routing at the AD
// abstraction and of each design's route selection: "As with any
// abstraction or hierarchical routing, some optimality may be lost."
// Stretch is the mean ratio of the delivered path's policy cost to the
// optimal legal cost (1.0 = always optimal). ECMA's valley-free constraint
// and IDRP's single-selected-route both force detours; ORWG's source
// synthesis is cost-optimal by construction.
func E18PathStretch(seed int64) *metrics.Table {
	topo := defaultTopology(seed)
	g := topo.Graph
	// Heterogeneous transit costs and per-destination term splits make
	// the cheapest legal route non-obvious, so selection quality shows.
	// Stretch isolates selection quality, so policies stay open (E1
	// covers availability loss) but costs vary widely.
	db := policy.Generate(g, policy.GenConfig{
		Seed:            seed + 1,
		TermsPerTransit: 2,
		MaxTermCost:     8,
	})
	oracle := core.Oracle{G: g, DB: db}
	reqs := core.AllPairsRequests(g, true, 0, 0)

	type entry struct {
		label string
		sys   core.System
	}
	systems := []entry{
		{"ecma", ecma.New(g, db, ecma.Config{Seed: seed})},
		{"idrp", idrp.New(g, db, idrp.Config{Seed: seed})},
		{"idrp-multi", idrp.New(g, db, idrp.Config{Seed: seed, MultiRoute: 4})},
		{"ls-hop-by-hop", lshh.New(g, db, lshh.Config{Seed: seed})},
		{"lshh-inconsistent", lshh.New(g, db, lshh.Config{Seed: seed, InconsistentTieBreak: true})},
		{"orwg", orwg.New(g, db, orwg.Config{Seed: seed})},
	}
	t := metrics.NewTable("E18 — path stretch (delivered cost / optimal legal cost)",
		"protocol", "delivered-legal", "mean-stretch", "loops", "availability")
	for _, e := range systems {
		m := core.RunScenario(e.sys, oracle, reqs, convergenceLimit)
		t.AddRow(e.label, m.DeliveredLegal, m.Stretch(), m.Looped, m.Availability())
	}
	t.AddNote("stretch computed only over legally delivered pairs; 1.0 means cost-optimal routes")
	t.AddNote("the cost-consistent designs deliver optimal-or-nothing: their penalty is availability, not stretch")
	t.AddNote("lshh-inconsistent (odd ADs minimize hops, not cost) shows the §5.3 consistency requirement: detours and possible loops")
	return t
}
