// Package policytool implements the network-management capability the paper
// lists among its open issues (§6): "it will be imperative for these
// administrators to have available network management tools to assist them
// in predicting the impact of their policies on the service received from
// the routing architecture."
//
// Assess compares the internet's routing behaviour before and after a
// proposed policy change at one AD: which source/destination pairs gain or
// lose legal routes, how the AD's transit load shifts, and how route
// synthesis cost changes.
package policytool

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/synthesis"
)

// PairChange records a traffic pair whose best legal route changed.
type PairChange struct {
	Req policy.Request
	// Before and After are the best legal paths (nil when none).
	Before, After ad.Path
}

// Impact is the predicted effect of replacing one AD's policy terms.
type Impact struct {
	// AD is the AD whose policy is being changed.
	AD ad.ID
	// Requests is the evaluated traffic population size.
	Requests int
	// Gained lists pairs that acquire a legal route; Lost lists pairs
	// that lose theirs.
	Gained, Lost []PairChange
	// Rerouted lists pairs that keep connectivity but shift paths.
	Rerouted []PairChange
	// TransitBefore / TransitAfter count best routes crossing the AD —
	// the traffic the AD invites or sheds with its policy.
	TransitBefore, TransitAfter int
	// WorkBefore / WorkAfter are total synthesis expansions over the
	// request population — the route-computation load the policy causes.
	WorkBefore, WorkAfter int
	// TermsBefore / TermsAfter count the AD's policy terms (flooding
	// footprint).
	TermsBefore, TermsAfter int
}

// ConnectivityDelta is Gained minus Lost.
func (im Impact) ConnectivityDelta() int { return len(im.Gained) - len(im.Lost) }

// Add folds one request's before/after synthesis results into the impact.
// It is the single classification path shared by Assess and the what-if
// plan engine, so the two tools can never disagree on what "gained",
// "lost", or "transit" means.
func (im *Impact) Add(req policy.Request, before, after synthesis.Result) {
	im.Requests++
	im.WorkBefore += before.Expanded
	im.WorkAfter += after.Expanded
	if before.Found && isTransit(before.Path, im.AD) {
		im.TransitBefore++
	}
	if after.Found && isTransit(after.Path, im.AD) {
		im.TransitAfter++
	}
	switch {
	case !before.Found && after.Found:
		im.Gained = append(im.Gained, PairChange{Req: req, After: after.Path})
	case before.Found && !after.Found:
		im.Lost = append(im.Lost, PairChange{Req: req, Before: before.Path})
	case before.Found && after.Found && !before.Path.Equal(after.Path):
		im.Rerouted = append(im.Rerouted, PairChange{Req: req, Before: before.Path, After: after.Path})
	}
}

// Assess evaluates replacing adID's terms with newTerms over the given
// traffic population. The input database is not modified.
func Assess(g *ad.Graph, db *policy.DB, adID ad.ID, newTerms []policy.Term, reqs []policy.Request) Impact {
	after := db.WithTerms(adID, newTerms)
	im := Impact{
		AD:          adID,
		TermsBefore: len(db.Terms(adID)),
		TermsAfter:  len(after.Terms(adID)),
	}
	for _, req := range reqs {
		rb := synthesis.FindRoute(g, db, req)
		ra := synthesis.FindRoute(g, after, req)
		im.Add(req, rb, ra)
	}
	return im
}

// isTransit reports whether id appears strictly inside path.
func isTransit(path ad.Path, id ad.ID) bool {
	for i := 1; i < len(path)-1; i++ {
		if path[i] == id {
			return true
		}
	}
	return false
}

// SummaryLines renders the Gained/Lost/transit digest from raw counts —
// the one rendering path shared by cmd/policytool's report and the routed
// plan command, so the two tools print the same summary and cannot drift.
func SummaryLines(focus ad.ID, transitBefore, transitAfter, gained, lost, rerouted int) []string {
	return []string{
		fmt.Sprintf("transit load: %d -> %d routed pairs cross %v", transitBefore, transitAfter, focus),
		fmt.Sprintf("connectivity: +%d gained, -%d lost, %d rerouted", gained, lost, rerouted),
	}
}

// SummaryLines renders the impact's digest through the shared path.
func (im Impact) SummaryLines() []string {
	return SummaryLines(im.AD, im.TransitBefore, im.TransitAfter,
		len(im.Gained), len(im.Lost), len(im.Rerouted))
}

// Report writes a human-readable impact summary.
func (im Impact) Report(w io.Writer) error {
	var b []byte
	p := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	p("policy impact assessment for %v over %d requests\n", im.AD, im.Requests)
	p("  terms:        %d -> %d\n", im.TermsBefore, im.TermsAfter)
	p("  synthesis:    %d -> %d expansions across the population\n", im.WorkBefore, im.WorkAfter)
	for _, line := range im.SummaryLines() {
		p("  %s\n", line)
	}
	show := func(label string, changes []PairChange, limit int) {
		if len(changes) == 0 {
			return
		}
		p("  %s:\n", label)
		sorted := append([]PairChange(nil), changes...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Req.Src != sorted[j].Req.Src {
				return sorted[i].Req.Src < sorted[j].Req.Src
			}
			return sorted[i].Req.Dst < sorted[j].Req.Dst
		})
		for i, c := range sorted {
			if i == limit {
				p("    ... and %d more\n", len(sorted)-limit)
				break
			}
			switch {
			case c.Before == nil:
				p("    %v gains %v\n", c.Req, c.After)
			case c.After == nil:
				p("    %v loses %v\n", c.Req, c.Before)
			default:
				p("    %v moves %v -> %v\n", c.Req, c.Before, c.After)
			}
		}
	}
	show("lost", im.Lost, 10)
	show("gained", im.Gained, 10)
	show("rerouted", im.Rerouted, 10)
	_, err := w.Write(b)
	return err
}
