// Package policytool implements the network-management capability the paper
// lists among its open issues (§6): "it will be imperative for these
// administrators to have available network management tools to assist them
// in predicting the impact of their policies on the service received from
// the routing architecture."
//
// Assess compares the internet's routing behaviour before and after a
// proposed policy change at one AD: which source/destination pairs gain or
// lose legal routes, how the AD's transit load shifts, and how route
// synthesis cost changes.
package policytool

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/synthesis"
)

// PairChange records a traffic pair whose best legal route changed.
type PairChange struct {
	Req policy.Request
	// Before and After are the best legal paths (nil when none).
	Before, After ad.Path
}

// Impact is the predicted effect of replacing one AD's policy terms.
type Impact struct {
	// AD is the AD whose policy is being changed.
	AD ad.ID
	// Requests is the evaluated traffic population size.
	Requests int
	// Gained lists pairs that acquire a legal route; Lost lists pairs
	// that lose theirs.
	Gained, Lost []PairChange
	// Rerouted lists pairs that keep connectivity but shift paths.
	Rerouted []PairChange
	// TransitBefore / TransitAfter count best routes crossing the AD —
	// the traffic the AD invites or sheds with its policy.
	TransitBefore, TransitAfter int
	// WorkBefore / WorkAfter are total synthesis expansions over the
	// request population — the route-computation load the policy causes.
	WorkBefore, WorkAfter int
	// TermsBefore / TermsAfter count the AD's policy terms (flooding
	// footprint).
	TermsBefore, TermsAfter int
}

// ConnectivityDelta is Gained minus Lost.
func (im Impact) ConnectivityDelta() int { return len(im.Gained) - len(im.Lost) }

// Assess evaluates replacing adID's terms with newTerms over the given
// traffic population. The input database is not modified.
func Assess(g *ad.Graph, db *policy.DB, adID ad.ID, newTerms []policy.Term, reqs []policy.Request) Impact {
	after := db.WithTerms(adID, newTerms)
	im := Impact{
		AD:          adID,
		Requests:    len(reqs),
		TermsBefore: len(db.Terms(adID)),
		TermsAfter:  len(after.Terms(adID)),
	}
	for _, req := range reqs {
		rb := synthesis.FindRoute(g, db, req)
		ra := synthesis.FindRoute(g, after, req)
		im.WorkBefore += rb.Expanded
		im.WorkAfter += ra.Expanded
		if rb.Found && isTransit(rb.Path, adID) {
			im.TransitBefore++
		}
		if ra.Found && isTransit(ra.Path, adID) {
			im.TransitAfter++
		}
		switch {
		case !rb.Found && ra.Found:
			im.Gained = append(im.Gained, PairChange{Req: req, After: ra.Path})
		case rb.Found && !ra.Found:
			im.Lost = append(im.Lost, PairChange{Req: req, Before: rb.Path})
		case rb.Found && ra.Found && !rb.Path.Equal(ra.Path):
			im.Rerouted = append(im.Rerouted, PairChange{Req: req, Before: rb.Path, After: ra.Path})
		}
	}
	return im
}

// isTransit reports whether id appears strictly inside path.
func isTransit(path ad.Path, id ad.ID) bool {
	for i := 1; i < len(path)-1; i++ {
		if path[i] == id {
			return true
		}
	}
	return false
}

// Report writes a human-readable impact summary.
func (im Impact) Report(w io.Writer) error {
	var b []byte
	p := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	p("policy impact assessment for %v over %d requests\n", im.AD, im.Requests)
	p("  terms:        %d -> %d\n", im.TermsBefore, im.TermsAfter)
	p("  transit load: %d -> %d routed pairs cross %v\n", im.TransitBefore, im.TransitAfter, im.AD)
	p("  synthesis:    %d -> %d expansions across the population\n", im.WorkBefore, im.WorkAfter)
	p("  connectivity: +%d gained, -%d lost, %d rerouted\n", len(im.Gained), len(im.Lost), len(im.Rerouted))
	show := func(label string, changes []PairChange, limit int) {
		if len(changes) == 0 {
			return
		}
		p("  %s:\n", label)
		sorted := append([]PairChange(nil), changes...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Req.Src != sorted[j].Req.Src {
				return sorted[i].Req.Src < sorted[j].Req.Src
			}
			return sorted[i].Req.Dst < sorted[j].Req.Dst
		})
		for i, c := range sorted {
			if i == limit {
				p("    ... and %d more\n", len(sorted)-limit)
				break
			}
			switch {
			case c.Before == nil:
				p("    %v gains %v\n", c.Req, c.After)
			case c.After == nil:
				p("    %v loses %v\n", c.Req, c.Before)
			default:
				p("    %v moves %v -> %v\n", c.Req, c.Before, c.After)
			}
		}
	}
	show("lost", im.Lost, 10)
	show("gained", im.Gained, 10)
	show("rerouted", im.Rerouted, 10)
	_, err := w.Write(b)
	return err
}
