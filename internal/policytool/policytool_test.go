package policytool

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/topology"
)

// diamondNet: src -- {t1 cheap, t2 dear} -- d.
func diamondNet(t *testing.T) (*ad.Graph, ad.ID, ad.ID, ad.ID, ad.ID) {
	t.Helper()
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	d := g.AddAD("d", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: t1, Cost: 1}, {A: t1, B: d, Cost: 1},
		{A: src, B: t2, Cost: 5}, {A: t2, B: d, Cost: 5},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return g, src, t1, t2, d
}

func TestAssessRestrictionShedsTransit(t *testing.T) {
	g, src, t1, t2, d := diamondNet(t)
	db := policy.NewDB()
	db.Add(policy.OpenTerm(t1, 0))
	db.Add(policy.OpenTerm(t2, 0))
	reqs := []policy.Request{{Src: src, Dst: d}, {Src: d, Dst: src}}

	// t1 closes to everyone except d's own traffic sourced at d.
	restricted := policy.OpenTerm(t1, 0)
	restricted.Sources = policy.SetOf(d)
	im := Assess(g, db, t1, []policy.Term{restricted}, reqs)

	if im.TransitBefore != 2 {
		t.Errorf("TransitBefore = %d, want 2 (both directions via cheap t1)", im.TransitBefore)
	}
	if im.TransitAfter != 1 {
		t.Errorf("TransitAfter = %d, want 1 (only d->src still permitted)", im.TransitAfter)
	}
	// Connectivity survives via t2: nothing lost, one pair rerouted.
	if len(im.Lost) != 0 || len(im.Gained) != 0 {
		t.Errorf("lost=%d gained=%d, want 0/0", len(im.Lost), len(im.Gained))
	}
	if len(im.Rerouted) != 1 {
		t.Fatalf("rerouted = %d, want 1", len(im.Rerouted))
	}
	if !im.Rerouted[0].After.Contains(t2) {
		t.Errorf("rerouted path %v should use t2", im.Rerouted[0].After)
	}
	if im.ConnectivityDelta() != 0 {
		t.Errorf("delta = %d", im.ConnectivityDelta())
	}
}

func TestAssessClosureLosesConnectivity(t *testing.T) {
	g, src, t1, _, d := diamondNet(t)
	// Only t1 has terms; t2 is closed from the start.
	db := policy.NewDB()
	db.Add(policy.OpenTerm(t1, 0))
	reqs := []policy.Request{{Src: src, Dst: d}}

	im := Assess(g, db, t1, nil, reqs) // withdraw all terms
	if len(im.Lost) != 1 {
		t.Fatalf("lost = %d, want 1", len(im.Lost))
	}
	if im.ConnectivityDelta() != -1 {
		t.Errorf("delta = %d, want -1", im.ConnectivityDelta())
	}
	if im.TermsBefore != 1 || im.TermsAfter != 0 {
		t.Errorf("terms %d -> %d", im.TermsBefore, im.TermsAfter)
	}
}

func TestAssessRelaxationGainsConnectivity(t *testing.T) {
	g, src, t1, t2, d := diamondNet(t)
	db := policy.NewDB() // no transit at all
	_ = t2
	reqs := []policy.Request{{Src: src, Dst: d}, {Src: d, Dst: src}}
	im := Assess(g, db, t1, []policy.Term{policy.OpenTerm(t1, 0)}, reqs)
	if len(im.Gained) != 2 {
		t.Fatalf("gained = %d, want 2", len(im.Gained))
	}
	if im.ConnectivityDelta() != 2 {
		t.Errorf("delta = %d", im.ConnectivityDelta())
	}
}

func TestAssessDoesNotMutateInput(t *testing.T) {
	g, src, t1, _, d := diamondNet(t)
	db := policy.NewDB()
	db.Add(policy.OpenTerm(t1, 0))
	before := db.NumTerms()
	Assess(g, db, t1, nil, []policy.Request{{Src: src, Dst: d}})
	if db.NumTerms() != before {
		t.Error("Assess mutated the input database")
	}
	if !db.PathLegal(ad.Path{src, t1, d}, policy.Request{Src: src, Dst: d}) {
		t.Error("original database semantics changed")
	}
}

func TestReportRendering(t *testing.T) {
	g, src, t1, _, d := diamondNet(t)
	db := policy.NewDB()
	db.Add(policy.OpenTerm(t1, 0))
	im := Assess(g, db, t1, nil, []policy.Request{{Src: src, Dst: d}})
	var buf bytes.Buffer
	if err := im.Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"policy impact assessment", "transit load", "lost", "loses"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportTruncation(t *testing.T) {
	// More than 10 lost pairs must truncate with an "and N more" line.
	topo := topology.Generate(topology.Config{Seed: 5, Backbones: 1, RegionalsPerBackbone: 1, CampusesPerParent: 8})
	g := topo.Graph
	db := policy.OpenDB(g)
	var regional ad.ID
	for _, info := range g.ADs() {
		if info.Level == ad.Regional {
			regional = info.ID
		}
	}
	reqs := core.AllPairsRequests(g, true, 0, 0)
	im := Assess(g, db, regional, nil, reqs)
	if len(im.Lost) <= 10 {
		t.Fatalf("scenario produced only %d losses; need > 10", len(im.Lost))
	}
	var buf bytes.Buffer
	if err := im.Report(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "more") {
		t.Error("report not truncated")
	}
}

func TestAssessOnGeneratedInternet(t *testing.T) {
	topo := topology.Generate(topology.Config{Seed: 9, LateralProb: 0.3})
	g := topo.Graph
	db := policy.OpenDB(g)
	reqs := core.AllPairsRequests(g, true, 0, 0)
	// Closing a regional with redundancy mostly reroutes; closing a
	// bridge loses pairs. Either way the accounting must balance.
	for _, info := range g.ADs() {
		if info.Class != ad.Transit {
			continue
		}
		im := Assess(g, db, info.ID, nil, reqs)
		if len(im.Gained) != 0 {
			t.Errorf("closing %v gained %d pairs", info.ID, len(im.Gained))
		}
		if im.TransitAfter != 0 {
			t.Errorf("closing %v left transit load %d", info.ID, im.TransitAfter)
		}
	}
}
