package ordering

import (
	"math/rand"
	"testing"

	"repro/internal/ad"
	"repro/internal/topology"
)

func TestFromLevels(t *testing.T) {
	topo := topology.Figure1()
	o := FromLevels(topo.Graph)
	if o.Len() != topo.Graph.NumADs() {
		t.Fatalf("Len = %d, want %d", o.Len(), topo.Graph.NumADs())
	}
	if !o.Strict(topo.Graph.IDs()) {
		t.Error("ordering not strict")
	}
	// Backbones rank above regionals, which rank above campuses.
	bb := topo.ByLevel[ad.Backbone][0]
	reg := topo.ByLevel[ad.Regional][0]
	cam := topo.ByLevel[ad.Campus][0]
	if o.Rank(bb) <= o.Rank(reg) || o.Rank(reg) <= o.Rank(cam) {
		t.Errorf("ranks: bb=%d reg=%d cam=%d", o.Rank(bb), o.Rank(reg), o.Rank(cam))
	}
	if o.Direction(cam, reg) != Up || o.Direction(reg, cam) != Down {
		t.Error("Direction wrong for hierarchical link")
	}
}

func TestUpDownValid(t *testing.T) {
	topo := topology.Figure1()
	o := FromLevels(topo.Graph)
	bb := topo.ByLevel[ad.Backbone]
	reg := topo.ByLevel[ad.Regional]
	cam := topo.ByLevel[ad.Campus]
	// campus -> regional -> backbone -> regional -> campus: up,up,down,down = valid.
	valley := ad.Path{cam[0], reg[0], bb[0], reg[1], cam[2]}
	if !o.UpDownValid(valley) {
		t.Error("valley-free path rejected")
	}
	// campus -> regional -> campus -> regional: down then up = invalid.
	bad := ad.Path{reg[0], cam[0], reg[0]} // down then up (also a loop)
	if o.UpDownValid(bad) {
		t.Error("up-after-down path accepted")
	}
	// Pure up and pure down paths are valid.
	if !o.UpDownValid(ad.Path{cam[0], reg[0], bb[0]}) {
		t.Error("pure up path rejected")
	}
	if !o.UpDownValid(ad.Path{bb[0], reg[0], cam[0]}) {
		t.Error("pure down path rejected")
	}
	// Single node and empty paths are trivially valid.
	if !o.UpDownValid(ad.Path{cam[0]}) || !o.UpDownValid(nil) {
		t.Error("trivial paths rejected")
	}
}

func TestDirectionString(t *testing.T) {
	if Up.String() != "up" || Down.String() != "down" {
		t.Error("Direction.String wrong")
	}
}

func TestFromConstraintsSimple(t *testing.T) {
	cons := []Constraint{{Above: 1, Below: 2}, {Above: 2, Below: 3}}
	o, ok := FromConstraints([]ad.ID{1, 2, 3, 4}, cons)
	if !ok {
		t.Fatal("satisfiable set reported unsatisfiable")
	}
	if o.Rank(1) <= o.Rank(2) || o.Rank(2) <= o.Rank(3) {
		t.Errorf("ranks violate constraints: 1=%d 2=%d 3=%d", o.Rank(1), o.Rank(2), o.Rank(3))
	}
	// Unconstrained AD 4 ranks below constrained ones.
	if o.Rank(4) >= o.Rank(3) {
		t.Errorf("unconstrained AD 4 rank %d >= AD3 rank %d", o.Rank(4), o.Rank(3))
	}
}

func TestFromConstraintsCycle(t *testing.T) {
	cons := []Constraint{{Above: 1, Below: 2}, {Above: 2, Below: 3}, {Above: 3, Below: 1}}
	if _, ok := FromConstraints(nil, cons); ok {
		t.Error("cyclic constraints reported satisfiable")
	}
	if Satisfiable(cons) {
		t.Error("Satisfiable(cycle) = true")
	}
	if !Satisfiable(cons[:2]) {
		t.Error("Satisfiable(chain) = false")
	}
	// Self-constraint is trivially unsatisfiable.
	if Satisfiable([]Constraint{{Above: 7, Below: 7}}) {
		t.Error("self-constraint satisfiable")
	}
}

func TestFromConstraintsDiamond(t *testing.T) {
	// 1 above 2 and 3; both above 4. Must be satisfiable with 1 on top.
	cons := []Constraint{
		{Above: 1, Below: 2}, {Above: 1, Below: 3},
		{Above: 2, Below: 4}, {Above: 3, Below: 4},
	}
	o, ok := FromConstraints(nil, cons)
	if !ok {
		t.Fatal("diamond unsatisfiable")
	}
	for _, c := range cons {
		if o.Rank(c.Above) <= o.Rank(c.Below) {
			t.Errorf("constraint %v violated: %d <= %d", c, o.Rank(c.Above), o.Rank(c.Below))
		}
	}
}

func TestNegotiate(t *testing.T) {
	cons := []Constraint{
		{Above: 1, Below: 2}, {Above: 2, Below: 3}, {Above: 3, Below: 1}, // cycle
		{Above: 4, Below: 5}, // independent
	}
	kept, rounds := Negotiate(cons)
	if rounds != 1 {
		t.Errorf("rounds = %d, want 1", rounds)
	}
	if len(kept) != 3 {
		t.Errorf("kept %d constraints, want 3", len(kept))
	}
	if !Satisfiable(kept) {
		t.Error("negotiated set unsatisfiable")
	}
	// Acyclic input: nothing dropped.
	kept, rounds = Negotiate(cons[:2])
	if rounds != 0 || len(kept) != 2 {
		t.Errorf("acyclic negotiation: rounds=%d kept=%d", rounds, len(kept))
	}
	// Empty input.
	kept, rounds = Negotiate(nil)
	if rounds != 0 || len(kept) != 0 {
		t.Errorf("empty negotiation: rounds=%d kept=%d", rounds, len(kept))
	}
}

func TestNegotiateManyCycles(t *testing.T) {
	// Two disjoint 2-cycles: exactly two rounds.
	cons := []Constraint{
		{Above: 1, Below: 2}, {Above: 2, Below: 1},
		{Above: 3, Below: 4}, {Above: 4, Below: 3},
	}
	kept, rounds := Negotiate(cons)
	if rounds != 2 {
		t.Errorf("rounds = %d, want 2", rounds)
	}
	if !Satisfiable(kept) {
		t.Error("result unsatisfiable")
	}
}

func TestNegotiateAlwaysTerminatesAndSatisfies(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		var cons []Constraint
		for i := 0; i < rng.Intn(60); i++ {
			a := ad.ID(1 + rng.Intn(n))
			b := ad.ID(1 + rng.Intn(n))
			if a != b {
				cons = append(cons, Constraint{Above: a, Below: b})
			}
		}
		kept, rounds := Negotiate(cons)
		if !Satisfiable(kept) {
			t.Fatalf("trial %d: negotiated set still unsatisfiable", trial)
		}
		if rounds != len(cons)-len(kept) {
			t.Fatalf("trial %d: rounds %d != dropped %d", trial, rounds, len(cons)-len(kept))
		}
	}
}

func TestUpDownLoopsAreMountains(t *testing.T) {
	// The up/down rule does not forbid every closed walk by itself: a
	// walk may climb and descend back ("mountain"). What it guarantees —
	// and what gives ECMA its convergence behaviour — is that any closed
	// walk passing the rule consists of a strictly ascending phase
	// followed by a strictly descending phase. Such walks cannot sustain
	// count-to-infinity because routing updates never cycle among peers:
	// the distance metric strictly increases along each phase.
	topo := topology.Generate(topology.Config{Seed: 4, LateralProb: 0.3, BypassProb: 0.2})
	g := topo.Graph
	o := FromLevels(g)
	rng := rand.New(rand.NewSource(5))
	ids := g.IDs()
	loops, mountains := 0, 0
	for trial := 0; trial < 2000; trial++ {
		start := ids[rng.Intn(len(ids))]
		path := ad.Path{start}
		cur := start
		for step := 0; step < 6; step++ {
			nbrs := g.Neighbors(cur)
			if len(nbrs) == 0 {
				break
			}
			cur = nbrs[rng.Intn(len(nbrs))]
			path = append(path, cur)
			if cur == start && len(path) > 2 {
				loops++
				if o.UpDownValid(path) {
					mountains++
					// Verify the mountain shape: ranks strictly
					// rise to a single peak then strictly fall.
					peak := 0
					for i := 1; i < len(path); i++ {
						if o.Rank(path[i]) > o.Rank(path[peak]) {
							peak = i
						}
					}
					for i := 1; i <= peak; i++ {
						if o.Rank(path[i]) <= o.Rank(path[i-1]) {
							t.Errorf("valid loop %v not ascending before peak", path)
						}
					}
					for i := peak + 1; i < len(path); i++ {
						if o.Rank(path[i]) >= o.Rank(path[i-1]) {
							t.Errorf("valid loop %v not descending after peak", path)
						}
					}
				}
				break
			}
		}
	}
	if loops == 0 {
		t.Skip("random walks found no loops; topology too sparse for this seed")
	}
}
